package pooled

import (
	"context"
	"errors"
	"testing"
	"time"

	"pooleddata/internal/rng"
)

// TestEngineStartCampaignEvents drives the public streaming facade: a
// campaign's settlements arrive on the Events channel exactly once, in
// monotone sequence order, followed by a single terminal event, and the
// channel closes.
func TestEngineStartCampaignEvents(t *testing.T) {
	eng := NewEngine(EngineOptions{Shards: 2, CacheCapacity: 4, Workers: 2})
	defer eng.Close()

	const n, k, m, batch = 300, 5, 240, 8
	scheme, err := eng.Scheme(n, m, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	signals := make([][]bool, batch)
	for b := range signals {
		sig := make([]bool, n)
		for _, i := range rng.NewRandSeeded(uint64(10 + b)).Perm(n)[:k] {
			sig[i] = true
		}
		signals[b] = sig
	}
	ys := eng.MeasureBatch(scheme, signals)

	cp, err := eng.StartCampaign(scheme, ys, k, CampaignOptions{Tenant: "lab-a"})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Tenant() != "lab-a" || cp.Total() != batch {
		t.Fatalf("campaign = %s tenant %q total %d", cp.ID(), cp.Tenant(), cp.Total())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	var lastSeq int64
	seen := make(map[int]bool)
	sawDone := false
	for ev := range cp.Events(ctx) {
		if ev.Seq <= lastSeq {
			t.Fatalf("sequence went backwards: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Done {
			if ev.State != "done" {
				t.Fatalf("terminal state = %q", ev.State)
			}
			sawDone = true
			continue
		}
		if sawDone {
			t.Fatal("result event after the terminal event")
		}
		if seen[ev.Index] {
			t.Fatalf("job %d delivered twice", ev.Index)
		}
		seen[ev.Index] = true
		if ev.Err != "" || !ev.Consistent {
			t.Fatalf("event = %+v", ev)
		}
		sup := make([]bool, n)
		for _, i := range ev.Support {
			sup[i] = true
		}
		for i := range sup {
			if sup[i] != signals[ev.Index][i] {
				t.Fatalf("job %d did not recover its signal", ev.Index)
			}
		}
	}
	if !sawDone || len(seen) != batch {
		t.Fatalf("stream closed with %d results, done=%v", len(seen), sawDone)
	}

	// A late subscriber replays the identical sequence from the log.
	replay := 0
	for ev := range cp.Events(context.Background()) {
		replay++
		_ = ev
	}
	if replay != batch+1 {
		t.Fatalf("replay subscriber saw %d events, want %d", replay, batch+1)
	}

	if p := cp.Progress(); !p.Terminal() || p.Completed != batch || p.Settled() != batch {
		t.Fatalf("final progress = %+v", p)
	}
}

// TestEngineStartCampaignQuota: the facade surfaces per-tenant quotas.
func TestEngineStartCampaignQuota(t *testing.T) {
	eng := NewEngine(EngineOptions{CacheCapacity: 4, Workers: 1, TenantMaxQueued: 2})
	defer eng.Close()

	const n, k, m = 120, 2, 90
	scheme, err := eng.Scheme(n, m, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sig := make([]bool, n)
	sig[3], sig[40] = true, true
	ys := eng.MeasureBatch(scheme, [][]bool{sig, sig, sig})

	// A batch bigger than the whole quota is a plain validation error
	// (never satisfiable), not the retryable quota rejection.
	if _, err := eng.StartCampaign(scheme, ys, k, CampaignOptions{Tenant: "lab-a"}); err == nil || errors.Is(err, ErrTenantQuota) {
		t.Fatalf("oversized batch: err = %v, want a plain validation error", err)
	}
	cp, err := eng.StartCampaign(scheme, ys[:2], k, CampaignOptions{Tenant: "lab-a"})
	if err != nil {
		t.Fatalf("in-quota campaign rejected: %v", err)
	}
	if p := cp.Wait(context.Background(), 10*time.Second); p.Completed != 2 {
		t.Fatalf("campaign did not finish: %+v", p)
	}
}
