package pooled

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (§V has Figures 2, 3 and 4 and no tables), plus the §VI headline claim,
// a Theorem 2 uniqueness sweep, the ablation studies from DESIGN.md, and
// micro-benchmarks of the parallel kernels.
//
// The figure benchmarks run scaled-down sweeps (few trials, coarse grids)
// so `go test -bench=.` terminates quickly; `cmd/experiment` regenerates
// the full-resolution figures. Custom metrics report the scientific
// quantity next to the timing: success rates, overlaps, speedups.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/decoder"
	"pooleddata/internal/experiments"
	"pooleddata/internal/mn"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
	"pooleddata/internal/sparse"
	"pooleddata/internal/thresholds"
	"pooleddata/metrics"
)

// skipSweepIfShort keeps `go test -short -bench .` quick in CI: the
// figure sweeps decode hundreds of instances per iteration, while the
// micro-benchmarks below stay cheap enough to run everywhere.
func skipSweepIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping figure sweep in -short mode")
	}
}

// benchCfg is the scaled-down sweep configuration for benchmarks.
func benchCfg(trials int, seed uint64) experiments.Config {
	return experiments.Config{Trials: trials, Seed: seed}
}

// BenchmarkFig2RequiredQueries regenerates Fig. 2 (required m for exact
// reconstruction vs n) on a reduced grid.
func BenchmarkFig2RequiredQueries(b *testing.B) {
	skipSweepIfShort(b)
	ns := []int{100, 300, 1000}
	var lastMean float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig2(ns, []float64{0.3}, benchCfg(3, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		lastMean = series[0].Points[len(ns)-1].Mean
	}
	b.ReportMetric(lastMean, "required_m_n1000")
}

// BenchmarkFig3SuccessRate regenerates Fig. 3 (success rate vs m) at
// n = 1000 on a reduced grid around the θ = 0.3 transition.
func BenchmarkFig3SuccessRate(b *testing.B) {
	skipSweepIfShort(b)
	n := 1000
	k := thresholds.KFromTheta(n, 0.3)
	thr := thresholds.MN(n, k)
	ms := []int{int(thr * 0.5), int(thr * 1.0), int(thr * 1.5)}
	var transition float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig3(n, []float64{0.3}, ms, benchCfg(4, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		transition = series[0].Points[2].Mean - series[0].Points[0].Mean
	}
	b.ReportMetric(transition, "rate_jump_across_threshold")
}

// BenchmarkFig4Overlap regenerates Fig. 4 (overlap vs m) at n = 1000.
func BenchmarkFig4Overlap(b *testing.B) {
	skipSweepIfShort(b)
	n := 1000
	k := thresholds.KFromTheta(n, 0.3)
	thr := thresholds.MN(n, k)
	ms := []int{int(thr * 0.5), int(thr * 1.0)}
	var atThreshold float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig4(n, []float64{0.3}, ms, benchCfg(4, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		atThreshold = series[0].Points[1].Mean
	}
	b.ReportMetric(atThreshold, "overlap_at_threshold")
}

// BenchmarkHeadlineClaim measures the §VI claim: ≈99% of one-entries
// found at n=1000, θ=0.3, m=220.
func BenchmarkHeadlineClaim(b *testing.B) {
	skipSweepIfShort(b)
	var overlap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Headline(benchCfg(10, 99))
		if err != nil {
			b.Fatal(err)
		}
		overlap = res.MeanOverlap
	}
	b.ReportMetric(overlap, "mean_overlap_m220")
}

// BenchmarkTheorem2Uniqueness sweeps the exhaustive-search uniqueness
// probability across the information-theoretic threshold (the empirical
// face of Theorem 2).
func BenchmarkTheorem2Uniqueness(b *testing.B) {
	skipSweepIfShort(b)
	var hi float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.InfoTheoretic(40, 4, []int{10, 60}, benchCfg(6, 31))
		if err != nil {
			b.Fatal(err)
		}
		hi = s.Points[1].Mean
	}
	b.ReportMetric(hi, "uniqueness_above_threshold")
}

// BenchmarkAblationDesigns compares the three pooling designs at a fixed
// operating point (DESIGN.md ablation).
func BenchmarkAblationDesigns(b *testing.B) {
	skipSweepIfShort(b)
	n, k := 500, 7
	m := int(1.5 * thresholds.MN(n, k))
	var regular float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.CompareDesigns(n, k, []int{m}, benchCfg(4, 13))
		if err != nil {
			b.Fatal(err)
		}
		regular = series[0].Points[0].Mean
	}
	b.ReportMetric(regular, "regular_design_overlap")
}

// BenchmarkAblationDecoders compares the decoder zoo at a fixed operating
// point between the two thresholds.
func BenchmarkAblationDecoders(b *testing.B) {
	skipSweepIfShort(b)
	n, k := 400, 6
	m := int(0.9 * thresholds.MN(n, k))
	var mnRate float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.CompareDecoders(n, k, []int{m}, benchCfg(4, 17))
		if err != nil {
			b.Fatal(err)
		}
		mnRate = series[0].Points[0].Mean
	}
	b.ReportMetric(mnRate, "mn_success_below_threshold")
}

// BenchmarkAblationPartialParallel measures the L-unit scheduling sweep
// of the §VI open problem.
func BenchmarkAblationPartialParallel(b *testing.B) {
	skipSweepIfShort(b)
	var speedup16 float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.PartialParallel(500, 7, 128, []int{1, 16, 0},
			query.ConstantLatency{D: time.Second}, benchCfg(1, 23))
		if err != nil {
			b.Fatal(err)
		}
		speedup16 = pts[1].Speedup
	}
	b.ReportMetric(speedup16, "speedup_L16")
}

// BenchmarkAblationNoise sweeps the noisy-oracle extension.
func BenchmarkAblationNoise(b *testing.B) {
	skipSweepIfShort(b)
	n, k := 400, 6
	m := int(1.5 * thresholds.MN(n, k))
	var atSigma2 float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.NoiseRobustness(n, k, m, []float64{0, 2}, benchCfg(4, 29))
		if err != nil {
			b.Fatal(err)
		}
		atSigma2 = s.Points[1].Mean
	}
	b.ReportMetric(atSigma2, "overlap_sigma2")
}

// BenchmarkFiniteSizeCheck regenerates the §V finite-size remark series.
func BenchmarkFiniteSizeCheck(b *testing.B) {
	skipSweepIfShort(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.FiniteSizeCheck([]int{300, 1000}, 0.3, benchCfg(2, 37))
		if err != nil {
			b.Fatal(err)
		}
		ratio = series[0].Points[1].Mean / series[1].Points[1].Mean
	}
	b.ReportMetric(ratio, "measured_over_asymptotic")
}

// BenchmarkAblationTradeoff measures the sequential-vs-parallel
// comparison (adaptive bisection vs one-round MN vs individual testing).
func BenchmarkAblationTradeoff(b *testing.B) {
	skipSweepIfShort(b)
	var adaptiveQueries float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AdaptiveVsParallel(1000, 8, benchCfg(4, 41))
		if err != nil {
			b.Fatal(err)
		}
		adaptiveQueries = rows[0].Queries
	}
	b.ReportMetric(adaptiveQueries, "adaptive_queries")
}

// BenchmarkAblationThresholdGT measures the binary group testing
// extension sweep (§VI outlook, T = 1).
func BenchmarkAblationThresholdGT(b *testing.B) {
	skipSweepIfShort(b)
	var compRate float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.ThresholdGT(300, 5, 1, []int{200}, benchCfg(4, 43))
		if err != nil {
			b.Fatal(err)
		}
		compRate = series[1].Points[0].Mean
	}
	b.ReportMetric(compRate, "comp_success")
}

// --- micro-benchmarks of the parallel kernels ---

func benchInstance(b *testing.B, n, k, m int) (*pooling.RandomRegular, *bitvec.Vector, []int64, *sparse.CSR) {
	b.Helper()
	des := pooling.RandomRegular{}
	g, err := des.Build(n, m, pooling.BuildOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(2))
	y := query.Execute(g, sigma, query.Options{Seed: 3}).Y
	return &des, sigma, y, sparse.EntryAdjacency(g)
}

// BenchmarkDesignBuild measures parallel design construction (n = 10^4,
// m = 600: the HIV-example scale).
func BenchmarkDesignBuild(b *testing.B) {
	des := pooling.RandomRegular{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := des.Build(10000, 600, pooling.BuildOptions{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryExecute measures the parallel measurement round.
func BenchmarkQueryExecute(b *testing.B) {
	g, err := pooling.RandomRegular{}.Build(10000, 600, pooling.BuildOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sigma := bitvec.Random(10000, 16, rng.NewRandSeeded(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		query.Execute(g, sigma, query.Options{Seed: uint64(i)})
	}
}

// BenchmarkSpMV measures the decoder's bulk kernel Ψ = M·y, sequential vs
// parallel.
func BenchmarkSpMV(b *testing.B) {
	g, err := pooling.RandomRegular{}.Build(20000, 1200, pooling.BuildOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	mat := sparse.EntryAdjacency(g)
	sigma := bitvec.Random(20000, 20, rng.NewRandSeeded(2))
	y := query.Execute(g, sigma, query.Options{Seed: 3}).Y
	out := make([]int64, mat.Rows())
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mat.MulVec(y, out)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mat.MulVecParallel(y, out, 0)
		}
	})
}

// BenchmarkMNDecode measures the full MN-Algorithm on the HIV-example
// scale.
func BenchmarkMNDecode(b *testing.B) {
	g, err := pooling.RandomRegular{}.Build(10000, 600, pooling.BuildOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sigma := bitvec.Random(10000, 16, rng.NewRandSeeded(2))
	y := query.Execute(g, sigma, query.Options{Seed: 3}).Y
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mn.Reconstruct(g, y, 16, mn.Options{})
	}
}

// BenchmarkDecoders times each baseline decoder on one mid-size instance.
func BenchmarkDecoders(b *testing.B) {
	g, err := pooling.RandomRegular{}.Build(2000, 300, pooling.BuildOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sigma := bitvec.Random(2000, 9, rng.NewRandSeeded(2))
	y := query.Execute(g, sigma, query.Options{Seed: 3}).Y
	for _, dec := range []decoder.Decoder{decoder.MN{}, decoder.Greedy{}, decoder.BP{}, decoder.Refined{}} {
		b.Run(dec.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dec.Decode(g, y, 9); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncrementalDecode measures the per-batch cost of the
// incremental MN decoder (the L-unit early-stopping pipeline).
func BenchmarkIncrementalDecode(b *testing.B) {
	g, err := pooling.RandomRegular{}.Build(2000, 300, pooling.BuildOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sigma := bitvec.Random(2000, 9, rng.NewRandSeeded(2))
	y := query.Execute(g, sigma, query.Options{Seed: 3}).Y
	qs := make([]int, len(y))
	for j := range qs {
		qs[j] = j
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc := mn.NewIncremental(g)
		for start := 0; start < len(y); start += 50 {
			end := start + 50
			if end > len(y) {
				end = len(y)
			}
			inc.AddBatch(qs[start:end], y[start:end])
		}
		inc.Estimate(9)
	}
}

// BenchmarkThresholdClassifier measures the Corollary 6 threshold form of
// the MN rule.
func BenchmarkThresholdClassifier(b *testing.B) {
	g, err := pooling.RandomRegular{}.Build(5000, 800, pooling.BuildOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sigma := bitvec.Random(5000, 12, rng.NewRandSeeded(2))
	y := query.Execute(g, sigma, query.Options{Seed: 3}).Y
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mn.ReconstructThreshold(g, y, 12, mn.Options{})
	}
}

// BenchmarkAdaptiveReconstruct measures the sequential bisection decoder.
func BenchmarkAdaptiveReconstruct(b *testing.B) {
	sigma := bitvec.Random(100000, 32, rng.NewRandSeeded(5))
	oracle := func(indices []int) int64 {
		var c int64
		for _, i := range indices {
			if sigma.Get(i) {
				c++
			}
		}
		return c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReconstructAdaptive(100000, oracle); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignCSVRoundTrip measures lab-protocol serialization.
func BenchmarkDesignCSVRoundTrip(b *testing.B) {
	scheme, err := New(2000, 200, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := scheme.WriteDesignCSV(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := LoadDesignCSV(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEnd measures the public API round trip at quickstart
// scale.
func BenchmarkEndToEnd(b *testing.B) {
	signal := make([]bool, 5000)
	r := rng.NewRandSeeded(7)
	for _, i := range r.SampleK(5000, 12) {
		signal[i] = true
	}
	m := RecommendedQueries(5000, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scheme, err := New(5000, m, Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		y := scheme.Measure(signal)
		if _, err := scheme.Reconstruct(y, 12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOneDesignManySignals is the engine's reason to exist: B
// signals measured and decoded against one n = 10^4 design. The naive
// path is what callers did before the engine — B independent
// pooled.New + Measure + Reconstruct round trips, rebuilding the Γ = n/2
// design every time. The engine path builds the scheme once (cache), runs
// one batched measurement pass, and pipelines the B decodes through the
// worker pool.
func BenchmarkOneDesignManySignals(b *testing.B) {
	const (
		n     = 10000
		k     = 16
		m     = 600
		batch = 32
	)
	signals := make([][]bool, batch)
	r := rng.NewRandSeeded(99)
	for s := range signals {
		sig := make([]bool, n)
		for _, i := range r.SampleK(n, k) {
			sig[i] = true
		}
		signals[s] = sig
	}

	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for s := 0; s < batch; s++ {
				scheme, err := New(n, m, Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				y := scheme.Measure(signals[s])
				if _, err := scheme.Reconstruct(y, k); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		eng := NewEngine(EngineOptions{})
		defer eng.Close()
		for i := 0; i < b.N; i++ {
			scheme, err := eng.Scheme(n, m, Options{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			ys := eng.MeasureBatch(scheme, signals)
			results, err := eng.DecodeBatch(context.Background(), scheme, ys, k, MN)
			if err != nil {
				b.Fatal(err)
			}
			if len(results) != batch {
				b.Fatalf("got %d results", len(results))
			}
		}
	})
}

// BenchmarkNoisyBatchDecode measures the per-signal noise-stream path of
// the noise subsystem against the exact batched path at the engine's
// home scale (one n = 10^4 design, B = 32 signals): same single pass
// over the pooling matrix, plus a seeded per-(signal, query) stream and
// the noise policy's robust decoder. The acceptance bar is the gaussian
// path within 1.5× of the exact path. The σ-sweep sub-benchmark (the
// slow part — it decodes the batch once per σ) is skipped in -short
// mode.
func BenchmarkNoisyBatchDecode(b *testing.B) {
	const (
		n     = 10000
		k     = 16
		m     = 600
		batch = 32
	)
	signals := make([][]bool, batch)
	r := rng.NewRandSeeded(99)
	for s := range signals {
		sig := make([]bool, n)
		for _, i := range r.SampleK(n, k) {
			sig[i] = true
		}
		signals[s] = sig
	}
	eng := NewEngine(EngineOptions{})
	defer eng.Close()
	scheme, err := eng.Scheme(n, m, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ys := eng.MeasureBatch(scheme, signals)
			results, err := eng.DecodeBatch(context.Background(), scheme, ys, k, MN)
			if err != nil {
				b.Fatal(err)
			}
			if len(results) != batch {
				b.Fatalf("got %d results", len(results))
			}
		}
	})
	b.Run("gaussian", func(b *testing.B) {
		nm := NoiseModel{Kind: "gaussian", Sigma: 0.5, Seed: 7}
		consistent := 0
		for i := 0; i < b.N; i++ {
			ys, err := eng.MeasureBatchNoisy(scheme, signals, nm)
			if err != nil {
				b.Fatal(err)
			}
			results, err := eng.DecodeBatchNoisy(context.Background(), scheme, ys, k, nm)
			if err != nil {
				b.Fatal(err)
			}
			consistent = 0
			for _, res := range results {
				if res.Consistent {
					consistent++
				}
			}
		}
		b.ReportMetric(float64(consistent), "consistent_of_32")
	})
	b.Run("sigma-sweep", func(b *testing.B) {
		skipSweepIfShort(b)
		for _, sigma := range []float64{0.25, 1, 4} {
			nm := NoiseModel{Kind: "gaussian", Sigma: sigma, Seed: 7}
			for i := 0; i < b.N; i++ {
				ys, err := eng.MeasureBatchNoisy(scheme, signals, nm)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.DecodeBatchNoisy(context.Background(), scheme, ys, k, nm); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkMetricsOverhead measures what the observability layer costs
// on the hot decode path: the same noisy batched decode as
// BenchmarkNoisyBatchDecode/gaussian, once against a nil registry (the
// no-op sink every instrument accepts) and once with a live registry
// collecting the full engine surface. The acceptance bar is the
// instrumented run within 2% of the no-op run — the registry records on
// scrape-time collectors and lock-free atomics, so the pipeline should
// not notice it.
func BenchmarkMetricsOverhead(b *testing.B) {
	const (
		n     = 10000
		k     = 16
		m     = 600
		batch = 32
	)
	signals := make([][]bool, batch)
	r := rng.NewRandSeeded(99)
	for s := range signals {
		sig := make([]bool, n)
		for _, i := range r.SampleK(n, k) {
			sig[i] = true
		}
		signals[s] = sig
	}
	nm := NoiseModel{Kind: "gaussian", Sigma: 0.5, Seed: 7}
	run := func(b *testing.B, reg *metrics.Registry) {
		eng := NewEngine(EngineOptions{MetricsRegistry: reg})
		defer eng.Close()
		scheme, err := eng.Scheme(n, m, Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ys, err := eng.MeasureBatchNoisy(scheme, signals, nm)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.DecodeBatchNoisy(context.Background(), scheme, ys, k, nm); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("noop-sink", func(b *testing.B) { run(b, nil) })
	b.Run("registry", func(b *testing.B) {
		reg := metrics.NewRegistry()
		run(b, reg)
		if fams := reg.Gather(); len(fams) == 0 {
			b.Fatal("registry collected nothing — the benchmark measured an unwired engine")
		}
	})
}

// BenchmarkTraceOverhead measures what span-level job tracing costs on
// the hot decode path: the same noisy batched decode as
// BenchmarkNoisyBatchDecode/gaussian, once with tracing disabled (a nil
// store — every span call is a single pointer test) and once with the
// tail sampler retaining everything (SampleRate 1, the worst case: a
// builder, three spans, and a store offer per job). The acceptance bar
// is the disabled run within 2% of an untraced engine — which it is by
// construction, since disabled tracing takes the same nil-builder path —
// and full retention staying within a few percent, because spans are
// appended under one short per-job mutex that the decode itself dwarfs.
func BenchmarkTraceOverhead(b *testing.B) {
	const (
		n     = 10000
		k     = 16
		m     = 600
		batch = 32
	)
	signals := make([][]bool, batch)
	r := rng.NewRandSeeded(99)
	for s := range signals {
		sig := make([]bool, n)
		for _, i := range r.SampleK(n, k) {
			sig[i] = true
		}
		signals[s] = sig
	}
	nm := NoiseModel{Kind: "gaussian", Sigma: 0.5, Seed: 7}
	run := func(b *testing.B, opts EngineOptions, check func(*Engine)) {
		eng := NewEngine(opts)
		defer eng.Close()
		scheme, err := eng.Scheme(n, m, Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ys, err := eng.MeasureBatchNoisy(scheme, signals, nm)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.DecodeBatchNoisy(context.Background(), scheme, ys, k, nm); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if check != nil {
			check(eng)
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, EngineOptions{}, nil) })
	b.Run("sample-1.0", func(b *testing.B) {
		run(b, EngineOptions{TraceSample: 1, TraceStore: 256}, func(eng *Engine) {
			if len(eng.RecentTraces(1)) == 0 {
				b.Fatal("trace store collected nothing — the benchmark measured an untraced engine")
			}
		})
	})
}
