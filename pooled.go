// Package pooled reconstructs sparse binary signals from pooled additive
// measurements — a Go implementation of "On the Parallel Reconstruction
// from Pooled Data" (Gebhard, Hahn-Klimroth, Kaaser, Loick; IPDPS 2022).
//
// # The problem
//
// A hidden signal σ ∈ {0,1}^n with k = n^θ one-entries (infected probes,
// defective items, active features) is observed only through pooled
// queries: each query names a multiset of coordinates and returns the
// exact number of one-entries it contains, counted with multiplicity. All
// queries are chosen up front and executed in parallel — the regime of a
// liquid-handling robot or a GPU batch, where one round of measurements
// dominates the total running time.
//
// # Usage
//
// Build a Scheme for (n, m), obtain the pools, measure (for simulations,
// Measure does it in-process), and reconstruct:
//
//	scheme, err := pooled.New(10000, 600, pooled.Options{Seed: 1})
//	y := scheme.Measure(signal)              // or a real lab fills this in
//	support, err := scheme.Reconstruct(y, k) // MN-Algorithm
//
// RecommendedQueries returns the query budget Theorem 1 asks for, with
// the paper's finite-size correction applied.
package pooled

import (
	"fmt"
	"sync"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/decoder"
	"pooleddata/internal/engine"
	"pooleddata/internal/graph"
	"pooleddata/internal/mn"
	"pooleddata/internal/noise"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/thresholds"
)

// DesignKind selects the pooling design of a Scheme.
type DesignKind int

const (
	// RandomRegular is the paper's design: every query draws Γ = n/2
	// coordinates uniformly with replacement.
	RandomRegular DesignKind = iota
	// Bernoulli connects every (coordinate, query) pair independently
	// with probability 1/2.
	Bernoulli
	// ConstantColumn gives every coordinate the same number of distinct
	// queries.
	ConstantColumn
)

// DecoderKind selects the reconstruction algorithm.
type DecoderKind int

const (
	// MN is the paper's Maximum Neighborhood algorithm (the default).
	MN DecoderKind = iota
	// MNRefined is MN followed by residual-decreasing swap refinement.
	MNRefined
	// BeliefPropagation is a Gaussian-approximation message-passing
	// decoder.
	BeliefPropagation
	// GreedyPeeling is an OMP-style residual peeling decoder.
	GreedyPeeling
	// ExhaustiveSearch enumerates all weight-k signals (tiny n only).
	ExhaustiveSearch
	// CompressedSensing is a box-constrained FISTA relaxation (the
	// ℓ1/basis-pursuit family).
	CompressedSensing
)

// Options configures a Scheme.
type Options struct {
	// Seed makes the design reproducible; two schemes with equal
	// (n, m, Seed, Design) pool identically.
	Seed uint64
	// Design selects the pooling design; default RandomRegular.
	Design DesignKind
	// Workers bounds goroutine pools; 0 means GOMAXPROCS.
	Workers int
}

// Scheme is a fixed non-adaptive pooling design over n coordinates with m
// queries, plus the decoders that invert it. Safe for concurrent use
// after construction.
type Scheme struct {
	n, m    int
	g       *graph.Bipartite
	seed    uint64
	workers int

	// es is the engine-side view of this scheme: set at construction for
	// schemes served from an Engine cache, wrapped lazily otherwise.
	esOnce sync.Once
	es     *engine.Scheme
}

// designFor maps a DesignKind to its pooling implementation.
func designFor(kind DesignKind) (pooling.Design, error) {
	switch kind {
	case RandomRegular:
		return pooling.RandomRegular{}, nil
	case Bernoulli:
		return pooling.Bernoulli{}, nil
	case ConstantColumn:
		return pooling.ConstantColumn{}, nil
	}
	return nil, fmt.Errorf("pooled: unknown design kind %d", kind)
}

// decoderFor maps a DecoderKind to its implementation.
func decoderFor(kind DecoderKind, workers int) (decoder.Decoder, error) {
	switch kind {
	case MN:
		return decoder.MN{Workers: workers}, nil
	case MNRefined:
		return decoder.Refined{}, nil
	case BeliefPropagation:
		return decoder.BP{}, nil
	case GreedyPeeling:
		return decoder.Greedy{}, nil
	case ExhaustiveSearch:
		return decoder.Exhaustive{}, nil
	case CompressedSensing:
		return decoder.LP{}, nil
	}
	return nil, fmt.Errorf("pooled: unknown decoder kind %d", kind)
}

// New builds a pooling scheme with n coordinates and m parallel queries.
func New(n, m int, opts Options) (*Scheme, error) {
	des, err := designFor(opts.Design)
	if err != nil {
		return nil, err
	}
	g, err := des.Build(n, m, pooling.BuildOptions{Seed: opts.Seed, Parallelism: opts.Workers})
	if err != nil {
		return nil, err
	}
	return &Scheme{n: n, m: m, g: g, seed: opts.Seed, workers: opts.Workers}, nil
}

// N returns the signal length.
func (s *Scheme) N() int { return s.n }

// M returns the number of queries.
func (s *Scheme) M() int { return s.m }

// Pools returns the queries as explicit multisets of coordinates — what a
// lab would hand to its pipetting robot. Pool j lists each coordinate as
// many times as the design drew it.
func (s *Scheme) Pools() [][]int {
	out := make([][]int, s.m)
	for j := 0; j < s.m; j++ {
		ents, muls := s.g.QueryEntries(j)
		pool := make([]int, 0, s.g.QuerySize(j))
		for p, e := range ents {
			for c := int32(0); c < muls[p]; c++ {
				pool = append(pool, int(e))
			}
		}
		out[j] = pool
	}
	return out
}

// Measure simulates the parallel measurement round: it returns the exact
// pooled counts for the given signal. len(signal) must be n.
func (s *Scheme) Measure(signal []bool) []int64 {
	if len(signal) != s.n {
		panic(fmt.Sprintf("pooled: signal length %d, want %d", len(signal), s.n))
	}
	sigma := bitvec.FromBools(signal)
	return query.Execute(s.g, sigma, query.Options{Workers: s.workers, Seed: s.seed}).Y
}

// MeasureBatch simulates the measurement round for many signals against
// this one design in a single pass over the pooling matrix: the Γm edge
// traversal is amortized across the batch, which is how a screening lab
// or feature-selection pipeline actually runs (one design, many plates).
// Row b of the result equals Measure(signals[b]).
func (s *Scheme) MeasureBatch(signals [][]bool) [][]int64 {
	return query.ExecuteBatch(s.g, s.batchVectors(signals), s.workers)
}

// batchVectors validates and packs a batch of boolean signals.
func (s *Scheme) batchVectors(signals [][]bool) []*bitvec.Vector {
	sigmas := make([]*bitvec.Vector, len(signals))
	for b, sig := range signals {
		if len(sig) != s.n {
			panic(fmt.Sprintf("pooled: signal %d has length %d, want %d", b, len(sig), s.n))
		}
		sigmas[b] = bitvec.FromBools(sig)
	}
	return sigmas
}

// MeasureNoisy simulates measurements with additive rounded Gaussian
// noise of standard deviation sigma on every count.
func (s *Scheme) MeasureNoisy(signal []bool, sigma float64) []int64 {
	if len(signal) != s.n {
		panic(fmt.Sprintf("pooled: signal length %d, want %d", len(signal), s.n))
	}
	sv := bitvec.FromBools(signal)
	return query.Execute(s.g, sv, query.Options{
		Oracle: query.Noisy{Sigma: sigma}, Workers: s.workers, Seed: s.seed,
	}).Y
}

// NoiseModel declares how a set of counts was (or should be) measured.
// The zero value is the exact additive oracle. It is the public form of
// the service's noise-model spec: the same fields travel on pooledd's
// wire API as {"kind":"gaussian","sigma":0.5,"seed":7}.
type NoiseModel struct {
	// Kind is "exact" (or empty), "gaussian", or "threshold".
	Kind string
	// Sigma is the Gaussian standard deviation (gaussian models).
	Sigma float64
	// T is the threshold (threshold models); 0 means 1, negative values
	// fail validation.
	T int64
	// Seed roots the per-signal noise streams: equal (model, signals)
	// reproduce bit-identical noisy counts.
	Seed uint64
}

// internal converts the public model to the engine-side spec. The raw
// kind is preserved so validation can reject unknown kinds before
// canonicalization defaults them.
func (nm NoiseModel) internal() noise.Model {
	return noise.Model{Kind: noise.Kind(nm.Kind), Sigma: nm.Sigma, T: nm.T, Seed: nm.Seed}
}

// Validate reports whether the model is well-formed.
func (nm NoiseModel) Validate() error { return nm.internal().Validate() }

// MeasureBatchNoisy simulates the batched measurement round under a
// noise model: one pass over the pooling matrix computes every signal's
// exact counts, then each signal's counts are perturbed with an
// independent per-signal stream rooted at the model's seed. Row b equals
// a single noisy measurement of signals[b] with seed nm.Seed⊕b-derived
// streams, and two calls with equal models perturb identically.
func (s *Scheme) MeasureBatchNoisy(signals [][]bool, nm NoiseModel) ([][]int64, error) {
	m := nm.internal()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	sigmas := s.batchVectors(signals)
	if m.IsExact() {
		return query.ExecuteBatch(s.g, sigmas, s.workers), nil
	}
	return query.ExecuteBatchNoisy(s.g, sigmas, s.workers, m, m.SignalSeeds(len(sigmas))), nil
}

// Reconstruct runs the MN-Algorithm on measured counts y and returns the
// sorted support (indices of the estimated one-entries). k is the signal's
// Hamming weight; if unknown, measure one extra pool containing every
// coordinate once — its count is exactly k.
func (s *Scheme) Reconstruct(y []int64, k int) ([]int, error) {
	return s.ReconstructWith(y, k, MN)
}

// ReconstructWith is Reconstruct with an explicit decoder choice.
func (s *Scheme) ReconstructWith(y []int64, k int, kind DecoderKind) ([]int, error) {
	dec, err := decoderFor(kind, s.workers)
	if err != nil {
		return nil, err
	}
	est, err := dec.Decode(s.g, y, k)
	if err != nil {
		return nil, err
	}
	return est.Support(), nil
}

// ReconstructApprox classifies coordinates by the threshold rule of the
// paper's Corollary 6 instead of forcing exactly kHint ones: kHint is
// used only to centralize the scores, so a lower bound on the true
// weight suffices (the regime the paper highlights when k is not known
// exactly). The returned support may have any size.
func (s *Scheme) ReconstructApprox(y []int64, kHint int) ([]int, error) {
	if len(y) != s.m {
		return nil, fmt.Errorf("pooled: %d counts for %d queries", len(y), s.m)
	}
	if kHint < 0 || kHint > s.n {
		return nil, fmt.Errorf("pooled: weight hint %d out of [0,%d]", kHint, s.n)
	}
	res := mn.ReconstructThreshold(s.g, y, kHint, mn.Options{Workers: s.workers})
	return res.Estimate.Support(), nil
}

// Consistent reports whether a candidate support exactly reproduces the
// measured counts.
func (s *Scheme) Consistent(support []int, y []int64) bool {
	if len(y) != s.m {
		return false
	}
	return decoder.Consistent(s.g, bitvec.FromIndices(s.n, support), y)
}

// Plan describes the simulated execution of the measurement round on a
// limited number of parallel processing units (the partially-parallel
// regime discussed in the paper's conclusions).
type Plan struct {
	// Units is the number of processing units used (m when fully
	// parallel).
	Units int
	// Rounds is the maximum number of queries any unit executes.
	Rounds int
	// Makespan is the completion time of the measurement round.
	Makespan time.Duration
	// SequentialTime is the single-unit completion time, for comparison.
	SequentialTime time.Duration
}

// MeasurementPlan schedules the scheme's m queries onto L processing
// units (L <= 0 means fully parallel), each query taking perQuery time,
// and reports rounds and makespan. Reconstruction quality is unaffected
// by L — only wall-clock time changes — which is the point of the
// non-adaptive design.
func (s *Scheme) MeasurementPlan(units int, perQuery time.Duration) Plan {
	durations := make([]time.Duration, s.m)
	for j := range durations {
		durations[j] = perQuery
	}
	rounds, makespan, total := query.Schedule(durations, units)
	u := units
	if u <= 0 || u > s.m {
		u = s.m
	}
	return Plan{Units: u, Rounds: rounds, Makespan: makespan, SequentialTime: total}
}

// RecommendedQueries returns a practical query budget for exact
// reconstruction of a weight-k signal of length n with the MN-Algorithm:
// Theorem 1's m_MN(n,θ) with the finite-size correction of §V, rounded
// up.
func RecommendedQueries(n, k int) int {
	m := thresholds.MNFiniteSize(n, k)
	return int(m + 0.999999)
}

// InformationLimit returns the information-theoretic threshold
// m_para = 2k·ln(n/k)/ln k below which *no* decoder — efficient or not —
// can reconstruct from parallel queries w.h.p. (Theorem 2 and its
// converse).
func InformationLimit(n, k int) float64 {
	return thresholds.BPDPara(n, k)
}

// Theta returns the sparsity exponent θ = ln k/ln n of an instance.
func Theta(n, k int) float64 { return thresholds.Theta(n, k) }
