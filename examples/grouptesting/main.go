// Group testing: the threshold-query extension from the paper's
// conclusions (§VI), specialized to classical binary group testing
// (T = 1: a pool only reports whether it contains *any* one-entry).
//
// Threshold queries carry at most one bit, so the additive design's huge
// Γ = n/2 pools saturate and become useless; the pools must shrink to
// Θ(n/k). This example contrasts the two regimes and runs the classical
// COMP/DD decoders alongside the MN-style scored decoder.
//
//	go run ./examples/grouptesting
package main

import (
	"fmt"
	"log"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
	"pooleddata/internal/threshgt"
	"pooleddata/internal/thresholds"
)

func main() {
	const (
		n    = 2000
		k    = 8
		m    = 400
		seed = 21
	)

	sigma := bitvec.Random(n, k, rng.NewRandSeeded(seed))
	fmt.Printf("binary group testing: n=%d k=%d m=%d\n", n, k, m)
	fmt.Printf("(theory: binary GT needs ≈ %.0f tests; the additive oracle needs ≈ %.0f)\n\n",
		thresholds.GT(n, k), thresholds.MN(n, k))

	// Regime 1: additive-design pool size Γ = n/2 — every pool contains a
	// one-entry w.h.p., so every test is positive and carries nothing.
	wide, err := pooling.RandomRegular{}.Build(n, m, pooling.BuildOptions{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	resWide := query.Execute(wide, sigma, query.Options{Oracle: query.Threshold{T: 1}})
	positives := 0
	for _, v := range resWide.Y {
		positives += int(v)
	}
	fmt.Printf("with Γ=n/2 pools: %d/%d tests positive — saturated, uninformative\n", positives, m)

	// Regime 2: properly sized pools Γ ≈ ln2·n/k.
	gamma := threshgt.RecommendedGamma(n, k, 1)
	des := pooling.RandomRegular{Gamma: gamma}
	g, err := des.Build(n, m, pooling.BuildOptions{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	res := query.Execute(g, sigma, query.Options{Oracle: query.Threshold{T: 1}})
	positives = 0
	for _, v := range res.Y {
		positives += int(v)
	}
	fmt.Printf("with Γ=%d pools:  %d/%d tests positive — informative\n\n", gamma, positives, m)

	comp, err := threshgt.COMP{}.Decode(g, res.Y, k)
	if err != nil {
		log.Fatal(err)
	}
	dd, err := threshgt.DD{}.Decode(g, res.Y, k)
	if err != nil {
		log.Fatal(err)
	}
	scored, err := threshgt.Scored{}.Decode(g, res.Y, k)
	if err != nil {
		log.Fatal(err)
	}
	report := func(name string, est *bitvec.Vector) {
		fmt.Printf("%-14s found %d/%d one-entries, %d false positives\n",
			name, est.Overlap(sigma), k, est.Weight()-est.Overlap(sigma))
	}
	report("COMP:", comp)
	report("DD:", dd)
	report("threshold-MN:", scored)
	fmt.Println("\nDD never produces false positives; COMP never misses a one-entry.")
}
