// Quickstart: reconstruct a sparse binary signal from pooled counts.
//
// This walks the paper's Fig. 1 scenario at a realistic size: a hidden
// {0,1}^n signal with k ones, a random pooling design, one parallel round
// of additive queries, and the MN-Algorithm to recover the support.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pooled "pooleddata"
)

func main() {
	const (
		n    = 5000 // signal length
		k    = 12   // number of one-entries
		seed = 7
	)

	// How many parallel queries does Theorem 1 ask for at this size?
	m := pooled.RecommendedQueries(n, k)
	fmt.Printf("n=%d k=%d (theta=%.2f)\n", n, k, pooled.Theta(n, k))
	fmt.Printf("recommended parallel queries: m=%d\n", m)
	fmt.Printf("information-theoretic floor:  %.0f\n", pooled.InformationLimit(n, k))

	scheme, err := pooled.New(n, m, pooled.Options{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	// The hidden signal. A real deployment would not know this, of
	// course; the scheme only ever sees the pooled counts.
	signal := make([]bool, n)
	truth := []int{3, 404, 505, 1111, 1717, 2222, 2999, 3333, 3800, 4242, 4747, 4999}
	for _, i := range truth {
		signal[i] = true
	}

	// One parallel measurement round.
	y := scheme.Measure(signal)
	fmt.Printf("first query results: %v ...\n", y[:5])

	// Reconstruct.
	support, err := scheme.Reconstruct(y, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed support: %v\n", support)

	ok := len(support) == len(truth)
	for i := range truth {
		if ok && support[i] != truth[i] {
			ok = false
		}
	}
	if !ok {
		log.Fatalf("reconstruction failed: want %v", truth)
	}
	fmt.Printf("exact reconstruction from %d pooled counts (vs %d individual tests)\n", m, n)
}
