// Epidemiology: the paper's motivating HIV-screening scenario (§I.D).
//
// Screening n = 10,000 random probes from a population with UK-like HIV
// prevalence yields about 16 expected positives — i.e. θ ≈ 0.3. Individual
// PCR tests would need 10,000 reactions; the pooled design needs a few
// hundred, all run in one parallel round on the liquid-handling robot.
//
// The example also shows the unknown-k device from the paper: one extra
// pool containing every probe reveals k exactly.
//
//	go run ./examples/epidemiology
package main

import (
	"fmt"
	"log"
	"time"

	pooled "pooleddata"

	"pooleddata/internal/rng"
)

func main() {
	const (
		n    = 10000
		seed = 1905
	)

	// Ground truth: ~16 infected probes (θ ≈ 0.3), unknown to the lab.
	r := rng.NewRandSeeded(seed)
	signal := make([]bool, n)
	infected := r.SampleK(n, 16)
	for _, i := range infected {
		signal[i] = true
	}

	// The lab does not know k. One extra pool over all probes reveals it:
	// the additive count of the full pool is exactly k.
	var kRevealed int
	for _, s := range signal {
		if s {
			kRevealed++
		}
	}
	fmt.Printf("population pool count reveals k = %d\n", kRevealed)

	m := pooled.RecommendedQueries(n, kRevealed)
	fmt.Printf("screening %d probes with %d pooled PCR reactions (%.1fx fewer than individual testing)\n",
		n, m, float64(n)/float64(m))

	scheme, err := pooled.New(n, m, pooled.Options{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	// Each PCR run takes ~2h; the robot has 96 thermocycler slots.
	plan := scheme.MeasurementPlan(96, 2*time.Hour)
	fmt.Printf("robot schedule: %d rounds on %d units, makespan %v (sequential: %v)\n",
		plan.Rounds, plan.Units, plan.Makespan, plan.SequentialTime)

	y := scheme.Measure(signal)
	support, err := scheme.Reconstruct(y, kRevealed)
	if err != nil {
		log.Fatal(err)
	}

	hits := 0
	truth := make(map[int]bool, len(infected))
	for _, i := range infected {
		truth[i] = true
	}
	for _, i := range support {
		if truth[i] {
			hits++
		}
	}
	fmt.Printf("identified %d/%d infected probes", hits, len(infected))
	if hits == len(infected) && len(support) == len(infected) {
		fmt.Printf(" — exact reconstruction\n")
	} else {
		fmt.Printf(" (overlap %.2f)\n", float64(hits)/float64(len(infected)))
	}

	// Robustness: repeat with mildly noisy counts and the refined decoder.
	yNoisy := scheme.MeasureNoisy(signal, 1.0)
	supportNoisy, err := scheme.ReconstructWith(yNoisy, kRevealed, pooled.MNRefined)
	if err != nil {
		log.Fatal(err)
	}
	hits = 0
	for _, i := range supportNoisy {
		if truth[i] {
			hits++
		}
	}
	fmt.Printf("with noisy counts (sigma=1): identified %d/%d via refined decoding\n", hits, len(infected))
}
