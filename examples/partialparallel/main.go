// Partially parallel measurement: the open problem of the paper's
// conclusions (§VI) made concrete.
//
// A lab owns L processing units (thermocyclers, GPUs, robot arms). The
// design is non-adaptive, so any L can execute it — the m queries are
// list-scheduled onto the units and only the makespan changes. This
// example sweeps L and prints the rounds/makespan/efficiency trade-off,
// then verifies that reconstruction quality is identical at every L.
//
//	go run ./examples/partialparallel
package main

import (
	"fmt"
	"log"
	"time"

	pooled "pooleddata"

	"pooleddata/internal/rng"
)

func main() {
	const (
		n        = 2000
		k        = 8
		seed     = 64
		perQuery = 30 * time.Minute
	)

	// 20% headroom over the recommended budget so the demo reconstructs
	// exactly rather than merely w.h.p.
	m := pooled.RecommendedQueries(n, k) * 6 / 5
	scheme, err := pooled.New(n, m, pooled.Options{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d k=%d m=%d queries, %v per query\n\n", n, k, m, perQuery)
	fmt.Printf("%6s  %6s  %12s  %8s  %10s\n", "L", "rounds", "makespan", "speedup", "efficiency")

	seqPlan := scheme.MeasurementPlan(1, perQuery)
	for _, L := range []int{1, 2, 4, 8, 16, 32, 64, 128, 0} {
		plan := scheme.MeasurementPlan(L, perQuery)
		speedup := float64(seqPlan.Makespan) / float64(plan.Makespan)
		eff := speedup / float64(plan.Units)
		label := fmt.Sprintf("%d", plan.Units)
		if L == 0 {
			label = fmt.Sprintf("%d (all)", plan.Units)
		}
		fmt.Printf("%6s  %6d  %12v  %7.1fx  %9.1f%%\n",
			label, plan.Rounds, plan.Makespan, speedup, 100*eff)
	}

	// Reconstruction is independent of L: same y, same estimate.
	r := rng.NewRandSeeded(seed)
	signal := make([]bool, n)
	for _, i := range r.SampleK(n, k) {
		signal[i] = true
	}
	y := scheme.Measure(signal)
	support, err := scheme.Reconstruct(y, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreconstruction (any L): %d-entry support recovered, consistent=%v\n",
		len(support), scheme.Consistent(support, y))
}
