// Feature selection: pooled evaluation of feature groups, after the
// machine-learning applications the paper cites (parallel feature
// selection via group testing, neural group testing).
//
// Scenario: n candidate features of which k are truly relevant. Evaluating
// a model on a *group* of features costs one expensive training run (the
// "query") and — in this idealized additive model — returns how many
// relevant features the group contains. All training runs are independent
// and launched in parallel on a cluster; the MN-Algorithm then pinpoints
// the relevant features from the pooled scores.
//
// The example compares the decoder zoo at a query budget between the
// information-theoretic and the MN threshold, where the baselines differ.
//
//	go run ./examples/featureselection
package main

import (
	"fmt"
	"log"

	pooled "pooleddata"

	"pooleddata/internal/rng"
)

func main() {
	const (
		n    = 4000 // candidate features
		k    = 10   // truly relevant
		seed = 33
	)

	// Ground truth relevance mask.
	r := rng.NewRandSeeded(seed)
	relevant := r.SampleK(n, k)
	signal := make([]bool, n)
	for _, i := range relevant {
		signal[i] = true
	}
	truth := make(map[int]bool, k)
	for _, i := range relevant {
		truth[i] = true
	}

	recommended := pooled.RecommendedQueries(n, k)
	fmt.Printf("feature screening: n=%d candidates, k=%d relevant\n", n, k)
	fmt.Printf("budget sweep (recommended m=%d, info limit %.0f):\n",
		recommended, pooled.InformationLimit(n, k))

	for _, frac := range []float64{0.5, 0.75, 1.0} {
		m := int(frac * float64(recommended))
		scheme, err := pooled.New(n, m, pooled.Options{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		y := scheme.Measure(signal)

		fmt.Printf("  m=%4d (%.0f%% of recommended):", m, frac*100)
		for _, dec := range []struct {
			kind pooled.DecoderKind
			name string
		}{
			{pooled.MN, "mn"},
			{pooled.MNRefined, "refined"},
			{pooled.BeliefPropagation, "bp"},
			{pooled.GreedyPeeling, "greedy"},
		} {
			support, err := scheme.ReconstructWith(y, k, dec.kind)
			if err != nil {
				log.Fatal(err)
			}
			hits := 0
			for _, i := range support {
				if truth[i] {
					hits++
				}
			}
			fmt.Printf("  %s %d/%d", dec.name, hits, k)
		}
		fmt.Println()
	}

	fmt.Println("each training run is one pooled query; all runs of a sweep execute in parallel")
}
