package pooled_test

import (
	"fmt"

	pooled "pooleddata"
)

// Example demonstrates the core loop: design, measure, reconstruct.
func Example() {
	const n, k = 1000, 8
	// Double the w.h.p. budget so this documented example is deterministic.
	m := 2 * pooled.RecommendedQueries(n, k)
	scheme, err := pooled.New(n, m, pooled.Options{Seed: 42})
	if err != nil {
		panic(err)
	}

	// The hidden signal (a simulation stand-in for reality).
	signal := make([]bool, n)
	for _, i := range []int{7, 77, 177, 377, 577, 777, 877, 977} {
		signal[i] = true
	}

	y := scheme.Measure(signal) // one parallel round of pooled counts
	support, err := scheme.Reconstruct(y, k)
	if err != nil {
		panic(err)
	}
	fmt.Println(support)
	// Output: [7 77 177 377 577 777 877 977]
}

// ExampleScheme_MeasurementPlan shows the partially-parallel schedule of
// the paper's §VI outlook: the same design runs on any number of units,
// only the makespan changes.
func ExampleScheme_MeasurementPlan() {
	scheme, err := pooled.New(1000, 240, pooled.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	plan := scheme.MeasurementPlan(16, 1) // 16 units, 1ns per query
	fmt.Printf("units=%d rounds=%d makespan=%dns\n", plan.Units, plan.Rounds, plan.Makespan)
	// Output: units=16 rounds=15 makespan=15ns
}

// ExampleReconstructAdaptive contrasts the sequential regime: fewer
// queries, many dependent rounds.
func ExampleReconstructAdaptive() {
	signal := make([]bool, 1024)
	signal[100] = true
	signal[900] = true
	oracle := func(indices []int) int64 {
		var c int64
		for _, i := range indices {
			if signal[i] {
				c++
			}
		}
		return c
	}
	res, err := pooled.ReconstructAdaptive(1024, oracle)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Support, res.Rounds > 1)
	// Output: [100 900] true
}

// ExampleInformationLimit prints the Theorem 2 floor next to the
// Theorem 1 budget for the paper's HIV-screening instance.
func ExampleInformationLimit() {
	n, k := 10000, 16
	fmt.Printf("info limit %.0f, MN budget %d\n",
		pooled.InformationLimit(n, k), pooled.RecommendedQueries(n, k))
	// Output: info limit 74, MN budget 577
}
