package metrics

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildRegistry assembles one of every instrument kind, including label
// values that need escaping, so the golden exposition exercises the
// whole writer.
func buildRegistry() *Registry {
	r := NewRegistry()
	jobs := r.Counter("demo_jobs_total", "Jobs by outcome.", "outcome")
	jobs.With("completed").Add(3)
	jobs.With("failed").Inc()
	r.Gauge("demo_queue_depth", "Jobs queued right now.").With().Set(7)
	esc := r.Gauge("demo_escapes", `Label escaping: backslash \ and newline.`, "value")
	esc.With(`quote " backslash \ newline` + "\n" + `end`).Set(1)
	lat := r.Histogram("demo_latency_seconds", "Request latency.", []float64{0.1, 0.5, 2.5}, "stage")
	for _, v := range []float64{0.05, 0.2, 0.3, 1, 9} {
		lat.With("decode").Observe(v)
	}
	lat.With("queue").ObserveDuration(50 * time.Millisecond)
	r.OnGather(func(e *Exporter) {
		e.Counter("demo_collected_total", "A scrape-time collector sample.", 42, "source", "snapshot")
		e.Histogram("demo_collected_seconds", "A scrape-time histogram.",
			[]float64{0.001, 1}, []uint64{2, 1, 1}, 3.5, 4)
	})
	return r
}

func TestWriteTextGolden(t *testing.T) {
	var sb strings.Builder
	if err := WriteText(&sb, buildRegistry().Gather()); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden file\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestExpositionLintsClean(t *testing.T) {
	var sb strings.Builder
	if err := WriteText(&sb, buildRegistry().Gather()); err != nil {
		t.Fatal(err)
	}
	if err := Lint(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("our own exposition fails the linter: %v", err)
	}
}

func TestLintRejects(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no type declaration", "orphan_total 1\n"},
		{"bad metric name", "# TYPE 9bad counter\n9bad 1\n"},
		{"unknown type", "# TYPE x frobnicator\nx 1\n"},
		{"duplicate type", "# TYPE x counter\n# TYPE x counter\nx 1\n"},
		{"bad value", "# TYPE x counter\nx pancake\n"},
		{"duplicate series", "# TYPE x counter\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n"},
		{"histogram missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram not cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"+Inf not equal to count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 5\n"},
		{"histogram without suffix", "# TYPE h histogram\nh 3\n"},
		{"bad label name", "# TYPE x counter\nx{0bad=\"v\"} 1\n"},
		{"unquoted label value", "# TYPE x counter\nx{a=v} 1\n"},
		{"bad escape", "# TYPE x counter\nx{a=\"\\q\"} 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Lint(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("linter accepted malformed input:\n%s", tc.in)
			}
		})
	}
}

func TestLintAcceptsEscapesAndTimestamps(t *testing.T) {
	in := "# HELP x A help line.\n# TYPE x counter\n" +
		"x{a=\"with \\\"quotes\\\" and \\\\ and \\n\"} 1 1712000000000\n"
	if err := Lint(strings.NewReader(in)); err != nil {
		t.Fatalf("linter rejected valid exposition: %v", err)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x_total", "", "l").With("v").Inc()
	r.Gauge("y", "").With().Set(3)
	r.Histogram("z_seconds", "", nil).With().Observe(0.5)
	r.OnGather(func(e *Exporter) {})
	if fams := r.Gather(); fams != nil {
		t.Fatalf("nil registry gathered %d families", len(fams))
	}
}

func TestDirectSeriesOverflow(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flood_total", "", "tenant")
	for i := 0; i < 10*DefaultMaxSeries; i++ {
		c.With(fmt.Sprintf("tenant-%d", i)).Inc()
	}
	fams := r.Gather()
	if len(fams) != 1 {
		t.Fatalf("got %d families, want 1", len(fams))
	}
	fam := fams[0]
	if len(fam.Samples) > DefaultMaxSeries+1 {
		t.Fatalf("family grew to %d series despite the bound", len(fam.Samples))
	}
	var overflow, total float64
	for _, s := range fam.Samples {
		total += s.Value
		if s.Values[0] == OverflowLabel {
			overflow = s.Value
		}
	}
	if total != 10*DefaultMaxSeries {
		t.Fatalf("observations lost: total %v, want %v", total, 10*DefaultMaxSeries)
	}
	if overflow == 0 {
		t.Fatal("no overflow series despite exceeding the bound")
	}
}

func TestExporterSeriesOverflow(t *testing.T) {
	r := NewRegistry()
	r.OnGather(func(e *Exporter) {
		for i := 0; i < 3*DefaultMaxSeries; i++ {
			e.Gauge("flood_gauge", "", 1, "tenant", fmt.Sprintf("t%d", i))
		}
	})
	fams := r.Gather()
	if len(fams) != 1 {
		t.Fatalf("got %d families, want 1", len(fams))
	}
	if n := len(fams[0].Samples); n > DefaultMaxSeries+1 {
		t.Fatalf("collector family grew to %d series despite the bound", n)
	}
	// The overflow tuple carries everything past the cap.
	var sb strings.Builder
	if err := WriteText(&sb, fams); err != nil {
		t.Fatal(err)
	}
	if err := Lint(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("overflowed exposition fails lint: %v", err)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "", []float64{1, 2}, "l").With("x")
	for _, v := range []float64{0.5, 1.5, 3, 4} {
		h.Observe(v)
	}
	fams := r.Gather()
	s := fams[0].Samples[0]
	want := []uint64{1, 1, 2}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Fatalf("bucket %d = %d, want %d (buckets %v)", i, s.Buckets[i], b, s.Buckets)
		}
	}
	if s.Count != 4 || s.Sum != 9 {
		t.Fatalf("count=%d sum=%v, want 4 and 9", s.Count, s.Sum)
	}
}

func TestFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "first", "l")
	b := r.Counter("same_total", "second", "l")
	a.With("x").Inc()
	b.With("x").Inc()
	fams := r.Gather()
	if len(fams) != 1 || fams[0].Help != "first" {
		t.Fatalf("re-registration did not return the first family: %+v", fams)
	}
	if fams[0].Samples[0].Value != 2 {
		t.Fatalf("shared family lost an increment: %v", fams[0].Samples[0].Value)
	}
}
