// Package metrics is a zero-dependency metrics registry with a
// Prometheus text-exposition writer — the observability substrate of the
// pooled-data service. It exists because the service must be scrapable
// by standard tooling without importing a client library: the engine,
// campaign store, and remote shard transport all record into (or export
// through) a Registry, and pooledd serves the whole surface on
// GET /metrics in the Prometheus text format.
//
// Two recording styles coexist:
//
//   - Direct instruments: Counter/Gauge/Histogram families created once
//     and updated on hot paths (the remote transport's per-stage request
//     timers). Updates are lock-free atomics.
//   - Collectors: callbacks registered with OnGather that export an
//     existing stats snapshot at scrape time (engine counters, campaign
//     gauges). Nothing is double-accounted: the snapshot is the source
//     of truth and the exporter is just a renderer.
//
// Label sets are bounded everywhere, mirroring the engine's bounded-key
// histogram pattern: a family holds at most MaxSeries distinct label
// tuples, and observations beyond the bound collapse into a tuple whose
// every value is OverflowLabel. Caller-controlled label values (tenant
// names, noise-model keys) therefore cannot grow a scrape without
// limit.
//
// A nil *Registry is valid and records nothing: every constructor and
// instrument method is nil-safe, so instrumented code needs no "is
// metrics enabled" branches.
package metrics

import (
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxSeries bounds distinct label tuples per family; past it,
// observations collapse into the overflow tuple.
const DefaultMaxSeries = 64

// OverflowLabel is the label value of the overflow tuple.
const OverflowLabel = "other"

// DurationBuckets are the default histogram bucket upper bounds in
// seconds — the same 1-2.5-5 ladder from 100µs to 10s as the engine's
// bounded-bucket latency histograms, so scraped histograms and
// /v1/stats histograms line up bucket for bucket.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Family types.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Registry holds metric families and scrape-time collectors. Safe for
// concurrent use. The zero value is NOT ready; use NewRegistry. A nil
// *Registry is a valid no-op sink.
type Registry struct {
	mu         sync.Mutex
	vecs       map[string]*vec
	collectors []func(*Exporter)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{vecs: make(map[string]*vec)}
}

// vec is one metric family of direct instruments.
type vec struct {
	name, help, typ string
	labels          []string
	upper           []float64 // histogram bucket upper bounds (seconds)

	mu     sync.RWMutex
	series map[string]*series
	order  []string
}

// series is one label tuple's storage. Counter/gauge values live in
// valBits (float64 bits); histograms use counts/sumBits/n.
type series struct {
	values  []string
	valBits atomic.Uint64
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	n       atomic.Uint64
}

func (s *series) add(v float64) {
	for {
		old := s.valBits.Load()
		nv := math.Float64frombits(old) + v
		if s.valBits.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

func (s *series) set(v float64) { s.valBits.Store(math.Float64bits(v)) }

func (s *series) observe(v float64, upper []float64) {
	b := len(upper)
	for i, ub := range upper {
		if v <= ub {
			b = i
			break
		}
	}
	s.counts[b].Add(1)
	for {
		old := s.sumBits.Load()
		nv := math.Float64frombits(old) + v
		if s.sumBits.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

func (s *series) observed() { s.n.Add(1) }

// seriesKey joins label values unambiguously.
func seriesKey(values []string) string { return strings.Join(values, "\x00") }

// with returns (creating if needed) the series for the label values,
// collapsing into the overflow tuple past MaxSeries.
func (v *vec) with(values []string) *series {
	if len(values) != len(v.labels) {
		panic("metrics: " + v.name + ": label value count mismatch")
	}
	key := seriesKey(values)
	v.mu.RLock()
	s := v.series[key]
	v.mu.RUnlock()
	if s != nil {
		return s
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if s = v.series[key]; s != nil {
		return s
	}
	if len(v.series) >= DefaultMaxSeries {
		ov := make([]string, len(v.labels))
		for i := range ov {
			ov[i] = OverflowLabel
		}
		key = seriesKey(ov)
		if s = v.series[key]; s != nil {
			return s
		}
		values = ov
	}
	s = &series{values: append([]string(nil), values...)}
	if v.typ == TypeHistogram {
		s.counts = make([]atomic.Uint64, len(v.upper)+1)
	}
	v.series[key] = s
	v.order = append(v.order, key)
	return s
}

// family looks up or creates a direct-instrument family. A name reused
// with a different shape returns the existing family unchanged (the
// first registration wins), so instrumented packages sharing a registry
// compose without coordination.
func (r *Registry) family(name, help, typ string, upper []float64, labels []string) *vec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vecs[name]; ok {
		return v
	}
	v := &vec{
		name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...),
		upper:  append([]float64(nil), upper...),
		series: make(map[string]*series),
	}
	r.vecs[name] = v
	return v
}

// CounterVec is a counter family; With selects a label tuple.
type CounterVec struct{ v *vec }

// Counter is one monotone series.
type Counter struct{ s *series }

// GaugeVec is a gauge family.
type GaugeVec struct{ v *vec }

// Gauge is one settable series.
type Gauge struct{ s *series }

// HistogramVec is a histogram family.
type HistogramVec struct{ v *vec }

// Histogram is one observation series.
type Histogram struct {
	s     *series
	upper []float64
}

// Counter registers (or returns) a counter family. Nil-safe.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{v: r.family(name, help, TypeCounter, nil, labels)}
}

// Gauge registers (or returns) a gauge family. Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{v: r.family(name, help, TypeGauge, nil, labels)}
}

// Histogram registers (or returns) a histogram family with the given
// bucket upper bounds (nil means DurationBuckets). Nil-safe.
func (r *Registry) Histogram(name, help string, upper []float64, labels ...string) *HistogramVec {
	if upper == nil {
		upper = DurationBuckets
	}
	return &HistogramVec{v: r.family(name, help, TypeHistogram, upper, labels)}
}

// With selects the counter for the label values.
func (cv *CounterVec) With(values ...string) *Counter {
	if cv == nil || cv.v == nil {
		return &Counter{}
	}
	return &Counter{s: cv.v.with(values)}
}

// Add increments the counter by v (negative deltas are dropped —
// counters are monotone).
func (c *Counter) Add(v float64) {
	if c == nil || c.s == nil || v < 0 {
		return
	}
	c.s.add(v)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// With selects the gauge for the label values.
func (gv *GaugeVec) With(values ...string) *Gauge {
	if gv == nil || gv.v == nil {
		return &Gauge{}
	}
	return &Gauge{s: gv.v.with(values)}
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.set(v)
}

// Add moves the gauge by v (either sign).
func (g *Gauge) Add(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.add(v)
}

// With selects the histogram for the label values.
func (hv *HistogramVec) With(values ...string) *Histogram {
	if hv == nil || hv.v == nil {
		return &Histogram{}
	}
	return &Histogram{s: hv.v.with(values), upper: hv.v.upper}
}

// Observe records one observation (seconds, for duration histograms).
func (h *Histogram) Observe(v float64) {
	if h == nil || h.s == nil {
		return
	}
	h.s.observe(v, h.upper)
	h.s.observed()
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// OnGather registers a scrape-time collector: fn runs on every Gather
// and exports snapshot-derived samples through the Exporter. Nil-safe.
func (r *Registry) OnGather(fn func(*Exporter)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Sample is one label tuple's scraped value. Counter and gauge samples
// carry Value; histogram samples carry per-bucket (non-cumulative)
// Buckets — len(Upper)+1, trailing overflow — plus Sum and Count.
type Sample struct {
	Values  []string
	Value   float64
	Buckets []uint64
	Sum     float64
	Count   uint64
}

// Family is one scraped metric family.
type Family struct {
	Name, Help, Type string
	Labels           []string
	Upper            []float64
	Samples          []Sample
}

// Gather snapshots every family: direct instruments first, then the
// collectors. Output is deterministic — families sorted by name,
// samples by label values. Nil-safe (returns nil).
func (r *Registry) Gather() []Family {
	if r == nil {
		return nil
	}
	e := &Exporter{byName: make(map[string]*Family)}
	r.mu.Lock()
	vecs := make([]*vec, 0, len(r.vecs))
	for _, v := range r.vecs {
		vecs = append(vecs, v)
	}
	collectors := append([]func(*Exporter){}, r.collectors...)
	r.mu.Unlock()

	for _, v := range vecs {
		v.mu.RLock()
		for _, key := range v.order {
			s := v.series[key]
			switch v.typ {
			case TypeHistogram:
				buckets := make([]uint64, len(s.counts))
				for i := range s.counts {
					buckets[i] = s.counts[i].Load()
				}
				e.Histogram(v.name, v.help, v.upper, buckets,
					math.Float64frombits(s.sumBits.Load()), s.n.Load(),
					pairs(v.labels, s.values)...)
			default:
				e.emit(v.name, v.help, v.typ, Sample{
					Values: s.values, Value: math.Float64frombits(s.valBits.Load()),
				}, v.labels)
			}
		}
		v.mu.RUnlock()
	}
	for _, fn := range collectors {
		fn(e)
	}
	return e.families()
}

// pairs interleaves label names and values for the Exporter call form.
func pairs(labels, values []string) []string {
	out := make([]string, 0, 2*len(labels))
	for i, l := range labels {
		out = append(out, l, values[i])
	}
	return out
}

// Exporter receives samples during a Gather. Collector callbacks emit
// through it; label name/value pairs alternate in lv (name, value,
// name, value, ...). The first sample of a family fixes its label
// names; families are bounded at DefaultMaxSeries tuples with overflow
// aggregation, same as direct instruments.
type Exporter struct {
	byName map[string]*Family
	order  []string
}

// Counter exports one counter sample.
func (e *Exporter) Counter(name, help string, v float64, lv ...string) {
	labels, values := splitPairs(lv)
	e.emit(name, help, TypeCounter, Sample{Values: values, Value: v}, labels)
}

// Gauge exports one gauge sample.
func (e *Exporter) Gauge(name, help string, v float64, lv ...string) {
	labels, values := splitPairs(lv)
	e.emit(name, help, TypeGauge, Sample{Values: values, Value: v}, labels)
}

// Histogram exports one histogram sample from a snapshot: upper are the
// bucket bounds in seconds, buckets the per-bucket counts
// (len(upper)+1, trailing overflow), sum the observation total in
// seconds.
func (e *Exporter) Histogram(name, help string, upper []float64, buckets []uint64, sum float64, count uint64, lv ...string) {
	labels, values := splitPairs(lv)
	fam := e.familyFor(name, help, TypeHistogram, labels)
	if fam.Upper == nil {
		fam.Upper = append([]float64(nil), upper...)
	}
	e.add(fam, Sample{Values: values, Buckets: append([]uint64(nil), buckets...), Sum: sum, Count: count})
}

func splitPairs(lv []string) (labels, values []string) {
	if len(lv)%2 != 0 {
		panic("metrics: odd label name/value list")
	}
	for i := 0; i < len(lv); i += 2 {
		labels = append(labels, lv[i])
		values = append(values, lv[i+1])
	}
	return labels, values
}

func (e *Exporter) familyFor(name, help, typ string, labels []string) *Family {
	fam, ok := e.byName[name]
	if !ok {
		fam = &Family{Name: name, Help: help, Type: typ, Labels: append([]string(nil), labels...)}
		e.byName[name] = fam
		e.order = append(e.order, name)
	}
	return fam
}

func (e *Exporter) emit(name, help, typ string, s Sample, labels []string) {
	e.add(e.familyFor(name, help, typ, labels), s)
}

// add appends a sample with the bounded-tuple overflow rule: past
// DefaultMaxSeries distinct tuples, samples aggregate into the
// all-OverflowLabel tuple (values and bucket counts sum).
func (e *Exporter) add(fam *Family, s Sample) {
	if len(fam.Samples) >= DefaultMaxSeries {
		ov := make([]string, len(fam.Labels))
		for i := range ov {
			ov[i] = OverflowLabel
		}
		key := seriesKey(ov)
		for i := range fam.Samples {
			if seriesKey(fam.Samples[i].Values) == key {
				fam.Samples[i].Value += s.Value
				fam.Samples[i].Sum += s.Sum
				fam.Samples[i].Count += s.Count
				for b := range s.Buckets {
					if b < len(fam.Samples[i].Buckets) {
						fam.Samples[i].Buckets[b] += s.Buckets[b]
					}
				}
				return
			}
		}
		s.Values = ov
		if s.Buckets != nil {
			s.Buckets = append([]uint64(nil), s.Buckets...)
		}
	}
	fam.Samples = append(fam.Samples, s)
}

func (e *Exporter) families() []Family {
	out := make([]Family, 0, len(e.order))
	names := append([]string(nil), e.order...)
	sort.Strings(names)
	for _, name := range names {
		fam := e.byName[name]
		sort.SliceStable(fam.Samples, func(i, j int) bool {
			return seriesKey(fam.Samples[i].Values) < seriesKey(fam.Samples[j].Values)
		})
		out = append(out, *fam)
	}
	return out
}

// Handler serves the registry in the Prometheus text exposition format.
// Nil-safe (serves an empty exposition).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteText(w, r.Gather())
	})
}
