package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders gathered families in the Prometheus text exposition
// format (version 0.0.4): one # HELP and # TYPE line per family, then
// one line per series; histograms expand into cumulative _bucket series
// (le labels, trailing +Inf) plus _sum and _count. Output is
// deterministic for a deterministic Gather.
func WriteText(w io.Writer, fams []Family) error {
	bw := bufio.NewWriter(w)
	for _, fam := range fams {
		if fam.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.Name, fam.Type)
		for _, s := range fam.Samples {
			switch fam.Type {
			case TypeHistogram:
				writeHistogram(bw, fam, s)
			default:
				fmt.Fprintf(bw, "%s%s %s\n", fam.Name, labelString(fam.Labels, s.Values, "", 0), formatFloat(s.Value))
			}
		}
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, fam Family, s Sample) {
	var cum uint64
	for i, ub := range fam.Upper {
		if i < len(s.Buckets) {
			cum += s.Buckets[i]
		}
		fmt.Fprintf(bw, "%s_bucket%s %d\n", fam.Name, labelString(fam.Labels, s.Values, "le", ub), cum)
	}
	// The overflow bucket folds into +Inf, which must equal _count.
	fmt.Fprintf(bw, "%s_bucket%s %d\n", fam.Name, labelString(fam.Labels, s.Values, "le", math.Inf(1)), s.Count)
	fmt.Fprintf(bw, "%s_sum%s %s\n", fam.Name, labelString(fam.Labels, s.Values, "", 0), formatFloat(s.Sum))
	fmt.Fprintf(bw, "%s_count%s %d\n", fam.Name, labelString(fam.Labels, s.Values, "", 0), s.Count)
}

// labelString renders {a="x",b="y"} with optional trailing le bound;
// empty when there are no labels at all.
func labelString(labels, values []string, le string, bound float64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(le)
		b.WriteString(`="`)
		b.WriteString(formatFloat(bound))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Lint validates a Prometheus text exposition without external
// dependencies — the checker behind `make metrics-lint`. It enforces
// the rules a scraper actually depends on:
//
//   - metric and label names match the Prometheus grammar
//   - every sample belongs to a family with a single # TYPE, declared
//     with a known type, and histogram _bucket/_sum/_count samples
//     resolve to their base family
//   - label values are well-formed quoted strings with valid escapes;
//     _bucket series carry an le label
//   - sample values parse as floats (+Inf/-Inf/NaN allowed)
//   - no duplicate series
//   - each histogram series has a +Inf bucket, cumulative
//     non-decreasing bucket counts, and +Inf equal to its _count
func Lint(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	types := make(map[string]string)
	seen := make(map[string]bool)
	hists := make(map[string]*histCheck) // family + sorted non-le labels
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := lintComment(text, types); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			continue
		}
		if err := lintSample(text, types, seen, hists); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, hc := range hists {
		if err := hc.check(); err != nil {
			return fmt.Errorf("histogram %s: %w", key, err)
		}
	}
	return nil
}

type histCheck struct {
	bounds []float64
	counts []float64
	sum    *float64
	count  *float64
}

func (hc *histCheck) check() error {
	if hc.count == nil {
		return fmt.Errorf("missing _count")
	}
	if hc.sum == nil {
		return fmt.Errorf("missing _sum")
	}
	// Sort buckets by bound, then require cumulative non-decreasing
	// counts ending at a +Inf bucket equal to _count.
	idx := make([]int, len(hc.bounds))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return hc.bounds[idx[i]] < hc.bounds[idx[j]] })
	prev := math.Inf(-1)
	prevCount := -1.0
	hasInf := false
	for _, i := range idx {
		if hc.bounds[i] == prev {
			return fmt.Errorf("duplicate le=%v bucket", prev)
		}
		prev = hc.bounds[i]
		if hc.counts[i] < prevCount {
			return fmt.Errorf("bucket counts not cumulative at le=%v", hc.bounds[i])
		}
		prevCount = hc.counts[i]
		if math.IsInf(hc.bounds[i], 1) {
			hasInf = true
			if hc.counts[i] != *hc.count {
				return fmt.Errorf("+Inf bucket %v != _count %v", hc.counts[i], *hc.count)
			}
		}
	}
	if !hasInf {
		return fmt.Errorf("missing le=\"+Inf\" bucket")
	}
	return nil
}

func lintComment(text string, types map[string]string) error {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line")
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		types[name] = typ
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line")
		}
	}
	return nil
}

func lintSample(text string, types map[string]string, seen map[string]bool, hists map[string]*histCheck) error {
	name, rest, err := scanName(text)
	if err != nil {
		return err
	}
	labels, values, rest, err := scanLabels(rest)
	if err != nil {
		return err
	}
	valueStr := strings.Fields(rest)
	if len(valueStr) < 1 || len(valueStr) > 2 {
		return fmt.Errorf("expected value (and optional timestamp) after series")
	}
	value, err := parseValue(valueStr[0])
	if err != nil {
		return fmt.Errorf("bad sample value %q: %v", valueStr[0], err)
	}
	if len(valueStr) == 2 {
		if _, err := strconv.ParseInt(valueStr[1], 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q", valueStr[1])
		}
	}

	// Resolve the family: histogram component samples attach to their
	// base family's TYPE declaration.
	family, suffix := name, ""
	if _, ok := types[name]; !ok {
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name && types[base] == "histogram" {
				family, suffix = base, sfx
				break
			}
		}
	}
	typ, ok := types[family]
	if !ok {
		return fmt.Errorf("sample %q has no # TYPE declaration", name)
	}
	if typ == "histogram" && family == name {
		return fmt.Errorf("histogram %q exposed without _bucket/_sum/_count suffix", name)
	}

	// le handling + duplicate-series detection on the full label set.
	var le string
	nonLE := make([]string, 0, len(labels))
	for i, l := range labels {
		if !validLabelName(l) {
			return fmt.Errorf("invalid label name %q", l)
		}
		if l == "le" {
			le = values[i]
			continue
		}
		nonLE = append(nonLE, l+"="+values[i])
	}
	sort.Strings(nonLE)
	seriesID := name + "{" + strings.Join(nonLE, ",") + "}"
	if suffix == "_bucket" {
		if le == "" {
			return fmt.Errorf("%s_bucket sample missing le label", family)
		}
		seriesID += "{le=" + le + "}"
	}
	if seen[seriesID] {
		return fmt.Errorf("duplicate series %s", seriesID)
	}
	seen[seriesID] = true

	if suffix != "" {
		key := family + "{" + strings.Join(nonLE, ",") + "}"
		hc := hists[key]
		if hc == nil {
			hc = &histCheck{}
			hists[key] = hc
		}
		switch suffix {
		case "_bucket":
			bound, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("bad le value %q", le)
			}
			hc.bounds = append(hc.bounds, bound)
			hc.counts = append(hc.counts, value)
		case "_sum":
			hc.sum = &value
		case "_count":
			hc.count = &value
		}
	}
	return nil
}

// scanName splits the leading metric name from a sample line.
func scanName(text string) (name, rest string, err error) {
	end := len(text)
	for i := 0; i < len(text); i++ {
		if text[i] == '{' || text[i] == ' ' || text[i] == '\t' {
			end = i
			break
		}
	}
	name = text[:end]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	return name, text[end:], nil
}

// scanLabels parses an optional {k="v",...} block, handling escapes.
func scanLabels(text string) (labels, values []string, rest string, err error) {
	if !strings.HasPrefix(text, "{") {
		return nil, nil, text, nil
	}
	i := 1
	for {
		// skip whitespace and detect end
		for i < len(text) && (text[i] == ' ' || text[i] == ',') {
			i++
		}
		if i < len(text) && text[i] == '}' {
			return labels, values, text[i+1:], nil
		}
		start := i
		for i < len(text) && text[i] != '=' {
			i++
		}
		if i >= len(text) {
			return nil, nil, "", fmt.Errorf("unterminated label block")
		}
		labels = append(labels, text[start:i])
		i++ // '='
		if i >= len(text) || text[i] != '"' {
			return nil, nil, "", fmt.Errorf("label value must be quoted")
		}
		i++
		var val strings.Builder
		for {
			if i >= len(text) {
				return nil, nil, "", fmt.Errorf("unterminated label value")
			}
			c := text[i]
			if c == '\\' {
				if i+1 >= len(text) {
					return nil, nil, "", fmt.Errorf("dangling escape in label value")
				}
				switch text[i+1] {
				case '\\', '"':
					val.WriteByte(text[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, nil, "", fmt.Errorf("invalid escape \\%c in label value", text[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		values = append(values, val.String())
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
