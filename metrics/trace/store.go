package trace

import (
	"hash/fnv"
	"sync"
	"time"
)

// Config sizes a Store and its tail sampler.
type Config struct {
	// Capacity bounds the retained-trace ring; <=0 means 1024. Memory
	// is O(Capacity · spans-per-trace) regardless of offered volume.
	Capacity int
	// SampleRate is the probability a non-tail trace (no error, not
	// slow) is retained, in [0, 1]. Sampling is deterministic per trace
	// id — the same id always samples the same way — so a retry or a
	// federated replica makes the same decision.
	SampleRate float64
	// SlowFactor sets the tail threshold: a trace slower than
	// SlowFactor × the rolling EWMA latency is always retained.
	// <=0 means 3.
	SlowFactor float64
	// MinWarm is the number of observations before the slow detector
	// arms (an empty EWMA would flag the first job ever seen).
	// <=0 means 64.
	MinWarm int
}

func (c Config) capacity() int {
	if c.Capacity <= 0 {
		return 1024
	}
	return c.Capacity
}

func (c Config) slowFactor() float64 {
	if c.SlowFactor <= 0 {
		return 3
	}
	return c.SlowFactor
}

func (c Config) minWarm() int {
	if c.MinWarm <= 0 {
		return 64
	}
	return c.MinWarm
}

// StoreStats snapshots the sampler's decision counters.
type StoreStats struct {
	Offered         uint64 `json:"offered"`
	RetainedError   uint64 `json:"retained_error"`
	RetainedSlow    uint64 `json:"retained_slow"`
	Sampled         uint64 `json:"sampled"`
	Dropped         uint64 `json:"dropped"`
	Stored          int    `json:"stored"`
	SlowThresholdNS int64  `json:"slow_threshold_ns"`
}

// Store is a bounded ring of retained traces with tail sampling:
// errored traces and traces slower than the rolling threshold are
// always kept, the rest are kept with probability SampleRate (decided
// by a hash of the trace id). Old traces are overwritten in FIFO order
// once the ring is full, so the store never grows past Capacity.
type Store struct {
	cfg      Config
	onRetain func(*Trace, string)

	mu      sync.Mutex
	ring    []*Trace
	next    int
	byID    map[string]int
	ewmaNS  float64
	obs     int
	offered uint64
	retErr  uint64
	retSlow uint64
	sampled uint64
	dropped uint64
}

// NewStore builds a store; the ring is allocated up front.
func NewStore(cfg Config) *Store {
	return &Store{
		cfg:  cfg,
		ring: make([]*Trace, cfg.capacity()),
		byID: make(map[string]int, cfg.capacity()),
	}
}

// OnRetain registers a callback fired (outside the store lock) for
// every tail-retained trace — reason "error" or "slow", never
// "sampled" — the hook for the edge-limited slow-job log. Set it
// before the store sees traffic.
func (s *Store) OnRetain(fn func(tr *Trace, reason string)) {
	if s == nil {
		return
	}
	s.onRetain = fn
}

// sampleKeep is the deterministic sampling decision for a trace id:
// FNV-1a of the id, normalized to [0, 1), compared against rate.
func sampleKeep(id string, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	// Top 53 bits → an exactly representable float in [0, 1).
	u := h.Sum64() >> 11
	return float64(u)/(1<<53) < rate
}

// Offer runs the tail sampler on a finished trace and retains it if it
// qualifies. It reports the decision and the retention reason
// ("error", "slow", "sampled", or "" when dropped). Nil-safe on both
// the store and the trace.
func (s *Store) Offer(tr *Trace) (retained bool, reason string) {
	if s == nil || tr == nil {
		return false, ""
	}
	s.mu.Lock()
	s.offered++
	// Threshold from the EWMA before folding this observation in, so
	// one slow job cannot raise the bar it is judged against.
	threshold := s.slowThresholdLocked()
	armed := s.obs >= s.cfg.minWarm()
	if s.obs == 0 {
		s.ewmaNS = float64(tr.DurNS)
	} else {
		s.ewmaNS += (float64(tr.DurNS) - s.ewmaNS) / 64
	}
	s.obs++

	switch {
	case tr.Err != "":
		reason = "error"
		s.retErr++
	case armed && tr.DurNS > threshold:
		reason = "slow"
		s.retSlow++
	case sampleKeep(tr.ID, s.cfg.SampleRate):
		reason = "sampled"
		s.sampled++
	default:
		s.dropped++
		s.mu.Unlock()
		return false, ""
	}
	tr.Retained = reason
	if old := s.ring[s.next]; old != nil {
		if i, ok := s.byID[old.ID]; ok && i == s.next {
			delete(s.byID, old.ID)
		}
	}
	s.ring[s.next] = tr
	s.byID[tr.ID] = s.next
	s.next = (s.next + 1) % len(s.ring)
	fn := s.onRetain
	s.mu.Unlock()

	if fn != nil && reason != "sampled" {
		fn(tr, reason)
	}
	return true, reason
}

// slowThresholdLocked returns the current tail threshold in
// nanoseconds (0 while the detector is warming up). Caller holds s.mu.
func (s *Store) slowThresholdLocked() int64 {
	if s.obs < s.cfg.minWarm() {
		return 0
	}
	return int64(s.ewmaNS * s.cfg.slowFactor())
}

// Get returns the retained trace with the given id.
func (s *Store) Get(id string) (*Trace, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	tr := s.ring[i]
	if tr == nil || tr.ID != id {
		return nil, false
	}
	return tr, true
}

// Filter narrows a Recent listing. Zero values match everything.
type Filter struct {
	Tenant    string
	Scheme    string
	MinDur    time.Duration
	ErrorOnly bool
}

func (f Filter) match(tr *Trace) bool {
	if f.Tenant != "" && tr.Tenant != f.Tenant {
		return false
	}
	if f.Scheme != "" && tr.Scheme != f.Scheme {
		return false
	}
	if f.MinDur > 0 && tr.DurNS < f.MinDur.Nanoseconds() {
		return false
	}
	if f.ErrorOnly && tr.Err == "" {
		return false
	}
	return true
}

// Recent returns up to limit retained traces matching f, newest first.
// limit <= 0 means 50.
func (s *Store) Recent(f Filter, limit int) []*Trace {
	if s == nil {
		return nil
	}
	if limit <= 0 {
		limit = 50
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Trace, 0, limit)
	n := len(s.ring)
	for off := 1; off <= n && len(out) < limit; off++ {
		tr := s.ring[(s.next-off+n)%n]
		if tr == nil {
			continue
		}
		if f.match(tr) {
			out = append(out, tr)
		}
	}
	return out
}

// Len reports how many traces are retained right now.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// Stats snapshots the sampler counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Offered:         s.offered,
		RetainedError:   s.retErr,
		RetainedSlow:    s.retSlow,
		Sampled:         s.sampled,
		Dropped:         s.dropped,
		Stored:          len(s.byID),
		SlowThresholdNS: s.slowThresholdLocked(),
	}
}
