// Package trace is the span layer of the observability surface: a
// dependency-free sibling of pooleddata/metrics that records per-job
// span trees (ingress → admission → tenant queue → shard queue → wire →
// worker decode) into a bounded in-memory ring with tail sampling.
//
// The design mirrors the metrics registry's contract: every producer
// handle is nil-safe (a nil *Builder records nothing at zero cost), the
// store is bounded (a fixed ring of retained traces, O(1) per offer),
// and the hot path never blocks on a consumer — retention decisions are
// a hash, a float compare, and a ring slot under one short mutex.
//
// Spans carry offsets from the trace start rather than wall timestamps,
// so spans synthesized for the far side of a federation hop (worker
// queue and decode time reported back by `Pooled-Handle-Ns` style
// accounting) need no clock synchronization: the client lays them out
// inside the request window it measured locally.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Span tiers: which side of the federation hop a span was measured on.
const (
	TierFrontend = "frontend"
	TierWorker   = "worker"
)

// Span is one timed stage of a job, positioned relative to the trace
// start (StartNS is an offset, not a wall time).
type Span struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	Tier    string `json:"tier,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Err     string `json:"err,omitempty"`
}

// Trace is one finished span tree. Traces are immutable once built —
// the store hands out the same pointer to every reader.
type Trace struct {
	ID     string    `json:"id"`
	Tenant string    `json:"tenant,omitempty"`
	Scheme string    `json:"scheme,omitempty"`
	Start  time.Time `json:"start"`
	DurNS  int64     `json:"dur_ns"`
	Err    string    `json:"err,omitempty"`
	// Retained records why the tail sampler kept this trace: "error",
	// "slow", or "sampled".
	Retained string `json:"retained,omitempty"`
	Spans    []Span `json:"spans"`
}

// NewID returns a fresh 16-hex-char trace id (8 random bytes).
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant id keeps
		// the pipeline alive and is obvious in any trace listing.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// rootSpanID is the id of the span created by NewBuilder; children
// passing parent 0 are normalized to it.
const rootSpanID = 1

// Builder accumulates spans for one job. All methods are nil-safe:
// a nil *Builder records nothing, so call sites sprinkle spans
// unconditionally and pay only a pointer test when tracing is off.
//
// Ownership convention: whoever creates a Builder finishes it (Finish)
// and offers the result to a Store; everyone else only appends spans.
// A Builder is safe for concurrent use — the campaign dispatcher, the
// engine worker, and the remote sender all touch the same builder.
type Builder struct {
	mu     sync.Mutex
	id     string
	tenant string
	scheme string
	errMsg string
	start  time.Time
	next   uint64
	spans  []Span
	done   bool
}

// NewBuilder starts a trace rooted at a span named rootName (tier as
// given) covering the whole trace. The root's duration is stamped at
// Finish.
func NewBuilder(id, rootName, tier string) *Builder {
	b := &Builder{id: id, start: time.Now(), next: rootSpanID + 1}
	b.spans = append(b.spans, Span{ID: rootSpanID, Name: rootName, Tier: tier})
	return b
}

// ID returns the trace id ("" on a nil builder).
func (b *Builder) ID() string {
	if b == nil {
		return ""
	}
	return b.id
}

// Root returns the root span's id, for use as a parent.
func (b *Builder) Root() uint64 {
	if b == nil {
		return 0
	}
	return rootSpanID
}

// SetTenant labels the trace with the submitting tenant.
func (b *Builder) SetTenant(t string) {
	if b == nil || t == "" {
		return
	}
	b.mu.Lock()
	b.tenant = t
	b.mu.Unlock()
}

// SetScheme labels the trace with the scheme routing key.
func (b *Builder) SetScheme(s string) {
	if b == nil || s == "" {
		return
	}
	b.mu.Lock()
	if b.scheme == "" {
		b.scheme = s
	}
	b.mu.Unlock()
}

// SetError marks the trace errored (tail-retained regardless of the
// sampling rate). The first non-empty message wins.
func (b *Builder) SetError(msg string) {
	if b == nil || msg == "" {
		return
	}
	b.mu.Lock()
	if b.errMsg == "" {
		b.errMsg = msg
	}
	b.mu.Unlock()
}

// Span appends a completed span covering [start, start+d), returning
// its id for use as a parent. A zero parent attaches to the root.
func (b *Builder) Span(name, tier string, parent uint64, start time.Time, d time.Duration) uint64 {
	if b == nil {
		return 0
	}
	return b.SpanAt(name, tier, parent, start.Sub(b.start).Nanoseconds(), d.Nanoseconds())
}

// SpanAt appends a completed span at an explicit offset from the trace
// start — the form used for spans synthesized on behalf of the far side
// of a federation hop, where only durations (not wall times) are known.
func (b *Builder) SpanAt(name, tier string, parent uint64, startNS, durNS int64) uint64 {
	if b == nil {
		return 0
	}
	if startNS < 0 {
		startNS = 0
	}
	if durNS < 0 {
		durNS = 0
	}
	if parent == 0 {
		parent = rootSpanID
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return 0
	}
	id := b.next
	b.next++
	b.spans = append(b.spans, Span{ID: id, Parent: parent, Name: name, Tier: tier, StartNS: startNS, DurNS: durNS})
	return id
}

// Finish seals the builder and returns the immutable trace, stamping
// the root span and trace duration as time-since-creation. The second
// and later calls return nil — only the owner's Finish produces a
// trace to offer.
func (b *Builder) Finish() *Trace {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return nil
	}
	b.done = true
	dur := time.Since(b.start).Nanoseconds()
	if dur < 0 {
		dur = 0
	}
	spans := make([]Span, len(b.spans))
	copy(spans, b.spans)
	if spans[0].DurNS == 0 {
		spans[0].DurNS = dur
	}
	return &Trace{
		ID:     b.id,
		Tenant: b.tenant,
		Scheme: b.scheme,
		Start:  b.start,
		DurNS:  dur,
		Err:    b.errMsg,
		Spans:  spans,
	}
}
