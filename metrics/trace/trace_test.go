package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func mkTrace(id string, dur time.Duration, errMsg string) *Trace {
	b := NewBuilder(id, "job", TierFrontend)
	b.SetTenant("t1")
	b.SetScheme("s1")
	if errMsg != "" {
		b.SetError(errMsg)
	}
	b.SpanAt("decode", TierWorker, 0, 0, dur.Nanoseconds())
	tr := b.Finish()
	// Tests drive the sampler with synthetic durations; the builder
	// stamped wall-clock elapsed, which is ~0 here.
	tr.DurNS = dur.Nanoseconds()
	return tr
}

func TestNilBuilderAndStoreAreNoOps(t *testing.T) {
	var b *Builder
	if id := b.ID(); id != "" {
		t.Fatalf("nil builder ID = %q", id)
	}
	b.SetTenant("x")
	b.SetScheme("y")
	b.SetError("boom")
	if got := b.Span("s", TierFrontend, 0, time.Now(), time.Second); got != 0 {
		t.Fatalf("nil builder Span = %d", got)
	}
	if tr := b.Finish(); tr != nil {
		t.Fatalf("nil builder Finish = %v", tr)
	}
	var s *Store
	if ok, _ := s.Offer(mkTrace("a", time.Millisecond, "")); ok {
		t.Fatal("nil store retained a trace")
	}
	if got := s.Recent(Filter{}, 10); got != nil {
		t.Fatalf("nil store Recent = %v", got)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("nil store Get hit")
	}
}

func TestBuilderSpanTree(t *testing.T) {
	b := NewBuilder("abc", "ingress", TierFrontend)
	root := b.Root()
	q := b.SpanAt("shard_queue", TierFrontend, root, 10, 20)
	d := b.SpanAt("decode", TierWorker, q, 30, 40)
	if q == 0 || d == 0 || q == d {
		t.Fatalf("span ids q=%d d=%d", q, d)
	}
	tr := b.Finish()
	if tr == nil {
		t.Fatal("Finish returned nil")
	}
	if b.Finish() != nil {
		t.Fatal("second Finish returned a trace")
	}
	if b.SpanAt("late", TierFrontend, root, 0, 1) != 0 {
		t.Fatal("span accepted after Finish")
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("got %d spans", len(tr.Spans))
	}
	if tr.Spans[0].ID != root || tr.Spans[0].Parent != 0 {
		t.Fatalf("root span = %+v", tr.Spans[0])
	}
	byID := map[uint64]Span{}
	for _, sp := range tr.Spans {
		byID[sp.ID] = sp
	}
	if byID[d].Parent != q || byID[q].Parent != root {
		t.Fatalf("parent links broken: %+v", tr.Spans)
	}
}

func TestTailSamplerRetainsErrorsAndSlow(t *testing.T) {
	s := NewStore(Config{Capacity: 64, SampleRate: 0, MinWarm: 8, SlowFactor: 3})
	// Warm the EWMA with uniform 1ms jobs.
	for i := 0; i < 32; i++ {
		if ok, _ := s.Offer(mkTrace(fmt.Sprintf("warm-%d", i), time.Millisecond, "")); ok {
			t.Fatalf("warm trace %d retained at rate 0", i)
		}
	}
	if ok, reason := s.Offer(mkTrace("err", time.Millisecond, "boom")); !ok || reason != "error" {
		t.Fatalf("errored trace: ok=%v reason=%q", ok, reason)
	}
	if ok, reason := s.Offer(mkTrace("slow", 50*time.Millisecond, "")); !ok || reason != "slow" {
		t.Fatalf("slow trace: ok=%v reason=%q", ok, reason)
	}
	st := s.Stats()
	if st.RetainedError != 1 || st.RetainedSlow != 1 || st.Sampled != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if tr, ok := s.Get("slow"); !ok || tr.Retained != "slow" {
		t.Fatalf("Get(slow) = %v %v", tr, ok)
	}
}

func TestSamplingIsDeterministicPerID(t *testing.T) {
	const n = 2000
	decide := func() map[string]bool {
		s := NewStore(Config{Capacity: n, SampleRate: 0.25, MinWarm: 1 << 30})
		kept := map[string]bool{}
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("trace-%d", i)
			ok, _ := s.Offer(mkTrace(id, time.Millisecond, ""))
			kept[id] = ok
		}
		return kept
	}
	a, b := decide(), decide()
	kept := 0
	for id, ka := range a {
		if b[id] != ka {
			t.Fatalf("sampling decision for %s differs across runs", id)
		}
		if ka {
			kept++
		}
	}
	// A quarter of 2000 ids, with generous slack for hash variance.
	if kept < n/8 || kept > n/2 {
		t.Fatalf("kept %d of %d at rate 0.25", kept, n)
	}
}

func TestRecentFiltersAndOrder(t *testing.T) {
	s := NewStore(Config{Capacity: 16, SampleRate: 1})
	for i := 0; i < 4; i++ {
		b := NewBuilder(fmt.Sprintf("id-%d", i), "job", TierFrontend)
		b.SetTenant(fmt.Sprintf("tenant-%d", i%2))
		b.SetScheme("s1")
		if i == 3 {
			b.SetError("boom")
		}
		tr := b.Finish()
		tr.DurNS = int64(i+1) * int64(time.Millisecond)
		s.Offer(tr)
	}
	recent := s.Recent(Filter{}, 0)
	if len(recent) != 4 || recent[0].ID != "id-3" || recent[3].ID != "id-0" {
		t.Fatalf("Recent order wrong: %v", ids(recent))
	}
	if got := s.Recent(Filter{Tenant: "tenant-1"}, 0); len(got) != 2 {
		t.Fatalf("tenant filter: %v", ids(got))
	}
	if got := s.Recent(Filter{ErrorOnly: true}, 0); len(got) != 1 || got[0].ID != "id-3" {
		t.Fatalf("error filter: %v", ids(got))
	}
	if got := s.Recent(Filter{MinDur: 3 * time.Millisecond}, 0); len(got) != 2 {
		t.Fatalf("min-dur filter: %v", ids(got))
	}
	if got := s.Recent(Filter{Scheme: "nope"}, 0); len(got) != 0 {
		t.Fatalf("scheme filter: %v", ids(got))
	}
}

func ids(trs []*Trace) []string {
	out := make([]string, len(trs))
	for i, tr := range trs {
		out[i] = tr.ID
	}
	return out
}

// TestStoreBoundedUnderHammer is the bounded-memory contract: 10k jobs
// offered at full sampling from several writers, with concurrent
// listing/get scrapes, never grow the store past its capacity (run
// under -race in CI).
func TestStoreBoundedUnderHammer(t *testing.T) {
	const (
		cap     = 128
		writers = 4
		jobs    = 10000
	)
	s := NewStore(Config{Capacity: cap, SampleRate: 1})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range s.Recent(Filter{}, 50) {
					if got, ok := s.Get(tr.ID); ok && got.ID != tr.ID {
						t.Errorf("Get(%s) returned %s", tr.ID, got.ID)
						return
					}
				}
				if n := s.Len(); n > cap {
					t.Errorf("store grew to %d > cap %d", n, cap)
					return
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < jobs/writers; i++ {
				b := NewBuilder(fmt.Sprintf("w%d-%d", w, i), "job", TierFrontend)
				b.SpanAt("decode", TierWorker, 0, 0, int64(i))
				s.Offer(b.Finish())
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if n := s.Len(); n > cap {
		t.Fatalf("store holds %d > cap %d after hammer", n, cap)
	}
	st := s.Stats()
	if st.Offered != jobs {
		t.Fatalf("offered %d, want %d", st.Offered, jobs)
	}
	if st.Stored > cap {
		t.Fatalf("stats stored %d > cap %d", st.Stored, cap)
	}
}

func TestOnRetainFiresForTailOnly(t *testing.T) {
	s := NewStore(Config{Capacity: 8, SampleRate: 1, MinWarm: 4})
	var mu sync.Mutex
	var got []string
	s.OnRetain(func(tr *Trace, reason string) {
		mu.Lock()
		got = append(got, tr.ID+":"+reason)
		mu.Unlock()
	})
	s.Offer(mkTrace("ok", time.Millisecond, ""))
	s.Offer(mkTrace("bad", time.Millisecond, "boom"))
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "bad:error" {
		t.Fatalf("OnRetain fired %v", got)
	}
}
