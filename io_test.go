package pooled

import (
	"bytes"
	"testing"
)

func TestDesignCSVRoundTripThroughPublicAPI(t *testing.T) {
	n, k := 800, 6
	m := RecommendedQueries(n, k) * 6 / 5
	scheme, err := New(n, m, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	signal := makeSignal(n, k, 22)
	y := scheme.Measure(signal)

	// Ship design and results through the file formats.
	var design, counts bytes.Buffer
	if err := scheme.WriteDesignCSV(&design); err != nil {
		t.Fatal(err)
	}
	if err := WriteCountsCSV(&counts, y); err != nil {
		t.Fatal(err)
	}

	// A separate process loads both and decodes.
	loaded, err := LoadDesignCSV(&design)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != n || loaded.M() != m {
		t.Fatalf("loaded scheme shape %d/%d", loaded.N(), loaded.M())
	}
	y2, err := ReadCountsCSV(&counts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Reconstruct(y2, k)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, supportOf(signal)) {
		t.Fatal("decode after file round trip failed")
	}
	if !loaded.Consistent(got, y2) {
		t.Fatal("consistency check failed on loaded scheme")
	}
}

func TestLoadDesignCSVRejectsGarbage(t *testing.T) {
	if _, err := LoadDesignCSV(bytes.NewReader([]byte("not,a,design\n"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReconstructAdaptivePublicAPI(t *testing.T) {
	n, k := 5000, 9
	signal := makeSignal(n, k, 23)
	oracle := func(indices []int) int64 {
		var c int64
		for _, i := range indices {
			if signal[i] {
				c++
			}
		}
		return c
	}
	res, err := ReconstructAdaptive(n, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(res.Support, supportOf(signal)) {
		t.Fatal("adaptive reconstruction wrong")
	}
	if res.Rounds <= 1 {
		t.Fatal("adaptive reconstruction must use multiple rounds")
	}
	// Query count beats the parallel threshold (the trade-off the paper
	// frames: fewer queries, more rounds).
	if float64(res.Queries) >= float64(RecommendedQueries(n, k)) {
		t.Fatalf("adaptive used %d queries, parallel recommendation is %d",
			res.Queries, RecommendedQueries(n, k))
	}
	if _, err := ReconstructAdaptive(-1, oracle); err == nil {
		t.Fatal("negative n accepted")
	}
}
