package pooled

import (
	"io"

	"pooleddata/internal/adaptive"
	"pooleddata/internal/graph"
	"pooleddata/internal/labio"
)

// This file holds the public I/O surface: design/result serialization for
// driving a real measurement campaign, and the adaptive (sequential)
// reconstruction mode for comparison with the paper's one-round design.

// WriteDesignCSV emits the scheme's pooling design in the labio CSV
// format. A pipetting robot (or any external measurement pipeline)
// consumes this file; the counts come back via ReadCountsCSV.
func (s *Scheme) WriteDesignCSV(w io.Writer) error {
	return labio.WriteDesign(w, s.g)
}

// WriteCountsCSV emits measured counts in the labio CSV format.
func WriteCountsCSV(w io.Writer, y []int64) error {
	return labio.WriteCounts(w, y)
}

// ReadCountsCSV parses a results file produced by an external measurement
// pipeline (or WriteCountsCSV).
func ReadCountsCSV(r io.Reader) ([]int64, error) {
	return labio.ReadCounts(r)
}

// LoadDesignCSV reconstructs a Scheme from a design file written by
// WriteDesignCSV, so decoding can run in a different process (or on a
// different machine) than design generation.
func LoadDesignCSV(r io.Reader) (*Scheme, error) {
	g, err := labio.ReadDesign(r)
	if err != nil {
		return nil, err
	}
	return newSchemeFromGraph(g), nil
}

// newSchemeFromGraph wraps a prebuilt graph.
func newSchemeFromGraph(g *graph.Bipartite) *Scheme {
	return &Scheme{n: g.N(), m: g.M(), g: g}
}

// AdaptiveResult reports a sequential reconstruction (see
// ReconstructAdaptive).
type AdaptiveResult struct {
	// Support is the recovered one-entry index set, ascending.
	Support []int
	// Queries is the number of pooled measurements issued.
	Queries int
	// Rounds is the adaptive depth — the number of dependent measurement
	// rounds a lab would need. The paper's design always uses 1.
	Rounds int
}

// ReconstructAdaptive recovers a binary signal of length n with adaptive
// interval bisection, interacting with the signal only through oracle
// (which returns the number of one-entries among the given indices). It
// uses Θ(k·log(n/k)) queries over Θ(log n) dependent rounds — fewer
// queries than the parallel design, but many more rounds; the trade-off
// the paper's introduction frames.
func ReconstructAdaptive(n int, oracle func(indices []int) int64) (AdaptiveResult, error) {
	res, err := adaptive.Reconstruct(n, adaptive.CountOracle(oracle))
	if err != nil {
		return AdaptiveResult{}, err
	}
	return AdaptiveResult{Support: res.Support, Queries: res.Queries, Rounds: res.Rounds}, nil
}
