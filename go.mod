module pooleddata

go 1.22
