// Command thresholds prints the query-count thresholds of the paper for
// given instance sizes: Theorem 1 (MN-Algorithm), Theorem 2 (information
// theoretic), and every related-work rate quoted in §I.
//
// Usage:
//
//	thresholds -n 10000 -thetas 0.1,0.2,0.3,0.4
//	thresholds -n 10000 -k 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"pooleddata/internal/thresholds"
)

func main() {
	n := flag.Int("n", 10000, "signal length")
	k := flag.Int("k", 0, "Hamming weight (overrides -thetas when set)")
	thetaList := flag.String("thetas", "0.1,0.2,0.3,0.4", "comma-separated sparsity exponents")
	flag.Parse()

	var ks []int
	if *k > 0 {
		ks = []int{*k}
	} else {
		for _, tok := range strings.Split(*thetaList, ",") {
			th, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "thresholds: bad theta %q: %v\n", tok, err)
				os.Exit(1)
			}
			ks = append(ks, thresholds.KFromTheta(*n, th))
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "k\ttheta\tm_MN\tm_MN(finite)\tm_para\tm_seq\tKarimi1.72\tKarimi1.515\tGT\tBasisPursuit")
	for _, kk := range ks {
		fmt.Fprintf(w, "%d\t%.3f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			kk,
			thresholds.Theta(*n, kk),
			thresholds.MN(*n, kk),
			thresholds.MNFiniteSize(*n, kk),
			thresholds.BPDPara(*n, kk),
			thresholds.BPDSeq(*n, kk),
			thresholds.Karimi1(*n, kk),
			thresholds.Karimi2(*n, kk),
			thresholds.GT(*n, kk),
			thresholds.BasisPursuit(*n, kk),
		)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
