package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"pooleddata/internal/engine"
	"pooleddata/internal/labio"
)

// server is the HTTP front-end over the reconstruction engine. Scheme
// payloads and count payloads reuse the labio CSV wire formats, so a
// design written by WriteDesignCSV uploads unchanged and a robot's
// results file posts straight to /v1/decode.
type server struct {
	eng   *engine.Engine
	start time.Time

	// maxSchemes bounds the id registry: beyond it the oldest entries are
	// dropped (their ids start returning 404), so uploaded ad-hoc designs
	// and churned specs cannot pin memory forever. maxBody bounds request
	// bodies.
	maxSchemes int
	maxBody    int64

	mu      sync.Mutex
	schemes map[string]*schemeEntry
	order   []string // registration order, oldest first
	bySpec  map[engine.Spec]string
	nextID  int
}

type schemeEntry struct {
	ID     string `json:"id"`
	Design string `json:"design"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	Seed   uint64 `json:"seed"`
	AdHoc  bool   `json:"ad_hoc,omitempty"`

	scheme *engine.Scheme
}

func newServer(eng *engine.Engine) *server {
	return &server{
		eng:        eng,
		start:      time.Now(),
		maxSchemes: 64,
		maxBody:    256 << 20,
		schemes:    make(map[string]*schemeEntry),
		bySpec:     make(map[engine.Spec]string),
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schemes", s.handleCreateScheme)
	mux.HandleFunc("GET /v1/schemes/{id}", s.handleGetScheme)
	mux.HandleFunc("GET /v1/schemes/{id}/design", s.handleGetDesign)
	mux.HandleFunc("POST /v1/decode", s.handleDecode)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		mux.ServeHTTP(w, r)
	})
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// schemeRequest is the JSON body of POST /v1/schemes.
type schemeRequest struct {
	Design string  `json:"design"` // random-regular | bernoulli | constant-column
	N      int     `json:"n"`
	M      int     `json:"m"`
	Seed   uint64  `json:"seed"`
	Gamma  int     `json:"gamma,omitempty"`
	P      float64 `json:"p,omitempty"`
	D      int     `json:"d,omitempty"`
}

// handleCreateScheme builds (or fetches from cache) a pooling scheme.
// JSON bodies describe a design by parameters; text/csv bodies upload an
// explicit design in the labio format (the WriteDesignCSV output).
func (s *server) handleCreateScheme(w http.ResponseWriter, r *http.Request) {
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "text/csv") {
		g, err := labio.ReadDesign(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "parse design csv: %v", err)
			return
		}
		es := s.eng.SchemeFromGraph(g)
		ent := s.register(es, "uploaded", g.N(), g.M(), 0, true)
		writeJSON(w, http.StatusCreated, ent)
		return
	}
	var req schemeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	if req.N <= 0 || req.M < 0 {
		httpError(w, http.StatusBadRequest, "invalid size n=%d m=%d", req.N, req.M)
		return
	}
	des, err := engine.DesignByName(req.Design, engine.DesignParams{Gamma: req.Gamma, P: req.P, D: req.D})
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	es, err := s.eng.Scheme(des, req.N, req.M, req.Seed)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "build scheme: %v", err)
		return
	}
	ent := s.register(es, des.Name(), req.N, req.M, req.Seed, false)
	writeJSON(w, http.StatusCreated, ent)
}

// register assigns (or reuses) the entry for a scheme. Cached schemes are
// deduplicated by spec so repeated POSTs return the same id.
func (s *server) register(es *engine.Scheme, design string, n, m int, seed uint64, adhoc bool) *schemeEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !adhoc {
		if id, ok := s.bySpec[es.Spec]; ok {
			return s.schemes[id]
		}
	}
	s.nextID++
	ent := &schemeEntry{
		ID:     fmt.Sprintf("s%d", s.nextID),
		Design: design, N: n, M: m, Seed: seed, AdHoc: adhoc,
		scheme: es,
	}
	s.schemes[ent.ID] = ent
	s.order = append(s.order, ent.ID)
	if !adhoc {
		s.bySpec[es.Spec] = ent.ID
	}
	for len(s.schemes) > s.maxSchemes {
		oldest := s.order[0]
		s.order = s.order[1:]
		if old, ok := s.schemes[oldest]; ok {
			delete(s.schemes, oldest)
			if !old.AdHoc {
				delete(s.bySpec, old.scheme.Spec)
			}
		}
	}
	return ent
}

func (s *server) lookup(id string) (*schemeEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.schemes[id]
	return ent, ok
}

func (s *server) handleGetScheme(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown scheme %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, ent)
}

// handleGetDesign streams the scheme's pooling design as a labio CSV file
// — the payload a pipetting robot (or LoadDesignCSV) consumes.
func (s *server) handleGetDesign(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown scheme %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	if err := labio.WriteDesign(w, ent.scheme.G); err != nil {
		// Headers are gone; nothing to do but log-by-status.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// decodeRequest is the JSON body of POST /v1/decode. Exactly one of
// Counts (single job) or Batch (pipelined jobs) must be set.
type decodeRequest struct {
	Scheme  string    `json:"scheme"`
	K       int       `json:"k"`
	Decoder string    `json:"decoder,omitempty"`
	Counts  []int64   `json:"counts,omitempty"`
	Batch   [][]int64 `json:"batch,omitempty"`
}

// decodeResponse mirrors engine.Result on the wire.
type decodeResponse struct {
	Support    []int `json:"support"`
	Residual   int64 `json:"residual"`
	Consistent bool  `json:"consistent"`
	QueueNS    int64 `json:"queue_ns"`
	DecodeNS   int64 `json:"decode_ns"`
}

func toResponse(res engine.Result) decodeResponse {
	return decodeResponse{
		Support:    res.Support,
		Residual:   res.Stats.Residual,
		Consistent: res.Stats.Consistent,
		QueueNS:    int64(res.Stats.QueueWait),
		DecodeNS:   int64(res.Stats.DecodeTime),
	}
}

// handleDecode runs reconstructions through the engine pipeline. JSON
// bodies carry counts inline; text/csv bodies are labio results files
// (the WriteCountsCSV output) with scheme/k/decoder in query parameters.
func (s *server) handleDecode(w http.ResponseWriter, r *http.Request) {
	var req decodeRequest
	if strings.HasPrefix(r.Header.Get("Content-Type"), "text/csv") {
		y, err := labio.ReadCounts(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "parse counts csv: %v", err)
			return
		}
		req.Scheme = r.URL.Query().Get("scheme")
		req.Decoder = r.URL.Query().Get("decoder")
		k, err := strconv.Atoi(r.URL.Query().Get("k"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad k parameter: %v", err)
			return
		}
		req.K = k
		req.Counts = y
	} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}

	ent, ok := s.lookup(req.Scheme)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown scheme %q", req.Scheme)
		return
	}
	dec, err := engine.DecoderByName(req.Decoder)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	switch {
	case req.Counts != nil && req.Batch != nil:
		httpError(w, http.StatusBadRequest, "set either counts or batch, not both")
	case req.Counts != nil:
		res, err := s.eng.Decode(r.Context(), engine.Job{Scheme: ent.scheme, Y: req.Counts, K: req.K, Dec: dec})
		if err != nil {
			httpError(w, decodeStatus(err), "decode: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, toResponse(res))
	case req.Batch != nil:
		results, err := s.eng.DecodeBatch(r.Context(), ent.scheme, req.Batch, req.K, engine.Job{Dec: dec})
		if err != nil {
			httpError(w, decodeStatus(err), "decode batch: %v", err)
			return
		}
		out := make([]decodeResponse, len(results))
		for i, res := range results {
			out[i] = toResponse(res)
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": out})
	default:
		httpError(w, http.StatusBadRequest, "no counts in request")
	}
}

// decodeStatus maps pipeline errors to HTTP statuses.
func decodeStatus(err error) int {
	switch {
	case errors.Is(err, engine.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// statsResponse is the body of GET /v1/stats: the engine counters (their
// snake_case json tags) plus server-level fields.
type statsResponse struct {
	engine.Stats
	Schemes  int     `json:"schemes"`
	UptimeNS int64   `json:"uptime_ns"`
	AvgQueue float64 `json:"avg_queue_ms"`
	AvgDec   float64 `json:"avg_decode_ms"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	s.mu.Lock()
	n := len(s.schemes)
	s.mu.Unlock()
	resp := statsResponse{Stats: st, Schemes: n, UptimeNS: int64(time.Since(s.start))}
	if st.JobsCompleted > 0 {
		resp.AvgQueue = float64(st.TotalQueueWait.Milliseconds()) / float64(st.JobsCompleted)
		resp.AvgDec = float64(st.TotalDecodeTime.Milliseconds()) / float64(st.JobsCompleted)
	}
	writeJSON(w, http.StatusOK, resp)
}
