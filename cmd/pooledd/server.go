package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pooleddata/internal/campaign"
	"pooleddata/internal/decoder"
	"pooleddata/internal/engine"
	"pooleddata/internal/labio"
	"pooleddata/internal/noise"
	"pooleddata/internal/remote"
	"pooleddata/metrics"
	"pooleddata/metrics/trace"
)

// server is the HTTP front-end over the sharded reconstruction cluster.
// Scheme payloads and count payloads reuse the labio CSV wire formats,
// so a design written by WriteDesignCSV uploads unchanged and a robot's
// results file posts straight to /v1/decode. Batch work goes through
// the campaign subsystem: POST /v1/campaigns returns an id immediately
// and the jobs drain through the owning shard's pipeline.
type server struct {
	cluster   *engine.Cluster
	campaigns *campaign.Store
	start     time.Time

	// fleet is the runtime worker-membership manager — nil on a
	// local-shard frontend, where the topology is fixed at boot and the
	// /v1/workers endpoints reject.
	fleet *fleet

	// schemeMigrations counts registry entries re-homed after ring
	// changes (the pooled_scheme_migrations_total backing).
	schemeMigrations atomic.Uint64

	// maxSchemes bounds the id registry: beyond it the oldest entries are
	// dropped (their ids start returning 404), so uploaded ad-hoc designs
	// and churned specs cannot pin memory forever. maxBody bounds request
	// bodies. maxWait caps the campaign long-poll.
	maxSchemes int
	maxBody    int64
	maxWait    time.Duration

	// sseHeartbeat is the idle-keepalive interval of campaign event
	// streams; sseWriteTimeout is the per-write slow-client eviction
	// deadline.
	sseHeartbeat    time.Duration
	sseWriteTimeout time.Duration

	// Observability surface, attached by instrument(). metrics may be
	// nil (bare test servers): every instrument and the /metrics
	// handler are nil-safe no-ops then. traces is the span store behind
	// GET /v1/traces — nil when tracing is off, and every producer path
	// is nil-safe then.
	log           *slog.Logger
	metrics       *metrics.Registry
	traces        *trace.Store
	mSSEActive    *metrics.Gauge
	mSSEStreams   *metrics.Counter
	mSSEEvictions *metrics.Counter

	mu      sync.Mutex
	schemes map[string]*schemeEntry
	order   []string // registration order, oldest first
	bySpec  map[engine.Spec]string
	nextID  int
}

type schemeEntry struct {
	ID     string `json:"id"`
	Design string `json:"design"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	Seed   uint64 `json:"seed"`
	Shard  int    `json:"shard"`
	// Owner is the ring ID of the member owning this scheme's routing
	// key right now; it moves when membership changes. Empty for
	// schemes with no routing key.
	Owner string `json:"owner,omitempty"`
	AdHoc bool   `json:"ad_hoc,omitempty"`

	// Design parameters of parametric schemes, kept so the -snapshot file
	// can rebuild the scheme on the next boot.
	Gamma int     `json:"gamma,omitempty"`
	P     float64 `json:"p,omitempty"`
	D     int     `json:"d,omitempty"`

	scheme *engine.Scheme
}

func newServer(cluster *engine.Cluster, ccfg campaign.Config) *server {
	s := &server{
		cluster:         cluster,
		campaigns:       campaign.NewStore(cluster, ccfg),
		start:           time.Now(),
		maxSchemes:      64,
		maxBody:         256 << 20,
		maxWait:         30 * time.Second,
		sseHeartbeat:    15 * time.Second,
		sseWriteTimeout: 10 * time.Second,
		schemes:         make(map[string]*schemeEntry),
		bySpec:          make(map[engine.Spec]string),
		log:             slog.Default(),
	}
	// Nil-safe instruments so handlers never branch on "is metrics
	// enabled"; main re-instruments with the real registry.
	s.instrument(nil, nil)
	return s
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schemes", s.handleCreateScheme)
	mux.HandleFunc("GET /v1/schemes/{id}", s.handleGetScheme)
	mux.HandleFunc("GET /v1/schemes/{id}/design", s.handleGetDesign)
	mux.HandleFunc("POST /v1/decode", s.handleDecode)
	mux.HandleFunc("POST /v1/campaigns", s.handleCreateCampaign)
	mux.HandleFunc("GET /v1/campaigns", s.handleListCampaigns)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleGetCampaign)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleCampaignEvents)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancelCampaign)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/traces", s.handleListTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleGetTrace)
	mux.HandleFunc("GET /v1/workers", s.handleListWorkers)
	mux.HandleFunc("POST /v1/workers", s.handleAddWorker)
	mux.HandleFunc("DELETE /v1/workers/{addr}", s.handleRemoveWorker)
	mux.Handle("GET /metrics", s.metrics.Handler())
	// Catch-all so unknown routes return a JSON body like every other
	// error path, not the mux's text/plain 404.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotFound, "unknown route %s %s", r.Method, r.URL.Path)
	})
	return withTrace(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		mux.ServeHTTP(w, r)
	}))
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// rejectSaturated writes the admission-control response: 429 with a
// Retry-After estimated from the shard's current backlog and mean
// decode time (at least one second).
func rejectSaturated(w http.ResponseWriter, shard engine.Shard) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(shard)))
	httpError(w, http.StatusTooManyRequests, "decode queue saturated, retry later")
}

func retryAfterSeconds(shard engine.Shard) int {
	st := shard.Stats()
	if st.JobsCompleted == 0 {
		return 1
	}
	avg := st.TotalDecodeTime / time.Duration(st.JobsCompleted)
	workers := shard.Workers()
	if workers < 1 {
		workers = 1
	}
	est := avg * time.Duration(shard.QueueDepth()) / time.Duration(workers)
	secs := int(est / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// schemeRequest is the JSON body of POST /v1/schemes.
type schemeRequest struct {
	Design string  `json:"design"` // random-regular | bernoulli | constant-column
	N      int     `json:"n"`
	M      int     `json:"m"`
	Seed   uint64  `json:"seed"`
	Gamma  int     `json:"gamma,omitempty"`
	P      float64 `json:"p,omitempty"`
	D      int     `json:"d,omitempty"`
}

// handleCreateScheme builds (or fetches from the owning shard's cache) a
// pooling scheme. JSON bodies describe a design by parameters; text/csv
// bodies upload an explicit design in the labio format (the
// WriteDesignCSV output).
func (s *server) handleCreateScheme(w http.ResponseWriter, r *http.Request) {
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "text/csv") {
		g, err := labio.ReadDesign(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "parse design csv: %v", err)
			return
		}
		es := s.cluster.SchemeFromGraph(g)
		ent := s.register(es, "uploaded", g.N(), g.M(), 0, engine.DesignParams{}, true)
		writeJSON(w, http.StatusCreated, ent)
		return
	}
	var req schemeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	if req.N <= 0 || req.M < 0 {
		httpError(w, http.StatusBadRequest, "invalid size n=%d m=%d", req.N, req.M)
		return
	}
	params := engine.DesignParams{Gamma: req.Gamma, P: req.P, D: req.D}
	des, err := engine.DesignByName(req.Design, params)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	es, err := s.cluster.Scheme(des, req.N, req.M, req.Seed)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "build scheme: %v", err)
		return
	}
	ent := s.register(es, des.Name(), req.N, req.M, req.Seed, params, false)
	writeJSON(w, http.StatusCreated, ent)
}

// register assigns (or reuses) the entry for a scheme. Cached schemes are
// deduplicated by spec so repeated POSTs return the same id.
func (s *server) register(es *engine.Scheme, design string, n, m int, seed uint64, params engine.DesignParams, adhoc bool) *schemeEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !adhoc {
		if id, ok := s.bySpec[es.Spec]; ok {
			return s.schemes[id]
		}
	}
	s.nextID++
	ent := &schemeEntry{
		ID:     fmt.Sprintf("s%d", s.nextID),
		Design: design, N: n, M: m, Seed: seed, Shard: es.Home(), AdHoc: adhoc,
		Owner: s.cluster.OwnerID(es.RouteKey()),
		Gamma: params.Gamma, P: params.P, D: params.D,
		scheme: es,
	}
	s.schemes[ent.ID] = ent
	s.order = append(s.order, ent.ID)
	if !adhoc {
		s.bySpec[es.Spec] = ent.ID
	}
	for len(s.schemes) > s.maxSchemes {
		oldest := s.order[0]
		s.order = s.order[1:]
		if old, ok := s.schemes[oldest]; ok {
			delete(s.schemes, oldest)
			if !old.AdHoc {
				delete(s.bySpec, old.scheme.Spec)
			}
		}
	}
	return ent
}

func (s *server) lookup(id string) (*schemeEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.schemes[id]
	return ent, ok
}

func (s *server) handleGetScheme(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown scheme %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, ent)
}

// handleGetDesign streams the scheme's pooling design as a labio CSV file
// — the payload a pipetting robot (or LoadDesignCSV) consumes.
func (s *server) handleGetDesign(w http.ResponseWriter, r *http.Request) {
	ent, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown scheme %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	// Stream: designs can be large (uploads up to -max-body), so no
	// buffering. A mid-stream write error means the client went away —
	// the headers are sent, so there is no useful error body to produce.
	_ = labio.WriteDesign(w, ent.scheme.G)
}

// decodeRequest is the JSON body of POST /v1/decode. Exactly one of
// Counts (single job) or Batch (pipelined jobs) must be set. Noise
// declares the measurement model of the counts; when set and no decoder
// is named, the server selects the robust decoder for it.
type decodeRequest struct {
	Scheme  string       `json:"scheme"`
	K       int          `json:"k"`
	Decoder string       `json:"decoder,omitempty"`
	Noise   *noise.Model `json:"noise,omitempty"`
	Counts  []int64      `json:"counts,omitempty"`
	Batch   [][]int64    `json:"batch,omitempty"`
}

// parseJobSpec resolves a request's noise model and decoder choice —
// shared by the sync decode and campaign handlers so the two endpoints
// cannot drift. The model is validated as sent (validation must see the
// raw kind before canonicalization defaults it) and returned canonical.
// An empty decoder name yields nil so the noise policy selects the
// robust decoder server-side (MN for exact requests, as before).
func parseJobSpec(noisePtr *noise.Model, decName string) (noise.Model, decoder.Decoder, error) {
	var nm noise.Model
	if noisePtr != nil {
		nm = *noisePtr
	}
	if err := nm.Validate(); err != nil {
		return noise.Model{}, nil, err
	}
	nm = nm.Canon()
	var dec decoder.Decoder
	if decName != "" {
		var err error
		dec, err = engine.DecoderByName(decName)
		if err != nil {
			return noise.Model{}, nil, err
		}
	}
	return nm, dec, nil
}

// decodeResponse mirrors engine.Result on the wire. Decoder reports the
// algorithm that ran — the policy's pick when the request named none.
type decodeResponse struct {
	Support    []int  `json:"support"`
	Decoder    string `json:"decoder,omitempty"`
	Residual   int64  `json:"residual"`
	Consistent bool   `json:"consistent"`
	QueueNS    int64  `json:"queue_ns"`
	DecodeNS   int64  `json:"decode_ns"`
	TraceID    string `json:"trace_id,omitempty"`
}

func toResponse(res engine.Result) decodeResponse {
	return decodeResponse{
		Support:    res.Support,
		Decoder:    res.Decoder,
		Residual:   res.Stats.Residual,
		Consistent: res.Stats.Consistent,
		QueueNS:    int64(res.Stats.QueueWait),
		DecodeNS:   int64(res.Stats.DecodeTime),
		TraceID:    res.TraceID,
	}
}

// handleDecode runs reconstructions through the owning shard's pipeline.
// JSON bodies carry counts inline; text/csv bodies are labio results
// files (the WriteCountsCSV output) with scheme/k/decoder/noise in query
// parameters (noise in the compact colon form, e.g. noise=gaussian:0.5:7).
// A saturated shard queue rejects with 429 + Retry-After instead of
// blocking the request.
func (s *server) handleDecode(w http.ResponseWriter, r *http.Request) {
	reqStart := time.Now()
	var req decodeRequest
	if strings.HasPrefix(r.Header.Get("Content-Type"), "text/csv") {
		y, err := labio.ReadCounts(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "parse counts csv: %v", err)
			return
		}
		req.Scheme = r.URL.Query().Get("scheme")
		req.Decoder = r.URL.Query().Get("decoder")
		if ns := r.URL.Query().Get("noise"); ns != "" {
			nm, err := noise.Parse(ns)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad noise parameter: %v", err)
				return
			}
			req.Noise = &nm
		}
		k, err := strconv.Atoi(r.URL.Query().Get("k"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad k parameter: %v", err)
			return
		}
		req.K = k
		req.Counts = y
	} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}

	ent, ok := s.lookup(req.Scheme)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown scheme %q", req.Scheme)
		return
	}
	nm, dec, err := parseJobSpec(req.Noise, req.Decoder)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	shard := s.cluster.Owner(ent.scheme)
	tid := traceFrom(r.Context())

	switch {
	case req.Counts != nil && req.Batch != nil:
		httpError(w, http.StatusBadRequest, "set either counts or batch, not both")
	case req.Counts != nil:
		job := engine.Job{Scheme: ent.scheme, Y: req.Counts, K: req.K, Noise: nm, Dec: dec, TraceID: tid}
		var tb *trace.Builder
		if s.traces != nil {
			// The handler owns this job's trace: the ingress span covers
			// body parse + scheme lookup, the engine or remote client
			// appends the queue/decode/wire spans, and the handler seals
			// and offers the tree once the future settles.
			tb = trace.NewBuilder(tid, "decode_request", trace.TierFrontend)
			tb.SetScheme(ent.scheme.RouteKey())
			tb.Span("ingress", trace.TierFrontend, 0, reqStart, time.Since(reqStart))
			job.Trace = tb
		}
		fut, err := s.cluster.TrySubmit(r.Context(), job)
		if errors.Is(err, engine.ErrSaturated) {
			s.offerTrace(tb, err)
			rejectSaturated(w, shard)
			return
		}
		if err != nil {
			s.offerTrace(tb, err)
			httpError(w, decodeStatus(err), "decode: %v", err)
			return
		}
		res, err := fut.Wait(r.Context())
		if err != nil {
			s.offerTrace(tb, err)
			s.log.Warn("decode failed", "trace_id", tid, "scheme", req.Scheme, "err", err)
			httpError(w, decodeStatus(err), "decode: %v", err)
			return
		}
		s.offerTrace(tb, nil)
		s.log.Info("decode",
			"trace_id", tid, "scheme", req.Scheme, "decoder", res.Decoder,
			"k", req.K, "consistent", res.Stats.Consistent,
			"queue_ns", int64(res.Stats.QueueWait), "decode_ns", int64(res.Stats.DecodeTime))
		writeJSON(w, http.StatusOK, toResponse(res))
	case req.Batch != nil:
		// Batch admission is a snapshot check: a full queue turns the whole
		// batch away before any job blocks the handler.
		if shard.Saturated() {
			shard.NoteRejected(len(req.Batch))
			rejectSaturated(w, shard)
			return
		}
		results, err := s.cluster.DecodeBatch(r.Context(), ent.scheme, req.Batch, req.K, engine.Job{Noise: nm, Dec: dec, TraceID: tid})
		if err != nil {
			s.log.Warn("decode batch failed", "trace_id", tid, "scheme", req.Scheme, "err", err)
			httpError(w, decodeStatus(err), "decode batch: %v", err)
			return
		}
		s.log.Info("decode batch",
			"trace_id", tid, "scheme", req.Scheme, "jobs", len(results), "k", req.K)
		out := make([]decodeResponse, len(results))
		for i, res := range results {
			out[i] = toResponse(res)
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": out})
	default:
		httpError(w, http.StatusBadRequest, "no counts in request")
	}
}

// decodeStatus maps pipeline errors to HTTP statuses.
func decodeStatus(err error) int {
	switch {
	case errors.Is(err, engine.ErrClosed), errors.Is(err, remote.ErrWorkerUnavailable):
		// A dead remote worker is an infrastructure outage, not a problem
		// with the request.
		return http.StatusServiceUnavailable
	case errors.Is(err, engine.ErrSaturated):
		return http.StatusTooManyRequests
	default:
		return http.StatusUnprocessableEntity
	}
}

// campaignRequest is the JSON body of POST /v1/campaigns. Noise is the
// campaign-level measurement model, applied to every job of the batch.
// Tenant attributes the campaign for per-tenant quotas, fair dispatch,
// and the /v1/stats tenant gauges; empty means the "default" tenant.
type campaignRequest struct {
	Scheme  string       `json:"scheme"`
	K       int          `json:"k"`
	Tenant  string       `json:"tenant,omitempty"`
	Decoder string       `json:"decoder,omitempty"`
	Noise   *noise.Model `json:"noise,omitempty"`
	Batch   [][]int64    `json:"batch"`
}

// campaignCreated is the 202 body: enough to poll or stream.
type campaignCreated struct {
	ID     string       `json:"id"`
	Tenant string       `json:"tenant,omitempty"`
	Total  int          `json:"total"`
	State  string       `json:"state"`
	Noise  *noise.Model `json:"noise,omitempty"`
}

// handleCreateCampaign admits an async batch decode and returns its id
// immediately; the jobs fan out to the owning shard in the background.
func (s *server) handleCreateCampaign(w http.ResponseWriter, r *http.Request) {
	var req campaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	ent, ok := s.lookup(req.Scheme)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown scheme %q", req.Scheme)
		return
	}
	nm, dec, err := parseJobSpec(req.Noise, req.Decoder)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Batch) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	tid := traceFrom(r.Context())
	cp, err := s.campaigns.Create(campaign.Request{
		Scheme: ent.scheme, Batch: req.Batch, K: req.K,
		Tenant: req.Tenant, Noise: nm, Dec: dec, TraceID: tid,
		SchemeRef: s.schemeRefFor(ent),
	})
	switch {
	case errors.Is(err, engine.ErrSaturated):
		rejectSaturated(w, s.cluster.Owner(ent.scheme))
	case errors.Is(err, campaign.ErrTooManyCampaigns), errors.Is(err, campaign.ErrTenantQuota):
		// Same backlog-derived estimate as the saturated /v1/decode path:
		// the client should come back once the owning shard has drained,
		// not on a hard-coded one-second clock.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cluster.Owner(ent.scheme))))
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
	default:
		s.log.Info("campaign created",
			"trace_id", tid, "campaign", cp.ID(), "tenant", cp.Tenant(),
			"scheme", req.Scheme, "jobs", cp.Total(), "k", req.K)
		created := campaignCreated{ID: cp.ID(), Tenant: cp.Tenant(), Total: cp.Total(), State: string(campaign.Running)}
		if !nm.IsExact() {
			created.Noise = &nm
		}
		writeJSON(w, http.StatusAccepted, created)
	}
}

// handleGetCampaign reports campaign progress. ?wait=5s long-polls: the
// response returns as soon as the campaign finishes, or after the wait
// elapses with the then-current progress (capped at maxWait).
func (s *server) handleGetCampaign(w http.ResponseWriter, r *http.Request) {
	cp, ok := s.campaigns.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad wait parameter: %v", err)
			return
		}
		if wait > s.maxWait {
			wait = s.maxWait
		}
		writeJSON(w, http.StatusOK, cp.Wait(r.Context(), wait))
		return
	}
	writeJSON(w, http.StatusOK, cp.Progress())
}

func (s *server) handleListCampaigns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": s.campaigns.List()})
}

// handleCancelCampaign cancels a campaign: queued jobs settle as
// canceled, in-flight decodes run out. The response is the progress at
// cancellation time.
func (s *server) handleCancelCampaign(w http.ResponseWriter, r *http.Request) {
	cp, ok := s.campaigns.Cancel(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, cp.Progress())
}

// campaignGauges are the campaign-store gauges of /v1/stats. The block
// is always present — a fresh server reports zeros, not absent keys —
// so dashboards can rely on the fields existing before the first
// campaign runs.
type campaignGauges struct {
	Active   int `json:"active"`
	Finished int `json:"finished"`
	Retained int `json:"retained"`
}

// statsResponse is the body of GET /v1/stats: the fleet-wide aggregate
// counters (their snake_case json tags, histograms merged bucket-wise,
// jobs_by_noise per-model counters) flattened at the top level for
// compatibility, the per-shard breakdown, and server-level fields.
type statsResponse struct {
	engine.Stats
	// SchemeLoad shadows the embedded Stats field of the same json name:
	// the same top-K hot-key rows, annotated with the ring member owning
	// each routing key right now — the pair an operator (or a rebalancer)
	// needs to see which worker a hot design lands on.
	SchemeLoad []schemeLoadRow     `json:"scheme_load,omitempty"`
	Shards     []engine.ShardStats `json:"shards"`
	// Members is the current consistent-hash-ring membership; the adds/
	// removes counters are lifetime runtime ring changes (joins, drains,
	// evictions, rejoins — boot placement is not counted).
	Members           []string                        `json:"members"`
	MembershipAdds    uint64                          `json:"membership_adds"`
	MembershipRemoves uint64                          `json:"membership_removes"`
	SchemeMigrations  uint64                          `json:"scheme_migrations"`
	Schemes           int                             `json:"schemes"`
	Campaigns         campaignGauges                  `json:"campaigns"`
	Tenants           map[string]campaign.TenantStats `json:"tenants"`
	CampaignsActive   int                             `json:"campaigns_active"`
	CampaignsFinished int                             `json:"campaigns_finished"`
	UptimeNS          int64                           `json:"uptime_ns"`
	AvgQueue          float64                         `json:"avg_queue_ms"`
	AvgDec            float64                         `json:"avg_decode_ms"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster.Stats()
	s.mu.Lock()
	n := len(s.schemes)
	s.mu.Unlock()
	active, finished := s.campaigns.Counts()
	resp := statsResponse{
		Stats:             cs.Total,
		Shards:            cs.Shards,
		Members:           cs.Members,
		MembershipAdds:    cs.MembershipAdds,
		MembershipRemoves: cs.MembershipRemoves,
		SchemeMigrations:  s.schemeMigrations.Load(),
		Schemes:           n,
		Campaigns: campaignGauges{
			Active: active, Finished: finished, Retained: active + finished,
		},
		// Always a map, even empty, so dashboards can key into it before
		// the first tenant submits.
		Tenants:         s.campaigns.Tenants(),
		CampaignsActive: active, CampaignsFinished: finished,
		UptimeNS: int64(time.Since(s.start)),
	}
	if cs.Total.JobsCompleted > 0 {
		resp.AvgQueue = float64(cs.Total.TotalQueueWait.Milliseconds()) / float64(cs.Total.JobsCompleted)
		resp.AvgDec = float64(cs.Total.TotalDecodeTime.Milliseconds()) / float64(cs.Total.JobsCompleted)
	}
	for _, row := range cs.Total.SchemeLoad {
		resp.SchemeLoad = append(resp.SchemeLoad, schemeLoadRow{
			SchemeLoad: row, Owner: s.cluster.OwnerID(row.Key),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// schemeLoadRow is one /v1/stats hot-key row: the engine's per-scheme
// load accounting plus the ring owner of the key.
type schemeLoadRow struct {
	engine.SchemeLoad
	Owner string `json:"owner,omitempty"`
}

// offerTrace seals a handler-owned trace and offers it for tail
// sampling; nil-safe on both the builder and the store.
func (s *server) offerTrace(tb *trace.Builder, err error) {
	if tb == nil || s.traces == nil {
		return
	}
	if err != nil {
		tb.SetError(err.Error())
	}
	s.traces.Offer(tb.Finish())
}

// handleListTraces lists recently retained traces, newest first, as
// one-line summaries. Query parameters narrow the listing: ?tenant=,
// ?scheme= (routing key), ?min_ms= (at least this slow), ?error=true
// (failed jobs only), ?limit= (default 50).
func (s *server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		httpError(w, http.StatusNotFound, "tracing disabled; start pooledd with -trace-sample or -trace-store")
		return
	}
	q := r.URL.Query()
	f := trace.Filter{Tenant: q.Get("tenant"), Scheme: q.Get("scheme")}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			httpError(w, http.StatusBadRequest, "bad min_ms parameter %q", v)
			return
		}
		f.MinDur = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("error"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad error parameter %q", v)
			return
		}
		f.ErrorOnly = b
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad limit parameter %q", v)
			return
		}
		limit = n
	}
	recent := s.traces.Recent(f, limit)
	out := make([]traceSummary, len(recent))
	for i, tr := range recent {
		out[i] = traceSummary{
			ID: tr.ID, Tenant: tr.Tenant, Scheme: tr.Scheme,
			Start: tr.Start, DurMS: float64(tr.DurNS) / 1e6,
			Err: tr.Err, Retained: tr.Retained, Spans: len(tr.Spans),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"traces":  out,
		"sampler": s.traces.Stats(),
	})
}

// traceSummary is one GET /v1/traces row; the full span tree comes from
// GET /v1/traces/{id}.
type traceSummary struct {
	ID       string    `json:"id"`
	Tenant   string    `json:"tenant,omitempty"`
	Scheme   string    `json:"scheme,omitempty"`
	Start    time.Time `json:"start"`
	DurMS    float64   `json:"duration_ms"`
	Err      string    `json:"err,omitempty"`
	Retained string    `json:"retained,omitempty"`
	Spans    int       `json:"spans"`
}

// handleGetTrace returns one retained trace's full span tree.
func (s *server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		httpError(w, http.StatusNotFound, "tracing disabled; start pooledd with -trace-sample or -trace-store")
		return
	}
	tr, ok := s.traces.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no retained trace %q (dropped by sampling, evicted, or never seen)", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// Runtime worker membership. The endpoints exist only on a -workers
// frontend: with local shards the topology is sized at boot and there
// is nothing to register a worker into.

// workerRequest is the JSON body of POST /v1/workers.
type workerRequest struct {
	Addr string `json:"addr"`
}

func (s *server) handleListWorkers(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		httpError(w, http.StatusBadRequest, "worker membership requires a -workers frontend")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"workers": s.fleet.Status(),
		"members": s.cluster.MemberIDs(),
	})
}

// handleAddWorker joins a `pooledd -worker` to the fleet at runtime:
// the new member takes its arcs on the ring, owned schemes migrate to
// it, and the campaign dispatcher starts offering it jobs immediately.
func (s *server) handleAddWorker(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		httpError(w, http.StatusBadRequest, "worker membership requires a -workers frontend")
		return
	}
	var req workerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	if req.Addr == "" {
		httpError(w, http.StatusBadRequest, "missing worker addr")
		return
	}
	if err := s.fleet.Add(req.Addr); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	s.log.Info("worker registered", "trace_id", traceFrom(r.Context()), "addr", req.Addr)
	writeJSON(w, http.StatusCreated, map[string]any{
		"addr":    req.Addr,
		"members": s.cluster.MemberIDs(),
	})
}

// handleRemoveWorker drains a worker: its arcs move to the survivors,
// schemes migrate off it, and queued jobs re-dispatch through the ring.
func (s *server) handleRemoveWorker(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		httpError(w, http.StatusBadRequest, "worker membership requires a -workers frontend")
		return
	}
	addr := r.PathValue("addr")
	err := s.fleet.Remove(addr)
	switch {
	case errors.Is(err, engine.ErrUnknownShard):
		httpError(w, http.StatusNotFound, "unknown worker %q", addr)
	case errors.Is(err, engine.ErrLastShard):
		httpError(w, http.StatusConflict, "cannot drain the last worker")
	case err != nil:
		httpError(w, http.StatusConflict, "%v", err)
	default:
		s.log.Info("worker drained", "trace_id", traceFrom(r.Context()), "addr", addr)
		writeJSON(w, http.StatusOK, map[string]any{"members": s.cluster.MemberIDs()})
	}
}

// migrateSchemes re-resolves every registered scheme's ring owner after
// a membership change and warms the caches of the new owners, so the
// first decode after a topology change pays a cache install, not a
// rebuild-plus-install. Correctness never depends on it — routing
// re-resolves per submit — it is purely cache warmth plus accurate
// registry metadata.
func (s *server) migrateSchemes(reason string) {
	s.mu.Lock()
	ents := make([]*schemeEntry, 0, len(s.schemes))
	for _, ent := range s.schemes {
		ents = append(ents, ent)
	}
	s.mu.Unlock()

	moved := 0
	for _, ent := range ents {
		key := ent.scheme.RouteKey()
		owner := s.cluster.OwnerID(key)
		s.mu.Lock()
		stale := owner != ent.Owner
		s.mu.Unlock()
		if !stale {
			continue
		}
		var fresh *engine.Scheme
		if ent.AdHoc {
			fresh = s.cluster.SchemeFromGraph(ent.scheme.G)
		} else {
			fresh = s.cluster.InstallScheme(ent.scheme.Spec, ent.scheme.G)
		}
		s.mu.Lock()
		ent.Owner = owner
		ent.Shard = fresh.Home()
		ent.scheme = fresh
		s.mu.Unlock()
		moved++
	}
	if moved > 0 {
		s.schemeMigrations.Add(uint64(moved))
		s.log.Info("schemes migrated", "reason", reason, "moved", moved)
	}
}
