package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/campaign"
	"pooleddata/internal/labio"
	"pooleddata/internal/noise"
	"pooleddata/internal/rng"
)

// TestGaussianCampaignEndToEnd is the noise subsystem's acceptance
// path: a campaign submitted with {"noise":{"kind":"gaussian",...}}
// through pooledd selects the robust decoder server-side, reports the
// model in the campaign results and the per-model /v1/stats counters,
// and a seeded noise stream makes the run reproducible — measuring and
// decoding again with the same seed yields identical supports.
func TestGaussianCampaignEndToEnd(t *testing.T) {
	ts, eng := newTestServer(t)
	n, k, m := 400, 6, 320
	const batch = 4

	var sch schemeEntry
	postJSON(t, ts.URL+"/v1/schemes", schemeRequest{N: n, M: m, Seed: 11}, &sch)

	es, err := eng.Scheme(nil, n, m, 11)
	if err != nil {
		t.Fatal(err)
	}
	signals := make([]*bitvec.Vector, batch)
	for b := range signals {
		signals[b] = bitvec.Random(n, k, rng.NewRandSeeded(uint64(70+b)))
	}
	nm := noise.Model{Kind: noise.Gaussian, Sigma: 0.5, Seed: 1234}

	runCampaign := func() campaign.Progress {
		t.Helper()
		ys := eng.MeasureBatch(es, signals, nm)
		var created campaignCreated
		resp := postJSON(t, ts.URL+"/v1/campaigns", campaignRequest{
			Scheme: sch.ID, K: k, Batch: ys, Noise: &nm,
		}, &created)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("create campaign: status %d", resp.StatusCode)
		}
		if created.Noise == nil || created.Noise.Canon() != nm.Canon() {
			t.Fatalf("202 body lost the noise model: %+v", created.Noise)
		}
		wresp, err := http.Get(ts.URL + "/v1/campaigns/" + created.ID + "?wait=10s")
		if err != nil {
			t.Fatal(err)
		}
		defer wresp.Body.Close()
		var p campaign.Progress
		if err := json.NewDecoder(wresp.Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
		return p
	}

	first := runCampaign()
	if first.State != campaign.Done || first.Completed != batch {
		t.Fatalf("campaign did not complete: %+v", first)
	}
	if first.Noise == nil || first.Noise.Canon() != nm.Canon() {
		t.Fatalf("campaign progress lost the noise model: %+v", first.Noise)
	}
	wantDec := noise.SelectDecoder(nm, noise.SchemeParams{N: n, M: m, K: k}).Name()
	for i, res := range first.Results {
		if res.Decoder != wantDec {
			t.Fatalf("job %d ran %q, want the policy's %q", i, res.Decoder, wantDec)
		}
		if !bitvec.FromIndices(n, res.Support).Equal(signals[i]) {
			t.Fatalf("job %d did not recover its signal under σ=0.5", i)
		}
		if !res.Consistent {
			t.Fatalf("job %d not consistent within the residual slack: %+v", i, res)
		}
	}

	// Same seed, same signals → bit-identical noisy counts → identical
	// decoded supports.
	second := runCampaign()
	for i := range first.Results {
		a, b := first.Results[i].Support, second.Results[i].Support
		if len(a) != len(b) {
			t.Fatalf("job %d support size changed across reruns", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("job %d support diverged across reruns with one seed", i)
			}
		}
	}

	// /v1/stats breaks the jobs out under the canonical model key.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if got := st.JobsByNoise[nm.Key()]; got != 2*batch {
		t.Fatalf("stats jobs_by_noise[%q] = %d, want %d (have %v)", nm.Key(), got, 2*batch, st.JobsByNoise)
	}
	if h, ok := st.NoiseLatency[nm.Key()]; !ok || h.Count != 2*batch {
		t.Fatalf("stats noise_latency[%q] missing or short: %+v", nm.Key(), h)
	}
	if st.Campaigns.Finished != 2 || st.Campaigns.Retained != 2 {
		t.Fatalf("campaign gauges = %+v, want 2 finished", st.Campaigns)
	}
}

// TestDecodeWithNoiseJSONAndCSV exercises the noise object on
// /v1/decode and the compact colon form on the CSV path.
func TestDecodeWithNoiseJSONAndCSV(t *testing.T) {
	ts, eng := newTestServer(t)
	n, k, m := 300, 5, 260

	var sch schemeEntry
	postJSON(t, ts.URL+"/v1/schemes", schemeRequest{N: n, M: m, Seed: 5}, &sch)
	es, err := eng.Scheme(nil, n, m, 5)
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(8))
	nm := noise.Model{Kind: noise.Gaussian, Sigma: 0.5, Seed: 77}
	ys := eng.MeasureBatch(es, []*bitvec.Vector{sigma}, nm)

	var dec decodeResponse
	resp := postJSON(t, ts.URL+"/v1/decode", decodeRequest{Scheme: sch.ID, K: k, Counts: ys[0], Noise: &nm}, &dec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("noisy decode: status %d", resp.StatusCode)
	}
	if want := "mn-refined"; dec.Decoder != want {
		t.Fatalf("server selected %q, want %q", dec.Decoder, want)
	}
	if !bitvec.FromIndices(n, dec.Support).Equal(sigma) {
		t.Fatal("noisy decode missed the signal")
	}

	// Batch form carries the model too.
	var out struct {
		Results []decodeResponse `json:"results"`
	}
	resp = postJSON(t, ts.URL+"/v1/decode", decodeRequest{Scheme: sch.ID, K: k, Batch: ys, Noise: &nm}, &out)
	if resp.StatusCode != http.StatusOK || len(out.Results) != 1 || out.Results[0].Decoder != "mn-refined" {
		t.Fatalf("noisy batch decode: status %d, results %+v", resp.StatusCode, out.Results)
	}

	// The labio counts CSV path takes the compact colon form.
	var csv bytes.Buffer
	if err := labio.WriteCounts(&csv, ys[0]); err != nil {
		t.Fatal(err)
	}
	curl := fmt.Sprintf("%s/v1/decode?scheme=%s&k=%d&noise=gaussian:0.5:77", ts.URL, sch.ID, k)
	cresp, err := http.Post(curl, "text/csv", &csv)
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("csv noisy decode: status %d", cresp.StatusCode)
	}
	var cdec decodeResponse
	if err := json.NewDecoder(cresp.Body).Decode(&cdec); err != nil {
		t.Fatal(err)
	}
	if cdec.Decoder != "mn-refined" || !bitvec.FromIndices(n, cdec.Support).Equal(sigma) {
		t.Fatalf("csv noisy decode: decoder %q, recovered %v", cdec.Decoder, cdec.Support)
	}

	// An invalid model is a 400 with a JSON body.
	resp = postJSON(t, ts.URL+"/v1/decode",
		decodeRequest{Scheme: sch.ID, K: k, Counts: ys[0], Noise: &noise.Model{Kind: "poisson"}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad noise kind: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("400 content-type %q", ct)
	}
}

// TestStatsGaugesAndJSONErrorPaths pins the satellite fixes: campaign
// gauges are present (zeroed) before any campaign has run, and error
// responses — including unknown routes — carry application/json.
func TestStatsGaugesAndJSONErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t)

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(sresp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	cg, ok := raw["campaigns"]
	if !ok {
		t.Fatal("stats missing campaigns gauges with zero campaigns run")
	}
	var gauges campaignGauges
	if err := json.Unmarshal(cg, &gauges); err != nil {
		t.Fatal(err)
	}
	if gauges.Active != 0 || gauges.Finished != 0 || gauges.Retained != 0 {
		t.Fatalf("fresh gauges = %+v, want zeros", gauges)
	}

	assertJSONError := func(resp *http.Response, wantStatus int, label string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s: status %d, want %d", label, resp.StatusCode, wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s: content-type %q, want application/json", label, ct)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
			t.Fatalf("%s: body not a JSON error object (%v)", label, err)
		}
	}
	post := func(url string, body any) *http.Response {
		t.Helper()
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(url, "application/json", strings.NewReader(string(buf)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	assertJSONError(post(ts.URL+"/v1/decode", decodeRequest{Scheme: "nope", K: 1, Counts: []int64{0}}),
		http.StatusNotFound, "unknown scheme")
	assertJSONError(post(ts.URL+"/v1/schemes", schemeRequest{Design: "nope", N: 10, M: 5}),
		http.StatusBadRequest, "unknown design")
	r2, err := http.Get(ts.URL + "/v1/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	assertJSONError(r2, http.StatusNotFound, "unknown route")
}
