package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/wal"
	"pooleddata/metrics"
)

// walServer boots a frontend journaling into dir, as main() would with
// -wal-dir. The caller shuts it down (possibly mid-campaign) and boots
// a successor against the same dir.
type walServer struct {
	ts      *httptest.Server
	srv     *server
	cluster *engine.Cluster
	journal *wal.WAL
	reg     *metrics.Registry
}

func startWALServer(t testing.TB, dir string, cfg engine.ClusterConfig) *walServer {
	t.Helper()
	cluster := engine.NewCluster(cfg)
	reg := metrics.NewRegistry()
	w, err := wal.Open(dir, wal.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(cluster, campaign.Config{WAL: w})
	return &walServer{ts: httptest.NewServer(srv.handler()), srv: srv, cluster: cluster, journal: w, reg: reg}
}

// shutdown mirrors main()'s graceful exit order: stop serving, close the
// campaign store (which detaches journals first), then the WAL and
// cluster.
func (s *walServer) shutdown() {
	s.ts.Close()
	s.srv.campaigns.Close()
	s.journal.Close()
	s.cluster.Close()
}

// restore replays the WAL into a freshly booted server, as main() does
// after -designs/-snapshot load.
func (s *walServer) restore(t testing.TB) {
	t.Helper()
	if err := restoreCampaigns(s.srv, s.journal, testWriter{t}); err != nil {
		t.Fatalf("restore: %v", err)
	}
}

type testWriter struct{ t testing.TB }

func (w testWriter) Write(p []byte) (int, error) { w.t.Log(string(p)); return len(p), nil }

func pollDone(t testing.TB, url, id string, deadline time.Duration) campaign.Progress {
	t.Helper()
	var p campaign.Progress
	limit := time.Now().Add(deadline)
	for {
		getJSON(t, url+"/v1/campaigns/"+id+"?wait=100ms", &p)
		if p.Terminal() && p.Settled() == p.Total {
			return p
		}
		if time.Now().After(limit) {
			t.Fatalf("campaign %s did not finish: %+v", id, p)
		}
	}
}

func scrapeMetrics(t testing.TB, reg *metrics.Registry) string {
	t.Helper()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	return rec.Body.String()
}

// TestWALRestartSSEResume is the durability acceptance path for finished
// campaigns: a gaussian campaign runs to completion under the WAL, the
// server restarts, and the recovered campaign is bit-identical — same
// results, same event sequence numbers — so an SSE client that consumed
// half the stream before the restart resumes with Last-Event-ID and
// receives exactly the other half, no duplicates, no gaps.
func TestWALRestartSSEResume(t *testing.T) {
	dir := t.TempDir()
	cfg := engine.ClusterConfig{Shards: 2, Shard: engine.Config{CacheCapacity: 4, Workers: 2, QueueDepth: 64}}
	s1 := startWALServer(t, dir, cfg)
	const n, k, m, batch = 300, 5, 240, 8
	sch, signals, ys := measuredBatch(t, s1.ts.URL, s1.cluster, n, k, m, batch, 71)

	nm := &noise.Model{Kind: noise.Gaussian, Sigma: 0.2, Seed: 9}
	var created campaignCreated
	resp := postJSON(t, s1.ts.URL+"/v1/campaigns", campaignRequest{Scheme: sch.ID, K: k, Batch: ys, Noise: nm}, &created)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create campaign: status %d", resp.StatusCode)
	}
	before := pollDone(t, s1.ts.URL, created.ID, 15*time.Second)
	if before.State != campaign.Done || before.Completed != batch {
		t.Fatalf("pre-restart progress = %+v", before)
	}

	// Consume the first half of the stream, noting the resume cursor.
	stream := streamEvents(t, s1.ts.URL, created.ID, 0)
	firstHalf, _ := readSSE(t, stream.Body, batch/2)
	stream.Body.Close()
	if len(firstHalf) != batch/2 {
		t.Fatalf("read %d events pre-restart, want %d", len(firstHalf), batch/2)
	}
	cursor := firstHalf[len(firstHalf)-1].id

	s1.shutdown()

	// Restart against the same WAL dir. The scheme registry is empty —
	// the parametric ref in the journal is what brings the scheme back.
	s2 := startWALServer(t, dir, cfg)
	defer s2.shutdown()
	s2.restore(t)

	after := pollDone(t, s2.ts.URL, created.ID, 5*time.Second)
	if after.State != campaign.Done || after.Completed != batch {
		t.Fatalf("post-restart progress = %+v", after)
	}
	if len(after.Results) != len(before.Results) {
		t.Fatalf("results: %d post-restart, %d pre", len(after.Results), len(before.Results))
	}
	for i, res := range after.Results {
		if !bitvec.FromIndices(n, res.Support).Equal(bitvec.FromIndices(n, before.Results[i].Support)) {
			t.Fatalf("result %d support changed across restart", i)
		}
		if !bitvec.FromIndices(n, res.Support).Equal(signals[i]) {
			t.Fatalf("result %d did not recover its signal", i)
		}
		if res.TraceID != before.Results[i].TraceID {
			t.Fatalf("result %d trace id changed across restart", i)
		}
	}

	// Resume the half-consumed stream: exactly the unseen events arrive,
	// in order, ending in the terminal done event.
	stream = streamEvents(t, s2.ts.URL, created.ID, cursor)
	rest, _ := readSSE(t, stream.Body, batch+1)
	stream.Body.Close()
	want := int64(batch+1) - cursor // remaining results + done
	if int64(len(rest)) != want {
		t.Fatalf("resumed stream delivered %d events, want %d", len(rest), want)
	}
	for i, ev := range rest {
		if ev.id != cursor+int64(i)+1 {
			t.Fatalf("resumed event %d has id %d, want %d", i, ev.id, cursor+int64(i)+1)
		}
	}
	if rest[len(rest)-1].event != "done" {
		t.Fatalf("resumed stream ended with %q, want done", rest[len(rest)-1].event)
	}
	var done struct {
		State     string `json:"state"`
		Completed int    `json:"completed"`
	}
	if err := json.Unmarshal([]byte(rest[len(rest)-1].data), &done); err != nil {
		t.Fatal(err)
	}
	if done.State != string(campaign.Done) || done.Completed != batch {
		t.Fatalf("done event = %+v", done)
	}

	if exp := scrapeMetrics(t, s2.reg); !containsSeries(exp, `pooled_wal_recovered_campaigns_total{state="done"} 1`) {
		t.Fatalf("recovered-campaigns metric missing from exposition:\n%s", exp)
	}
}

func containsSeries(exposition, series string) bool {
	for _, line := range splitLines(exposition) {
		if line == series {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}

// TestWALRedispatchAfterCrash covers the unfinished-campaign path: the
// first server dies with the campaign's jobs still queued (wedged behind
// a blocked worker), so its log holds the spec and no settlements. The
// successor rebuilds the scheme from the journaled parametric ref,
// re-dispatches every job, and the results match the ground-truth
// signals — with the full event stream delivered exactly once.
func TestWALRedispatchAfterCrash(t *testing.T) {
	dir := t.TempDir()
	cfg := engine.ClusterConfig{Shards: 1, Shard: engine.Config{CacheCapacity: 4, Workers: 1, QueueDepth: 16}}
	s1 := startWALServer(t, dir, cfg)
	const n, k, m, batch = 150, 3, 110, 6
	sch, signals, ys := measuredBatch(t, s1.ts.URL, s1.cluster, n, k, m, batch, 81)

	// Wedge the single worker so the campaign's jobs never settle.
	es, err := s1.cluster.Scheme(nil, n, m, 81)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	wedge, err := s1.cluster.Submit(context.Background(), engine.Job{Scheme: es, Y: ys[0], K: k, Dec: blockDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for s1.cluster.Shard(0).QueueDepth() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	var created campaignCreated
	resp := postJSON(t, s1.ts.URL+"/v1/campaigns", campaignRequest{Scheme: sch.ID, K: k, Batch: ys}, &created)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create campaign: status %d", resp.StatusCode)
	}

	// Die with the work in flight. Graceful close detaches the journal
	// before the pending jobs settle with store-closed errors, so the
	// log stays unsealed — exactly what a SIGKILL leaves behind.
	s1.ts.Close()
	s1.srv.campaigns.Close()
	close(release)
	wedge.Wait(context.Background())
	s1.journal.Close()
	s1.cluster.Close()

	s2 := startWALServer(t, dir, cfg)
	defer s2.shutdown()
	s2.restore(t)

	if exp := scrapeMetrics(t, s2.reg); !containsSeries(exp, `pooled_wal_recovered_campaigns_total{state="running"} 1`) {
		t.Fatalf("recovered-campaigns metric missing from exposition:\n%s", exp)
	}

	p := pollDone(t, s2.ts.URL, created.ID, 15*time.Second)
	if p.State != campaign.Done || p.Completed != batch {
		t.Fatalf("re-dispatched campaign = %+v", p)
	}
	for i, res := range p.Results {
		if !bitvec.FromIndices(n, res.Support).Equal(signals[i]) {
			t.Fatalf("re-dispatched result %d did not recover its signal", i)
		}
	}

	// Exactly-once over the full stream: batch result events with
	// distinct job indices, then the terminal event.
	stream := streamEvents(t, s2.ts.URL, created.ID, 0)
	evs, _ := readSSE(t, stream.Body, batch+1)
	stream.Body.Close()
	if len(evs) != batch+1 {
		t.Fatalf("stream delivered %d events, want %d", len(evs), batch+1)
	}
	seen := map[int]bool{}
	for i, ev := range evs[:batch] {
		if ev.id != int64(i)+1 || ev.event != "result" {
			t.Fatalf("event %d = {id:%d event:%q}", i, ev.id, ev.event)
		}
		var res struct {
			Index int `json:"index"`
		}
		if err := json.Unmarshal([]byte(ev.data), &res); err != nil {
			t.Fatal(err)
		}
		if seen[res.Index] {
			t.Fatalf("job %d delivered twice", res.Index)
		}
		seen[res.Index] = true
	}
	if evs[batch].event != "done" {
		t.Fatalf("final event = %q, want done", evs[batch].event)
	}

	// A second recovery of the (now sealed) log reports the campaign
	// done: the successor sealed the journal it inherited.
	s2.journal.Close()
	w3, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	logs, err := w3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 || logs[0].Seal == nil || logs[0].Seal.Completed != batch {
		t.Fatalf("post-completion recovery = %+v", logs)
	}
}
