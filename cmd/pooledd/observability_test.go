package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/remote"
	"pooleddata/metrics"
	"pooleddata/metrics/trace"
)

// logBuffer is a concurrency-safe sink for captured slog output.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (lb *logBuffer) Write(p []byte) (int, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.Write(p)
}

func (lb *logBuffer) String() string {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.String()
}

// scrape fetches a /metrics endpoint, asserts the content type, lints
// the exposition, and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Lint(bytes.NewReader(body)); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, body)
	}
	return string(body)
}

// postJSONTraced posts a JSON body with an X-Request-ID and returns the
// response (body decoded into out when non-nil and 2xx).
func postJSONTraced(t *testing.T, url, trace string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// famStageSums extracts the per-stage Sum/Count of a gathered remote
// request-seconds family.
func famStageSums(fams []metrics.Family) (sums map[string]float64, counts map[string]uint64) {
	sums, counts = make(map[string]float64), make(map[string]uint64)
	for _, fam := range fams {
		if fam.Name != "pooled_remote_request_seconds" {
			continue
		}
		for _, s := range fam.Samples {
			sums[s.Values[1]] += s.Sum
			counts[s.Values[1]] += s.Count
		}
	}
	return sums, counts
}

// TestObservabilityFederatedE2E is the acceptance path of the
// observability layer: a frontend over a remote worker runs a noisy
// campaign while both nodes serve valid Prometheus expositions covering
// engine stage timers, campaign gauges, and the remote transport; a
// caller-chosen request id is echoed in the Trace-ID response header,
// appears on every SSE result event, in the frontend's structured logs,
// and in the worker's — one grep correlates the job end to end — and
// the remote stage timers are consistent with the end-to-end latency.
func TestObservabilityFederatedE2E(t *testing.T) {
	const n, m, k, batch = 400, 240, 5, 12
	nm := noise.Model{Kind: noise.Gaussian, Sigma: 1.0, Seed: 3}

	// Worker: local cluster + shard server + its own registry and logs,
	// with /metrics beside the shard API exactly like `pooledd -worker`.
	workerLogs := &logBuffer{}
	wreg := metrics.NewRegistry()
	wCluster := engine.NewCluster(engine.ClusterConfig{
		Shards: 1,
		Shard:  engine.Config{CacheCapacity: 8, Workers: 2, QueueDepth: 64},
	})
	t.Cleanup(wCluster.Close)
	engine.RegisterClusterMetrics(wreg, wCluster)
	ws := remote.NewServer(wCluster, remote.ServerOptions{
		Logger:  slog.New(slog.NewTextHandler(workerLogs, nil)),
		Metrics: wreg,
	})
	wmux := http.NewServeMux()
	wmux.Handle("GET /metrics", wreg.Handler())
	wmux.Handle("/", ws.Handler())
	worker := httptest.NewServer(wmux)
	t.Cleanup(worker.Close)

	// Frontend: one remote shard over the worker, instrumented server.
	frontLogs := &logBuffer{}
	freg := metrics.NewRegistry()
	flog := slog.New(slog.NewTextHandler(frontLogs, nil))
	// Batch coalescing stays at its default: the per-job stage accounting
	// (serialize share, residual network, worker-reported queue/decode)
	// must hold on the coalesced binary path too — one observation per
	// stage per job, components consistent with the end-to-end total.
	sh := remote.New(remote.Options{
		Addr:          worker.Listener.Addr().String(),
		ProbeInterval: 25 * time.Millisecond,
		Metrics:       freg,
		Logger:        flog,
	})
	t.Cleanup(sh.Close)
	fCluster := engine.NewClusterOf(sh)
	// Tracing on with a full baseline rate, so every job's span tree is
	// retrievable below.
	traces := trace.NewStore(trace.Config{SampleRate: 1})
	srv := newServer(fCluster, campaign.Config{Traces: traces})
	t.Cleanup(srv.campaigns.Close)
	srv.traces = traces
	srv.instrument(freg, flog)
	front := httptest.NewServer(srv.handler())
	t.Cleanup(front.Close)

	var sch schemeEntry
	if resp := postJSON(t, front.URL+"/v1/schemes", schemeRequest{Design: "random-regular", N: n, M: m, Seed: 7}, &sch); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create scheme: status %d", resp.StatusCode)
	}

	// A single traced decode: the trace id round-trips through the
	// worker and back into the response body and header.
	const decodeTrace = "trace-decode-42"
	ys := noisyBatch(t, n, m, k, batch, 7, nm)
	var dr decodeResponse
	resp := postJSONTraced(t, front.URL+"/v1/decode", decodeTrace,
		decodeRequest{Scheme: sch.ID, K: k, Noise: &nm, Counts: ys[0]}, &dr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decode: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Trace-ID"); got != decodeTrace {
		t.Fatalf("decode Trace-ID header = %q, want %q", got, decodeTrace)
	}
	if dr.TraceID != decodeTrace {
		t.Fatalf("decode response trace_id = %q, want %q", dr.TraceID, decodeTrace)
	}

	// A traced campaign: the id must reach every SSE result event.
	const campTrace = "trace-campaign-e2e"
	var created campaignCreated
	resp = postJSONTraced(t, front.URL+"/v1/campaigns", campTrace,
		campaignRequest{Scheme: sch.ID, K: k, Batch: ys, Noise: &nm}, &created)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create campaign: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Trace-ID"); got != campTrace {
		t.Fatalf("campaign Trace-ID header = %q, want %q", got, campTrace)
	}

	stream := streamEvents(t, front.URL, created.ID, 0)
	defer stream.Body.Close()
	evs, _ := readSSE(t, stream.Body, batch+1)
	var results int
	for _, ev := range evs {
		if ev.event != "result" {
			continue
		}
		results++
		var jr campaign.JobResult
		if err := json.Unmarshal([]byte(ev.data), &jr); err != nil {
			t.Fatalf("bad result payload %q: %v", ev.data, err)
		}
		if want := fmt.Sprintf("%s-%d", campTrace, jr.Index); jr.TraceID != want {
			t.Fatalf("SSE result %d trace_id = %q, want per-job id %q", jr.Index, jr.TraceID, want)
		}
	}
	if results != batch {
		t.Fatalf("streamed %d results, want %d", results, batch)
	}

	// The trace id appears in the logs on both sides of the hop.
	for name, logs := range map[string]*logBuffer{"frontend": frontLogs, "worker": workerLogs} {
		out := logs.String()
		if !strings.Contains(out, decodeTrace) {
			t.Fatalf("%s logs missing decode trace %q:\n%s", name, decodeTrace, out)
		}
	}
	if out := workerLogs.String(); !strings.Contains(out, campTrace) {
		t.Fatalf("worker logs missing campaign trace %q:\n%s", campTrace, out)
	}
	if out := frontLogs.String(); !strings.Contains(out, campTrace) {
		t.Fatalf("frontend logs missing campaign trace %q:\n%s", campTrace, out)
	}

	// Both expositions are valid and cover their layer's families.
	frontExpo := scrape(t, front.URL)
	for _, want := range []string{
		"pooled_remote_request_seconds_bucket",
		"pooled_engine_decode_seconds_bucket",
		"pooled_engine_noise_decode_seconds_bucket",
		"pooled_engine_jobs_total",
		"pooled_campaigns{state=\"active\"}",
		"pooled_campaign_dispatched_total",
		"pooled_sse_streams_total",
		"pooled_registered_schemes",
		"pooled_shard_healthy",
		"pooled_remote_worker_healthy",
	} {
		if !strings.Contains(frontExpo, want) {
			t.Errorf("frontend exposition missing %q", want)
		}
	}
	workerExpo := scrape(t, worker.URL)
	for _, want := range []string{
		"pooled_worker_decode_requests_total{status=\"200\"}",
		"pooled_worker_installed_schemes",
		"pooled_worker_scheme_installs_total",
		"pooled_engine_queue_wait_seconds_bucket",
		"pooled_engine_decode_seconds_bucket",
	} {
		if !strings.Contains(workerExpo, want) {
			t.Errorf("worker exposition missing %q", want)
		}
	}

	// Stage timers vs. end-to-end latency: the per-stage sums
	// (serialize + network + worker_queue + worker_decode) must account
	// for the total without exceeding it — the worker's parse/serialize
	// overhead is the only part of the round trip not attributed to a
	// stage. Loose tolerance: timers, not a benchmark.
	sums, counts := famStageSums(freg.Gather())
	wantObs := uint64(batch + 1)
	for _, st := range []string{"serialize", "network", "worker_queue", "worker_decode", "total"} {
		if counts[st] != wantObs {
			t.Errorf("stage %q observed %d times, want %d", st, counts[st], wantObs)
		}
	}
	total := sums["total"]
	components := sums["serialize"] + sums["network"] + sums["worker_queue"] + sums["worker_decode"]
	if total <= 0 {
		t.Fatal("total stage sum is zero")
	}
	if components > total*1.05+0.005 {
		t.Errorf("stage sums %.6fs exceed end-to-end total %.6fs", components, total)
	}
	if components < total*0.1 {
		t.Errorf("stage sums %.6fs unexpectedly tiny against end-to-end total %.6fs", components, total)
	}

	// Span-level tracing: the sync decode's span tree is retrievable by
	// its ingress id and covers the whole path — ingress → shard queue →
	// wire (serialize/network children) → worker queue/decode synthesized
	// inside the request window on the worker tier.
	var tr trace.Trace
	if resp := getJSON(t, front.URL+"/v1/traces/"+decodeTrace, &tr); resp.StatusCode != http.StatusOK {
		t.Fatalf("get decode trace: status %d", resp.StatusCode)
	}
	spans := make(map[string]trace.Span, len(tr.Spans))
	for _, sp := range tr.Spans {
		spans[sp.Name] = sp
	}
	for _, want := range []string{"decode_request", "ingress", "shard_queue", "wire", "serialize", "network", "worker_queue", "worker_decode"} {
		if _, ok := spans[want]; !ok {
			t.Fatalf("decode trace missing span %q, got %+v", want, tr.Spans)
		}
	}
	for name, tier := range map[string]string{
		"ingress": trace.TierFrontend, "shard_queue": trace.TierFrontend,
		"worker_queue": trace.TierWorker, "worker_decode": trace.TierWorker,
	} {
		if spans[name].Tier != tier {
			t.Errorf("span %q tier = %q, want %q", name, spans[name].Tier, tier)
		}
	}
	root := spans["decode_request"]
	for _, child := range []string{"serialize", "network", "worker_queue", "worker_decode"} {
		if spans[child].Parent != spans["wire"].ID {
			t.Errorf("span %q parent = %d, want wire (%d)", child, spans[child].Parent, spans["wire"].ID)
		}
	}
	if spans["wire"].Parent != root.ID {
		t.Errorf("wire span parent = %d, want root (%d)", spans["wire"].Parent, root.ID)
	}
	// Stage durations must be consistent with the trace's end-to-end
	// latency: the sequential stages sum to at most the root (plus
	// timer jitter slack), and the wire span bounds its children.
	seq := spans["ingress"].DurNS + spans["shard_queue"].DurNS + spans["wire"].DurNS
	if limit := tr.DurNS + tr.DurNS/10 + (10 * time.Millisecond).Nanoseconds(); seq > limit {
		t.Errorf("sequential span sum %dns exceeds trace duration %dns", seq, tr.DurNS)
	}
	wireKids := spans["serialize"].DurNS + spans["network"].DurNS + spans["worker_queue"].DurNS + spans["worker_decode"].DurNS
	if limit := spans["wire"].DurNS + spans["wire"].DurNS/10 + (10 * time.Millisecond).Nanoseconds(); wireKids > limit {
		t.Errorf("wire children sum %dns exceeds wire span %dns", wireKids, spans["wire"].DurNS)
	}

	// A campaign job's trace carries the campaign-side spans and both
	// tiers. Fetch with a short retry: the trace seals moments after the
	// SSE result event that proved the job settled.
	jobTraceID := campTrace + "-0"
	var jobTr trace.Trace
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resp := getJSON(t, front.URL+"/v1/traces/"+jobTraceID, &jobTr); resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign job trace %q never retained", jobTraceID)
		}
		time.Sleep(20 * time.Millisecond)
	}
	jobSpans := make(map[string]bool, len(jobTr.Spans))
	tiers := make(map[string]bool)
	for _, sp := range jobTr.Spans {
		jobSpans[sp.Name] = true
		tiers[sp.Tier] = true
	}
	for _, want := range []string{"campaign_job", "admission", "tenant_queue", "wire", "worker_decode"} {
		if !jobSpans[want] {
			t.Errorf("campaign job trace missing span %q, got %+v", want, jobTr.Spans)
		}
	}
	if !tiers[trace.TierFrontend] || !tiers[trace.TierWorker] {
		t.Errorf("campaign job trace does not span both tiers: %+v", jobTr.Spans)
	}
	if jobTr.Tenant != campaign.DefaultTenant {
		t.Errorf("campaign job trace tenant = %q, want %q", jobTr.Tenant, campaign.DefaultTenant)
	}

	// Hot-key accounting: the campaign's scheme shows in the /v1/stats
	// top-K load table, owned by the worker. The rows ride the worker's
	// /shard/v1/stats snapshot, which the remote client caches for
	// 500ms — retry past the TTL.
	workerAddr := worker.Listener.Addr().String()
	deadline = time.Now().Add(10 * time.Second)
	for {
		var stats struct {
			SchemeLoad []schemeLoadRow `json:"scheme_load"`
		}
		getJSON(t, front.URL+"/v1/stats", &stats)
		found := false
		for _, row := range stats.SchemeLoad {
			if row.Jobs >= uint64(batch+1) && row.Owner == workerAddr && row.DecodeNS > 0 {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheme load table never showed the campaign's scheme owned by %s: %+v", workerAddr, stats.SchemeLoad)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestMetricsAndStatsBoundedUnderTenantFlood hammers the server with
// thousands of distinct tenant names and asserts neither /v1/stats nor
// /metrics grows without bound: campaign retention prunes tenant
// accounting, and the exposition's per-family series cap collapses the
// rest into the overflow tuple.
func TestMetricsAndStatsBoundedUnderTenantFlood(t *testing.T) {
	tenants := 10000
	if testing.Short() {
		tenants = 1000
	}
	cluster := engine.NewCluster(engine.ClusterConfig{
		Shards: 1,
		Shard:  engine.Config{CacheCapacity: 4, Workers: 2, QueueDepth: 256},
	})
	t.Cleanup(cluster.Close)
	srv := newServer(cluster, campaign.Config{
		Retention:   50 * time.Millisecond,
		MaxFinished: 16,
	})
	t.Cleanup(srv.campaigns.Close)
	reg := metrics.NewRegistry()
	srv.instrument(reg, nil)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	var sch schemeEntry
	if resp := postJSON(t, ts.URL+"/v1/schemes", schemeRequest{Design: "random-regular", N: 64, M: 32, Seed: 1}, &sch); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create scheme: status %d", resp.StatusCode)
	}
	ent, _ := srv.lookup(sch.ID)
	y := make([]int64, 32) // zero counts decode instantly at k=0

	// Flood through the store directly (the HTTP layer adds nothing to
	// label-set growth), scraping /metrics concurrently so the scrape
	// races real churn rather than a quiet registry.
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				scrape(t, ts.URL)
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()
	for i := 0; i < tenants; i++ {
		// The store's global active-campaign cap pushes back when creates
		// outrun the decode pipeline — GC and retry until admitted, which
		// is exactly what a flooding client would be told to do (429).
		deadline := time.Now().Add(time.Minute)
		for {
			_, err := srv.campaigns.Create(campaign.Request{
				Scheme: ent.scheme, Batch: [][]int64{y}, K: 0,
				Tenant: fmt.Sprintf("tenant-%d", i),
			})
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %d never admitted: %v", i, err)
			}
			srv.campaigns.GC(time.Now())
			time.Sleep(time.Millisecond)
		}
	}
	// Drain: every job settles, then GC past the retention window.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := cluster.Stats().Total
		if st.JobsCompleted+st.JobsFailed+st.JobsCanceled >= uint64(tenants) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flood never drained: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	scrapeWG.Wait()
	time.Sleep(60 * time.Millisecond)
	srv.campaigns.GC(time.Now())

	// /metrics: every family stays under the series cap (plus overflow).
	for _, fam := range reg.Gather() {
		if len(fam.Samples) > metrics.DefaultMaxSeries+1 {
			t.Errorf("family %s grew to %d series despite the bound", fam.Name, len(fam.Samples))
		}
	}
	expo := scrape(t, ts.URL)
	if nLines := strings.Count(expo, "\n"); nLines > 20000 {
		t.Errorf("exposition is %d lines — label sets not bounded", nLines)
	}

	// /v1/stats: tenant map pruned down to retention, not 10k entries.
	var stats struct {
		Tenants map[string]json.RawMessage `json:"tenants"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	// The per-tenant latency set keeps at most 64 keys plus the "other"
	// overflow key, and that set is what keeps tenants visible after GC.
	if len(stats.Tenants) > 65 {
		t.Errorf("/v1/stats retains %d tenants after GC, want <= 65", len(stats.Tenants))
	}
	if _, ok := stats.Tenants["other"]; !ok {
		t.Error("/v1/stats tenant map missing the overflow key after a 10k-tenant flood")
	}
}

// TestTraceGeneratedWhenAbsent: requests without a caller id still get
// a trace — generated at ingress, echoed in the header.
func TestTraceGeneratedWhenAbsent(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	trace := resp.Header.Get("Trace-ID")
	if len(trace) != 16 {
		t.Fatalf("generated Trace-ID %q, want 16 hex chars", trace)
	}
}
