package main

import (
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/pooling"
	"pooleddata/internal/remote"
)

// Elastic-fleet end-to-end coverage: runtime worker registration and
// drain over the HTTP membership API, probe-driven eviction with
// auto-rejoin, and membership churn racing live campaigns.

// startElasticFrontend boots a frontend with a fleet manager over the
// given workers — the in-process form of `pooledd -workers ...` with
// the /v1/workers endpoints live. Probe and retry knobs are tightened
// so eviction and rejoin land within test timeouts.
func startElasticFrontend(t testing.TB, workers ...*httptest.Server) (*httptest.Server, *server, *fleet) {
	t.Helper()
	addrs := make([]string, len(workers))
	for i, w := range workers {
		addrs[i] = w.Listener.Addr().String()
	}
	f, cluster := newFleet(addrs, fleetConfig{
		probeInterval: 20 * time.Millisecond,
		retryBackoff:  5 * time.Millisecond,
		retries:       1,
	})
	t.Cleanup(f.Close)
	srv := newServer(cluster, campaign.Config{})
	srv.fleet = f
	f.onChange = srv.migrateSchemes
	t.Cleanup(srv.campaigns.Close)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, srv, f
}

func deleteWorker(t testing.TB, url, addr string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/v1/workers/"+addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// seedOwnedByID searches for a default-design seed whose spec key the
// ring assigns to the member with the given id.
func seedOwnedByID(c *engine.Cluster, n, m int, id string) uint64 {
	for seed := uint64(1); ; seed++ {
		if c.OwnerID(engine.SpecFor(pooling.RandomRegular{}, n, m, seed).Key()) == id {
			return seed
		}
	}
}

// TestElasticAddWorkerMidCampaign registers a second worker while a
// campaign is in flight: the campaign completes with zero failures,
// the new member appears in /v1/workers and /v1/stats, and schemes
// keyed to its arcs are decoded by it.
func TestElasticAddWorkerMidCampaign(t *testing.T) {
	const n, m, k, batch = 400, 240, 5, 48
	nm := noise.Model{Kind: noise.Gaussian, Sigma: 1.0, Seed: 3}
	_, w0 := startWorker(t)
	w1Cluster, w1 := startWorker(t)
	fed, srv, _ := startElasticFrontend(t, w0)
	w1Addr := w1.Listener.Addr().String()

	// Campaign in flight on the single-worker fleet.
	seed := seedOwnedByID(srv.cluster, n, m, srv.cluster.MemberIDs()[0])
	ys := noisyBatch(t, n, m, k, batch, seed, nm)
	var sch schemeEntry
	postJSON(t, fed.URL+"/v1/schemes", schemeRequest{Design: "random-regular", N: n, M: m, Seed: seed}, &sch)
	var created campaignCreated
	if resp := postJSON(t, fed.URL+"/v1/campaigns", campaignRequest{Scheme: sch.ID, K: k, Batch: ys, Noise: &nm}, &created); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create campaign: status %d", resp.StatusCode)
	}

	// Register the second worker mid-flight.
	var joined struct {
		Members []string `json:"members"`
	}
	if resp := postJSON(t, fed.URL+"/v1/workers", workerRequest{Addr: w1Addr}, &joined); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register worker: status %d", resp.StatusCode)
	}
	if len(joined.Members) != 2 {
		t.Fatalf("members after join = %v, want 2", joined.Members)
	}
	if resp := postJSON(t, fed.URL+"/v1/workers", workerRequest{Addr: w1Addr}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: status %d, want 409", resp.StatusCode)
	}

	// The in-flight campaign finishes losing nothing across the ring
	// change (its scheme may or may not have migrated to the new member
	// — either way every job must settle cleanly).
	deadline := time.Now().Add(60 * time.Second)
	var p campaign.Progress
	for {
		getJSON(t, fed.URL+"/v1/campaigns/"+created.ID+"?wait=2s", &p)
		if p.Terminal() && p.Settled() == p.Total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign wedged across worker join: %+v", p)
		}
	}
	if p.Completed != batch || p.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0", p.Completed, p.Failed, batch)
	}

	// New load lands on the new member: a scheme keyed to its arcs is
	// decoded by its engine.
	seed1 := seedOwnedByID(srv.cluster, n, m, w1Addr)
	ys1 := noisyBatch(t, n, m, k, 8, seed1, nm)
	var sch1 schemeEntry
	postJSON(t, fed.URL+"/v1/schemes", schemeRequest{Design: "random-regular", N: n, M: m, Seed: seed1}, &sch1)
	if sch1.Owner != w1Addr {
		t.Fatalf("scheme owner = %q, want %q", sch1.Owner, w1Addr)
	}
	if p := runCampaignHTTP(t, fed.URL, campaignRequest{Scheme: sch1.ID, K: k, Batch: ys1, Noise: &nm}); p.Completed != 8 {
		t.Fatalf("campaign on new worker: %+v", p)
	}
	if c := w1Cluster.Stats().Total.JobsCompleted; c < 8 {
		t.Fatalf("new worker completed %d jobs, want >= 8", c)
	}

	// Membership shows up in /v1/workers and /v1/stats.
	var wl struct {
		Workers []workerStatus `json:"workers"`
	}
	getJSON(t, fed.URL+"/v1/workers", &wl)
	if len(wl.Workers) != 2 {
		t.Fatalf("worker list = %+v, want 2 entries", wl.Workers)
	}
	var stats struct {
		Members        []string `json:"members"`
		MembershipAdds uint64   `json:"membership_adds"`
	}
	getJSON(t, fed.URL+"/v1/stats", &stats)
	if len(stats.Members) != 2 || stats.MembershipAdds != 1 {
		t.Fatalf("stats members=%v adds=%d, want 2 members / 1 runtime join", stats.Members, stats.MembershipAdds)
	}
}

// TestElasticDrainWorkerMidCampaign drains a worker over the HTTP API
// while its jobs are in flight: the queue flushes, orphans re-dispatch
// through the ring, and the campaign completes with zero failures and
// baseline-identical supports.
func TestElasticDrainWorkerMidCampaign(t *testing.T) {
	const n, m, k, batch = 400, 240, 5, 64
	nm := noise.Model{Kind: noise.Gaussian, Sigma: 1.0, Seed: 7}
	_, w0 := startWorker(t)
	_, w1 := startWorker(t)
	fed, srv, _ := startElasticFrontend(t, w0, w1)
	w1Addr := w1.Listener.Addr().String()

	local, _, _ := newTestServerWith(t, engine.ClusterConfig{
		Shards: 2, Shard: engine.Config{CacheCapacity: 8, Workers: 2, QueueDepth: 64},
	})

	// A campaign whose scheme lives on the worker we will drain.
	seed := seedOwnedByID(srv.cluster, n, m, w1Addr)
	ys := noisyBatch(t, n, m, k, batch, seed, nm)
	runScheme := func(url string) campaign.Progress {
		var sch schemeEntry
		postJSON(t, url+"/v1/schemes", schemeRequest{Design: "random-regular", N: n, M: m, Seed: seed}, &sch)
		return runCampaignHTTP(t, url, campaignRequest{Scheme: sch.ID, K: k, Batch: ys, Noise: &nm})
	}
	want := runScheme(local.URL)

	var sch schemeEntry
	postJSON(t, fed.URL+"/v1/schemes", schemeRequest{Design: "random-regular", N: n, M: m, Seed: seed}, &sch)
	var created campaignCreated
	if resp := postJSON(t, fed.URL+"/v1/campaigns", campaignRequest{Scheme: sch.ID, K: k, Batch: ys, Noise: &nm}, &created); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create campaign: status %d", resp.StatusCode)
	}
	if resp := deleteWorker(t, fed.URL, w1Addr); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain worker: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	var p campaign.Progress
	for {
		getJSON(t, fed.URL+"/v1/campaigns/"+created.ID+"?wait=2s", &p)
		if p.Terminal() && p.Settled() == p.Total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign wedged across drain: %+v", p)
		}
	}
	if p.Failed != 0 || p.Completed != batch {
		t.Fatalf("drain lost jobs: completed=%d failed=%d, want %d/0", p.Completed, p.Failed, batch)
	}
	if !reflect.DeepEqual(supportsByIndex(p), supportsByIndex(want)) {
		t.Fatal("supports diverged from baseline after mid-campaign drain")
	}

	// The drained worker is gone from membership; draining the last one
	// is refused; draining an unknown address 404s.
	var stats struct {
		Members           []string `json:"members"`
		MembershipRemoves uint64   `json:"membership_removes"`
	}
	getJSON(t, fed.URL+"/v1/stats", &stats)
	if len(stats.Members) != 1 || stats.MembershipRemoves != 1 {
		t.Fatalf("stats members=%v removes=%d, want 1/1", stats.Members, stats.MembershipRemoves)
	}
	if resp := deleteWorker(t, fed.URL, w0.Listener.Addr().String()); resp.StatusCode != http.StatusConflict {
		t.Fatalf("drain last worker: status %d, want 409", resp.StatusCode)
	}
	if resp := deleteWorker(t, fed.URL, "nope:1"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drain unknown worker: status %d, want 404", resp.StatusCode)
	}
}

// TestElasticEvictionAndRejoin kills a worker's listener: after
// EvictAfter failed probes the fleet pulls it from the ring (still
// listed as a non-member in /v1/workers), and when the listener comes
// back on the same address the probe re-admits it.
func TestElasticEvictionAndRejoin(t *testing.T) {
	_, w0 := startWorker(t)
	w1Engine, w1 := startWorker(t)
	w1Addr := w1.Listener.Addr().String()
	fed, srv, _ := startElasticFrontend(t, w0, w1)

	if len(srv.cluster.MemberIDs()) != 2 {
		t.Fatalf("boot members = %v", srv.cluster.MemberIDs())
	}

	// Kill the listener; the probe evicts the worker from the ring.
	w1.Close()
	deadline := time.Now().Add(10 * time.Second)
	for srv.cluster.HasMember(w1Addr) {
		if time.Now().After(deadline) {
			t.Fatal("worker never evicted after listener death")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var wl struct {
		Workers []workerStatus `json:"workers"`
	}
	getJSON(t, fed.URL+"/v1/workers", &wl)
	evicted := false
	for _, ws := range wl.Workers {
		if ws.Addr == w1Addr && !ws.Member {
			evicted = true
		}
	}
	if !evicted {
		t.Fatalf("evicted worker not listed as non-member: %+v", wl.Workers)
	}

	// Resurrect the worker on the same address; the probe re-admits it.
	ln, err := reListen(w1Addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", w1Addr, err)
	}
	revived := &http.Server{Handler: remoteHandlerFor(t, w1Engine)}
	go revived.Serve(ln)
	t.Cleanup(func() { revived.Close() })

	for !srv.cluster.HasMember(w1Addr) {
		if time.Now().After(deadline) {
			t.Fatal("worker never rejoined after listener revival")
		}
		time.Sleep(5 * time.Millisecond)
	}
	adds, removes := srv.cluster.MembershipChanges()
	if adds < 1 || removes < 1 {
		t.Fatalf("membership changes adds=%d removes=%d, want >=1 each (eviction + rejoin)", adds, removes)
	}
}

// TestDrainRacesEviction regression-tests the drain-vs-eviction
// deadlock: an administrative DELETE racing the probe-threshold
// transition of a dying worker must not wedge the membership lock.
// (Remove used to close the client — which waits out the probe
// goroutine — while holding f.mu, the same lock that goroutine's
// eviction hook was queued on.)
//
// The choreography that used to wedge: stillborn workers march toward
// eviction a few ms apart; the first eviction fires and lingers in the
// (deliberately slow) change hook; the drains arrive while the later
// workers' eviction hooks are still queued on f.mu behind it. A drain
// that then wins the lock before its own worker's hook would close the
// client under f.mu and wait forever for the hook-blocked probe
// goroutine. Each round shifts the drain instant to sweep the window.
func TestDrainRacesEviction(t *testing.T) {
	_, w0 := startWorker(t)
	_, _, f := startElasticFrontend(t, w0)
	// Slow change hook: stretches each eviction so the drains below
	// reliably overlap the queued probe-threshold transitions.
	f.onChange = func(string) { time.Sleep(25 * time.Millisecond) }

	for round := 0; round < 3; round++ {
		// Eviction lands EvictAfter(3) probes after Add — ~40ms at the
		// 20ms test probe interval — so staggering the Adds staggers the
		// hooks across the drain burst.
		start := time.Now()
		var addrs []string
		for i := 0; i < 5; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addr := ln.Addr().String()
			ln.Close()
			if err := f.Add(addr); err != nil {
				t.Fatalf("add %s: %v", addr, err)
			}
			addrs = append(addrs, addr)
			time.Sleep(4 * time.Millisecond)
		}
		// Fire every drain concurrently just after the first eviction has
		// claimed the lock, while the rest are still inbound.
		if d := time.Duration(38+4*round)*time.Millisecond - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		var wg sync.WaitGroup
		done := make(chan struct{})
		for _, addr := range addrs {
			wg.Add(1)
			go func(addr string) {
				defer wg.Done()
				if err := f.Remove(addr); err != nil {
					t.Errorf("remove %s: %v", addr, err)
				}
			}(addr)
		}
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("drain deadlocked against probe-driven eviction")
		}
	}
}

// TestElasticChurnHammer races campaigns against continuous membership
// churn and stats polling — the -race exercise of the lock-free view
// swap, probe-driven hooks, and re-dispatch accounting.
func TestElasticChurnHammer(t *testing.T) {
	const n, m, k, batch = 200, 120, 4, 12
	_, w0 := startWorker(t)
	_, w1 := startWorker(t)
	_, w2 := startWorker(t)
	fed, _, f := startElasticFrontend(t, w0, w1)
	w2Addr := w2.Listener.Addr().String()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churn: worker 2 joins and drains in a loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := f.Add(w2Addr); err == nil {
				time.Sleep(2 * time.Millisecond)
				_ = f.Remove(w2Addr)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Stats and worker-list polling.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			getJSON(t, fed.URL+"/v1/stats", nil)
			getJSON(t, fed.URL+"/v1/workers", nil)
			time.Sleep(time.Millisecond)
		}
	}()

	// Campaigns across distinct seeds while the ring churns.
	nm := noise.Model{}
	for seed := uint64(1); seed <= 6; seed++ {
		ys := noisyBatch(t, n, m, k, batch, seed, nm)
		var sch schemeEntry
		postJSON(t, fed.URL+"/v1/schemes", schemeRequest{Design: "random-regular", N: n, M: m, Seed: seed}, &sch)
		p := runCampaignHTTP(t, fed.URL, campaignRequest{Scheme: sch.ID, K: k, Batch: ys})
		if p.Failed != 0 || p.Completed != batch {
			t.Fatalf("seed %d: completed=%d failed=%d, want %d/0", seed, p.Completed, p.Failed, batch)
		}
	}
	close(stop)
	wg.Wait()
}

// reListen rebinds a TCP listener on addr — the "worker restarted on
// the same host:port" move of the rejoin test. The port was just
// released by the dead httptest server, but another process may grab
// it; callers skip on failure.
func reListen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// remoteHandlerFor serves the worker shard API over an existing engine
// cluster — the handler of a revived worker process.
func remoteHandlerFor(t testing.TB, c *engine.Cluster) http.Handler {
	t.Helper()
	return remote.NewServer(c, remote.ServerOptions{}).Handler()
}
