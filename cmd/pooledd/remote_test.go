package main

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/remote"
	"pooleddata/internal/rng"
)

// startWorker runs an in-process `pooledd -worker`: a local engine
// cluster behind the shard API on a loopback listener.
func startWorker(t testing.TB) (*engine.Cluster, *httptest.Server) {
	t.Helper()
	cluster := engine.NewCluster(engine.ClusterConfig{
		Shards: 1,
		Shard:  engine.Config{CacheCapacity: 8, Workers: 2, QueueDepth: 64},
	})
	t.Cleanup(cluster.Close)
	ts := httptest.NewServer(remote.NewServer(cluster, remote.ServerOptions{}).Handler())
	t.Cleanup(ts.Close)
	return cluster, ts
}

// startFrontend runs a pooledd frontend whose shards are remote clients
// against the given workers — the in-process form of
// `pooledd -workers host:port,host:port`.
func startFrontend(t testing.TB, workers []*httptest.Server) (*httptest.Server, *engine.Cluster, []*remote.Shard) {
	t.Helper()
	shards := make([]engine.Shard, len(workers))
	clients := make([]*remote.Shard, len(workers))
	for i, w := range workers {
		sh := remote.New(remote.Options{
			Addr:          w.Listener.Addr().String(),
			ProbeInterval: 25 * time.Millisecond,
			RetryBackoff:  5 * time.Millisecond,
			Retries:       1,
		})
		t.Cleanup(sh.Close)
		shards[i], clients[i] = sh, sh
	}
	cluster := engine.NewClusterOf(shards...)
	srv := newServer(cluster, campaign.Config{})
	t.Cleanup(srv.campaigns.Close)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, cluster, clients
}

// noisyBatch builds the deterministic test instance: the design graph
// (identical on every node by seeded-build determinism), signals, and
// counts measured under the noise model's per-signal streams.
func noisyBatch(t testing.TB, n, m, k, batch int, seed uint64, nm noise.Model) [][]int64 {
	t.Helper()
	g, err := pooling.RandomRegular{}.Build(n, m, pooling.BuildOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ys := make([][]int64, batch)
	for b := range ys {
		sigma := bitvec.Random(n, k, rng.NewRandSeeded(seed*1000+uint64(b)))
		ys[b] = query.Execute(g, sigma, query.Options{Oracle: nm.Oracle(), Seed: nm.SignalSeed(b)}).Y
	}
	return ys
}

// runCampaignHTTP posts a campaign and long-polls it to a terminal
// state, returning the final progress.
func runCampaignHTTP(t testing.TB, url string, req campaignRequest) campaign.Progress {
	t.Helper()
	var created campaignCreated
	resp := postJSON(t, url+"/v1/campaigns", req, &created)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create campaign: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var p campaign.Progress
		getJSON(t, url+"/v1/campaigns/"+created.ID+"?wait=2s", &p)
		if p.Terminal() && p.Settled() == p.Total {
			return p
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never terminal: %+v", created.ID, p)
		}
	}
}

func supportsByIndex(p campaign.Progress) map[int][]int {
	out := make(map[int][]int, len(p.Results))
	for _, jr := range p.Results {
		if jr.Error == "" {
			out[jr.Index] = jr.Support
		}
	}
	return out
}

// TestRemoteFederationE2E is the acceptance run: a frontend over two
// worker processes decodes a noisy campaign bit-identically to a
// single-node pooledd, routes schemes to both workers, and — when one
// worker dies mid-campaign — settles its jobs with errors while the
// campaign still terminates and the dead shard shows unhealthy in
// /v1/stats.
func TestRemoteFederationE2E(t *testing.T) {
	const n, m, k, batch = 400, 240, 5, 24
	nm := noise.Model{Kind: noise.Gaussian, Sigma: 1.0, Seed: 3}

	// Single-node baseline.
	local, _, _ := newTestServerWith(t, engine.ClusterConfig{
		Shards: 2,
		Shard:  engine.Config{CacheCapacity: 8, Workers: 2, QueueDepth: 64},
	})

	// Federated: one frontend, two workers.
	w0Cluster, w0 := startWorker(t)
	w1Cluster, w1 := startWorker(t)
	fed, fedCluster, clients := startFrontend(t, []*httptest.Server{w0, w1})

	// Seeds whose specs land on shard 0 and shard 1 of the frontend.
	seedFor := func(shard int) uint64 {
		for seed := uint64(1); ; seed++ {
			if fedCluster.ShardOf(engine.SpecFor(pooling.RandomRegular{}, n, m, seed)) == shard {
				return seed
			}
		}
	}
	seed0, seed1 := seedFor(0), seedFor(1)

	runOn := func(url string, seed uint64, ys [][]int64) campaign.Progress {
		var sch schemeEntry
		resp := postJSON(t, url+"/v1/schemes", schemeRequest{Design: "random-regular", N: n, M: m, Seed: seed}, &sch)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create scheme: status %d", resp.StatusCode)
		}
		return runCampaignHTTP(t, url, campaignRequest{Scheme: sch.ID, K: k, Batch: ys, Noise: &nm})
	}

	for i, seed := range []uint64{seed0, seed1} {
		ys := noisyBatch(t, n, m, k, batch, seed, nm)
		want := runOn(local.URL, seed, ys)
		got := runOn(fed.URL, seed, ys)
		if want.Completed != batch || got.Completed != batch {
			t.Fatalf("campaign %d: completed local=%d fed=%d, want %d", i, want.Completed, got.Completed, batch)
		}
		if !reflect.DeepEqual(supportsByIndex(got), supportsByIndex(want)) {
			t.Fatalf("campaign %d: federated supports differ from single-node run", i)
		}
	}

	// Both workers decoded — the campaigns routed by spec hash.
	if c0 := w0Cluster.Stats().Total.JobsCompleted; c0 < batch {
		t.Fatalf("worker 0 completed %d jobs, want >= %d", c0, batch)
	}
	if c1 := w1Cluster.Stats().Total.JobsCompleted; c1 < batch {
		t.Fatalf("worker 1 completed %d jobs, want >= %d", c1, batch)
	}

	// Kill worker 1 mid-campaign: the dispatcher re-dispatches its
	// orphans through the ring to the survivor — the campaign completes
	// with zero failed jobs and supports bit-identical to the baseline.
	const bigBatch = 64
	ysKill := noisyBatch(t, n, m, k, bigBatch, seed1, nm)
	wantKill := runOn(local.URL, seed1, ysKill)
	var sch schemeEntry
	postJSON(t, fed.URL+"/v1/schemes", schemeRequest{Design: "random-regular", N: n, M: m, Seed: seed1}, &sch)
	var created campaignCreated
	resp := postJSON(t, fed.URL+"/v1/campaigns", campaignRequest{Scheme: sch.ID, K: k, Batch: ysKill, Noise: &nm}, &created)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create kill campaign: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var p campaign.Progress
		getJSON(t, fed.URL+"/v1/campaigns/"+created.ID, &p)
		if p.Settled() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no job settled before kill")
		}
		time.Sleep(time.Millisecond)
	}
	w1.Close()

	deadline = time.Now().Add(60 * time.Second)
	var p campaign.Progress
	for {
		getJSON(t, fed.URL+"/v1/campaigns/"+created.ID+"?wait=2s", &p)
		if p.Terminal() && p.Settled() == p.Total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign wedged after worker death: %+v", p)
		}
	}
	if p.Failed != 0 || p.Canceled != 0 {
		t.Fatalf("worker death lost jobs: completed=%d failed=%d canceled=%d", p.Completed, p.Failed, p.Canceled)
	}
	if p.Completed != bigBatch {
		t.Fatalf("completed = %d, want %d", p.Completed, bigBatch)
	}
	if !reflect.DeepEqual(supportsByIndex(p), supportsByIndex(wantKill)) {
		t.Fatal("supports diverged from the single-node baseline after mid-campaign worker death")
	}

	// The frontend keeps serving and /v1/stats surfaces the dead worker.
	for time.Now().Before(deadline) && clients[1].Healthy() {
		time.Sleep(5 * time.Millisecond)
	}
	var stats struct {
		Shards []struct {
			Shard   int    `json:"shard"`
			Healthy bool   `json:"healthy"`
			Addr    string `json:"addr"`
		} `json:"shards"`
	}
	getJSON(t, fed.URL+"/v1/stats", &stats)
	if len(stats.Shards) != 2 {
		t.Fatalf("stats shards = %d, want 2", len(stats.Shards))
	}
	if !stats.Shards[0].Healthy || stats.Shards[1].Healthy {
		t.Fatalf("shard health = %v/%v, want healthy/unhealthy",
			stats.Shards[0].Healthy, stats.Shards[1].Healthy)
	}
	for _, sh := range stats.Shards {
		if sh.Addr == "" {
			t.Fatalf("shard %d missing worker addr in stats", sh.Shard)
		}
	}

	// Surviving worker still decodes a fresh campaign.
	ys0 := noisyBatch(t, n, m, k, 4, seed0, nm)
	if p := runOn(fed.URL, seed0, ys0); p.Completed != 4 {
		t.Fatalf("surviving shard campaign: %+v", p)
	}
}
