package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pooleddata/internal/engine"
	"pooleddata/internal/labio"
)

// preloadDesigns warm-starts the cluster's scheme caches from labio
// design CSV files — a lab's standing designs, passed via the -designs
// flag — so the first request after boot is a cache hit, not a build.
// Each file is installed on its owning shard under the spec
// {Design: "file:<cleaned path>", N, M} (the full path, so two labs'
// identically-named design files never collide), registered under a
// scheme id, and logged as one line to logw.
func preloadDesigns(cluster *engine.Cluster, srv *server, paths []string, logw io.Writer) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return fmt.Errorf("preload %s: %w", p, err)
		}
		g, err := labio.ReadDesign(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("preload %s: %w", p, err)
		}
		spec := engine.Spec{Design: "file:" + filepath.Clean(p), N: g.N(), M: g.M()}
		es := cluster.InstallScheme(spec, g)
		ent := srv.register(es, spec.Design, g.N(), g.M(), 0, engine.DesignParams{}, false)
		fmt.Fprintf(logw, "pooledd: preloaded scheme %s from %s (n=%d m=%d shard=%d)\n",
			ent.ID, p, g.N(), g.M(), es.Home())
	}
	return nil
}
