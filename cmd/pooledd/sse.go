package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"pooleddata/internal/campaign"
)

// Server-sent-events streaming of campaign results: GET
// /v1/campaigns/{id}/events replays the campaign's settlement log from
// the client's cursor and then follows it live, one `result` event per
// settled job and a single `done` event when the campaign is terminal.
// The campaign's bounded log is the only buffer — a subscriber is just
// a cursor — so a slow client cannot make the server queue events for
// it: a write that cannot complete within the write timeout evicts the
// client (it reconnects with Last-Event-ID and replays what it
// missed). Heartbeat comments keep idle connections verified and
// intermediaries from timing the stream out.
//
// Resume survives a server restart when -wal-dir is set: recovery
// rebuilds the campaign's event log from the journal with the same
// sequence numbers, so a Last-Event-ID cursor taken before the crash
// lands on exactly the next unseen event afterwards.

// parseCursor resolves the client's resume cursor: the standard SSE
// Last-Event-ID header (set automatically by EventSource on reconnect)
// or, for curl sessions, an ?after= query parameter. The header wins.
func parseCursor(r *http.Request) (int64, error) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("after")
	}
	if raw == "" {
		return 0, nil
	}
	seq, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || seq < 0 {
		return 0, fmt.Errorf("bad event cursor %q", raw)
	}
	return seq, nil
}

// sseDone is the wire payload of the terminal `done` event.
type sseDone struct {
	State     campaign.State `json:"state"`
	Total     int            `json:"total"`
	Completed int            `json:"completed"`
	Failed    int            `json:"failed"`
	Canceled  int            `json:"canceled"`
}

// eventData marshals the event's data line. json.Marshal output never
// contains newlines, so one data: line is always enough.
func eventData(ev campaign.Event) ([]byte, error) {
	if ev.Terminal() {
		return json.Marshal(sseDone{
			State: ev.State, Total: ev.Total,
			Completed: ev.Completed, Failed: ev.Failed, Canceled: ev.Canceled,
		})
	}
	return json.Marshal(ev.Job)
}

// handleCampaignEvents streams a campaign's settlements as SSE.
func (s *server) handleCampaignEvents(w http.ResponseWriter, r *http.Request) {
	cp, ok := s.campaigns.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	cursor, err := parseCursor(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// A cursor past the log is a stale or corrupt resume id: reject it
	// rather than serving a stream that would hang delivering nothing
	// and then close without a terminal event. A cursor exactly at the
	// log length is a caught-up subscriber and streams from live.
	if have := cp.Events(); cursor > have {
		httpError(w, http.StatusBadRequest, "event cursor %d beyond log (latest %d)", cursor, have)
		return
	}
	// One fetch serves both the caught-up check and the stream loop's
	// first iteration (the log can be large; don't copy it twice).
	evs, changed, sealed := cp.EventsSince(cursor)
	// A caught-up subscriber reconnecting after the terminal event gets
	// 204: the SSE contract for "this stream is over, stop reconnecting"
	// — EventSource clients treat a completed 200 stream as a cue to
	// reconnect and would otherwise loop until GC 404s the campaign.
	if sealed && len(evs) == 0 {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	s.mSSEStreams.Inc()
	s.mSSEActive.Add(1)
	defer s.mSSEActive.Add(-1)

	rc := http.NewResponseController(w)
	// The per-write deadline must not outlive this handler: the server
	// has no WriteTimeout to re-arm it, so a leftover deadline would
	// poison the next request on a keep-alive connection.
	defer rc.SetWriteDeadline(time.Time{})
	// writeChunk pushes bytes with the slow-client deadline armed; a
	// deadline miss (or any write error) evicts the subscriber. The
	// deadline call itself is best-effort: test recorders don't support
	// deadlines, real server connections do.
	writeChunk := func(p []byte) bool {
		_ = rc.SetWriteDeadline(time.Now().Add(s.sseWriteTimeout))
		if _, err := w.Write(p); err != nil {
			s.mSSEEvictions.Inc()
			return false
		}
		flusher.Flush()
		return true
	}

	heartbeat := time.NewTicker(s.sseHeartbeat)
	defer heartbeat.Stop()
	for {
		for _, ev := range evs {
			data, err := eventData(ev)
			if err != nil {
				return
			}
			frame := fmt.Sprintf("id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			if !writeChunk([]byte(frame)) {
				return // slow or gone client: evicted, resumes via Last-Event-ID
			}
			cursor = ev.Seq
		}
		if sealed {
			return // terminal event delivered; the stream is complete
		}
		select {
		case <-changed:
		case <-heartbeat.C:
			if !writeChunk([]byte(": heartbeat\n\n")) {
				return
			}
		case <-r.Context().Done():
			return
		}
		evs, changed, sealed = cp.EventsSince(cursor)
	}
}
