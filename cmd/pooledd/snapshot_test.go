package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
	"pooleddata/internal/labio"
)

func snapCluster(t *testing.T) *engine.Cluster {
	t.Helper()
	c := engine.NewCluster(engine.ClusterConfig{
		Shards: 2,
		Shard:  engine.Config{CacheCapacity: 8, Workers: 1},
	})
	t.Cleanup(c.Close)
	return c
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "specs.json")

	// First life: register two parametric schemes, one ad-hoc upload (to
	// be skipped), and write the snapshot.
	c1 := snapCluster(t)
	srv1 := newServer(c1, campaign.Config{})
	t.Cleanup(srv1.campaigns.Close)
	ts1 := httptest.NewServer(srv1.handler())
	defer ts1.Close()

	var a, b schemeEntry
	postJSON(t, ts1.URL+"/v1/schemes", schemeRequest{Design: "random-regular", N: 200, M: 120, Seed: 4, Gamma: 50}, &a)
	postJSON(t, ts1.URL+"/v1/schemes", schemeRequest{Design: "bernoulli", N: 150, M: 80, Seed: 9}, &b)

	esUp, err := c1.Scheme(nil, 100, 60, 33)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := labio.WriteDesign(&csv, esUp.G); err != nil {
		t.Fatal(err)
	}
	adhoc := srv1.register(c1.SchemeFromGraph(esUp.G), "uploaded", 100, 60, 0, engine.DesignParams{}, true)
	_ = adhoc

	if err := writeSnapshot(srv1, path); err != nil {
		t.Fatal(err)
	}

	// Second life: a fresh cluster rebuilds the snapshot's schemes into
	// its caches and the registry.
	c2 := snapCluster(t)
	srv2 := newServer(c2, campaign.Config{})
	t.Cleanup(srv2.campaigns.Close)
	var log bytes.Buffer
	if err := loadSnapshot(c2, srv2, path, &log); err != nil {
		t.Fatal(err)
	}

	srv2.mu.Lock()
	n := len(srv2.schemes)
	srv2.mu.Unlock()
	if n != 2 {
		t.Fatalf("restored %d schemes, want 2 (ad-hoc uploads skipped); log:\n%s", n, log.String())
	}
	cached := 0
	for i := 0; i < c2.Shards(); i++ {
		cached += c2.Shard(i).CachedSchemes()
	}
	if cached != 2 {
		t.Fatalf("shard caches hold %d schemes, want 2", cached)
	}

	// The rebuilt scheme is the same design: a repeat request is a cache
	// hit with an identical graph, and the registry deduplicates the id.
	des, err := engine.DesignByName("random-regular", engine.DesignParams{Gamma: 50})
	if err != nil {
		t.Fatal(err)
	}
	es1, err := c1.Scheme(des, 200, 120, 4)
	if err != nil {
		t.Fatal(err)
	}
	es2, err := c2.Scheme(des, 200, 120, 4)
	if err != nil {
		t.Fatal(err)
	}
	var d1, d2 bytes.Buffer
	if err := labio.WriteDesign(&d1, es1.G); err != nil {
		t.Fatal(err)
	}
	if err := labio.WriteDesign(&d2, es2.G); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1.Bytes(), d2.Bytes()) {
		t.Fatal("restored scheme's design differs from the original")
	}
	hits := uint64(0)
	for i := 0; i < c2.Shards(); i++ {
		hits += c2.Shard(i).Stats().CacheHits
	}
	if hits == 0 {
		t.Fatal("repeat scheme request after restore was not a cache hit")
	}
}

func TestLoadSnapshotMissingAndCorrupt(t *testing.T) {
	c := snapCluster(t)
	srv := newServer(c, campaign.Config{})
	t.Cleanup(srv.campaigns.Close)
	var log bytes.Buffer

	// Missing file: first boot, not an error.
	if err := loadSnapshot(c, srv, filepath.Join(t.TempDir(), "none.json"), &log); err != nil {
		t.Fatalf("missing snapshot: %v", err)
	}

	// Corrupt file: refuse to boot silently wrong.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := loadSnapshot(c, srv, bad, &log); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}

	// Unknown design entries fail soft with a logged skip.
	skip := filepath.Join(t.TempDir(), "skip.json")
	if err := os.WriteFile(skip, []byte(`[{"design":"gone","n":10,"m":5}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	log.Reset()
	if err := loadSnapshot(c, srv, skip, &log); err != nil {
		t.Fatalf("soft-fail entry: %v", err)
	}
	if log.Len() == 0 {
		t.Fatal("skipped entry not logged")
	}
}
