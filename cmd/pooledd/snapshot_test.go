package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
	"pooleddata/internal/labio"
)

func snapCluster(t *testing.T) *engine.Cluster {
	t.Helper()
	c := engine.NewCluster(engine.ClusterConfig{
		Shards: 2,
		Shard:  engine.Config{CacheCapacity: 8, Workers: 1},
	})
	t.Cleanup(c.Close)
	return c
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "specs.json")

	// First life: register two parametric schemes and one ad-hoc upload
	// (persisted as a labio CSV next to the spec file), and write the
	// snapshot.
	c1 := snapCluster(t)
	srv1 := newServer(c1, campaign.Config{})
	t.Cleanup(srv1.campaigns.Close)
	ts1 := httptest.NewServer(srv1.handler())
	defer ts1.Close()

	var a, b schemeEntry
	postJSON(t, ts1.URL+"/v1/schemes", schemeRequest{Design: "random-regular", N: 200, M: 120, Seed: 4, Gamma: 50}, &a)
	postJSON(t, ts1.URL+"/v1/schemes", schemeRequest{Design: "bernoulli", N: 150, M: 80, Seed: 9}, &b)

	esUp, err := c1.Scheme(nil, 100, 60, 33)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := labio.WriteDesign(&csv, esUp.G); err != nil {
		t.Fatal(err)
	}
	adhoc := srv1.register(c1.SchemeFromGraph(esUp.G), "uploaded", 100, 60, 0, engine.DesignParams{}, true)
	_ = adhoc

	if err := writeSnapshot(srv1, path); err != nil {
		t.Fatal(err)
	}

	// Second life: a fresh cluster rebuilds the snapshot's schemes into
	// its caches and the registry.
	c2 := snapCluster(t)
	srv2 := newServer(c2, campaign.Config{})
	t.Cleanup(srv2.campaigns.Close)
	var log bytes.Buffer
	if err := loadSnapshot(c2, srv2, path, &log); err != nil {
		t.Fatal(err)
	}

	srv2.mu.Lock()
	n := len(srv2.schemes)
	var restoredAdhoc *schemeEntry
	for _, ent := range srv2.schemes {
		if ent.AdHoc {
			restoredAdhoc = ent
		}
	}
	srv2.mu.Unlock()
	if n != 3 {
		t.Fatalf("restored %d schemes, want 3 (2 parametric + 1 ad-hoc); log:\n%s", n, log.String())
	}
	cached := 0
	for i := 0; i < c2.Shards(); i++ {
		cached += c2.Shard(i).CachedSchemes()
	}
	if cached != 2 {
		t.Fatalf("shard caches hold %d schemes, want 2 (ad-hoc uploads are uncached)", cached)
	}

	// The ad-hoc design round-trips bit-identically through the designs
	// directory.
	if restoredAdhoc == nil {
		t.Fatalf("no ad-hoc scheme restored; log:\n%s", log.String())
	}
	var restoredCSV bytes.Buffer
	if err := labio.WriteDesign(&restoredCSV, restoredAdhoc.scheme.G); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restoredCSV.Bytes(), csv.Bytes()) {
		t.Fatal("restored ad-hoc design differs from the uploaded one")
	}
	files, err := os.ReadDir(designsDir(path))
	if err != nil || len(files) != 1 {
		t.Fatalf("designs dir: files=%v err=%v, want exactly one CSV", files, err)
	}

	// The rebuilt scheme is the same design: a repeat request is a cache
	// hit with an identical graph, and the registry deduplicates the id.
	des, err := engine.DesignByName("random-regular", engine.DesignParams{Gamma: 50})
	if err != nil {
		t.Fatal(err)
	}
	es1, err := c1.Scheme(des, 200, 120, 4)
	if err != nil {
		t.Fatal(err)
	}
	es2, err := c2.Scheme(des, 200, 120, 4)
	if err != nil {
		t.Fatal(err)
	}
	var d1, d2 bytes.Buffer
	if err := labio.WriteDesign(&d1, es1.G); err != nil {
		t.Fatal(err)
	}
	if err := labio.WriteDesign(&d2, es2.G); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1.Bytes(), d2.Bytes()) {
		t.Fatal("restored scheme's design differs from the original")
	}
	hits := uint64(0)
	for i := 0; i < c2.Shards(); i++ {
		hits += c2.Shard(i).Stats().CacheHits
	}
	if hits == 0 {
		t.Fatal("repeat scheme request after restore was not a cache hit")
	}
}

func TestLoadSnapshotMissingAndCorrupt(t *testing.T) {
	c := snapCluster(t)
	srv := newServer(c, campaign.Config{})
	t.Cleanup(srv.campaigns.Close)
	var log bytes.Buffer

	// Missing file: first boot, not an error.
	if err := loadSnapshot(c, srv, filepath.Join(t.TempDir(), "none.json"), &log); err != nil {
		t.Fatalf("missing snapshot: %v", err)
	}

	// Corrupt file: refuse to boot silently wrong.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := loadSnapshot(c, srv, bad, &log); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}

	// Unknown design entries fail soft with a logged skip.
	skip := filepath.Join(t.TempDir(), "skip.json")
	if err := os.WriteFile(skip, []byte(`[{"design":"gone","n":10,"m":5}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	log.Reset()
	if err := loadSnapshot(c, srv, skip, &log); err != nil {
		t.Fatalf("soft-fail entry: %v", err)
	}
	if log.Len() == 0 {
		t.Fatal("skipped entry not logged")
	}

	// Ad-hoc entries whose CSV is gone (or whose file field escapes the
	// designs directory) fail soft too.
	adhoc := filepath.Join(t.TempDir(), "adhoc.json")
	body := `[{"design":"uploaded","n":10,"m":5,"ad_hoc":true,"file":"gone.csv"},` +
		`{"design":"uploaded","n":10,"m":5,"ad_hoc":true,"file":"../escape.csv"}]`
	if err := os.WriteFile(adhoc, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	log.Reset()
	if err := loadSnapshot(c, srv, adhoc, &log); err != nil {
		t.Fatalf("soft-fail ad-hoc entries: %v", err)
	}
	srv.mu.Lock()
	n := len(srv.schemes)
	srv.mu.Unlock()
	if n != 0 {
		t.Fatalf("registered %d schemes from broken ad-hoc entries, want 0", n)
	}
	if log.Len() == 0 {
		t.Fatal("broken ad-hoc entries not logged")
	}
}
