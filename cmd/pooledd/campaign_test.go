package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
	"pooleddata/internal/graph"
	"pooleddata/internal/labio"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
)

func newTestServerWith(t testing.TB, cfg engine.ClusterConfig) (*httptest.Server, *server, *engine.Cluster) {
	t.Helper()
	cluster := engine.NewCluster(cfg)
	t.Cleanup(cluster.Close)
	srv := newServer(cluster, campaign.Config{})
	t.Cleanup(srv.campaigns.Close)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, srv, cluster
}

func getJSON(t testing.TB, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// measuredBatch registers a scheme over HTTP and measures batch signals
// against the same cached design locally.
func measuredBatch(t testing.TB, url string, cluster *engine.Cluster, n, k, m, batch int, seed uint64) (schemeEntry, []*bitvec.Vector, [][]int64) {
	t.Helper()
	var sch schemeEntry
	resp := postJSON(t, url+"/v1/schemes", schemeRequest{N: n, M: m, Seed: seed}, &sch)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create scheme: status %d", resp.StatusCode)
	}
	es, err := cluster.Scheme(nil, n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	signals := make([]*bitvec.Vector, batch)
	ys := make([][]int64, batch)
	for b := range signals {
		signals[b] = bitvec.Random(n, k, rng.NewRandSeeded(seed+uint64(500+b)))
		ys[b] = query.Execute(es.G, signals[b], query.Options{}).Y
	}
	return sch, signals, ys
}

func TestCampaignHTTPLifecycle(t *testing.T) {
	ts, _, cluster := newTestServerWith(t, engine.ClusterConfig{
		Shards: 2,
		Shard:  engine.Config{CacheCapacity: 4, Workers: 2},
	})
	const n, k, m, batch = 300, 5, 240, 8
	sch, signals, ys := measuredBatch(t, ts.URL, cluster, n, k, m, batch, 21)

	var created campaignCreated
	resp := postJSON(t, ts.URL+"/v1/campaigns", campaignRequest{Scheme: sch.ID, K: k, Batch: ys}, &created)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create campaign: status %d", resp.StatusCode)
	}
	if created.Total != batch || created.ID == "" {
		t.Fatalf("created = %+v", created)
	}

	// Long-poll to completion; settled counts must be monotone.
	last := -1
	deadline := time.Now().Add(15 * time.Second)
	var p campaign.Progress
	for {
		resp := getJSON(t, ts.URL+"/v1/campaigns/"+created.ID+"?wait=100ms", &p)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d", resp.StatusCode)
		}
		if p.Settled() < last {
			t.Fatalf("progress went backwards: %d after %d", p.Settled(), last)
		}
		last = p.Settled()
		if p.Terminal() && p.Settled() == p.Total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not finish: %+v", p)
		}
	}
	if p.State != campaign.Done || p.Completed != batch {
		t.Fatalf("final progress = %+v", p)
	}
	for i, res := range p.Results {
		if !bitvec.FromIndices(n, res.Support).Equal(signals[i]) {
			t.Fatalf("campaign result %d did not recover its signal", i)
		}
	}

	// The campaign shows up in the listing.
	var list struct {
		Campaigns []campaign.Progress `json:"campaigns"`
	}
	getJSON(t, ts.URL+"/v1/campaigns", &list)
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != created.ID {
		t.Fatalf("list = %+v", list)
	}

	// Stats carry campaign gauges and per-shard breakdowns.
	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.CampaignsFinished != 1 || st.CampaignsActive != 0 {
		t.Fatalf("campaign gauges = %+v", st)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("got %d shard breakdowns", len(st.Shards))
	}
	if st.JobsCompleted != batch {
		t.Fatalf("aggregate jobs completed = %d, want %d", st.JobsCompleted, batch)
	}
	if _, ok := st.DecodeLatency["mn"]; !ok {
		t.Fatalf("stats missing mn latency histogram: %+v", st.DecodeLatency)
	}

	// Unknown id → 404.
	if resp := getJSON(t, ts.URL+"/v1/campaigns/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: status %d", resp.StatusCode)
	}
}

func TestCampaignHTTPCancel(t *testing.T) {
	ts, _, cluster := newTestServerWith(t, engine.ClusterConfig{
		Shards: 1,
		Shard:  engine.Config{CacheCapacity: 4, Workers: 1, QueueDepth: 16},
	})
	const n, k, m, batch = 150, 3, 110, 6
	sch, _, ys := measuredBatch(t, ts.URL, cluster, n, k, m, batch, 31)

	// Wedge the single worker so the campaign's jobs stay queued, then
	// cancel while they wait.
	es, err := cluster.Scheme(nil, n, m, 31)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	wedge, err := cluster.Submit(context.Background(), engine.Job{Scheme: es, Y: ys[0], K: k, Dec: blockDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for cluster.Shard(0).QueueDepth() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	var created campaignCreated
	postJSON(t, ts.URL+"/v1/campaigns", campaignRequest{Scheme: sch.ID, K: k, Batch: ys}, &created)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+created.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}
	close(release)
	if _, err := wedge.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	var p campaign.Progress
	deadline = time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/campaigns/"+created.ID+"?wait=100ms", &p)
		if p.Settled() == p.Total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled campaign did not settle: %+v", p)
		}
	}
	if p.State != campaign.Canceled || p.Canceled == 0 {
		t.Fatalf("after cancel: %+v", p)
	}
}

// blockDecoder parks until released (package main's copy; the engine's
// test helper is not importable).
type blockDecoder struct{ release <-chan struct{} }

func (blockDecoder) Name() string { return "block" }

func (d blockDecoder) Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error) {
	<-d.release
	return bitvec.New(g.N()), nil
}

func TestSaturatedDecodeAndCampaignReturn429(t *testing.T) {
	ts, _, cluster := newTestServerWith(t, engine.ClusterConfig{
		Shards: 1,
		Shard:  engine.Config{CacheCapacity: 4, Workers: 1, QueueDepth: 1},
	})
	const n, k, m = 150, 3, 110
	sch, _, ys := measuredBatch(t, ts.URL, cluster, n, k, m, 2, 41)

	// Wedge the worker and fill the 1-deep queue.
	es, err := cluster.Scheme(nil, n, m, 41)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	shard := cluster.Shard(0)
	futs := make([]*engine.Future, 0, 2)
	fut, err := cluster.Submit(context.Background(), engine.Job{Scheme: es, Y: ys[0], K: k, Dec: blockDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	futs = append(futs, fut)
	deadline := time.Now().Add(time.Second)
	for shard.QueueDepth() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fut, err = cluster.Submit(context.Background(), engine.Job{Scheme: es, Y: ys[0], K: k, Dec: blockDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	futs = append(futs, fut)
	if !shard.Saturated() {
		t.Fatal("shard not saturated")
	}

	// Single decode → 429 + Retry-After.
	resp := postJSON(t, ts.URL+"/v1/decode", decodeRequest{Scheme: sch.ID, K: k, Counts: ys[0]}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated decode: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("saturated decode: no Retry-After header")
	}
	// Batch decode → 429.
	if resp := postJSON(t, ts.URL+"/v1/decode", decodeRequest{Scheme: sch.ID, K: k, Batch: ys}, nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated batch decode: status %d", resp.StatusCode)
	}
	// Campaign submission → 429 + Retry-After.
	resp = postJSON(t, ts.URL+"/v1/campaigns", campaignRequest{Scheme: sch.ID, K: k, Batch: ys}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated campaign: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("saturated campaign: no Retry-After header")
	}

	// Rejections are surfaced in /v1/stats.
	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.JobsRejected != 1+2+2 {
		t.Fatalf("jobs rejected = %d, want 5 (1 decode + 2 batch + 2 campaign)", st.JobsRejected)
	}

	close(release)
	for _, fut := range futs {
		if _, err := fut.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Back under capacity: the same decode succeeds.
	if resp := postJSON(t, ts.URL+"/v1/decode", decodeRequest{Scheme: sch.ID, K: k, Counts: ys[0]}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("decode after drain: status %d", resp.StatusCode)
	}
}

func TestPreloadDesignsWarmStart(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i, seed := range []uint64{51, 52} {
		g, err := pooling.RandomRegular{}.Build(120, 90, pooling.BuildOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := labio.WriteDesign(&buf, g); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, fmt.Sprintf("standing-%d.csv", i))
		if err := os.WriteFile(p, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	ts, srv, cluster := newTestServerWith(t, engine.ClusterConfig{
		Shards: 2,
		Shard:  engine.Config{CacheCapacity: 4, Workers: 1},
	})
	var logbuf bytes.Buffer
	if err := preloadDesigns(cluster, srv, paths, &logbuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(logbuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("preload logged %d lines, want 2:\n%s", len(lines), logbuf.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, "preloaded scheme") || !strings.Contains(line, "shard=") {
			t.Fatalf("preload log line = %q", line)
		}
	}

	// The preloaded schemes are registered and decodable immediately.
	ent, ok := srv.lookup("s1")
	if !ok {
		t.Fatal("preloaded scheme not registered as s1")
	}
	sigma := bitvec.Random(120, 3, rng.NewRandSeeded(8))
	y := query.Execute(ent.scheme.G, sigma, query.Options{}).Y
	var dec decodeResponse
	resp := postJSON(t, ts.URL+"/v1/decode", decodeRequest{Scheme: ent.ID, K: 3, Counts: y}, &dec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decode on preloaded scheme: status %d", resp.StatusCode)
	}
	if !bitvec.FromIndices(120, dec.Support).Equal(sigma) {
		t.Fatal("decode on preloaded scheme failed")
	}
	// It is a real cache resident on its owning shard.
	cached := 0
	for i := 0; i < cluster.Shards(); i++ {
		cached += cluster.Shard(i).CachedSchemes()
	}
	if cached != 2 {
		t.Fatalf("%d schemes cached after preload, want 2", cached)
	}
}

// TestCampaignHammer floods the cluster with concurrent campaigns across
// distinct designs (hence shards) under -race.
func TestCampaignHammer(t *testing.T) {
	ts, _, cluster := newTestServerWith(t, engine.ClusterConfig{
		Shards: 2,
		Shard:  engine.Config{CacheCapacity: 8, Workers: 2, QueueDepth: 64},
	})
	const n, k, m, batch, tenants = 200, 4, 160, 5, 6

	type tenant struct {
		sch     schemeEntry
		signals []*bitvec.Vector
		ys      [][]int64
	}
	tenants_ := make([]tenant, tenants)
	for i := range tenants_ {
		sch, signals, ys := measuredBatch(t, ts.URL, cluster, n, k, m, batch, uint64(60+i))
		tenants_[i] = tenant{sch, signals, ys}
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for i := range tenants_ {
		wg.Add(1)
		go func(tn tenant) {
			defer wg.Done()
			var created campaignCreated
			resp := postJSON(t, ts.URL+"/v1/campaigns", campaignRequest{Scheme: tn.sch.ID, K: k, Batch: tn.ys}, &created)
			if resp.StatusCode != http.StatusAccepted {
				errs <- fmt.Errorf("create: status %d", resp.StatusCode)
				return
			}
			deadline := time.Now().Add(30 * time.Second)
			var p campaign.Progress
			for {
				getJSON(t, ts.URL+"/v1/campaigns/"+created.ID+"?wait=250ms", &p)
				if p.Terminal() && p.Settled() == p.Total {
					break
				}
				if time.Now().After(deadline) {
					errs <- fmt.Errorf("campaign %s stuck: %+v", created.ID, p)
					return
				}
			}
			if p.Completed != batch {
				errs <- fmt.Errorf("campaign %s: %+v", created.ID, p)
				return
			}
			for b, res := range p.Results {
				if !bitvec.FromIndices(n, res.Support).Equal(tn.signals[b]) {
					errs <- fmt.Errorf("campaign %s result %d wrong", created.ID, b)
					return
				}
			}
		}(tenants_[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// BenchmarkConcurrentCampaigns is the acceptance benchmark: two tenants
// with distinct designs — pinned to different shards, per-shard cache
// capacity 1 — run campaigns concurrently. Pointer identity of each
// design's cached scheme is asserted throughout (no cross-shard cache
// eviction), and the long-polled progress must increase monotonically
// until completion.
func BenchmarkConcurrentCampaigns(b *testing.B) {
	ts, _, cluster := newTestServerWith(b, engine.ClusterConfig{
		Shards: 2,
		Shard:  engine.Config{CacheCapacity: 1, Workers: 2, QueueDepth: 64},
	})
	const n, k, m, batch = 400, 6, 300, 16

	// Find two seeds owned by different shards.
	seedA := uint64(1)
	shardA := cluster.ShardOf(engine.SpecFor(pooling.RandomRegular{}, n, m, seedA))
	seedB := seedA + 1
	for cluster.ShardOf(engine.SpecFor(pooling.RandomRegular{}, n, m, seedB)) == shardA {
		seedB++
	}

	type tenant struct {
		sch    schemeEntry
		ys     [][]int64
		scheme *engine.Scheme
	}
	mk := func(seed uint64) tenant {
		sch, _, ys := measuredBatch(b, ts.URL, cluster, n, k, m, batch, seed)
		es, err := cluster.Scheme(nil, n, m, seed)
		if err != nil {
			b.Fatal(err)
		}
		return tenant{sch, ys, es}
	}
	ta, tb := mk(seedA), mk(seedB)
	if ta.scheme.Home() == tb.scheme.Home() {
		b.Fatal("tenants landed on the same shard")
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, tn := range []tenant{ta, tb} {
			wg.Add(1)
			go func(tn tenant) {
				defer wg.Done()
				var created campaignCreated
				resp := postJSON(b, ts.URL+"/v1/campaigns", campaignRequest{Scheme: tn.sch.ID, K: k, Batch: tn.ys}, &created)
				if resp.StatusCode != http.StatusAccepted {
					b.Errorf("create: status %d", resp.StatusCode)
					return
				}
				last := -1
				var p campaign.Progress
				for {
					getJSON(b, ts.URL+"/v1/campaigns/"+created.ID+"?wait=250ms", &p)
					if p.Settled() < last {
						b.Errorf("progress went backwards: %d after %d", p.Settled(), last)
						return
					}
					last = p.Settled()
					if p.Terminal() && p.Settled() == p.Total {
						break
					}
				}
				if p.Completed != batch {
					b.Errorf("campaign %s: %+v", created.ID, p)
				}
			}(tn)
		}
		wg.Wait()

		// No cross-shard eviction: both designs' schemes kept identity.
		nowA, _ := cluster.Scheme(nil, n, m, seedA)
		nowB, _ := cluster.Scheme(nil, n, m, seedB)
		if nowA != ta.scheme || nowB != tb.scheme {
			b.Fatal("scheme identity lost during concurrent campaigns")
		}
	}
	b.StopTimer()
	if ev := cluster.Stats().Total.Evictions; ev != 0 {
		b.Fatalf("evictions = %d, want 0", ev)
	}
	b.ReportMetric(float64(2*batch), "jobs/op")
}
