package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
	"pooleddata/internal/labio"
	"pooleddata/internal/noise"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
)

func newTestServer(t *testing.T) (*httptest.Server, *engine.Cluster) {
	t.Helper()
	cluster := engine.NewCluster(engine.ClusterConfig{
		Shards: 2,
		Shard:  engine.Config{CacheCapacity: 4, Workers: 2},
	})
	t.Cleanup(cluster.Close)
	srv := newServer(cluster, campaign.Config{})
	t.Cleanup(srv.campaigns.Close)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, cluster
}

func postJSON(t testing.TB, url string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestSchemeDecodeRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	n, k, m := 400, 6, 300

	var sch schemeEntry
	resp := postJSON(t, ts.URL+"/v1/schemes", schemeRequest{Design: "random-regular", N: n, M: m, Seed: 5}, &sch)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create scheme: status %d", resp.StatusCode)
	}

	// Re-posting the same spec must return the same id (cache + dedupe).
	var again schemeEntry
	postJSON(t, ts.URL+"/v1/schemes", schemeRequest{Design: "random-regular", N: n, M: m, Seed: 5}, &again)
	if again.ID != sch.ID {
		t.Fatalf("same spec produced ids %q and %q", sch.ID, again.ID)
	}

	// Fetch the design CSV — the robot's protocol — and measure locally.
	dresp, err := http.Get(ts.URL + "/v1/schemes/" + sch.ID + "/design")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	g, err := labio.ReadDesign(dresp.Body)
	if err != nil {
		t.Fatalf("design CSV did not round-trip: %v", err)
	}
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(9))
	y := query.Execute(g, sigma, query.Options{}).Y

	// Decode via JSON counts.
	var dec decodeResponse
	resp = postJSON(t, ts.URL+"/v1/decode", decodeRequest{Scheme: sch.ID, K: k, Counts: y}, &dec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decode: status %d", resp.StatusCode)
	}
	if !dec.Consistent || dec.Residual != 0 {
		t.Fatalf("decode inconsistent: %+v", dec)
	}
	if !bitvec.FromIndices(n, dec.Support).Equal(sigma) {
		t.Fatal("decode did not recover the planted signal")
	}

	// Decode via the labio counts CSV path (WriteCountsCSV output).
	var csv bytes.Buffer
	if err := labio.WriteCounts(&csv, y); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/v1/decode?scheme=%s&k=%d&decoder=mn", ts.URL, sch.ID, k)
	cresp, err := http.Post(url, "text/csv", &csv)
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("csv decode: status %d", cresp.StatusCode)
	}
	var dec2 decodeResponse
	if err := json.NewDecoder(cresp.Body).Decode(&dec2); err != nil {
		t.Fatal(err)
	}
	if !bitvec.FromIndices(n, dec2.Support).Equal(sigma) {
		t.Fatal("csv decode did not recover the planted signal")
	}
}

func TestBatchDecodeAndStats(t *testing.T) {
	ts, eng := newTestServer(t)
	n, k, m := 300, 5, 240

	var sch schemeEntry
	postJSON(t, ts.URL+"/v1/schemes", schemeRequest{N: n, M: m, Seed: 3}, &sch)

	es, err := eng.Scheme(nil, n, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 6
	signals := make([]*bitvec.Vector, batch)
	for b := range signals {
		signals[b] = bitvec.Random(n, k, rng.NewRandSeeded(uint64(40+b)))
	}
	ys := eng.MeasureBatch(es, signals, noise.Model{})

	var out struct {
		Results []decodeResponse `json:"results"`
	}
	resp := postJSON(t, ts.URL+"/v1/decode", decodeRequest{Scheme: sch.ID, K: k, Batch: ys}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch decode: status %d", resp.StatusCode)
	}
	if len(out.Results) != batch {
		t.Fatalf("got %d results, want %d", len(out.Results), batch)
	}
	for b, res := range out.Results {
		if !bitvec.FromIndices(n, res.Support).Equal(signals[b]) {
			t.Fatalf("batch decode %d failed", b)
		}
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.JobsCompleted != batch || st.Schemes != 1 {
		t.Fatalf("stats = %+v, want %d jobs and 1 scheme", st, batch)
	}
}

func TestUploadDesignCSV(t *testing.T) {
	ts, eng := newTestServer(t)
	n, k, m := 200, 4, 160

	es, err := eng.Scheme(nil, n, m, 77)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := labio.WriteDesign(&csv, es.G); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/schemes", "text/csv", &csv)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	var sch schemeEntry
	if err := json.NewDecoder(resp.Body).Decode(&sch); err != nil {
		t.Fatal(err)
	}
	if !sch.AdHoc || sch.N != n || sch.M != m {
		t.Fatalf("uploaded scheme = %+v", sch)
	}

	sigma := bitvec.Random(n, k, rng.NewRandSeeded(8))
	y := query.Execute(es.G, sigma, query.Options{}).Y
	var dec decodeResponse
	postJSON(t, ts.URL+"/v1/decode", decodeRequest{Scheme: sch.ID, K: k, Counts: y}, &dec)
	if !bitvec.FromIndices(n, dec.Support).Equal(sigma) {
		t.Fatal("decode on uploaded design failed")
	}
}

func TestErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t)
	if resp := postJSON(t, ts.URL+"/v1/decode", decodeRequest{Scheme: "nope", K: 1, Counts: []int64{0}}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown scheme: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/schemes", schemeRequest{Design: "nope", N: 10, M: 5}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown design: status %d", resp.StatusCode)
	}
	var sch schemeEntry
	postJSON(t, ts.URL+"/v1/schemes", schemeRequest{N: 50, M: 20, Seed: 1}, &sch)
	if resp := postJSON(t, ts.URL+"/v1/decode", decodeRequest{Scheme: sch.ID, K: 2, Decoder: "nope", Counts: make([]int64, 20)}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown decoder: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/decode", decodeRequest{Scheme: sch.ID, K: 2}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing counts: status %d", resp.StatusCode)
	}
	// Counts of the wrong length surface as a decode failure.
	if resp := postJSON(t, ts.URL+"/v1/decode", decodeRequest{Scheme: sch.ID, K: 2, Counts: []int64{1, 2}}, nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("short counts: status %d", resp.StatusCode)
	}
}
