package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/rng"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id    int64
	event string
	data  string
}

// readSSE parses events off an open stream until max events have been
// read or a terminal `done` event arrives (whichever first). Comment
// lines (heartbeats) are counted separately.
func readSSE(t testing.TB, r io.Reader, max int) (evs []sseEvent, heartbeats int) {
	t.Helper()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				evs = append(evs, cur)
				if cur.event == "done" || len(evs) >= max {
					return evs, heartbeats
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, ":"):
			heartbeats++
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
			cur.id = id
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return evs, heartbeats
}

// streamEvents opens the campaign's SSE endpoint from the given cursor.
func streamEvents(t testing.TB, url, id string, cursor int64) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cursor > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(cursor, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestStreamingCampaignE2E is the PR's acceptance path: a
// gaussian-noise campaign submitted with a tenant streams every settled
// job exactly once over SSE — including across a mid-stream disconnect
// resumed with Last-Event-ID — while the tenant's own quota rejects its
// second campaign (429 + backlog-derived Retry-After) without blocking
// another tenant, and per-tenant gauges surface in /v1/stats.
func TestStreamingCampaignE2E(t *testing.T) {
	cluster := engine.NewCluster(engine.ClusterConfig{
		Shards: 2,
		Shard:  engine.Config{CacheCapacity: 4, Workers: 2, QueueDepth: 64},
	})
	t.Cleanup(cluster.Close)
	srv := newServer(cluster, campaign.Config{TenantMaxActive: 1})
	t.Cleanup(srv.campaigns.Close)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	const n, k, m, batch = 400, 6, 320, 12
	var sch schemeEntry
	postJSON(t, ts.URL+"/v1/schemes", schemeRequest{N: n, M: m, Seed: 11}, &sch)
	es, err := cluster.Scheme(nil, n, m, 11)
	if err != nil {
		t.Fatal(err)
	}
	nm := noise.Model{Kind: noise.Gaussian, Sigma: 0.5, Seed: 77}
	signals := make([]*bitvec.Vector, batch)
	for b := range signals {
		signals[b] = bitvec.Random(n, k, rng.NewRandSeeded(uint64(90+b)))
	}
	ys := cluster.MeasureBatch(es, signals, nm)

	// Wedge the owning shard's workers so the first campaign stays
	// active while admission decisions are made.
	shard := cluster.Owner(es)
	release := make(chan struct{})
	var wedges []*engine.Future
	for i := 0; i < shard.Workers(); i++ {
		fut, err := cluster.Submit(context.Background(), engine.Job{Scheme: es, Y: ys[0], K: k, Dec: blockDecoder{release}})
		if err != nil {
			t.Fatal(err)
		}
		wedges = append(wedges, fut)
	}

	var created campaignCreated
	resp := postJSON(t, ts.URL+"/v1/campaigns", campaignRequest{
		Scheme: sch.ID, K: k, Batch: ys, Tenant: "lab-a", Noise: &nm,
	}, &created)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create campaign: status %d", resp.StatusCode)
	}
	if created.Tenant != "lab-a" {
		t.Fatalf("202 body tenant = %q", created.Tenant)
	}

	// lab-a has saturated its own quota: its second campaign is turned
	// away with a Retry-After estimate, not a hard-coded second.
	resp = postJSON(t, ts.URL+"/v1/campaigns", campaignRequest{Scheme: sch.ID, K: k, Batch: ys, Tenant: "lab-a"}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota campaign: status %d", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("over-quota Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	// A different tenant is admitted while lab-a is at quota.
	var other campaignCreated
	resp = postJSON(t, ts.URL+"/v1/campaigns", campaignRequest{Scheme: sch.ID, K: k, Batch: ys[:2], Tenant: "lab-b"}, &other)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant campaign: status %d", resp.StatusCode)
	}

	// Per-tenant gauges while both campaigns are active.
	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if g := st.Tenants["lab-a"]; g.Active != 1 {
		t.Fatalf("lab-a gauges = %+v", g)
	}
	if g := st.Tenants["lab-b"]; g.Active != 1 {
		t.Fatalf("lab-b gauges = %+v", g)
	}

	// Stream, disconnect mid-campaign, resume with Last-Event-ID.
	sresp := streamEvents(t, ts.URL, created.ID, 0)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type %q", ct)
	}
	close(release)
	for _, fut := range wedges {
		if _, err := fut.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	first, _ := readSSE(t, sresp.Body, 5)
	sresp.Body.Close() // drop the connection mid-stream
	if len(first) == 0 {
		t.Fatal("no events before disconnect")
	}
	cursor := first[len(first)-1].id

	sresp = streamEvents(t, ts.URL, created.ID, cursor)
	defer sresp.Body.Close()
	rest, _ := readSSE(t, sresp.Body, batch+1)

	// Exactly once across both connections: every job index appears one
	// time, ids are gapless, and the stream ends with a done event.
	all := append(first, rest...)
	last := all[len(all)-1]
	if last.event != "done" {
		t.Fatalf("stream ended with %+v, want done", last)
	}
	var fin struct {
		State     string `json:"state"`
		Completed int    `json:"completed"`
		Total     int    `json:"total"`
	}
	if err := json.Unmarshal([]byte(last.data), &fin); err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" || fin.Completed != batch || fin.Total != batch {
		t.Fatalf("terminal payload = %+v", fin)
	}
	results := all[:len(all)-1]
	if len(results) != batch {
		t.Fatalf("streamed %d results, want %d", len(results), batch)
	}
	var ids []int64
	seen := make(map[int]bool)
	for _, ev := range results {
		if ev.event != "result" {
			t.Fatalf("unexpected event %+v", ev)
		}
		var jr campaign.JobResult
		if err := json.Unmarshal([]byte(ev.data), &jr); err != nil {
			t.Fatal(err)
		}
		if seen[jr.Index] {
			t.Fatalf("job %d streamed twice", jr.Index)
		}
		seen[jr.Index] = true
		// Gaussian σ=0.5 selects the refined decoder server-side.
		if jr.Decoder != "mn-refined" {
			t.Fatalf("job %d decoder %q, want mn-refined", jr.Index, jr.Decoder)
		}
		ids = append(ids, ev.id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if id != int64(i+1) {
			t.Fatalf("event ids not gapless: %v", ids)
		}
	}

	// After everything drains, the finished campaigns move to the
	// finished gauges.
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/stats", &st)
		if st.Tenants["lab-a"].Finished == 1 && st.Tenants["lab-b"].Finished == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant gauges never settled: %+v", st.Tenants)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCampaignSSECancelTerminal(t *testing.T) {
	ts, _, cluster := newTestServerWith(t, engine.ClusterConfig{
		Shards: 1,
		Shard:  engine.Config{CacheCapacity: 4, Workers: 1, QueueDepth: 16},
	})
	const n, k, m, batch = 150, 3, 110, 5
	sch, _, ys := measuredBatch(t, ts.URL, cluster, n, k, m, batch, 51)

	es, err := cluster.Scheme(nil, n, m, 51)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	wedge, err := cluster.Submit(context.Background(), engine.Job{Scheme: es, Y: ys[0], K: k, Dec: blockDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}

	var created campaignCreated
	postJSON(t, ts.URL+"/v1/campaigns", campaignRequest{Scheme: sch.ID, K: k, Batch: ys}, &created)
	sresp := streamEvents(t, ts.URL, created.ID, 0)
	defer sresp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+created.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	close(release)
	if _, err := wedge.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The stream still delivers every settlement, then closes with a
	// terminal event carrying the canceled state.
	evs, _ := readSSE(t, sresp.Body, batch+1)
	last := evs[len(evs)-1]
	if last.event != "done" {
		t.Fatalf("stream ended with %+v, want done", last)
	}
	var fin struct {
		State    string `json:"state"`
		Canceled int    `json:"canceled"`
	}
	if err := json.Unmarshal([]byte(last.data), &fin); err != nil {
		t.Fatal(err)
	}
	if fin.State != "canceled" || fin.Canceled == 0 {
		t.Fatalf("terminal payload = %+v", fin)
	}
	if len(evs) != batch+1 {
		t.Fatalf("stream delivered %d events, want %d", len(evs), batch+1)
	}
}

// stallWriter is a ResponseWriter whose writes start failing after the
// first `allow` calls — the shape of a client whose socket stopped
// draining and hit the write deadline.
type stallWriter struct {
	header http.Header
	allow  int
	writes int
}

func (w *stallWriter) Header() http.Header { return w.header }
func (w *stallWriter) WriteHeader(int)     {}
func (w *stallWriter) Flush()              {}
func (w *stallWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.allow {
		return 0, errors.New("write deadline exceeded (simulated slow client)")
	}
	return len(p), nil
}

// TestCampaignSSESlowClientEvicted: a subscriber whose writes fail is
// evicted — the handler returns instead of buffering events for it or
// spinning. The campaign itself is unaffected.
func TestCampaignSSESlowClientEvicted(t *testing.T) {
	ts, srv, cluster := newTestServerWith(t, engine.ClusterConfig{
		Shards: 1,
		Shard:  engine.Config{CacheCapacity: 4, Workers: 2},
	})
	srv.sseWriteTimeout = 50 * time.Millisecond
	const n, k, m, batch = 150, 3, 110, 6
	sch, _, ys := measuredBatch(t, ts.URL, cluster, n, k, m, batch, 53)

	var created campaignCreated
	postJSON(t, ts.URL+"/v1/campaigns", campaignRequest{Scheme: sch.ID, K: k, Batch: ys}, &created)
	cp, ok := srv.campaigns.Get(created.ID)
	if !ok {
		t.Fatal("campaign not retained")
	}
	cp.Wait(context.Background(), 10*time.Second) // events exist before the stream opens

	req := httptest.NewRequest(http.MethodGet, "/v1/campaigns/"+created.ID+"/events", nil)
	req.SetPathValue("id", created.ID)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.handleCampaignEvents(&stallWriter{header: make(http.Header), allow: 2}, req)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler kept serving a client whose writes fail")
	}

	// A healthy subscriber still replays the full log afterwards.
	sresp := streamEvents(t, ts.URL, created.ID, 0)
	defer sresp.Body.Close()
	if evs, _ := readSSE(t, sresp.Body, batch+1); len(evs) != batch+1 {
		t.Fatalf("healthy subscriber got %d events, want %d", len(evs), batch+1)
	}
}

func TestCampaignSSEErrors(t *testing.T) {
	ts, _, cluster := newTestServerWith(t, engine.ClusterConfig{
		Shards: 1,
		Shard:  engine.Config{CacheCapacity: 4, Workers: 1},
	})
	const n, k, m = 150, 3, 110
	sch, _, ys := measuredBatch(t, ts.URL, cluster, n, k, m, 1, 57)

	if resp := getJSON(t, ts.URL+"/v1/campaigns/nope/events", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign stream: status %d", resp.StatusCode)
	}

	var created campaignCreated
	postJSON(t, ts.URL+"/v1/campaigns", campaignRequest{Scheme: sch.ID, K: k, Batch: ys}, &created)
	if resp := getJSON(t, ts.URL+"/v1/campaigns/"+created.ID+"/events?after=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor: status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/campaigns/"+created.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "-4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative cursor: status %d", resp.StatusCode)
	}
	// A cursor beyond the log is a stale resume id, not a valid stream.
	if resp := getJSON(t, ts.URL+"/v1/campaigns/"+created.ID+"/events?after=999", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range cursor: status %d", resp.StatusCode)
	}

	// A caught-up reconnect after the terminal event gets 204 so
	// EventSource clients stop their reconnect loop.
	sresp := streamEvents(t, ts.URL, created.ID, 0)
	evs, _ := readSSE(t, sresp.Body, 3)
	sresp.Body.Close()
	if last := evs[len(evs)-1]; last.event != "done" {
		t.Fatalf("stream did not finish: %+v", evs)
	}
	done := evs[len(evs)-1].id
	again := streamEvents(t, ts.URL, created.ID, done)
	again.Body.Close()
	if again.StatusCode != http.StatusNoContent {
		t.Fatalf("caught-up reconnect: status %d, want 204", again.StatusCode)
	}
}

// TestCampaignSSEHeartbeat: an idle stream (wedged campaign) receives
// heartbeat comments that keep the connection verified.
func TestCampaignSSEHeartbeat(t *testing.T) {
	ts, srv, cluster := newTestServerWith(t, engine.ClusterConfig{
		Shards: 1,
		Shard:  engine.Config{CacheCapacity: 4, Workers: 1, QueueDepth: 16},
	})
	srv.sseHeartbeat = 20 * time.Millisecond
	const n, k, m, batch = 150, 3, 110, 2
	sch, _, ys := measuredBatch(t, ts.URL, cluster, n, k, m, batch, 59)

	es, err := cluster.Scheme(nil, n, m, 59)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	wedge, err := cluster.Submit(context.Background(), engine.Job{Scheme: es, Y: ys[0], K: k, Dec: blockDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	var created campaignCreated
	postJSON(t, ts.URL+"/v1/campaigns", campaignRequest{Scheme: sch.ID, K: k, Batch: ys}, &created)

	sresp := streamEvents(t, ts.URL, created.ID, 0)
	defer sresp.Body.Close()
	go func() {
		time.Sleep(200 * time.Millisecond)
		close(release)
	}()
	evs, heartbeats := readSSE(t, sresp.Body, batch+1)
	if _, err := wedge.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if heartbeats == 0 {
		t.Fatal("idle stream received no heartbeats")
	}
	if evs[len(evs)-1].event != "done" {
		t.Fatalf("stream did not finish: %+v", evs)
	}
}
