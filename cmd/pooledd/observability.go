package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"

	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
	"pooleddata/metrics"
	"pooleddata/metrics/trace"
)

// Per-request trace propagation: every request entering the public API
// gets a trace id at ingress — the caller's X-Request-ID (or an
// explicit Trace-ID) when present, a fresh random id otherwise. The id
// rides the request context into the decode pipeline (engine.Job
// carries it through settle into Result and campaign events) and across
// the federation hop to workers, so one grep over frontend logs, worker
// logs, and an SSE stream correlates a single job end to end. The
// response echoes it in a Trace-ID header.

// traceHeader is the canonical trace header, echoed on every response.
const traceHeader = "Trace-ID"

type traceCtxKey struct{}

// newTraceID returns a 16-hex-char random id. crypto/rand failure is
// unrecoverable enough (and rare enough) that a constant fallback beats
// plumbing an error through every request.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "trace-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// traceFrom returns the request's trace id, or "" outside the
// middleware (tests driving handlers directly).
func traceFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceCtxKey{}).(string)
	return id
}

// withTrace is the ingress middleware: adopt the caller's id or mint
// one, stash it in the context, echo it on the response.
func withTrace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(traceHeader)
		if id == "" {
			id = r.Header.Get("X-Request-ID")
		}
		if id == "" {
			id = newTraceID()
		}
		w.Header().Set(traceHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, id)))
	})
}

// newLogger builds the process logger from the -log-format flag and
// installs it as the slog default, so packages that fall back to
// slog.Default() (the remote client's probe transitions, the worker
// server's decode logs) share the same sink and format.
func newLogger(format string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "text", "":
		h = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return nil, fmt.Errorf("bad -log-format %q, want text or json", format)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l, nil
}

// startDebugServer serves net/http/pprof on its own listener — opt-in
// via -debug-addr and deliberately separate from the public API so
// profiling endpoints are never exposed on the service port.
func startDebugServer(addr string, log *slog.Logger) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		log.Info("debug server listening", "addr", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Error("debug server failed", "addr", addr, "err", err)
		}
	}()
}

// instrument attaches the metrics registry and logger to the server:
// the cluster and campaign-store collectors, the server-level gauges
// (registered schemes, uptime), and the SSE stream instruments. The
// registry may be nil (tests building a bare server) — every
// instrument is a no-op then.
func (s *server) instrument(reg *metrics.Registry, log *slog.Logger) {
	if log != nil {
		s.log = log
	}
	s.metrics = reg
	engine.RegisterClusterMetrics(reg, s.cluster)
	campaign.RegisterStoreMetrics(reg, s.campaigns)
	s.mSSEActive = reg.Gauge("pooled_sse_subscribers", "Campaign event streams currently connected.").With()
	s.mSSEStreams = reg.Counter("pooled_sse_streams_total", "Campaign event streams accepted.").With()
	s.mSSEEvictions = reg.Counter("pooled_sse_evictions_total", "Streams evicted by a slow-client write timeout or write error.").With()
	reg.OnGather(func(e *metrics.Exporter) {
		s.mu.Lock()
		n := len(s.schemes)
		s.mu.Unlock()
		e.Gauge("pooled_registered_schemes", "Scheme ids resident in the frontend registry.", float64(n))
		e.Gauge("pooled_uptime_seconds", "Seconds since process start.", time.Since(s.start).Seconds())
		e.Counter("pooled_scheme_migrations_total", "Registry schemes re-homed to a new ring owner after membership changes.", float64(s.schemeMigrations.Load()))
	})
	if ts := s.traces; ts != nil {
		reg.OnGather(func(e *metrics.Exporter) {
			st := ts.Stats()
			const retHelp = "Traces retained by the tail sampler, by reason."
			e.Counter("pooled_trace_offered_total", "Finished job traces offered to the tail sampler.", float64(st.Offered))
			e.Counter("pooled_trace_retained_total", retHelp, float64(st.RetainedError), "reason", "error")
			e.Counter("pooled_trace_retained_total", retHelp, float64(st.RetainedSlow), "reason", "slow")
			e.Counter("pooled_trace_retained_total", retHelp, float64(st.Sampled), "reason", "sampled")
			e.Counter("pooled_trace_dropped_total", "Traces the sampler declined to retain.", float64(st.Dropped))
			e.Gauge("pooled_trace_stored", "Traces resident in the bounded ring right now.", float64(st.Stored))
			e.Gauge("pooled_trace_slow_threshold_seconds", "Current tail-latency retention threshold (0 while warming up).", time.Duration(st.SlowThresholdNS).Seconds())
		})
	}
}

// slowTraceLogInterval edge-limits the tail-retention warn log: a
// wedged decoder failing every job must not turn the log into a
// per-job firehose — the trace store has the full population.
const slowTraceLogInterval = time.Second

// attachSlowTraceLog wires the trace store's tail-retention hook to a
// structured warn — one line per retained slow/errored job with the
// trace id to pull the full span tree, rate-limited to one per
// slowTraceLogInterval.
func attachSlowTraceLog(ts *trace.Store, log *slog.Logger) {
	if ts == nil || log == nil {
		return
	}
	var mu sync.Mutex
	var last time.Time
	ts.OnRetain(func(tr *trace.Trace, reason string) {
		mu.Lock()
		now := time.Now()
		if now.Sub(last) < slowTraceLogInterval {
			mu.Unlock()
			return
		}
		last = now
		mu.Unlock()
		log.Warn("job retained by tail sampler",
			"trace_id", tr.ID, "reason", reason, "tenant", tr.Tenant,
			"scheme", tr.Scheme, "total_ms", float64(tr.DurNS)/1e6,
			"err", tr.Err, "stages", stageBreakdown(tr))
	})
}

// stageBreakdown renders a trace's spans as "name=1.2ms ..." for the
// slow-job log line — enough to see where the time went without
// fetching the span tree.
func stageBreakdown(tr *trace.Trace) string {
	var b strings.Builder
	for i, sp := range tr.Spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.1fms", sp.Name, float64(sp.DurNS)/1e6)
	}
	return b.String()
}
