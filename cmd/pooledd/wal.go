package main

import (
	"encoding/json"
	"fmt"
	"io"

	"pooleddata/internal/engine"
	"pooleddata/internal/wal"
)

// WAL glue: campaigns journal which scheme they decode against as an
// opaque SchemeRef — the JSON below, carrying the same fields the
// -snapshot file persists per entry. At recovery the ref resolves
// against the scheme registry first (which -designs preloads and
// -snapshot restores populate before recovery runs), then falls back to
// rebuilding parametric designs from their parameters — so a seeded
// random-regular campaign replays even on a server that never had a
// snapshot. Only ad-hoc uploads and file-preloaded designs strictly
// need their registry entry back; a ref that resolves to nothing fails
// the campaign's remaining jobs, never the boot.

// walSchemeRef is the journaled scheme description.
type walSchemeRef struct {
	Design string  `json:"design"`
	N      int     `json:"n"`
	M      int     `json:"m"`
	Seed   uint64  `json:"seed,omitempty"`
	Gamma  int     `json:"gamma,omitempty"`
	P      float64 `json:"p,omitempty"`
	D      int     `json:"d,omitempty"`
	AdHoc  bool    `json:"ad_hoc,omitempty"`
}

// schemeRefFor serializes a registry entry into the journaled form.
func (s *server) schemeRefFor(ent *schemeEntry) string {
	buf, err := json.Marshal(walSchemeRef{
		Design: ent.Design, N: ent.N, M: ent.M, Seed: ent.Seed,
		Gamma: ent.Gamma, P: ent.P, D: ent.D, AdHoc: ent.AdHoc,
	})
	if err != nil {
		return ""
	}
	return string(buf)
}

// resolveSchemeRef maps a journaled ref back to a live scheme.
func (s *server) resolveSchemeRef(refJSON string) (*engine.Scheme, error) {
	var ref walSchemeRef
	if refJSON == "" {
		return nil, fmt.Errorf("campaign journaled no scheme ref")
	}
	if err := json.Unmarshal([]byte(refJSON), &ref); err != nil {
		return nil, fmt.Errorf("bad scheme ref %q: %v", refJSON, err)
	}
	// Registry scan first: it holds ad-hoc uploads (restored by
	// -snapshot), file-preloaded designs (-designs), and anything
	// already rebuilt this boot.
	s.mu.Lock()
	for _, id := range s.order {
		ent := s.schemes[id]
		if ent.Design == ref.Design && ent.N == ref.N && ent.M == ref.M &&
			ent.Seed == ref.Seed && ent.AdHoc == ref.AdHoc &&
			ent.Gamma == ref.Gamma && ent.P == ref.P && ent.D == ref.D {
			s.mu.Unlock()
			return ent.scheme, nil
		}
	}
	s.mu.Unlock()
	if ref.AdHoc {
		return nil, fmt.Errorf("ad-hoc design (n=%d m=%d) is gone from the registry; boot with the -snapshot that persisted it", ref.N, ref.M)
	}
	// Parametric rebuild: seeded builds are deterministic, so the same
	// (design, n, m, seed) reproduces the pre-crash scheme bit for bit.
	params := engine.DesignParams{Gamma: ref.Gamma, P: ref.P, D: ref.D}
	des, err := engine.DesignByName(ref.Design, params)
	if err != nil {
		return nil, fmt.Errorf("scheme ref %q: %v", refJSON, err)
	}
	es, err := s.cluster.Scheme(des, ref.N, ref.M, ref.Seed)
	if err != nil {
		return nil, fmt.Errorf("rebuild scheme from ref %q: %v", refJSON, err)
	}
	// Re-register so the scheme is addressable again (same dedup-by-spec
	// path POST /v1/schemes uses) and later campaigns share the entry.
	s.register(es, des.Name(), ref.N, ref.M, ref.Seed, params, false)
	return es, nil
}

// restoreCampaigns replays the WAL into the campaign store during boot,
// after -designs and -snapshot have populated the scheme registry. An
// interior-corrupt log refuses boot (the error from Recover); per-
// campaign resolution problems degrade to failed jobs instead.
func restoreCampaigns(srv *server, w *wal.WAL, logw io.Writer) error {
	logs, err := w.Recover()
	if err != nil {
		return err
	}
	if len(logs) == 0 {
		return nil
	}
	restored := srv.campaigns.Restore(logs, func(spec wal.CampaignSpec) (*engine.Scheme, error) {
		return srv.resolveSchemeRef(spec.SchemeRef)
	})
	for _, rc := range restored {
		p := rc.Campaign.Progress()
		fmt.Fprintf(logw, "pooledd: wal restored campaign %s (%s, %d/%d settled, %d re-dispatched)\n",
			rc.Campaign.ID(), rc.State, p.Settled(), p.Total, rc.Redispatched)
	}
	return nil
}
