package main

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"pooleddata/internal/engine"
	"pooleddata/internal/remote"
	"pooleddata/metrics"
)

// fleet owns runtime worker membership for a -workers frontend: the
// remote shard clients, their place on the cluster's consistent-hash
// ring, and the probe-driven eviction/rejoin loop. It exists only in
// federated mode — a local-shard frontend has a static topology and no
// fleet.
//
// Membership has two lifecycles that must not be conflated:
//
//   - Administrative (POST/DELETE /v1/workers): a DELETE drains the
//     worker completely — out of the ring, probe stopped, client
//     closed. It will not come back on its own.
//   - Probe-driven (EvictAfter consecutive probe failures): the worker
//     leaves the ring but the client keeps probing, and the first
//     successful probe re-admits it. A crashed-and-restarted worker
//     rejoins without an operator in the loop.
type fleet struct {
	cluster *engine.Cluster
	cfg     fleetConfig

	// onChange runs after every ring mutation (add, remove, evict,
	// rejoin) — the server hangs scheme migration off it. It is always
	// invoked outside f.mu: migration rescans the whole scheme registry,
	// and holding the membership lock for that long would stall the
	// workers API and every probe hook behind one migration pass.
	onChange func(reason string)

	mu      sync.Mutex
	workers map[string]*remote.Shard // every tracked client, in-ring or evicted
}

// fleetConfig carries the per-worker client knobs every fleet member is
// built with, at boot and at runtime registration alike.
type fleetConfig struct {
	timeout       time.Duration
	probeInterval time.Duration
	retryBackoff  time.Duration
	retries       int
	evictAfter    int
	reg           *metrics.Registry
	log           *slog.Logger
}

// newFleet builds the boot-time fleet from the -workers list and
// returns it with the cluster fronting those workers.
func newFleet(addrs []string, cfg fleetConfig) (*fleet, *engine.Cluster) {
	if cfg.log == nil {
		cfg.log = slog.Default()
	}
	f := &fleet{
		cfg:     cfg,
		workers: make(map[string]*remote.Shard, len(addrs)),
	}
	shards := make([]engine.Shard, len(addrs))
	for i, a := range addrs {
		sh := f.newShard(a)
		shards[i] = sh
		f.workers[a] = sh
	}
	f.cluster = engine.NewClusterOf(shards...)
	return f, f.cluster
}

// newShard constructs one remote client with the eviction hooks bound
// to its address. Hooks fire from the client's probe goroutine.
func (f *fleet) newShard(addr string) *remote.Shard {
	return remote.New(remote.Options{
		Addr: addr, RequestTimeout: f.cfg.timeout,
		ProbeInterval: f.cfg.probeInterval,
		RetryBackoff:  f.cfg.retryBackoff,
		Retries:       f.cfg.retries,
		EvictAfter:    f.cfg.evictAfter,
		OnEvict:       func() { f.evict(addr) },
		OnRejoin:      func() { f.rejoin(addr) },
		Metrics:       f.cfg.reg, Logger: f.cfg.log,
	})
}

// Close stops every tracked client and then the cluster. Evicted
// workers are closed here explicitly — the cluster no longer owns them.
// Clients are closed outside f.mu: Shard.Close waits for the probe
// goroutine, which may itself be blocked in an evict/rejoin hook that
// needs f.mu.
func (f *fleet) Close() {
	f.mu.Lock()
	var orphans []*remote.Shard
	for addr, sh := range f.workers {
		if !f.cluster.HasMember(addr) {
			orphans = append(orphans, sh)
		}
	}
	f.workers = map[string]*remote.Shard{}
	f.mu.Unlock()
	for _, sh := range orphans {
		sh.Close()
	}
	f.cluster.Close()
}

func (f *fleet) changed(reason string) {
	if f.onChange != nil {
		f.onChange(reason)
	}
}

// Add registers a new worker: builds its client, joins it to the ring,
// and triggers scheme migration. Fails on a duplicate address.
func (f *fleet) Add(addr string) error {
	f.mu.Lock()
	if _, dup := f.workers[addr]; dup {
		f.mu.Unlock()
		return fmt.Errorf("worker %s already registered", addr)
	}
	sh := f.newShard(addr)
	if err := f.cluster.AddShard(addr, sh); err != nil {
		f.mu.Unlock()
		sh.Close()
		return err
	}
	f.workers[addr] = sh
	f.mu.Unlock()
	f.cfg.log.Info("worker joined", "addr", addr, "members", f.cluster.Shards())
	f.changed("add")
	return nil
}

// Remove drains a worker administratively: out of the ring, probe
// stopped, client closed. Refuses to drain the last ring member.
//
// The client is closed after releasing f.mu: Close waits out the probe
// goroutine, and that goroutine may be blocked in an evict/rejoin hook
// waiting for f.mu — closing under the lock would wedge both sides
// whenever a drain races a probe-threshold transition (the common case:
// draining a worker whose probes are already failing). Once the worker
// is out of the map, a concurrently queued hook no-ops on its tracked
// check, so the late Close is safe.
func (f *fleet) Remove(addr string) error {
	f.mu.Lock()
	sh, ok := f.workers[addr]
	if !ok {
		f.mu.Unlock()
		return engine.ErrUnknownShard
	}
	if f.cluster.HasMember(addr) {
		if _, err := f.cluster.RemoveShard(addr); err != nil {
			f.mu.Unlock()
			return err
		}
	} else if len(f.workers) == 1 {
		// Evicted but still the only worker we know: draining it would
		// leave nothing to rejoin.
		f.mu.Unlock()
		return engine.ErrLastShard
	}
	delete(f.workers, addr)
	f.mu.Unlock()
	sh.Close()
	f.cfg.log.Info("worker drained", "addr", addr, "members", f.cluster.Shards())
	f.changed("remove")
	return nil
}

// evict pulls a probe-dead worker out of the ring. The client keeps
// probing; rejoin re-admits it. Fires from the probe goroutine.
func (f *fleet) evict(addr string) {
	f.mu.Lock()
	if _, tracked := f.workers[addr]; !tracked || !f.cluster.HasMember(addr) {
		f.mu.Unlock()
		return
	}
	if _, err := f.cluster.RemoveShard(addr); err != nil {
		// Last ring member: leave it in place — an empty ring serves
		// nothing, and the health-skip lookup already degrades sanely.
		f.mu.Unlock()
		f.cfg.log.Warn("eviction skipped", "addr", addr, "err", err)
		return
	}
	f.mu.Unlock()
	f.cfg.log.Warn("worker evicted after failed probes", "addr", addr, "members", f.cluster.Shards())
	f.changed("evict")
}

// rejoin re-admits an evicted worker whose probe recovered. Fires from
// the probe goroutine; a concurrent administrative drain wins.
func (f *fleet) rejoin(addr string) {
	f.mu.Lock()
	sh, tracked := f.workers[addr]
	if !tracked || f.cluster.HasMember(addr) {
		f.mu.Unlock()
		return
	}
	if err := f.cluster.AddShard(addr, sh); err != nil {
		f.mu.Unlock()
		f.cfg.log.Warn("rejoin failed", "addr", addr, "err", err)
		return
	}
	f.mu.Unlock()
	f.cfg.log.Info("worker rejoined", "addr", addr, "members", f.cluster.Shards())
	f.changed("rejoin")
}

// workerStatus is one row of GET /v1/workers.
type workerStatus struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	// Member reports ring membership: false for a worker that is
	// tracked (still probed) but evicted from the ring.
	Member bool `json:"member"`
}

// Status lists every tracked worker, in-ring or evicted.
func (f *fleet) Status() []workerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]workerStatus, 0, len(f.workers))
	for addr, sh := range f.workers {
		out = append(out, workerStatus{
			Addr: addr, Healthy: sh.Healthy(), Member: f.cluster.HasMember(addr),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
