// Command pooledd serves the sharded reconstruction cluster over HTTP:
// cached pooling schemes partitioned across engine shards, pipelined
// decodes, async campaigns, and fleet-wide counters. It is the service
// form of the one-design/many-signals regime — a screening lab posts
// one design up front, then streams plates of counts at it; multiple
// labs coexist because each design lives on the shard that owns its
// spec hash, so one tenant's churn cannot evict another's scheme.
//
// Usage:
//
//	pooledd -addr :8080 -shards 4 -cache 16 -workers 2 -queue 64 \
//	        -designs lab-a.csv,lab-b.csv
//
// API (JSON unless noted; design/count payloads reuse the labio CSV
// formats of WriteDesignCSV/WriteCountsCSV):
//
//	POST   /v1/schemes             {"design":"random-regular","n":10000,"m":600,"seed":1}
//	                               or a labio design CSV (Content-Type: text/csv)
//	GET    /v1/schemes/{id}        scheme metadata (including its shard)
//	GET    /v1/schemes/{id}/design the design as labio CSV (for the robot)
//	POST   /v1/decode              {"scheme":"s1","k":16,"decoder":"mn","counts":[...]}
//	                               or {"batch":[[...],[...]]} for pipelined decoding
//	                               or a labio counts CSV with ?scheme=s1&k=16&decoder=mn
//	                               429 + Retry-After when the owning shard is saturated
//	POST   /v1/campaigns           {"scheme":"s1","k":16,"batch":[[...],...]} → 202 + id
//	GET    /v1/campaigns           all retained campaigns
//	GET    /v1/campaigns/{id}      progress + completed results; ?wait=5s long-polls
//	DELETE /v1/campaigns/{id}      cancel (queued jobs settle as canceled)
//	GET    /v1/stats               fleet aggregate + per-shard breakdown (queue depth,
//	                               cache hits, rejected jobs, decode-latency histograms)
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"pooleddata/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 4, "engine shard count (each shard owns its cache and worker pool)")
	cache := flag.Int("cache", 16, "scheme cache capacity per shard (LRU)")
	workers := flag.Int("workers", 0, "decode workers per shard (0: GOMAXPROCS/shards)")
	queue := flag.Int("queue", 0, "decode queue depth per shard (0: 4x workers)")
	maxSchemes := flag.Int("max-schemes", 64, "max registered scheme ids (oldest dropped beyond)")
	maxBody := flag.Int64("max-body", 256<<20, "max request body bytes")
	designs := flag.String("designs", "", "comma-separated labio design CSVs to preload at boot")
	flag.Parse()

	if *shards < 1 {
		*shards = 1
	}
	cluster := engine.NewCluster(engine.ClusterConfig{
		Shards: *shards,
		Shard: engine.Config{
			CacheCapacity: *cache,
			Workers:       *workers, // 0: NewCluster splits GOMAXPROCS across shards
			QueueDepth:    *queue,
		},
	})
	defer cluster.Close()

	srv := newServer(cluster)
	srv.maxSchemes = *maxSchemes
	srv.maxBody = *maxBody
	if *designs != "" {
		paths := strings.Split(*designs, ",")
		for i := range paths {
			paths[i] = strings.TrimSpace(paths[i])
		}
		if err := preloadDesigns(cluster, srv, paths, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
			os.Exit(1)
		}
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(os.Stderr, "pooledd: listening on %s (%d shards x %d workers)\n", *addr, *shards, cluster.Shard(0).Workers())
	if err := httpSrv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
		os.Exit(1)
	}
}
