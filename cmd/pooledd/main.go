// Command pooledd serves the reconstruction engine over HTTP: cached
// pooling schemes, pipelined decodes, and engine counters. It is the
// service form of the one-design/many-signals regime — a screening lab
// posts one design up front, then streams plates of counts at it.
//
// Usage:
//
//	pooledd -addr :8080 -cache 16 -workers 8 -queue 64
//
// API (JSON unless noted; design/count payloads reuse the labio CSV
// formats of WriteDesignCSV/WriteCountsCSV):
//
//	POST /v1/schemes              {"design":"random-regular","n":10000,"m":600,"seed":1}
//	                              or a labio design CSV (Content-Type: text/csv)
//	GET  /v1/schemes/{id}         scheme metadata
//	GET  /v1/schemes/{id}/design  the design as labio CSV (for the robot)
//	POST /v1/decode               {"scheme":"s1","k":16,"decoder":"mn","counts":[...]}
//	                              or {"batch":[[...],[...]]} for pipelined decoding
//	                              or a labio counts CSV with ?scheme=s1&k=16&decoder=mn
//	GET  /v1/stats                engine counters (cache hits, dedup, queue/decode time)
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"pooleddata/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 16, "scheme cache capacity (LRU)")
	workers := flag.Int("workers", 0, "decode worker pool size (0: GOMAXPROCS)")
	queue := flag.Int("queue", 0, "decode queue depth (0: 4x workers)")
	maxSchemes := flag.Int("max-schemes", 64, "max registered scheme ids (oldest dropped beyond)")
	maxBody := flag.Int64("max-body", 256<<20, "max request body bytes")
	flag.Parse()

	eng := engine.New(engine.Config{
		CacheCapacity: *cache,
		Workers:       *workers,
		QueueDepth:    *queue,
	})
	defer eng.Close()

	srv := newServer(eng)
	srv.maxSchemes = *maxSchemes
	srv.maxBody = *maxBody
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(os.Stderr, "pooledd: listening on %s\n", *addr)
	if err := httpSrv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
		os.Exit(1)
	}
}
