// Command pooledd serves the sharded reconstruction cluster over HTTP:
// cached pooling schemes partitioned across engine shards, pipelined
// decodes, async campaigns, and fleet-wide counters. It is the service
// form of the one-design/many-signals regime — a screening lab posts
// one design up front, then streams plates of counts at it; multiple
// labs coexist because each design lives on the shard that owns its
// spec hash, so one tenant's churn cannot evict another's scheme.
//
// Usage:
//
//	pooledd -addr :8080 -shards 4 -cache 16 -workers 2 -queue 64 \
//	        -designs lab-a.csv,lab-b.csv -snapshot specs.json
//
// API (JSON unless noted; design/count payloads reuse the labio CSV
// formats of WriteDesignCSV/WriteCountsCSV):
//
//	POST   /v1/schemes             {"design":"random-regular","n":10000,"m":600,"seed":1}
//	                               or a labio design CSV (Content-Type: text/csv)
//	GET    /v1/schemes/{id}        scheme metadata (including its shard)
//	GET    /v1/schemes/{id}/design the design as labio CSV (for the robot)
//	POST   /v1/decode              {"scheme":"s1","k":16,"decoder":"mn","counts":[...]}
//	                               or {"batch":[[...],[...]]} for pipelined decoding
//	                               or a labio counts CSV with ?scheme=s1&k=16&decoder=mn
//	                               an optional "noise" object ({"kind":"gaussian",
//	                               "sigma":0.5} or {"kind":"threshold","t":2}; CSV:
//	                               &noise=gaussian:0.5) declares the measurement model
//	                               and makes the server select the robust decoder
//	                               429 + Retry-After when the owning shard is saturated
//	POST   /v1/campaigns           {"scheme":"s1","k":16,"batch":[[...],...]} → 202 + id
//	                               + optional campaign-level "noise" object applied to
//	                               every job, and an optional "tenant" for per-tenant
//	                               quotas / fair dispatch (429 + Retry-After when the
//	                               tenant's quota is exhausted)
//	GET    /v1/campaigns           all retained campaigns
//	GET    /v1/campaigns/{id}      progress + completed results; ?wait=5s long-polls
//	GET    /v1/campaigns/{id}/events  SSE stream of per-job settlements as they land,
//	                               resumable with Last-Event-ID (or ?after=N); one
//	                               terminal "done" event closes the stream; slow
//	                               clients are evicted rather than buffered
//	DELETE /v1/campaigns/{id}      cancel (queued jobs settle as canceled; streams
//	                               still receive every settlement plus the terminal
//	                               event)
//	GET    /v1/stats               fleet aggregate + per-shard breakdown (queue depth,
//	                               cache hits, rejected jobs, decode-latency histograms,
//	                               jobs_by_noise per-model counters, campaign gauges,
//	                               per-tenant gauges)
//
// -snapshot persists the registered parametric scheme specs as JSON on
// graceful shutdown (SIGINT/SIGTERM) and rebuilds them into the shard
// caches on the next boot. -gc-interval runs campaign GC on a ticker so
// an idle server releases finished campaigns (and their event logs)
// without waiting for the next request. -tenant-max-active and
// -tenant-max-queued set the per-tenant quotas.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 4, "engine shard count (each shard owns its cache and worker pool)")
	cache := flag.Int("cache", 16, "scheme cache capacity per shard (LRU)")
	workers := flag.Int("workers", 0, "decode workers per shard (0: GOMAXPROCS/shards)")
	queue := flag.Int("queue", 0, "decode queue depth per shard (0: 4x workers)")
	maxSchemes := flag.Int("max-schemes", 64, "max registered scheme ids (oldest dropped beyond)")
	maxBody := flag.Int64("max-body", 256<<20, "max request body bytes")
	designs := flag.String("designs", "", "comma-separated labio design CSVs to preload at boot")
	snapshot := flag.String("snapshot", "", "spec snapshot file: cached scheme specs written on shutdown, rebuilt on boot")
	gcInterval := flag.Duration("gc-interval", time.Minute, "campaign GC ticker period (0 disables the ticker; request-path GC still runs)")
	tenantMaxActive := flag.Int("tenant-max-active", 0, "max active campaigns per tenant (0: unlimited)")
	tenantMaxQueued := flag.Int("tenant-max-queued", 0, "max unsettled campaign jobs per tenant (0: unlimited)")
	flag.Parse()

	if *shards < 1 {
		*shards = 1
	}
	cluster := engine.NewCluster(engine.ClusterConfig{
		Shards: *shards,
		Shard: engine.Config{
			CacheCapacity: *cache,
			Workers:       *workers, // 0: NewCluster splits GOMAXPROCS across shards
			QueueDepth:    *queue,
		},
	})
	defer cluster.Close()

	srv := newServer(cluster, campaign.Config{
		TenantMaxActive: *tenantMaxActive,
		TenantMaxQueued: *tenantMaxQueued,
	})
	srv.maxSchemes = *maxSchemes
	srv.maxBody = *maxBody
	if *designs != "" {
		paths := strings.Split(*designs, ",")
		for i := range paths {
			paths[i] = strings.TrimSpace(paths[i])
		}
		if err := preloadDesigns(cluster, srv, paths, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
			os.Exit(1)
		}
	}
	if *snapshot != "" {
		if err := loadSnapshot(cluster, srv, *snapshot, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
			os.Exit(1)
		}
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// Campaign GC used to run only opportunistically on request paths, so
	// an idle server retained finished campaigns (and now their event
	// logs) until the next submission. The ticker makes retention a real
	// upper bound; it also reaps stale canceled campaigns and wakes their
	// parked long-pollers with a terminal progress.
	if *gcInterval > 0 {
		go func() {
			tick := time.NewTicker(*gcInterval)
			defer tick.Stop()
			for range tick.C {
				srv.campaigns.GC(time.Now())
			}
		}()
	}
	// SIGINT/SIGTERM drain in-flight requests, then the snapshot (if
	// configured) persists the cached spec keys for the next boot.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "pooledd: shutdown: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "pooledd: listening on %s (%d shards x %d workers)\n", *addr, *shards, cluster.Shard(0).Workers())
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
		os.Exit(1)
	}
	<-done
	// Stop the campaign dispatcher: jobs still awaiting dispatch settle
	// with a store-closed error instead of dangling.
	srv.campaigns.Close()
	if *snapshot != "" {
		if err := writeSnapshot(srv, *snapshot); err != nil {
			fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pooledd: snapshot written to %s\n", *snapshot)
	}
}
