// Command pooledd serves the sharded reconstruction cluster over HTTP:
// cached pooling schemes partitioned across engine shards, pipelined
// decodes, async campaigns, and fleet-wide counters. It is the service
// form of the one-design/many-signals regime — a screening lab posts
// one design up front, then streams plates of counts at it; multiple
// labs coexist because each design lives on the shard that owns its
// spec hash, so one tenant's churn cannot evict another's scheme.
//
// It runs in two modes:
//
//   - Frontend (default): serves the public /v1 API. Shards are local
//     engines, or — with -workers — remote shard clients, one per
//     `pooledd -worker` process, so one frontend fans decode traffic
//     out across machines:
//
//     pooledd -addr :8080 -shards 4 -cache 16 -shard-workers 2 \
//     -designs lab-a.csv,lab-b.csv -snapshot specs.json
//
//     pooledd -addr :8080 -workers node1:9090,node2:9090
//
//   - Worker (-worker): serves only the shard API (/shard/v1/...) that
//     frontends drive — scheme installs, decode submissions with 429
//     admission mirroring, health, stats:
//
//     pooledd -worker -addr :9090 -shards 2 -queue 64
//
// API (JSON unless noted; design/count payloads reuse the labio CSV
// formats of WriteDesignCSV/WriteCountsCSV):
//
//	POST   /v1/schemes             {"design":"random-regular","n":10000,"m":600,"seed":1}
//	                               or a labio design CSV (Content-Type: text/csv)
//	GET    /v1/schemes/{id}        scheme metadata (including its shard)
//	GET    /v1/schemes/{id}/design the design as labio CSV (for the robot)
//	POST   /v1/decode              {"scheme":"s1","k":16,"decoder":"mn","counts":[...]}
//	                               or {"batch":[[...],[...]]} for pipelined decoding
//	                               or a labio counts CSV with ?scheme=s1&k=16&decoder=mn
//	                               an optional "noise" object ({"kind":"gaussian",
//	                               "sigma":0.5} or {"kind":"threshold","t":2}; CSV:
//	                               &noise=gaussian:0.5) declares the measurement model
//	                               and makes the server select the robust decoder
//	                               429 + Retry-After when the owning shard is saturated
//	POST   /v1/campaigns           {"scheme":"s1","k":16,"batch":[[...],...]} → 202 + id
//	                               + optional campaign-level "noise" object applied to
//	                               every job, and an optional "tenant" for per-tenant
//	                               quotas / weighted fair dispatch (429 + Retry-After
//	                               when the tenant's quota is exhausted)
//	GET    /v1/campaigns           all retained campaigns
//	GET    /v1/campaigns/{id}      progress + completed results; ?wait=5s long-polls
//	GET    /v1/campaigns/{id}/events  SSE stream of per-job settlements as they land,
//	                               resumable with Last-Event-ID (or ?after=N); one
//	                               terminal "done" event closes the stream; slow
//	                               clients are evicted rather than buffered
//	DELETE /v1/campaigns/{id}      cancel (queued jobs settle as canceled; streams
//	                               still receive every settlement plus the terminal
//	                               event)
//	GET    /v1/stats               fleet aggregate + per-shard breakdown (queue depth,
//	                               worker health/addr, cache hits, rejected jobs,
//	                               decode-latency histograms, jobs_by_noise per-model
//	                               counters, campaign gauges, per-tenant gauges with
//	                               decode-latency histograms, ring membership counters)
//	GET    /v1/workers             fleet membership: every tracked worker with health
//	                               and ring status (-workers frontends only)
//	POST   /v1/workers             {"addr":"node3:9090"} registers a worker at runtime:
//	                               joins it to the consistent-hash ring and migrates its
//	                               share of the registered schemes → 201 + member list
//	DELETE /v1/workers/{addr}      drains a worker: flushes its queue to it, removes it
//	                               from the ring, stops its health probe (409 for the
//	                               last worker; a probe-evicted worker instead rejoins
//	                               automatically on its next successful probe, tuned by
//	                               -evict-after)
//	GET    /metrics                Prometheus text exposition of the same surface
//	                               (served by both modes: frontend and -worker)
//
// Observability: every request gets a trace id at ingress (X-Request-ID
// or Trace-ID when the caller sets one, random otherwise), echoed in a
// Trace-ID response header, carried on the decode pipeline into results,
// campaign SSE events, and across the federation hop into worker logs.
// Logs are structured (log/slog); -log-format selects text or json.
// -debug-addr serves net/http/pprof on a separate listener.
//
// -snapshot persists the registered scheme specs as JSON on graceful
// shutdown (SIGINT/SIGTERM) and rebuilds them into the shard caches on
// the next boot; ad-hoc uploaded designs are persisted alongside as
// labio CSVs in <snapshot>.designs/. -gc-interval runs campaign GC on a
// ticker so an idle server releases finished campaigns (and their event
// logs) without waiting for the next request. -tenant-max-active and
// -tenant-max-queued set the per-tenant quotas; -tenant-weights sets
// weighted-fair-queuing dispatch weights (t1=3,t2=1).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
	"pooleddata/internal/remote"
	"pooleddata/internal/wal"
	"pooleddata/metrics"
	"pooleddata/metrics/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workerMode := flag.Bool("worker", false, "serve only the shard worker API (the backend a -workers frontend drives)")
	workerAddrs := flag.String("workers", "", "comma-separated worker addresses (host:port); the frontend decodes on these pooledd -worker processes instead of local shards")
	workerTimeout := flag.Duration("worker-timeout", 0, "per-request deadline against remote workers (0: 60s)")
	evictAfter := flag.Int("evict-after", 0, "consecutive health-probe failures before a worker is evicted from the ring; it rejoins on the next successful probe (0: 3, negative: never evict)")
	shards := flag.Int("shards", 4, "engine shard count (each shard owns its cache and worker pool); with -workers, the shard count is the worker count")
	cache := flag.Int("cache", 16, "scheme cache capacity per shard (LRU)")
	shardWorkers := flag.Int("shard-workers", 0, "decode workers per shard (0: GOMAXPROCS/shards)")
	queue := flag.Int("queue", 0, "decode queue depth per shard (0: 4x workers)")
	maxSchemes := flag.Int("max-schemes", 64, "max registered scheme ids (oldest dropped beyond)")
	maxBody := flag.Int64("max-body", 256<<20, "max request body bytes")
	designs := flag.String("designs", "", "comma-separated labio design CSVs to preload at boot")
	snapshot := flag.String("snapshot", "", "spec snapshot file: cached scheme specs written on shutdown, rebuilt on boot (ad-hoc designs persisted as CSVs in <snapshot>.designs/)")
	gcInterval := flag.Duration("gc-interval", time.Minute, "campaign GC ticker period (0 disables the ticker; request-path GC still runs)")
	tenantMaxActive := flag.Int("tenant-max-active", 0, "max active campaigns per tenant (0: unlimited)")
	tenantMaxQueued := flag.Int("tenant-max-queued", 0, "max unsettled campaign jobs per tenant (0: unlimited)")
	tenantWeights := flag.String("tenant-weights", "", "weighted fair queuing, e.g. t1=3,t2=1 (unlisted tenants weigh 1)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json (stderr)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty: disabled)")
	walDir := flag.String("wal-dir", "", "campaign write-ahead-log directory: campaigns journal here and replay after a crash or restart (empty: campaigns are memory-only; frontend mode only)")
	walFsync := flag.String("wal-fsync", "always", "WAL fsync policy: always (per record), off, or a duration like 250ms (batched interval sync)")
	traceSample := flag.Float64("trace-sample", 0, "baseline retention rate for job traces in [0,1]; errored and tail-slow jobs are always retained once tracing is on (frontend mode only)")
	traceStore := flag.Int("trace-store", 0, "retained-trace ring capacity; setting either -trace-sample or -trace-store enables tracing (0 with tracing on: 1024)")
	flag.Parse()

	if *shards < 1 {
		*shards = 1
	}
	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
		os.Exit(1)
	}
	weights, err := parseWeights(*tenantWeights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
		os.Exit(1)
	}
	startDebugServer(*debugAddr, logger)

	if *workerMode {
		runWorker(*addr, *shards, *cache, *shardWorkers, *queue, *maxSchemes, *maxBody, logger)
		return
	}

	reg := metrics.NewRegistry()
	// The trace store exists before the cluster so local shards can offer
	// traces for bare /v1/decode jobs; campaign jobs and handler-owned
	// sync jobs bring their own builders and only flow through Offer.
	var traces *trace.Store
	if *traceSample > 0 || *traceStore > 0 {
		traces = trace.NewStore(trace.Config{Capacity: *traceStore, SampleRate: *traceSample})
		attachSlowTraceLog(traces, logger)
		logger.Info("job tracing enabled", "sample", *traceSample, "capacity", *traceStore)
	}
	var cluster *engine.Cluster
	var workers *fleet
	if *workerAddrs != "" {
		addrs := splitList(*workerAddrs)
		if len(addrs) == 0 {
			fmt.Fprintf(os.Stderr, "pooledd: -workers %q names no worker addresses\n", *workerAddrs)
			os.Exit(1)
		}
		workers, cluster = newFleet(addrs, fleetConfig{
			timeout: *workerTimeout, evictAfter: *evictAfter,
			reg: reg, log: logger,
		})
		logger.Info("fronting remote workers", "count", len(addrs), "addrs", strings.Join(addrs, ", "))
	} else {
		cluster = engine.NewCluster(engine.ClusterConfig{
			Shards: *shards,
			Shard: engine.Config{
				CacheCapacity: *cache,
				Workers:       *shardWorkers, // 0: NewCluster splits GOMAXPROCS across shards
				QueueDepth:    *queue,
				Traces:        traces,
			},
		})
	}
	defer cluster.Close()

	// The WAL opens before the campaign store exists so Create can
	// journal from the first request; recovery replays later in boot,
	// once -designs/-snapshot have rebuilt the scheme registry the
	// journaled scheme refs resolve against.
	var journal *wal.WAL
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
			os.Exit(1)
		}
		journal, err = wal.Open(*walDir, wal.Options{Sync: policy, Metrics: reg, Logger: logger})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
			os.Exit(1)
		}
		logger.Info("campaign wal enabled", "dir", *walDir, "fsync", policy.String())
	}

	srv := newServer(cluster, campaign.Config{
		TenantMaxActive: *tenantMaxActive,
		TenantMaxQueued: *tenantMaxQueued,
		TenantWeights:   weights,
		WAL:             journal,
		Traces:          traces,
	})
	srv.maxSchemes = *maxSchemes
	srv.maxBody = *maxBody
	srv.traces = traces
	srv.instrument(reg, logger)
	if workers != nil {
		srv.fleet = workers
		workers.onChange = srv.migrateSchemes
	}
	if *designs != "" {
		if err := preloadDesigns(cluster, srv, splitList(*designs), os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
			os.Exit(1)
		}
	}
	if *snapshot != "" {
		if err := loadSnapshot(cluster, srv, *snapshot, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
			os.Exit(1)
		}
	}
	if journal != nil {
		// Replay the journal: finished campaigns come back read-only,
		// unfinished ones re-dispatch their unsettled jobs. An interior-
		// corrupt log refuses boot — a torn tail record does not.
		if err := restoreCampaigns(srv, journal, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
			os.Exit(1)
		}
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// Campaign GC used to run only opportunistically on request paths, so
	// an idle server retained finished campaigns (and now their event
	// logs) until the next submission. The ticker makes retention a real
	// upper bound; it also reaps stale canceled campaigns and wakes their
	// parked long-pollers with a terminal progress.
	if *gcInterval > 0 {
		go func() {
			tick := time.NewTicker(*gcInterval)
			defer tick.Stop()
			for range tick.C {
				srv.campaigns.GC(time.Now())
			}
		}()
	}
	done := serveUntilSignal(httpSrv)
	logger.Info("listening", "addr", *addr, "shards", cluster.Shards())
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
		os.Exit(1)
	}
	<-done
	// Stop the campaign dispatcher: jobs still awaiting dispatch settle
	// with a store-closed error instead of dangling. The store detaches
	// journals first, so those shutdown settles never reach the WAL and
	// unfinished campaigns resume on the next boot.
	srv.campaigns.Close()
	if err := journal.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "pooledd: wal close: %v\n", err)
	}
	if *snapshot != "" {
		if err := writeSnapshot(srv, *snapshot); err != nil {
			fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pooledd: snapshot written to %s\n", *snapshot)
	}
}

// runWorker serves only the shard API over a local engine cluster — the
// backend of a federated deployment. Schemes arrive from frontends
// (installed lazily before their first decode), so -designs/-snapshot
// do not apply here.
func runWorker(addr string, shards, cache, workers, queue int, maxSchemes int, maxBody int64, logger *slog.Logger) {
	cluster := engine.NewCluster(engine.ClusterConfig{
		Shards: shards,
		Shard: engine.Config{
			CacheCapacity: cache,
			Workers:       workers,
			QueueDepth:    queue,
		},
	})
	defer cluster.Close()
	reg := metrics.NewRegistry()
	engine.RegisterClusterMetrics(reg, cluster)
	ws := remote.NewServer(cluster, remote.ServerOptions{
		MaxSchemes: maxSchemes, MaxBody: maxBody,
		Logger: logger, Metrics: reg,
	})
	// The worker serves /metrics beside the shard API, so a Prometheus
	// fleet scrapes frontends and workers uniformly.
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("/", ws.Handler())
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := serveUntilSignal(httpSrv)
	logger.Info("worker listening", "addr", addr,
		"shards", cluster.Shards(), "workers_per_shard", cluster.Shard(0).Workers())
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "pooledd: %v\n", err)
		os.Exit(1)
	}
	<-done
}

// serveUntilSignal installs the SIGINT/SIGTERM graceful-shutdown hook
// and returns the channel closed once shutdown completed.
func serveUntilSignal(httpSrv *http.Server) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "pooledd: shutdown: %v\n", err)
		}
	}()
	return done
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseWeights parses the -tenant-weights form "t1=3,t2=1".
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range splitList(s) {
		name, val, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad tenant weight %q, want tenant=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad tenant weight %q: want a positive integer", part)
		}
		out[name] = w
	}
	return out, nil
}
