package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"pooleddata/internal/engine"
	"pooleddata/internal/graph"
	"pooleddata/internal/labio"
)

// The -snapshot file persists the scheme registry across restarts: on
// shutdown the server writes every registered scheme as JSON; on boot
// it rebuilds them through the cluster's caches, so the first request
// after a restart is a cache hit, not a build. Parametric schemes
// (design name + n, m, seed + design knobs) rebuild from their spec
// alone. Ad-hoc uploads are not reproducible from a spec, so their
// graphs are persisted as labio design CSVs in the <snapshot>.designs/
// directory next to the spec file and read back on boot. -designs file
// preloads are still skipped — the files themselves are their
// warm-start path.

// snapshotEntry is one restorable scheme in the snapshot file.
type snapshotEntry struct {
	Design string  `json:"design"`
	N      int     `json:"n"`
	M      int     `json:"m"`
	Seed   uint64  `json:"seed"`
	Gamma  int     `json:"gamma,omitempty"`
	P      float64 `json:"p,omitempty"`
	D      int     `json:"d,omitempty"`

	// AdHoc marks an uploaded design whose graph lives in the snapshot's
	// designs directory under File (a bare filename).
	AdHoc bool   `json:"ad_hoc,omitempty"`
	File  string `json:"file,omitempty"`

	g *graph.Bipartite // the ad-hoc graph to persist; not serialized
}

// designsDir is where a snapshot's ad-hoc design CSVs live.
func designsDir(path string) string { return path + ".designs" }

// snapshotEntries lists the server's restorable schemes in registration
// order: parametric specs plus ad-hoc uploads (with their graphs,
// destined for the designs directory).
func (s *server) snapshotEntries() []snapshotEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]snapshotEntry, 0, len(s.order))
	for _, id := range s.order {
		ent, ok := s.schemes[id]
		if !ok || strings.HasPrefix(ent.Design, "file:") {
			continue
		}
		if ent.AdHoc {
			out = append(out, snapshotEntry{
				Design: ent.Design, N: ent.N, M: ent.M,
				AdHoc: true, File: ent.ID + ".csv", g: ent.scheme.G,
			})
			continue
		}
		out = append(out, snapshotEntry{
			Design: ent.Design, N: ent.N, M: ent.M, Seed: ent.Seed,
			Gamma: ent.Gamma, P: ent.P, D: ent.D,
		})
	}
	return out
}

// writeSnapshot persists the spec list to path atomically (temp file +
// rename), so a crash mid-write never clobbers the previous snapshot.
// Ad-hoc graphs are written as labio CSVs into a staging directory
// that replaces the designs directory only after the spec file has
// landed — a failure at any earlier step leaves the previous snapshot
// (spec file and its CSVs) fully intact.
func writeSnapshot(srv *server, path string) error {
	entries := srv.snapshotEntries()
	dir := designsDir(path)
	staging := dir + ".tmp"
	if err := os.RemoveAll(staging); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	hasAdhoc := false
	for _, se := range entries {
		if !se.AdHoc {
			continue
		}
		if err := os.MkdirAll(staging, 0o755); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		hasAdhoc = true
		f, err := os.Create(filepath.Join(staging, se.File))
		if err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		werr := labio.WriteDesign(f, se.g)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("snapshot: write design %s: %w", se.File, werr)
		}
	}
	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	// The new spec file is in place; swap the designs directory to match
	// (dropping stale CSVs). The window between the two renames is two
	// syscalls wide, and a crash inside it only costs ad-hoc entries,
	// which load fail-soft.
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if hasAdhoc {
		if err := os.Rename(staging, dir); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
	}
	return nil
}

// loadSnapshot rebuilds the snapshot's schemes through the cluster
// (parametric specs land in their owning shard's cache, ad-hoc CSVs
// place round-robin like any upload) and registers them with the
// server. A missing file is not an error — the first boot has no
// snapshot yet. Individual entries fail soft: a design renamed between
// versions, or a deleted ad-hoc CSV, logs a warning instead of refusing
// to boot.
func loadSnapshot(cluster *engine.Cluster, srv *server, path string, logw io.Writer) error {
	buf, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	var entries []snapshotEntry
	if err := json.Unmarshal(buf, &entries); err != nil {
		return fmt.Errorf("snapshot %s: %w", path, err)
	}
	for _, se := range entries {
		if se.AdHoc {
			loadAdhocEntry(cluster, srv, path, se, logw)
			continue
		}
		params := engine.DesignParams{Gamma: se.Gamma, P: se.P, D: se.D}
		des, err := engine.DesignByName(se.Design, params)
		if err != nil {
			fmt.Fprintf(logw, "pooledd: snapshot skip %s n=%d m=%d: %v\n", se.Design, se.N, se.M, err)
			continue
		}
		es, err := cluster.Scheme(des, se.N, se.M, se.Seed)
		if err != nil {
			fmt.Fprintf(logw, "pooledd: snapshot rebuild %s n=%d m=%d failed: %v\n", se.Design, se.N, se.M, err)
			continue
		}
		ent := srv.register(es, des.Name(), se.N, se.M, se.Seed, params, false)
		fmt.Fprintf(logw, "pooledd: snapshot restored scheme %s (%s n=%d m=%d seed=%d shard=%d)\n",
			ent.ID, se.Design, se.N, se.M, se.Seed, es.Home())
	}
	return nil
}

// loadAdhocEntry restores one persisted ad-hoc design. The File field
// is treated as a bare name inside the designs directory — a snapshot
// edited to point elsewhere must not read arbitrary paths.
func loadAdhocEntry(cluster *engine.Cluster, srv *server, path string, se snapshotEntry, logw io.Writer) {
	name := filepath.Base(se.File)
	if name != se.File || name == "." || name == string(filepath.Separator) {
		fmt.Fprintf(logw, "pooledd: snapshot skip ad-hoc design with bad file %q\n", se.File)
		return
	}
	f, err := os.Open(filepath.Join(designsDir(path), name))
	if err != nil {
		fmt.Fprintf(logw, "pooledd: snapshot ad-hoc design %s missing: %v\n", name, err)
		return
	}
	g, err := labio.ReadDesign(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(logw, "pooledd: snapshot ad-hoc design %s unreadable: %v\n", name, err)
		return
	}
	es := cluster.SchemeFromGraph(g)
	ent := srv.register(es, se.Design, g.N(), g.M(), 0, engine.DesignParams{}, true)
	fmt.Fprintf(logw, "pooledd: snapshot restored ad-hoc scheme %s from %s (n=%d m=%d shard=%d)\n",
		ent.ID, name, g.N(), g.M(), es.Home())
}
