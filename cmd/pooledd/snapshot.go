package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strings"

	"pooleddata/internal/engine"
)

// The -snapshot file persists the scheme-cache spec keys across
// restarts: on shutdown the server writes every registered *parametric*
// scheme (design name + n, m, seed + design knobs) as JSON; on boot it
// rebuilds those schemes through the cluster's caches, so the first
// request after a restart is a cache hit, not a build. Ad-hoc uploads
// and -designs file preloads are skipped — their graphs are not
// reproducible from a spec alone (files have their own warm-start path).

// snapshotEntry is one rebuildable scheme spec in the snapshot file.
type snapshotEntry struct {
	Design string  `json:"design"`
	N      int     `json:"n"`
	M      int     `json:"m"`
	Seed   uint64  `json:"seed"`
	Gamma  int     `json:"gamma,omitempty"`
	P      float64 `json:"p,omitempty"`
	D      int     `json:"d,omitempty"`
}

// snapshotEntries lists the server's rebuildable schemes in
// registration order.
func (s *server) snapshotEntries() []snapshotEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]snapshotEntry, 0, len(s.order))
	for _, id := range s.order {
		ent, ok := s.schemes[id]
		if !ok || ent.AdHoc || strings.HasPrefix(ent.Design, "file:") {
			continue
		}
		out = append(out, snapshotEntry{
			Design: ent.Design, N: ent.N, M: ent.M, Seed: ent.Seed,
			Gamma: ent.Gamma, P: ent.P, D: ent.D,
		})
	}
	return out
}

// writeSnapshot persists the spec list to path atomically (temp file +
// rename), so a crash mid-write never clobbers the previous snapshot.
func writeSnapshot(srv *server, path string) error {
	entries := srv.snapshotEntries()
	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// loadSnapshot rebuilds the snapshot's schemes through the cluster (each
// lands in its owning shard's cache) and registers them with the server.
// A missing file is not an error — the first boot has no snapshot yet.
// Individual entries fail soft: a design renamed between versions logs a
// warning instead of refusing to boot.
func loadSnapshot(cluster *engine.Cluster, srv *server, path string, logw io.Writer) error {
	buf, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	var entries []snapshotEntry
	if err := json.Unmarshal(buf, &entries); err != nil {
		return fmt.Errorf("snapshot %s: %w", path, err)
	}
	for _, se := range entries {
		params := engine.DesignParams{Gamma: se.Gamma, P: se.P, D: se.D}
		des, err := engine.DesignByName(se.Design, params)
		if err != nil {
			fmt.Fprintf(logw, "pooledd: snapshot skip %s n=%d m=%d: %v\n", se.Design, se.N, se.M, err)
			continue
		}
		es, err := cluster.Scheme(des, se.N, se.M, se.Seed)
		if err != nil {
			fmt.Fprintf(logw, "pooledd: snapshot rebuild %s n=%d m=%d failed: %v\n", se.Design, se.N, se.M, err)
			continue
		}
		ent := srv.register(es, des.Name(), se.N, se.M, se.Seed, params, false)
		fmt.Fprintf(logw, "pooledd: snapshot restored scheme %s (%s n=%d m=%d seed=%d shard=%d)\n",
			ent.ID, se.Design, se.N, se.M, se.Seed, es.Home())
	}
	return nil
}
