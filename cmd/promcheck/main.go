// Command promcheck validates a Prometheus text exposition — the
// minimal, dependency-free stand-in for `promtool check metrics` that
// `make metrics-lint` runs against a live /metrics scrape in CI. It
// reads from stdin (or the files named as arguments) and exits
// non-zero on the first malformed exposition.
//
//	curl -s localhost:8080/metrics | promcheck
//	promcheck scrape1.txt scrape2.txt
package main

import (
	"fmt"
	"os"

	"pooleddata/metrics"
)

func main() {
	if len(os.Args) < 2 {
		if err := metrics.Lint(os.Stdin); err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: stdin: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("promcheck: stdin OK")
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			os.Exit(1)
		}
		err = metrics.Lint(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("promcheck: %s OK\n", path)
	}
}
