// Command poolgen drives a file-based measurement campaign: it generates
// pooling design CSVs for an external lab pipeline, simulates the
// measurement round for testing, and decodes result files.
//
// Usage:
//
//	poolgen -mode gen -n 10000 -m 600 -seed 1 -design design.csv
//	poolgen -mode simulate -design design.csv -k 16 -results results.csv
//	poolgen -mode decode -design design.csv -results results.csv -k 16
package main

import (
	"flag"
	"fmt"
	"os"

	pooled "pooleddata"

	"pooleddata/internal/rng"
)

func main() {
	mode := flag.String("mode", "gen", "gen | simulate | decode")
	n := flag.Int("n", 1000, "signal length (gen)")
	m := flag.Int("m", 0, "queries (gen; 0: recommended for -k)")
	k := flag.Int("k", 8, "Hamming weight")
	seed := flag.Uint64("seed", 1, "seed (gen: design, simulate: signal)")
	designPath := flag.String("design", "design.csv", "design file path")
	resultsPath := flag.String("results", "results.csv", "results file path")
	flag.Parse()

	switch *mode {
	case "gen":
		if *m <= 0 {
			*m = pooled.RecommendedQueries(*n, *k)
		}
		scheme, err := pooled.New(*n, *m, pooled.Options{Seed: *seed})
		check(err)
		f, err := os.Create(*designPath)
		check(err)
		defer f.Close()
		check(scheme.WriteDesignCSV(f))
		fmt.Printf("wrote design n=%d m=%d to %s\n", *n, *m, *designPath)

	case "simulate":
		scheme := loadScheme(*designPath)
		r := rng.NewRandSeeded(*seed)
		signal := make([]bool, scheme.N())
		for _, i := range r.SampleK(scheme.N(), *k) {
			signal[i] = true
		}
		y := scheme.Measure(signal)
		f, err := os.Create(*resultsPath)
		check(err)
		defer f.Close()
		check(pooled.WriteCountsCSV(f, y))
		fmt.Printf("simulated %d measurements (k=%d, seed=%d) into %s\n",
			len(y), *k, *seed, *resultsPath)

	case "decode":
		scheme := loadScheme(*designPath)
		rf, err := os.Open(*resultsPath)
		check(err)
		defer rf.Close()
		y, err := pooled.ReadCountsCSV(rf)
		check(err)
		support, err := scheme.Reconstruct(y, *k)
		check(err)
		fmt.Printf("reconstructed support (%d entries): %v\n", len(support), support)
		fmt.Printf("consistent with measurements: %v\n", scheme.Consistent(support, y))

	default:
		fmt.Fprintf(os.Stderr, "poolgen: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func loadScheme(path string) *pooled.Scheme {
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	scheme, err := pooled.LoadDesignCSV(f)
	check(err)
	return scheme
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "poolgen:", err)
		os.Exit(1)
	}
}
