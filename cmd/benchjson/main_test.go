package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pooleddata
BenchmarkNoisyBatchDecode/gaussian-8         	       5	 224000000 ns/op
BenchmarkRemoteShardDecode/remote-batch64-8  	      33	  35323774 ns/op	 3100000 B/op	    2590 allocs/op
some test log line that is not a benchmark
PASS
ok  	pooleddata	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	doc := document{Benchmarks: map[string]result{}}
	sc := bufio.NewScanner(strings.NewReader(sample))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var r result
		if err := parseMeasurements(m[3], &r); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		doc.Benchmarks[m[1]] = r
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	g, ok := doc.Benchmarks["BenchmarkNoisyBatchDecode/gaussian"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %+v", doc.Benchmarks)
	}
	if g.NsPerOp != 224000000 {
		t.Fatalf("ns/op = %v, want 224000000", g.NsPerOp)
	}
	if g.AllocsPerOp != nil {
		t.Fatal("allocs reported for a benchmark without -benchmem fields")
	}
	r := doc.Benchmarks["BenchmarkRemoteShardDecode/remote-batch64"]
	if r.BytesPerOp == nil || *r.BytesPerOp != 3100000 {
		t.Fatalf("B/op = %v, want 3100000", r.BytesPerOp)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 2590 {
		t.Fatalf("allocs/op = %v, want 2590", r.AllocsPerOp)
	}
}

func TestRejectsEmptyInput(t *testing.T) {
	err := run(bufio.NewScanner(strings.NewReader("PASS\nok\n")), nil)
	if err == nil {
		t.Fatal("run accepted input with no benchmark lines")
	}
}
