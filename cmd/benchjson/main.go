// benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// numbers as an artifact that later tooling (regression gates, plots)
// consumes without re-parsing the human format.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH.json
//
// Non-benchmark lines (PASS, ok, goos/goarch headers, test log output)
// are ignored, so the tool can sit at the end of any test pipeline. A
// run with zero benchmark lines is an error: it almost always means the
// -bench pattern matched nothing.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// result holds the measurements of one benchmark. Fields beyond
// ns_per_op appear only when the benchmark ran with -benchmem or called
// b.ReportAllocs.
type result struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

type document struct {
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	Pkg        string            `json:"pkg,omitempty"`
	Benchmarks map[string]result `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8  100  12345 ns/op [...]". The
// trailing -N is the GOMAXPROCS suffix, stripped from the JSON key so
// the name is stable across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parseMeasurements(rest string, r *result) error {
	fields := strings.Fields(rest)
	if len(fields)%2 != 0 {
		return fmt.Errorf("odd measurement fields %q", rest)
	}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return fmt.Errorf("measurement %q: %v", fields[i], err)
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			val := v
			r.BytesPerOp = &val
		case "allocs/op":
			val := v
			r.AllocsPerOp = &val
		default:
			// Custom b.ReportMetric units pass through unrecognized; skip.
		}
	}
	return nil
}

func run(in *bufio.Scanner, out *os.File) error {
	doc := document{Benchmarks: map[string]result{}}
	// Allow long lines: benchmark names embed sub-benchmark paths.
	in.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return fmt.Errorf("benchjson: iterations in %q: %v", line, err)
		}
		r := result{Iterations: iters}
		if err := parseMeasurements(m[3], &r); err != nil {
			return fmt.Errorf("benchjson: line %q: %v", line, err)
		}
		doc.Benchmarks[m[1]] = r
	}
	if err := in.Err(); err != nil {
		return fmt.Errorf("benchjson: read stdin: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found on stdin (did -bench match anything?)")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func main() {
	if err := run(bufio.NewScanner(os.Stdin), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
