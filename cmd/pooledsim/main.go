// Command pooledsim runs a single pooled-data reconstruction end to end
// and reports the outcome: design statistics, simulated measurement
// schedule, decoder result, and comparison against the thresholds.
//
// Usage:
//
//	pooledsim -n 10000 -k 16 -m 600
//	pooledsim -n 1000 -theta 0.3 -m 220 -decoder bp -units 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/decoder"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
	"pooleddata/internal/thresholds"
)

func main() {
	n := flag.Int("n", 1000, "signal length")
	k := flag.Int("k", 0, "Hamming weight (0: derive from -theta)")
	theta := flag.Float64("theta", 0.3, "sparsity exponent when -k is 0")
	m := flag.Int("m", 0, "number of parallel queries (0: recommended)")
	seed := flag.Uint64("seed", 42, "master seed")
	decName := flag.String("decoder", "mn", "decoder: mn|refined|bp|greedy|exhaustive|lp")
	desName := flag.String("design", "regular", "design: regular|bernoulli|column")
	noise := flag.Float64("noise", 0, "stddev of additive measurement noise")
	units := flag.Int("units", 0, "parallel processing units L (0: fully parallel)")
	latency := flag.Duration("latency", time.Second, "simulated per-query latency")
	flag.Parse()

	if *k <= 0 {
		*k = thresholds.KFromTheta(*n, *theta)
	}
	if *m <= 0 {
		*m = int(thresholds.MNFiniteSize(*n, *k)) + 1
	}

	var des pooling.Design
	switch *desName {
	case "regular":
		des = pooling.RandomRegular{}
	case "bernoulli":
		des = pooling.Bernoulli{}
	case "column":
		des = pooling.ConstantColumn{}
	default:
		fatal("unknown design %q", *desName)
	}
	var dec decoder.Decoder
	switch *decName {
	case "mn":
		dec = decoder.MN{}
	case "refined":
		dec = decoder.Refined{}
	case "bp":
		dec = decoder.BP{}
	case "greedy":
		dec = decoder.Greedy{}
	case "exhaustive":
		dec = decoder.Exhaustive{}
	case "lp":
		dec = decoder.LP{}
	default:
		fatal("unknown decoder %q", *decName)
	}

	fmt.Printf("instance:   n=%d k=%d (theta=%.3f) m=%d seed=%d\n",
		*n, *k, thresholds.Theta(*n, *k), *m, *seed)
	fmt.Printf("thresholds: m_MN=%.0f m_MN(finite)=%.0f m_para=%.0f\n",
		thresholds.MN(*n, *k), thresholds.MNFiniteSize(*n, *k), thresholds.BPDPara(*n, *k))

	t0 := time.Now()
	g, err := des.Build(*n, *m, pooling.BuildOptions{Seed: rng.DeriveSeed(*seed, 1)})
	if err != nil {
		fatal("build: %v", err)
	}
	buildTime := time.Since(t0)
	st := g.Stats()
	fmt.Printf("design:     %s, %d half-edges, degree %0.1f avg [%d,%d], distinct %.1f avg\n",
		des.Name(), g.HalfEdges(), st.MeanDegree, st.MinDegree, st.MaxDegree, st.MeanDistinctDegree)

	sigma := bitvec.Random(*n, *k, rng.NewRandSeeded(rng.DeriveSeed(*seed, 2)))
	var oracle query.Oracle = query.Additive{}
	if *noise > 0 {
		oracle = query.Noisy{Sigma: *noise}
	}
	res := query.Execute(g, sigma, query.Options{
		Oracle:  oracle,
		Units:   *units,
		Latency: query.ConstantLatency{D: *latency},
		Seed:    rng.DeriveSeed(*seed, 3),
	})
	fmt.Printf("measure:    oracle=%s rounds=%d makespan=%v (sequential would be %v)\n",
		oracle.Name(), res.Rounds, res.Makespan, res.TotalWork)

	t1 := time.Now()
	est, err := dec.Decode(g, res.Y, *k)
	if err != nil {
		fatal("decode: %v", err)
	}
	decodeTime := time.Since(t1)

	overlap := bitvec.OverlapFraction(sigma, est)
	fmt.Printf("decode:     %s in %v (design build %v)\n", dec.Name(), decodeTime, buildTime)
	if est.Equal(sigma) {
		fmt.Printf("result:     EXACT reconstruction (overlap 1.000)\n")
	} else {
		fmt.Printf("result:     overlap %.3f, Hamming distance %d, residual %d\n",
			overlap, sigma.Hamming(est), decoder.Residual(g, est, res.Y))
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "pooledsim: "+format+"\n", args...)
	os.Exit(1)
}
