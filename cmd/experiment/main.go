// Command experiment regenerates the paper's figures (and this
// repository's ablation studies) as gnuplot-ready TSV on stdout or into
// files.
//
// Usage:
//
//	experiment -fig 3 -n 1000 -trials 100 > fig3_n1000.tsv
//	experiment -fig 2 -trials 20
//	experiment -fig headline
//	experiment -fig designs|decoders|partial|noise|info|finite
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pooleddata/internal/experiments"
	"pooleddata/internal/plot"
	"pooleddata/internal/query"
	"pooleddata/internal/thresholds"
)

// plotFlag is set by -plot to render an ASCII chart on stderr alongside
// the TSV.
var plotFlag *bool

func main() {
	fig := flag.String("fig", "3", "experiment: 2|3|4|headline|info|designs|decoders|partial|noise|finite|tradeoff|gt|dense|early")
	n := flag.Int("n", 1000, "signal length (figures 3, 4, ablations)")
	trials := flag.Int("trials", 100, "trials per data point")
	seed := flag.Uint64("seed", 2022, "master seed")
	points := flag.Int("points", 20, "points on the m grid")
	maxM := flag.Int("maxm", 0, "largest m on the grid (0: figure default)")
	thetaList := flag.String("thetas", "0.1,0.2,0.3,0.4", "sparsity exponents")
	nsList := flag.String("ns", "100,300,1000,3000,10000", "n grid for figure 2 / finite")
	plotFlag = flag.Bool("plot", false, "also render an ASCII chart to stderr")
	flag.Parse()

	cfg := experiments.Config{Trials: *trials, Seed: *seed}
	thetas := parseFloats(*thetaList)
	ns := parseInts(*nsList)

	mMax := *maxM
	if mMax == 0 {
		// The paper plots m ≤ n for n=1000 and m ≤ 3000 for n=10000.
		mMax = *n
		if *n >= 10000 {
			mMax = 3 * *n / 10
		}
	}
	grid := experiments.MGrid(mMax, *points)

	start := time.Now()
	var err error
	switch *fig {
	case "2":
		var series []experiments.Series
		series, err = experiments.Fig2(ns, thetas, cfg)
		emit(series, err)
	case "3":
		var series []experiments.Series
		series, err = experiments.Fig3(*n, thetas, grid, cfg)
		emit(series, err)
	case "4":
		var series []experiments.Series
		series, err = experiments.Fig4(*n, thetas, grid, cfg)
		emit(series, err)
	case "headline":
		var res experiments.HeadlineResult
		res, err = experiments.Headline(cfg)
		if err == nil {
			fmt.Printf("# headline claim (§VI): n=%d theta=0.3 k=%d m=%d\n", res.N, res.K, res.M)
			fmt.Printf("mean_overlap\t%.4f\ttrials\t%d\n", res.MeanOverlap, res.Trials)
		}
	case "info":
		// Theorem 2 empirically: uniqueness of the consistent signal.
		nn, kk := 40, 4
		infoMax := *maxM
		if infoMax == 0 {
			infoMax = 80
		}
		ms := experiments.MGrid(infoMax, *points)
		var s experiments.Series
		s, err = experiments.InfoTheoretic(nn, kk, ms, cfg)
		emit([]experiments.Series{s}, err)
	case "designs":
		k := thresholds.KFromTheta(*n, 0.3)
		var series []experiments.Series
		series, err = experiments.CompareDesigns(*n, k, grid, cfg)
		emit(series, err)
	case "decoders":
		k := thresholds.KFromTheta(*n, 0.3)
		var series []experiments.Series
		series, err = experiments.CompareDecoders(*n, k, grid, cfg)
		emit(series, err)
	case "partial":
		k := thresholds.KFromTheta(*n, 0.3)
		m := int(thresholds.MNFiniteSize(*n, k)) + 1
		var pts []experiments.PartialParallelPoint
		pts, err = experiments.PartialParallel(*n, k, m, []int{1, 2, 4, 8, 16, 32, 64, 0}, query.ConstantLatency{D: time.Second}, cfg)
		if err == nil {
			fmt.Printf("# partially parallel execution, n=%d k=%d m=%d\n", *n, k, m)
			fmt.Println("# L\trounds\tmakespan_s\tspeedup\tefficiency")
			for _, p := range pts {
				fmt.Printf("%d\t%d\t%.0f\t%.2f\t%.3f\n", p.Units, p.Rounds, p.Makespan.Seconds(), p.Speedup, p.Efficiency)
			}
		}
	case "noise":
		k := thresholds.KFromTheta(*n, 0.3)
		m := int(1.5*thresholds.MN(*n, k)) + 1
		var s experiments.Series
		s, err = experiments.NoiseRobustness(*n, k, m, parseFloats("0,0.5,1,2,4,8"), cfg)
		emit([]experiments.Series{s}, err)
	case "tradeoff":
		k := thresholds.KFromTheta(*n, 0.3)
		var rows []experiments.TradeoffRow
		rows, err = experiments.AdaptiveVsParallel(*n, k, cfg)
		if err == nil {
			fmt.Printf("# sequential vs parallel, n=%d k=%d\n", *n, k)
			fmt.Println("# strategy\tqueries\trounds\tsuccess")
			for _, r := range rows {
				fmt.Printf("%s\t%.1f\t%.1f\t%.2f\n", r.Strategy, r.Queries, r.Rounds, r.Success)
			}
		}
	case "gt":
		k := thresholds.KFromTheta(*n, 0.3)
		var series []experiments.Series
		series, err = experiments.ThresholdGT(*n, k, 1, grid, cfg)
		emit(series, err)
	case "finite":
		var series []experiments.Series
		series, err = experiments.FiniteSizeCheck(ns, 0.3, cfg)
		emit(series, err)
	case "early":
		k := thresholds.KFromTheta(*n, 0.3)
		var row experiments.EarlyStoppingRow
		row, err = experiments.EarlyStopping(*n, k, 20, cfg)
		if err == nil {
			fmt.Printf("# early stopping with L=20 rounds, n=%d k=%d\n", *n, k)
			fmt.Printf("budget\t%d\nmean_used\t%.1f\nsuccess\t%.2f\n", row.Budget, row.MeanUsed, row.Success)
		}
	case "dense":
		k := *n / 4
		var series []experiments.Series
		series, err = experiments.DenseRegime(*n, k, grid, cfg)
		emit(series, err)
	default:
		fmt.Fprintf(os.Stderr, "experiment: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiment: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "# done in %v\n", time.Since(start).Round(time.Millisecond))
}

func emit(series []experiments.Series, err error) {
	if err != nil {
		return
	}
	if werr := experiments.WriteTSV(os.Stdout, series); werr != nil {
		fmt.Fprintf(os.Stderr, "experiment: write: %v\n", werr)
		os.Exit(1)
	}
	if plotFlag != nil && *plotFlag {
		ps := make([]plot.Series, 0, len(series))
		var vlines []float64
		for _, s := range series {
			p := plot.Series{Label: s.Label}
			for _, pt := range s.Points {
				p.X = append(p.X, pt.X)
				p.Y = append(p.Y, pt.Mean)
				if pt.HasTheor {
					vlines = appendUnique(vlines, pt.Theory)
				}
			}
			ps = append(ps, p)
		}
		fmt.Fprint(os.Stderr, plot.Render(ps, plot.Config{VLines: vlines, XLabel: "x", YLabel: "mean"}))
	}
}

func appendUnique(xs []float64, v float64) []float64 {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment: bad float %q\n", tok)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment: bad int %q\n", tok)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
