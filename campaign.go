package pooled

import (
	"context"
	"time"

	"pooleddata/internal/campaign"
)

// This file is the public face of the campaign subsystem
// (internal/campaign): asynchronous batch decodes whose per-job results
// stream back as they settle. A campaign is the in-process form of what
// cmd/pooledd serves over HTTP — POST /v1/campaigns plus the SSE stream
// on /v1/campaigns/{id}/events — so a Go client embedding the engine
// consumes settlements the same way a curl client does: incrementally,
// exactly once, with a terminal event closing the stream.

// Campaign admission errors, re-exported so callers can errors.Is
// without reaching into internal packages.
var (
	// ErrTenantQuota means the submitting tenant's active-campaign or
	// queued-job quota is exhausted; other tenants are unaffected.
	ErrTenantQuota = campaign.ErrTenantQuota
	// ErrTooManyCampaigns means the engine-wide active-campaign bound was
	// hit.
	ErrTooManyCampaigns = campaign.ErrTooManyCampaigns
)

// CampaignOptions configures StartCampaign.
type CampaignOptions struct {
	// Tenant attributes the campaign for per-tenant quota accounting and
	// fair round-robin dispatch; empty means the shared "default" tenant.
	Tenant string
	// Noise declares how the batch was measured; the zero value means
	// exact counts. The robust decoder for the model is selected
	// server-side, per the noise policy.
	Noise NoiseModel
}

// CampaignEvent is one entry of a campaign's settlement stream: a
// per-job result, or the single terminal event (Done true) that closes
// the channel.
type CampaignEvent struct {
	// Seq is the monotone, gapless event sequence number — a resume
	// cursor for EventsSince-style consumers (the SSE event id).
	Seq int64

	// Done marks the terminal event; State carries the final campaign
	// state ("done", "canceled", or "expired"). Result fields are unset.
	Done  bool
	State string

	// Per-job settlement fields (Done false).
	Index      int
	Support    []int
	Decoder    string
	Residual   int64
	Consistent bool
	DecodeNS   int64
	// Err is set for failed or canceled jobs.
	Err string
}

// CampaignProgress is a point-in-time counter snapshot of a campaign.
type CampaignProgress struct {
	ID        string
	Tenant    string
	State     string
	Total     int
	Completed int
	Failed    int
	Canceled  int
}

// Terminal reports whether the campaign can no longer change.
func (p CampaignProgress) Terminal() bool { return p.State != string(campaign.Running) }

// Settled is the number of jobs that reached a terminal state.
func (p CampaignProgress) Settled() int { return p.Completed + p.Failed + p.Canceled }

// Campaign is a handle on one asynchronous batch decode. Safe for
// concurrent use.
type Campaign struct {
	inner *campaign.Campaign
}

// StartCampaign admits ys as an asynchronous batch decode against the
// scheme and returns immediately; results stream back through Events
// (or poll with Wait). Each count vector becomes one decode job of
// weight k. It fails when the owning shard's queue is saturated or the
// tenant's quota is exhausted — the same admission control pooledd
// turns into 429 responses.
func (e *Engine) StartCampaign(s *Scheme, ys [][]int64, k int, opts CampaignOptions) (*Campaign, error) {
	nm := opts.Noise.internal()
	if err := nm.Validate(); err != nil {
		return nil, err
	}
	cp, err := e.campaigns.Create(campaign.Request{
		Scheme: s.engineScheme(), Batch: ys, K: k,
		Tenant: opts.Tenant, Noise: nm,
	})
	if err != nil {
		return nil, err
	}
	return &Campaign{inner: cp}, nil
}

// ID returns the campaign id.
func (c *Campaign) ID() string { return c.inner.ID() }

// Tenant returns the tenant the campaign is accounted under.
func (c *Campaign) Tenant() string { return c.inner.Tenant() }

// Total returns the number of submitted jobs.
func (c *Campaign) Total() int { return c.inner.Total() }

// Cancel stops the campaign: jobs not yet inside a decoder settle as
// canceled; in-flight decodes run out and still count.
func (c *Campaign) Cancel() { c.inner.Cancel() }

// Progress snapshots the campaign counters.
func (c *Campaign) Progress() CampaignProgress {
	return fromCampaignProgress(c.inner.Progress())
}

// Wait long-polls the campaign: it returns as soon as the campaign is
// terminal, or after d elapsed (or ctx fired), whichever comes first.
func (c *Campaign) Wait(ctx context.Context, d time.Duration) CampaignProgress {
	return fromCampaignProgress(c.inner.Wait(ctx, d))
}

// Events streams the campaign's settlements: every job's result is
// delivered exactly once, in settlement order, followed by one terminal
// event with Done true, after which the channel closes. The stream is
// backed by the campaign's bounded event log, not a per-subscriber
// queue, so any number of subscribers — started before, during, or
// after the campaign ran — observe the identical sequence. Canceling
// ctx closes the channel early without affecting the campaign.
func (c *Campaign) Events(ctx context.Context) <-chan CampaignEvent {
	out := make(chan CampaignEvent, 16)
	go func() {
		defer close(out)
		var cursor int64
		for {
			evs, changed, sealed := c.inner.EventsSince(cursor)
			for _, ev := range evs {
				select {
				case out <- fromCampaignEvent(ev):
					cursor = ev.Seq
				case <-ctx.Done():
					return
				}
			}
			if sealed {
				return
			}
			select {
			case <-changed:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

func fromCampaignEvent(ev campaign.Event) CampaignEvent {
	out := CampaignEvent{Seq: ev.Seq}
	if ev.Terminal() {
		out.Done = true
		out.State = string(ev.State)
		return out
	}
	out.Index = ev.Job.Index
	out.Support = ev.Job.Support
	out.Decoder = ev.Job.Decoder
	out.Residual = ev.Job.Residual
	out.Consistent = ev.Job.Consistent
	out.DecodeNS = ev.Job.DecodeNS
	out.Err = ev.Job.Error
	return out
}

func fromCampaignProgress(p campaign.Progress) CampaignProgress {
	return CampaignProgress{
		ID: p.ID, Tenant: p.Tenant, State: string(p.State), Total: p.Total,
		Completed: p.Completed, Failed: p.Failed, Canceled: p.Canceled,
	}
}
