package binom

import (
	"math"
	"testing"
	"testing/quick"

	"pooleddata/internal/rng"
)

func TestPMFSmallExact(t *testing.T) {
	// Bin(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for k, w := range want {
		if got := PMF(4, 0.5, k); math.Abs(got-w) > 1e-12 {
			t.Fatalf("PMF(4,0.5,%d) = %v, want %v", k, got, w)
		}
	}
}

func TestPMFSupport(t *testing.T) {
	if PMF(5, 0.3, -1) != 0 || PMF(5, 0.3, 6) != 0 {
		t.Fatal("out-of-support pmf must be 0")
	}
	if PMF(5, 0, 0) != 1 || PMF(5, 0, 1) != 0 {
		t.Fatal("p=0 degenerate pmf wrong")
	}
	if PMF(5, 1, 5) != 1 || PMF(5, 1, 4) != 0 {
		t.Fatal("p=1 degenerate pmf wrong")
	}
}

func TestPMFSumsToOne(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewRandSeeded(seed)
		n := 1 + r.Intn(200)
		p := r.Float64()
		sum := 0.0
		for k := 0; k <= n; k++ {
			sum += PMF(n, p, k)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMatchesSummation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewRandSeeded(seed)
		n := 1 + r.Intn(150)
		p := 0.05 + 0.9*r.Float64()
		k := r.Intn(n + 1)
		direct := 0.0
		for i := 0; i <= k; i++ {
			direct += PMF(n, p, i)
		}
		return math.Abs(CDF(n, p, k)-direct) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFEdges(t *testing.T) {
	if CDF(10, 0.5, -1) != 0 || CDF(10, 0.5, 10) != 1 {
		t.Fatal("CDF edges wrong")
	}
	if CDF(10, 0, 0) != 1 || CDF(10, 1, 9) != 0 {
		t.Fatal("degenerate CDF wrong")
	}
}

func TestTailComplement(t *testing.T) {
	n, p := 100, 0.37
	for _, k := range []int{0, 1, 37, 50, 100} {
		if math.Abs(Tail(n, p, k)+CDF(n, p, k-1)-1) > 1e-9 {
			t.Fatalf("Tail/CDF complement broken at k=%d", k)
		}
	}
}

func TestChernoffBoundsAreValid(t *testing.T) {
	// The bounds of Lemma 12 must dominate the exact tails.
	n, p := 500, 0.4
	np := float64(n) * p
	for _, delta := range []float64{0.05, 0.1, 0.3, 0.7} {
		upper := ChernoffUpper(n, p, delta)
		exact := Tail(n, p, int(math.Ceil((1+delta)*np))+1)
		if exact > upper+1e-12 {
			t.Fatalf("upper Chernoff violated at δ=%v: exact %v > bound %v", delta, exact, upper)
		}
		lower := ChernoffLower(n, p, delta)
		exactLow := CDF(n, p, int(math.Floor((1-delta)*np))-1)
		if exactLow > lower+1e-12 {
			t.Fatalf("lower Chernoff violated at δ=%v: exact %v > bound %v", delta, exactLow, lower)
		}
	}
	if ChernoffUpper(10, 0.5, 0) != 1 || ChernoffLower(10, 0.5, -1) != 1 {
		t.Fatal("degenerate δ should give the vacuous bound")
	}
}

func TestTruncatedMean(t *testing.T) {
	// n=1, any p: X ≥ 1 forces X = 1.
	if math.Abs(TruncatedMean(1, 0.3)-1) > 1e-12 {
		t.Fatalf("TruncatedMean(1, .3) = %v", TruncatedMean(1, 0.3))
	}
	// Large np: conditioning is negligible, mean ≈ np.
	if math.Abs(TruncatedMean(10000, 0.5)-5000) > 1e-6 {
		t.Fatal("large-np truncated mean should equal np")
	}
	// Exact small case: n=2, p=0.5 → E[X | X≥1] = (0.5·1+0.25·2)/0.75 = 4/3.
	if math.Abs(TruncatedMean(2, 0.5)-4.0/3) > 1e-12 {
		t.Fatalf("TruncatedMean(2,.5) = %v, want 4/3", TruncatedMean(2, 0.5))
	}
	if TruncatedMean(0, 0.5) != 0 || TruncatedMean(5, 0) != 0 || TruncatedMean(5, 1) != 5 {
		t.Fatal("degenerate truncated means wrong")
	}
}

func TestTruncatedInverseMomentJensenGap(t *testing.T) {
	// Lemma 13: E[X^{-1/2}] → E[X]^{-1/2} as np → ∞. Check the gap
	// shrinks along growing np, and the exact value matches brute force
	// on a small case.
	exactSmall := 0.0
	n, p := 6, 0.4
	norm := 0.0
	for k := 1; k <= n; k++ {
		exactSmall += PMF(n, p, k) / math.Sqrt(float64(k))
		norm += PMF(n, p, k)
	}
	exactSmall /= norm
	if got := TruncatedInverseMoment(n, p, 0.5); math.Abs(got-exactSmall) > 1e-10 {
		t.Fatalf("TruncatedInverseMoment = %v, brute force %v", got, exactSmall)
	}

	gap := func(n int, p float64) float64 {
		return math.Abs(TruncatedInverseMoment(n, p, 0.5)*math.Sqrt(TruncatedMean(n, p)) - 1)
	}
	g1 := gap(20, 0.3)
	g2 := gap(2000, 0.3)
	if g2 >= g1 {
		t.Fatalf("Jensen gap did not shrink: %v -> %v", g1, g2)
	}
	if g2 > 0.01 {
		t.Fatalf("Jensen gap %v still large at np=600", g2)
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	n, p := 300, 0.25
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		k := Quantile(n, p, q)
		if CDF(n, p, k) < q {
			t.Fatalf("CDF at quantile %v too small", q)
		}
		if k > 0 && CDF(n, p, k-1) >= q {
			t.Fatalf("quantile %v not minimal", q)
		}
	}
	if Quantile(10, 0.5, 0) != 0 || Quantile(10, 0.5, 1) != 10 {
		t.Fatal("extreme quantiles wrong")
	}
}

func TestKLBernoulli(t *testing.T) {
	if KLBernoulli(0.3, 0.3) != 0 {
		t.Fatal("KL of identical distributions must be 0")
	}
	if KLBernoulli(0.5, 0.25) <= 0 {
		t.Fatal("KL must be positive for different distributions")
	}
	// D(0 ‖ p) = −ln(1−p).
	if math.Abs(KLBernoulli(0, 0.3)+math.Log(0.7)) > 1e-12 {
		t.Fatalf("D(0||0.3) = %v", KLBernoulli(0, 0.3))
	}
	if !math.IsInf(KLBernoulli(0.5, 0), 1) {
		t.Fatal("KL against a degenerate distribution must be +Inf")
	}
	// Sharp tail: P[Bin(n,p) ≥ an] ≤ exp(−n·D(a‖p)) must dominate exact.
	n, p, a := 200, 0.3, 0.45
	bound := math.Exp(-float64(n) * KLBernoulli(a, p))
	exact := Tail(n, p, int(math.Ceil(a*float64(n))))
	if exact > bound+1e-12 {
		t.Fatalf("KL tail bound violated: %v > %v", exact, bound)
	}
}

// TestDegreeDistributionMatchesBinomial closes the loop with the design:
// the realized Δ*_i degrees of the paper's design follow Bin(m, γ_n).
func TestDegreeDistributionMatchesBinomial(t *testing.T) {
	// Compare the empirical quartiles of Δ* against the binomial
	// quantiles.
	const n, m = 3000, 200
	gammaN := 1 - math.Pow(1-1.0/n, float64((n+1)/2))
	lo := Quantile(m, gammaN, 0.25)
	hi := Quantile(m, gammaN, 0.75)
	if lo >= hi {
		t.Fatal("degenerate quartiles")
	}
	// The binomial quartiles must straddle the mean.
	mean := float64(m) * gammaN
	if float64(lo) > mean || float64(hi) < mean {
		t.Fatalf("quartiles [%d,%d] do not straddle mean %.1f", lo, hi, mean)
	}
}
