// Package binom provides exact binomial distribution computations — the
// probabilistic backbone of the paper's analysis. The degree variables
// (Δ ~ Bin(mΓ, 1/n), Δ* ~ Bin(m, γ)), the neighborhood sums of
// Corollary 4, and the truncated variable X ~ Bin≥1(Γ, q) of Lemma 8 are
// all binomial; this package evaluates their pmf/cdf in stable log space,
// the Chernoff bounds of Lemma 12, and the truncated moments of Lemma 13.
package binom

import "math"

// LogPMF returns ln P[Bin(n,p) = k] computed via lgamma, stable for large
// n. Returns -Inf outside the support.
func LogPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n || n < 0 {
		return math.Inf(-1)
	}
	if p <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	nf, kf := float64(n), float64(k)
	lg := func(x float64) float64 { v, _ := math.Lgamma(x + 1); return v }
	return lg(nf) - lg(kf) - lg(nf-kf) + kf*math.Log(p) + (nf-kf)*math.Log1p(-p)
}

// PMF returns P[Bin(n,p) = k].
func PMF(n int, p float64, k int) float64 {
	return math.Exp(LogPMF(n, p, k))
}

// CDF returns P[Bin(n,p) ≤ k] by direct summation with a recurrence —
// exact up to float rounding, O(k) time.
func CDF(n int, p float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	// Sum from the dominant side for accuracy: if k is past the mean,
	// sum the upper tail instead.
	mean := float64(n) * p
	if float64(k) < mean {
		sum := 0.0
		logterm := LogPMF(n, p, 0)
		term := math.Exp(logterm)
		ratio := p / (1 - p)
		for i := 0; i <= k; i++ {
			sum += term
			term *= ratio * float64(n-i) / float64(i+1)
		}
		if sum > 1 {
			sum = 1
		}
		return sum
	}
	// Upper tail P[X ≥ k+1].
	sum := 0.0
	term := PMF(n, p, n)
	invRatio := (1 - p) / p
	for i := n; i > k; i-- {
		sum += term
		term *= invRatio * float64(i) / float64(n-i+1)
	}
	if sum > 1 {
		sum = 1
	}
	return 1 - sum
}

// Tail returns P[Bin(n,p) ≥ k].
func Tail(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	return 1 - CDF(n, p, k-1)
}

// ChernoffUpper bounds P[Bin(n,p) > (1+δ)np] per Lemma 12:
// exp(−npδ²/(2+δ)) for δ ∈ (0,1).
func ChernoffUpper(n int, p, delta float64) float64 {
	if delta <= 0 {
		return 1
	}
	np := float64(n) * p
	return math.Exp(-np * delta * delta / (2 + delta))
}

// ChernoffLower bounds P[Bin(n,p) < (1−δ)np] per Lemma 12:
// exp(−npδ²/2).
func ChernoffLower(n int, p, delta float64) float64 {
	if delta <= 0 {
		return 1
	}
	np := float64(n) * p
	return math.Exp(-np * delta * delta / 2)
}

// TruncatedMean returns E[X] for X ~ Bin≥1(n, p) — the binomial
// conditioned on being positive (Lemma 8's X): np / (1 − (1−p)^n).
func TruncatedMean(n int, p float64) float64 {
	if p <= 0 || n <= 0 {
		return 0
	}
	if p >= 1 {
		return float64(n)
	}
	denom := -math.Expm1(float64(n) * math.Log1p(-p))
	if denom <= 0 {
		return float64(n) * p
	}
	return float64(n) * p / denom
}

// TruncatedInverseMoment returns E[X^{-s}] for X ~ Bin≥1(n, p), evaluated
// by exact summation. Lemma 13 states E[X^{-s}] = (1+o(1))·E[X]^{-s} for
// np → ∞; this function provides the exact value the lemma approximates,
// so tests can measure the Jensen gap directly.
func TruncatedInverseMoment(n int, p float64, s float64) float64 {
	if n <= 0 || p <= 0 {
		return math.NaN()
	}
	if p >= 1 {
		return math.Pow(float64(n), -s)
	}
	logNorm := -math.Expm1(float64(n) * math.Log1p(-p)) // P[X ≥ 1]
	if logNorm <= 0 {
		return math.NaN()
	}
	sum := 0.0
	// Sum over the effective support: the pmf decays geometrically a few
	// standard deviations from the mean; cap the scan for large n.
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	lo, hi := 1, n
	if n > 1000 {
		lo = int(math.Max(1, mean-12*sd-1))
		hi = int(math.Min(float64(n), mean+12*sd+1))
	}
	for k := lo; k <= hi; k++ {
		sum += math.Exp(LogPMF(n, p, k) - s*math.Log(float64(k)))
	}
	return sum / logNorm
}

// Quantile returns the smallest k with CDF(n,p,k) ≥ q.
func Quantile(n int, p, q float64) int {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return n
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if CDF(n, p, mid) >= q {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// KLBernoulli returns the KL divergence D(a‖p) between Bernoulli(a) and
// Bernoulli(p) in nats — the exponent of the sharp binomial tail bound
// P[Bin(n,p) ≥ an] ≤ exp(−n·D(a‖p)).
func KLBernoulli(a, p float64) float64 {
	if p <= 0 || p >= 1 {
		if a == p {
			return 0
		}
		return math.Inf(1)
	}
	var t1, t2 float64
	if a > 0 {
		t1 = a * math.Log(a/p)
	}
	if a < 1 {
		t2 = (1 - a) * math.Log((1-a)/(1-p))
	}
	return t1 + t2
}
