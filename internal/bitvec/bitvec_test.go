package bitvec

import (
	"math"
	"testing"
	"testing/quick"

	"pooleddata/internal/rng"
)

func TestNewZeroAndBounds(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	if v.Weight() != 0 {
		t.Fatalf("fresh vector weight = %d, want 0", v.Weight())
	}
	for i := 0; i < 130; i++ {
		if v.Get(i) {
			t.Fatalf("fresh vector has one at %d", i)
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetClearFlip(t *testing.T) {
	v := New(100)
	v.Set(0)
	v.Set(63)
	v.Set(64)
	v.Set(99)
	if v.Weight() != 4 {
		t.Fatalf("weight = %d, want 4", v.Weight())
	}
	v.Clear(63)
	if v.Get(63) || v.Weight() != 3 {
		t.Fatal("Clear(63) failed")
	}
	v.Flip(63)
	v.Flip(0)
	if !v.Get(63) || v.Get(0) || v.Weight() != 3 {
		t.Fatal("Flip failed")
	}
	// Set is idempotent.
	v.Set(64)
	if v.Weight() != 3 {
		t.Fatal("double Set changed weight")
	}
}

func TestGetPanicsOutOfRange(t *testing.T) {
	v := New(10)
	for _, i := range []int{-1, 10, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestFromIndicesAndSupportRoundTrip(t *testing.T) {
	idx := []int{5, 1, 99, 64, 63, 5} // out of order, with duplicate
	v := FromIndices(100, idx)
	want := []int{1, 5, 63, 64, 99}
	got := v.Support()
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
}

func TestFromBools(t *testing.T) {
	v := FromBools([]bool{true, false, true, true})
	if v.Len() != 4 || v.Weight() != 3 || !v.Get(0) || v.Get(1) {
		t.Fatalf("FromBools wrong: %v", v)
	}
}

func TestOverlapHammingIdentity(t *testing.T) {
	// |a| + |b| - 2*overlap == hamming, for random vectors.
	r := rng.NewRandSeeded(1)
	f := func(seed uint64) bool {
		rr := rng.NewRandSeeded(seed)
		n := 1 + rr.Intn(500)
		a := Random(n, rr.Intn(n+1), rr)
		b := Random(n, rr.Intn(n+1), rr)
		return a.Weight()+b.Weight()-2*a.Overlap(b) == a.Hamming(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestOverlapSelfIsWeight(t *testing.T) {
	r := rng.NewRandSeeded(2)
	v := Random(777, 55, r)
	if v.Overlap(v) != v.Weight() {
		t.Fatal("Overlap(v,v) != Weight(v)")
	}
	if v.Hamming(v) != 0 {
		t.Fatal("Hamming(v,v) != 0")
	}
	if !v.Equal(v.Clone()) {
		t.Fatal("clone not equal")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if New(10).Equal(New(11)) {
		t.Fatal("vectors of different lengths reported equal")
	}
}

func TestOverlapPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Overlap with mismatched lengths did not panic")
		}
	}()
	New(10).Overlap(New(11))
}

func TestCloneIndependence(t *testing.T) {
	v := FromIndices(70, []int{3, 68})
	w := v.Clone()
	w.Set(10)
	if v.Get(10) {
		t.Fatal("mutating clone changed original")
	}
}

func TestRandomWeightExact(t *testing.T) {
	r := rng.NewRandSeeded(3)
	for _, tc := range []struct{ n, k int }{{1, 0}, {1, 1}, {100, 0}, {100, 100}, {1000, 31}, {64, 64}} {
		v := Random(tc.n, tc.k, r)
		if v.Weight() != tc.k {
			t.Fatalf("Random(%d,%d) weight = %d", tc.n, tc.k, v.Weight())
		}
		if v.Len() != tc.n {
			t.Fatalf("Random(%d,%d) length = %d", tc.n, tc.k, v.Len())
		}
	}
}

func TestRandomPanicsOnBadWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Random(5, 6) did not panic")
		}
	}()
	Random(5, 6, rng.NewRandSeeded(1))
}

func TestRandomUniformMargins(t *testing.T) {
	// Each coordinate should be one with probability k/n across trials.
	r := rng.NewRandSeeded(4)
	const n, k, trials = 30, 6, 30000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		Random(n, k, r).ForEachSet(func(j int) { counts[j]++ })
	}
	want := float64(trials) * k / n
	for j, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("coordinate %d set %d times, want about %.0f", j, c, want)
		}
	}
}

func TestForEachSetOrder(t *testing.T) {
	v := FromIndices(200, []int{199, 0, 100, 64, 63})
	prev := -1
	v.ForEachSet(func(i int) {
		if i <= prev {
			t.Fatalf("ForEachSet out of order: %d after %d", i, prev)
		}
		prev = i
	})
	if prev != 199 {
		t.Fatalf("last index %d, want 199", prev)
	}
}

func TestCountInWithMultiplicity(t *testing.T) {
	v := FromIndices(10, []int{2, 5})
	// index 2 appears twice: counts twice, like a multi-edge in a query.
	if got := v.CountIn([]int{2, 2, 5, 7}); got != 3 {
		t.Fatalf("CountIn = %d, want 3", got)
	}
	if got := v.CountIn(nil); got != 0 {
		t.Fatalf("CountIn(nil) = %d, want 0", got)
	}
}

func TestStringForms(t *testing.T) {
	v := FromIndices(5, []int{0, 4})
	if s := v.String(); s != "10001" {
		t.Fatalf("String = %q, want 10001", s)
	}
	long := New(1000)
	if s := long.String(); s == "" {
		t.Fatal("long String empty")
	}
}

func TestOverlapFraction(t *testing.T) {
	sigma := FromIndices(10, []int{1, 2, 3, 4})
	est := FromIndices(10, []int{2, 3, 9})
	if got := OverlapFraction(sigma, est); got != 0.5 {
		t.Fatalf("OverlapFraction = %v, want 0.5", got)
	}
	if OverlapFraction(New(10), est) != 1 {
		t.Fatal("OverlapFraction with empty sigma should be 1")
	}
	if OverlapFraction(sigma, sigma) != 1 {
		t.Fatal("OverlapFraction(sigma, sigma) should be 1")
	}
}

func TestQuickSupportRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewRandSeeded(seed)
		n := 1 + r.Intn(300)
		k := r.Intn(n + 1)
		v := Random(n, k, r)
		return FromIndices(n, v.Support()).Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
