package bitvec

import (
	"testing"

	"pooleddata/internal/rng"
)

func TestSlabTransposeRoundTrip(t *testing.T) {
	const n = 203
	for _, batch := range []int{0, 1, 63, 64, 65, 130} {
		sigs := make([]*Vector, batch)
		for b := range sigs {
			sigs[b] = Random(n, b%17, rng.NewRandSeeded(uint64(b+1)))
		}
		s := NewSlab(sigs)
		if s.Signals() != batch {
			t.Fatalf("batch %d: Signals() = %d", batch, s.Signals())
		}
		if batch > 0 && s.Len() != n {
			t.Fatalf("batch %d: Len() = %d, want %d", batch, s.Len(), n)
		}
		if want := (batch + 63) / 64; s.Lanes() != want {
			t.Fatalf("batch %d: Lanes() = %d, want %d", batch, s.Lanes(), want)
		}
		for b, sig := range sigs {
			lane := s.Lane(b >> 6)
			bit := uint64(1) << (uint(b) & 63)
			for e := 0; e < n; e++ {
				if got := lane[e]&bit != 0; got != sig.Get(e) {
					t.Fatalf("batch %d signal %d entry %d: slab %v, vector %v", batch, b, e, got, sig.Get(e))
				}
			}
		}
		// Bits beyond the batch size stay zero in the last lane.
		if batch%64 != 0 && batch > 0 {
			lane := s.Lane(s.Lanes() - 1)
			mask := ^uint64(0) << (uint(batch) & 63)
			for e, w := range lane {
				if w&mask != 0 {
					t.Fatalf("batch %d: stray bits %#x at entry %d", batch, w&mask, e)
				}
			}
		}
	}
}

func TestSlabPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSlab accepted mismatched lengths")
		}
	}()
	NewSlab([]*Vector{New(10), New(11)})
}

func TestAndPopcountMatchesOverlap(t *testing.T) {
	r := rng.NewRandSeeded(5)
	for trial := 0; trial < 20; trial++ {
		n := 1 + int(r.Uint64n(300))
		a := Random(n, int(r.Uint64n(uint64(n+1))), r)
		b := Random(n, int(r.Uint64n(uint64(n+1))), r)
		if got, want := AndPopcount(a.Words(), b.Words()), a.Overlap(b); got != want {
			t.Fatalf("n=%d: AndPopcount %d, Overlap %d", n, got, want)
		}
	}
}
