// Package bitvec implements packed binary signal vectors σ ∈ {0,1}^n.
//
// The pooled data problem reconstructs a Hamming-weight-k binary vector;
// everything the algorithms need — weight, overlap ⟨σ,τ⟩, Hamming distance,
// iteration over the support — is provided here on a 64-bit-packed
// representation so that comparisons across millions of entries stay cheap
// during the experiment sweeps.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"

	"pooleddata/internal/rng"
)

// Vector is a fixed-length binary vector. The zero value is unusable; use
// New. Vectors are not safe for concurrent mutation, but any number of
// goroutines may read a vector concurrently.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zero vector of length n. It panics if n < 0.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{n: n, words: make([]uint64, (n+63)/64)}
}

// FromIndices returns a length-n vector with ones exactly at the given
// indices. Duplicate indices are allowed and idempotent.
func FromIndices(n int, indices []int) *Vector {
	v := New(n)
	for _, i := range indices {
		v.Set(i)
	}
	return v
}

// FromBools returns a vector matching the boolean slice.
func FromBools(b []bool) *Vector {
	v := New(len(b))
	for i, x := range b {
		if x {
			v.Set(i)
		}
	}
	return v
}

// Random returns a uniformly random vector of length n with exactly k ones,
// drawn via reservoir-free Floyd sampling. This is the paper's ground-truth
// distribution (σ uniform over weight-k vectors).
func Random(n, k int, r *rng.Rand) *Vector {
	if k < 0 || k > n {
		panic(fmt.Sprintf("bitvec: Random weight %d out of range for length %d", k, n))
	}
	return FromIndices(n, r.SampleK(n, k))
}

// Len returns the vector length n.
func (v *Vector) Len() int { return v.n }

// Get reports whether entry i is one. It panics if i is out of range.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets entry i to one.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear sets entry i to zero.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Flip toggles entry i.
func (v *Vector) Flip(i int) {
	v.check(i)
	v.words[i>>6] ^= 1 << (uint(i) & 63)
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Weight returns the Hamming weight ||v||_1.
func (v *Vector) Weight() int {
	w := 0
	for _, word := range v.words {
		w += bits.OnesCount64(word)
	}
	return w
}

// Overlap returns ⟨v,u⟩, the number of positions where both vectors are
// one. It panics if lengths differ.
func (v *Vector) Overlap(u *Vector) int {
	v.sameLen(u)
	return AndPopcount(v.words, u.words)
}

// Words returns the packed 64-bit words backing v, least-significant bit
// first: bit i lives at words[i/64] position i%64, and bits at positions
// >= Len() are always zero. The slice aliases internal storage and must
// not be modified — it exists so word-parallel kernels (query batch
// execution, frame packing) can read the vector without per-bit Get
// calls.
func (v *Vector) Words() []uint64 { return v.words }

// AndPopcount returns popcount(a AND b) over the common prefix of the
// two word slices — the word-parallel inner product of two packed binary
// rows, 64 positions per bits.OnesCount64.
func AndPopcount(a, b []uint64) int {
	if len(b) < len(a) {
		a = a[:len(b)]
	}
	c := 0
	for i, w := range a {
		c += bits.OnesCount64(w & b[i])
	}
	return c
}

// Hamming returns the Hamming distance between v and u.
func (v *Vector) Hamming(u *Vector) int {
	v.sameLen(u)
	d := 0
	for i, word := range v.words {
		d += bits.OnesCount64(word ^ u.words[i])
	}
	return d
}

// Equal reports whether v and u are identical vectors of the same length.
func (v *Vector) Equal(u *Vector) bool {
	if v.n != u.n {
		return false
	}
	for i, word := range v.words {
		if word != u.words[i] {
			return false
		}
	}
	return true
}

func (v *Vector) sameLen(u *Vector) {
	if v.n != u.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, u.n))
	}
}

// Clone returns an independent copy.
func (v *Vector) Clone() *Vector {
	w := New(v.n)
	copy(w.words, v.words)
	return w
}

// Support returns the sorted indices of the one-entries.
func (v *Vector) Support() []int {
	out := make([]int, 0, 16)
	for wi, word := range v.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, wi*64+b)
			word &= word - 1
		}
	}
	return out
}

// ForEachSet calls fn for every one-entry index in increasing order.
func (v *Vector) ForEachSet(fn func(i int)) {
	for wi, word := range v.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(wi*64 + b)
			word &= word - 1
		}
	}
}

// CountIn returns how many of the given indices are one-entries, counting a
// repeated index as many times as it appears. This is exactly an additive
// query result for the multiset indices.
func (v *Vector) CountIn(indices []int) int {
	c := 0
	for _, i := range indices {
		if v.Get(i) {
			c++
		}
	}
	return c
}

// String renders short vectors as a 0/1 string and long vectors as a
// summary, for debugging and error messages.
func (v *Vector) String() string {
	if v.n <= 128 {
		var b strings.Builder
		b.Grow(v.n)
		for i := 0; i < v.n; i++ {
			if v.Get(i) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	return fmt.Sprintf("bitvec(n=%d, weight=%d)", v.n, v.Weight())
}

// OverlapFraction returns the paper's "overlap" metric between the ground
// truth sigma and an estimate: the fraction of sigma's one-entries that the
// estimate classifies as one. Returns 1 for a weight-zero ground truth.
func OverlapFraction(sigma, estimate *Vector) float64 {
	k := sigma.Weight()
	if k == 0 {
		return 1
	}
	return float64(sigma.Overlap(estimate)) / float64(k)
}
