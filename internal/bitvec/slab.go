package bitvec

import "fmt"

// Slab is a transposed batch of B equal-length signal vectors: where a
// Vector packs one signal's n entries into words, a Slab packs, for each
// entry e, the e-th bit of up to 64 signals into one word. Lane l covers
// signals l·64 .. l·64+63; bit b of Lane(l)[e] is signal (l·64+b)'s value
// at entry e. A kernel walking a query's entry list therefore loads one
// word per (entry, lane) and scores 64 signals at once, instead of
// issuing B per-signal membership tests per entry.
//
// A Slab is an immutable snapshot: mutating the source vectors after
// NewSlab does not update it. Safe for concurrent reads.
type Slab struct {
	n, b  int
	lanes [][]uint64
}

// NewSlab transposes the given signals into lane form. All signals must
// share one length; it panics otherwise. Building costs O(Σ weights) via
// set-bit iteration, so sparse batches transpose in time proportional to
// their support, not n·B.
func NewSlab(signals []*Vector) *Slab {
	b := len(signals)
	s := &Slab{b: b}
	if b == 0 {
		return s
	}
	s.n = signals[0].Len()
	s.lanes = make([][]uint64, (b+63)/64)
	for l := range s.lanes {
		s.lanes[l] = make([]uint64, s.n)
	}
	for bi, sig := range signals {
		if sig.Len() != s.n {
			panic(fmt.Sprintf("bitvec: slab signal %d has length %d, want %d", bi, sig.Len(), s.n))
		}
		lane := s.lanes[bi>>6]
		bit := uint64(1) << (uint(bi) & 63)
		sig.ForEachSet(func(e int) { lane[e] |= bit })
	}
	return s
}

// Len returns the signal length n shared by every lane.
func (s *Slab) Len() int { return s.n }

// Signals returns the batch size B.
func (s *Slab) Signals() int { return s.b }

// Lanes returns the number of 64-signal lanes, ⌈B/64⌉.
func (s *Slab) Lanes() int { return len(s.lanes) }

// Lane returns lane l, indexed by entry: bit b of Lane(l)[e] is signal
// (l·64+b)'s value at entry e; bits beyond the batch size are zero. The
// slice aliases internal storage and must not be modified.
func (s *Slab) Lane(l int) []uint64 { return s.lanes[l] }
