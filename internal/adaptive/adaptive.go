// Package adaptive implements sequential (adaptive) reconstruction from
// additive queries — the regime the paper contrasts with its parallel
// design.
//
// With adaptivity, Bshouty's coin-weighing results show (2+o(1))·m_seq
// queries suffice, half the parallel threshold. This package provides the
// classical adaptive splitting strategy: query the whole signal to learn
// k, then recursively bisect every interval that still contains unknown
// one-entries. It needs Θ(k·log(n/k)) queries issued over Θ(log n)
// adaptive rounds — exponentially fewer rounds than individual testing,
// but still ω(1) rounds, which is exactly what the paper's fully parallel
// scheme eliminates.
//
// The implementation interacts with the signal only through a counting
// oracle, so the information flow is honest: no peeking at σ.
package adaptive

import "fmt"

// CountOracle returns the number of one-entries among the given distinct
// indices. Every invocation models one pooled measurement.
type CountOracle func(indices []int) int64

// Result reports a sequential reconstruction.
type Result struct {
	// Support holds the indices of the one-entries, ascending.
	Support []int
	// Queries is the total number of oracle calls.
	Queries int
	// Rounds is the adaptive depth: queries in the same round depend
	// only on answers from strictly earlier rounds, so a lab with enough
	// units could run each round in one parallel batch.
	Rounds int
}

// Reconstruct recovers the support of a binary signal of length n using
// adaptive interval bisection. It is exact for any signal and any n ≥ 0.
func Reconstruct(n int, oracle CountOracle) (Result, error) {
	if n < 0 {
		return Result{}, fmt.Errorf("adaptive: negative length %d", n)
	}
	res := Result{}
	if n == 0 {
		return res, nil
	}
	// Round 0: one query over everything reveals k (the same trick the
	// paper uses to drop the known-k assumption).
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	k := oracle(all)
	res.Queries++
	res.Rounds++
	if k < 0 || k > int64(n) {
		return Result{}, fmt.Errorf("adaptive: oracle returned %d for a pool of %d", k, n)
	}
	if k == 0 {
		return res, nil
	}

	// Work list of (interval, known count) pairs; each level of the
	// bisection is one adaptive round (its queries are independent given
	// the previous level's answers).
	type task struct {
		lo, hi int // interval [lo, hi)
		count  int64
	}
	frontier := []task{{0, n, k}}
	for len(frontier) > 0 {
		var next []task
		queriesThisRound := 0
		for _, t := range frontier {
			size := t.hi - t.lo
			switch {
			case t.count == 0:
				// no ones: drop
			case int64(size) == t.count:
				// saturated: all ones
				for i := t.lo; i < t.hi; i++ {
					res.Support = append(res.Support, i)
				}
			case size == 1:
				res.Support = append(res.Support, t.lo)
			default:
				mid := t.lo + size/2
				left := oracle(rangeIndices(t.lo, mid))
				queriesThisRound++
				if left < 0 || left > t.count {
					return Result{}, fmt.Errorf("adaptive: inconsistent oracle: %d ones in a sub-pool of an interval with %d", left, t.count)
				}
				next = append(next, task{t.lo, mid, left})
				next = append(next, task{mid, t.hi, t.count - left})
			}
		}
		if queriesThisRound > 0 {
			res.Queries += queriesThisRound
			res.Rounds++
		}
		frontier = next
	}
	sortInts(res.Support)
	return res, nil
}

func rangeIndices(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// sortInts is an insertion sort: supports are tiny (k entries) and the
// bisection already emits them almost sorted.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// QueryBound returns the deterministic worst-case query count of the
// bisection for a weight-k signal of length n: 1 + 2k·⌈log2(n/k)⌉ + O(k),
// used by tests and the comparison experiment.
func QueryBound(n, k int) int {
	if k <= 0 || n <= 0 {
		return 1
	}
	log := 0
	for (1 << log) < (n+k-1)/k {
		log++
	}
	return 1 + 2*k*(log+1)
}
