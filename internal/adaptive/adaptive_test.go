package adaptive

import (
	"testing"
	"testing/quick"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/rng"
	"pooleddata/internal/thresholds"
)

// oracleFor wraps a signal as a counting oracle and tracks pool sizes.
func oracleFor(sigma *bitvec.Vector) CountOracle {
	return func(indices []int) int64 {
		var c int64
		for _, i := range indices {
			if sigma.Get(i) {
				c++
			}
		}
		return c
	}
}

func TestReconstructExactAlways(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewRandSeeded(seed)
		n := 1 + r.Intn(500)
		k := r.Intn(n + 1)
		sigma := bitvec.Random(n, k, r)
		res, err := Reconstruct(n, oracleFor(sigma))
		if err != nil {
			return false
		}
		return bitvec.FromIndices(n, res.Support).Equal(sigma)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructEdgeCases(t *testing.T) {
	// n = 0.
	res, err := Reconstruct(0, func([]int) int64 { return 0 })
	if err != nil || len(res.Support) != 0 || res.Queries != 0 {
		t.Fatalf("n=0: %+v, %v", res, err)
	}
	// All zeros: exactly one query (the k-revealing one).
	sigma := bitvec.New(100)
	res, err = Reconstruct(100, oracleFor(sigma))
	if err != nil || len(res.Support) != 0 {
		t.Fatalf("all-zero: %+v, %v", res, err)
	}
	if res.Queries != 1 || res.Rounds != 1 {
		t.Fatalf("all-zero should need exactly 1 query, got %d", res.Queries)
	}
	// All ones: also one query (saturation detected).
	sigma = bitvec.Random(50, 50, rng.NewRandSeeded(1))
	res, err = Reconstruct(50, oracleFor(sigma))
	if err != nil || len(res.Support) != 50 || res.Queries != 1 {
		t.Fatalf("all-one: %+v, %v", res, err)
	}
	// Negative n.
	if _, err := Reconstruct(-1, nil); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestQueryCountWithinBound(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{1000, 1}, {1000, 8}, {1000, 32}, {10000, 16}} {
		sigma := bitvec.Random(tc.n, tc.k, rng.NewRandSeeded(uint64(tc.n*tc.k)))
		res, err := Reconstruct(tc.n, oracleFor(sigma))
		if err != nil {
			t.Fatal(err)
		}
		if res.Queries > QueryBound(tc.n, tc.k) {
			t.Fatalf("n=%d k=%d: %d queries exceed bound %d", tc.n, tc.k, res.Queries, QueryBound(tc.n, tc.k))
		}
	}
}

func TestRoundsLogarithmic(t *testing.T) {
	sigma := bitvec.Random(1<<14, 10, rng.NewRandSeeded(3))
	res, err := Reconstruct(1<<14, oracleFor(sigma))
	if err != nil {
		t.Fatal(err)
	}
	// Bisection depth ≤ log2(n) + 1 rounds plus the k-round.
	if res.Rounds > 16 {
		t.Fatalf("rounds = %d, want ≤ 16 for n = 2^14", res.Rounds)
	}
	if res.Rounds < 3 {
		t.Fatalf("rounds = %d implausibly small", res.Rounds)
	}
}

func TestSupportSorted(t *testing.T) {
	sigma := bitvec.Random(300, 17, rng.NewRandSeeded(5))
	res, err := Reconstruct(300, oracleFor(sigma))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Support); i++ {
		if res.Support[i-1] >= res.Support[i] {
			t.Fatal("support not strictly increasing")
		}
	}
}

func TestInconsistentOracleDetected(t *testing.T) {
	calls := 0
	bad := func(indices []int) int64 {
		calls++
		if calls == 1 {
			return 3 // k = 3
		}
		return 5 // sub-pool claims more ones than the whole
	}
	if _, err := Reconstruct(100, bad); err == nil {
		t.Fatal("inconsistent oracle not detected")
	}
	if _, err := Reconstruct(10, func([]int) int64 { return 11 }); err == nil {
		t.Fatal("k > n not detected")
	}
}

// TestSequentialVsParallelQueryCounts documents the trade-off the paper
// frames: adaptive bisection uses far fewer queries than the parallel
// threshold, but needs Θ(log n) dependent rounds, while the paper's
// design uses one round.
func TestSequentialVsParallelQueryCounts(t *testing.T) {
	n, k := 10000, 16
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(7))
	res, err := Reconstruct(n, oracleFor(sigma))
	if err != nil {
		t.Fatal(err)
	}
	parallel := thresholds.MN(n, k)
	if float64(res.Queries) >= parallel {
		t.Fatalf("adaptive used %d queries, parallel threshold is %.0f — adaptivity should win on count", res.Queries, parallel)
	}
	if res.Rounds <= 1 {
		t.Fatal("adaptive reconstruction cannot be single-round")
	}
}
