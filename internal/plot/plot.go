// Package plot renders experiment series as ASCII charts for terminal
// inspection — the quick-look counterpart to the gnuplot TSV output. It
// supports multiple overlaid series (one glyph each), optional log-scaled
// axes, and vertical marker lines for thresholds (the dashed verticals of
// the paper's Figs. 3 and 4).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labelled curve.
type Series struct {
	Label string
	X, Y  []float64
}

// Config controls rendering.
type Config struct {
	// Width and Height are the canvas size in characters; defaults 72×20.
	Width, Height int
	// LogX/LogY switch the axes to log10 scale (points with non-positive
	// coordinates are dropped on log axes).
	LogX, LogY bool
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// VLines draws vertical markers at the given x positions ('|').
	VLines []float64
	// YMin/YMax fix the y range; both zero means auto.
	YMin, YMax float64
}

// glyphs assigns one rune per series.
var glyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Render draws the series onto a text canvas and returns it.
func Render(series []Series, cfg Config) string {
	w, h := cfg.Width, cfg.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}

	tx := func(v float64) (float64, bool) {
		if cfg.LogX {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	ty := func(v float64) (float64, bool) {
		if cfg.LogY {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}

	// Collect the transformed extent.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	type pt struct {
		x, y float64
		s    int
	}
	var pts []pt
	for si, s := range series {
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			pts = append(pts, pt{x, y, si})
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	for _, v := range cfg.VLines {
		if x, ok := tx(v); ok {
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
		}
	}
	if len(pts) == 0 {
		return "(no data)\n"
	}
	if cfg.YMin != 0 || cfg.YMax != 0 {
		if y, ok := ty(cfg.YMin); ok {
			ymin = y
		}
		if y, ok := ty(cfg.YMax); ok {
			ymax = y
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	canvas := make([][]byte, h)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", w))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
		if c < 0 {
			c = 0
		}
		if c >= w {
			c = w - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(h-1)))
		if r < 0 {
			r = 0
		}
		if r >= h {
			r = h - 1
		}
		return r
	}

	for _, v := range cfg.VLines {
		if x, ok := tx(v); ok {
			c := col(x)
			for r := 0; r < h; r++ {
				canvas[r][c] = '|'
			}
		}
	}
	for _, p := range pts {
		canvas[row(p.y)][col(p.x)] = glyphs[p.s%len(glyphs)]
	}

	var sb strings.Builder
	// Legend.
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c %s", glyphs[si%len(glyphs)], s.Label)
	}
	if len(series) > 0 {
		sb.WriteByte('\n')
	}
	// Frame with y tick labels at the top, middle and bottom rows.
	inv := func(r int) float64 {
		y := ymax - float64(r)/float64(h-1)*(ymax-ymin)
		if cfg.LogY {
			return math.Pow(10, y)
		}
		return y
	}
	for r := 0; r < h; r++ {
		tick := "          "
		if r == 0 || r == h-1 || r == h/2 {
			tick = fmt.Sprintf("%9.3g ", inv(r))
		}
		sb.WriteString(tick)
		sb.WriteByte('|')
		sb.Write(canvas[r])
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", 10))
	sb.WriteByte('+')
	sb.WriteString(strings.Repeat("-", w))
	sb.WriteByte('\n')
	// X tick labels.
	invX := func(c int) float64 {
		x := xmin + float64(c)/float64(w-1)*(xmax-xmin)
		if cfg.LogX {
			return math.Pow(10, x)
		}
		return x
	}
	left := fmt.Sprintf("%-10.4g", invX(0))
	mid := fmt.Sprintf("%.4g", invX(w/2))
	right := fmt.Sprintf("%.4g", invX(w-1))
	gap1 := w/2 - len(left) + 10 - len(mid)/2
	if gap1 < 1 {
		gap1 = 1
	}
	gap2 := w - w/2 - len(mid)/2 - len(right)
	if gap2 < 1 {
		gap2 = 1
	}
	sb.WriteString(left + strings.Repeat(" ", gap1) + mid + strings.Repeat(" ", gap2) + right + "\n")
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(&sb, "%*s x: %s    y: %s\n", 10, "", cfg.XLabel, cfg.YLabel)
	}
	return sb.String()
}
