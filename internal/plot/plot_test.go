package plot

import (
	"strings"
	"testing"
)

func linear() []Series {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 20, 30, 40, 50}
	return []Series{{Label: "lin", X: xs, Y: ys}}
}

func TestRenderBasics(t *testing.T) {
	out := Render(linear(), Config{Width: 40, Height: 10, XLabel: "m", YLabel: "rate"})
	if !strings.Contains(out, "lin") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("glyphs missing")
	}
	if !strings.Contains(out, "x: m") || !strings.Contains(out, "y: rate") {
		t.Fatal("axis labels missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// legend + 10 canvas rows + frame + xticks + labels = 14
	if len(lines) != 14 {
		t.Fatalf("expected 14 lines, got %d:\n%s", len(lines), out)
	}
}

func TestRenderMonotoneOrientation(t *testing.T) {
	// Increasing series: first glyph column should appear on a *lower*
	// row later (y grows upward).
	out := Render(linear(), Config{Width: 40, Height: 10})
	lines := strings.Split(out, "\n")[1:] // skip the legend line
	var firstRow, lastRow int = -1, -1
	for r, line := range lines {
		c := strings.IndexByte(line, '*')
		if c < 0 {
			continue
		}
		if firstRow == -1 {
			firstRow = r
		}
		lastRow = r
	}
	if firstRow == -1 {
		t.Fatal("no points plotted")
	}
	// Topmost row holds the largest y, which belongs to the largest x:
	// the topmost '*' must be to the right of the bottommost '*'.
	top := strings.IndexByte(lines[firstRow], '*')
	bottom := strings.IndexByte(lines[lastRow], '*')
	if top <= bottom {
		t.Fatalf("orientation wrong: top col %d, bottom col %d", top, bottom)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := Render(nil, Config{}); !strings.Contains(out, "no data") {
		t.Fatalf("empty render = %q", out)
	}
	// Series with only non-positive values on a log axis degenerate to
	// no data.
	s := []Series{{Label: "bad", X: []float64{-1, 0}, Y: []float64{1, 2}}}
	if out := Render(s, Config{LogX: true}); !strings.Contains(out, "no data") {
		t.Fatal("log axis should drop non-positive x")
	}
}

func TestRenderLogAxes(t *testing.T) {
	s := []Series{{Label: "pow", X: []float64{1, 10, 100, 1000}, Y: []float64{1, 10, 100, 1000}}}
	out := Render(s, Config{Width: 30, Height: 8, LogX: true, LogY: true})
	// On log-log a power law is a straight line: check the plotted
	// columns are roughly evenly spaced.
	lines := strings.Split(out, "\n")[1:] // skip the legend line
	var cols []int
	for _, line := range lines {
		if c := strings.IndexByte(line, '*'); c >= 0 {
			cols = append(cols, c)
		}
	}
	if len(cols) != 4 {
		t.Fatalf("want 4 plotted rows, got %d", len(cols))
	}
	d1 := cols[0] - cols[1]
	d2 := cols[1] - cols[2]
	if d1 < 0 {
		d1, d2 = -d1, -d2
	}
	if d2 < 0 {
		t.Fatal("columns not monotone")
	}
	if d1-d2 > 2 || d2-d1 > 2 {
		t.Fatalf("log spacing uneven: %v", cols)
	}
}

func TestRenderVLines(t *testing.T) {
	out := Render(linear(), Config{Width: 40, Height: 6, VLines: []float64{3}})
	if strings.Count(out, "|") < 6+4 { // frame ticks + marker column (points may overwrite)
		t.Fatal("vertical marker missing")
	}
}

func TestRenderMultipleSeriesGlyphs(t *testing.T) {
	s := []Series{
		{Label: "a", X: []float64{1, 2}, Y: []float64{1, 2}},
		{Label: "b", X: []float64{1, 2}, Y: []float64{2, 1}},
	}
	out := Render(s, Config{Width: 20, Height: 6})
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("distinct glyphs missing")
	}
}

func TestRenderFixedYRange(t *testing.T) {
	out := Render(linear(), Config{Width: 30, Height: 6, YMin: 0.0001, YMax: 100})
	if !strings.Contains(out, "100") {
		t.Fatalf("fixed y max not reflected:\n%s", out)
	}
}

func TestRenderDegenerateExtent(t *testing.T) {
	s := []Series{{Label: "const", X: []float64{5}, Y: []float64{7}}}
	out := Render(s, Config{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Fatal("single point not plotted")
	}
}
