package decoder

import (
	"testing"
	"testing/quick"

	"pooleddata/internal/pooling"
	"pooleddata/internal/rng"
)

// TestDecodersNeverPanicOnArbitraryY feeds adversarial result vectors —
// zeros, saturated counts, negatives, random garbage — to every decoder.
// Decoders must return a weight-k estimate (or a clean error), never
// panic: a real pipeline may hand us corrupted measurement files.
func TestDecodersNeverPanicOnArbitraryY(t *testing.T) {
	g, err := pooling.RandomRegular{}.Build(120, 30, pooling.BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	decs := []Decoder{MN{}, Greedy{}, BP{}, Refined{}, LP{Iterations: 20}}
	mk := func(fill func(j int) int64) []int64 {
		y := make([]int64, g.M())
		for j := range y {
			y[j] = fill(j)
		}
		return y
	}
	r := rng.NewRandSeeded(2)
	cases := map[string][]int64{
		"all-zero":   mk(func(int) int64 { return 0 }),
		"saturated":  mk(func(j int) int64 { return int64(g.QuerySize(j)) }),
		"negative":   mk(func(int) int64 { return -5 }),
		"huge":       mk(func(int) int64 { return 1 << 40 }),
		"random":     mk(func(int) int64 { return int64(r.Intn(100)) - 50 }),
		"one-hot":    mk(func(j int) int64 { return int64(j % 2) }),
		"descending": mk(func(j int) int64 { return int64(g.M() - j) }),
	}
	for name, y := range cases {
		for _, d := range decs {
			est, err := d.Decode(g, y, 7)
			if err != nil {
				t.Fatalf("%s on %s: unexpected error %v", d.Name(), name, err)
			}
			if est.Weight() != 7 {
				t.Fatalf("%s on %s: weight %d, want 7", d.Name(), name, est.Weight())
			}
		}
	}
}

// TestExhaustiveCleanErrorOnGarbage verifies the exhaustive decoder fails
// gracefully (never panics) on infeasible result vectors.
func TestExhaustiveCleanErrorOnGarbage(t *testing.T) {
	g, err := pooling.RandomRegular{}.Build(16, 6, pooling.BuildOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range [][]int64{
		{-1, -1, -1, -1, -1, -1},
		{1 << 40, 0, 0, 0, 0, 0},
	} {
		if _, derr := (Exhaustive{}).Decode(g, y, 2); derr == nil {
			t.Fatalf("garbage y %v decoded without error", y)
		}
	}
}

// TestDecodersQuickRandomY is a property sweep: random instances, random
// (possibly infeasible) y, all decoders stay total functions.
func TestDecodersQuickRandomY(t *testing.T) {
	decs := []Decoder{MN{}, Greedy{}, BP{Iterations: 5}, Refined{MaxPasses: 2}}
	f := func(seed uint64) bool {
		r := rng.NewRandSeeded(seed)
		n := 20 + r.Intn(150)
		m := 5 + r.Intn(30)
		k := r.Intn(n/2 + 1)
		g, err := pooling.RandomRegular{}.Build(n, m, pooling.BuildOptions{Seed: seed})
		if err != nil {
			return false
		}
		y := make([]int64, m)
		for j := range y {
			y[j] = int64(r.Intn(2*n) - n/2)
		}
		for _, d := range decs {
			est, err := d.Decode(g, y, k)
			if err != nil || est.Weight() != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
