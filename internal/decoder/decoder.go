// Package decoder implements the reconstruction algorithms the paper
// compares against, behind a single Decoder interface:
//
//   - MN: the paper's Maximum Neighborhood algorithm (wrapping internal/mn).
//   - Exhaustive: the information-theoretic decoder — enumerate all
//     weight-k signals consistent with (G, y). This is the decoder implicit
//     in Theorem 2 ("we can always reconstruct σ ... via an exhaustive
//     search"); it also counts Z_k(G,y), the number of consistent signals,
//     which the information-theoretic experiments measure directly.
//   - Greedy: an OMP-style peeling decoder (pick the entry best correlated
//     with the residual, subtract, repeat) standing in for the matching-
//     pursuit family of §I.B.
//   - BP: a Gaussian-approximation belief propagation decoder standing in
//     for the AMP/graph-code family (Alaoui et al., Karimi et al.).
//   - Refined: MN followed by local swap refinement against the residual.
//
// All decoders see only (G, y, k) — never the ground truth.
package decoder

import (
	"errors"
	"fmt"
	"math"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/mn"
	"pooleddata/internal/parsort"
	"pooleddata/internal/sparse"
)

// Decoder reconstructs a weight-k signal from a design and its results.
type Decoder interface {
	// Name identifies the decoder in experiment output.
	Name() string
	// Decode returns an estimate of the hidden signal. Implementations
	// must not modify y.
	Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error)
}

func validate(g *graph.Bipartite, y []int64, k int) error {
	if len(y) != g.M() {
		return fmt.Errorf("decoder: %d results for %d queries", len(y), g.M())
	}
	if k < 0 || k > g.N() {
		return fmt.Errorf("decoder: weight k=%d out of [0,%d]", k, g.N())
	}
	return nil
}

// Predict returns the response vector the additive oracle would produce
// for the candidate signal est on design g.
func Predict(g *graph.Bipartite, est *bitvec.Vector) []int64 {
	x := make([]int64, g.N())
	est.ForEachSet(func(i int) { x[i] = 1 })
	return sparse.QueryMultiplicity(g).MulVec(x, nil)
}

// Residual returns the L1 misfit Σ_j |y_j − ŷ_j| of a candidate signal.
// A candidate is consistent with the observations iff this is zero.
func Residual(g *graph.Bipartite, est *bitvec.Vector, y []int64) int64 {
	pred := Predict(g, est)
	var s int64
	for j := range y {
		d := y[j] - pred[j]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// Consistent reports whether est reproduces every query result exactly.
func Consistent(g *graph.Bipartite, est *bitvec.Vector, y []int64) bool {
	return Residual(g, est, y) == 0
}

// MN adapts the core algorithm to the Decoder interface.
type MN struct {
	// Workers bounds the SpMV pool; 0 means GOMAXPROCS.
	Workers int
}

// Name implements Decoder.
func (MN) Name() string { return "mn" }

// Decode implements Decoder.
func (d MN) Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error) {
	if err := validate(g, y, k); err != nil {
		return nil, err
	}
	return mn.Reconstruct(g, y, k, mn.Options{Workers: d.Workers}).Estimate, nil
}

// ErrSearchSpaceTooLarge is returned by Exhaustive when C(n,k) exceeds the
// configured budget.
var ErrSearchSpaceTooLarge = errors.New("decoder: exhaustive search space exceeds budget")

// ErrInconsistent is returned when no weight-k signal reproduces y (only
// possible with noisy observations).
var ErrInconsistent = errors.New("decoder: no weight-k signal is consistent with the results")

// Exhaustive is the unbounded-computation decoder of Theorem 2. It
// enumerates weight-k signals in lexicographic order with branch-and-bound
// pruning on the query residuals and returns the first consistent one.
type Exhaustive struct {
	// MaxNodes bounds the number of search tree nodes visited; 0 means
	// 50 million. The decoder fails with ErrSearchSpaceTooLarge beyond it.
	MaxNodes int64
}

// Name implements Decoder.
func (Exhaustive) Name() string { return "exhaustive" }

// Decode implements Decoder.
func (d Exhaustive) Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error) {
	first, _, err := d.search(g, y, k, 1)
	if err != nil {
		return nil, err
	}
	if first == nil {
		return nil, ErrInconsistent
	}
	return first, nil
}

// CountConsistent returns Z_k(G,y) — the number of weight-k signals
// consistent with the results — up to limit (0 means unlimited except by
// MaxNodes). The first consistent signal found is returned alongside.
// Counting Z_k is how the information-theoretic experiments decide whether
// the instance is uniquely decodable.
func (d Exhaustive) CountConsistent(g *graph.Bipartite, y []int64, k int, limit int64) (*bitvec.Vector, int64, error) {
	return d.search(g, y, k, limit)
}

func (d Exhaustive) search(g *graph.Bipartite, y []int64, k int, limit int64) (*bitvec.Vector, int64, error) {
	if err := validate(g, y, k); err != nil {
		return nil, 0, err
	}
	n, m := g.N(), g.M()
	budget := d.MaxNodes
	if budget <= 0 {
		budget = 50_000_000
	}
	residual := make([]int64, m)
	copy(residual, y)
	// remCap[i][j] would be the max the suffix can still add; instead use
	// cheap pruning: a branch dies when any residual goes negative, or
	// when fewer than (needed) entries remain.
	chosen := make([]int, 0, k)
	var first *bitvec.Vector
	var count int64
	var nodes int64

	var rec func(start, left int) error
	rec = func(start, left int) error {
		nodes++
		if nodes > budget {
			return ErrSearchSpaceTooLarge
		}
		if left == 0 {
			for j := 0; j < m; j++ {
				if residual[j] != 0 {
					return nil
				}
			}
			count++
			if first == nil {
				first = bitvec.FromIndices(n, chosen)
			}
			return nil
		}
		for i := start; i <= n-left; i++ {
			qs, mu := g.EntryQueries(i)
			ok := true
			for p, j := range qs {
				residual[j] -= int64(mu[p])
				if residual[j] < 0 {
					ok = false
				}
			}
			if ok {
				chosen = append(chosen, i)
				if err := rec(i+1, left-1); err != nil {
					return err
				}
				chosen = chosen[:len(chosen)-1]
				if limit > 0 && count >= limit {
					// Undo and abort: caller only needs "at least limit".
					for p, j := range qs {
						residual[j] += int64(mu[p])
					}
					return nil
				}
			}
			for p, j := range qs {
				residual[j] += int64(mu[p])
			}
		}
		return nil
	}
	if err := rec(0, k); err != nil {
		return nil, count, err
	}
	return first, count, nil
}

// Greedy is the OMP-style peeling decoder: k rounds, each selecting the
// entry whose distinct-neighborhood residual sum is largest (centralized
// by degree, mirroring the MN score), then subtracting the entry's exact
// contribution from the residual.
type Greedy struct{}

// Name implements Decoder.
func (Greedy) Name() string { return "greedy-omp" }

// Decode implements Decoder.
func (Greedy) Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error) {
	if err := validate(g, y, k); err != nil {
		return nil, err
	}
	n := g.N()
	residual := make([]int64, len(y))
	copy(residual, y)
	est := bitvec.New(n)
	// remaining[i] tracks how many picks are still pending; simple linear
	// scans keep this O(k·(n + E/m·deg)) which is fine at experiment scale.
	for round := 0; round < k; round++ {
		bestIdx := -1
		bestScore := math.Inf(-1)
		for i := 0; i < n; i++ {
			if est.Get(i) {
				continue
			}
			qs, _ := g.EntryQueries(i)
			var s int64
			for _, j := range qs {
				s += residual[j]
			}
			// Centralize by the residual weight left in the neighborhood:
			// score = Ψ_i^res − Δ*_i·(k−round)/2.
			score := float64(s) - float64(len(qs))*float64(k-round)/2
			if score > bestScore || (score == bestScore && bestIdx >= 0 && i < bestIdx) {
				bestScore = score
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		est.Set(bestIdx)
		qs, mu := g.EntryQueries(bestIdx)
		for p, j := range qs {
			residual[j] -= int64(mu[p])
		}
	}
	return est, nil
}

// Refined runs MN and then hill-climbs with single swaps (drop a selected
// entry, add an unselected one) as long as the L1 residual strictly
// decreases. Swap candidates are limited to the highest-scoring
// non-selected entries to keep each pass near-linear.
type Refined struct {
	// MaxPasses bounds the number of full swap sweeps; 0 means 8.
	MaxPasses int
	// CandidatePool is the number of top non-selected entries considered
	// for insertion; 0 means 4k (at least 32).
	CandidatePool int
}

// Name implements Decoder.
func (Refined) Name() string { return "mn-refined" }

// Decode implements Decoder.
func (d Refined) Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error) {
	if err := validate(g, y, k); err != nil {
		return nil, err
	}
	res := mn.Reconstruct(g, y, k, mn.Options{KeepScores: true})
	est := res.Estimate
	if k == 0 || k == g.N() {
		return est, nil
	}
	pool := d.CandidatePool
	if pool <= 0 {
		pool = 4 * k
		if pool < 32 {
			pool = 32
		}
	}
	passes := d.MaxPasses
	if passes <= 0 {
		passes = 8
	}

	// Per-query predicted responses for the current estimate, accumulated
	// from the k selected entries' edges (k·deg work; building the full
	// query-side matrix as Predict does would cost a whole Γm pass per
	// decode, dominating the refinement itself on large designs).
	pred := make([]int64, g.M())
	est.ForEachSet(func(i int) {
		qs, mu := g.EntryQueries(i)
		for p, j := range qs {
			pred[j] += int64(mu[p])
		}
	})
	misfit := int64(0)
	for j := range y {
		misfit += abs64(y[j] - pred[j])
	}
	if misfit == 0 {
		return est, nil
	}

	// Candidate insertions: best-scoring zeros. Candidate removals: all
	// current ones (k of them). At most k of the top k+pool scores are
	// selected entries, so that prefix always yields pool candidates —
	// no need to rank all n scores.
	top := k + pool
	if top > g.N() {
		top = g.N()
	}
	order := parsort.TopKDesc(res.Scores, top)
	candIn := make([]int, 0, pool)
	for _, i := range order {
		if !est.Get(int(i)) {
			candIn = append(candIn, int(i))
			if len(candIn) == pool {
				break
			}
		}
	}

	// outAdj[j] is the multiplicity of the current removal candidate in
	// query j and outMask its packed membership over queries, both filled
	// (and cleared) once per candidate so each swapDelta is O(deg(in))
	// instead of O(deg(out) + deg(in)): the removal half of the delta is
	// identical for every insertion candidate and hoisted out of the
	// candidate loop, and the insertion half tests "does out touch query
	// j" with one word-indexed bit instead of a dense int64 load.
	outAdj := make([]int64, g.M())
	outMask := bitvec.New(g.M())
	for pass := 0; pass < passes && misfit > 0; pass++ {
		improved := false
		ones := est.Support()
		for _, out := range ones {
			qsOut, muOut := g.EntryQueries(out)
			var removeDelta int64
			for p, j := range qsOut {
				outAdj[j] = int64(muOut[p])
				outMask.Set(int(j))
				before := abs64(y[j] - pred[j])
				after := abs64(y[j] - (pred[j] - int64(muOut[p])))
				removeDelta += after - before
			}
			for ci, in := range candIn {
				if in < 0 || est.Get(in) {
					continue
				}
				delta := removeDelta + insertDelta(g, y, pred, outAdj, outMask.Words(), in)
				if delta < 0 {
					// Commit the swap.
					qsIn, muIn := g.EntryQueries(in)
					for p, j := range qsOut {
						pred[j] -= int64(muOut[p])
					}
					for p, j := range qsIn {
						pred[j] += int64(muIn[p])
					}
					est.Clear(out)
					est.Set(in)
					candIn[ci] = out // the removed entry becomes a candidate
					misfit += delta
					improved = true
					break
				}
			}
			for _, j := range qsOut {
				outAdj[j] = 0
				outMask.Clear(int(j))
			}
			if misfit == 0 {
				break
			}
		}
		if !improved {
			break
		}
	}
	return est, nil
}

// insertDelta returns the change in L1 misfit contributed by adding
// entry in, on top of an already-applied removal described by outAdj
// (the removed entry's dense per-query multiplicity) and outWords (its
// packed query membership). The word-indexed bit test keeps the common
// disjoint-neighborhood case to one load per query, reading outAdj only
// where the two neighborhoods actually intersect.
func insertDelta(g *graph.Bipartite, y, pred, outAdj []int64, outWords []uint64, in int) int64 {
	var delta int64
	qsIn, muIn := g.EntryQueries(in)
	for p, j := range qsIn {
		// If j is also touched by out, account on top of the removal.
		var adj int64
		if outWords[j>>6]&(1<<(uint(j)&63)) != 0 {
			adj = outAdj[j]
		}
		before := abs64(y[j] - (pred[j] - adj))
		after := abs64(y[j] - (pred[j] - adj + int64(muIn[p])))
		delta += after - before
	}
	return delta
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
