package decoder

import (
	"math"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/parsort"
	"pooleddata/internal/sparse"
)

// LP is a convex-relaxation decoder standing in for the ℓ1/basis-pursuit
// family of §I.B (Donoho–Tanner, Foucart–Rauhut): it relaxes σ ∈ {0,1}^n
// to x ∈ [0,1]^n, minimizes ‖Aᵀx − y‖² by accelerated projected gradient
// descent (FISTA with box projection), and rounds the relaxed solution to
// the k largest coordinates. The box constraints make an explicit
// sparsity penalty unnecessary at the query counts of interest, matching
// the (2+o(1))·k·ln(n/k) behaviour quoted in the paper.
type LP struct {
	// Iterations bounds the FISTA steps; 0 means 200.
	Iterations int
	// Tolerance stops early when the relative residual improvement drops
	// below it; 0 means 1e-7.
	Tolerance float64
}

// Name implements Decoder.
func (LP) Name() string { return "lp-relaxation" }

// Decode implements Decoder.
func (d LP) Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error) {
	if err := validate(g, y, k); err != nil {
		return nil, err
	}
	n, m := g.N(), g.M()
	if k == 0 {
		return bitvec.New(n), nil
	}
	iters := d.Iterations
	if iters <= 0 {
		iters = 200
	}
	tol := d.Tolerance
	if tol <= 0 {
		tol = 1e-7
	}

	// A: n×m multiplicity matrix (entry side); Aᵀ: m×n (query side).
	a := sparse.EntryMultiplicity(g)
	at := sparse.QueryMultiplicity(g)

	yf := make([]float64, m)
	for j, v := range y {
		yf[j] = float64(v)
	}

	// Lipschitz constant of the gradient: L = ‖A‖₂², estimated by a few
	// rounds of power iteration on A Aᵀ.
	l := operatorNormSquared(a, at, n, m)
	if l <= 0 {
		l = 1
	}
	step := 1 / l

	x := make([]float64, n)
	z := make([]float64, n) // FISTA extrapolation point
	prevX := make([]float64, n)
	init := float64(k) / float64(n)
	for i := range x {
		x[i] = init
		z[i] = init
	}
	resid := make([]float64, m)
	grad := make([]float64, n)
	tPrev := 1.0
	prevObj := math.Inf(1)

	for it := 0; it < iters; it++ {
		// resid = Aᵀz − y; grad = A·resid.
		at.MulVecFloat(z, resid)
		for j := range resid {
			resid[j] -= yf[j]
		}
		a.MulVecFloat(resid, grad)

		copy(prevX, x)
		obj := 0.0
		for j := range resid {
			obj += resid[j] * resid[j]
		}
		for i := range x {
			v := z[i] - step*grad[i]
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			x[i] = v
		}
		// FISTA momentum.
		tNext := (1 + math.Sqrt(1+4*tPrev*tPrev)) / 2
		beta := (tPrev - 1) / tNext
		for i := range z {
			z[i] = x[i] + beta*(x[i]-prevX[i])
		}
		tPrev = tNext

		if prevObj-obj < tol*math.Max(prevObj, 1) && it > 10 {
			break
		}
		prevObj = obj
	}

	est := bitvec.New(n)
	for _, i := range parsort.TopK(x, k) {
		est.Set(int(i))
	}
	return est, nil
}

// operatorNormSquared estimates ‖A‖₂² by power iteration on v ↦ A(Aᵀv)
// over entry space.
func operatorNormSquared(a, at *sparse.CSR, n, m int) float64 {
	v := make([]float64, n)
	for i := range v {
		// Deterministic non-degenerate start vector.
		v[i] = 1 + float64(i%7)/7
	}
	tmp := make([]float64, m)
	next := make([]float64, n)
	lambda := 0.0
	for it := 0; it < 30; it++ {
		at.MulVecFloat(v, tmp)
		a.MulVecFloat(tmp, next)
		norm := 0.0
		for _, x := range next {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		lambda = norm
		for i := range v {
			v[i] = next[i] / norm
		}
	}
	return lambda
}
