package decoder

import (
	"errors"
	"testing"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
	"pooleddata/internal/thresholds"
)

func instance(t testing.TB, n, k, m int, seed uint64) (*graph.Bipartite, *bitvec.Vector, []int64) {
	t.Helper()
	g, err := pooling.RandomRegular{}.Build(n, m, pooling.BuildOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(seed^0xbeef))
	res := query.Execute(g, sigma, query.Options{Seed: seed})
	return g, sigma, res.Y
}

func TestPredictMatchesOracle(t *testing.T) {
	g, sigma, y := instance(t, 150, 7, 40, 1)
	pred := Predict(g, sigma)
	for j := range y {
		if pred[j] != y[j] {
			t.Fatalf("Predict diverges from oracle at query %d", j)
		}
	}
	if !Consistent(g, sigma, y) || Residual(g, sigma, y) != 0 {
		t.Fatal("ground truth must be consistent with its own results")
	}
}

func TestResidualPositiveForWrongSignal(t *testing.T) {
	g, sigma, y := instance(t, 150, 7, 60, 2)
	wrong := sigma.Clone()
	// Move one one-entry somewhere else.
	sup := wrong.Support()
	wrong.Clear(sup[0])
	for i := 0; i < 150; i++ {
		if !sigma.Get(i) {
			wrong.Set(i)
			break
		}
	}
	if Consistent(g, wrong, y) {
		t.Fatal("a perturbed signal should not be consistent at m=60 (w.h.p.)")
	}
}

func TestAllDecodersValidateInput(t *testing.T) {
	g, _, y := instance(t, 50, 3, 20, 3)
	decs := []Decoder{MN{}, Exhaustive{}, Greedy{}, BP{}, Refined{}}
	for _, d := range decs {
		if _, err := d.Decode(g, y[:5], 3); err == nil {
			t.Fatalf("%s accepted short y", d.Name())
		}
		if _, err := d.Decode(g, y, -1); err == nil {
			t.Fatalf("%s accepted negative k", d.Name())
		}
		if _, err := d.Decode(g, y, 51); err == nil {
			t.Fatalf("%s accepted k > n", d.Name())
		}
		if d.Name() == "" {
			t.Fatal("empty decoder name")
		}
	}
}

func TestAllDecodersRecoverEasyInstance(t *testing.T) {
	// Far above every threshold all decoders must succeed.
	n, k := 120, 3
	m := int(3 * thresholds.MN(n, k))
	g, sigma, y := instance(t, n, k, m, 4)
	for _, d := range []Decoder{MN{}, Exhaustive{}, Greedy{}, BP{}, Refined{}} {
		est, err := d.Decode(g, y, k)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if !est.Equal(sigma) {
			t.Fatalf("%s failed on an easy instance (overlap %.2f)",
				d.Name(), bitvec.OverlapFraction(sigma, est))
		}
	}
}

func TestDecodersReturnWeightK(t *testing.T) {
	// Below threshold estimates are wrong but must still have weight k
	// (except Exhaustive, which may fail to find any consistent signal
	// only in noisy settings — with exact data σ itself is consistent).
	n, k, m := 200, 8, 40
	g, _, y := instance(t, n, k, m, 5)
	for _, d := range []Decoder{MN{}, Greedy{}, BP{}, Refined{}} {
		est, err := d.Decode(g, y, k)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if est.Weight() != k {
			t.Fatalf("%s returned weight %d, want %d", d.Name(), est.Weight(), k)
		}
	}
}

func TestExhaustiveFindsConsistentSignal(t *testing.T) {
	n, k, m := 30, 3, 25
	g, sigma, y := instance(t, n, k, m, 6)
	est, err := (Exhaustive{}).Decode(g, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if !Consistent(g, est, y) {
		t.Fatal("exhaustive returned an inconsistent signal")
	}
	// With this many queries on n=30 the solution is unique, so it must
	// be σ itself.
	if !est.Equal(sigma) {
		t.Fatal("exhaustive found a different consistent signal where σ should be unique")
	}
}

func TestExhaustiveCountConsistent(t *testing.T) {
	// With zero queries every weight-k signal is consistent: C(6,2) = 15.
	g, err := pooling.RandomRegular{}.Build(6, 0, pooling.BuildOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, count, err := (Exhaustive{}).CountConsistent(g, nil, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if count != 15 {
		t.Fatalf("Z_2 with no queries = %d, want C(6,2) = 15", count)
	}
}

func TestExhaustiveCountLimit(t *testing.T) {
	g, err := pooling.RandomRegular{}.Build(8, 0, pooling.BuildOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	first, count, err := (Exhaustive{}).CountConsistent(g, nil, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count with limit 2 = %d", count)
	}
	if first == nil || first.Weight() != 2 {
		t.Fatal("first consistent signal missing or wrong weight")
	}
}

func TestExhaustiveUniquenessTracksTheorem2(t *testing.T) {
	// Around the information-theoretic threshold, uniqueness of the
	// consistent signal should flip from "usually not" to "usually yes".
	// Tiny n keeps the search cheap; the first-moment behaviour is still
	// visible.
	n, k := 40, 4
	mLow, mHigh := 4, 60
	uniq := func(m int) int {
		u := 0
		for seed := uint64(0); seed < 10; seed++ {
			g, _, y := instance(t, n, k, m, 100+seed)
			_, count, err := (Exhaustive{}).CountConsistent(g, y, k, 2)
			if err != nil {
				t.Fatal(err)
			}
			if count == 1 {
				u++
			}
		}
		return u
	}
	lo, hi := uniq(mLow), uniq(mHigh)
	if hi <= lo {
		t.Fatalf("uniqueness did not improve with m: %d/10 at m=%d vs %d/10 at m=%d",
			lo, mLow, hi, mHigh)
	}
	if hi < 9 {
		t.Fatalf("only %d/10 unique at m=%d", hi, mHigh)
	}
}

func TestExhaustiveBudget(t *testing.T) {
	// One unsatisfiable query forces the search to sweep a large portion
	// of the C(60,6) tree; a 50-node budget must trip first.
	g, _, _ := instance(t, 60, 6, 1, 9)
	bad := []int64{int64(g.QuerySize(0)) + 1}
	_, err := (Exhaustive{MaxNodes: 50}).Decode(g, bad, 6)
	if !errors.Is(err, ErrSearchSpaceTooLarge) {
		t.Fatalf("expected budget error, got %v", err)
	}
}

func TestExhaustiveInconsistent(t *testing.T) {
	// Corrupt the results so no weight-k signal can reproduce them: make a
	// query claim more ones than its pool size.
	g, _, y := instance(t, 20, 2, 10, 10)
	bad := make([]int64, len(y))
	copy(bad, y)
	bad[0] = int64(g.QuerySize(0)) + 5
	_, err := (Exhaustive{}).Decode(g, bad, 2)
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("expected inconsistency error, got %v", err)
	}
}

func TestGreedyBeatsNothing(t *testing.T) {
	// Greedy with k=0 returns the zero vector.
	g, _, y := instance(t, 50, 0, 10, 11)
	est, err := (Greedy{}).Decode(g, y, 0)
	if err != nil || est.Weight() != 0 {
		t.Fatal("greedy k=0 wrong")
	}
}

func TestRefinedNeverWorseThanMN(t *testing.T) {
	// The refinement only commits residual-decreasing swaps, so its final
	// residual is at most MN's.
	for seed := uint64(0); seed < 10; seed++ {
		n, k := 200, 8
		m := int(0.8 * thresholds.MN(n, k)) // hard-ish regime
		g, _, y := instance(t, n, k, m, 20+seed)
		mnEst, err := (MN{}).Decode(g, y, k)
		if err != nil {
			t.Fatal(err)
		}
		refEst, err := (Refined{}).Decode(g, y, k)
		if err != nil {
			t.Fatal(err)
		}
		if Residual(g, refEst, y) > Residual(g, mnEst, y) {
			t.Fatalf("seed %d: refinement increased the residual", seed)
		}
	}
}

func TestBPZeroK(t *testing.T) {
	g, _, y := instance(t, 50, 0, 10, 12)
	est, err := (BP{}).Decode(g, y, 0)
	if err != nil || est.Weight() != 0 {
		t.Fatal("bp k=0 wrong")
	}
}

func TestBPCustomParameters(t *testing.T) {
	n, k := 150, 5
	m := int(2 * thresholds.MN(n, k))
	g, sigma, y := instance(t, n, k, m, 13)
	est, err := (BP{Iterations: 50, Damping: 0.3}).Decode(g, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Equal(sigma) {
		t.Fatal("BP with custom parameters failed an easy instance")
	}
}

func TestDecoderComparisonMidRegime(t *testing.T) {
	// Between the info-theoretic and the MN threshold, the smarter
	// decoders (BP, Refined) should find at least as many one-entries as
	// plain MN on average — the "who wins" shape of the baseline
	// comparison.
	n, k := 300, 10
	m := int(0.75 * thresholds.MN(n, k))
	var mnHits, bpHits, refHits int
	for seed := uint64(0); seed < 15; seed++ {
		g, sigma, y := instance(t, n, k, m, 40+seed)
		a, _ := (MN{}).Decode(g, y, k)
		b, _ := (BP{}).Decode(g, y, k)
		c, _ := (Refined{}).Decode(g, y, k)
		mnHits += sigma.Overlap(a)
		bpHits += sigma.Overlap(b)
		refHits += sigma.Overlap(c)
	}
	if refHits < mnHits {
		t.Fatalf("refined (%d) found fewer ones than MN (%d)", refHits, mnHits)
	}
	if bpHits < mnHits/2 {
		t.Fatalf("bp (%d) dramatically underperforms MN (%d)", bpHits, mnHits)
	}
}
