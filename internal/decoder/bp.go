package decoder

import (
	"math"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/parsort"
)

// BP is a Gaussian-approximation belief propagation decoder on the pooling
// factor graph — the same family as the AMP decoder of Alaoui et al. that
// the paper cites for the dense regime.
//
// Each iteration treats the contribution of all other entries to a query
// as Gaussian with matched mean and variance (accurate because Γ = n/2
// entries contribute), turns each neighboring query result into a
// log-likelihood-ratio increment for the entry, and updates the posterior
// marginals with damping. Decoding selects the k largest marginals.
type BP struct {
	// Iterations is the number of message-passing rounds; 0 means 30.
	Iterations int
	// Damping ∈ [0,1) blends old and new marginals; 0 means 0.5.
	Damping float64
}

// Name implements Decoder.
func (BP) Name() string { return "bp" }

// Decode implements Decoder.
func (d BP) Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error) {
	if err := validate(g, y, k); err != nil {
		return nil, err
	}
	n, m := g.N(), g.M()
	if k == 0 {
		return bitvec.New(n), nil
	}
	iters := d.Iterations
	if iters <= 0 {
		iters = 30
	}
	damp := d.Damping
	if damp <= 0 || damp >= 1 {
		damp = 0.5
	}

	prior := float64(k) / float64(n)
	logPrior := math.Log(prior / (1 - prior))
	p := make([]float64, n)
	for i := range p {
		p[i] = prior
	}
	mean := make([]float64, m)
	variance := make([]float64, m)

	for it := 0; it < iters; it++ {
		// Query-side Gaussian moments of Σ A_ij X_i under the current
		// marginals.
		for j := 0; j < m; j++ {
			es, mu := g.QueryEntries(j)
			var mj, vj float64
			for t, e := range es {
				a := float64(mu[t])
				pe := p[e]
				mj += a * pe
				vj += a * a * pe * (1 - pe)
			}
			mean[j] = mj
			variance[j] = vj
		}
		// Entry-side LLR updates with cavity (leave-one-out) moments.
		for i := 0; i < n; i++ {
			qs, mu := g.EntryQueries(i)
			llr := logPrior
			pi := p[i]
			for t, j := range qs {
				a := float64(mu[t])
				cavMean := mean[j] - a*pi
				cavVar := variance[j] - a*a*pi*(1-pi)
				if cavVar < 0.25 {
					cavVar = 0.25 // floor: discreteness of the count
				}
				r := float64(y[j]) - cavMean
				// ln N(y; cav+a, v) − ln N(y; cav, v)
				llr += a * (2*r - a) / (2 * cavVar)
			}
			// Damped sigmoid update.
			pNew := 1 / (1 + math.Exp(-llr))
			p[i] = damp*pi + (1-damp)*pNew
		}
	}

	top := parsort.TopK(p, k)
	est := bitvec.New(n)
	for _, i := range top {
		est.Set(int(i))
	}
	return est, nil
}
