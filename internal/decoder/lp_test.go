package decoder

import (
	"testing"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/thresholds"
)

func TestLPRecoversEasyInstance(t *testing.T) {
	n, k := 250, 5
	m := int(2 * thresholds.MN(n, k))
	g, sigma, y := instance(t, n, k, m, 81)
	est, err := (LP{}).Decode(g, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Equal(sigma) {
		t.Fatalf("LP relaxation failed on an easy instance (overlap %.2f)",
			bitvec.OverlapFraction(sigma, est))
	}
}

func TestLPValidatesAndZeroK(t *testing.T) {
	g, _, y := instance(t, 60, 3, 20, 82)
	if _, err := (LP{}).Decode(g, y[:5], 3); err == nil {
		t.Fatal("short y accepted")
	}
	est, err := (LP{}).Decode(g, y, 0)
	if err != nil || est.Weight() != 0 {
		t.Fatal("k=0 should give the zero vector")
	}
}

func TestLPWeightAlwaysK(t *testing.T) {
	g, _, y := instance(t, 200, 7, 30, 83) // far below threshold
	est, err := (LP{Iterations: 50}).Decode(g, y, 7)
	if err != nil {
		t.Fatal(err)
	}
	if est.Weight() != 7 {
		t.Fatalf("weight %d", est.Weight())
	}
}

func TestLPImprovesWithIterations(t *testing.T) {
	n, k := 300, 8
	m := int(1.0 * thresholds.MN(n, k))
	g, sigma, y := instance(t, n, k, m, 84)
	few, err := (LP{Iterations: 2}).Decode(g, y, k)
	if err != nil {
		t.Fatal(err)
	}
	many, err := (LP{Iterations: 300}).Decode(g, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if sigma.Overlap(many) < sigma.Overlap(few) {
		t.Fatalf("more FISTA iterations lost one-entries: %d -> %d",
			sigma.Overlap(few), sigma.Overlap(many))
	}
}

func TestLPComparableToMNAboveThreshold(t *testing.T) {
	// The compressed-sensing relaxation should also succeed comfortably
	// above the MN threshold (its own rate constant is 2 vs MN's ≈1.6-4,
	// same order) — "who wins" may flip by instance but both decode.
	n, k := 300, 6
	m := int(2.2 * thresholds.MN(n, k))
	okLP, okMN := 0, 0
	for seed := uint64(0); seed < 6; seed++ {
		g, sigma, y := instance(t, n, k, m, 90+seed)
		lp, err := (LP{}).Decode(g, y, k)
		if err != nil {
			t.Fatal(err)
		}
		mnEst, err := (MN{}).Decode(g, y, k)
		if err != nil {
			t.Fatal(err)
		}
		if lp.Equal(sigma) {
			okLP++
		}
		if mnEst.Equal(sigma) {
			okMN++
		}
	}
	if okLP < 5 || okMN < 5 {
		t.Fatalf("above threshold: lp %d/6, mn %d/6", okLP, okMN)
	}
}
