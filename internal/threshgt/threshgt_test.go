package threshgt

import (
	"testing"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
)

// gtInstance builds a threshold-query instance with pools sized by
// RecommendedGamma.
func gtInstance(t testing.TB, n, k, m, T int, seed uint64) (*graph.Bipartite, *bitvec.Vector, []int64) {
	t.Helper()
	des := pooling.RandomRegular{Gamma: RecommendedGamma(n, k, T)}
	g, err := des.Build(n, m, pooling.BuildOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(seed^0xabcd))
	res := query.Execute(g, sigma, query.Options{Oracle: query.Threshold{T: int64(T)}, Seed: seed})
	return g, sigma, res.Y
}

func TestRecommendedGamma(t *testing.T) {
	// T = 1: ln2·n/k.
	if got := RecommendedGamma(1000, 10, 1); got < 60 || got > 80 {
		t.Fatalf("Gamma(T=1) = %d, want ≈ 69", got)
	}
	// T = 4: T·n/k.
	if got := RecommendedGamma(1000, 10, 4); got != 400 {
		t.Fatalf("Gamma(T=4) = %d, want 400", got)
	}
	// Clamps.
	if RecommendedGamma(10, 0, 1) > 10 || RecommendedGamma(10, 100, 5) < 1 {
		t.Fatal("clamping broken")
	}
}

func TestValidation(t *testing.T) {
	g, _, y := gtInstance(t, 100, 5, 50, 1, 1)
	for _, d := range []interface {
		Decode(*graph.Bipartite, []int64, int) (*bitvec.Vector, error)
		Name() string
	}{COMP{}, DD{}, Scored{}} {
		if _, err := d.Decode(g, y[:3], 5); err == nil {
			t.Fatalf("%s accepted short y", d.Name())
		}
		if _, err := d.Decode(g, y, -1); err == nil {
			t.Fatalf("%s accepted bad k", d.Name())
		}
		bad := append([]int64{}, y...)
		bad[0] = 7
		if _, err := d.Decode(g, bad, 5); err == nil {
			t.Fatalf("%s accepted non-binary results", d.Name())
		}
	}
}

func TestCOMPRecoversWithEnoughTests(t *testing.T) {
	n, k := 500, 5
	m := 220 // well above ln2^-1 k ln(n/k) ≈ 33... generous for exactness
	g, sigma, y := gtInstance(t, n, k, m, 1, 2)
	est, err := (COMP{}).Decode(g, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Equal(sigma) {
		t.Fatalf("COMP failed with m=%d (overlap %.2f)", m, bitvec.OverlapFraction(sigma, est))
	}
}

func TestCOMPNoFalseNegativesProperty(t *testing.T) {
	// Every true one-entry is in no negative pool, so its score is finite
	// while excluded zeros get -Inf; with enough pools the top-k always
	// contains all true ones.
	for seed := uint64(0); seed < 10; seed++ {
		n, k, m := 300, 4, 150
		g, sigma, y := gtInstance(t, n, k, m, 1, 100+seed)
		est, err := (COMP{}).Decode(g, y, k)
		if err != nil {
			t.Fatal(err)
		}
		// Check: no true one was excluded by a negative pool.
		sigma.ForEachSet(func(i int) {
			qs, _ := g.EntryQueries(i)
			for _, j := range qs {
				if y[j] == 0 {
					t.Fatalf("true one-entry %d sits in negative pool %d — oracle broken", i, j)
				}
			}
		})
		_ = est
	}
}

func TestDDNoFalsePositives(t *testing.T) {
	// DD's definite defectives are provably one: on exact data the output
	// must be a subset of the truth.
	for seed := uint64(0); seed < 20; seed++ {
		n, k, m := 400, 6, 60 // deliberately small m: DD stays partial
		g, sigma, y := gtInstance(t, n, k, m, 1, 200+seed)
		est, err := (DD{}).Decode(g, y, k)
		if err != nil {
			t.Fatal(err)
		}
		if est.Overlap(sigma) != est.Weight() {
			t.Fatalf("seed %d: DD produced a false positive", seed)
		}
	}
}

func TestDDCompleteWithManyTests(t *testing.T) {
	n, k, m := 300, 4, 400
	g, sigma, y := gtInstance(t, n, k, m, 1, 3)
	est, err := (DD{}).Decode(g, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Equal(sigma) {
		t.Fatalf("DD incomplete at m=%d: weight %d of %d", m, est.Weight(), k)
	}
}

func TestScoredGeneralThreshold(t *testing.T) {
	// T = 3: pools sized so the count straddles 3; the scored decoder
	// should recover with a generous budget.
	n, k := 400, 8
	m := 600
	g, sigma, y := gtInstance(t, n, k, m, 3, 4)
	est, err := (Scored{}).Decode(g, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if bitvec.OverlapFraction(sigma, est) < 0.8 {
		t.Fatalf("scored decoder overlap %.2f at T=3, m=%d", bitvec.OverlapFraction(sigma, est), m)
	}
	if est.Weight() != k {
		t.Fatalf("weight %d, want %d", est.Weight(), k)
	}
}

func TestScoredImprovesWithM(t *testing.T) {
	n, k, T := 400, 8, 2
	overlapAt := func(m int) float64 {
		total := 0.0
		for seed := uint64(0); seed < 8; seed++ {
			_, sigma, _ := gtInstance(t, n, k, m, T, 300+seed)
			g, sig2, y := gtInstance(t, n, k, m, T, 300+seed)
			est, err := (Scored{}).Decode(g, y, k)
			if err != nil {
				t.Fatal(err)
			}
			_ = sigma
			total += bitvec.OverlapFraction(sig2, est)
		}
		return total / 8
	}
	lo, hi := overlapAt(60), overlapAt(600)
	if hi <= lo {
		t.Fatalf("threshold decoder did not improve with m: %.2f vs %.2f", lo, hi)
	}
}

func TestBinaryGTBeatsAdditiveDesignAtT1(t *testing.T) {
	// With the additive design's Γ = n/2 pools, T=1 queries are all
	// positive and carry no information; with RecommendedGamma they work.
	// This documents why the threshold regime needs its own design.
	n, k, m := 300, 5, 200
	wide, err := pooling.RandomRegular{}.Build(n, m, pooling.BuildOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(10))
	resWide := query.Execute(wide, sigma, query.Options{Oracle: query.Threshold{T: 1}})
	allPos := true
	for _, v := range resWide.Y {
		if v == 0 {
			allPos = false
			break
		}
	}
	if !allPos {
		t.Skip("wide pools unexpectedly produced a negative test; instance too small to demonstrate")
	}
	estWide, err := (Scored{}).Decode(wide, resWide.Y, k)
	if err != nil {
		t.Fatal(err)
	}
	g, sig, y := gtInstance(t, n, k, m, 1, 11)
	estGood, err := (COMP{}).Decode(g, y, k)
	if err != nil {
		t.Fatal(err)
	}
	if bitvec.OverlapFraction(sig, estGood) <= bitvec.OverlapFraction(sigma, estWide) {
		t.Fatal("properly sized pools should beat saturated Γ=n/2 pools at T=1")
	}
}
