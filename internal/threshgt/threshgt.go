// Package threshgt implements reconstruction from *threshold* queries —
// the open problem the paper's conclusions single out (§VI): a query
// returns 1 iff the number of one-entries in the pool reaches a threshold
// T ≥ 1. T = 1 recovers classical binary group testing.
//
// The package provides the classical group-testing decoders COMP and DD
// for T = 1 and an MN-style scoring decoder for general T, plus the
// design guidance that makes threshold queries informative: unlike the
// additive oracle, a threshold query carries at most one bit, so pools
// must be sized such that the count straddles T (Γ = Θ(T·n/k) rather than
// the additive design's n/2).
package threshgt

import (
	"fmt"
	"math"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/parsort"
)

// RecommendedGamma returns a pool size that keeps threshold-T queries
// informative for weight-k signals of length n: the expected pool count
// k·Γ/n sits near the threshold. For T = 1 this is the classical
// ln2·(n/k) of binary group testing.
func RecommendedGamma(n, k, T int) int {
	if k < 1 {
		k = 1
	}
	var g float64
	if T <= 1 {
		g = math.Ln2 * float64(n) / float64(k)
	} else {
		g = float64(T) * float64(n) / float64(k)
	}
	gi := int(math.Round(g))
	if gi < 1 {
		gi = 1
	}
	if gi > n {
		gi = n
	}
	return gi
}

func validate(g *graph.Bipartite, y []int64, k int) error {
	if len(y) != g.M() {
		return fmt.Errorf("threshgt: %d results for %d queries", len(y), g.M())
	}
	if k < 0 || k > g.N() {
		return fmt.Errorf("threshgt: weight k=%d out of [0,%d]", k, g.N())
	}
	for j, v := range y {
		if v != 0 && v != 1 {
			return fmt.Errorf("threshgt: result %d of query %d is not binary", v, j)
		}
	}
	return nil
}

// COMP is the Combinatorial Orthogonal Matching Pursuit rule for T = 1:
// every entry of a negative pool is zero; among the never-excluded
// entries the k with the most positive-pool memberships are declared one.
// COMP never misses a true one-entry (σ(i) = 1 ⇒ i is never excluded),
// so its errors are false positives only.
type COMP struct{}

// Name identifies the decoder.
func (COMP) Name() string { return "comp" }

// Decode reconstructs from binary (T = 1) query results.
func (COMP) Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error) {
	if err := validate(g, y, k); err != nil {
		return nil, err
	}
	n := g.N()
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		qs, _ := g.EntryQueries(i)
		pos := 0
		excluded := false
		for _, j := range qs {
			if y[j] == 0 {
				excluded = true
				break
			}
			pos++
		}
		if excluded {
			scores[i] = math.Inf(-1)
		} else {
			scores[i] = float64(pos)
		}
	}
	est := bitvec.New(n)
	for _, i := range parsort.TopK(scores, k) {
		est.Set(int(i))
	}
	return est, nil
}

// DD is the Definite Defectives rule for T = 1: after COMP's exclusion,
// an entry is *definitely* one if some positive pool contains no other
// unexcluded entry. DD never produces a false positive; its output may
// have weight below k.
type DD struct{}

// Name identifies the decoder.
func (DD) Name() string { return "dd" }

// Decode reconstructs from binary (T = 1) query results. The estimate
// contains only entries provably one; it may have fewer than k ones.
func (DD) Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error) {
	if err := validate(g, y, k); err != nil {
		return nil, err
	}
	n := g.N()
	possible := make([]bool, n)
	for i := 0; i < n; i++ {
		qs, _ := g.EntryQueries(i)
		possible[i] = true
		for _, j := range qs {
			if y[j] == 0 {
				possible[i] = false
				break
			}
		}
	}
	est := bitvec.New(n)
	for j := 0; j < g.M(); j++ {
		if y[j] != 1 {
			continue
		}
		ents, _ := g.QueryEntries(j)
		last := -1
		count := 0
		for _, e := range ents {
			if possible[e] {
				count++
				last = int(e)
				if count > 1 {
					break
				}
			}
		}
		if count == 1 {
			est.Set(last)
		}
	}
	return est, nil
}

// Scored is the MN-style decoder for general thresholds: rank entries by
// the number of positive distinct pools they belong to, centralized by
// the global positive rate, and take the top k. For T = 1 it degrades
// gracefully to a soft COMP.
type Scored struct{}

// Name identifies the decoder.
func (Scored) Name() string { return "threshold-mn" }

// Decode reconstructs from threshold query results for any T.
func (Scored) Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error) {
	if err := validate(g, y, k); err != nil {
		return nil, err
	}
	n, m := g.N(), g.M()
	base := 0.0
	for _, v := range y {
		base += float64(v)
	}
	if m > 0 {
		base /= float64(m)
	}
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		qs, _ := g.EntryQueries(i)
		var pos float64
		for _, j := range qs {
			pos += float64(y[j])
		}
		// Positive-pool surplus relative to the base rate.
		scores[i] = pos - float64(len(qs))*base
	}
	est := bitvec.New(n)
	for _, i := range parsort.TopK(scores, k) {
		est.Set(int(i))
	}
	return est, nil
}
