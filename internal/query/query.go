// Package query simulates the measurement side of the pooled data problem:
// the lab robot (or GPU, or PCR machine) that evaluates all pooled queries
// in parallel.
//
// The paper's premise is that performing a query is expensive — a
// biological process, a neural network evaluation — while the
// reconstruction is cheap, which is why the design is non-adaptive and all
// m queries run simultaneously. This package provides:
//
//   - Oracles: the additive oracle of the paper (exact count of one-entries,
//     multi-edges counted with multiplicity), plus noisy and threshold
//     variants used by the extension experiments.
//   - A parallel executor that evaluates all queries with a bounded worker
//     pool (the simulation's real parallelism).
//   - A virtual-time scheduler for the partially-parallel regime of §VI:
//     only L processing units exist, so the m queries are list-scheduled
//     onto the units and the simulated makespan is reported.
package query

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/rng"
)

// Oracle answers one pooled query over the hidden signal. entries/mults
// describe the query's multiset ∂a_j in compressed form. r is a stream
// private to the query for randomized (noisy) oracles; deterministic
// oracles ignore it.
type Oracle interface {
	// Answer returns the oracle's response for the given pool.
	Answer(sigma *bitvec.Vector, entries, mults []int32, r *rng.Rand) int64
	// Name identifies the oracle in experiment output.
	Name() string
}

// Additive is the paper's query model: the exact number of one-entries in
// the pool, counted with multiplicity (an entry drawn twice contributes
// twice).
type Additive struct{}

// Name implements Oracle.
func (Additive) Name() string { return "additive" }

// Answer implements Oracle.
func (Additive) Answer(sigma *bitvec.Vector, entries, mults []int32, _ *rng.Rand) int64 {
	var s int64
	for p, e := range entries {
		if sigma.Get(int(e)) {
			s += int64(mults[p])
		}
	}
	return s
}

// Noisy wraps the additive count with additive rounded Gaussian noise of
// standard deviation Sigma — the standard robustness model for pooled
// measurements. Responses are clamped at zero.
type Noisy struct {
	Sigma float64
}

// Name implements Oracle.
func (o Noisy) Name() string { return fmt.Sprintf("noisy(σ=%g)", o.Sigma) }

// Answer implements Oracle.
func (o Noisy) Answer(sigma *bitvec.Vector, entries, mults []int32, r *rng.Rand) int64 {
	v := Additive{}.Answer(sigma, entries, mults, nil)
	if o.Sigma > 0 && r != nil {
		v += int64(o.Sigma*r.NormFloat64() + 0.5)
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Threshold is the threshold group testing oracle of §VI: it returns 1 iff
// the number of one-entries in the pool (with multiplicity) is at least T.
// T = 1 recovers classical binary group testing.
type Threshold struct {
	T int64
}

// Name implements Oracle.
func (o Threshold) Name() string { return fmt.Sprintf("threshold(T=%d)", o.T) }

// Answer implements Oracle.
func (o Threshold) Answer(sigma *bitvec.Vector, entries, mults []int32, _ *rng.Rand) int64 {
	t := o.T
	if t < 1 {
		t = 1
	}
	if (Additive{}).Answer(sigma, entries, mults, nil) >= t {
		return 1
	}
	return 0
}

// LatencyModel assigns a simulated duration to each query. Models must be
// deterministic functions of (query index, stream).
type LatencyModel interface {
	// Duration returns the simulated execution time of query j.
	Duration(j int, r *rng.Rand) time.Duration
}

// ConstantLatency gives every query the same duration.
type ConstantLatency struct {
	D time.Duration
}

// Duration implements LatencyModel.
func (c ConstantLatency) Duration(int, *rng.Rand) time.Duration { return c.D }

// UniformLatency draws each query's duration uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
}

// Duration implements LatencyModel.
func (u UniformLatency) Duration(_ int, r *rng.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	span := uint64(u.Max - u.Min + 1)
	return u.Min + time.Duration(r.Uint64n(span))
}

// Options configures an execution.
type Options struct {
	// Oracle answering the queries; nil means Additive{}.
	Oracle Oracle
	// Units is the number L of parallel processing units for the
	// simulated schedule. 0 means fully parallel (one round: L = m).
	Units int
	// Latency is the per-query simulated duration model; nil means one
	// unit of time per query.
	Latency LatencyModel
	// Workers bounds the real goroutine pool; 0 means GOMAXPROCS.
	Workers int
	// Seed feeds per-query rng streams (noise, random latencies).
	Seed uint64
}

func (o Options) oracle() Oracle {
	if o.Oracle == nil {
		return Additive{}
	}
	return o.Oracle
}

func (o Options) latency() LatencyModel {
	if o.Latency == nil {
		// One virtual time unit (nanosecond) per query; only ratios matter.
		return ConstantLatency{D: 1}
	}
	return o.Latency
}

// Result is the outcome of executing all queries of a design.
type Result struct {
	// Y is the response vector, Y[j] = oracle answer of query j.
	Y []int64
	// Rounds is the number of scheduling rounds: with L units and m
	// queries of equal latency this is ⌈m/L⌉; 1 when fully parallel.
	Rounds int
	// Makespan is the simulated completion time of the last query under
	// list scheduling onto the L units.
	Makespan time.Duration
	// TotalWork is the sum of all simulated query durations (the
	// sequential-execution time).
	TotalWork time.Duration
}

// Execute evaluates every query of g against sigma. The response vector is
// deterministic given (g, sigma, Options.Seed) regardless of worker count;
// the simulated schedule is computed with virtual time, not wall time.
func Execute(g *graph.Bipartite, sigma *bitvec.Vector, opts Options) Result {
	if g.N() != sigma.Len() {
		panic(fmt.Sprintf("query: design over %d entries, signal has %d", g.N(), sigma.Len()))
	}
	m := g.M()
	res := Result{Y: make([]int64, m)}
	oracle := opts.oracle()

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	durations := make([]time.Duration, m)
	lat := opts.latency()

	if workers <= 1 {
		for j := 0; j < m; j++ {
			r := rng.NewRand(rng.NewXoshiro(rng.DeriveSeed(opts.Seed, uint64(j))))
			e, mu := g.QueryEntries(j)
			res.Y[j] = oracle.Answer(sigma, e, mu, r)
			durations[j] = lat.Duration(j, r)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * m / workers
			hi := (w + 1) * m / workers
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for j := lo; j < hi; j++ {
					r := rng.NewRand(rng.NewXoshiro(rng.DeriveSeed(opts.Seed, uint64(j))))
					e, mu := g.QueryEntries(j)
					res.Y[j] = oracle.Answer(sigma, e, mu, r)
					durations[j] = lat.Duration(j, r)
				}
			}(lo, hi)
		}
		wg.Wait()
	}

	res.Rounds, res.Makespan, res.TotalWork = Schedule(durations, opts.Units)
	return res
}

// batchKernel selects the inner loop of the one-pass batched execute.
// Every kernel computes the same exact integer counts, so the choice is
// purely a cost model — results are bit-identical by construction.
type batchKernel int

const (
	// kernelScalar is the reference loop: per incidence, B per-signal
	// membership tests. Lowest setup cost — selected for tiny batches.
	kernelScalar batchKernel = iota
	// kernelSliced walks each query's entry list once per 64-signal lane
	// of the transposed bit-slab, loading one word per incidence and
	// iterating only its set bits — output-sensitive, so sparse signals
	// cost O(incidences + members) instead of O(incidences·B).
	kernelSliced
	// kernelPlanes decomposes each query's multiplicities into bit-plane
	// masks over the entry range and scores each signal with
	// AND+popcount, 64 entries per bits.OnesCount64 — the win once
	// signals are dense enough that set-bit iteration degenerates.
	kernelPlanes
)

// slicedMinBatch is the batch size below which the word-parallel kernels
// cannot recoup their transpose/plane setup; smaller batches take the
// scalar reference path.
const slicedMinBatch = 4

// pickKernel chooses the cheapest kernel from the instance shape: batch
// size, total signal weight, and the design's incidence count.
func pickKernel(g *graph.Bipartite, sigmas []*bitvec.Vector) batchKernel {
	nb := len(sigmas)
	n := g.N()
	if nb < slicedMinBatch || n == 0 {
		return kernelScalar
	}
	totalW := 0
	for _, s := range sigmas {
		totalW += s.Weight()
	}
	lanes := int64((nb + 63) / 64)
	pairs := g.DistinctPairs()
	wpn := int64((n + 63) / 64)
	// Word-ops per full pass: the sliced kernel loads one slab word per
	// (incidence, lane) plus one set-bit step per (incidence, member
	// signal); the plane kernel pays one build pass over the incidences
	// plus planes·wpn popcount words per (query, signal). Multiplicities
	// come from Poisson thinning and stay small, so two planes is the
	// right planning estimate.
	slicedCost := pairs*lanes + pairs*int64(totalW)/int64(n)
	planeCost := pairs + int64(g.M())*int64(nb)*2*wpn
	if planeCost < slicedCost {
		return kernelPlanes
	}
	return kernelSliced
}

// queryPlanes is the pooling matrix re-packed for AND+popcount scoring:
// plane t, row j is an n-bit mask whose entry-e bit is set iff bit t of
// the multiplicity A_je is set. The exact count of signal σ in query j is
// then Σ_t 2^t · popcount(plane_t[j] AND σ).
type queryPlanes struct {
	wpn    int        // words per n-bit row
	planes [][]uint64 // planes[t][j*wpn : (j+1)*wpn] is query j's mask
}

func buildQueryPlanes(g *graph.Bipartite) *queryPlanes {
	n, m := g.N(), g.M()
	qp := &queryPlanes{wpn: (n + 63) / 64}
	for j := 0; j < m; j++ {
		entries, mults := g.QueryEntries(j)
		row := j * qp.wpn
		for p, e := range entries {
			mu := uint32(mults[p])
			for t := 0; mu != 0; t++ {
				if mu&1 != 0 {
					for len(qp.planes) <= t {
						qp.planes = append(qp.planes, make([]uint64, m*qp.wpn))
					}
					qp.planes[t][row+int(e)>>6] |= 1 << (uint(e) & 63)
				}
				mu >>= 1
			}
		}
	}
	return qp
}

// runBatch computes the exact additive count of every (signal, query)
// cell in one pass over the pooling matrix and streams each query's row
// to an emitter. Workers cover contiguous query ranges; newEmit runs
// once per worker so emitters can hold private state (the noisy path's
// reseedable rng stream). The acc slice passed to an emitter is reused
// across queries and must not be retained.
func runBatch(g *graph.Bipartite, sigmas []*bitvec.Vector, workers int, kern batchKernel, newEmit func() func(j int, acc []int64)) {
	nb := len(sigmas)
	m := g.M()
	if nb == 0 || m == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}

	// Shared read-only kernel state, built once before the fan-out.
	var slab *bitvec.Slab
	var planes *queryPlanes
	switch kern {
	case kernelSliced:
		slab = bitvec.NewSlab(sigmas)
	case kernelPlanes:
		planes = buildQueryPlanes(g)
	}

	scan := func(lo, hi int) {
		emit := newEmit()
		acc := make([]int64, nb)
		switch kern {
		case kernelSliced:
			scanSliced(g, slab, lo, hi, acc, emit)
		case kernelPlanes:
			scanPlanes(g, planes, sigmas, lo, hi, acc, emit)
		default:
			scanScalar(g, sigmas, lo, hi, acc, emit)
		}
	}
	if workers <= 1 {
		scan(0, m)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * m / workers
		hi := (w + 1) * m / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			scan(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// scanScalar is the reference kernel: B membership tests per incidence.
func scanScalar(g *graph.Bipartite, sigmas []*bitvec.Vector, lo, hi int, acc []int64, emit func(int, []int64)) {
	for j := lo; j < hi; j++ {
		entries, mults := g.QueryEntries(j)
		for b := range acc {
			acc[b] = 0
		}
		for p, e := range entries {
			mu := int64(mults[p])
			for b, s := range sigmas {
				if s.Get(int(e)) {
					acc[b] += mu
				}
			}
		}
		emit(j, acc)
	}
}

// scanSliced scores 64 signals per loaded slab word: entries absent from
// every signal of a lane cost one load+test, and set bits are iterated
// directly via TrailingZeros64 — no per-signal Get calls.
func scanSliced(g *graph.Bipartite, slab *bitvec.Slab, lo, hi int, acc []int64, emit func(int, []int64)) {
	lanes := slab.Lanes()
	for j := lo; j < hi; j++ {
		entries, mults := g.QueryEntries(j)
		for b := range acc {
			acc[b] = 0
		}
		for l := 0; l < lanes; l++ {
			lane := slab.Lane(l)
			// Slab bits beyond the batch size are zero, so the lane's
			// sub-slice of acc is never indexed past nb.
			accL := acc[l*64:]
			for p, e := range entries {
				w := lane[e]
				if w == 0 {
					continue
				}
				mu := int64(mults[p])
				for w != 0 {
					accL[bits.TrailingZeros64(w)] += mu
					w &= w - 1
				}
			}
		}
		emit(j, acc)
	}
}

// scanPlanes scores 64 entries per popcount against the precomputed
// multiplicity bit-planes.
func scanPlanes(g *graph.Bipartite, qp *queryPlanes, sigmas []*bitvec.Vector, lo, hi int, acc []int64, emit func(int, []int64)) {
	for j := lo; j < hi; j++ {
		row := j * qp.wpn
		for b, s := range sigmas {
			words := s.Words()
			var v int64
			for t, plane := range qp.planes {
				if c := bitvec.AndPopcount(plane[row:row+qp.wpn], words); c != 0 {
					v += int64(c) << uint(t)
				}
			}
			acc[b] = v
		}
		emit(j, acc)
	}
}

// ExecuteBatch evaluates every query of g against B signals in a single
// pass over the pooling matrix: each query's edge list is traversed once
// and scored against all signals, amortizing the Γm edge traversal across
// the batch (B separate Execute calls traverse it B times). Large batches
// run word-parallel — 64 signals per machine word through a transposed
// bit-slab, or 64 entries per popcount through multiplicity bit-planes
// when the signals are dense — with the scalar loop kept as the reference
// path for tiny batches; all kernels produce identical exact counts.
// Only the exact additive oracle is supported here — imperfect oracles go
// through ExecuteBatchNoisy, which shares the pass and perturbs
// per-signal. Row b of the result is the count vector of sigmas[b]; it is
// bit-identical to Execute(g, sigmas[b], ...).Y.
func ExecuteBatch(g *graph.Bipartite, sigmas []*bitvec.Vector, workers int) [][]int64 {
	nb := len(sigmas)
	for b, s := range sigmas {
		if g.N() != s.Len() {
			panic(fmt.Sprintf("query: design over %d entries, signal %d has %d", g.N(), b, s.Len()))
		}
	}
	m := g.M()
	out := make([][]int64, nb)
	for b := range out {
		out[b] = make([]int64, m)
	}
	if nb == 0 || m == 0 {
		return out
	}
	runBatch(g, sigmas, workers, pickKernel(g, sigmas), func() func(int, []int64) {
		return func(j int, acc []int64) {
			for b, v := range acc {
				out[b][j] = v
			}
		}
	})
	return out
}

// Perturber maps the exact additive count of one (signal, query) cell to
// the response an imperfect oracle would return. r is the cell's private
// noise stream (nil when Deterministic reports true). noise.Model is the
// canonical implementation; the interface lives here so the executor does
// not depend on the noise subsystem.
type Perturber interface {
	// Perturb returns the oracle response for an exact count v.
	Perturb(v int64, r *rng.Rand) int64
	// Deterministic reports whether Perturb ignores its stream.
	Deterministic() bool
}

// ExecuteBatchNoisy is ExecuteBatch for imperfect oracles: one pass over
// the pooling matrix computes every signal's exact counts, then each
// (signal b, query j) cell is perturbed with a stream derived from
// (seeds[b], j) — the same derivation Execute uses from (Options.Seed, j).
// Row b is therefore bit-identical to Execute(g, sigmas[b],
// Options{Oracle: ..., Seed: seeds[b]}) for count-only oracles,
// independent of batch composition and worker count, and two batches with
// equal seeds perturb identically. len(seeds) must equal len(sigmas);
// deterministic perturbers may pass nil seeds.
func ExecuteBatchNoisy(g *graph.Bipartite, sigmas []*bitvec.Vector, workers int, p Perturber, seeds []uint64) [][]int64 {
	nb := len(sigmas)
	for b, s := range sigmas {
		if g.N() != s.Len() {
			panic(fmt.Sprintf("query: design over %d entries, signal %d has %d", g.N(), b, s.Len()))
		}
	}
	needStreams := p != nil && !p.Deterministic()
	if needStreams && len(seeds) != nb {
		panic(fmt.Sprintf("query: %d noise seeds for %d signals", len(seeds), nb))
	}
	m := g.M()
	out := make([][]int64, nb)
	for b := range out {
		out[b] = make([]int64, m)
	}
	if nb == 0 || m == 0 {
		return out
	}

	runBatch(g, sigmas, workers, pickKernel(g, sigmas), func() func(int, []int64) {
		var r *rng.Rand
		if needStreams {
			r = rng.NewRand(rng.NewXoshiro(0))
		}
		return func(j int, acc []int64) {
			for b, v := range acc {
				if p != nil {
					if needStreams {
						// Reset the worker's stream to the cell's seed:
						// identical to a freshly constructed generator.
						r.Seed(rng.DeriveSeed(seeds[b], uint64(j)))
					}
					v = p.Perturb(v, r)
				}
				out[b][j] = v
			}
		}
	})
	return out
}

// Schedule list-schedules the given query durations onto L units
// (0 or >= len(durations) means fully parallel) and returns the number of
// rounds, the makespan, and the total work. Queries are assigned in index
// order to the unit that becomes free earliest, which models a lab feeding
// its L machines from a fixed queue.
func Schedule(durations []time.Duration, units int) (rounds int, makespan, total time.Duration) {
	m := len(durations)
	if m == 0 {
		return 0, 0, 0
	}
	if units <= 0 || units >= m {
		for _, d := range durations {
			total += d
			if d > makespan {
				makespan = d
			}
		}
		return 1, makespan, total
	}
	free := make([]time.Duration, units)
	counts := make([]int, units)
	for _, d := range durations {
		// Pick the earliest-free unit.
		best := 0
		for u := 1; u < units; u++ {
			if free[u] < free[best] {
				best = u
			}
		}
		free[best] += d
		counts[best]++
		total += d
	}
	for u := 0; u < units; u++ {
		if free[u] > makespan {
			makespan = free[u]
		}
		if counts[u] > rounds {
			rounds = counts[u]
		}
	}
	return rounds, makespan, total
}
