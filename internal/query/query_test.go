package query

import (
	"testing"
	"testing/quick"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/pooling"
	"pooleddata/internal/rng"
	"pooleddata/internal/sparse"
)

// fig1 reproduces the worked example of the paper's Fig. 1:
// σ = (1,1,0,0,1,0,0) and five queries with results (2,2,3,1,1).
func fig1(t *testing.T) (*graph.Bipartite, *bitvec.Vector) {
	t.Helper()
	d := pooling.Fixed{Queries: [][]int{
		{0, 1, 3},       // σ0+σ1 = 2
		{1, 4, 6},       // σ1+σ4 = 2
		{0, 1, 4, 6, 6}, // σ0+σ1+σ4 = 3 (multi-edge on the zero entry x6)
		{2, 4},          // σ4 = 1
		{0, 5, 5, 6, 6}, // σ0 = 1
	}}
	g, err := d.Build(7, 5, pooling.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.FromIndices(7, []int{0, 1, 4})
	return g, sigma
}

func TestAdditiveFig1Golden(t *testing.T) {
	g, sigma := fig1(t)
	res := Execute(g, sigma, Options{})
	want := []int64{2, 2, 3, 1, 1}
	for j, w := range want {
		if res.Y[j] != w {
			t.Fatalf("y = %v, want %v", res.Y, want)
		}
	}
	if res.Rounds != 1 {
		t.Fatalf("fully parallel execution took %d rounds", res.Rounds)
	}
}

func TestAdditiveMatchesCountIn(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewRandSeeded(seed)
		n := 20 + r.Intn(200)
		k := r.Intn(n/2 + 1)
		m := 5 + r.Intn(40)
		g, err := pooling.RandomRegular{}.Build(n, m, pooling.BuildOptions{Seed: seed})
		if err != nil {
			return false
		}
		sigma := bitvec.Random(n, k, r)
		res := Execute(g, sigma, Options{Seed: seed})
		for j := 0; j < m; j++ {
			ents, muls := g.QueryEntries(j)
			flat := make([]int, 0, g.QuerySize(j))
			for p, e := range ents {
				for c := int32(0); c < muls[p]; c++ {
					flat = append(flat, int(e))
				}
			}
			if res.Y[j] != int64(sigma.CountIn(flat)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteDeterministicAcrossWorkers(t *testing.T) {
	g, err := pooling.RandomRegular{}.Build(500, 80, pooling.BuildOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.Random(500, 20, rng.NewRandSeeded(4))
	a := Execute(g, sigma, Options{Workers: 1, Seed: 9, Oracle: Noisy{Sigma: 1.5}})
	b := Execute(g, sigma, Options{Workers: 8, Seed: 9, Oracle: Noisy{Sigma: 1.5}})
	for j := range a.Y {
		if a.Y[j] != b.Y[j] {
			t.Fatalf("noisy responses differ between worker counts at query %d", j)
		}
	}
}

func TestExecutePanicsOnSizeMismatch(t *testing.T) {
	g, _ := pooling.RandomRegular{}.Build(10, 3, pooling.BuildOptions{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch not detected")
		}
	}()
	Execute(g, bitvec.New(11), Options{})
}

func TestQueryResultsEqualMatrixProduct(t *testing.T) {
	// y must equal A^T σ where A is the multiplicity matrix — the linear
	// algebra view of the additive oracle.
	g, err := pooling.RandomRegular{}.Build(300, 60, pooling.BuildOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.Random(300, 17, rng.NewRandSeeded(6))
	res := Execute(g, sigma, Options{})
	x := make([]int64, 300)
	sigma.ForEachSet(func(i int) { x[i] = 1 })
	y2 := sparse.QueryMultiplicity(g).MulVec(x, nil)
	for j := range res.Y {
		if res.Y[j] != y2[j] {
			t.Fatalf("query %d: oracle %d vs matrix %d", j, res.Y[j], y2[j])
		}
	}
}

func TestNoisyZeroSigmaIsExact(t *testing.T) {
	g, sigma := fig1(t)
	a := Execute(g, sigma, Options{Oracle: Noisy{Sigma: 0}})
	b := Execute(g, sigma, Options{})
	for j := range a.Y {
		if a.Y[j] != b.Y[j] {
			t.Fatal("σ=0 noisy oracle differs from additive")
		}
	}
}

func TestNoisyNeverNegative(t *testing.T) {
	g, sigma := fig1(t)
	for seed := uint64(0); seed < 50; seed++ {
		res := Execute(g, sigma, Options{Oracle: Noisy{Sigma: 5}, Seed: seed})
		for _, y := range res.Y {
			if y < 0 {
				t.Fatal("noisy oracle returned negative count")
			}
		}
	}
}

func TestThresholdOracle(t *testing.T) {
	g, sigma := fig1(t)
	res := Execute(g, sigma, Options{Oracle: Threshold{T: 2}})
	want := []int64{1, 1, 1, 0, 0}
	for j, w := range want {
		if res.Y[j] != w {
			t.Fatalf("threshold(2) responses = %v, want %v", res.Y, want)
		}
	}
	// T=0 clamps to 1 (classical group testing).
	res = Execute(g, sigma, Options{Oracle: Threshold{}})
	want = []int64{1, 1, 1, 1, 1}
	for j, w := range want {
		if res.Y[j] != w {
			t.Fatalf("threshold(1) responses = %v, want %v", res.Y, want)
		}
	}
}

func TestOracleNames(t *testing.T) {
	for _, o := range []Oracle{Additive{}, Noisy{Sigma: 1}, Threshold{T: 3}} {
		if o.Name() == "" {
			t.Fatal("oracle with empty name")
		}
	}
}

func TestScheduleFullyParallel(t *testing.T) {
	d := []time.Duration{3, 1, 4, 1, 5}
	rounds, makespan, total := Schedule(d, 0)
	if rounds != 1 || makespan != 5 || total != 14 {
		t.Fatalf("fully parallel schedule = (%d, %d, %d)", rounds, makespan, total)
	}
	// units >= m behaves the same.
	rounds, makespan, _ = Schedule(d, 10)
	if rounds != 1 || makespan != 5 {
		t.Fatal("units >= m should be one round")
	}
}

func TestScheduleSequential(t *testing.T) {
	d := []time.Duration{3, 1, 4}
	rounds, makespan, total := Schedule(d, 1)
	if rounds != 3 || makespan != 8 || total != 8 {
		t.Fatalf("sequential schedule = (%d, %d, %d)", rounds, makespan, total)
	}
}

func TestScheduleUniformRounds(t *testing.T) {
	// 10 unit-length queries on 4 units: ⌈10/4⌉ = 3 rounds, makespan 3.
	d := make([]time.Duration, 10)
	for i := range d {
		d[i] = 1
	}
	rounds, makespan, total := Schedule(d, 4)
	if rounds != 3 || makespan != 3 || total != 10 {
		t.Fatalf("uniform schedule = (%d, %d, %d)", rounds, makespan, total)
	}
}

func TestScheduleEmpty(t *testing.T) {
	rounds, makespan, total := Schedule(nil, 4)
	if rounds != 0 || makespan != 0 || total != 0 {
		t.Fatal("empty schedule must be zero")
	}
}

func TestExecuteWithUnitsAndLatency(t *testing.T) {
	g, sigma := fig1(t)
	res := Execute(g, sigma, Options{
		Units:   2,
		Latency: ConstantLatency{D: 10 * time.Millisecond},
	})
	if res.Rounds != 3 { // ⌈5/2⌉
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	if res.Makespan != 30*time.Millisecond {
		t.Fatalf("makespan = %v, want 30ms", res.Makespan)
	}
	if res.TotalWork != 50*time.Millisecond {
		t.Fatalf("total = %v, want 50ms", res.TotalWork)
	}
}

func TestUniformLatencyBoundsAndDeterminism(t *testing.T) {
	u := UniformLatency{Min: 5, Max: 9}
	r := rng.NewRandSeeded(1)
	for i := 0; i < 1000; i++ {
		d := u.Duration(i, r)
		if d < 5 || d > 9 {
			t.Fatalf("uniform latency %d out of [5,9]", d)
		}
	}
	// Degenerate range.
	if (UniformLatency{Min: 7, Max: 7}).Duration(0, r) != 7 {
		t.Fatal("degenerate uniform latency wrong")
	}
	if (UniformLatency{Min: 7, Max: 3}).Duration(0, r) != 7 {
		t.Fatal("inverted uniform latency should clamp to Min")
	}
}

func TestMakespanDecreasesWithMoreUnits(t *testing.T) {
	g, err := pooling.RandomRegular{}.Build(200, 64, pooling.BuildOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.Random(200, 10, rng.NewRandSeeded(8))
	prev := time.Duration(1<<62 - 1)
	for _, units := range []int{1, 2, 4, 8, 0} {
		res := Execute(g, sigma, Options{Units: units, Seed: 2,
			Latency: UniformLatency{Min: time.Millisecond, Max: 3 * time.Millisecond}})
		if res.Makespan > prev {
			t.Fatalf("makespan grew when adding units: %v > %v at L=%d", res.Makespan, prev, units)
		}
		prev = res.Makespan
	}
}

func TestExecuteBatchMatchesExecute(t *testing.T) {
	g, err := pooling.RandomRegular{}.Build(300, 90, pooling.BuildOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 7
	sigmas := make([]*bitvec.Vector, batch)
	for b := range sigmas {
		sigmas[b] = bitvec.Random(300, 4+b, rng.NewRandSeeded(uint64(50+b)))
	}
	for _, workers := range []int{0, 1, 3} {
		ys := ExecuteBatch(g, sigmas, workers)
		if len(ys) != batch {
			t.Fatalf("got %d rows, want %d", len(ys), batch)
		}
		for b := range sigmas {
			want := Execute(g, sigmas[b], Options{}).Y
			for j := range want {
				if ys[b][j] != want[j] {
					t.Fatalf("workers=%d signal=%d query=%d: batch %d, serial %d",
						workers, b, j, ys[b][j], want[j])
				}
			}
		}
	}
	// Empty batch and empty design are fine.
	if got := ExecuteBatch(g, nil, 0); len(got) != 0 {
		t.Fatal("empty batch should yield no rows")
	}
}
