package query

import (
	"fmt"
	"reflect"
	"testing"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/pooling"
	"pooleddata/internal/rng"
)

// gaussPerturber is a minimal stream-consuming Perturber standing in for
// noise.Model (the noise package depends on query, not vice versa).
type gaussPerturber struct{ sigma float64 }

func (p gaussPerturber) Perturb(v int64, r *rng.Rand) int64 {
	v += int64(p.sigma*r.NormFloat64() + 0.5)
	if v < 0 {
		v = 0
	}
	return v
}

func (gaussPerturber) Deterministic() bool { return false }

// TestBatchKernelsBitIdentical is the property test of the word-parallel
// rewrite: for random (n, m, B) instances — including batch sizes
// straddling the 64-bit lane boundary and degenerate all-zero/all-one
// signals — every kernel produces counts bit-identical to the scalar
// reference, which itself matches per-signal Execute.
func TestBatchKernelsBitIdentical(t *testing.T) {
	type instance struct {
		n, m, batch int
		seed        uint64
		degenerate  string // "", "zeros", "ones"
	}
	cases := []instance{
		{n: 64, m: 16, batch: 1, seed: 1},
		{n: 130, m: 24, batch: 3, seed: 2},
		{n: 257, m: 40, batch: 5, seed: 3},
		{n: 300, m: 60, batch: 63, seed: 4},
		{n: 300, m: 60, batch: 64, seed: 5},
		{n: 300, m: 60, batch: 65, seed: 6},
		{n: 128, m: 32, batch: 130, seed: 7},
		{n: 200, m: 48, batch: 32, seed: 8, degenerate: "zeros"},
		{n: 200, m: 48, batch: 32, seed: 9, degenerate: "ones"},
		{n: 97, m: 31, batch: 17, seed: 10},
	}
	r := rng.NewRandSeeded(99)
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("n%d_m%d_B%d_%s", tc.n, tc.m, tc.batch, tc.degenerate)
		t.Run(name, func(t *testing.T) {
			g, err := pooling.RandomRegular{}.Build(tc.n, tc.m, pooling.BuildOptions{Seed: tc.seed})
			if err != nil {
				t.Fatal(err)
			}
			sigmas := make([]*bitvec.Vector, tc.batch)
			for b := range sigmas {
				switch tc.degenerate {
				case "zeros":
					sigmas[b] = bitvec.New(tc.n)
				case "ones":
					v := bitvec.New(tc.n)
					for i := 0; i < tc.n; i++ {
						v.Set(i)
					}
					sigmas[b] = v
				default:
					k := int(r.Uint64n(uint64(tc.n + 1)))
					sigmas[b] = bitvec.Random(tc.n, k, rng.NewRandSeeded(tc.seed*1000+uint64(b)))
				}
			}

			// Reference: the scalar kernel (single worker).
			ref := forceKernel(g.M(), sigmas, func(out [][]int64) {
				runBatch(g, sigmas, 1, kernelScalar, collectInto(out))
			})
			for _, kern := range []batchKernel{kernelSliced, kernelPlanes} {
				for _, workers := range []int{1, 3} {
					got := forceKernel(g.M(), sigmas, func(out [][]int64) {
						runBatch(g, sigmas, workers, kern, collectInto(out))
					})
					if !reflect.DeepEqual(got, ref) {
						t.Fatalf("kernel %d workers %d diverges from scalar reference", kern, workers)
					}
				}
			}

			// The public entry point (whatever kernel it picks) matches
			// per-signal Execute bit for bit.
			ys := ExecuteBatch(g, sigmas, 0)
			for b := range sigmas {
				want := Execute(g, sigmas[b], Options{}).Y
				if !reflect.DeepEqual(ys[b], want) {
					t.Fatalf("ExecuteBatch row %d diverges from Execute", b)
				}
			}
		})
	}
}

func collectInto(out [][]int64) func() func(int, []int64) {
	return func() func(int, []int64) {
		return func(j int, acc []int64) {
			for b, v := range acc {
				out[b][j] = v
			}
		}
	}
}

func forceKernel(m int, sigmas []*bitvec.Vector, run func(out [][]int64)) [][]int64 {
	out := make([][]int64, len(sigmas))
	for b := range out {
		out[b] = make([]int64, m)
	}
	run(out)
	return out
}

// TestBatchNoisyKernelsBitIdentical: the noisy batched path perturbs the
// same exact counts with the same per-cell streams regardless of kernel,
// worker count, or batch composition — so every kernel must reproduce
// per-signal Execute with a Noisy oracle bit for bit.
func TestBatchNoisyKernelsBitIdentical(t *testing.T) {
	g, err := pooling.RandomRegular{}.Build(400, 80, pooling.BuildOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 4, 63, 64, 65} {
		batch := batch
		t.Run(fmt.Sprintf("B%d", batch), func(t *testing.T) {
			sigmas := make([]*bitvec.Vector, batch)
			seeds := make([]uint64, batch)
			for b := range sigmas {
				sigmas[b] = bitvec.Random(400, 5+b%11, rng.NewRandSeeded(uint64(300+b)))
				seeds[b] = uint64(7000 + b)
			}
			p := gaussPerturber{sigma: 1.5}
			var ref [][]int64
			for _, workers := range []int{0, 1, 3} {
				ys := ExecuteBatchNoisy(g, sigmas, workers, p, seeds)
				if ref == nil {
					ref = ys
					for b := range sigmas {
						want := Execute(g, sigmas[b], Options{Oracle: Noisy{Sigma: 1.5}, Seed: seeds[b]}).Y
						if !reflect.DeepEqual(ys[b], want) {
							t.Fatalf("noisy batch row %d diverges from Execute", b)
						}
					}
					continue
				}
				if !reflect.DeepEqual(ys, ref) {
					t.Fatalf("workers=%d: noisy batch not deterministic across worker counts", workers)
				}
			}
		})
	}
}

// TestPickKernelShape sanity-checks the cost model: tiny batches stay on
// the scalar reference, sparse big batches go sliced, and dense batches
// over a large entry range go to the popcount planes.
func TestPickKernelShape(t *testing.T) {
	g, err := pooling.RandomRegular{}.Build(2000, 40, pooling.BuildOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sparse := make([]*bitvec.Vector, 32)
	dense := make([]*bitvec.Vector, 32)
	for b := range sparse {
		sparse[b] = bitvec.Random(2000, 8, rng.NewRandSeeded(uint64(b+1)))
		dense[b] = bitvec.Random(2000, 1800, rng.NewRandSeeded(uint64(b+100)))
	}
	if k := pickKernel(g, sparse[:2]); k != kernelScalar {
		t.Fatalf("B=2 picked kernel %d, want scalar", k)
	}
	if k := pickKernel(g, sparse); k != kernelSliced {
		t.Fatalf("sparse batch picked kernel %d, want sliced", k)
	}
	if k := pickKernel(g, dense); k != kernelPlanes {
		t.Fatalf("dense batch picked kernel %d, want planes", k)
	}
}
