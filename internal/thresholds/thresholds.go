// Package thresholds collects every closed-form query-count threshold the
// paper states or compares against, plus a numeric evaluator for the
// first-moment bound behind Theorem 2. These are the dotted/dashed curves
// of Figures 2–4 and the columns of the related-work comparison.
//
// Conventions: k = n^θ with θ ∈ (0,1); all thresholds are leading-order
// expressions in the number of queries m. Natural logarithms throughout.
package thresholds

import "math"

// GammaConst is γ = 1 − e^{−1/2}, the limiting inclusion probability of
// the paper's design.
const GammaConst = 0.3934693402873666

// Theta returns the sparsity exponent θ = ln k / ln n of an instance.
// Degenerate inputs (n < 2, k < 1) return NaN.
func Theta(n, k int) float64 {
	if n < 2 || k < 1 {
		return math.NaN()
	}
	return math.Log(float64(k)) / math.Log(float64(n))
}

// KFromTheta returns k = round(n^θ), clamped to [1, n] — the paper rounds
// the number of one-entries to the closest integer (the source of the
// discontinuities in Fig. 2's theory curves).
func KFromTheta(n int, theta float64) int {
	k := int(math.Round(math.Pow(float64(n), theta)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// MN returns m_MN(n,θ) of Theorem 1, the number of parallel queries above
// which the MN-Algorithm succeeds w.h.p.:
//
//	m_MN = 4(1 − e^{−1/2}) · (1+√θ)/(1−√θ) · k·ln(n/k).
func MN(n, k int) float64 {
	th := Theta(n, k)
	if math.IsNaN(th) || th >= 1 {
		return math.Inf(1)
	}
	s := math.Sqrt(th)
	return 4 * GammaConst * (1 + s) / (1 - s) * float64(k) * math.Log(float64(n)/float64(k))
}

// BPDPara returns the sharp information-theoretic threshold for parallel
// designs (Theorem 2 and Djackov's converse):
//
//	m_para = 2·k·ln(n/k)/ln k  = 2·(1−θ)/θ·k.
func BPDPara(n, k int) float64 {
	if k < 2 {
		// ln k = 0: the counting bound degenerates; a weight-1 signal
		// needs only enough queries to pin one coordinate.
		return 2 * float64(k) * math.Log(float64(n))
	}
	return 2 * float64(k) * math.Log(float64(n)/float64(k)) / math.Log(float64(k))
}

// BPDSeq returns the universal (sequential-design) counting lower bound
// m_seq = k·ln(n/k)/ln k, Eq. (1) of the paper.
func BPDSeq(n, k int) float64 {
	return BPDPara(n, k) / 2
}

// GT returns the query count of the optimal binary group testing
// algorithm of Coja-Oghlan et al. (§I.D): m_GT ≈ ln⁻¹(2)·k·ln(n/k). Valid
// (efficiently) for θ ≤ ln2/(1+ln2) ≈ 0.409.
func GT(n, k int) float64 {
	return float64(k) * math.Log(float64(n)/float64(k)) / math.Ln2
}

// GTThetaLimit is the sparsity limit up to which the binary group testing
// decoder of [9] is efficient.
const GTThetaLimit = 0.40938389085035876 // ln 2 / (1 + ln 2)

// BasisPursuit returns the (2+o(1))·k·ln n rate of ℓ1-minimization /
// basis pursuit quoted in §I.B.
func BasisPursuit(n, k int) float64 {
	return 2 * float64(k) * math.Log(float64(n))
}

// DonohoTanner returns the (2+o(1))·k·ln(n/k) rate of the ℓ1 threshold
// analysis quoted in §I.B.
func DonohoTanner(n, k int) float64 {
	return 2 * float64(k) * math.Log(float64(n)/float64(k))
}

// Karimi1 and Karimi2 return the graph-code decoder rates of Karimi et
// al. (1.72 and 1.515 × k·ln(n/k)) — the prior state of the art the
// MN-Algorithm is compared against.
func Karimi1(n, k int) float64 { return 1.72 * float64(k) * math.Log(float64(n)/float64(k)) }

// Karimi2 returns the improved 1.515·k·ln(n/k) rate.
func Karimi2(n, k int) float64 { return 1.515 * float64(k) * math.Log(float64(n)/float64(k)) }

// FiniteSizeFactor returns the multiplicative finite-n correction of the
// §V remark: the MN-Algorithm needs at least
//
//	1 + √(2 ln n)·(4(1−e^{−1/2})·m·k)^{−1/2}
//
// times the asymptotic query count. m is the asymptotic count the factor
// corrects.
func FiniteSizeFactor(n, k int, m float64) float64 {
	if m <= 0 || k < 1 {
		return 1
	}
	return 1 + math.Sqrt(2*math.Log(float64(n)))/math.Sqrt(4*GammaConst*m*float64(k))
}

// MNFiniteSize returns the finite-n-corrected MN threshold: the fixed
// point of m = m_MN·FiniteSizeFactor(n,k,m), iterated to convergence.
func MNFiniteSize(n, k int) float64 {
	m := MN(n, k)
	if math.IsInf(m, 1) {
		return m
	}
	for iter := 0; iter < 64; iter++ {
		next := MN(n, k) * FiniteSizeFactor(n, k, m)
		if math.Abs(next-m) < 1e-9*m {
			return next
		}
		m = next
	}
	return m
}

// Entropy returns the natural-log binary entropy H(p) with the convention
// 0·ln 0 = 0.
func Entropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log(p) - (1-p)*math.Log(1-p)
}
