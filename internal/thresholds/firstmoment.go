package thresholds

import "math"

// This file evaluates the first-moment machinery of §IV numerically: the
// expected number of alternative signals E[Z_{k,ℓ}] consistent with the
// query results (Lemma 8) and its exponential rate f_{n,k}(ℓ) (Lemmas 9
// and 10). The unit tests use these evaluators to verify Theorem 2's
// phase transition at c = 2 without any simulation.

// logBinom returns ln C(n, k) via lgamma; 0 for degenerate arguments.
func logBinom(n, k float64) float64 {
	if k < 0 || k > n || n < 0 {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(n + 1)
	ln2, _ := math.Lgamma(k + 1)
	ln3, _ := math.Lgamma(n - k + 1)
	return ln1 - ln2 - ln3
}

// CountingBoundSeq returns the exact universal counting lower bound of
// Eq. (1) without asymptotic simplification: each query returns one of
// k+1 values, so m ≥ ln C(n,k) / ln(k+1) queries are necessary for any
// scheme, sequential or parallel. Unlike BPDSeq this is valid in every
// regime, including the dense k = Θ(n) case the paper's related work
// (Alaoui et al., Scarlett–Cevher) studies.
func CountingBoundSeq(n, k int) float64 {
	if n < 1 || k < 1 || k > n {
		return 0
	}
	return logBinom(float64(n), float64(k)) / math.Log(float64(k)+1)
}

// CountingBoundPara is the parallel-design version: Djackov's converse
// doubles the counting bound (Eq. (2)).
func CountingBoundPara(n, k int) float64 {
	return 2 * CountingBoundSeq(n, k)
}

// LogExpectedZ returns ln E[Z_{k,ℓ}(G,y) | R] following Lemma 8:
//
//	E[Z_{k,ℓ}] ≤ C(k,ℓ)·C(n−k, k−ℓ)·( (2π E[X])^{-1/2} )^m
//
// with X ~ Bin≥1(Γ, q), q = 2(1−ℓ/k)k/n and the Jensen-gap simplification
// E[1/√X] = (1+o(1))/√E[X] of Lemma 13 (valid while Γ·q → ∞, i.e. ℓ
// bounded away from k, which is exactly the regime of Proposition 7).
func LogExpectedZ(n, k, m int, ell int) float64 {
	nf, kf, lf := float64(n), float64(k), float64(ell)
	gammaSz := float64((n + 1) / 2) // Γ = ⌈n/2⌉
	q := 2 * (1 - lf/kf) * kf / nf
	if q <= 0 {
		// ℓ = k: no flipped entries, Z counts only σ itself, excluded.
		return math.Inf(-1)
	}
	// E[X] for X ~ Bin≥1(Γ, q): Γq / (1 − (1−q)^Γ).
	mean := gammaSz * q
	denom := -math.Expm1(gammaSz * math.Log1p(-q))
	if denom > 0 {
		mean /= denom
	}
	perQuery := -0.5 * math.Log(2*math.Pi*mean)
	return logBinom(kf, lf) + logBinom(nf-kf, kf-lf) + float64(m)*perQuery
}

// RateF returns f_{n,k}(ℓ) of Lemma 9 — the exponential rate
// (1/n)·ln E[Z_{k,ℓ}] in its entropy form:
//
//	f = (k/n)·H(ℓ/k) + (1−k/n)·H((k−ℓ)/(n−k))
//	  − (c·k/n)·(ln(n/k)/(2 ln k))·ln(2π(1−ℓ/k)k)
//
// where c parametrizes the query count as m = c·k·ln(n/k)/ln k.
func RateF(n, k int, c float64, ell float64) float64 {
	nf, kf := float64(n), float64(k)
	t1 := kf / nf * Entropy(ell/kf)
	t2 := (1 - kf/nf) * Entropy((kf-ell)/(nf-kf))
	arg := 2 * math.Pi * (1 - ell/kf) * kf
	if arg <= 1 {
		arg = 1
	}
	t3 := c * kf / nf * math.Log(nf/kf) / (2 * math.Log(kf)) * math.Log(arg)
	return t1 + t2 - t3
}

// MaxRateF maximizes f_{n,k} over the first-moment range
// ℓ ∈ [0, k − γ·ln k] by golden-section search bracketed around the
// analytic maximizer ℓ* = Θ(k²/n), falling back to a grid scan. Returns
// the maximum value.
func MaxRateF(n, k int, c float64) float64 {
	hi := float64(k) - GammaConst*math.Log(float64(k))
	if hi < 0 {
		hi = 0
	}
	// Dense logarithmic grid: f is smooth with a single interior max at
	// ℓ = Θ(k²/n) (proof of Lemma 10), so a log grid plus local refine
	// is robust.
	best := math.Inf(-1)
	bestL := 0.0
	steps := 400
	for i := 0; i <= steps; i++ {
		l := hi * float64(i) / float64(steps)
		if v := RateF(n, k, c, l); v > best {
			best = v
			bestL = l
		}
	}
	// Local golden-section refinement around the grid argmax.
	lo := math.Max(0, bestL-hi/float64(steps))
	up := math.Min(hi, bestL+hi/float64(steps))
	const phi = 0.6180339887498949
	a, b := lo, up
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := RateF(n, k, c, x1), RateF(n, k, c, x2)
	for iter := 0; iter < 80; iter++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = RateF(n, k, c, x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = RateF(n, k, c, x1)
		}
	}
	if f1 > best {
		best = f1
	}
	if f2 > best {
		best = f2
	}
	return best
}

// CriticalC finds, by bisection, the constant c at which the first-moment
// rate changes sign — numerically recovering the c = 2 phase transition of
// Theorem 2 (Eq. (14): nf_{n,k} < 0 ⟺ c > 2 + o(1)).
func CriticalC(n, k int) float64 {
	lo, hi := 0.1, 16.0
	for iter := 0; iter < 100; iter++ {
		mid := (lo + hi) / 2
		if MaxRateF(n, k, mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MFromC converts the parametrization m = c·k·ln(n/k)/ln k into a query
// count.
func MFromC(n, k int, c float64) float64 {
	return c * float64(k) * math.Log(float64(n)/float64(k)) / math.Log(float64(k))
}
