package thresholds

import (
	"math"
	"testing"
)

func TestThetaRoundTrip(t *testing.T) {
	n := 100000
	for _, theta := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		k := KFromTheta(n, theta)
		got := Theta(n, k)
		if math.Abs(got-theta) > 0.02 {
			t.Fatalf("Theta(KFromTheta(%v)) = %v", theta, got)
		}
	}
}

func TestThetaDegenerate(t *testing.T) {
	if !math.IsNaN(Theta(1, 1)) || !math.IsNaN(Theta(100, 0)) {
		t.Fatal("degenerate Theta should be NaN")
	}
}

func TestKFromThetaClamps(t *testing.T) {
	if KFromTheta(10, -5) != 1 {
		t.Fatal("KFromTheta should clamp to 1")
	}
	if KFromTheta(10, 2) != 10 {
		t.Fatal("KFromTheta should clamp to n")
	}
}

func TestMNFormulaValue(t *testing.T) {
	// Hand-computed: n = 10^4, θ = 0.3 ⇒ k = 16, ln(n/k) = ln 625.
	n := 10000
	k := KFromTheta(n, 0.3)
	if k != 16 {
		t.Fatalf("k = %d, want 16", k)
	}
	th := Theta(n, k)
	s := math.Sqrt(th)
	want := 4 * GammaConst * (1 + s) / (1 - s) * 16 * math.Log(625)
	if got := MN(n, k); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MN = %v, want %v", got, want)
	}
	// For the paper's HIV example the threshold is a few hundred queries.
	if got := MN(n, k); got < 200 || got > 1000 {
		t.Fatalf("MN(10^4, 16) = %v outside plausible range", got)
	}
}

func TestMNDivergesAsThetaTo1(t *testing.T) {
	n := 1 << 20
	mLow := MN(n, KFromTheta(n, 0.2))
	mHigh := MN(n, KFromTheta(n, 0.9))
	if mHigh/float64(KFromTheta(n, 0.9)) <= mLow/float64(KFromTheta(n, 0.2))/10 {
		t.Fatal("per-one-entry cost should explode as θ→1")
	}
	if !math.IsInf(MN(10, 10), 1) {
		t.Fatal("θ = 1 should give +Inf")
	}
}

func TestBPDParaVsSeqFactorTwo(t *testing.T) {
	n, k := 100000, 100
	if math.Abs(BPDPara(n, k)-2*BPDSeq(n, k)) > 1e-9 {
		t.Fatal("parallel threshold must be exactly twice the counting bound")
	}
	// Closed form 2(1-θ)/θ·k.
	th := Theta(n, k)
	want := 2 * (1 - th) / th * float64(k)
	if math.Abs(BPDPara(n, k)-want) > 1e-6*want {
		t.Fatalf("BPDPara = %v, want %v", BPDPara(n, k), want)
	}
}

func TestAlgorithmOrdering(t *testing.T) {
	// For small θ the ordering of the related-work thresholds must hold:
	// GT < Karimi2 < Karimi1 < DonohoTanner ≤ BasisPursuit, and the
	// information-theoretic bound is below all of them.
	n := 1000000
	k := KFromTheta(n, 0.3)
	gt, k2, k1 := GT(n, k), Karimi2(n, k), Karimi1(n, k)
	dt, bp := DonohoTanner(n, k), BasisPursuit(n, k)
	para := BPDPara(n, k)
	if !(gt < k2 && k2 < k1 && k1 < dt && dt < bp) {
		t.Fatalf("ordering broken: gt=%v k2=%v k1=%v dt=%v bp=%v", gt, k2, k1, dt, bp)
	}
	if para >= gt {
		t.Fatalf("info-theoretic bound %v should undercut GT %v at θ=0.3", para, gt)
	}
}

func TestMNvsKarimiCrossover(t *testing.T) {
	// §I.C: the MN threshold matches the performance guarantees of Karimi
	// et al. in order of magnitude; for small θ the constant
	// 4γ(1+√θ)/(1−√θ) starts near 1.57 (below 1.72) and exceeds it as θ
	// grows — the crossover the discussion alludes to.
	n := 1 << 30
	small := KFromTheta(n, 0.01)
	if MN(n, small) > Karimi1(n, small) {
		t.Fatal("for tiny θ, MN should beat Karimi's 1.72 rate")
	}
	big := KFromTheta(n, 0.5)
	if MN(n, big) < Karimi1(n, big) {
		t.Fatal("for θ=0.5, MN's constant should exceed 1.72")
	}
}

func TestGTThetaLimit(t *testing.T) {
	want := math.Ln2 / (1 + math.Ln2)
	if math.Abs(GTThetaLimit-want) > 1e-15 {
		t.Fatalf("GTThetaLimit = %v, want %v", GTThetaLimit, want)
	}
}

func TestFiniteSizeFactor(t *testing.T) {
	n, k := 1000, KFromTheta(1000, 0.3)
	m := MN(n, k)
	f := FiniteSizeFactor(n, k, m)
	if f <= 1 {
		t.Fatalf("finite-size factor %v must exceed 1", f)
	}
	// The factor vanishes as n grows along fixed θ.
	n2 := 1 << 26
	k2 := KFromTheta(n2, 0.3)
	f2 := FiniteSizeFactor(n2, k2, MN(n2, k2))
	if f2 >= f {
		t.Fatalf("finite-size factor should shrink with n: %v vs %v", f2, f)
	}
	if FiniteSizeFactor(100, 5, 0) != 1 {
		t.Fatal("degenerate m should give factor 1")
	}
}

func TestMNFiniteSizeFixedPoint(t *testing.T) {
	n, k := 1000, 8
	m := MNFiniteSize(n, k)
	if m <= MN(n, k) {
		t.Fatal("corrected threshold must exceed the asymptotic one")
	}
	// Fixed point property: m = MN·factor(m).
	want := MN(n, k) * FiniteSizeFactor(n, k, m)
	if math.Abs(m-want) > 1e-6*m {
		t.Fatalf("fixed point violated: %v vs %v", m, want)
	}
}

func TestEntropy(t *testing.T) {
	if Entropy(0) != 0 || Entropy(1) != 0 {
		t.Fatal("H(0) and H(1) must be 0")
	}
	if math.Abs(Entropy(0.5)-math.Ln2) > 1e-15 {
		t.Fatalf("H(1/2) = %v, want ln 2", Entropy(0.5))
	}
	if math.Abs(Entropy(0.3)-Entropy(0.7)) > 1e-15 {
		t.Fatal("entropy must be symmetric")
	}
}

func TestLogBinom(t *testing.T) {
	if math.Abs(logBinom(5, 2)-math.Log(10)) > 1e-12 {
		t.Fatalf("logBinom(5,2) = %v, want ln 10", logBinom(5, 2))
	}
	if !math.IsInf(logBinom(3, 5), -1) {
		t.Fatal("logBinom out of range should be -Inf")
	}
}

func TestFirstMomentPhaseTransition(t *testing.T) {
	// Theorem 2 numerically: the max of f_{n,k} over the small-overlap
	// range is negative for c > 2 and positive for c < 2.
	for _, theta := range []float64{0.2, 0.4, 0.6} {
		n := 1 << 24
		k := KFromTheta(n, theta)
		if v := MaxRateF(n, k, 2.6); v >= 0 {
			t.Fatalf("θ=%v: rate %v at c=2.6 should be negative", theta, v)
		}
		if v := MaxRateF(n, k, 1.0); v <= 0 {
			t.Fatalf("θ=%v: rate %v at c=1.0 should be positive", theta, v)
		}
	}
}

func TestCriticalCNearTwo(t *testing.T) {
	// The numeric critical c approaches 2 as n grows (2 + o(1)).
	n := 1 << 26
	k := KFromTheta(n, 0.4)
	c := CriticalC(n, k)
	if math.Abs(c-2) > 0.35 {
		t.Fatalf("critical c = %v, want ≈ 2", c)
	}
}

func TestLogExpectedZMonotoneInM(t *testing.T) {
	// More queries can only shrink the expected number of impostors.
	n, k := 100000, 316 // θ ≈ 0.5
	ell := k / 10
	prev := math.Inf(1)
	for _, m := range []int{500, 1000, 2000, 4000} {
		v := LogExpectedZ(n, k, m, ell)
		if v >= prev {
			t.Fatalf("LogExpectedZ not decreasing in m at m=%d: %v >= %v", m, v, prev)
		}
		prev = v
	}
}

func TestLogExpectedZSignChange(t *testing.T) {
	// Below the threshold impostors abound; above they vanish (in the
	// annealed count) — check at a representative overlap.
	n, k := 100000, 316
	ell := int(float64(k) * float64(k) / float64(n)) // the maximizing scale
	mLow := int(MFromC(n, k, 0.5))
	mHigh := int(MFromC(n, k, 4))
	if LogExpectedZ(n, k, mLow, ell) <= 0 {
		t.Fatal("far below threshold the annealed impostor count should be exponentially large")
	}
	if LogExpectedZ(n, k, mHigh, ell) >= 0 {
		t.Fatal("far above threshold the annealed impostor count should vanish")
	}
}

func TestLogExpectedZFullOverlap(t *testing.T) {
	if !math.IsInf(LogExpectedZ(1000, 10, 100, 10), -1) {
		t.Fatal("ℓ = k must be excluded (no impostor)")
	}
}

func TestMFromCInvertsBPDPara(t *testing.T) {
	n, k := 50000, 50
	if math.Abs(MFromC(n, k, 2)-BPDPara(n, k)) > 1e-9 {
		t.Fatal("c = 2 must reproduce the parallel threshold")
	}
}

func TestCountingBoundExactVsAsymptotic(t *testing.T) {
	// Sparse regime: the exact counting bound approaches k·ln(n/k)/ln k.
	n := 1 << 22
	k := KFromTheta(n, 0.3)
	exact := CountingBoundSeq(n, k)
	asym := BPDSeq(n, k)
	if ratio := exact / asym; ratio < 0.9 || ratio > 1.3 {
		t.Fatalf("exact/asymptotic counting bound ratio %v", ratio)
	}
	if CountingBoundPara(n, k) != 2*exact {
		t.Fatal("parallel counting bound must double the sequential one")
	}
}

func TestCountingBoundDenseRegime(t *testing.T) {
	// Dense regime k = n/4: the bound is Θ(n/ln n) — sublinear — where
	// the sparse formula would be meaningless.
	n := 100000
	k := n / 4
	exact := CountingBoundSeq(n, k)
	// n·H(1/4)/ln(n/4+1) to within rounding.
	want := float64(n) * Entropy(0.25) / math.Log(float64(k)+1)
	if math.Abs(exact-want)/want > 0.01 {
		t.Fatalf("dense counting bound %v, want ≈ %v", exact, want)
	}
	if exact >= float64(n) {
		t.Fatal("dense counting bound must be sublinear")
	}
	if CountingBoundSeq(10, 0) != 0 || CountingBoundSeq(0, 1) != 0 {
		t.Fatal("degenerate counting bound should be 0")
	}
}
