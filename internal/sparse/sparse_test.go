package sparse

import (
	"testing"
	"testing/quick"

	"pooleddata/internal/pooling"
	"pooleddata/internal/rng"
)

func smallCSR(t *testing.T) *CSR {
	t.Helper()
	// 3x4 matrix:
	//   [1 0 2 0]
	//   [0 0 0 0]
	//   [3 1 0 1]
	m, err := NewCSR(3, 4,
		[]int64{0, 2, 2, 5},
		[]int32{0, 2, 0, 1, 3},
		[]int32{1, 2, 3, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewCSRValidation(t *testing.T) {
	cases := []struct {
		name       string
		rows, cols int
		ptr        []int64
		col, val   []int32
	}{
		{"negative shape", -1, 2, []int64{0}, nil, nil},
		{"short ptr", 2, 2, []int64{0, 1}, []int32{0}, []int32{1}},
		{"ptr start", 1, 2, []int64{1, 1}, nil, nil},
		{"nnz mismatch", 1, 2, []int64{0, 2}, []int32{0}, []int32{1}},
		{"decreasing ptr", 2, 2, []int64{0, 1, 0}, []int32{0}, []int32{1}},
		{"col out of range", 1, 2, []int64{0, 1}, []int32{2}, []int32{1}},
	}
	for _, tc := range cases {
		if _, err := NewCSR(tc.rows, tc.cols, tc.ptr, tc.col, tc.val); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

func TestMulVecSmall(t *testing.T) {
	m := smallCSR(t)
	got := m.MulVec([]int64{1, 2, 3, 4}, nil)
	want := []int64{7, 0, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", got, want)
		}
	}
}

func TestMulVecIntoProvided(t *testing.T) {
	m := smallCSR(t)
	out := make([]int64, 3)
	got := m.MulVec([]int64{1, 0, 0, 0}, out)
	if &got[0] != &out[0] {
		t.Fatal("MulVec did not reuse provided buffer")
	}
	if out[0] != 1 || out[2] != 3 {
		t.Fatalf("MulVec into buffer = %v", out)
	}
}

func TestMulVecPanicsOnBadLengths(t *testing.T) {
	m := smallCSR(t)
	for _, f := range []func(){
		func() { m.MulVec(make([]int64, 3), nil) },
		func() { m.MulVec(make([]int64, 4), make([]int64, 2)) },
		func() { m.MulVecParallel(make([]int64, 5), nil, 2) },
		func() { m.MulVecFloat(make([]float64, 1), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on length mismatch")
				}
			}()
			f()
		}()
	}
}

func TestRowSums(t *testing.T) {
	m := smallCSR(t)
	sums := m.RowSums(2)
	want := []int64{3, 0, 5}
	for i := range want {
		if sums[i] != want[i] {
			t.Fatalf("RowSums = %v, want %v", sums, want)
		}
	}
}

func TestMulVecFloat(t *testing.T) {
	m := smallCSR(t)
	got := m.MulVecFloat([]float64{0.5, 1, 1.5, 2}, nil)
	want := []float64{3.5, 0, 4.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecFloat = %v, want %v", got, want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := smallCSR(t)
	tt := m.Transpose().Transpose()
	if tt.Rows() != m.Rows() || tt.Cols() != m.Cols() || tt.NNZ() != m.NNZ() {
		t.Fatal("transpose changed shape")
	}
	x := []int64{1, 2, 3, 4}
	a := m.MulVec(x, nil)
	b := tt.MulVec(x, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("double transpose changed the operator")
		}
	}
}

func TestTransposeAgainstQuerySide(t *testing.T) {
	g, err := pooling.RandomRegular{}.Build(200, 50, pooling.BuildOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := EntryMultiplicity(g).Transpose()
	b := QueryMultiplicity(g)
	if a.Rows() != b.Rows() || a.NNZ() != b.NNZ() {
		t.Fatal("transpose of entry side differs from query side in shape")
	}
	x := make([]int64, a.Cols())
	r := rng.NewRandSeeded(1)
	for i := range x {
		x[i] = int64(r.Intn(5))
	}
	av := a.MulVec(x, nil)
	bv := b.MulVec(x, nil)
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("row %d: transpose %d vs query-side %d", i, av[i], bv[i])
		}
	}
}

func TestEntryAdjacencyIsZeroOne(t *testing.T) {
	g, err := pooling.RandomRegular{}.Build(300, 40, pooling.BuildOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := EntryAdjacency(g)
	if m.Rows() != 300 || m.Cols() != 40 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	for r := 0; r < m.Rows(); r++ {
		_, vals := m.Row(r)
		for _, v := range vals {
			if v != 1 {
				t.Fatal("adjacency matrix has non-unit value")
			}
		}
	}
	// Row sums must equal distinct degrees.
	sums := m.RowSums(0)
	for i := 0; i < g.N(); i++ {
		if sums[i] != int64(g.DistinctDegree(i)) {
			t.Fatalf("row sum %d != Δ*_%d = %d", sums[i], i, g.DistinctDegree(i))
		}
	}
}

func TestEntryMultiplicityRowSumsAreDegrees(t *testing.T) {
	g, err := pooling.RandomRegular{}.Build(250, 30, pooling.BuildOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]int64, g.M())
	for j := range ones {
		ones[j] = 1
	}
	sums := EntryMultiplicity(g).MulVec(ones, nil)
	for i := 0; i < g.N(); i++ {
		if sums[i] != int64(g.Degree(i)) {
			t.Fatalf("weighted row sum %d != Δ_%d = %d", sums[i], i, g.Degree(i))
		}
	}
}

func TestParallelMatchesSequentialProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewRandSeeded(seed)
		n := 50 + r.Intn(400)
		m := 10 + r.Intn(60)
		g, err := pooling.RandomRegular{}.Build(n, m, pooling.BuildOptions{Seed: seed})
		if err != nil {
			return false
		}
		mat := EntryAdjacency(g)
		x := make([]int64, m)
		for i := range x {
			x[i] = int64(r.Intn(100))
		}
		seqOut := mat.MulVec(x, nil)
		for _, workers := range []int{1, 2, 3, 8} {
			parOut := mat.MulVecParallel(x, nil, workers)
			for i := range seqOut {
				if seqOut[i] != parOut[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNNZBalancedBoundsCoverAllRows(t *testing.T) {
	g, err := pooling.RandomRegular{}.Build(512, 64, pooling.BuildOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m := EntryAdjacency(g)
	for _, w := range []int{1, 2, 5, 16} {
		b := m.nnzBalancedBounds(w)
		if b[0] != 0 || b[len(b)-1] != m.Rows() {
			t.Fatalf("bounds %v do not cover rows", b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				t.Fatalf("bounds %v not monotone", b)
			}
		}
	}
}
