// Package sparse provides the compressed-sparse-row matrices and parallel
// matrix–vector products behind the MN-Algorithm's bulk phase.
//
// The paper observes (§I, "Parallelized Reconstruction") that the decoder's
// neighborhood sums are two matrix–vector products with the unweighted
// biadjacency matrix M ∈ {0,1}^{n×m} of the pooling graph:
//
//	Δ* = M·1   and   Ψ = M·y .
//
// This package implements exactly that: integer CSR SpMV, parallelized over
// contiguous row blocks with one goroutine per block, plus a weighted
// variant (multiplicities A_ij) used by the baseline decoders.
package sparse

import (
	"fmt"
	"runtime"
	"sync"

	"pooleddata/internal/graph"
)

// CSR is an immutable sparse matrix in compressed-sparse-row form with
// int32 values (all use sites store 0/1 indicators or small edge
// multiplicities). Safe for concurrent reads.
type CSR struct {
	rows, cols int
	ptr        []int64
	col        []int32
	val        []int32
}

// NewCSR validates and wraps raw CSR arrays. Column indices within a row
// need not be sorted, but must be in range.
func NewCSR(rows, cols int, ptr []int64, col, val []int32) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative shape %dx%d", rows, cols)
	}
	if len(ptr) != rows+1 || ptr[0] != 0 {
		return nil, fmt.Errorf("sparse: ptr must have length rows+1 and start at 0")
	}
	if int64(len(col)) != ptr[rows] || len(col) != len(val) {
		return nil, fmt.Errorf("sparse: nnz arrays inconsistent")
	}
	for r := 0; r < rows; r++ {
		if ptr[r] > ptr[r+1] {
			return nil, fmt.Errorf("sparse: ptr decreases at row %d", r)
		}
	}
	for _, c := range col {
		if c < 0 || int(c) >= cols {
			return nil, fmt.Errorf("sparse: column %d outside [0,%d)", c, cols)
		}
	}
	return &CSR{rows: rows, cols: cols, ptr: ptr, col: col, val: val}, nil
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int64 { return m.ptr[m.rows] }

// Row returns the column indices and values of row r. The slices alias
// internal storage and must not be modified.
func (m *CSR) Row(r int) (cols, vals []int32) {
	return m.col[m.ptr[r]:m.ptr[r+1]], m.val[m.ptr[r]:m.ptr[r+1]]
}

// EntryAdjacency returns the n×m unweighted biadjacency matrix of g from
// the entry side: row i has a 1 in column j iff query a_j contains entry
// x_i at least once. This is the paper's matrix M.
func EntryAdjacency(g *graph.Bipartite) *CSR {
	n := g.N()
	ptr := make([]int64, n+1)
	for i := 0; i < n; i++ {
		ptr[i+1] = ptr[i] + int64(g.DistinctDegree(i))
	}
	col := make([]int32, ptr[n])
	val := make([]int32, ptr[n])
	for i := 0; i < n; i++ {
		qs, _ := g.EntryQueries(i)
		copy(col[ptr[i]:], qs)
		for p := ptr[i]; p < ptr[i+1]; p++ {
			val[p] = 1
		}
	}
	return &CSR{rows: n, cols: g.M(), ptr: ptr, col: col, val: val}
}

// EntryMultiplicity returns the n×m matrix A with A_ij = multiplicity of
// entry i in query j (the weighted adjacency used by Φ and the baselines).
func EntryMultiplicity(g *graph.Bipartite) *CSR {
	n := g.N()
	ptr := make([]int64, n+1)
	for i := 0; i < n; i++ {
		ptr[i+1] = ptr[i] + int64(g.DistinctDegree(i))
	}
	col := make([]int32, ptr[n])
	val := make([]int32, ptr[n])
	for i := 0; i < n; i++ {
		qs, mu := g.EntryQueries(i)
		copy(col[ptr[i]:], qs)
		copy(val[ptr[i]:], mu)
	}
	return &CSR{rows: n, cols: g.M(), ptr: ptr, col: col, val: val}
}

// QueryMultiplicity returns the m×n transpose of EntryMultiplicity,
// indexed by query. Used by decoders that iterate query-side.
func QueryMultiplicity(g *graph.Bipartite) *CSR {
	m := g.M()
	ptr := make([]int64, m+1)
	for j := 0; j < m; j++ {
		ptr[j+1] = ptr[j] + int64(g.QueryDistinct(j))
	}
	col := make([]int32, ptr[m])
	val := make([]int32, ptr[m])
	for j := 0; j < m; j++ {
		es, mu := g.QueryEntries(j)
		copy(col[ptr[j]:], es)
		copy(val[ptr[j]:], mu)
	}
	return &CSR{rows: m, cols: g.N(), ptr: ptr, col: col, val: val}
}

// MulVec computes out = M·x sequentially. len(x) must equal Cols();
// out is allocated if nil, else it must have length Rows().
func (m *CSR) MulVec(x []int64, out []int64) []int64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec input length %d, want %d", len(x), m.cols))
	}
	if out == nil {
		out = make([]int64, m.rows)
	} else if len(out) != m.rows {
		panic(fmt.Sprintf("sparse: MulVec output length %d, want %d", len(out), m.rows))
	}
	for r := 0; r < m.rows; r++ {
		var s int64
		for p := m.ptr[r]; p < m.ptr[r+1]; p++ {
			s += int64(m.val[p]) * x[m.col[p]]
		}
		out[r] = s
	}
	return out
}

// MulVecParallel computes out = M·x with rows partitioned into contiguous
// blocks across workers goroutines (0 means GOMAXPROCS). The result is
// bit-identical to MulVec: integer addition is associative, and each row is
// written by exactly one worker.
func (m *CSR) MulVecParallel(x []int64, out []int64, workers int) []int64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVecParallel input length %d, want %d", len(x), m.cols))
	}
	if out == nil {
		out = make([]int64, m.rows)
	} else if len(out) != m.rows {
		panic(fmt.Sprintf("sparse: MulVecParallel output length %d, want %d", len(out), m.rows))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m.rows {
		workers = m.rows
	}
	if workers <= 1 || m.NNZ() < 1<<13 {
		return m.MulVec(x, out)
	}
	// Split rows so each block covers roughly equal nnz, not equal row
	// count: degree skew would otherwise unbalance the blocks.
	bounds := m.nnzBalancedBounds(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				var s int64
				for p := m.ptr[r]; p < m.ptr[r+1]; p++ {
					s += int64(m.val[p]) * x[m.col[p]]
				}
				out[r] = s
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// nnzBalancedBounds returns workers+1 row boundaries such that each block
// holds about NNZ/workers stored entries.
func (m *CSR) nnzBalancedBounds(workers int) []int {
	bounds := make([]int, workers+1)
	bounds[workers] = m.rows
	target := m.NNZ() / int64(workers)
	r := 0
	for w := 1; w < workers; w++ {
		goal := int64(w) * target
		for r < m.rows && m.ptr[r] < goal {
			r++
		}
		bounds[w] = r
	}
	return bounds
}

// RowSums returns the vector of row sums M·1 (= Δ* for the adjacency
// matrix), computed in parallel.
func (m *CSR) RowSums(workers int) []int64 {
	ones := make([]int64, m.cols)
	for i := range ones {
		ones[i] = 1
	}
	return m.MulVecParallel(ones, nil, workers)
}

// MulVecFloat computes out = M·x over float64, sequentially. Baseline
// decoders (BP) operate on real-valued messages.
func (m *CSR) MulVecFloat(x []float64, out []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVecFloat input length %d, want %d", len(x), m.cols))
	}
	if out == nil {
		out = make([]float64, m.rows)
	} else if len(out) != m.rows {
		panic(fmt.Sprintf("sparse: MulVecFloat output length %d, want %d", len(out), m.rows))
	}
	for r := 0; r < m.rows; r++ {
		var s float64
		for p := m.ptr[r]; p < m.ptr[r+1]; p++ {
			s += float64(m.val[p]) * x[m.col[p]]
		}
		out[r] = s
	}
	return out
}

// Transpose returns the transposed matrix as a new CSR.
func (m *CSR) Transpose() *CSR {
	ptr := make([]int64, m.cols+1)
	for _, c := range m.col {
		ptr[c+1]++
	}
	for c := 0; c < m.cols; c++ {
		ptr[c+1] += ptr[c]
	}
	col := make([]int32, m.NNZ())
	val := make([]int32, m.NNZ())
	cursor := make([]int64, m.cols)
	copy(cursor, ptr[:m.cols])
	for r := 0; r < m.rows; r++ {
		for p := m.ptr[r]; p < m.ptr[r+1]; p++ {
			c := m.col[p]
			col[cursor[c]] = int32(r)
			val[cursor[c]] = m.val[p]
			cursor[c]++
		}
	}
	return &CSR{rows: m.cols, cols: m.rows, ptr: ptr, col: col, val: val}
}
