package noise

import (
	"pooleddata/internal/decoder"
	"pooleddata/internal/threshgt"
)

// SchemeParams describe the decode instance a decoder is selected for:
// the design dimensions and the target weight. Calibration hooks receive
// them so a policy can switch algorithms by operating point, not just by
// noise kind.
type SchemeParams struct {
	// N is the signal length, M the query count of the design.
	N, M int
	// K is the signal's Hamming weight.
	K int
}

// Selector is a calibration hook: it maps a canonical model plus scheme
// parameters to a decoder, overriding the policy's default for that
// kind.
type Selector func(Model, SchemeParams) decoder.Decoder

// Policy maps a noise model to the most robust decoder for it. The zero
// value is the default policy:
//
//	exact        → the paper's MN-Algorithm
//	gaussian σ   → MN with residual-decreasing swap refinement for small
//	               σ; at σ ≥ SigmaLP the box-constrained LP relaxation,
//	               whose least-squares objective matches the Gaussian
//	               likelihood (judged with the model's residual slack)
//	threshold T  → the threshold-GT scoring decoder (COMP-style for T=1)
//
// The crossover exists because swap refinement repairs a handful of
// noise-flipped ranks cheaply, while at large σ the MN score ordering
// itself degrades and the relaxation's global objective wins.
type Policy struct {
	// SigmaLP is the Gaussian σ at or above which the policy prefers the
	// LP relaxation over swap-refined MN; 0 means 3.
	SigmaLP float64
	// Overrides, keyed by canonical Kind, take precedence over the
	// defaults — the per-model calibration hook.
	Overrides map[Kind]Selector
}

func (p Policy) sigmaLP() float64 {
	if p.SigmaLP <= 0 {
		return 3
	}
	return p.SigmaLP
}

// Select returns the decoder the policy picks for (m, sp). The result is
// never nil.
func (p Policy) Select(m Model, sp SchemeParams) decoder.Decoder {
	c := m.Canon()
	if sel, ok := p.Overrides[c.Kind]; ok && sel != nil {
		if dec := sel(c, sp); dec != nil {
			return dec
		}
	}
	switch c.Kind {
	case Gaussian:
		if c.Sigma >= p.sigmaLP() {
			return decoder.LP{}
		}
		return decoder.Refined{}
	case Threshold:
		return threshgt.Scored{}
	default:
		return decoder.MN{}
	}
}

// DefaultPolicy is the process-wide policy SelectDecoder consults.
var DefaultPolicy = Policy{}

// SelectDecoder maps a model plus scheme parameters to the most robust
// decoder under the default policy — the engine's server-side selection
// entry point for jobs that do not pin a decoder explicitly.
func SelectDecoder(m Model, sp SchemeParams) decoder.Decoder {
	return DefaultPolicy.Select(m, sp)
}
