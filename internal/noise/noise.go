// Package noise is the measurement-noise subsystem of the reconstruction
// service: a declarative noise-model spec shared by every layer (engine
// jobs, campaigns, the pooledd wire API, the figure sweeps), per-signal
// noise streams for the batched measurement path, and a decoder-selection
// policy that picks the most robust reconstruction algorithm for a model.
//
// The paper's guarantees degrade gracefully under noisy and threshold
// oracles (§VI); operationally that means a decode request is not just
// (scheme, counts, k) but also *how* the counts were produced. A Model
// captures that provenance: exact additive counts, additive rounded
// Gaussian noise of standard deviation σ, or threshold-T binarized
// responses. Models are pure values — comparable, canonicalizable, and
// serializable to both JSON ({"kind":"gaussian","sigma":0.5,"seed":7})
// and the compact colon form ("gaussian:0.5:7") used in CSV query
// parameters.
package noise

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"pooleddata/internal/query"
	"pooleddata/internal/rng"
)

// Kind names a noise-model family.
type Kind string

const (
	// Exact is the paper's noiseless additive oracle (the zero model).
	Exact Kind = "exact"
	// Gaussian adds rounded N(0, σ²) noise to every count, clamped at 0.
	Gaussian Kind = "gaussian"
	// Threshold binarizes every count against a threshold T ≥ 1 — the
	// threshold group testing oracle of the §VI outlook.
	Threshold Kind = "threshold"
)

// Model is a declarative noise-model spec. The zero value is the exact
// model. Models travel with decode jobs and campaigns, so equal models
// must compare equal after Canon.
type Model struct {
	// Kind selects the family; empty means Exact.
	Kind Kind `json:"kind"`
	// Sigma is the Gaussian standard deviation (Gaussian models only).
	Sigma float64 `json:"sigma,omitempty"`
	// T is the threshold (Threshold models only); 0 means 1, negative
	// values fail validation.
	T int64 `json:"t,omitempty"`
	// Seed roots the per-signal noise streams: two runs with equal
	// (Model, signals) produce bit-identical perturbed counts. Only
	// Gaussian models consume it.
	Seed uint64 `json:"seed,omitempty"`
}

// Canon returns the canonical form of m: an empty kind becomes Exact, a
// σ = 0 Gaussian collapses to Exact, T is clamped to at least 1, and
// fields irrelevant to the kind are zeroed so canonical models compare
// equal with ==.
func (m Model) Canon() Model {
	switch m.Kind {
	case Gaussian:
		if m.Sigma == 0 {
			return Model{Kind: Exact}
		}
		return Model{Kind: Gaussian, Sigma: m.Sigma, Seed: m.Seed}
	case Threshold:
		t := m.T
		if t < 1 {
			t = 1
		}
		return Model{Kind: Threshold, T: t}
	default:
		return Model{Kind: Exact}
	}
}

// Validate reports whether m describes a well-formed model. The zero
// value is valid (exact). Parameters belonging to a different kind are
// rejected rather than silently dropped — {"sigma":4} without
// "kind":"gaussian" must not decode as the exact model. Seed is
// accepted on any kind (documented as consumed by Gaussian only).
func (m Model) Validate() error {
	switch m.Kind {
	case "", Exact:
		if m.Sigma != 0 || m.T != 0 {
			return fmt.Errorf("noise: exact model carries parameters (sigma=%v, t=%d) — missing kind?", m.Sigma, m.T)
		}
		return nil
	case Gaussian:
		if m.Sigma < 0 || math.IsNaN(m.Sigma) || math.IsInf(m.Sigma, 0) {
			return fmt.Errorf("noise: gaussian sigma %v out of range", m.Sigma)
		}
		if m.T != 0 {
			return fmt.Errorf("noise: gaussian model carries threshold t=%d", m.T)
		}
		return nil
	case Threshold:
		if m.T < 0 {
			return fmt.Errorf("noise: threshold T=%d negative", m.T)
		}
		if m.Sigma != 0 {
			return fmt.Errorf("noise: threshold model carries sigma=%v", m.Sigma)
		}
		return nil
	}
	return fmt.Errorf("noise: unknown kind %q", m.Kind)
}

// IsExact reports whether m canonicalizes to the exact model.
func (m Model) IsExact() bool { return m.Canon().Kind == Exact }

// Key is the canonical string key of the model *family and parameters*
// (seed excluded): the key stats maps and histograms are broken out by.
// Two campaigns with different seeds but the same σ share a key.
func (m Model) Key() string {
	c := m.Canon()
	switch c.Kind {
	case Gaussian:
		return fmt.Sprintf("gaussian(sigma=%g)", c.Sigma)
	case Threshold:
		return fmt.Sprintf("threshold(T=%d)", c.T)
	default:
		return string(Exact)
	}
}

// String is the compact colon wire form: "exact", "gaussian:0.5",
// "gaussian:0.5:7" (with seed), "threshold:2". Parse inverts it.
func (m Model) String() string {
	c := m.Canon()
	switch c.Kind {
	case Gaussian:
		if c.Seed != 0 {
			return fmt.Sprintf("gaussian:%g:%d", c.Sigma, c.Seed)
		}
		return fmt.Sprintf("gaussian:%g", c.Sigma)
	case Threshold:
		return fmt.Sprintf("threshold:%d", c.T)
	default:
		return string(Exact)
	}
}

// Parse reads the compact colon wire form ("kind[:param[:seed]]") used
// where JSON is unavailable — the CSV decode path's ?noise= query
// parameter. An empty string is the exact model.
func Parse(s string) (Model, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Model{Kind: Exact}, nil
	}
	parts := strings.Split(s, ":")
	var m Model
	switch Kind(parts[0]) {
	case Exact:
		if len(parts) > 1 {
			return Model{}, fmt.Errorf("noise: exact takes no parameters in %q", s)
		}
		return Model{Kind: Exact}, nil
	case Gaussian:
		if len(parts) < 2 || len(parts) > 3 {
			return Model{}, fmt.Errorf("noise: want gaussian:sigma[:seed], got %q", s)
		}
		sigma, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return Model{}, fmt.Errorf("noise: bad sigma in %q: %v", s, err)
		}
		m = Model{Kind: Gaussian, Sigma: sigma}
		if len(parts) == 3 {
			seed, err := strconv.ParseUint(parts[2], 10, 64)
			if err != nil {
				return Model{}, fmt.Errorf("noise: bad seed in %q: %v", s, err)
			}
			m.Seed = seed
		}
	case Threshold:
		if len(parts) != 2 {
			return Model{}, fmt.Errorf("noise: want threshold:T, got %q", s)
		}
		t, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return Model{}, fmt.Errorf("noise: bad T in %q: %v", s, err)
		}
		m = Model{Kind: Threshold, T: t}
	default:
		return Model{}, fmt.Errorf("noise: unknown kind %q", parts[0])
	}
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}

// Oracle returns the simulation oracle realizing the model, for the
// single-signal query.Execute path.
func (m Model) Oracle() query.Oracle {
	c := m.Canon()
	switch c.Kind {
	case Gaussian:
		return query.Noisy{Sigma: c.Sigma}
	case Threshold:
		return query.Threshold{T: c.T}
	default:
		return query.Additive{}
	}
}

// Perturb maps one exact additive count to the response the model's
// oracle would return, drawing Gaussian noise from r. It performs the
// same arithmetic as the corresponding query.Oracle, so a batched
// measurement pass that shares the edge traversal and perturbs the
// per-signal counts afterwards is bit-identical to per-signal Execute
// calls with the same streams. r may be nil for deterministic models.
func (m Model) Perturb(v int64, r *rng.Rand) int64 {
	c := m.Canon()
	switch c.Kind {
	case Gaussian:
		if r != nil {
			v += int64(c.Sigma*r.NormFloat64() + 0.5)
		}
		if v < 0 {
			v = 0
		}
		return v
	case Threshold:
		if v >= c.T {
			return 1
		}
		return 0
	default:
		return v
	}
}

// Deterministic reports whether Perturb ignores its stream (exact and
// threshold models); deterministic models skip stream construction in
// the batched path.
func (m Model) Deterministic() bool { return m.Canon().Kind != Gaussian }

// SignalSeed derives the independent noise-stream root of signal b in a
// batch. Per-query streams then derive from it exactly as query.Execute
// derives them from Options.Seed, so batch row b reproduces
// Execute(g, sigmas[b], Options{Oracle: m.Oracle(), Seed: m.SignalSeed(b)}).
func (m Model) SignalSeed(b int) uint64 {
	return rng.DeriveSeed(m.Canon().Seed, uint64(b))
}

// SignalSeeds derives the per-signal stream roots for a batch of nb
// signals — the seeds argument of query.ExecuteBatchNoisy.
func (m Model) SignalSeeds(nb int) []uint64 {
	seeds := make([]uint64, nb)
	for b := range seeds {
		seeds[b] = m.SignalSeed(b)
	}
	return seeds
}

// ResidualSlack is the L1 misfit a consistent estimate is allowed under
// the model. Exact and threshold responses admit no slack. For Gaussian
// noise even the *true* signal misfits: its expected L1 residual is
// m·σ·√(2/π) (the mean absolute value of N(0,σ²), summed over queries),
// so the slack is that expectation plus two standard deviations of the
// sum, rounded up. Estimates within the slack count as consistent in
// job stats.
func (m Model) ResidualSlack(mQueries int) int64 {
	c := m.Canon()
	if c.Kind != Gaussian || mQueries <= 0 {
		return 0
	}
	mf := float64(mQueries)
	mean := mf * c.Sigma * math.Sqrt(2/math.Pi)
	// Var|N(0,σ²)| = σ²(1 − 2/π) per query, independent across queries.
	std := c.Sigma * math.Sqrt(mf*(1-2/math.Pi))
	return int64(math.Ceil(mean + 2*std))
}

// TransformExpected maps a predicted exact count to the noiseless
// expected response under the model: thresholding for threshold models,
// identity otherwise. Residual checks compare transformed predictions
// against the observed responses, so a threshold decode's estimate is
// judged in response space rather than count space.
func (m Model) TransformExpected(v int64) int64 {
	c := m.Canon()
	if c.Kind == Threshold {
		if v >= c.T {
			return 1
		}
		return 0
	}
	return v
}
