package noise

import (
	"encoding/json"
	"testing"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/decoder"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
	"pooleddata/internal/threshgt"
)

func TestCanonAndKeys(t *testing.T) {
	cases := []struct {
		in   Model
		key  string
		str  string
		exct bool
	}{
		{Model{}, "exact", "exact", true},
		{Model{Kind: Exact, Sigma: 3, T: 9, Seed: 1}, "exact", "exact", true},
		{Model{Kind: Gaussian, Sigma: 0}, "exact", "exact", true},
		{Model{Kind: Gaussian, Sigma: 0.5}, "gaussian(sigma=0.5)", "gaussian:0.5", false},
		{Model{Kind: Gaussian, Sigma: 0.5, Seed: 7}, "gaussian(sigma=0.5)", "gaussian:0.5:7", false},
		{Model{Kind: Threshold}, "threshold(T=1)", "threshold:1", false},
		{Model{Kind: Threshold, T: 2, Sigma: 9}, "threshold(T=2)", "threshold:2", false},
	}
	for _, c := range cases {
		if got := c.in.Key(); got != c.key {
			t.Errorf("Key(%+v) = %q, want %q", c.in, got, c.key)
		}
		if got := c.in.String(); got != c.str {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.str)
		}
		if got := c.in.IsExact(); got != c.exct {
			t.Errorf("IsExact(%+v) = %v, want %v", c.in, got, c.exct)
		}
		// Canon must be idempotent and make equal models comparable.
		if c.in.Canon() != c.in.Canon().Canon() {
			t.Errorf("Canon not idempotent for %+v", c.in)
		}
	}
}

func TestValidate(t *testing.T) {
	good := []Model{{}, {Kind: Exact}, {Kind: Gaussian, Sigma: 1}, {Kind: Threshold, T: 3}}
	for _, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", m, err)
		}
	}
	bad := []Model{
		{Kind: "poisson"},
		{Kind: Gaussian, Sigma: -1},
		{Kind: Threshold, T: -2},
		// Parameters without (or contradicting) the kind must not be
		// silently dropped by canonicalization.
		{Sigma: 4},
		{T: 2},
		{Kind: Exact, Sigma: 1},
		{Kind: Gaussian, Sigma: 1, T: 2},
		{Kind: Threshold, T: 2, Sigma: 1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", m)
		}
	}
	// Seed alone is harmless on any kind.
	if err := (Model{Kind: Threshold, T: 2, Seed: 9}).Validate(); err != nil {
		t.Errorf("seed on threshold rejected: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, m := range []Model{
		{Kind: Exact},
		{Kind: Gaussian, Sigma: 0.25},
		{Kind: Gaussian, Sigma: 2, Seed: 99},
		{Kind: Threshold, T: 4},
	} {
		got, err := Parse(m.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", m.String(), err)
		}
		if got.Canon() != m.Canon() {
			t.Fatalf("Parse(%q) = %+v, want %+v", m.String(), got, m)
		}
	}
	if m, err := Parse(""); err != nil || !m.IsExact() {
		t.Fatalf("Parse(\"\") = %+v, %v", m, err)
	}
	for _, s := range []string{"poisson", "gaussian", "gaussian:x", "threshold", "threshold:1:2", "exact:1"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestJSONWireForm(t *testing.T) {
	buf, err := json.Marshal(Model{Kind: Gaussian, Sigma: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"gaussian","sigma":0.5,"seed":7}`
	if string(buf) != want {
		t.Fatalf("json = %s, want %s", buf, want)
	}
	var m Model
	if err := json.Unmarshal([]byte(`{"kind":"threshold","t":2}`), &m); err != nil {
		t.Fatal(err)
	}
	if m.Canon() != (Model{Kind: Threshold, T: 2}) {
		t.Fatalf("unmarshaled %+v", m)
	}
}

func TestPerturbMatchesOracles(t *testing.T) {
	// Perturb on the exact count must reproduce the oracle's arithmetic
	// with the same stream.
	for _, m := range []Model{
		{Kind: Gaussian, Sigma: 1.5},
		{Kind: Threshold, T: 3},
		{},
	} {
		oracle := m.Oracle()
		for v := int64(0); v < 12; v++ {
			r1 := rng.NewRand(rng.NewXoshiro(rng.DeriveSeed(42, uint64(v))))
			r2 := rng.NewRand(rng.NewXoshiro(rng.DeriveSeed(42, uint64(v))))
			// Build a 1-entry pool with multiplicity v over a signal with
			// that entry set, so the additive count is exactly v.
			sigma := bitvec.New(4)
			entries := []int32{1}
			mults := []int32{int32(v)}
			if v == 0 {
				entries, mults = nil, nil
			} else {
				sigma.Set(1)
			}
			want := oracle.Answer(sigma, entries, mults, r1)
			got := m.Perturb(v, r2)
			if got != want {
				t.Fatalf("%s: Perturb(%d) = %d, oracle = %d", m.Key(), v, got, want)
			}
		}
	}
}

func TestBatchNoisyMatchesExecutePerSignal(t *testing.T) {
	// ExecuteBatchNoisy row b must be bit-identical to Execute with the
	// model's oracle and the per-signal seed — independent of batch
	// composition and worker count.
	g, err := pooling.RandomRegular{}.Build(200, 80, pooling.BuildOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Kind: Gaussian, Sigma: 1.2, Seed: 77}
	const nb = 5
	sigmas := make([]*bitvec.Vector, nb)
	for b := range sigmas {
		sigmas[b] = bitvec.Random(200, 4, rng.NewRandSeeded(uint64(10+b)))
	}
	for _, workers := range []int{1, 4} {
		ys := query.ExecuteBatchNoisy(g, sigmas, workers, m, m.SignalSeeds(nb))
		for b := range sigmas {
			want := query.Execute(g, sigmas[b], query.Options{
				Oracle: m.Oracle(), Seed: m.SignalSeed(b),
			}).Y
			for j := range want {
				if ys[b][j] != want[j] {
					t.Fatalf("workers=%d signal %d query %d: batch %d, execute %d",
						workers, b, j, ys[b][j], want[j])
				}
			}
		}
	}
	// Same model, same batch → identical noise (reproducibility).
	a := query.ExecuteBatchNoisy(g, sigmas, 3, m, m.SignalSeeds(nb))
	b := query.ExecuteBatchNoisy(g, sigmas, 2, m, m.SignalSeeds(nb))
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("same seed diverged at (%d,%d)", i, j)
			}
		}
	}
	// A different seed must actually change something.
	m2 := m
	m2.Seed = 78
	c := query.ExecuteBatchNoisy(g, sigmas, 3, m2, m2.SignalSeeds(nb))
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestSelectDecoderPolicy(t *testing.T) {
	sp := SchemeParams{N: 1000, M: 300, K: 10}
	cases := []struct {
		m    Model
		want string
	}{
		{Model{}, decoder.MN{}.Name()},
		{Model{Kind: Gaussian, Sigma: 0.5}, decoder.Refined{}.Name()},
		{Model{Kind: Gaussian, Sigma: 5}, decoder.LP{}.Name()},
		{Model{Kind: Threshold, T: 1}, threshgt.Scored{}.Name()},
		{Model{Kind: Threshold, T: 3}, threshgt.Scored{}.Name()},
	}
	for _, c := range cases {
		if got := SelectDecoder(c.m, sp).Name(); got != c.want {
			t.Errorf("SelectDecoder(%s) = %s, want %s", c.m.Key(), got, c.want)
		}
	}
	// Calibration hook: an override wins over the default.
	p := Policy{Overrides: map[Kind]Selector{
		Gaussian: func(Model, SchemeParams) decoder.Decoder { return decoder.BP{} },
	}}
	if got := p.Select(Model{Kind: Gaussian, Sigma: 0.5}, sp).Name(); got != (decoder.BP{}).Name() {
		t.Errorf("override ignored: got %s", got)
	}
	// A nil override result falls back to the default.
	p.Overrides[Gaussian] = func(Model, SchemeParams) decoder.Decoder { return nil }
	if got := p.Select(Model{Kind: Gaussian, Sigma: 0.5}, sp).Name(); got != (decoder.Refined{}).Name() {
		t.Errorf("nil override fallback: got %s", got)
	}
}

func TestResidualSlack(t *testing.T) {
	if got := (Model{}).ResidualSlack(100); got != 0 {
		t.Fatalf("exact slack %d", got)
	}
	if got := (Model{Kind: Threshold, T: 2}).ResidualSlack(100); got != 0 {
		t.Fatalf("threshold slack %d", got)
	}
	s1 := Model{Kind: Gaussian, Sigma: 1}.ResidualSlack(100)
	s2 := Model{Kind: Gaussian, Sigma: 2}.ResidualSlack(100)
	if s1 <= 0 || s2 <= s1 {
		t.Fatalf("gaussian slack not increasing: σ=1 → %d, σ=2 → %d", s1, s2)
	}
	// Slack must cover the typical residual of the true signal: E|noise|
	// per query is σ·√(2/π) ≈ 0.8σ, so 100 queries at σ=1 misfit ≈ 80.
	if s1 < 80 || s1 > 120 {
		t.Fatalf("σ=1 slack %d outside plausible [80,120]", s1)
	}
}

func TestTransformExpected(t *testing.T) {
	m := Model{Kind: Threshold, T: 3}
	for v, want := range map[int64]int64{0: 0, 2: 0, 3: 1, 9: 1} {
		if got := m.TransformExpected(v); got != want {
			t.Errorf("threshold transform(%d) = %d, want %d", v, got, want)
		}
	}
	if got := (Model{Kind: Gaussian, Sigma: 1}).TransformExpected(5); got != 5 {
		t.Errorf("gaussian transform should be identity, got %d", got)
	}
}
