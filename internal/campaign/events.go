package campaign

import (
	"log/slog"

	"pooleddata/internal/wal"
)

// The campaign event log: every job settlement appends one monotone,
// gapless-sequence event, and the campaign's terminal transition (all
// jobs settled, or expiry by GC) appends exactly one closing event that
// seals the log. The log is bounded by construction — at most Total+1
// entries — so it is the shared replay buffer for any number of
// streaming subscribers: a subscriber keeps only a cursor (the last
// sequence number it consumed), never a private queue, which is what
// makes slow-client handling an eviction decision at the transport
// instead of unbounded per-client buffering. Cursors are resumable:
// EventsSince(seq) replays everything after seq, which is exactly the
// SSE Last-Event-ID contract pooledd serves.

// Event types.
const (
	// EventResult is a per-job settlement; Event.Job carries the result.
	EventResult = "result"
	// EventDone is the single terminal event that ends every stream.
	EventDone = "done"
)

// Event is one entry in a campaign's monotone event log.
type Event struct {
	// Seq is the 1-based, gapless sequence number — the resume cursor
	// (and the SSE event id).
	Seq int64 `json:"seq"`
	// Type is EventResult or EventDone.
	Type string `json:"type"`
	// Job is the settled job (EventResult only). It is immutable once
	// appended and shared across subscribers.
	Job *JobResult `json:"job,omitempty"`
	// Final counters (EventDone only).
	State     State `json:"state,omitempty"`
	Total     int   `json:"total,omitempty"`
	Completed int   `json:"completed,omitempty"`
	Failed    int   `json:"failed,omitempty"`
	Canceled  int   `json:"canceled,omitempty"`
}

// Terminal reports whether the event closes its stream.
func (ev Event) Terminal() bool { return ev.Type == EventDone }

// appendEventLocked appends ev with the next sequence number. A sealed
// log (terminal event present) drops late events: a job that settles
// after GC expired its campaign updates the counters but is not
// re-announced to streams that already received their closing event.
func (cp *Campaign) appendEventLocked(ev Event) {
	if cp.sealed {
		return
	}
	ev.Seq = int64(len(cp.events)) + 1
	cp.events = append(cp.events, ev)
}

// appendDoneLocked seals the log with the terminal event and, for
// journaled campaigns, writes the WAL's terminal seal record — after
// this the on-disk log is complete and recovery restores the campaign
// read-only instead of re-dispatching anything.
func (cp *Campaign) appendDoneLocked() {
	if cp.sealed {
		return
	}
	cp.appendEventLocked(Event{
		Type: EventDone, State: cp.stateLocked(), Total: cp.total,
		Completed: cp.completed, Failed: cp.failed, Canceled: cp.canceledJobs,
	})
	cp.sealed = true
	if cp.jnl != nil {
		err := cp.jnl.Seal(cp.id, wal.Seal{
			State:     string(cp.stateLocked()),
			Completed: cp.completed, Failed: cp.failed, Canceled: cp.canceledJobs,
		})
		if err != nil {
			slog.Warn("campaign: wal seal failed", "campaign", cp.id, "err", err)
		}
	}
}

// EventsSince returns the events with sequence numbers greater than seq
// (a copy safe to use without locks), the notification channel that
// closes on the next update, and whether the log is sealed — once
// sealed, the returned events are the last the cursor will ever see, so
// a streamer that has written them can close its stream. Cursors out of
// range are clamped: negative means "from the start", beyond the log
// means "nothing yet".
func (cp *Campaign) EventsSince(seq int64) (evs []Event, changed <-chan struct{}, sealed bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	if seq > int64(len(cp.events)) {
		seq = int64(len(cp.events))
	}
	// Seq is position+1, so the events after cursor seq start at index
	// seq. Entries are never mutated after append, so copying the slice
	// header region is enough.
	evs = append([]Event(nil), cp.events[seq:]...)
	return evs, cp.changed, cp.sealed
}

// Events reports the current log length — the sequence number of the
// newest event.
func (cp *Campaign) Events() int64 {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return int64(len(cp.events))
}
