package campaign

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"pooleddata/internal/decoder"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/wal"
)

// Boot-time recovery: Restore rebuilds campaigns from the logs
// wal.Recover produced. A sealed log becomes a read-only finished
// campaign — its event log (and so every SSE Last-Event-ID cursor) is
// exactly what clients saw before the restart. An unsealed log resumes:
// already-journaled settlements replay into the event log, and the
// remaining jobs re-enter the dispatcher's fair Offer/ErrSaturated loop
// like freshly admitted work. Decodes are deterministic and idempotent
// (seeded scheme builds, deterministic decoders, per-signal noise
// seeds), so a re-dispatched job settles bit-identically to the run the
// crash interrupted.

// SchemeResolver maps a journaled campaign spec back to a live scheme.
// pooledd resolves the spec's SchemeRef against its scheme registry,
// rebuilding parametric designs on demand. A resolver error fails the
// campaign's remaining jobs (the settled prefix is kept); it never
// fails boot.
type SchemeResolver func(spec wal.CampaignSpec) (*engine.Scheme, error)

// RestoredCampaign reports one replayed campaign.
type RestoredCampaign struct {
	Campaign *Campaign
	// State is the recovery outcome — "done", "canceled", or "expired"
	// for sealed logs restored read-only, "running" for campaigns whose
	// jobs re-dispatched, "failed" when the spec could not be brought
	// back to life (unresolvable scheme, unparseable noise model).
	State string
	// Redispatched counts the jobs re-entered into the dispatcher.
	Redispatched int
}

// Restore replays recovered logs into the store, in the creation order
// wal.Recover sorted them. It must run before the store serves traffic
// (pooledd calls it during boot, after -designs and -snapshot load the
// scheme registry the resolver consults).
func (st *Store) Restore(logs []wal.Log, resolve SchemeResolver) []RestoredCampaign {
	if st.cfg.WAL == nil || len(logs) == 0 {
		return nil
	}
	out := make([]RestoredCampaign, 0, len(logs))
	for _, lg := range logs {
		rc := st.restoreOne(lg, resolve)
		if rc.Campaign == nil {
			continue
		}
		st.cfg.WAL.NoteRecovered(rc.State)
		out = append(out, rc)
	}
	st.signalWake()
	return out
}

func (st *Store) restoreOne(lg wal.Log, resolve SchemeResolver) RestoredCampaign {
	spec := lg.Spec
	total := len(spec.Batch)
	tenant := spec.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}

	nm, nerr := noise.Parse(spec.Noise)
	ctx, cancel := context.WithCancel(context.Background())
	cp := &Campaign{
		id:     spec.ID,
		tenant: tenant,
		total:  total,
		noise:  nm.Canon(),
		trace:  spec.TraceID,
		ctx:    ctx, cancel: cancel,
		changed: make(chan struct{}),
	}
	cp.onSettled = func(decodeNS int64, completed bool) { st.jobSettled(tenant, decodeNS, completed) }
	cp.onCancel = func() { st.purgeCanceled(cp) }

	// Replay the journaled settlements. The log was normalized by
	// Recover (sorted, deduped, contiguous from seq 1), so replaying in
	// order reproduces the exact pre-crash event log — but the indices
	// inside the records are still untrusted bytes from disk.
	seen := make(map[int]bool, len(lg.Events))
	replayErr := error(nil)
	for _, er := range lg.Events {
		if er.Index < 0 || er.Index >= total || seen[er.Index] {
			replayErr = fmt.Errorf("wal: event %d references job %d twice or out of range", er.Seq, er.Index)
			break
		}
		seen[er.Index] = true
		jr := &JobResult{
			Index: er.Index, Residual: er.Residual, Consistent: er.Consistent,
			DecodeNS: er.DecodeNS, Decoder: er.Decoder, Error: er.Error,
			TraceID: spec.TraceID,
		}
		if len(er.Support) > 0 {
			jr.Support = append([]int(nil), er.Support...)
		}
		switch er.Status {
		case wal.StatusCompleted:
			cp.completed++
		case wal.StatusCanceled:
			cp.canceledJobs++
		default:
			cp.failed++
		}
		cp.results = append(cp.results, *jr)
		cp.events = append(cp.events, Event{Seq: int64(len(cp.events)) + 1, Type: EventResult, Job: jr})
	}
	if replayErr != nil {
		// Drop the replayed state wholesale: a log that lies about one
		// index cannot be trusted about any, and the jobs re-run anyway.
		cp.completed, cp.failed, cp.canceledJobs = 0, 0, 0
		cp.results, cp.events = nil, nil
		seen = map[int]bool{}
	}

	// Admission bookkeeping: recovered campaigns bypass MaxActive and
	// tenant quotas — they were admitted before the crash, and refusing
	// them now would drop acknowledged work. IDs never regress: Create
	// continues the sequence above every recovered id.
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		cancel()
		return RestoredCampaign{}
	}
	if n := campaignSeq(spec.ID); n > st.nextID {
		st.nextID = n
	}
	if _, dup := st.byID[spec.ID]; dup {
		st.mu.Unlock()
		cancel()
		return RestoredCampaign{}
	}
	st.byID[spec.ID] = cp
	st.mu.Unlock()

	settled := cp.completed + cp.failed + cp.canceledJobs

	// A sealed log is a finished campaign: restore it read-only — the
	// terminal event is reconstructed, never re-journaled, and nothing
	// may ever append to the file again (a record after a seal is the
	// interior-corruption case Recover refuses boot over).
	if lg.Seal != nil {
		now := time.Now()
		switch State(lg.Seal.State) {
		case Canceled:
			cp.canceledFlag = true
			cp.canceledAt = now
		case Expired:
			cp.expiredFlag = true
			cp.quotaReleased = true
		}
		if settled == total {
			cp.finished = now
		} else if !cp.expiredFlag {
			// A done/canceled seal with jobs unaccounted for is a log that
			// contradicts itself; restore conservatively as expired so
			// waiters still observe a terminal state.
			cp.expiredFlag = true
			cp.quotaReleased = true
		}
		cp.events = append(cp.events, Event{
			Seq: int64(len(cp.events)) + 1, Type: EventDone, State: cp.stateLocked(),
			Total: total, Completed: cp.completed, Failed: cp.failed, Canceled: cp.canceledJobs,
		})
		cp.sealed = true
		return RestoredCampaign{Campaign: cp, State: string(cp.stateLocked())}
	}

	// The campaign still has live work (or a terminal record the crash
	// cut off): reattach the journal so the remaining settles append to
	// the same log.
	if err := st.cfg.WAL.Resume(spec.ID); err != nil {
		slog.Warn("campaign: wal resume failed; continuing without journal", "campaign", spec.ID, "err", err)
	} else {
		cp.jnl = st.cfg.WAL
	}

	switch {
	case replayErr != nil, nerr != nil:
		err := errors.Join(replayErr, nerr)
		st.settleMissing(cp, seen, fmt.Errorf("wal recovery: %w", err))
		st.finalizeRestored(cp)
		return RestoredCampaign{Campaign: cp, State: "failed"}
	case lg.Canceled:
		// Cancellation was journaled: the un-settled jobs settle as
		// canceled, exactly as they would have had the crash not raced
		// the cancel's drain.
		cp.canceledFlag = true
		cp.canceledAt = time.Now()
		cancel()
		st.settleMissing(cp, seen, context.Canceled)
		st.finalizeRestored(cp)
		return RestoredCampaign{Campaign: cp, State: string(Canceled)}
	}

	var dec decoder.Decoder
	var es *engine.Scheme
	var err error
	if spec.Decoder != "" {
		dec, err = engine.DecoderByName(spec.Decoder)
	}
	if err == nil {
		es, err = resolve(spec)
	}
	if err == nil {
		err = validateRestoredScheme(es, spec)
	}
	if err != nil {
		st.settleMissing(cp, seen, fmt.Errorf("wal recovery: %w", err))
		st.finalizeRestored(cp)
		return RestoredCampaign{Campaign: cp, State: "failed"}
	}

	// Re-dispatch the unsettled jobs through the normal fair-dispatch
	// path. The shared OnDone routes settlements by tag, same as Create —
	// including the shard-unavailable interception, so a recovered
	// campaign survives a dead worker the same way a fresh one does.
	jobs := make([]engine.Job, total)
	var onDone func(engine.Result, error)
	onDone = func(res engine.Result, err error) {
		if err != nil && errors.Is(err, engine.ErrShardUnavailable) &&
			st.maybeRedispatch(pendingJob{cp: cp, job: jobs[res.Tag]}, &st.redispatchedDead) {
			return
		}
		cp.settle(res.Tag, res, err)
	}
	redispatched := 0
	st.mu.Lock()
	ts := st.tenantLocked(tenant)
	for i, y := range spec.Batch {
		if seen[i] {
			continue
		}
		jobs[i] = engine.Job{
			Scheme: es, Y: y, K: spec.K, Noise: nm, Dec: dec,
			Tag: i, OnDone: onDone, TraceID: spec.TraceID,
		}
		ts.push(pendingJob{cp: cp, job: jobs[i]})
		redispatched++
	}
	ts.unsettled += redispatched
	st.pendingTotal += redispatched
	st.mu.Unlock()

	if redispatched == 0 {
		// Every job was journaled but the seal was lost to the crash:
		// sealing now writes the terminal record the old process missed.
		st.finalizeRestored(cp)
		return RestoredCampaign{Campaign: cp, State: string(Done)}
	}
	return RestoredCampaign{Campaign: cp, State: string(Running), Redispatched: redispatched}
}

// validateRestoredScheme cross-checks a resolved scheme against the
// journaled batch shape before jobs are built from it.
func validateRestoredScheme(es *engine.Scheme, spec wal.CampaignSpec) error {
	if es == nil || es.G == nil {
		return errors.New("scheme resolved to nothing")
	}
	if len(spec.Batch) == 0 {
		return errors.New("journaled batch is empty")
	}
	if spec.K < 0 || spec.K > es.G.N() {
		return fmt.Errorf("journaled k=%d out of [0,%d]", spec.K, es.G.N())
	}
	m := es.G.M()
	for i, y := range spec.Batch {
		if len(y) != m {
			return fmt.Errorf("journaled job %d has %d counts for %d queries", i, len(y), m)
		}
	}
	return nil
}

// settleMissing settles every job the log had no record for. Runs
// without st.mu held — settle takes cp.mu and calls the store hooks.
func (st *Store) settleMissing(cp *Campaign, seen map[int]bool, cause error) {
	for i := 0; i < cp.total; i++ {
		if !seen[i] {
			cp.settle(i, engine.Result{}, cause)
		}
	}
}

// finalizeRestored seals a campaign whose jobs are all settled but
// whose log lost its terminal record to the crash (settle only seals
// when it performs the final settlement itself).
func (st *Store) finalizeRestored(cp *Campaign) {
	cp.mu.Lock()
	if cp.settledLocked() == cp.total && !cp.sealed {
		if cp.finished.IsZero() {
			cp.finished = time.Now()
		}
		cp.appendDoneLocked()
		cp.notifyLocked()
	}
	cp.mu.Unlock()
}
