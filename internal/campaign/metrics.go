package campaign

import (
	"pooleddata/internal/engine"
	"pooleddata/metrics"
)

// RegisterStoreMetrics exports the store's campaign gauges, dispatcher
// counters, and per-tenant breakdown on reg as a scrape-time collector.
// Tenant label values are bounded at the source (campaign retention and
// the bounded per-tenant latency set) and backstopped by the exporter's
// per-family series cap, so a flood of distinct tenants collapses into
// the "other" series instead of growing the scrape. Nil-safe.
func RegisterStoreMetrics(reg *metrics.Registry, st *Store) {
	if reg == nil || st == nil {
		return
	}
	reg.OnGather(func(e *metrics.Exporter) {
		active, finished := st.Counts()
		const campHelp = "Retained campaigns by state."
		e.Gauge("pooled_campaigns", campHelp, float64(active), "state", "active")
		e.Gauge("pooled_campaigns", campHelp, float64(finished), "state", "finished")

		st.mu.Lock()
		pending := st.pendingTotal
		st.mu.Unlock()
		e.Gauge("pooled_campaign_pending_jobs", "Admitted campaign jobs waiting for dispatch.", float64(pending))

		e.Counter("pooled_campaign_dispatched_total", "Campaign jobs handed to the cluster by the fair dispatcher.", float64(st.dispatched.Load()))
		e.Counter("pooled_campaign_rotations_total", "Tenant rotation turns taken by the dispatcher.", float64(st.rotations.Load()))
		e.Counter("pooled_campaign_credits_total", "Weighted turn credits granted across rotation turns.", float64(st.creditsGiven.Load()))
		e.Counter("pooled_campaign_requeues_total", "Jobs requeued because their shard queue was saturated.", float64(st.requeues.Load()))
		const redispHelp = "Campaign jobs re-dispatched to surviving shards after a shard-unavailable failure, by discovery path."
		e.Counter("pooled_jobs_redispatched_total", redispHelp, float64(st.redispatchedDead.Load()), "reason", "settled_unavailable")
		e.Counter("pooled_jobs_redispatched_total", redispHelp, float64(st.redispatchedOffer.Load()), "reason", "offer_unavailable")
		e.Counter("pooled_campaigns_gc_total", "Campaigns reaped by retention GC.", float64(st.gcCollected.Load()))
		e.Counter("pooled_campaigns_expired_total", "Reaped campaigns that expired with unsettled jobs.", float64(st.expiredReaped.Load()))

		for name, ts := range st.Tenants() {
			e.Gauge("pooled_tenant_active_campaigns", "Unfinished retained campaigns, per tenant.", float64(ts.Active), "tenant", name)
			e.Gauge("pooled_tenant_finished_campaigns", "Finished retained campaigns, per tenant.", float64(ts.Finished), "tenant", name)
			e.Gauge("pooled_tenant_pending_jobs", "Jobs awaiting dispatch, per tenant.", float64(ts.PendingJobs), "tenant", name)
			e.Gauge("pooled_tenant_unsettled_jobs", "Admitted jobs not yet settled (the TenantMaxQueued quota gauge), per tenant.", float64(ts.UnsettledJobs), "tenant", name)
			e.Gauge("pooled_tenant_weight", "Dispatch weight (jobs per rotation turn), per tenant.", float64(ts.Weight), "tenant", name)
			if ts.DecodeLatency != nil {
				engine.ExportLatency(e, "pooled_tenant_decode_seconds", "Completed-job decode latency, per tenant.", *ts.DecodeLatency, "tenant", name)
			}
		}
	})
}
