package campaign

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/engine"
	"pooleddata/internal/wal"
)

func testWAL(t testing.TB, dir string) *wal.WAL {
	t.Helper()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncPolicy{Mode: wal.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// waitDone polls until the campaign settles completely.
func waitDone(t testing.TB, cp *Campaign) Progress {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		p := cp.Wait(context.Background(), 50*time.Millisecond)
		if p.Terminal() && p.Settled() == p.Total {
			return p
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not finish: %+v", p)
		}
	}
}

// TestJournalThenRestoreSealed runs a campaign to completion under a
// WAL, then restores it in a fresh store: the replayed campaign must be
// read-only done with bit-identical results and the exact same event
// sequence numbers.
func TestJournalThenRestoreSealed(t *testing.T) {
	dir := t.TempDir()
	c := testCluster(t, 2, 2, 0)
	w := testWAL(t, dir)
	st := NewStore(c, Config{WAL: w})
	const n, k, m, batch = 300, 5, 240, 8
	s, signals, ys := testBatch(t, c, n, k, m, batch, 3)

	cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k, SchemeRef: "ref-1", TraceID: "tr"})
	if err != nil {
		t.Fatal(err)
	}
	p := waitDone(t, cp)
	if p.State != Done || p.Completed != batch {
		t.Fatalf("final progress: %+v", p)
	}
	wantEvents, _, sealed := cp.EventsSince(0)
	if !sealed || len(wantEvents) != batch+1 {
		t.Fatalf("source log: sealed=%v events=%d", sealed, len(wantEvents))
	}
	st.Close()
	w.Close()

	w2 := testWAL(t, dir)
	logs, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 || logs[0].Seal == nil || logs[0].Seal.State != string(Done) {
		t.Fatalf("recovered logs: %+v", logs)
	}
	if logs[0].Spec.SchemeRef != "ref-1" || logs[0].Spec.K != k {
		t.Fatalf("spec: %+v", logs[0].Spec)
	}

	st2 := NewStore(c, Config{WAL: w2})
	defer st2.Close()
	resolveCalled := false
	restored := st2.Restore(logs, func(spec wal.CampaignSpec) (*engine.Scheme, error) {
		resolveCalled = true
		return s, nil
	})
	if resolveCalled {
		t.Fatal("sealed campaign should restore without resolving its scheme")
	}
	if len(restored) != 1 || restored[0].State != string(Done) || restored[0].Redispatched != 0 {
		t.Fatalf("restored: %+v", restored)
	}
	cp2, ok := st2.Get(cp.ID())
	if !ok {
		t.Fatal("restored campaign not in store")
	}
	p2 := cp2.Progress()
	if p2.State != Done || p2.Completed != batch {
		t.Fatalf("restored progress: %+v", p2)
	}
	for i, res := range p2.Results {
		if res.TraceID != "tr" {
			t.Fatalf("result %d lost its trace id: %+v", i, res)
		}
		if !bitvec.FromIndices(n, res.Support).Equal(signals[res.Index]) {
			t.Fatalf("restored result %d does not match its signal", i)
		}
	}
	gotEvents, _, sealed := cp2.EventsSince(0)
	if !sealed || len(gotEvents) != len(wantEvents) {
		t.Fatalf("restored log: sealed=%v events=%d want %d", sealed, len(gotEvents), len(wantEvents))
	}
	for i := range gotEvents {
		if gotEvents[i].Seq != wantEvents[i].Seq || gotEvents[i].Type != wantEvents[i].Type {
			t.Fatalf("event %d: got %+v want %+v", i, gotEvents[i], wantEvents[i])
		}
	}

	// New campaigns continue the id sequence above the recovered id.
	cp3, err := st2.Create(Request{Scheme: s, Batch: ys[:1], K: k})
	if err != nil {
		t.Fatal(err)
	}
	if campaignSeq(cp3.ID()) <= campaignSeq(cp.ID()) {
		t.Fatalf("id sequence regressed: %s after %s", cp3.ID(), cp.ID())
	}
}

// TestRestoreRedispatchesUnsettled interrupts a journaled campaign
// mid-flight (by detaching on graceful close), then restores: the
// unsettled jobs must re-dispatch and settle bit-identically to a
// direct decode, and the resumed log must seal.
func TestRestoreRedispatchesUnsettled(t *testing.T) {
	dir := t.TempDir()
	c := testCluster(t, 2, 2, 0)
	w := testWAL(t, dir)
	st := NewStore(c, Config{WAL: w})
	const n, k, m, batch = 300, 5, 240, 8
	s, signals, ys := testBatch(t, c, n, k, m, batch, 11)

	cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k, SchemeRef: "ref-2"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, cp)
	st.Close()
	w.Close()

	// Rewrite the log as if the crash hit after two settled events: keep
	// the spec and the first two event records, drop the rest.
	w2 := testWAL(t, dir)
	logs, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	full := logs[0]
	path := filepath.Join(dir, cp.ID()+".wal")
	os.Remove(path)
	if err := w2.Begin(full.Spec); err != nil {
		t.Fatal(err)
	}
	for _, ev := range full.Events[:2] {
		if err := w2.Append(full.Spec.ID, ev); err != nil {
			t.Fatal(err)
		}
	}
	w2.Close()

	w3 := testWAL(t, dir)
	logs, err = w3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 || logs[0].Seal != nil || len(logs[0].Events) != 2 {
		t.Fatalf("truncated log: %+v", logs)
	}
	st3 := NewStore(c, Config{WAL: w3})
	restored := st3.Restore(logs, func(spec wal.CampaignSpec) (*engine.Scheme, error) {
		if spec.SchemeRef != "ref-2" {
			t.Errorf("resolver got ref %q", spec.SchemeRef)
		}
		return s, nil
	})
	if len(restored) != 1 || restored[0].State != string(Running) || restored[0].Redispatched != batch-2 {
		t.Fatalf("restored: %+v", restored)
	}
	p := waitDone(t, restored[0].Campaign)
	if p.State != Done || p.Completed != batch {
		t.Fatalf("replayed progress: %+v", p)
	}
	for _, res := range p.Results {
		if !bitvec.FromIndices(n, res.Support).Equal(signals[res.Index]) {
			t.Fatalf("replayed result %d does not match its signal", res.Index)
		}
	}
	st3.Close()
	w3.Close()

	// The resumed log must have sealed: a fourth recovery sees it done.
	w4 := testWAL(t, dir)
	logs, err = w4.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 || logs[0].Seal == nil || logs[0].Seal.State != string(Done) ||
		logs[0].Seal.Completed != batch {
		t.Fatalf("resumed log did not seal: %+v", logs)
	}
	if len(logs[0].Events) != batch {
		t.Fatalf("resumed log has %d events, want %d", len(logs[0].Events), batch)
	}
}

// TestGracefulCloseDoesNotJournalShutdownSettles: Close detaches the
// journal before pending jobs settle as store-closed, so an unfinished
// campaign's log stays open (resumable) with only the real settlements.
func TestGracefulCloseDoesNotJournalShutdownSettles(t *testing.T) {
	dir := t.TempDir()
	c := testCluster(t, 1, 1, 2)
	w := testWAL(t, dir)
	st := NewStore(c, Config{WAL: w})
	const n, k, m, batch = 80, 2, 60, 6
	s, _, ys := testBatch(t, c, n, k, m, batch, 13)

	release := make(chan struct{})
	cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Dec: stallDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the single worker, then shut down with most jobs pending.
	deadline := time.Now().Add(time.Second)
	for c.Shard(0).Stats().JobsSubmitted == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st.Close()
	close(release)
	waitDone(t, cp) // shutdown settles drain through the detached campaign
	w.Close()

	w2 := testWAL(t, dir)
	logs, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 {
		t.Fatalf("logs: %+v", logs)
	}
	if logs[0].Seal != nil {
		t.Fatalf("shutdown settles sealed the log: %+v", logs[0].Seal)
	}
	// Only decodes that genuinely finished before Close may appear; the
	// store-closed failures must not.
	for _, ev := range logs[0].Events {
		if ev.Status == wal.StatusFailed {
			t.Fatalf("shutdown settle was journaled: %+v", ev)
		}
	}
	if len(logs[0].Events) >= batch {
		t.Fatalf("all %d events journaled; shutdown settles leaked into the log", len(logs[0].Events))
	}
}

// TestRestoreCanceledLog replays a log with a cancel mark and no seal:
// the missing jobs settle as canceled and the campaign seals canceled.
func TestRestoreCanceledLog(t *testing.T) {
	dir := t.TempDir()
	c := testCluster(t, 1, 1, 0)
	w := testWAL(t, dir)
	const batch = 4
	spec := wal.CampaignSpec{
		ID: "c7", Tenant: "acme", Noise: "exact", K: 2,
		Batch: [][]int64{{0}, {0}, {0}, {0}},
	}
	if err := w.Begin(spec); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("c7", wal.EventRecord{Seq: 1, Index: 0, Status: wal.StatusCompleted}); err != nil {
		t.Fatal(err)
	}
	if err := w.CancelMark("c7"); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2 := testWAL(t, dir)
	logs, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(c, Config{WAL: w2})
	defer st.Close()
	restored := st.Restore(logs, func(wal.CampaignSpec) (*engine.Scheme, error) {
		t.Error("canceled campaign should not resolve its scheme")
		return nil, errors.New("unused")
	})
	if len(restored) != 1 || restored[0].State != string(Canceled) {
		t.Fatalf("restored: %+v", restored)
	}
	p := restored[0].Campaign.Progress()
	if p.State != Canceled || p.Completed != 1 || p.Canceled != batch-1 {
		t.Fatalf("progress: %+v", p)
	}
	evs, _, sealed := restored[0].Campaign.EventsSince(0)
	if !sealed || len(evs) != batch+1 || !evs[len(evs)-1].Terminal() {
		t.Fatalf("events: sealed=%v %+v", sealed, evs)
	}
}

// TestRestoreUnresolvableScheme fails the remaining jobs (keeping the
// settled prefix) when the resolver cannot bring the scheme back.
func TestRestoreUnresolvableScheme(t *testing.T) {
	dir := t.TempDir()
	c := testCluster(t, 1, 1, 0)
	w := testWAL(t, dir)
	spec := wal.CampaignSpec{
		ID: "c3", Noise: "exact", K: 1, SchemeRef: "gone",
		Batch: [][]int64{{0}, {0}, {0}},
	}
	if err := w.Begin(spec); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("c3", wal.EventRecord{Seq: 1, Index: 2, Status: wal.StatusCompleted, Support: []int{1}}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2 := testWAL(t, dir)
	logs, err := w2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(c, Config{WAL: w2})
	defer st.Close()
	restored := st.Restore(logs, func(wal.CampaignSpec) (*engine.Scheme, error) {
		return nil, errors.New("scheme registry lost it")
	})
	if len(restored) != 1 || restored[0].State != "failed" {
		t.Fatalf("restored: %+v", restored)
	}
	p := restored[0].Campaign.Progress()
	if p.Completed != 1 || p.Failed != 2 || p.State != Done {
		t.Fatalf("progress: %+v", p)
	}
	for _, res := range p.Results {
		if res.Index != 2 && res.Error == "" {
			t.Fatalf("missing job %d should carry the recovery error", res.Index)
		}
	}
	if !reflect.DeepEqual(p.Results[2].Support, []int{1}) {
		t.Fatalf("settled prefix lost: %+v", p.Results)
	}
}

// TestGCReapsWALFile: retention GC of a finished campaign deletes its
// log so the WAL directory stays bounded.
func TestGCReapsWALFile(t *testing.T) {
	dir := t.TempDir()
	c := testCluster(t, 1, 1, 0)
	w := testWAL(t, dir)
	st := NewStore(c, Config{WAL: w, Retention: time.Millisecond})
	defer st.Close()
	const n, k, m, batch = 80, 2, 60, 2
	s, _, ys := testBatch(t, c, n, k, m, batch, 17)

	cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, cp)
	path := filepath.Join(dir, cp.ID()+".wal")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("log missing before GC: %v", err)
	}
	if got := st.GC(time.Now().Add(time.Hour)); got != 1 {
		t.Fatalf("GC collected %d", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("log survived GC: %v", err)
	}
}
