package campaign

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"pooleddata/internal/engine"
	"pooleddata/metrics/trace"
)

// Fair cross-tenant dispatch: admitted campaign jobs do not go straight
// to the owning shard's queue. They wait in per-tenant queues, and one
// dispatcher goroutine hands them to the cluster in round-robin order
// across tenants — so a tenant that submits a thousand-job campaign
// first does not serialize every other tenant behind it, which is what
// the old FIFO per-campaign fan-out did. Within a tenant the queue is
// split per target shard (a campaign's jobs all decode on its scheme's
// owning shard), and the tenant's turns rotate across its shards: one
// campaign stuck behind a wedged shard cannot stall the same tenant's
// campaigns on idle shards. Backpressure is cooperative: the dispatcher
// offers jobs with engine.Offer (TrySubmit without the rejection
// accounting) and keeps a saturated queue's head job on its side,
// retrying on a short backoff, so a full shard stalls only the work it
// owns.

// saturationBackoff is how long the dispatcher parks when every
// dispatchable head job hit a saturated shard queue. Short enough that
// a draining worker is picked up promptly, long enough not to spin.
const saturationBackoff = 2 * time.Millisecond

// maxRedispatches bounds how many times one job is requeued after
// shard-unavailable failures before it settles with the error. Each
// attempt re-resolves ownership against the current ring, and a dead
// worker flips unhealthy on its first failed round trip, so one or two
// attempts normally suffice; the bound exists for fleets with no
// survivors, where the campaign must still terminate.
const maxRedispatches = 8

// pendingJob is one admitted job awaiting dispatch. queuedAt marks the
// start of the current tenant-queue episode: stamped at admission,
// preserved across saturation requeues (same wait, still the head), and
// re-stamped on redispatch after a shard death (a new episode).
type pendingJob struct {
	cp       *Campaign
	job      engine.Job
	queuedAt time.Time
}

// fifo is a head-indexed job queue: pop and push-front are O(1) — a
// saturated head job is requeued every retry cycle, so the queue must
// not be copied each time.
type fifo struct {
	jobs []pendingJob
	head int
}

func (q *fifo) len() int { return len(q.jobs) - q.head }

func (q *fifo) push(pj pendingJob) { q.jobs = append(q.jobs, pj) }

func (q *fifo) pop() pendingJob {
	pj := q.jobs[q.head]
	q.jobs[q.head] = pendingJob{} // release references
	q.head++
	if q.head == len(q.jobs) {
		q.jobs, q.head = q.jobs[:0], 0
	}
	return pj
}

// pushFront restores a just-popped job to the head. The popped slot is
// normally still free (pop only advances head); the copying prepend is
// only reachable when a concurrent purge rebuilt the queue (resetting
// head) while this job was out for dispatch.
func (q *fifo) pushFront(pj pendingJob) {
	if q.head > 0 {
		q.head--
		q.jobs[q.head] = pj
		return
	}
	if len(q.jobs) == 0 {
		q.jobs = append(q.jobs, pj)
		return
	}
	q.jobs = append([]pendingJob{pj}, q.jobs...)
}

// replace swaps in a rebuilt queue (purge filtering), dropping the
// consumed head region.
func (q *fifo) replace(jobs []pendingJob) { q.jobs, q.head = jobs, 0 }

// tenantState is one tenant's dispatch queues and quota accounting.
type tenantState struct {
	// byShard holds the tenant's pending jobs keyed by the engine shard
	// they target; shards is the rotation order for the tenant's turns.
	byShard map[int]*fifo
	shards  []int
	rrPos   int
	// unsettled counts admitted jobs that have not yet settled
	// (pending + on shard queues + inside decoders) — the quota
	// Config.TenantMaxQueued bounds.
	unsettled int
}

func (ts *tenantState) pendingLen() int {
	n := 0
	for _, q := range ts.byShard {
		n += q.len()
	}
	return n
}

func (ts *tenantState) queueFor(shard int) *fifo {
	q, ok := ts.byShard[shard]
	if !ok {
		if ts.byShard == nil {
			ts.byShard = make(map[int]*fifo)
		}
		q = &fifo{}
		ts.byShard[shard] = q
		ts.shards = append(ts.shards, shard)
	}
	return q
}

func jobShard(pj pendingJob) int { return pj.job.Scheme.Home() }

func (ts *tenantState) push(pj pendingJob) { ts.queueFor(jobShard(pj)).push(pj) }

func (ts *tenantState) pushFront(pj pendingJob) { ts.queueFor(jobShard(pj)).pushFront(pj) }

// pop takes the head job of the tenant's next non-empty shard queue in
// rotation. Callers check pendingLen() > 0 first.
func (ts *tenantState) pop() pendingJob {
	for i := 0; i < len(ts.shards); i++ {
		q := ts.byShard[ts.shards[ts.rrPos%len(ts.shards)]]
		ts.rrPos++
		if q.len() > 0 {
			return q.pop()
		}
	}
	panic("campaign: pop on empty tenant queue")
}

// tenantLocked returns (creating if needed) the tenant's state.
func (st *Store) tenantLocked(name string) *tenantState {
	ts, ok := st.tenants[name]
	if !ok {
		ts = &tenantState{}
		st.tenants[name] = ts
		st.rr = append(st.rr, name)
		// Growing the rotation re-maps rrPos onto a possibly different
		// tenant; leftover mid-turn credits must not transfer to it.
		st.rrCredits = -1
	}
	return ts
}

// signalWake nudges the dispatcher; coalesces when one is pending.
func (st *Store) signalWake() {
	select {
	case st.wake <- struct{}{}:
	default:
	}
}

// jobSettled is the Campaign → Store accounting hook, called once per
// settled job without any campaign lock held: it returns the job's
// quota and, for completed jobs, feeds the tenant's decode-latency
// histogram (its own lock, not st.mu — it runs on engine workers).
func (st *Store) jobSettled(tenant string, decodeNS int64, completed bool) {
	if completed {
		st.latency.Observe(tenant, time.Duration(decodeNS))
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if ts, ok := st.tenants[tenant]; ok && ts.unsettled > 0 {
		ts.unsettled--
	}
}

// weightOf is the tenant's dispatch weight: jobs offered per rotation
// turn. Unconfigured tenants (and weights below 1) weigh 1.
func (st *Store) weightOf(tenant string) int {
	if w := st.cfg.TenantWeights[tenant]; w > 1 {
		return w
	}
	return 1
}

// advanceTenantLocked moves the rotation to the next tenant and resets
// the turn credits to "uninitialized" (looked up on arrival, so weight
// config applies even to tenants that appear mid-rotation).
func (st *Store) advanceTenantLocked() {
	st.rrPos++
	st.rrCredits = -1
	st.rotations.Add(1)
}

// purgeCanceled pulls a canceled campaign's undispatched jobs out of
// its tenant queues and settles them immediately, so cancellation is
// prompt even when the queue's head job is stuck behind a saturated
// shard. Called without campaign locks held.
func (st *Store) purgeCanceled(cp *Campaign) {
	st.mu.Lock()
	var mine []pendingJob
	if ts, ok := st.tenants[cp.tenant]; ok {
		for _, q := range ts.byShard {
			var keep []pendingJob
			for _, pj := range q.jobs[q.head:] {
				if pj.cp == cp {
					mine = append(mine, pj)
				} else {
					keep = append(keep, pj)
				}
			}
			q.replace(keep)
		}
		st.pendingTotal -= len(mine)
	}
	st.mu.Unlock()
	for _, pj := range mine {
		pj.cp.settle(pj.job.Tag, engine.Result{TraceID: pj.job.TraceID}, context.Canceled)
		st.finishJobTrace(pj.job.Trace, context.Canceled)
	}
}

// nextPending pops the next job in the two-level weighted rotation
// (tenants, then the tenant's shards): the tenant at the rotation
// cursor is offered up to weightOf(tenant) jobs before the cursor
// advances, so `-tenant-weights t1=3` drains t1 three jobs per turn.
// With all weights 1 this is exactly the old equal-turn round robin.
func (st *Store) nextPending() (pj pendingJob, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.pendingTotal == 0 || len(st.rr) == 0 {
		return pendingJob{}, false
	}
	// Each iteration either pops (and returns) or advances past a tenant
	// with nothing pending, so len(rr)+1 iterations suffice.
	for i := 0; i < len(st.rr)+1; i++ {
		name := st.rr[st.rrPos%len(st.rr)]
		ts := st.tenants[name]
		if ts == nil || ts.pendingLen() == 0 {
			st.advanceTenantLocked()
			continue
		}
		if st.rrCredits < 0 {
			st.rrCredits = st.weightOf(name)
			st.creditsGiven.Add(uint64(st.rrCredits))
		}
		st.pendingTotal--
		pj = ts.pop()
		st.rrCredits--
		if st.rrCredits == 0 {
			st.advanceTenantLocked()
		}
		return pj, true
	}
	return pendingJob{}, false
}

// busyQueues counts the (tenant, shard) queues with pending jobs — the
// dispatcher's "full rotation" size for deciding when every
// dispatchable head job hit a saturated shard. Counting queues rather
// than tenants matters inside a single tenant too: its campaign on a
// wedged shard must not trigger the backoff while its campaign on an
// idle shard still has work. Only computed on the saturated path, not
// per dispatched job.
func (st *Store) busyQueues() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, ts := range st.tenants {
		for _, q := range ts.byShard {
			if q.len() > 0 {
				n++
			}
		}
	}
	return n
}

// requeueFront puts a job whose shard was saturated back at the front
// of its shard queue, preserving FIFO order there.
func (st *Store) requeueFront(pj pendingJob) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.tenantLocked(pj.cp.tenant).pushFront(pj)
	st.pendingTotal++
}

// maybeRedispatch requeues a job that failed because its shard was
// unavailable, charging the campaign's per-job budget and bumping
// counter. It reports whether the job was requeued; false means the
// caller settles the job with its error (campaign canceled/expired,
// budget spent, or store closed). Runs on engine/remote worker
// goroutines (the OnDone path) and on the dispatcher.
func (st *Store) maybeRedispatch(pj pendingJob, counter *atomic.Uint64) bool {
	if pj.cp.ctx.Err() != nil {
		return false
	}
	if !pj.cp.allowRedispatch(pj.job.Tag, maxRedispatches) {
		return false
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return false
	}
	// Push to the back of the tenant's queue for the scheme's shard: the
	// orphan rejoins the fair rotation rather than jumping it. jobShard
	// keys on the scheme's creation home; Offer re-resolves the real
	// owner when the job's turn comes.
	pj.queuedAt = time.Now()
	st.tenantLocked(pj.cp.tenant).push(pj)
	st.pendingTotal++
	st.mu.Unlock()
	counter.Add(1)
	st.signalWake()
	return true
}

// dispatchLoop is the Store's dispatcher goroutine: round-robin across
// tenants (and across shards within a tenant), one job per turn, until
// Close. saturatedStreak counts consecutive Offer calls that hit a full
// shard; only when it covers every (tenant, shard) queue with pending
// work — i.e. every dispatchable head job in the system was stuck —
// does the loop park on the backoff timer. A single saturated shard
// must not throttle tenants or campaigns whose shards have room.
func (st *Store) dispatchLoop() {
	defer close(st.done)
	saturatedStreak := 0
	for {
		pj, ok := st.nextPending()
		if !ok {
			select {
			case <-st.wake:
				continue
			case <-st.stop:
				st.drainPending()
				return
			}
		}
		if err := pj.cp.ctx.Err(); err != nil {
			// The campaign died before its job reached a shard.
			pj.cp.settle(pj.job.Tag, engine.Result{TraceID: pj.job.TraceID}, err)
			st.finishJobTrace(pj.job.Trace, err)
			saturatedStreak = 0
			continue
		}
		_, err := st.cluster.Offer(pj.cp.ctx, pj.job)
		switch {
		case err == nil:
			// Enqueued; the shared OnDone callback settles it. The span is
			// added after the fact (the builder takes it until the job
			// settles), covering admission → the cluster accepting the job:
			// the fair-rotation wait the dispatcher itself imposed.
			if !pj.queuedAt.IsZero() {
				pj.job.Trace.Span("tenant_queue", trace.TierFrontend, 0, pj.queuedAt, time.Since(pj.queuedAt))
			}
			st.dispatched.Add(1)
			saturatedStreak = 0
		case errors.Is(err, engine.ErrSaturated):
			// Backpressure, not rejection: the job goes back to the head of
			// its shard queue and the rotation moves on. Park only once
			// every busy tenant's turn has failed in a row.
			st.requeueFront(pj)
			st.requeues.Add(1)
			saturatedStreak++
			if saturatedStreak < st.busyQueues() {
				continue
			}
			saturatedStreak = 0
			select {
			case <-st.wake:
			case <-time.After(saturationBackoff):
			case <-st.stop:
				st.drainPending()
				return
			}
		case (errors.Is(err, engine.ErrShardUnavailable) || errors.Is(err, engine.ErrClosed)) &&
			st.maybeRedispatch(pj, &st.redispatchedOffer):
			// The owner was unreachable and no healthy member could take the
			// key (ring lookup already walks past unhealthy shards), or the
			// offer raced an administrative drain and landed on a member
			// closing out of the ring. The job is requeued; pace like
			// saturation so the loop does not spin while the whole fleet is
			// dark. (maybeRedispatch refuses once the store itself closes,
			// so shutdown still settles instead of bouncing.)
			saturatedStreak++
			if saturatedStreak < st.busyQueues() {
				continue
			}
			saturatedStreak = 0
			select {
			case <-st.wake:
			case <-time.After(saturationBackoff):
			case <-st.stop:
				st.drainPending()
				return
			}
		default:
			pj.cp.settle(pj.job.Tag, engine.Result{TraceID: pj.job.TraceID}, err)
			st.finishJobTrace(pj.job.Trace, err)
			saturatedStreak = 0
		}
	}
}

// drainPending settles every job still queued at Close so no campaign
// waits forever on jobs that will never dispatch.
func (st *Store) drainPending() {
	st.mu.Lock()
	var all []pendingJob
	for _, ts := range st.tenants {
		for _, q := range ts.byShard {
			all = append(all, q.jobs[q.head:]...)
			q.replace(nil)
		}
	}
	st.pendingTotal = 0
	st.mu.Unlock()
	for _, pj := range all {
		pj.cp.settle(pj.job.Tag, engine.Result{TraceID: pj.job.TraceID}, errStoreClosed)
		st.finishJobTrace(pj.job.Trace, errStoreClosed)
	}
}

// TenantStats is one tenant's gauge block in /v1/stats.
type TenantStats struct {
	// Active and Finished count the tenant's retained campaigns.
	Active   int `json:"active"`
	Finished int `json:"finished"`
	// PendingJobs are admitted jobs still waiting for dispatch;
	// UnsettledJobs additionally counts jobs on shard queues or inside
	// decoders (the TenantMaxQueued quota gauge).
	PendingJobs   int `json:"pending_jobs"`
	UnsettledJobs int `json:"unsettled_jobs"`
	// Weight is the tenant's dispatch weight (jobs per rotation turn).
	Weight int `json:"weight"`
	// DecodeLatency is the tenant's completed-job decode-latency
	// histogram — same bounded buckets as the per-decoder histograms,
	// cumulative over the store's lifetime (it outlives campaign GC).
	DecodeLatency *engine.LatencyHistogram `json:"decode_latency,omitempty"`
}

// Tenants snapshots the per-tenant gauges.
func (st *Store) Tenants() map[string]TenantStats {
	lat := st.latency.Snapshot()
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]TenantStats, len(st.tenants))
	for name, ts := range st.tenants {
		out[name] = TenantStats{PendingJobs: ts.pendingLen(), UnsettledJobs: ts.unsettled}
	}
	for _, cp := range st.byID {
		g := out[cp.tenant]
		if cp.finishedAt().IsZero() {
			g.Active++
		} else {
			g.Finished++
		}
		out[cp.tenant] = g
	}
	// Latency histograms outlive campaign retention: tenants present
	// only in the histogram map still appear, with zero gauges.
	for name, h := range lat {
		g := out[name]
		hh := h
		g.DecodeLatency = &hh
		out[name] = g
	}
	for name, g := range out {
		g.Weight = st.weightOf(name)
		out[name] = g
	}
	return out
}
