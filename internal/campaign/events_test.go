package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/engine"
)

// newTestStore builds a running store and closes it before the cluster.
func newTestStore(t testing.TB, c *engine.Cluster, cfg Config) *Store {
	t.Helper()
	st := NewStore(c, cfg)
	t.Cleanup(st.Close)
	return st
}

// collectEvents drains a campaign's event log through the cursor API
// until the sealed terminal event, like an SSE subscriber would. It
// returns an error rather than failing the test so it is safe to call
// from subscriber goroutines.
func collectEvents(cp *Campaign, timeout time.Duration) ([]Event, error) {
	deadline := time.After(timeout)
	var out []Event
	var cursor int64
	for {
		evs, changed, sealed := cp.EventsSince(cursor)
		for _, ev := range evs {
			out = append(out, ev)
			cursor = ev.Seq
		}
		if sealed {
			return out, nil
		}
		select {
		case <-changed:
		case <-deadline:
			return out, fmt.Errorf("event stream did not seal; %d events so far", len(out))
		}
	}
}

// mustCollectEvents is collectEvents for the test goroutine.
func mustCollectEvents(t *testing.T, cp *Campaign, timeout time.Duration) []Event {
	t.Helper()
	evs, err := collectEvents(cp, timeout)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestCampaignEventLog(t *testing.T) {
	c := testCluster(t, 2, 2, 0)
	st := newTestStore(t, c, Config{})
	const n, k, m, batch = 300, 5, 240, 8
	s, signals, ys := testBatch(t, c, n, k, m, batch, 17)

	cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k})
	if err != nil {
		t.Fatal(err)
	}

	// A live subscriber started before any job settles.
	type streamed struct {
		evs []Event
		err error
	}
	live := make(chan streamed, 1)
	go func() {
		evs, err := collectEvents(cp, 15*time.Second)
		live <- streamed{evs, err}
	}()

	cp.Wait(context.Background(), 15*time.Second)
	evs := mustCollectEvents(t, cp, time.Second) // replay-after-completion subscriber

	check := func(evs []Event) {
		t.Helper()
		if len(evs) != batch+1 {
			t.Fatalf("got %d events, want %d results + 1 done", len(evs), batch)
		}
		seen := make(map[int]bool)
		for i, ev := range evs[:batch] {
			if ev.Seq != int64(i+1) {
				t.Fatalf("event %d has seq %d", i, ev.Seq)
			}
			if ev.Type != EventResult || ev.Job == nil {
				t.Fatalf("event %d = %+v, want result", i, ev)
			}
			if seen[ev.Job.Index] {
				t.Fatalf("job %d settled twice in the log", ev.Job.Index)
			}
			seen[ev.Job.Index] = true
			if !bitvec.FromIndices(n, ev.Job.Support).Equal(signals[ev.Job.Index]) {
				t.Fatalf("event for job %d did not carry its support", ev.Job.Index)
			}
		}
		last := evs[batch]
		if !last.Terminal() || last.State != Done || last.Completed != batch || last.Total != batch {
			t.Fatalf("terminal event = %+v", last)
		}
	}
	check(evs)
	liveOut := <-live
	if liveOut.err != nil {
		t.Fatal(liveOut.err)
	}
	check(liveOut.evs)

	// Resumable cursors: a reconnect from seq 4 replays exactly 5..done.
	tail, _, sealed := cp.EventsSince(4)
	if !sealed || len(tail) != batch+1-4 || tail[0].Seq != 5 {
		t.Fatalf("resume from 4: sealed=%v len=%d first=%+v", sealed, len(tail), tail[0])
	}
	// A cursor at the end sees nothing and knows the stream is over.
	if end, _, sealed := cp.EventsSince(int64(batch + 1)); len(end) != 0 || !sealed {
		t.Fatalf("cursor at end: %d events, sealed=%v", len(end), sealed)
	}
	// Out-of-range cursors clamp instead of panicking.
	if all, _, _ := cp.EventsSince(-3); len(all) != batch+1 {
		t.Fatalf("negative cursor returned %d events", len(all))
	}
	if none, _, _ := cp.EventsSince(99); len(none) != 0 {
		t.Fatalf("past-the-end cursor returned %d events", len(none))
	}
}

func TestCampaignEventsCancelTerminal(t *testing.T) {
	c := testCluster(t, 1, 1, 4)
	st := newTestStore(t, c, Config{})
	const n, k, m, batch = 80, 2, 60, 4
	s, _, ys := testBatch(t, c, n, k, m, batch, 19)

	release := make(chan struct{})
	cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Dec: stallDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	type streamed struct {
		evs []Event
		err error
	}
	done := make(chan streamed, 1)
	go func() {
		evs, err := collectEvents(cp, 15*time.Second)
		done <- streamed{evs, err}
	}()

	deadline := time.Now().Add(time.Second)
	for c.Shard(0).Stats().JobsSubmitted == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cp.Cancel()
	close(release)

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	evs := out.evs
	last := evs[len(evs)-1]
	if !last.Terminal() || last.State != Canceled {
		t.Fatalf("stream ended with %+v, want terminal canceled", last)
	}
	if len(evs) != batch+1 {
		t.Fatalf("stream delivered %d events, want every settlement + done", len(evs))
	}
	canceled := 0
	for _, ev := range evs[:batch] {
		if ev.Job.Error != "" {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no canceled settlements reached the stream")
	}
}

func TestTenantQuotaMaxActive(t *testing.T) {
	c := testCluster(t, 1, 1, 16)
	st := newTestStore(t, c, Config{TenantMaxActive: 1})
	const n, k, m = 80, 2, 60
	s, _, ys := testBatch(t, c, n, k, m, 2, 23)

	release := make(chan struct{})
	first, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Tenant: "lab-a", Dec: stallDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	// lab-a is at quota; lab-b and the default tenant are not.
	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Tenant: "lab-a"}); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("same-tenant create: err = %v, want ErrTenantQuota", err)
	}
	other, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Tenant: "lab-b"})
	if err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: k}); err != nil {
		t.Fatalf("default tenant rejected: %v", err)
	}

	gauges := st.Tenants()
	if g := gauges["lab-a"]; g.Active != 1 {
		t.Fatalf("lab-a gauges = %+v", g)
	}
	if g := gauges["lab-b"]; g.Active != 1 {
		t.Fatalf("lab-b gauges = %+v", g)
	}
	if _, ok := gauges[DefaultTenant]; !ok {
		t.Fatalf("no default-tenant gauges: %+v", gauges)
	}

	close(release)
	first.Wait(context.Background(), 10*time.Second)
	other.Wait(context.Background(), 10*time.Second)
	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Tenant: "lab-a"}); err != nil {
		t.Fatalf("create after quota freed: %v", err)
	}
}

func TestTenantQuotaMaxQueued(t *testing.T) {
	c := testCluster(t, 1, 1, 16)
	st := newTestStore(t, c, Config{TenantMaxQueued: 3})
	const n, k, m = 80, 2, 60
	s, _, ys2 := testBatch(t, c, n, k, m, 2, 29)

	// A batch bigger than the whole quota can never be admitted: that is
	// a validation failure (pooledd: non-retryable 400), not a quota
	// rejection the client should wait out.
	big := [][]int64{ys2[0], ys2[0], ys2[0], ys2[0]}
	if _, err := st.Create(Request{Scheme: s, Batch: big, K: k, Tenant: "lab-a"}); err == nil || errors.Is(err, ErrTenantQuota) {
		t.Fatalf("oversized batch: err = %v, want a plain validation error", err)
	}

	// Two jobs held unsettled leave no room for two more.
	release := make(chan struct{})
	cp, err := st.Create(Request{Scheme: s, Batch: ys2, K: k, Tenant: "lab-a", Dec: stallDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create(Request{Scheme: s, Batch: ys2, K: k, Tenant: "lab-a"}); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("over-quota create: err = %v, want ErrTenantQuota", err)
	}
	// Another tenant's queue is unaffected.
	if _, err := st.Create(Request{Scheme: s, Batch: ys2, K: k, Tenant: "lab-b"}); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}

	close(release)
	cp.Wait(context.Background(), 10*time.Second)
	waitUnsettled := func() {
		deadline := time.Now().Add(5 * time.Second)
		for st.Tenants()["lab-a"].UnsettledJobs > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	waitUnsettled()
	if _, err := st.Create(Request{Scheme: s, Batch: ys2, K: k, Tenant: "lab-a"}); err != nil {
		t.Fatalf("create after jobs settled: %v", err)
	}
}

// TestTenantRoundRobinDispatchOrder observes the dispatcher's pop order
// directly (no dispatcher goroutine): tenants take turns job-for-job
// regardless of submission order, instead of the old FIFO where the
// first tenant's whole batch went ahead of everyone else's first job.
func TestTenantRoundRobinDispatchOrder(t *testing.T) {
	c := testCluster(t, 1, 1, 16)
	st := newStore(c, Config{}) // dispatcher not started
	const n, k, m = 80, 2, 60
	s, _, ys := testBatch(t, c, n, k, m, 3, 31)

	for _, tenant := range []string{"lab-a", "lab-b"} {
		if _, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Tenant: tenant}); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.busyQueues(); got != 2 {
		t.Fatalf("busy queues = %d, want 2 (one per tenant)", got)
	}
	want := []string{"lab-a", "lab-b", "lab-a", "lab-b", "lab-a", "lab-b"}
	for i, tenant := range want {
		pj, ok := st.nextPending()
		if !ok {
			t.Fatalf("pop %d: no pending job", i)
		}
		if pj.cp.Tenant() != tenant {
			t.Fatalf("pop %d from tenant %q, want %q", i, pj.cp.Tenant(), tenant)
		}
	}
	if _, ok := st.nextPending(); ok {
		t.Fatal("extra pending job after both batches drained")
	}
	if got := st.busyQueues(); got != 0 {
		t.Fatalf("busy queues after drain = %d, want 0", got)
	}

	// A requeued head (saturated shard) goes back in front of its
	// tenant's queue, not to the back.
	a, _ := st.Create(Request{Scheme: s, Batch: ys, K: k, Tenant: "lab-a"})
	_ = a
	pj, _ := st.nextPending()
	first := pj.job.Tag
	st.requeueFront(pj)
	pj2, _ := st.nextPending()
	if pj2.job.Tag != first {
		t.Fatalf("requeued job lost its place: got tag %d, want %d", pj2.job.Tag, first)
	}
}

// TestTenantQueuePushFrontAfterPurge: a purge can rebuild the queue
// (resetting its head index) while the head job is out for a saturated
// dispatch attempt; pushFront must still restore that job ahead of the
// survivors, preserving per-tenant FIFO order.
func TestTenantQueuePushFrontAfterPurge(t *testing.T) {
	q := &fifo{}
	for _, tag := range []int{1, 2, 3} {
		q.push(pendingJob{job: engine.Job{Tag: tag}})
	}
	head := q.pop()
	// Concurrent cancel purged job 3 and rebuilt the queue.
	q.replace([]pendingJob{{job: engine.Job{Tag: 2}}})
	q.pushFront(head)
	if got := []int{q.pop().job.Tag, q.pop().job.Tag}; got[0] != 1 || got[1] != 2 {
		t.Fatalf("pop order after purge+requeue = %v, want [1 2]", got)
	}
	if q.len() != 0 {
		t.Fatalf("queue not drained: %d left", q.len())
	}
}

// TestSaturatedShardDoesNotStallOthers: campaign A targets a wedged
// shard while campaign B — submitted by the SAME tenant — targets a
// flowing one. The per-shard queues inside a tenant (and the
// full-rotation backoff rule) must keep B draining at full speed
// instead of parking behind A's saturated head.
func TestSaturatedShardDoesNotStallOthers(t *testing.T) {
	c := testCluster(t, 4, 1, 1) // queue depth 1: trivially saturated
	st := newTestStore(t, c, Config{})
	const n, k, m = 80, 2, 60

	// Two schemes on different shards.
	sA, _, ysA := testBatch(t, c, n, k, m, 4, 0)
	var sB *engine.Scheme
	var ysB [][]int64
	for seed := uint64(1); seed < 64; seed++ {
		s2, _, ys2 := testBatch(t, c, n, k, m, 16, seed)
		if s2.Home() != sA.Home() {
			sB, ysB = s2, ys2
			break
		}
	}
	if sB == nil {
		t.Fatal("no second shard found")
	}

	// Wedge shard A's only worker; its queue is empty at admission time
	// (Create's saturation check passes) but fills as soon as the
	// dispatcher lands A's first job, so A's second job hits saturation
	// at dispatch time.
	release := make(chan struct{})
	defer close(release)
	shardA := c.Owner(sA)
	if _, err := shardA.Submit(context.Background(), engine.Job{Scheme: sA, Y: ysA[0], K: k, Dec: stallDecoder{release}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for shardA.QueueDepth() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	cpA, err := st.Create(Request{Scheme: sA, Batch: ysA, K: k, Tenant: "lab", Dec: stallDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	cpB, err := st.Create(Request{Scheme: sB, Batch: ysB, K: k, Tenant: "lab"})
	if err != nil {
		t.Fatal(err)
	}
	// B's 16 jobs drain through its idle shard promptly even though A's
	// head job is stuck behind the wedge the whole time.
	if p := cpB.Wait(context.Background(), 10*time.Second); p.State != Done || p.Completed != 16 {
		t.Fatalf("flowing campaign stalled behind its tenant's saturated shard: %+v", p)
	}
	if got := cpA.Progress().Settled(); got != 0 {
		t.Fatalf("wedged campaign settled %d jobs", got)
	}
	cpA.Cancel()
}

// TestCampaignGCWakesParkedWaiter is the waiter-leak regression test: a
// canceled campaign whose in-flight job never settles (wedged decoder)
// used to be unreapable, and any reaping would have left long-pollers
// parked for their full timeout. GC now expires the campaign — parked
// Wait calls return a terminal progress immediately and event streams
// receive their closing event.
func TestCampaignGCWakesParkedWaiter(t *testing.T) {
	c := testCluster(t, 1, 1, 4)
	// TenantMaxQueued == batch: the wedged campaign holds the tenant's
	// entire queue quota until GC reaps it.
	st := newTestStore(t, c, Config{Retention: time.Minute, TenantMaxQueued: 2})
	const n, k, m, batch = 80, 2, 60, 2
	s, _, ys := testBatch(t, c, n, k, m, batch, 37)

	release := make(chan struct{})
	defer close(release) // let the wedged decode finish at teardown
	cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Dec: stallDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for c.Shard(0).Stats().JobsSubmitted == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cp.Cancel()

	// Park a long-poller and a streamer on the wedged campaign.
	waited := make(chan Progress, 1)
	go func() { waited <- cp.Wait(context.Background(), 30*time.Second) }()
	type streamOut struct {
		evs []Event
		err error
	}
	streamed := make(chan streamOut, 1)
	go func() {
		evs, err := collectEvents(cp, 30*time.Second)
		streamed <- streamOut{evs, err}
	}()
	time.Sleep(10 * time.Millisecond) // let both park

	// Retention has elapsed for the canceled campaign: GC reaps it and
	// must wake the waiters with a terminal state first.
	if got := st.GC(time.Now().Add(2 * time.Minute)); got != 1 {
		t.Fatalf("GC collected %d campaigns, want 1", got)
	}
	select {
	case p := <-waited:
		if !p.Terminal() || p.State != Expired {
			t.Fatalf("woken waiter got %+v, want terminal expired", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("long-poller still parked after GC dropped its campaign")
	}
	select {
	case out := <-streamed:
		if out.err != nil {
			t.Fatal(out.err)
		}
		last := out.evs[len(out.evs)-1]
		if !last.Terminal() || last.State != Expired {
			t.Fatalf("stream ended with %+v, want terminal expired", last)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("streamer still parked after GC dropped its campaign")
	}
	if _, ok := st.Get(cp.ID()); ok {
		t.Fatal("expired campaign still retained")
	}
	// The reap returned the wedged jobs' quota: the tenant can submit
	// again even though those jobs never settled.
	if g := st.Tenants()[DefaultTenant]; g.UnsettledJobs != 0 {
		t.Fatalf("reap leaked tenant quota: %+v", g)
	}
	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: k}); err != nil {
		t.Fatalf("create after reap freed the quota: %v", err)
	}
}

// TestCampaignStreamHammer is the -race pass: concurrent campaigns
// across tenants, two streamers per campaign, GC and gauge polling, all
// racing the settle fan-out.
func TestCampaignStreamHammer(t *testing.T) {
	c := testCluster(t, 2, 2, 16)
	st := newTestStore(t, c, Config{MaxActive: 64})
	const n, k, m, batch = 200, 4, 160, 5
	const campaigns, streamers = 9, 2
	s, _, ys := testBatch(t, c, n, k, m, batch, 41)

	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				st.GC(time.Now())
				st.Tenants()
				st.List()
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, campaigns*(streamers+1))
	for i := 0; i < campaigns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("lab-%d", i%3)
			cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Tenant: tenant})
			if err != nil {
				errs <- err
				return
			}
			var sub sync.WaitGroup
			for sIdx := 0; sIdx < streamers; sIdx++ {
				sub.Add(1)
				go func() {
					defer sub.Done()
					evs, err := collectEvents(cp, 30*time.Second)
					if err != nil {
						errs <- fmt.Errorf("campaign %s stream: %v", cp.ID(), err)
						return
					}
					if len(evs) != batch+1 {
						errs <- fmt.Errorf("campaign %s stream: %d events", cp.ID(), len(evs))
					}
				}()
			}
			p := cp.Wait(context.Background(), 30*time.Second)
			if p.State != Done || p.Completed != batch {
				errs <- fmt.Errorf("campaign %s: %+v", cp.ID(), p)
			}
			sub.Wait()
		}(i)
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// BenchmarkCampaignStreaming fans B settled jobs out to S concurrent
// subscribers per campaign — the perf trajectory of the streaming
// subsystem (events/op on the reported metric).
func BenchmarkCampaignStreaming(b *testing.B) {
	c := engine.NewCluster(engine.ClusterConfig{
		Shards: 2,
		Shard:  engine.Config{CacheCapacity: 4, Workers: 2, QueueDepth: 128},
	})
	defer c.Close()
	st := NewStore(c, Config{MaxActive: 4})
	defer st.Close()
	const n, k, m, B, S = 200, 4, 160, 64, 8
	s, _, ys := testBatch(b, c, n, k, m, B, 43)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Tenant: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		for sIdx := 0; sIdx < S; sIdx++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				evs, err := collectEvents(cp, 60*time.Second)
				if err != nil {
					b.Error(err)
					return
				}
				if len(evs) != B+1 {
					b.Errorf("stream saw %d events, want %d", len(evs), B+1)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64((B+1)*S), "events/op")
}
