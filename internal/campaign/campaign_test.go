package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/engine"
	"pooleddata/internal/graph"
	"pooleddata/internal/noise"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
	"pooleddata/internal/threshgt"
)

func testCluster(t testing.TB, shards, workers, queue int) *engine.Cluster {
	t.Helper()
	c := engine.NewCluster(engine.ClusterConfig{
		Shards: shards,
		Shard:  engine.Config{CacheCapacity: 4, Workers: workers, QueueDepth: queue},
	})
	t.Cleanup(c.Close)
	return c
}

// testBatch builds a scheme plus a measured batch with known signals.
func testBatch(t testing.TB, c *engine.Cluster, n, k, m, batch int, seed uint64) (*engine.Scheme, []*bitvec.Vector, [][]int64) {
	t.Helper()
	s, err := c.Scheme(nil, n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	signals := make([]*bitvec.Vector, batch)
	ys := make([][]int64, batch)
	for b := range signals {
		signals[b] = bitvec.Random(n, k, rng.NewRandSeeded(seed+uint64(100+b)))
		ys[b] = query.Execute(s.G, signals[b], query.Options{}).Y
	}
	return s, signals, ys
}

func TestCampaignLifecycle(t *testing.T) {
	c := testCluster(t, 2, 2, 0)
	st := NewStore(c, Config{})
	const n, k, m, batch = 300, 5, 240, 8
	s, signals, ys := testBatch(t, c, n, k, m, batch, 3)

	cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Total() != batch {
		t.Fatalf("total = %d, want %d", cp.Total(), batch)
	}

	// Progress is monotone across repeated polls until terminal.
	last := -1
	deadline := time.Now().Add(10 * time.Second)
	var p Progress
	for {
		p = cp.Wait(context.Background(), 10*time.Millisecond)
		if p.Settled() < last {
			t.Fatalf("progress went backwards: %d after %d", p.Settled(), last)
		}
		last = p.Settled()
		if p.Terminal() && p.Settled() == p.Total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not finish: %+v", p)
		}
	}
	if p.State != Done || p.Completed != batch || p.Failed != 0 || p.Canceled != 0 {
		t.Fatalf("final progress = %+v", p)
	}
	if len(p.Results) != batch {
		t.Fatalf("got %d results", len(p.Results))
	}
	for i, res := range p.Results {
		if res.Index != i {
			t.Fatalf("result %d has index %d", i, res.Index)
		}
		if !res.Consistent || res.Error != "" {
			t.Fatalf("result %d: %+v", i, res)
		}
		if !bitvec.FromIndices(n, res.Support).Equal(signals[i]) {
			t.Fatalf("result %d did not recover its signal", i)
		}
	}

	// A late cancel on a finished campaign is a no-op: Done stays Done.
	cp.Cancel()
	if got := cp.Progress().State; got != Done {
		t.Fatalf("state after late cancel = %q, want done", got)
	}

	if got, ok := st.Get(cp.ID()); !ok || got != cp {
		t.Fatal("Get lost the campaign")
	}
	list := st.List()
	if len(list) != 1 || list[0].ID != cp.ID() {
		t.Fatalf("List = %+v", list)
	}
	if list[0].Results != nil {
		t.Fatal("List carried per-job results")
	}
	if a, f := st.Counts(); a != 0 || f != 1 {
		t.Fatalf("counts = (%d active, %d finished), want (0, 1)", a, f)
	}
}

// stallDecoder blocks until released, then returns the all-zero
// estimate (the estimate itself is irrelevant to these tests).
type stallDecoder struct{ release <-chan struct{} }

func (stallDecoder) Name() string { return "stall" }

func (d stallDecoder) Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error) {
	<-d.release
	return bitvec.New(g.N()), nil
}

func TestCampaignCancel(t *testing.T) {
	c := testCluster(t, 1, 1, 4)
	st := NewStore(c, Config{})
	const n, k, m, batch = 80, 2, 60, 4
	s, _, ys := testBatch(t, c, n, k, m, batch, 7)

	release := make(chan struct{})
	cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Dec: stallDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	// Let the single worker start the first job, then cancel: the worker
	// finishes its in-flight decode, the queued jobs settle as canceled.
	deadline := time.Now().Add(time.Second)
	for c.Shard(0).Stats().JobsSubmitted == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cp.Cancel()
	close(release)

	p := cp.Wait(context.Background(), 5*time.Second)
	if p.State != Canceled {
		t.Fatalf("state = %q, want canceled", p.State)
	}
	if p.Settled() != batch {
		t.Fatalf("settled = %d, want %d", p.Settled(), batch)
	}
	if p.Canceled == 0 {
		t.Fatalf("no jobs settled as canceled: %+v", p)
	}
	// Cancel is idempotent.
	cp.Cancel()
	if a, f := st.Counts(); a != 0 || f != 1 {
		t.Fatalf("counts = (%d, %d), want (0, 1)", a, f)
	}
}

func TestCampaignAdmissionControl(t *testing.T) {
	c := testCluster(t, 1, 1, 1)
	st := NewStore(c, Config{MaxActive: 1})
	const n, k, m = 80, 2, 60
	s, _, ys := testBatch(t, c, n, k, m, 2, 9)

	// Wedge the worker and fill the queue directly.
	release := make(chan struct{})
	defer close(release)
	shard := c.Owner(s)
	if _, err := shard.Submit(context.Background(), engine.Job{Scheme: s, Y: ys[0], K: k, Dec: stallDecoder{release}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for shard.QueueDepth() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := shard.Submit(context.Background(), engine.Job{Scheme: s, Y: ys[0], K: k, Dec: stallDecoder{release}}); err != nil {
		t.Fatal(err)
	}

	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: k}); !errors.Is(err, engine.ErrSaturated) {
		t.Fatalf("create on saturated shard: err = %v, want ErrSaturated", err)
	}
	if got := shard.Stats().JobsRejected; got != 2 {
		t.Fatalf("jobs rejected = %d, want 2 (whole batch)", got)
	}
}

func TestCampaignMaxActive(t *testing.T) {
	c := testCluster(t, 1, 1, 8)
	st := NewStore(c, Config{MaxActive: 1})
	const n, k, m = 80, 2, 60
	s, _, ys := testBatch(t, c, n, k, m, 2, 11)

	release := make(chan struct{})
	first, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Dec: stallDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: k}); !errors.Is(err, ErrTooManyCampaigns) {
		t.Fatalf("second active campaign: err = %v, want ErrTooManyCampaigns", err)
	}
	close(release)
	first.Wait(context.Background(), 5*time.Second)
	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: k}); err != nil {
		t.Fatalf("create after first finished: %v", err)
	}
}

func TestCampaignValidation(t *testing.T) {
	c := testCluster(t, 1, 1, 0)
	st := NewStore(c, Config{})
	s, _, ys := testBatch(t, c, 80, 2, 60, 1, 13)
	if _, err := st.Create(Request{Batch: ys, K: 2}); err == nil {
		t.Fatal("nil scheme accepted")
	}
	if _, err := st.Create(Request{Scheme: s, K: 2}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := st.Create(Request{Scheme: s, Batch: [][]int64{{1, 2}}, K: 2}); err == nil {
		t.Fatal("short count vector accepted")
	}
	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: -1}); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: 81}); err == nil {
		t.Fatal("out-of-range k accepted")
	}
}

func TestCampaignGC(t *testing.T) {
	c := testCluster(t, 1, 1, 0)
	st := NewStore(c, Config{Retention: time.Nanosecond})
	const n, k, m = 80, 2, 60
	s, _, ys := testBatch(t, c, n, k, m, 2, 15)

	cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k})
	if err != nil {
		t.Fatal(err)
	}
	cp.Wait(context.Background(), 5*time.Second)
	if got := st.GC(time.Now().Add(time.Second)); got != 1 {
		t.Fatalf("GC collected %d campaigns, want 1", got)
	}
	if _, ok := st.Get(cp.ID()); ok {
		t.Fatal("finished campaign survived GC past retention")
	}

	// MaxFinished bounds retained campaigns regardless of age.
	st2 := NewStore(c, Config{MaxFinished: 1, Retention: time.Hour})
	var ids []string
	for i := 0; i < 3; i++ {
		cp, err := st2.Create(Request{Scheme: s, Batch: ys, K: k})
		if err != nil {
			t.Fatal(err)
		}
		cp.Wait(context.Background(), 5*time.Second)
		ids = append(ids, cp.ID())
	}
	st2.GC(time.Now())
	live := 0
	for _, id := range ids {
		if _, ok := st2.Get(id); ok {
			live++
		}
	}
	if live != 1 {
		t.Fatalf("%d finished campaigns retained, want 1", live)
	}
}

// thresholdBatch builds a threshold-T scheme on the cluster plus a
// binarized measured batch through the noise model's batched path.
func thresholdBatch(t testing.TB, c *engine.Cluster, n, k, T, m, batch int, seed uint64) (*engine.Scheme, []*bitvec.Vector, [][]int64, noise.Model) {
	t.Helper()
	des := pooling.RandomRegular{Gamma: threshgt.RecommendedGamma(n, k, T)}
	s, err := c.Scheme(des, n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	nm := noise.Model{Kind: noise.Threshold, T: int64(T)}
	signals := make([]*bitvec.Vector, batch)
	for b := range signals {
		signals[b] = bitvec.Random(n, k, rng.NewRandSeeded(seed+uint64(500+b)))
	}
	return s, signals, c.MeasureBatch(s, signals, nm), nm
}

// TestCampaignThresholdNoiseAcrossShards runs threshold-T campaigns on
// a multi-shard cluster: the campaign-level noise model must survive the
// FNV routing to each scheme's owning shard and the OnDone callback
// fan-out, select the threshold-GT decoder server-side, and come back in
// the campaign's progress and the shard's per-model counters.
func TestCampaignThresholdNoiseAcrossShards(t *testing.T) {
	const shards = 4
	c := testCluster(t, shards, 1, 0)
	st := NewStore(c, Config{})
	n, k, T, m, batch := 400, 8, 2, 500, 4

	// Two campaigns whose schemes live on different shards.
	des := pooling.RandomRegular{Gamma: threshgt.RecommendedGamma(n, k, T)}
	var seeds []uint64
	homes := map[int]bool{}
	for seed := uint64(0); len(seeds) < 2 && seed < 64; seed++ {
		h := c.ShardOf(engine.SpecFor(des, n, m, seed))
		if !homes[h] {
			homes[h] = true
			seeds = append(seeds, seed)
		}
	}
	if len(seeds) < 2 {
		t.Fatal("could not find specs on two shards")
	}

	for _, seed := range seeds {
		s, signals, ys, nm := thresholdBatch(t, c, n, k, T, m, batch, seed)
		cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Noise: nm})
		if err != nil {
			t.Fatal(err)
		}
		p := cp.Wait(context.Background(), 10*time.Second)
		if p.State != Done || p.Completed != batch {
			t.Fatalf("campaign on shard %d: %+v", s.Home(), p)
		}
		if p.Noise == nil || p.Noise.Canon() != nm.Canon() {
			t.Fatalf("progress lost the noise model: %+v", p.Noise)
		}
		for i, res := range p.Results {
			if res.Decoder != (threshgt.Scored{}).Name() {
				t.Fatalf("job %d decoder %q, want threshold-GT", i, res.Decoder)
			}
			if ov := bitvec.OverlapFraction(signals[i], bitvec.FromIndices(n, res.Support)); ov < 0.7 {
				t.Fatalf("job %d overlap %.2f under threshold noise", i, ov)
			}
		}
		if got := c.Shard(s.Home()).Stats().JobsByNoise[nm.Key()]; got < uint64(batch) {
			t.Fatalf("shard %d JobsByNoise[%q] = %d, want ≥ %d", s.Home(), nm.Key(), got, batch)
		}
	}
	if got := c.Stats().Total.JobsByNoise[(noise.Model{Kind: noise.Threshold, T: int64(T)}).Key()]; got != uint64(2*batch) {
		t.Fatalf("aggregate per-model jobs = %d, want %d", got, 2*batch)
	}
}

// TestCampaignNoiseHammer is the -race variant: many concurrent
// threshold-noise campaigns across shards, all settling through the
// OnDone fan-out while stats are polled concurrently.
func TestCampaignNoiseHammer(t *testing.T) {
	const shards = 4
	c := testCluster(t, shards, 2, 8)
	st := NewStore(c, Config{MaxActive: 64})
	n, k, T, m, batch := 200, 5, 2, 220, 3

	const campaigns = 12
	type prepared struct {
		s  *engine.Scheme
		ys [][]int64
		nm noise.Model
	}
	preps := make([]prepared, campaigns)
	for i := range preps {
		s, _, ys, nm := thresholdBatch(t, c, n, k, T, m, batch, uint64(i))
		preps[i] = prepared{s, ys, nm}
	}

	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				c.Stats() // races against settle paths under -race
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, campaigns)
	for i := range preps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cp, err := st.Create(Request{Scheme: preps[i].s, Batch: preps[i].ys, K: k, Noise: preps[i].nm})
			if err != nil {
				errs[i] = err
				return
			}
			p := cp.Wait(context.Background(), 20*time.Second)
			if p.State != Done || p.Completed != batch {
				errs[i] = fmt.Errorf("campaign %s: %+v", cp.ID(), p)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("campaign %d: %v", i, err)
		}
	}
	key := (noise.Model{Kind: noise.Threshold, T: int64(T)}).Key()
	if got := c.Stats().Total.JobsByNoise[key]; got != uint64(campaigns*batch) {
		t.Fatalf("aggregate JobsByNoise[%q] = %d, want %d", key, got, campaigns*batch)
	}
}
