package campaign

import (
	"context"
	"errors"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/engine"
	"pooleddata/internal/graph"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
)

func testCluster(t *testing.T, shards, workers, queue int) *engine.Cluster {
	t.Helper()
	c := engine.NewCluster(engine.ClusterConfig{
		Shards: shards,
		Shard:  engine.Config{CacheCapacity: 4, Workers: workers, QueueDepth: queue},
	})
	t.Cleanup(c.Close)
	return c
}

// testBatch builds a scheme plus a measured batch with known signals.
func testBatch(t *testing.T, c *engine.Cluster, n, k, m, batch int, seed uint64) (*engine.Scheme, []*bitvec.Vector, [][]int64) {
	t.Helper()
	s, err := c.Scheme(nil, n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	signals := make([]*bitvec.Vector, batch)
	ys := make([][]int64, batch)
	for b := range signals {
		signals[b] = bitvec.Random(n, k, rng.NewRandSeeded(seed+uint64(100+b)))
		ys[b] = query.Execute(s.G, signals[b], query.Options{}).Y
	}
	return s, signals, ys
}

func TestCampaignLifecycle(t *testing.T) {
	c := testCluster(t, 2, 2, 0)
	st := NewStore(c, Config{})
	const n, k, m, batch = 300, 5, 240, 8
	s, signals, ys := testBatch(t, c, n, k, m, batch, 3)

	cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Total() != batch {
		t.Fatalf("total = %d, want %d", cp.Total(), batch)
	}

	// Progress is monotone across repeated polls until terminal.
	last := -1
	deadline := time.Now().Add(10 * time.Second)
	var p Progress
	for {
		p = cp.Wait(context.Background(), 10*time.Millisecond)
		if p.Settled() < last {
			t.Fatalf("progress went backwards: %d after %d", p.Settled(), last)
		}
		last = p.Settled()
		if p.Terminal() && p.Settled() == p.Total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not finish: %+v", p)
		}
	}
	if p.State != Done || p.Completed != batch || p.Failed != 0 || p.Canceled != 0 {
		t.Fatalf("final progress = %+v", p)
	}
	if len(p.Results) != batch {
		t.Fatalf("got %d results", len(p.Results))
	}
	for i, res := range p.Results {
		if res.Index != i {
			t.Fatalf("result %d has index %d", i, res.Index)
		}
		if !res.Consistent || res.Error != "" {
			t.Fatalf("result %d: %+v", i, res)
		}
		if !bitvec.FromIndices(n, res.Support).Equal(signals[i]) {
			t.Fatalf("result %d did not recover its signal", i)
		}
	}

	// A late cancel on a finished campaign is a no-op: Done stays Done.
	cp.Cancel()
	if got := cp.Progress().State; got != Done {
		t.Fatalf("state after late cancel = %q, want done", got)
	}

	if got, ok := st.Get(cp.ID()); !ok || got != cp {
		t.Fatal("Get lost the campaign")
	}
	list := st.List()
	if len(list) != 1 || list[0].ID != cp.ID() {
		t.Fatalf("List = %+v", list)
	}
	if list[0].Results != nil {
		t.Fatal("List carried per-job results")
	}
	if a, f := st.Counts(); a != 0 || f != 1 {
		t.Fatalf("counts = (%d active, %d finished), want (0, 1)", a, f)
	}
}

// stallDecoder blocks until released, then returns the all-zero
// estimate (the estimate itself is irrelevant to these tests).
type stallDecoder struct{ release <-chan struct{} }

func (stallDecoder) Name() string { return "stall" }

func (d stallDecoder) Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error) {
	<-d.release
	return bitvec.New(g.N()), nil
}

func TestCampaignCancel(t *testing.T) {
	c := testCluster(t, 1, 1, 4)
	st := NewStore(c, Config{})
	const n, k, m, batch = 80, 2, 60, 4
	s, _, ys := testBatch(t, c, n, k, m, batch, 7)

	release := make(chan struct{})
	cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Dec: stallDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	// Let the single worker start the first job, then cancel: the worker
	// finishes its in-flight decode, the queued jobs settle as canceled.
	deadline := time.Now().Add(time.Second)
	for c.Shard(0).Stats().JobsSubmitted == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cp.Cancel()
	close(release)

	p := cp.Wait(context.Background(), 5*time.Second)
	if p.State != Canceled {
		t.Fatalf("state = %q, want canceled", p.State)
	}
	if p.Settled() != batch {
		t.Fatalf("settled = %d, want %d", p.Settled(), batch)
	}
	if p.Canceled == 0 {
		t.Fatalf("no jobs settled as canceled: %+v", p)
	}
	// Cancel is idempotent.
	cp.Cancel()
	if a, f := st.Counts(); a != 0 || f != 1 {
		t.Fatalf("counts = (%d, %d), want (0, 1)", a, f)
	}
}

func TestCampaignAdmissionControl(t *testing.T) {
	c := testCluster(t, 1, 1, 1)
	st := NewStore(c, Config{MaxActive: 1})
	const n, k, m = 80, 2, 60
	s, _, ys := testBatch(t, c, n, k, m, 2, 9)

	// Wedge the worker and fill the queue directly.
	release := make(chan struct{})
	defer close(release)
	shard := c.Owner(s)
	if _, err := shard.Submit(context.Background(), engine.Job{Scheme: s, Y: ys[0], K: k, Dec: stallDecoder{release}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for shard.QueueDepth() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := shard.Submit(context.Background(), engine.Job{Scheme: s, Y: ys[0], K: k, Dec: stallDecoder{release}}); err != nil {
		t.Fatal(err)
	}

	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: k}); !errors.Is(err, engine.ErrSaturated) {
		t.Fatalf("create on saturated shard: err = %v, want ErrSaturated", err)
	}
	if got := shard.Stats().JobsRejected; got != 2 {
		t.Fatalf("jobs rejected = %d, want 2 (whole batch)", got)
	}
}

func TestCampaignMaxActive(t *testing.T) {
	c := testCluster(t, 1, 1, 8)
	st := NewStore(c, Config{MaxActive: 1})
	const n, k, m = 80, 2, 60
	s, _, ys := testBatch(t, c, n, k, m, 2, 11)

	release := make(chan struct{})
	first, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Dec: stallDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: k}); !errors.Is(err, ErrTooManyCampaigns) {
		t.Fatalf("second active campaign: err = %v, want ErrTooManyCampaigns", err)
	}
	close(release)
	first.Wait(context.Background(), 5*time.Second)
	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: k}); err != nil {
		t.Fatalf("create after first finished: %v", err)
	}
}

func TestCampaignValidation(t *testing.T) {
	c := testCluster(t, 1, 1, 0)
	st := NewStore(c, Config{})
	s, _, ys := testBatch(t, c, 80, 2, 60, 1, 13)
	if _, err := st.Create(Request{Batch: ys, K: 2}); err == nil {
		t.Fatal("nil scheme accepted")
	}
	if _, err := st.Create(Request{Scheme: s, K: 2}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := st.Create(Request{Scheme: s, Batch: [][]int64{{1, 2}}, K: 2}); err == nil {
		t.Fatal("short count vector accepted")
	}
	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: -1}); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: 81}); err == nil {
		t.Fatal("out-of-range k accepted")
	}
}

func TestCampaignGC(t *testing.T) {
	c := testCluster(t, 1, 1, 0)
	st := NewStore(c, Config{Retention: time.Nanosecond})
	const n, k, m = 80, 2, 60
	s, _, ys := testBatch(t, c, n, k, m, 2, 15)

	cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k})
	if err != nil {
		t.Fatal(err)
	}
	cp.Wait(context.Background(), 5*time.Second)
	if got := st.GC(time.Now().Add(time.Second)); got != 1 {
		t.Fatalf("GC collected %d campaigns, want 1", got)
	}
	if _, ok := st.Get(cp.ID()); ok {
		t.Fatal("finished campaign survived GC past retention")
	}

	// MaxFinished bounds retained campaigns regardless of age.
	st2 := NewStore(c, Config{MaxFinished: 1, Retention: time.Hour})
	var ids []string
	for i := 0; i < 3; i++ {
		cp, err := st2.Create(Request{Scheme: s, Batch: ys, K: k})
		if err != nil {
			t.Fatal(err)
		}
		cp.Wait(context.Background(), 5*time.Second)
		ids = append(ids, cp.ID())
	}
	st2.GC(time.Now())
	live := 0
	for _, id := range ids {
		if _, ok := st2.Get(id); ok {
			live++
		}
	}
	if live != 1 {
		t.Fatalf("%d finished campaigns retained, want 1", live)
	}
}
