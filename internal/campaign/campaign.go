// Package campaign is the asynchronous batch-decoding subsystem behind
// pooledd's /v1/campaigns API: a campaign is a batch of measured count
// vectors decoded against one cached scheme through the engine cluster.
// Submission returns immediately; jobs fan out to the scheme's owning
// shard with per-job completion callbacks, progress counters update as
// jobs settle, and clients long-poll (or cancel) the campaign by id.
//
// This is the service form of the paper's operational premise: the
// pooled measurement round is the expensive step, so a lab submits a
// whole plate of count vectors at once and collects reconstructions as
// the cluster drains them.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pooleddata/internal/decoder"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
)

// Config sizes a Store.
type Config struct {
	// MaxActive bounds concurrently unfinished campaigns; 0 means 64.
	MaxActive int
	// Retention is how long finished campaigns stay queryable before GC;
	// 0 means 10 minutes.
	Retention time.Duration
	// MaxFinished bounds retained finished campaigns regardless of age;
	// 0 means 256.
	MaxFinished int
}

func (c Config) maxActive() int {
	if c.MaxActive <= 0 {
		return 64
	}
	return c.MaxActive
}

func (c Config) retention() time.Duration {
	if c.Retention <= 0 {
		return 10 * time.Minute
	}
	return c.Retention
}

func (c Config) maxFinished() int {
	if c.MaxFinished <= 0 {
		return 256
	}
	return c.MaxFinished
}

// State is a campaign's lifecycle phase.
type State string

const (
	// Running means jobs are still queued or decoding.
	Running State = "running"
	// Done means every job settled and the campaign was not canceled.
	Done State = "done"
	// Canceled means Cancel was called; jobs settle as canceled unless a
	// worker had already started (those still complete).
	Canceled State = "canceled"
)

// JobResult is one settled decode job of a campaign.
type JobResult struct {
	// Index is the job's position in the submitted batch.
	Index int `json:"index"`
	// Support is the recovered one-entry index set (successful jobs).
	Support []int `json:"support,omitempty"`
	// Residual is the L1 misfit of the estimate against the counts.
	Residual int64 `json:"residual"`
	// Consistent reports whether the estimate reproduces the counts.
	Consistent bool `json:"consistent"`
	// DecodeNS is the time spent inside the decoder.
	DecodeNS int64 `json:"decode_ns"`
	// Decoder is the decoder that ran the job — for campaigns without an
	// explicit decoder, the one the noise policy selected server-side.
	Decoder string `json:"decoder,omitempty"`
	// Error is set for failed or canceled jobs.
	Error string `json:"error,omitempty"`
}

// Progress is a point-in-time view of a campaign. Completed, Failed,
// and Canceled are monotone: they only grow until their sum reaches
// Total.
type Progress struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	Canceled  int    `json:"canceled"`
	// Noise is the campaign's canonical noise model, present when the
	// campaign was submitted with a non-exact model.
	Noise *noise.Model `json:"noise,omitempty"`
	// Results are the settled jobs so far, ascending by Index.
	Results []JobResult `json:"results"`
}

// Settled is the number of jobs that have reached a terminal state.
func (p Progress) Settled() int { return p.Completed + p.Failed + p.Canceled }

// Terminal reports whether the campaign can no longer change.
func (p Progress) Terminal() bool { return p.State != Running }

// Campaign is one asynchronous batch decode. All methods are safe for
// concurrent use.
type Campaign struct {
	id     string
	total  int
	noise  noise.Model // canonical; zero means exact
	cancel context.CancelFunc

	mu           sync.Mutex
	canceledFlag bool
	completed    int
	failed       int
	canceledJobs int
	results      []JobResult
	changed      chan struct{} // closed and replaced on every update
	finished     time.Time     // set when the last job settles
}

// ID returns the campaign id.
func (cp *Campaign) ID() string { return cp.id }

// Total returns the number of submitted jobs.
func (cp *Campaign) Total() int { return cp.total }

func (cp *Campaign) stateLocked() State {
	switch {
	case cp.canceledFlag:
		return Canceled
	case cp.completed+cp.failed+cp.canceledJobs == cp.total:
		return Done
	default:
		return Running
	}
}

func (cp *Campaign) progressLocked() Progress {
	p := Progress{
		ID: cp.id, State: cp.stateLocked(), Total: cp.total,
		Completed: cp.completed, Failed: cp.failed, Canceled: cp.canceledJobs,
		Results: append([]JobResult(nil), cp.results...),
	}
	if !cp.noise.IsExact() {
		nm := cp.noise
		p.Noise = &nm
	}
	sort.Slice(p.Results, func(i, j int) bool { return p.Results[i].Index < p.Results[j].Index })
	return p
}

// Progress snapshots the campaign.
func (cp *Campaign) Progress() Progress {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.progressLocked()
}

// notifyLocked wakes every long-poll waiter.
func (cp *Campaign) notifyLocked() {
	close(cp.changed)
	cp.changed = make(chan struct{})
}

// settle records one job outcome. It runs on engine worker goroutines
// (via Job.OnDone) and on the dispatcher for jobs that never enqueued.
func (cp *Campaign) settle(idx int, res engine.Result, err error) {
	jr := JobResult{Index: idx}
	canceled := false
	switch {
	case err == nil:
		jr.Support = res.Support
		jr.Residual = res.Stats.Residual
		jr.Consistent = res.Stats.Consistent
		jr.DecodeNS = int64(res.Stats.DecodeTime)
		jr.Decoder = res.Decoder
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		canceled = true
		jr.Error = err.Error()
	default:
		jr.Error = err.Error()
	}

	cp.mu.Lock()
	defer cp.mu.Unlock()
	switch {
	case err == nil:
		cp.completed++
	case canceled:
		cp.canceledJobs++
	default:
		cp.failed++
	}
	cp.results = append(cp.results, jr)
	if cp.completed+cp.failed+cp.canceledJobs == cp.total {
		cp.finished = time.Now()
	}
	cp.notifyLocked()
}

// Cancel stops the campaign: queued jobs settle as canceled (their
// shared context is dead before a worker picks them up); jobs already
// inside a decoder run to completion and still count. Canceling a
// campaign whose jobs have all settled is a no-op — Done stays Done.
func (cp *Campaign) Cancel() {
	cp.cancel()
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if !cp.canceledFlag && cp.completed+cp.failed+cp.canceledJobs < cp.total {
		cp.canceledFlag = true
		cp.notifyLocked()
	}
}

// Wait long-polls the campaign: it returns the current progress as soon
// as the campaign is terminal with all jobs settled, or after d has
// elapsed (or ctx fired), whichever comes first. Intermediate updates
// re-arm the wait, so a sequence of Wait calls observes monotonically
// increasing Settled().
func (cp *Campaign) Wait(ctx context.Context, d time.Duration) Progress {
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		cp.mu.Lock()
		if cp.completed+cp.failed+cp.canceledJobs == cp.total {
			p := cp.progressLocked()
			cp.mu.Unlock()
			return p
		}
		ch := cp.changed
		cp.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			return cp.Progress()
		case <-ctx.Done():
			return cp.Progress()
		}
	}
}

// finishedAt returns when the last job settled (zero while running).
func (cp *Campaign) finishedAt() time.Time {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.finished
}

// ErrTooManyCampaigns is returned by Create when MaxActive campaigns
// are already unfinished — the campaign-level admission-control signal.
var ErrTooManyCampaigns = errors.New("campaign: too many active campaigns")

// Request describes a campaign submission.
type Request struct {
	// Scheme is the cached scheme every job decodes against.
	Scheme *engine.Scheme
	// Batch holds one measured count vector per job.
	Batch [][]int64
	// K is the signal Hamming weight.
	K int
	// Noise declares how the batch was measured; the zero value means
	// exact counts. The model applies to every job of the campaign: it
	// drives server-side decoder selection (when Dec is nil), widens the
	// per-job consistency slack, and is reported back in Progress.
	Noise noise.Model
	// Dec selects the decoder explicitly, overriding the noise policy;
	// nil means the policy's pick (the MN-Algorithm for exact batches).
	Dec decoder.Decoder
}

// Store owns campaign lifecycle: creation (with admission control
// against the owning shard's queue), lookup, cancellation, and GC of
// finished campaigns.
type Store struct {
	cluster *engine.Cluster
	cfg     Config

	mu     sync.Mutex
	nextID int
	byID   map[string]*Campaign
}

// NewStore creates a Store over the cluster.
func NewStore(cluster *engine.Cluster, cfg Config) *Store {
	return &Store{cluster: cluster, cfg: cfg, byID: make(map[string]*Campaign)}
}

// Create validates and admits a campaign, then fans its jobs out
// asynchronously and returns immediately. It returns
// engine.ErrSaturated when the owning shard's decode queue is full
// (the rejected jobs count toward that shard's Stats.JobsRejected) and
// ErrTooManyCampaigns when MaxActive campaigns are already running.
func (st *Store) Create(req Request) (*Campaign, error) {
	if req.Scheme == nil || req.Scheme.G == nil {
		return nil, fmt.Errorf("campaign: no scheme")
	}
	if len(req.Batch) == 0 {
		return nil, fmt.Errorf("campaign: empty batch")
	}
	if req.K < 0 || req.K > req.Scheme.G.N() {
		return nil, fmt.Errorf("campaign: weight k=%d out of [0,%d]", req.K, req.Scheme.G.N())
	}
	m := req.Scheme.G.M()
	for i, y := range req.Batch {
		if len(y) != m {
			return nil, fmt.Errorf("campaign: job %d has %d counts for %d queries", i, len(y), m)
		}
	}
	if err := req.Noise.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	// Admission control: a saturated owning shard rejects the whole batch
	// up front instead of buffering it behind an already-full queue.
	shard := st.cluster.Owner(req.Scheme)
	if shard.Saturated() {
		shard.NoteRejected(len(req.Batch))
		return nil, engine.ErrSaturated
	}

	st.mu.Lock()
	st.gcLocked(time.Now())
	if st.activeLocked() >= st.cfg.maxActive() {
		st.mu.Unlock()
		return nil, ErrTooManyCampaigns
	}
	st.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	cp := &Campaign{
		id:      fmt.Sprintf("c%d", st.nextID),
		total:   len(req.Batch),
		noise:   req.Noise.Canon(),
		cancel:  cancel,
		changed: make(chan struct{}),
	}
	st.byID[cp.id] = cp
	st.mu.Unlock()

	go st.dispatch(ctx, cp, req)
	return cp, nil
}

// dispatch feeds the campaign's jobs to the owning shard. Submit blocks
// on a full queue — backpressure, not rejection, once a campaign is
// admitted — and a canceled campaign context settles the remaining jobs
// without enqueueing them.
func (st *Store) dispatch(ctx context.Context, cp *Campaign, req Request) {
	for i, y := range req.Batch {
		idx := i
		job := engine.Job{
			Scheme: req.Scheme, Y: y, K: req.K, Noise: req.Noise, Dec: req.Dec,
			OnDone: func(res engine.Result, err error) { cp.settle(idx, res, err) },
		}
		if _, err := st.cluster.Submit(ctx, job); err != nil {
			// Never enqueued: the worker will not call OnDone.
			cp.settle(idx, engine.Result{}, err)
		}
	}
}

// Get returns the campaign with the given id.
func (st *Store) Get(id string) (*Campaign, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	cp, ok := st.byID[id]
	return cp, ok
}

// Cancel cancels the campaign with the given id.
func (st *Store) Cancel(id string) (*Campaign, bool) {
	cp, ok := st.Get(id)
	if ok {
		cp.Cancel()
	}
	return cp, ok
}

// List snapshots every retained campaign, ascending by numeric id. The
// snapshots carry counters only (Results nil): a listing of hundreds of
// finished campaigns must not copy every settled job; fetch one
// campaign by id for its results.
func (st *Store) List() []Progress {
	st.mu.Lock()
	cps := make([]*Campaign, 0, len(st.byID))
	for _, cp := range st.byID {
		cps = append(cps, cp)
	}
	st.mu.Unlock()
	out := make([]Progress, len(cps))
	for i, cp := range cps {
		out[i] = cp.Progress()
		out[i].Results = nil
	}
	sort.Slice(out, func(i, j int) bool {
		return campaignSeq(out[i].ID) < campaignSeq(out[j].ID)
	})
	return out
}

func campaignSeq(id string) int {
	var n int
	fmt.Sscanf(id, "c%d", &n)
	return n
}

// Counts reports (active, finished) retained campaigns.
func (st *Store) Counts() (active, finished int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	a := st.activeLocked()
	return a, len(st.byID) - a
}

func (st *Store) activeLocked() int {
	n := 0
	for _, cp := range st.byID {
		if cp.finishedAt().IsZero() {
			n++
		}
	}
	return n
}

// GC drops finished campaigns older than the retention window and, past
// MaxFinished, the oldest finished ones regardless of age. It returns
// the number collected. Create runs it opportunistically.
func (st *Store) GC(now time.Time) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.gcLocked(now)
}

func (st *Store) gcLocked(now time.Time) int {
	type fin struct {
		id string
		at time.Time
	}
	var finished []fin
	collected := 0
	for id, cp := range st.byID {
		at := cp.finishedAt()
		if at.IsZero() {
			continue
		}
		if now.Sub(at) > st.cfg.retention() {
			delete(st.byID, id)
			collected++
			continue
		}
		finished = append(finished, fin{id, at})
	}
	if over := len(finished) - st.cfg.maxFinished(); over > 0 {
		sort.Slice(finished, func(i, j int) bool { return finished[i].at.Before(finished[j].at) })
		for _, f := range finished[:over] {
			delete(st.byID, f.id)
			collected++
		}
	}
	return collected
}
