// Package campaign is the asynchronous batch-decoding subsystem behind
// pooledd's /v1/campaigns API: a campaign is a batch of measured count
// vectors decoded against one cached scheme through the engine cluster.
// Submission returns immediately; jobs fan out to the scheme's owning
// shard with per-job completion callbacks, progress counters update as
// jobs settle, and clients long-poll, stream, or cancel the campaign by
// id.
//
// Every campaign keeps a bounded, monotone event log of its per-job
// settlements (at most Total+1 entries: one per job plus one terminal
// event), so results can be streamed incrementally and resumed from any
// cursor — the SSE form pooledd serves on /v1/campaigns/{id}/events.
// Campaigns belong to tenants: jobs are dispatched to the cluster in
// fair round-robin order across tenants rather than FIFO across
// campaigns, and per-tenant quotas bound active campaigns and queued
// jobs so one heavy tenant cannot monopolize admission.
//
// This is the service form of the paper's operational premise: the
// pooled measurement round is the expensive step, so a lab submits a
// whole plate of count vectors at once and collects reconstructions as
// the cluster drains them — per-item recovered supports, not a terminal
// batch.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pooleddata/internal/decoder"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/wal"
	"pooleddata/metrics/trace"
)

// DefaultTenant is the tenant campaigns without an explicit tenant are
// accounted under.
const DefaultTenant = "default"

// Config sizes a Store.
type Config struct {
	// MaxActive bounds concurrently unfinished campaigns; 0 means 64.
	MaxActive int
	// Retention is how long finished campaigns stay queryable before GC;
	// 0 means 10 minutes. Canceled campaigns whose in-flight jobs never
	// settle (a wedged decoder) are reaped on the same clock, counted
	// from cancellation.
	Retention time.Duration
	// MaxFinished bounds retained finished campaigns regardless of age;
	// 0 means 256.
	MaxFinished int
	// TenantMaxActive bounds concurrently unfinished campaigns per
	// tenant; 0 means no per-tenant bound (MaxActive still applies).
	TenantMaxActive int
	// TenantMaxQueued bounds unsettled jobs per tenant — jobs admitted
	// but not yet completed, failed, or canceled; 0 means unbounded.
	TenantMaxQueued int
	// TenantWeights sets per-tenant dispatch weights for weighted fair
	// queuing: a tenant with weight w is offered up to w jobs per
	// rotation turn instead of 1, so paying tenants drain faster without
	// starving anyone. Tenants absent from the map (and weights < 1)
	// default to 1, which keeps dispatch the equal-turn round robin.
	TenantWeights map[string]int
	// WAL, when non-nil, journals every campaign to a per-campaign
	// write-ahead log: the spec on Create, one record per settled job,
	// and a terminal seal — what Restore replays after a crash. Nil
	// keeps campaigns memory-only.
	WAL *wal.WAL
	// Traces, when non-nil, turns on span-level tracing for campaign
	// jobs: Create opens one builder per job (id `<ingress id>-<index>`)
	// with an admission span, the dispatcher stamps the tenant-queue
	// wait, the engine and remote client append their own spans, and the
	// campaign seals and offers the trace when the job settles. The
	// store applies its own tail sampling; nil disables tracing with no
	// per-job cost.
	Traces *trace.Store
}

func (c Config) maxActive() int {
	if c.MaxActive <= 0 {
		return 64
	}
	return c.MaxActive
}

func (c Config) retention() time.Duration {
	if c.Retention <= 0 {
		return 10 * time.Minute
	}
	return c.Retention
}

func (c Config) maxFinished() int {
	if c.MaxFinished <= 0 {
		return 256
	}
	return c.MaxFinished
}

// State is a campaign's lifecycle phase.
type State string

const (
	// Running means jobs are still queued or decoding.
	Running State = "running"
	// Done means every job settled and the campaign was not canceled.
	Done State = "done"
	// Canceled means Cancel was called; jobs settle as canceled unless a
	// worker had already started (those still complete).
	Canceled State = "canceled"
	// Expired means the Store reaped the campaign before every job
	// settled (retention GC of a stale canceled campaign): waiters and
	// streams observe it as terminal instead of burning their timeouts.
	Expired State = "expired"
)

// JobResult is one settled decode job of a campaign.
type JobResult struct {
	// Index is the job's position in the submitted batch.
	Index int `json:"index"`
	// Support is the recovered one-entry index set (successful jobs).
	Support []int `json:"support,omitempty"`
	// Residual is the L1 misfit of the estimate against the counts.
	Residual int64 `json:"residual"`
	// Consistent reports whether the estimate reproduces the counts.
	Consistent bool `json:"consistent"`
	// DecodeNS is the time spent inside the decoder.
	DecodeNS int64 `json:"decode_ns"`
	// Decoder is the decoder that ran the job — for campaigns without an
	// explicit decoder, the one the noise policy selected server-side.
	Decoder string `json:"decoder,omitempty"`
	// Error is set for failed or canceled jobs.
	Error string `json:"error,omitempty"`
	// TraceID identifies the job's span trace when tracing is on — the
	// ingress trace id suffixed with the job index, retrievable via
	// GET /v1/traces/{id} — and falls back to the campaign's ingress
	// trace id otherwise, so SSE result events and campaign snapshots
	// always correlate with frontend and worker logs.
	TraceID string `json:"trace_id,omitempty"`
}

// Progress is a point-in-time view of a campaign. Completed, Failed,
// and Canceled are monotone: they only grow until their sum reaches
// Total.
type Progress struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	State  State  `json:"state"`
	Total  int    `json:"total"`

	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
	// Noise is the campaign's canonical noise model, present when the
	// campaign was submitted with a non-exact model.
	Noise *noise.Model `json:"noise,omitempty"`
	// Results are the settled jobs so far, ascending by Index.
	Results []JobResult `json:"results"`
}

// Settled is the number of jobs that have reached a terminal state.
func (p Progress) Settled() int { return p.Completed + p.Failed + p.Canceled }

// Terminal reports whether the campaign can no longer change.
func (p Progress) Terminal() bool { return p.State != Running }

// Campaign is one asynchronous batch decode. All methods are safe for
// concurrent use.
type Campaign struct {
	id     string
	tenant string
	total  int
	noise  noise.Model // canonical; zero means exact
	trace  string      // ingress trace id, stamped on every JobResult
	ctx    context.Context
	cancel context.CancelFunc

	// Store hooks, invoked without mu held: onSettled after every job
	// settles (tenant quota accounting plus, for completed jobs, the
	// per-tenant decode-latency histogram), onCancel after Cancel
	// (purging the campaign's undispatched jobs from the tenant queue).
	onSettled func(decodeNS int64, completed bool)
	onCancel  func()

	mu sync.Mutex
	// jnl journals settlements to the store's WAL. Guarded by mu so the
	// journaled record order matches the event-log order, and detached
	// (set nil) on graceful shutdown: store-closed settles must not
	// reach the log, or an unfinished campaign could never resume.
	jnl           *wal.WAL
	canceledFlag  bool
	expiredFlag   bool
	quotaReleased bool // expiry already returned the unsettled jobs' quota
	// redisp counts per-job re-dispatches after shard-unavailable
	// failures, keyed by batch index — the budget that keeps a campaign
	// terminating when no healthy shard ever appears.
	redisp        map[int]int
	completed     int
	failed        int
	canceledJobs  int
	results       []JobResult
	events        []Event       // monotone settlement log; ≤ total+1 entries
	sealed        bool          // terminal event appended, log closed
	changed       chan struct{} // closed and replaced on every update
	finished      time.Time     // set when the last job settles
	canceledAt    time.Time     // set on the first Cancel
}

// ID returns the campaign id.
func (cp *Campaign) ID() string { return cp.id }

// Tenant returns the tenant the campaign is accounted under.
func (cp *Campaign) Tenant() string { return cp.tenant }

// Total returns the number of submitted jobs.
func (cp *Campaign) Total() int { return cp.total }

func (cp *Campaign) settledLocked() int { return cp.completed + cp.failed + cp.canceledJobs }

func (cp *Campaign) stateLocked() State {
	switch {
	case cp.expiredFlag:
		return Expired
	case cp.canceledFlag:
		return Canceled
	case cp.settledLocked() == cp.total:
		return Done
	default:
		return Running
	}
}

func (cp *Campaign) progressLocked() Progress {
	p := Progress{
		ID: cp.id, Tenant: cp.tenant, State: cp.stateLocked(), Total: cp.total,
		Completed: cp.completed, Failed: cp.failed, Canceled: cp.canceledJobs,
		Results: append([]JobResult(nil), cp.results...),
	}
	if !cp.noise.IsExact() {
		nm := cp.noise
		p.Noise = &nm
	}
	sort.Slice(p.Results, func(i, j int) bool { return p.Results[i].Index < p.Results[j].Index })
	return p
}

// Progress snapshots the campaign.
func (cp *Campaign) Progress() Progress {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.progressLocked()
}

// notifyLocked wakes every long-poll waiter and event streamer.
func (cp *Campaign) notifyLocked() {
	close(cp.changed)
	cp.changed = make(chan struct{})
}

// settle records one job outcome. It runs on engine worker goroutines
// (via the shared OnDone callback, routed by Result.Tag) and on the
// dispatcher for jobs that never enqueued.
func (cp *Campaign) settle(idx int, res engine.Result, err error) {
	jr := JobResult{Index: idx, TraceID: cp.trace}
	if res.TraceID != "" {
		jr.TraceID = res.TraceID
	}
	canceled := false
	switch {
	case err == nil:
		jr.Support = res.Support
		jr.Residual = res.Stats.Residual
		jr.Consistent = res.Stats.Consistent
		jr.DecodeNS = int64(res.Stats.DecodeTime)
		jr.Decoder = res.Decoder
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		canceled = true
		jr.Error = err.Error()
	default:
		jr.Error = err.Error()
	}

	status := wal.StatusCompleted
	switch {
	case canceled:
		status = wal.StatusCanceled
	case err != nil:
		status = wal.StatusFailed
	}

	cp.mu.Lock()
	switch {
	case err == nil:
		cp.completed++
	case canceled:
		cp.canceledJobs++
	default:
		cp.failed++
	}
	cp.results = append(cp.results, jr)
	before := len(cp.events)
	cp.appendEventLocked(Event{Type: EventResult, Job: &jr})
	if len(cp.events) > before {
		cp.journalEventLocked(int64(len(cp.events)), status, &jr)
	}
	if cp.settledLocked() == cp.total {
		cp.finished = time.Now()
		cp.appendDoneLocked()
	}
	cp.notifyLocked()
	// An expired campaign's quota was returned in bulk when GC reaped it;
	// a straggler job settling afterwards must not release it twice.
	releaseQuota := !cp.quotaReleased
	cp.mu.Unlock()

	if releaseQuota && cp.onSettled != nil {
		cp.onSettled(jr.DecodeNS, err == nil)
	}
}

// allowRedispatch charges one unit of job idx's re-dispatch budget.
// It refuses — so the job settles with its error instead of requeueing —
// once the campaign is terminal-bound (canceled, expired, sealed) or the
// budget is spent: with no healthy shard ever appearing, the campaign
// must still terminate, exactly as it did before elastic membership.
func (cp *Campaign) allowRedispatch(idx, limit int) bool {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.canceledFlag || cp.expiredFlag || cp.sealed {
		return false
	}
	if cp.redisp == nil {
		cp.redisp = make(map[int]int)
	}
	if cp.redisp[idx] >= limit {
		return false
	}
	cp.redisp[idx]++
	return true
}

// journalEventLocked appends one settled job to the WAL, mirroring the
// event just appended to the in-memory log (same sequence number, so
// SSE Last-Event-ID cursors survive a restart). Append failures are
// logged, not propagated: mid-flight durability errors must not take
// down a live decode — the job simply re-dispatches on the next boot.
func (cp *Campaign) journalEventLocked(seq int64, status wal.Status, jr *JobResult) {
	if cp.jnl == nil {
		return
	}
	err := cp.jnl.Append(cp.id, wal.EventRecord{
		Seq: seq, Index: jr.Index, Status: status,
		Decoder: jr.Decoder, Error: jr.Error,
		Residual: jr.Residual, Consistent: jr.Consistent,
		DecodeNS: jr.DecodeNS, Support: jr.Support,
	})
	if err != nil {
		slog.Warn("campaign: wal append failed", "campaign", cp.id, "err", err)
	}
}

// detachJournal disconnects the campaign from the WAL. Graceful
// shutdown detaches every campaign before settling pending jobs as
// store-closed: those settles are shutdown artifacts, not outcomes, and
// journaling them would make the campaign unresumable.
func (cp *Campaign) detachJournal() {
	cp.mu.Lock()
	cp.jnl = nil
	cp.mu.Unlock()
}

// Cancel stops the campaign: jobs not yet dispatched (or still queued
// on the shard) settle as canceled; jobs already inside a decoder run
// to completion and still count. Canceling a campaign whose jobs have
// all settled is a no-op — Done stays Done.
func (cp *Campaign) Cancel() {
	// The flag must be set before the context dies: workers settle every
	// queued job the instant the context cancels, and the last settle
	// seals the log with the state it observes — flag-after-cancel could
	// seal a canceled campaign as "done".
	cp.mu.Lock()
	if !cp.canceledFlag && cp.settledLocked() < cp.total {
		cp.canceledFlag = true
		cp.canceledAt = time.Now()
		if cp.jnl != nil {
			// Journaled before the context dies for the same reason as the
			// flag: a crash right after the cancel must not replay the
			// campaign back to running.
			if err := cp.jnl.CancelMark(cp.id); err != nil {
				slog.Warn("campaign: wal cancel mark failed", "campaign", cp.id, "err", err)
			}
		}
		cp.notifyLocked()
	}
	cp.mu.Unlock()
	cp.cancel()
	if cp.onCancel != nil {
		cp.onCancel()
	}
}

// expire marks the campaign terminal on behalf of Store.GC: parked
// waiters wake with a terminal progress and event streams receive their
// closing event instead of waiting out their timeouts against a
// campaign the store no longer knows. It returns the number of
// unsettled jobs whose tenant quota the caller must release in bulk —
// those jobs may never settle (the reap premise is a wedged decoder),
// and any straggler that does settle later skips the per-job release.
// Settled campaigns are unaffected (their terminal event already
// exists) and return 0.
func (cp *Campaign) expire() (releasedQuota int) {
	// Flag and seal before canceling, for the same reason as Cancel: the
	// terminal event must carry the expired state, not whatever the last
	// racing settle would observe.
	cp.mu.Lock()
	if cp.settledLocked() < cp.total && !cp.expiredFlag {
		cp.expiredFlag = true
		cp.quotaReleased = true
		releasedQuota = cp.total - cp.settledLocked()
		cp.appendDoneLocked()
		cp.notifyLocked()
	}
	cp.mu.Unlock()
	cp.cancel()
	return releasedQuota
}

// terminalLocked reports whether Wait has nothing left to wait for.
func (cp *Campaign) terminalLocked() bool {
	return cp.settledLocked() == cp.total || cp.expiredFlag
}

// Wait long-polls the campaign: it returns the current progress as soon
// as the campaign is terminal with all jobs settled (or expired by GC),
// or after d has elapsed (or ctx fired), whichever comes first.
// Intermediate updates re-arm the wait, so a sequence of Wait calls
// observes monotonically increasing Settled().
func (cp *Campaign) Wait(ctx context.Context, d time.Duration) Progress {
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		cp.mu.Lock()
		if cp.terminalLocked() {
			p := cp.progressLocked()
			cp.mu.Unlock()
			return p
		}
		ch := cp.changed
		cp.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			return cp.Progress()
		case <-ctx.Done():
			return cp.Progress()
		}
	}
}

// finishedAt returns when the last job settled (zero while running).
func (cp *Campaign) finishedAt() time.Time {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.finished
}

// staleCanceled reports whether the campaign was canceled longer than
// retention ago and still has unsettled jobs — the reap condition for
// campaigns wedged by a decoder that never returns.
func (cp *Campaign) staleCanceled(now time.Time, retention time.Duration) bool {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.canceledFlag && cp.settledLocked() < cp.total &&
		!cp.canceledAt.IsZero() && now.Sub(cp.canceledAt) > retention
}

// ErrTooManyCampaigns is returned by Create when MaxActive campaigns
// are already unfinished — the campaign-level admission-control signal.
var ErrTooManyCampaigns = errors.New("campaign: too many active campaigns")

// ErrTenantQuota is returned by Create when the submitting tenant's
// MaxActive-campaigns or max-queued-jobs quota is exhausted. Other
// tenants are unaffected — the point of per-tenant admission.
var ErrTenantQuota = errors.New("campaign: tenant quota exhausted")

// errStoreClosed settles jobs still pending when the Store closes.
var errStoreClosed = errors.New("campaign: store closed")

// Request describes a campaign submission.
type Request struct {
	// Scheme is the cached scheme every job decodes against.
	Scheme *engine.Scheme
	// Batch holds one measured count vector per job.
	Batch [][]int64
	// K is the signal Hamming weight.
	K int
	// Tenant attributes the campaign for quota accounting and fair
	// dispatch; empty means DefaultTenant.
	Tenant string
	// Noise declares how the batch was measured; the zero value means
	// exact counts. The model applies to every job of the campaign: it
	// drives server-side decoder selection (when Dec is nil), widens the
	// per-job consistency slack, and is reported back in Progress.
	Noise noise.Model
	// Dec selects the decoder explicitly, overriding the noise policy;
	// nil means the policy's pick (the MN-Algorithm for exact batches).
	Dec decoder.Decoder
	// TraceID is the ingress trace identifier of the request that created
	// the campaign; it is carried on every job of the batch (and over the
	// remote shard wire) and echoed in every JobResult.
	TraceID string
	// SchemeRef is an opaque description of Scheme that the caller can
	// resolve back to a live *engine.Scheme at recovery time (pooledd
	// uses a JSON form of its registry entry). Only journaled; ignored
	// when the store has no WAL.
	SchemeRef string
}

func (r Request) tenant() string {
	if r.Tenant == "" {
		return DefaultTenant
	}
	return r.Tenant
}

// Store owns campaign lifecycle: creation (with admission control
// against the owning shard's queue and per-tenant quotas), lookup,
// cancellation, fair cross-tenant dispatch, and GC of finished
// campaigns.
type Store struct {
	cluster *engine.Cluster
	cfg     Config

	// latency holds the per-tenant decode-latency histograms served in
	// /v1/stats; bounded because tenant names are caller-controlled.
	latency *engine.LatencySet

	// Dispatcher and GC counters for the metrics surface: jobs handed to
	// the cluster, tenant rotation turns, credit grants, saturated-shard
	// requeues, campaigns reaped by GC, and reaped campaigns that expired
	// with unsettled jobs.
	dispatched    atomic.Uint64
	rotations     atomic.Uint64
	creditsGiven  atomic.Uint64
	requeues      atomic.Uint64
	gcCollected   atomic.Uint64
	expiredReaped atomic.Uint64
	// Orphan re-dispatch counters, by discovery path: a job that settled
	// with a shard-unavailable error (the dead worker's in-flight work)
	// vs. an Offer the dispatcher saw fail synchronously.
	redispatchedDead  atomic.Uint64
	redispatchedOffer atomic.Uint64

	mu           sync.Mutex
	nextID       int
	byID         map[string]*Campaign
	tenants      map[string]*tenantState
	rr           []string // tenant rotation order for fair dispatch
	rrPos        int
	rrCredits    int // weighted turns left for the tenant at rrPos; <0 = uninitialized
	pendingTotal int
	closed       bool

	wake chan struct{} // buffered(1): pending work for the dispatcher
	stop chan struct{}
	done chan struct{} // dispatcher exited

	stopOnce sync.Once
}

// NewStore creates a Store over the cluster and starts its dispatcher.
// Release the dispatcher with Close when the store is no longer needed
// (a long-lived service can let it live for the process lifetime).
func NewStore(cluster *engine.Cluster, cfg Config) *Store {
	st := newStore(cluster, cfg)
	go st.dispatchLoop()
	return st
}

// newStore builds a Store without starting the dispatcher — tests use
// it to observe the pending queues deterministically.
func newStore(cluster *engine.Cluster, cfg Config) *Store {
	return &Store{
		cluster:   cluster,
		cfg:       cfg,
		latency:   engine.NewLatencySet(64),
		byID:      make(map[string]*Campaign),
		tenants:   make(map[string]*tenantState),
		rrCredits: -1,
		wake:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// Close stops the dispatcher; jobs still pending dispatch settle as
// failed with a store-closed error so their campaigns terminate.
// Campaigns already on shard queues drain through the engine as usual.
// Journaled campaigns are detached from the WAL first: the shutdown
// settles are not outcomes, and keeping them out of the log is what
// lets an unfinished campaign resume on the next boot.
func (st *Store) Close() {
	st.stopOnce.Do(func() {
		st.mu.Lock()
		st.closed = true
		var cps []*Campaign
		if st.cfg.WAL != nil {
			cps = make([]*Campaign, 0, len(st.byID))
			for _, cp := range st.byID {
				cps = append(cps, cp)
			}
		}
		st.mu.Unlock()
		for _, cp := range cps {
			cp.detachJournal()
		}
		close(st.stop)
	})
	<-st.done
}

// Create validates and admits a campaign, then queues its jobs for fair
// dispatch and returns immediately. It returns engine.ErrSaturated when
// the owning shard's decode queue is full (the rejected jobs count
// toward that shard's Stats.JobsRejected), ErrTooManyCampaigns when
// MaxActive campaigns are already running, and ErrTenantQuota when the
// tenant's own campaign or queued-job quota is exhausted.
func (st *Store) Create(req Request) (*Campaign, error) {
	admitStart := time.Now()
	if req.Scheme == nil || req.Scheme.G == nil {
		return nil, fmt.Errorf("campaign: no scheme")
	}
	if len(req.Batch) == 0 {
		return nil, fmt.Errorf("campaign: empty batch")
	}
	if req.K < 0 || req.K > req.Scheme.G.N() {
		return nil, fmt.Errorf("campaign: weight k=%d out of [0,%d]", req.K, req.Scheme.G.N())
	}
	m := req.Scheme.G.M()
	for i, y := range req.Batch {
		if len(y) != m {
			return nil, fmt.Errorf("campaign: job %d has %d counts for %d queries", i, len(y), m)
		}
	}
	if err := req.Noise.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	// A batch bigger than the whole per-tenant queue quota can never be
	// admitted no matter how long the client waits — that is a
	// validation error (non-retryable), not a quota rejection.
	if st.cfg.TenantMaxQueued > 0 && len(req.Batch) > st.cfg.TenantMaxQueued {
		return nil, fmt.Errorf("campaign: batch of %d jobs exceeds the per-tenant queue quota of %d; split the batch", len(req.Batch), st.cfg.TenantMaxQueued)
	}
	// Admission control: a saturated owning shard rejects the whole batch
	// up front instead of buffering it behind an already-full queue.
	shard := st.cluster.Owner(req.Scheme)
	if shard.Saturated() {
		shard.NoteRejected(len(req.Batch))
		return nil, engine.ErrSaturated
	}
	tenant := req.tenant()

	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, errStoreClosed
	}
	st.gcLocked(time.Now())
	if st.activeLocked() >= st.cfg.maxActive() {
		st.mu.Unlock()
		return nil, ErrTooManyCampaigns
	}
	if st.cfg.TenantMaxActive > 0 && st.tenantActiveLocked(tenant) >= st.cfg.TenantMaxActive {
		st.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q at %d active campaigns", ErrTenantQuota, tenant, st.cfg.TenantMaxActive)
	}
	ts := st.tenantLocked(tenant)
	if st.cfg.TenantMaxQueued > 0 && ts.unsettled+len(req.Batch) > st.cfg.TenantMaxQueued {
		st.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q would exceed %d queued jobs", ErrTenantQuota, tenant, st.cfg.TenantMaxQueued)
	}
	st.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	cp := &Campaign{
		id:      fmt.Sprintf("c%d", st.nextID),
		tenant:  tenant,
		total:   len(req.Batch),
		noise:   req.Noise.Canon(),
		trace:   req.TraceID,
		ctx:     ctx,
		cancel:  cancel,
		changed: make(chan struct{}),
	}
	cp.onSettled = func(decodeNS int64, completed bool) { st.jobSettled(tenant, decodeNS, completed) }
	cp.onCancel = func() { st.purgeCanceled(cp) }
	// Journal the spec before the campaign becomes visible: once Create
	// returns an id, a crash must not forget the campaign. A journal
	// that cannot accept the spec fails the whole admission (the id is
	// returned to the sequence — nothing observed it).
	if st.cfg.WAL != nil {
		dn := ""
		if req.Dec != nil {
			dn = req.Dec.Name()
		}
		err := st.cfg.WAL.Begin(wal.CampaignSpec{
			ID: cp.id, Tenant: tenant, TraceID: req.TraceID,
			SchemeRef: req.SchemeRef, Noise: cp.noise.String(), Decoder: dn,
			K: req.K, Batch: req.Batch,
		})
		if err != nil {
			st.nextID--
			st.mu.Unlock()
			cancel()
			return nil, fmt.Errorf("campaign: journal: %w", err)
		}
		cp.jnl = st.cfg.WAL
	}
	st.byID[cp.id] = cp

	// Queue the jobs for the dispatcher. One OnDone callback is shared by
	// the whole batch; the engine routes each settlement back by its tag.
	// A settlement caused by the owning shard dying (not by the job) is
	// intercepted and the original job re-enters the fair-dispatch queue,
	// where Offer re-resolves its owner against the current ring — the
	// dead worker's in-flight work migrates to survivors instead of
	// failing the campaign.
	jobs := make([]engine.Job, len(req.Batch))
	var onDone func(engine.Result, error)
	onDone = func(res engine.Result, err error) {
		if err != nil && errors.Is(err, engine.ErrShardUnavailable) &&
			st.maybeRedispatch(pendingJob{cp: cp, job: jobs[res.Tag]}, &st.redispatchedDead) {
			return
		}
		cp.settle(res.Tag, res, err)
		st.finishJobTrace(jobs[res.Tag].Trace, err)
	}
	ts.unsettled += len(req.Batch)
	traceBase := req.TraceID
	if st.cfg.Traces != nil && traceBase == "" {
		traceBase = trace.NewID()
	}
	queuedAt := time.Now()
	for i, y := range req.Batch {
		jobs[i] = engine.Job{
			Scheme: req.Scheme, Y: y, K: req.K, Noise: req.Noise, Dec: req.Dec,
			Tag: i, OnDone: onDone, TraceID: req.TraceID,
		}
		if st.cfg.Traces != nil {
			// One trace per job — ingress id + job index — so a single slow
			// job in a thousand-job batch is retrievable on its own. The
			// admission span (validation, quotas, journal) is shared by the
			// whole batch; its offset clamps to the root's start.
			jobs[i].TraceID = fmt.Sprintf("%s-%d", traceBase, i)
			tb := trace.NewBuilder(jobs[i].TraceID, "campaign_job", trace.TierFrontend)
			tb.SetTenant(tenant)
			tb.SetScheme(req.Scheme.RouteKey())
			tb.Span("admission", trace.TierFrontend, 0, admitStart, time.Since(admitStart))
			jobs[i].Trace = tb
		}
		ts.push(pendingJob{cp: cp, job: jobs[i], queuedAt: queuedAt})
	}
	st.pendingTotal += len(req.Batch)
	st.mu.Unlock()

	st.signalWake()
	return cp, nil
}

// finishJobTrace seals a campaign job's trace and offers it to the
// configured trace store for tail sampling. The campaign layer owns
// builders it opened in Create, so every settle site calls this once
// per job; duplicate settles are harmless (a sealed builder returns
// nil, and the store ignores nil traces).
func (st *Store) finishJobTrace(tb *trace.Builder, err error) {
	if tb == nil || st.cfg.Traces == nil {
		return
	}
	if err != nil {
		tb.SetError(err.Error())
	}
	st.cfg.Traces.Offer(tb.Finish())
}

// Get returns the campaign with the given id.
func (st *Store) Get(id string) (*Campaign, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	cp, ok := st.byID[id]
	return cp, ok
}

// Cancel cancels the campaign with the given id.
func (st *Store) Cancel(id string) (*Campaign, bool) {
	cp, ok := st.Get(id)
	if ok {
		cp.Cancel()
	}
	return cp, ok
}

// List snapshots every retained campaign, ascending by numeric id. The
// snapshots carry counters only (Results nil): a listing of hundreds of
// finished campaigns must not copy every settled job; fetch one
// campaign by id for its results.
func (st *Store) List() []Progress {
	st.mu.Lock()
	cps := make([]*Campaign, 0, len(st.byID))
	for _, cp := range st.byID {
		cps = append(cps, cp)
	}
	st.mu.Unlock()
	out := make([]Progress, len(cps))
	for i, cp := range cps {
		out[i] = cp.Progress()
		out[i].Results = nil
	}
	sort.Slice(out, func(i, j int) bool {
		return campaignSeq(out[i].ID) < campaignSeq(out[j].ID)
	})
	return out
}

func campaignSeq(id string) int {
	var n int
	fmt.Sscanf(id, "c%d", &n)
	return n
}

// Counts reports (active, finished) retained campaigns.
func (st *Store) Counts() (active, finished int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	a := st.activeLocked()
	return a, len(st.byID) - a
}

func (st *Store) activeLocked() int {
	n := 0
	for _, cp := range st.byID {
		if cp.finishedAt().IsZero() {
			n++
		}
	}
	return n
}

func (st *Store) tenantActiveLocked(tenant string) int {
	n := 0
	for _, cp := range st.byID {
		if cp.tenant == tenant && cp.finishedAt().IsZero() {
			n++
		}
	}
	return n
}

// GC drops finished campaigns older than the retention window, stale
// canceled campaigns (canceled longer than retention ago but never
// fully settled — a wedged decoder), and, past MaxFinished, the oldest
// finished ones regardless of age. Every dropped campaign is expired
// first so parked waiters and event streams observe a terminal state
// instead of waiting out their timeouts. It returns the number
// collected. Create runs it opportunistically; pooledd also runs it on
// a ticker so idle servers release finished campaigns and their event
// logs.
func (st *Store) GC(now time.Time) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.gcLocked(now)
}

func (st *Store) gcLocked(now time.Time) int {
	type fin struct {
		id string
		at time.Time
	}
	var finished []fin
	collected := 0
	reap := func(id string, cp *Campaign) {
		// Wake parked waiters with a terminal progress first, and return
		// the unsettled jobs' quota to the tenant — wedged jobs would
		// otherwise pin TenantMaxQueued forever.
		if released := cp.expire(); released > 0 {
			st.expiredReaped.Add(1)
			if ts, ok := st.tenants[cp.tenant]; ok {
				if ts.unsettled -= released; ts.unsettled < 0 {
					ts.unsettled = 0
				}
			}
		}
		delete(st.byID, id)
		// Retention applies to the journal too: a reaped campaign's WAL
		// file would otherwise replay (and re-run) on the next boot.
		st.cfg.WAL.Remove(id)
		st.gcCollected.Add(1)
		collected++
	}
	for id, cp := range st.byID {
		at := cp.finishedAt()
		if at.IsZero() {
			if cp.staleCanceled(now, st.cfg.retention()) {
				reap(id, cp)
			}
			continue
		}
		if now.Sub(at) > st.cfg.retention() {
			reap(id, cp)
			continue
		}
		finished = append(finished, fin{id, at})
	}
	if over := len(finished) - st.cfg.maxFinished(); over > 0 {
		sort.Slice(finished, func(i, j int) bool { return finished[i].at.Before(finished[j].at) })
		for _, f := range finished[:over] {
			reap(f.id, st.byID[f.id])
		}
	}
	st.pruneTenantsLocked()
	return collected
}

// pruneTenantsLocked drops tenant accounting entries with no retained
// campaigns, no pending jobs, and no unsettled jobs.
func (st *Store) pruneTenantsLocked() {
	inUse := make(map[string]bool, len(st.byID))
	for _, cp := range st.byID {
		inUse[cp.tenant] = true
	}
	dropped := false
	for name, ts := range st.tenants {
		if !inUse[name] && ts.unsettled == 0 && ts.pendingLen() == 0 {
			delete(st.tenants, name)
			dropped = true
		}
	}
	if dropped {
		rr := st.rr[:0]
		for _, name := range st.rr {
			if _, ok := st.tenants[name]; ok {
				rr = append(rr, name)
			}
		}
		st.rr = rr
		// Positions shifted; the cursor may now point at a different
		// tenant, so its remaining turn credits are stale.
		st.rrCredits = -1
	}
}
