package campaign

import (
	"context"
	"testing"
	"time"
)

// TestWeightedPopOrder: a weight-3 tenant is offered three jobs per
// rotation turn; weight-1 tenants keep their single turn. With no
// weights configured the rotation is the old equal-turn round robin.
func TestWeightedPopOrder(t *testing.T) {
	c := testCluster(t, 1, 1, 64)
	st := newStore(c, Config{TenantWeights: map[string]int{"heavy": 3}}) // no dispatcher
	const n, k, m, batch = 300, 5, 240, 8
	s, _, ys := testBatch(t, c, n, k, m, batch, 3)

	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Tenant: "heavy"}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Tenant: "light"}); err != nil {
		t.Fatal(err)
	}

	var order []string
	for {
		pj, ok := st.nextPending()
		if !ok {
			break
		}
		order = append(order, pj.cp.Tenant())
	}
	if len(order) != 2*batch {
		t.Fatalf("popped %d jobs, want %d", len(order), 2*batch)
	}
	want := []string{
		"heavy", "heavy", "heavy", "light",
		"heavy", "heavy", "heavy", "light",
		"heavy", "heavy", "light", // heavy runs dry mid-turn
		"light", "light", "light", "light", "light",
	}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("pop %d = %q, want %q (full order %v)", i, order[i], w, order)
		}
	}
}

// TestEqualWeightsKeepRoundRobin guards the default: without configured
// weights the rotation alternates tenants one job per turn.
func TestEqualWeightsKeepRoundRobin(t *testing.T) {
	c := testCluster(t, 1, 1, 64)
	st := newStore(c, Config{})
	const n, k, m, batch = 300, 5, 240, 4
	s, _, ys := testBatch(t, c, n, k, m, batch, 3)
	for _, tenant := range []string{"a", "b"} {
		if _, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Tenant: tenant}); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for {
		pj, ok := st.nextPending()
		if !ok {
			break
		}
		order = append(order, pj.cp.Tenant())
	}
	for i, w := range []string{"a", "b", "a", "b", "a", "b", "a", "b"} {
		if order[i] != w {
			t.Fatalf("pop %d = %q, want %q (full order %v)", i, order[i], w, order)
		}
	}
}

// TestTenantLatencyHistogram: completed jobs feed the per-tenant
// decode-latency histogram surfaced by Tenants(), with the same bucket
// shape as the engine's, and the histogram survives campaign GC.
func TestTenantLatencyHistogram(t *testing.T) {
	c := testCluster(t, 2, 2, 0)
	st := NewStore(c, Config{Retention: time.Millisecond, TenantWeights: map[string]int{"t1": 2}})
	defer st.Close()
	const n, k, m, batch = 300, 5, 240, 6
	s, _, ys := testBatch(t, c, n, k, m, batch, 3)
	cp, err := st.Create(Request{Scheme: s, Batch: ys, K: k, Tenant: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		p := cp.Wait(context.Background(), 20*time.Millisecond)
		if p.Terminal() && p.Settled() == p.Total {
			if p.Failed != 0 {
				t.Fatalf("progress: %+v", p)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign did not finish")
		}
	}
	g := st.Tenants()["t1"]
	if g.Weight != 2 {
		t.Fatalf("weight = %d, want 2", g.Weight)
	}
	if g.DecodeLatency == nil {
		t.Fatal("no per-tenant decode-latency histogram")
	}
	if g.DecodeLatency.Count != batch {
		t.Fatalf("histogram count = %d, want %d", g.DecodeLatency.Count, batch)
	}
	if len(g.DecodeLatency.Counts) != len(g.DecodeLatency.BucketUpperNS)+1 {
		t.Fatal("histogram shape differs from the per-decoder histograms")
	}

	// GC reaps the finished campaign; the latency histogram is a
	// cumulative service counter and must survive.
	time.Sleep(2 * time.Millisecond)
	st.GC(time.Now())
	g = st.Tenants()["t1"]
	if g.DecodeLatency == nil || g.DecodeLatency.Count != batch {
		t.Fatalf("histogram lost across GC: %+v", g.DecodeLatency)
	}
	if g.Active != 0 || g.Finished != 0 {
		t.Fatalf("campaign gauges after GC: %+v", g)
	}
}
