package rng

import (
	"math"
	"math/bits"
)

// Rand wraps a raw Source with the distribution helpers the simulator
// needs: bounded integers (bias-free), floats, Bernoulli draws, Fisher-Yates
// shuffles and weight-k subset sampling. It mirrors the parts of math/rand
// the paper's C++ code uses from <random>, but with explicit, documented
// algorithms so results are stable across Go releases.
//
// A Rand is not safe for concurrent use.
type Rand struct {
	src Source
}

// NewRand wraps src.
func NewRand(src Source) *Rand { return &Rand{src: src} }

// NewRandSeeded is shorthand for a xoshiro256**-backed Rand.
func NewRandSeeded(seed uint64) *Rand { return &Rand{src: NewXoshiro(seed)} }

// Source returns the underlying raw source.
func (r *Rand) Source() Source { return r.src }

// Seed reseeds the underlying source.
func (r *Rand) Seed(seed uint64) { r.src.Seed(seed) }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Uint64n returns a uniform value in [0, n) without modulo bias using
// Lemire's multiply-shift rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.src.Uint64() & (n - 1)
	}
	// Lemire (2019): widening multiply, reject the low-bias region.
	hi, lo := bits.Mul64(r.src.Uint64(), n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.src.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.src.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate via the polar
// (Marsaglia) method. Used by the noisy-oracle extension.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// SampleK returns k distinct values from [0, n) in increasing order using
// Floyd's algorithm: O(k) expected draws and O(k) memory, independent of n.
// It panics if k > n or k < 0.
func (r *Rand) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleK with k out of range")
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Insertion sort: k is small (k = n^θ) and the values are near-sorted
	// only by accident; for large k callers pay O(k log k) elsewhere anyway.
	for i := 1; i < len(out); i++ {
		v := out[i]
		j := i - 1
		for j >= 0 && out[j] > v {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = v
	}
	return out
}

// Binomial draws from Bin(n, p) by inversion for small n·p and by
// summing Bernoulli draws otherwise. Exact distribution, not an
// approximation; used by design ablations and tests.
func (r *Rand) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial with n < 0")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Direct summation is O(n) but every call site has modest n; the
	// simulator's hot loops never draw binomials element-wise.
	count := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			count++
		}
	}
	return count
}
