package rng

// SplitMix64 is Steele, Lea and Flood's splittable generator. It passes
// BigCrush, has a full 2^64 period, and — crucially for this codebase — any
// 64-bit seed yields a statistically independent stream, which makes it the
// natural tool for deriving goroutine-private sub-streams from a master
// seed.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix returns a SplitMix64 seeded with seed.
func NewSplitMix(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Seed resets the generator to the given seed.
func (s *SplitMix64) Seed(seed uint64) { s.state = seed }

// Uint64 returns the next output of the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 advances a SplitMix64 state by one step and returns both the output
// and the new state. It is the pure-function form used for seed derivation
// without allocating a generator.
func Mix64(state uint64) (out, next uint64) {
	next = state + 0x9e3779b97f4a7c15
	z := next
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31), next
}

// DeriveSeed deterministically maps (master, index) to an independent
// 64-bit seed. Distinct indices give decorrelated streams; this is how all
// parallel code in the repository assigns per-worker generators.
func DeriveSeed(master uint64, index uint64) uint64 {
	// Two rounds of the SplitMix64 finalizer over a combination of master
	// and index. The golden-gamma multiplication separates consecutive
	// indices by a full avalanche.
	x := master ^ (index+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
