package rng

// Streams produces independent per-worker generators from one master seed.
// Parallel components (design construction, query execution, experiment
// trials) each take a Streams and hand stream i to worker i, so results are
// reproducible regardless of scheduling and no Source is ever shared
// between goroutines.
type Streams struct {
	master uint64
	algo   Algorithm
}

// NewStreams returns a stream family rooted at master using algo for the
// member generators.
func NewStreams(algo Algorithm, master uint64) *Streams {
	return &Streams{master: master, algo: algo}
}

// Stream returns generator number i of the family. Calling Stream twice
// with the same index yields generators producing identical output.
func (s *Streams) Stream(i uint64) Source {
	return New(s.algo, DeriveSeed(s.master, i))
}

// Rand returns stream i wrapped in a *Rand.
func (s *Streams) Rand(i uint64) *Rand {
	return NewRand(s.Stream(i))
}

// Sub returns a child family whose streams are independent from this
// family's streams; used when a worker itself fans out (e.g. a trial that
// builds a design in parallel).
func (s *Streams) Sub(i uint64) *Streams {
	return &Streams{master: DeriveSeed(s.master^0xa5a5a5a5a5a5a5a5, i), algo: s.algo}
}
