package rng

import "testing"

// Reference outputs of the Nishimura/Matsumoto mt19937-64.c seeded with
// init_genrand64(5489) — the default C++11 std::mt19937_64 seed. The tenth
// -thousandth value check is the standard conformance test from the C++
// standard (§26.5.3 requires the 10000th value of mt19937_64() to be
// 9981545732273789042).
func TestMT19937DefaultSeedFirstValue(t *testing.T) {
	m := NewMT19937(5489)
	got := m.Uint64()
	const want = uint64(14514284786278117030)
	if got != want {
		t.Fatalf("first output with seed 5489 = %d, want %d", got, want)
	}
}

func TestMT19937TenThousandthValue(t *testing.T) {
	m := NewMT19937(5489)
	var v uint64
	for i := 0; i < 10000; i++ {
		v = m.Uint64()
	}
	const want = uint64(9981545732273789042)
	if v != want {
		t.Fatalf("10000th output with seed 5489 = %d, want %d", v, want)
	}
}

func TestMT19937SeedSliceReference(t *testing.T) {
	// Reference first values from mt19937-64.c's main(), which seeds with
	// the key {0x12345, 0x23456, 0x34567, 0x45678}.
	m := &MT19937{}
	m.SeedSlice([]uint64{0x12345, 0x23456, 0x34567, 0x45678})
	want := []uint64{
		7266447313870364031, 4946485549665804864, 16945909448695747420,
		16394063075524226720, 4873882236456199058,
	}
	for i, w := range want {
		if got := m.Uint64(); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
}

func TestMT19937ReseedRestartsStream(t *testing.T) {
	m := NewMT19937(12345)
	first := make([]uint64, 700) // spans two twist blocks
	for i := range first {
		first[i] = m.Uint64()
	}
	m.Seed(12345)
	for i := range first {
		if got := m.Uint64(); got != first[i] {
			t.Fatalf("after reseed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestMT19937DistinctSeedsDiverge(t *testing.T) {
	a, b := NewMT19937(1), NewMT19937(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agreed on %d of 100 outputs", same)
	}
}
