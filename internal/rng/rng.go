// Package rng provides the deterministic pseudo-random number generators
// used throughout the pooled-data simulator.
//
// The reference implementation of the paper (Gebhard et al., IPDPS 2022)
// generates its random pooling designs with the C++11 Mersenne Twister
// mt19937_64. This package re-implements that generator from scratch so the
// Go reproduction draws from the same family, and adds two modern
// generators — SplitMix64 and xoshiro256** — that are cheaper and support
// clean seed-splitting for parallel goroutine-private streams.
//
// All generators implement the Source interface. None of them are safe for
// concurrent use; parallel code must derive one stream per goroutine via
// NewStreams or SplitMix64-based seed derivation (see streams.go).
package rng

// Source is a deterministic stream of uniform 64-bit values.
//
// Implementations are not safe for concurrent use. A Source can be re-seeded
// at any time; after Seed(s) the stream is exactly the stream of a freshly
// constructed generator with seed s.
type Source interface {
	// Uint64 returns the next value of the stream, uniform on [0, 2^64).
	Uint64() uint64
	// Seed resets the generator state deterministically from seed.
	Seed(seed uint64)
}

// Algorithm selects one of the provided generator families.
type Algorithm int

const (
	// AlgMT19937 is the 64-bit Mersenne Twister (the paper's generator).
	AlgMT19937 Algorithm = iota
	// AlgXoshiro is xoshiro256**, a small fast all-purpose generator.
	AlgXoshiro
	// AlgSplitMix is SplitMix64, used mainly for seeding and stream splitting.
	AlgSplitMix
)

// String returns the conventional name of the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgMT19937:
		return "mt19937_64"
	case AlgXoshiro:
		return "xoshiro256**"
	case AlgSplitMix:
		return "splitmix64"
	default:
		return "unknown"
	}
}

// New constructs a seeded Source of the requested family.
func New(a Algorithm, seed uint64) Source {
	switch a {
	case AlgMT19937:
		return NewMT19937(seed)
	case AlgXoshiro:
		return NewXoshiro(seed)
	case AlgSplitMix:
		return NewSplitMix(seed)
	default:
		return NewXoshiro(seed)
	}
}
