package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMixKnownValues(t *testing.T) {
	// Reference values for splitmix64 with seed 0 (from the public domain
	// reference implementation by Vigna).
	s := NewSplitMix(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("splitmix64(seed=0) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64MatchesGenerator(t *testing.T) {
	s := NewSplitMix(42)
	state := uint64(42)
	for i := 0; i < 50; i++ {
		out, next := Mix64(state)
		state = next
		if got := s.Uint64(); got != out {
			t.Fatalf("Mix64 diverges from SplitMix64 at step %d", i)
		}
	}
}

func TestXoshiroJumpDisjointness(t *testing.T) {
	// After a Jump, the stream must not collide with the original prefix.
	a := NewXoshiro(7)
	b := NewXoshiro(7)
	b.Jump()
	seen := make(map[uint64]struct{}, 1000)
	for i := 0; i < 1000; i++ {
		seen[a.Uint64()] = struct{}{}
	}
	collisions := 0
	for i := 0; i < 1000; i++ {
		if _, ok := seen[b.Uint64()]; ok {
			collisions++
		}
	}
	if collisions != 0 {
		t.Fatalf("jumped stream collided with original prefix %d times", collisions)
	}
}

func TestXoshiroSeedDeterminism(t *testing.T) {
	a, b := NewXoshiro(99), NewXoshiro(99)
	for i := 0; i < 200; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed xoshiro streams diverged at step %d", i)
		}
	}
}

func TestNewAlgorithmDispatch(t *testing.T) {
	for _, a := range []Algorithm{AlgMT19937, AlgXoshiro, AlgSplitMix} {
		src := New(a, 1)
		if src == nil {
			t.Fatalf("New(%v) returned nil", a)
		}
		src.Uint64() // must not panic
		if a.String() == "unknown" {
			t.Fatalf("Algorithm %d has no name", a)
		}
	}
	if Algorithm(99).String() != "unknown" {
		t.Fatal("out-of-range algorithm should stringify as unknown")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := NewRandSeeded(3)
	for _, n := range []uint64{1, 2, 3, 7, 16, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square-ish sanity check on a small modulus.
	r := NewRandSeeded(11)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("value %d drawn %d times, want about %.0f", v, c, want)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewRandSeeded(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRandSeeded(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRandSeeded(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	r := NewRandSeeded(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := NewRandSeeded(17)
	const p, draws = 0.3, 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	mean := float64(hits) / draws
	if math.Abs(mean-p) > 0.01 {
		t.Fatalf("Bernoulli(%.1f) empirical mean %.4f", p, mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRandSeeded(23)
	const draws = 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f, want about 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRandSeeded(29)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleKProperties(t *testing.T) {
	r := NewRandSeeded(31)
	check := func(n, k int) bool {
		s := r.SampleK(n, k)
		if len(s) != k {
			return false
		}
		for i, v := range s {
			if v < 0 || v >= n {
				return false
			}
			if i > 0 && s[i-1] >= v {
				return false // must be strictly increasing => distinct
			}
		}
		return true
	}
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 1}, {10, 10}, {100, 7}, {1000, 50}} {
		if !check(tc.n, tc.k) {
			t.Fatalf("SampleK(%d,%d) violated sortedness/distinctness", tc.n, tc.k)
		}
	}
}

func TestSampleKUniformMargins(t *testing.T) {
	// Each element should be included with probability k/n.
	r := NewRandSeeded(37)
	const n, k, trials = 20, 5, 40000
	counts := make([]int, n)
	for t := 0; t < trials; t++ {
		for _, v := range r.SampleK(n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("element %d included %d times, want about %.0f", v, c, want)
		}
	}
}

func TestSampleKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleK(3, 4) did not panic")
		}
	}()
	NewRandSeeded(1).SampleK(3, 4)
}

func TestBinomialMoments(t *testing.T) {
	r := NewRandSeeded(41)
	const n, p, trials = 50, 0.4, 20000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(r.Binomial(n, p))
	}
	mean := sum / trials
	if math.Abs(mean-n*p) > 0.3 {
		t.Fatalf("Binomial(%d,%.1f) empirical mean %.3f, want %.1f", n, p, mean, n*p)
	}
	if r.Binomial(10, 0) != 0 || r.Binomial(10, 1) != 10 || r.Binomial(0, 0.5) != 0 {
		t.Fatal("Binomial edge cases wrong")
	}
}

func TestStreamsReproducible(t *testing.T) {
	s := NewStreams(AlgXoshiro, 123)
	a1, a2 := s.Stream(4), s.Stream(4)
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatalf("same stream index diverged at step %d", i)
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	s := NewStreams(AlgXoshiro, 123)
	a, b := s.Stream(0), s.Stream(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct streams agreed %d of 1000 times", same)
	}
	sub := s.Sub(0)
	c, d := sub.Stream(0), s.Stream(0)
	if c.Uint64() == d.Uint64() {
		t.Fatal("sub-family stream collides with parent stream")
	}
}

func TestDeriveSeedInjectiveOnRange(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 5000; i++ {
		s := DeriveSeed(777, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed collision between indices %d and %d", i, j)
		}
		seen[s] = i
	}
}

func TestQuickUint64nNeverExceeds(t *testing.T) {
	r := NewRandSeeded(53)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
