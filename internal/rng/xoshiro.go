package rng

import "math/bits"

// Xoshiro256 implements xoshiro256** 1.0 by Blackman and Vigna. It is the
// default generator for the hot paths of the simulator: it needs four words
// of state, is branch-free, and supports a 2^128-step Jump for carving a
// single stream into non-overlapping parallel sub-streams.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro returns a xoshiro256** generator whose state is expanded from
// seed with SplitMix64, as recommended by the authors.
func NewXoshiro(seed uint64) *Xoshiro256 {
	x := &Xoshiro256{}
	x.Seed(seed)
	return x
}

// Seed expands seed into the four state words via SplitMix64. An all-zero
// state (which would be absorbing) cannot arise from this expansion.
func (x *Xoshiro256) Seed(seed uint64) {
	sm := seed
	for i := range x.s {
		x.s[i], sm = Mix64(sm)
	}
}

// Uint64 returns the next output of the stream.
func (x *Xoshiro256) Uint64() uint64 {
	result := bits.RotateLeft64(x.s[1]*5, 7) * 9
	t := x.s[1] << 17

	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = bits.RotateLeft64(x.s[3], 45)
	return result
}

// jumpPoly is the characteristic polynomial of the 2^128-step jump.
var jumpPoly = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}

// Jump advances the generator by 2^128 steps. Starting from a common seed,
// k calls to Jump produce the start of the k-th of 2^128 non-overlapping
// sub-streams of length 2^128 each.
func (x *Xoshiro256) Jump() {
	var s0, s1, s2, s3 uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}
