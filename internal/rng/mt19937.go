package rng

// MT19937 implements the 64-bit Mersenne Twister of Nishimura and
// Matsumoto, the generator behind C++11's std::mt19937_64 which the paper's
// original simulator uses. Parameters follow the reference implementation
// (mt19937-64.c, 2004/9/29 version).
type MT19937 struct {
	state [mtN]uint64
	index int
}

const (
	mtN         = 312
	mtM         = 156
	mtMatrixA   = 0xB5026F5AA96619E9
	mtUpperMask = 0xFFFFFFFF80000000
	mtLowerMask = 0x000000007FFFFFFF
	mtInitMult  = 6364136223846793005
)

// NewMT19937 returns a Mersenne Twister seeded exactly as the C++ reference
// seeds from a single 64-bit value.
func NewMT19937(seed uint64) *MT19937 {
	m := &MT19937{}
	m.Seed(seed)
	return m
}

// Seed resets the state using the reference init_genrand64 recurrence.
func (m *MT19937) Seed(seed uint64) {
	m.state[0] = seed
	for i := 1; i < mtN; i++ {
		m.state[i] = mtInitMult*(m.state[i-1]^(m.state[i-1]>>62)) + uint64(i)
	}
	m.index = mtN
}

// Uint64 returns the next tempered output.
func (m *MT19937) Uint64() uint64 {
	if m.index >= mtN {
		m.twist()
	}
	x := m.state[m.index]
	m.index++

	x ^= (x >> 29) & 0x5555555555555555
	x ^= (x << 17) & 0x71D67FFFEDA60000
	x ^= (x << 37) & 0xFFF7EEE000000000
	x ^= x >> 43
	return x
}

// twist regenerates the full state block of 312 words.
func (m *MT19937) twist() {
	var i int
	for ; i < mtN-mtM; i++ {
		x := (m.state[i] & mtUpperMask) | (m.state[i+1] & mtLowerMask)
		m.state[i] = m.state[i+mtM] ^ (x >> 1) ^ ((x & 1) * mtMatrixA)
	}
	for ; i < mtN-1; i++ {
		x := (m.state[i] & mtUpperMask) | (m.state[i+1] & mtLowerMask)
		m.state[i] = m.state[i+mtM-mtN] ^ (x >> 1) ^ ((x & 1) * mtMatrixA)
	}
	x := (m.state[mtN-1] & mtUpperMask) | (m.state[0] & mtLowerMask)
	m.state[mtN-1] = m.state[mtM-1] ^ (x >> 1) ^ ((x & 1) * mtMatrixA)
	m.index = 0
}

// SeedSlice seeds from a key array, mirroring init_by_array64 of the
// reference implementation. It is provided for bit-compatibility with
// simulations that seed the C++ engine with seed sequences.
func (m *MT19937) SeedSlice(key []uint64) {
	m.Seed(19650218)
	i, j := 1, 0
	k := len(key)
	if mtN > k {
		k = mtN
	}
	for ; k > 0; k-- {
		m.state[i] = (m.state[i] ^ ((m.state[i-1] ^ (m.state[i-1] >> 62)) * 3935559000370003845)) + key[j] + uint64(j)
		i++
		j++
		if i >= mtN {
			m.state[0] = m.state[mtN-1]
			i = 1
		}
		if j >= len(key) {
			j = 0
		}
	}
	for k = mtN - 1; k > 0; k-- {
		m.state[i] = (m.state[i] ^ ((m.state[i-1] ^ (m.state[i-1] >> 62)) * 2862933555777941757)) - uint64(i)
		i++
		if i >= mtN {
			m.state[0] = m.state[mtN-1]
			i = 1
		}
	}
	m.state[0] = 1 << 63
	m.index = mtN
}
