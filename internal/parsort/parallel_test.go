package parsort

import (
	"runtime"
	"testing"
)

// withProcs runs fn with GOMAXPROCS temporarily raised so the parallel
// code paths execute even on single-CPU machines (goroutine concurrency
// does not need real cores for correctness testing).
func withProcs(t *testing.T, procs int, fn func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	fn()
}

func TestSortDescParallelPath(t *testing.T) {
	for _, procs := range []int{2, 3, 4, 8} {
		withProcs(t, procs, func() {
			for _, distinct := range []bool{true, false} {
				scores := randScores(uint64(procs), 20000, distinct)
				got := SortDesc(scores)
				want := refSortDesc(scores)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("procs=%d distinct=%v: parallel sort diverges at %d", procs, distinct, i)
					}
				}
			}
		})
	}
}

func TestSortDescParallelOddRunCount(t *testing.T) {
	// procs=3 rounds down to 2 workers; procs=5 rounds to 4. Sizes just
	// above the parallel threshold exercise the copy-through branch for
	// odd run counts.
	withProcs(t, 5, func() {
		scores := randScores(7, 4097, true)
		got := SortDesc(scores)
		want := refSortDesc(scores)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("diverges at %d", i)
			}
		}
	})
}

func TestSortDescParallelStability(t *testing.T) {
	// Heavy ties stress the merge's index tie-breaking across block
	// boundaries.
	withProcs(t, 4, func() {
		scores := make([]float64, 10000)
		for i := range scores {
			scores[i] = float64(i % 3)
		}
		got := SortDesc(scores)
		want := refSortDesc(scores)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tie order diverges at %d: %d vs %d", i, got[i], want[i])
			}
		}
	})
}
