// Package parsort provides the parallel ranking step of the MN-Algorithm:
// sorting coordinates by score and selecting the k highest.
//
// The paper notes (§I, "Parallelized Reconstruction") that after the two
// matrix–vector products the only remaining work is sorting the score
// vector, and points to the literature on parallel sorting. Scores are
// ranked under a strict total order — score descending, index ascending on
// ties — so every routine here is deterministic.
package parsort

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// less is the strict total order: higher score first, lower index breaks
// ties.
func less(scores []float64, a, b int32) bool {
	if scores[a] != scores[b] {
		return scores[a] > scores[b]
	}
	return a < b
}

// SortDesc returns the indices 0..len(scores)-1 ordered by score
// descending (ties by ascending index), using a parallel merge sort.
func SortDesc(scores []float64) []int32 {
	n := len(scores)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	if n < 2 {
		return idx
	}
	workers := runtime.GOMAXPROCS(0)
	if n < 1<<12 || workers < 2 {
		sort.Slice(idx, func(a, b int) bool { return less(scores, idx[a], idx[b]) })
		return idx
	}
	// Round worker count down to a power of two so merging pairs up evenly.
	for workers&(workers-1) != 0 {
		workers--
	}
	// Phase 1: sort contiguous blocks concurrently.
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * n / workers
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		wg.Add(1)
		go func(part []int32) {
			defer wg.Done()
			sort.Slice(part, func(a, b int) bool { return less(scores, part[a], part[b]) })
		}(idx[lo:hi])
	}
	wg.Wait()
	// Phase 2: pairwise parallel merges until one run remains.
	buf := make([]int32, n)
	src, dst := idx, buf
	for len(bounds) > 2 {
		nb := make([]int, 0, (len(bounds)+1)/2+1)
		nb = append(nb, 0)
		var mg sync.WaitGroup
		for b := 0; b+2 < len(bounds); b += 2 {
			lo, mid, hi := bounds[b], bounds[b+1], bounds[b+2]
			mg.Add(1)
			go func(lo, mid, hi int) {
				defer mg.Done()
				mergeRuns(scores, src, dst, lo, mid, hi)
			}(lo, mid, hi)
			nb = append(nb, hi)
		}
		if len(bounds)%2 == 0 { // odd number of runs: copy the last through
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			copy(dst[lo:hi], src[lo:hi])
			nb = append(nb, hi)
		}
		mg.Wait()
		bounds = nb
		src, dst = dst, src
	}
	return src
}

// mergeRuns merges the sorted runs src[lo:mid] and src[mid:hi] into
// dst[lo:hi].
func mergeRuns(scores []float64, src, dst []int32, lo, mid, hi int) {
	i, j := lo, mid
	for p := lo; p < hi; p++ {
		switch {
		case i >= mid:
			dst[p] = src[j]
			j++
		case j >= hi:
			dst[p] = src[i]
			i++
		case less(scores, src[j], src[i]):
			dst[p] = src[j]
			j++
		default:
			dst[p] = src[i]
			i++
		}
	}
}

// TopK returns the indices of the k largest scores (ties resolved toward
// lower indices), sorted by index ascending. It runs in expected O(n) via
// iterative quickselect and panics if k is out of [0, len(scores)].
func TopK(scores []float64, k int) []int32 {
	n := len(scores)
	if k < 0 || k > n {
		panic(fmt.Sprintf("parsort: TopK k=%d out of [0,%d]", k, n))
	}
	if k == 0 {
		return nil
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	if k < n {
		quickselect(scores, idx, k)
	}
	out := idx[:k]
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// TopKDesc returns the indices of the k largest scores in rank order —
// score descending, ties by ascending index — i.e. the first k entries
// SortDesc would produce, in expected O(n + k log k) instead of a full
// sort. It panics if k is out of [0, len(scores)].
func TopKDesc(scores []float64, k int) []int32 {
	out := TopK(scores, k)
	sort.Slice(out, func(a, b int) bool { return less(scores, out[a], out[b]) })
	return out
}

// quickselect rearranges idx so that the k smallest elements under the
// (score desc, index asc) order occupy idx[:k]. Median-of-three pivoting,
// iterative; falls back to a full sort on tiny ranges.
func quickselect(scores []float64, idx []int32, k int) {
	lo, hi := 0, len(idx)
	// Deterministic pivot walk: the order is strict and total, so equal
	// keys cannot occur and the recursion always shrinks.
	for hi-lo > 16 {
		p := medianOfThree(scores, idx, lo, hi)
		// Hoare-style partition around pivot value.
		pivot := idx[p]
		idx[p], idx[hi-1] = idx[hi-1], idx[p]
		store := lo
		for i := lo; i < hi-1; i++ {
			if less(scores, idx[i], pivot) {
				idx[i], idx[store] = idx[store], idx[i]
				store++
			}
		}
		idx[store], idx[hi-1] = idx[hi-1], idx[store]
		switch {
		case store == k || store == k-1:
			return
		case store > k:
			hi = store
		default:
			lo = store + 1
		}
	}
	part := idx[lo:hi]
	sort.Slice(part, func(a, b int) bool { return less(scores, part[a], part[b]) })
}

// medianOfThree returns the position in [lo,hi) of the median of the
// first, middle and last elements under the strict order.
func medianOfThree(scores []float64, idx []int32, lo, hi int) int {
	a, b, c := lo, lo+(hi-lo)/2, hi-1
	if less(scores, idx[b], idx[a]) {
		a, b = b, a
	}
	if less(scores, idx[c], idx[b]) {
		b = c
		if less(scores, idx[b], idx[a]) {
			b = a
		}
	}
	return b
}
