package parsort

import (
	"sort"
	"testing"
	"testing/quick"

	"pooleddata/internal/rng"
)

func refSortDesc(scores []float64) []int32 {
	idx := make([]int32, len(scores))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool { return less(scores, idx[a], idx[b]) })
	return idx
}

func randScores(seed uint64, n int, distinct bool) []float64 {
	r := rng.NewRandSeeded(seed)
	s := make([]float64, n)
	for i := range s {
		if distinct {
			s[i] = r.Float64()
		} else {
			s[i] = float64(r.Intn(8)) // many ties
		}
	}
	return s
}

func TestSortDescSmall(t *testing.T) {
	scores := []float64{1, 5, 3, 5, 2}
	got := SortDesc(scores)
	want := []int32{1, 3, 2, 4, 0} // 5(idx1), 5(idx3), 3, 2, 1
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortDesc = %v, want %v", got, want)
		}
	}
}

func TestSortDescEmptyAndSingle(t *testing.T) {
	if len(SortDesc(nil)) != 0 {
		t.Fatal("empty input should return empty")
	}
	if got := SortDesc([]float64{42}); len(got) != 1 || got[0] != 0 {
		t.Fatal("singleton wrong")
	}
}

func TestSortDescMatchesReferenceLarge(t *testing.T) {
	// Large enough to exercise the parallel path (n >= 4096).
	for _, distinct := range []bool{true, false} {
		scores := randScores(7, 50000, distinct)
		got := SortDesc(scores)
		want := refSortDesc(scores)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallel sort diverges from reference at %d (distinct=%v)", i, distinct)
			}
		}
	}
}

func TestSortDescQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewRandSeeded(seed)
		n := r.Intn(9000)
		scores := randScores(seed, n, seed%2 == 0)
		got := SortDesc(scores)
		want := refSortDesc(scores)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKAgainstSort(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewRandSeeded(seed)
		n := 1 + r.Intn(5000)
		k := r.Intn(n + 1)
		scores := randScores(seed, n, seed%3 != 0)
		got := TopK(scores, k)
		ref := refSortDesc(scores)[:k]
		sort.Slice(ref, func(a, b int) bool { return ref[a] < ref[b] })
		if len(got) != k {
			return false
		}
		for i := range ref {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKEdges(t *testing.T) {
	scores := []float64{3, 1, 2}
	if got := TopK(scores, 0); len(got) != 0 {
		t.Fatal("TopK(0) not empty")
	}
	got := TopK(scores, 3)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("TopK(all) = %v", got)
	}
	got = TopK(scores, 1)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("TopK(1) = %v", got)
	}
}

func TestTopKTiesPreferLowerIndex(t *testing.T) {
	scores := []float64{5, 5, 5, 5}
	got := TopK(scores, 2)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("ties should prefer lower indices, got %v", got)
	}
}

func TestTopKPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("TopK(k=%d) did not panic", k)
				}
			}()
			TopK([]float64{1, 2, 3}, k)
		}()
	}
}

func TestTopKLargeSelect(t *testing.T) {
	scores := randScores(99, 200000, true)
	k := 1234
	got := TopK(scores, k)
	// Verify against threshold: min of selected >= max of unselected.
	sel := make(map[int32]bool, k)
	minSel := 2.0
	for _, i := range got {
		sel[i] = true
		if scores[i] < minSel {
			minSel = scores[i]
		}
	}
	for i := range scores {
		if !sel[int32(i)] && scores[i] > minSel {
			t.Fatalf("unselected score %v exceeds selected min %v", scores[i], minSel)
		}
	}
}
