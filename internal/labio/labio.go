// Package labio serializes pooling designs and measurement results as
// CSV — the interchange format between the in-process simulator and a
// real measurement campaign (a pipetting robot consumes the design file;
// the plate reader's counts come back as a results file).
//
// Design files:
//
//	pooled-design,v1,<n>,<m>
//	query,entry,multiplicity
//	0,17,1
//	0,33,2
//	...
//
// Result files:
//
//	pooled-results,v1,<m>
//	query,count
//	0,3
//	...
//
// Both formats round-trip exactly: ReadDesign(WriteDesign(g)) reproduces
// the graph, including multi-edges.
package labio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"pooleddata/internal/graph"
)

const (
	designMagic  = "pooled-design"
	resultsMagic = "pooled-results"
	version      = "v1"
)

// WriteDesign emits the full pooling design of g in CSV form.
func WriteDesign(w io.Writer, g *graph.Bipartite) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{designMagic, version, strconv.Itoa(g.N()), strconv.Itoa(g.M())}); err != nil {
		return err
	}
	if err := cw.Write([]string{"query", "entry", "multiplicity"}); err != nil {
		return err
	}
	row := make([]string, 3)
	for j := 0; j < g.M(); j++ {
		ents, muls := g.QueryEntries(j)
		for p, e := range ents {
			row[0] = strconv.Itoa(j)
			row[1] = strconv.Itoa(int(e))
			row[2] = strconv.Itoa(int(muls[p]))
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadDesign parses a design file back into a bipartite multigraph.
func ReadDesign(r io.Reader) (*graph.Bipartite, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("labio: read header: %w", err)
	}
	if len(head) != 4 || head[0] != designMagic || head[1] != version {
		return nil, fmt.Errorf("labio: not a %s/%s file", designMagic, version)
	}
	n, err := strconv.Atoi(head[2])
	if err != nil {
		return nil, fmt.Errorf("labio: bad n: %w", err)
	}
	m, err := strconv.Atoi(head[3])
	if err != nil {
		return nil, fmt.Errorf("labio: bad m: %w", err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("labio: negative dimensions %d, %d", n, m)
	}
	if _, err := cr.Read(); err != nil { // column header
		return nil, fmt.Errorf("labio: read column header: %w", err)
	}
	ents := make([][]int32, m)
	muls := make([][]int32, m)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("labio: read row: %w", err)
		}
		if len(rec) != 3 {
			return nil, fmt.Errorf("labio: design row has %d fields", len(rec))
		}
		j, err1 := strconv.Atoi(rec[0])
		e, err2 := strconv.Atoi(rec[1])
		mu, err3 := strconv.Atoi(rec[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("labio: non-numeric design row %v", rec)
		}
		if j < 0 || j >= m {
			return nil, fmt.Errorf("labio: query %d outside [0,%d)", j, m)
		}
		if e < 0 || e >= n {
			return nil, fmt.Errorf("labio: entry %d outside [0,%d)", e, n)
		}
		if mu < 1 {
			return nil, fmt.Errorf("labio: multiplicity %d < 1", mu)
		}
		ents[j] = append(ents[j], int32(e))
		muls[j] = append(muls[j], int32(mu))
	}
	// Assemble CSR; rows must be strictly increasing per query, so sort
	// pairs (files written by WriteDesign already are).
	qptr := make([]int64, m+1)
	for j := 0; j < m; j++ {
		sortPairs(ents[j], muls[j])
		for i := 1; i < len(ents[j]); i++ {
			if ents[j][i] == ents[j][i-1] {
				return nil, fmt.Errorf("labio: duplicate entry %d in query %d (use multiplicity)", ents[j][i], j)
			}
		}
		qptr[j+1] = qptr[j] + int64(len(ents[j]))
	}
	qent := make([]int32, qptr[m])
	qmul := make([]int32, qptr[m])
	for j := 0; j < m; j++ {
		copy(qent[qptr[j]:], ents[j])
		copy(qmul[qptr[j]:], muls[j])
	}
	return graph.New(n, qptr, qent, qmul)
}

// sortPairs sorts the parallel slices by entry (insertion sort: rows per
// query arrive almost sorted from well-formed files).
func sortPairs(ents, muls []int32) {
	for i := 1; i < len(ents); i++ {
		e, mu := ents[i], muls[i]
		j := i - 1
		for j >= 0 && ents[j] > e {
			ents[j+1], muls[j+1] = ents[j], muls[j]
			j--
		}
		ents[j+1], muls[j+1] = e, mu
	}
}

// WriteCounts emits measurement results, one row per query.
func WriteCounts(w io.Writer, y []int64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{resultsMagic, version, strconv.Itoa(len(y))}); err != nil {
		return err
	}
	if err := cw.Write([]string{"query", "count"}); err != nil {
		return err
	}
	row := make([]string, 2)
	for j, v := range y {
		row[0] = strconv.Itoa(j)
		row[1] = strconv.FormatInt(v, 10)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCounts parses a results file. Rows may arrive in any order; every
// query must be covered exactly once.
func ReadCounts(r io.Reader) ([]int64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("labio: read header: %w", err)
	}
	if len(head) != 3 || head[0] != resultsMagic || head[1] != version {
		return nil, fmt.Errorf("labio: not a %s/%s file", resultsMagic, version)
	}
	m, err := strconv.Atoi(head[2])
	if err != nil || m < 0 {
		return nil, fmt.Errorf("labio: bad result count %q", head[2])
	}
	if _, err := cr.Read(); err != nil { // column header
		return nil, fmt.Errorf("labio: read column header: %w", err)
	}
	y := make([]int64, m)
	seen := make([]bool, m)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("labio: read row: %w", err)
		}
		if len(rec) != 2 {
			return nil, fmt.Errorf("labio: results row has %d fields", len(rec))
		}
		j, err1 := strconv.Atoi(rec[0])
		v, err2 := strconv.ParseInt(rec[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("labio: non-numeric results row %v", rec)
		}
		if j < 0 || j >= m {
			return nil, fmt.Errorf("labio: query %d outside [0,%d)", j, m)
		}
		if seen[j] {
			return nil, fmt.Errorf("labio: duplicate result for query %d", j)
		}
		seen[j] = true
		y[j] = v
	}
	for j, s := range seen {
		if !s {
			return nil, fmt.Errorf("labio: missing result for query %d", j)
		}
	}
	return y, nil
}
