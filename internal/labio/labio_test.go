package labio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
)

func TestDesignRoundTrip(t *testing.T) {
	g, err := pooling.RandomRegular{}.Build(200, 40, pooling.BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDesign(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDesign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() || g2.HalfEdges() != g.HalfEdges() {
		t.Fatal("shape changed through round trip")
	}
	for j := 0; j < g.M(); j++ {
		e1, m1 := g.QueryEntries(j)
		e2, m2 := g2.QueryEntries(j)
		if len(e1) != len(e2) {
			t.Fatalf("query %d changed length", j)
		}
		for p := range e1 {
			if e1[p] != e2[p] || m1[p] != m2[p] {
				t.Fatalf("query %d changed content", j)
			}
		}
	}
}

func TestDesignRoundTripPreservesDecoding(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewRandSeeded(seed)
		n := 50 + r.Intn(150)
		m := 10 + r.Intn(40)
		g, err := pooling.RandomRegular{}.Build(n, m, pooling.BuildOptions{Seed: seed})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteDesign(&buf, g); err != nil {
			return false
		}
		g2, err := ReadDesign(&buf)
		if err != nil {
			return false
		}
		sigma := bitvec.Random(n, 5, r)
		y1 := query.Execute(g, sigma, query.Options{}).Y
		y2 := query.Execute(g2, sigma, query.Options{}).Y
		for j := range y1 {
			if y1[j] != y2[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCountsRoundTrip(t *testing.T) {
	y := []int64{5, 0, 123456789012, 3, 7}
	var buf bytes.Buffer
	if err := WriteCounts(&buf, y); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCounts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(y) {
		t.Fatalf("length %d", len(got))
	}
	for j := range y {
		if got[j] != y[j] {
			t.Fatalf("count %d changed", j)
		}
	}
}

func TestCountsOutOfOrderRows(t *testing.T) {
	in := "pooled-results,v1,3\nquery,count\n2,30\n0,10\n1,20\n"
	got, err := ReadCounts(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
}

func TestReadDesignErrors(t *testing.T) {
	cases := map[string]string{
		"wrong magic":    "nope,v1,3,1\nquery,entry,multiplicity\n",
		"bad n":          "pooled-design,v1,x,1\nquery,entry,multiplicity\n",
		"negative n":     "pooled-design,v1,-3,1\nquery,entry,multiplicity\n",
		"query range":    "pooled-design,v1,3,1\nquery,entry,multiplicity\n5,0,1\n",
		"entry range":    "pooled-design,v1,3,1\nquery,entry,multiplicity\n0,9,1\n",
		"bad mult":       "pooled-design,v1,3,1\nquery,entry,multiplicity\n0,0,0\n",
		"non-numeric":    "pooled-design,v1,3,1\nquery,entry,multiplicity\n0,a,1\n",
		"dup entry":      "pooled-design,v1,3,1\nquery,entry,multiplicity\n0,1,1\n0,1,1\n",
		"missing header": "",
	}
	for name, in := range cases {
		if _, err := ReadDesign(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestReadCountsErrors(t *testing.T) {
	cases := map[string]string{
		"wrong magic": "nope,v1,2\nquery,count\n0,1\n1,2\n",
		"bad m":       "pooled-results,v1,x\nquery,count\n",
		"range":       "pooled-results,v1,2\nquery,count\n5,1\n",
		"duplicate":   "pooled-results,v1,2\nquery,count\n0,1\n0,2\n",
		"missing":     "pooled-results,v1,2\nquery,count\n0,1\n",
		"non-numeric": "pooled-results,v1,1\nquery,count\n0,x\n",
		"empty":       "",
	}
	for name, in := range cases {
		if _, err := ReadCounts(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestReadDesignAcceptsUnsortedRows(t *testing.T) {
	in := "pooled-design,v1,4,2\nquery,entry,multiplicity\n1,3,1\n0,2,2\n0,1,1\n1,0,1\n"
	g, err := ReadDesign(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	e0, m0 := g.QueryEntries(0)
	if len(e0) != 2 || e0[0] != 1 || e0[1] != 2 || m0[1] != 2 {
		t.Fatalf("query 0 = %v/%v", e0, m0)
	}
	if g.QuerySize(0) != 3 {
		t.Fatalf("size %d", g.QuerySize(0))
	}
}

func TestEmptyDesign(t *testing.T) {
	g, err := pooling.RandomRegular{}.Build(5, 0, pooling.BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDesign(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDesign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 5 || g2.M() != 0 {
		t.Fatal("empty design round trip failed")
	}
}
