package experiments

import (
	"context"
	"fmt"
	"math"

	"pooleddata/internal/adaptive"
	"pooleddata/internal/bitvec"
	"pooleddata/internal/engine"
	"pooleddata/internal/graph"
	"pooleddata/internal/mn"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
	"pooleddata/internal/stats"
	"pooleddata/internal/threshgt"
	"pooleddata/internal/thresholds"
)

// This file holds the extension experiments beyond the paper's figures:
// the sequential-vs-parallel trade-off its introduction frames, and the
// threshold group testing regime of the §VI outlook.

// TradeoffRow is one strategy in the sequential-vs-parallel comparison.
type TradeoffRow struct {
	Strategy string
	// Queries is the mean number of pooled measurements used.
	Queries float64
	// Rounds is the mean number of dependent measurement rounds.
	Rounds float64
	// Success is the exact-recovery rate.
	Success float64
}

// AdaptiveVsParallel quantifies the trade-off of §I: adaptive bisection
// uses the fewest queries but Θ(log n) rounds; the paper's design uses
// one round at the Theorem 1 budget; individual testing uses n queries in
// one round.
func AdaptiveVsParallel(n, k int, cfg Config) ([]TradeoffRow, error) {
	trials := cfg.trials()

	var adQ, adR stats.Summary
	adSucc := 0
	for t := 0; t < trials; t++ {
		sigma := bitvec.Random(n, k, rng.NewRandSeeded(rng.DeriveSeed(cfg.Seed, uint64(t))))
		res, err := adaptive.Reconstruct(n, func(indices []int) int64 {
			var c int64
			for _, i := range indices {
				if sigma.Get(i) {
					c++
				}
			}
			return c
		})
		if err != nil {
			return nil, err
		}
		adQ.Add(float64(res.Queries))
		adR.Add(float64(res.Rounds))
		if bitvec.FromIndices(n, res.Support).Equal(sigma) {
			adSucc++
		}
	}

	mPar := int(thresholds.MNFiniteSize(n, k)) + 1
	parVals, err := forEachTrial(trials, cfg.workers(), func(t int) (float64, error) {
		o, err := RunTrial(n, k, mPar, rng.DeriveSeed(cfg.Seed^0x1111, uint64(t)), cfg.design(), cfg.decoder())
		if o.Success {
			return 1, err
		}
		return 0, err
	})
	if err != nil {
		return nil, err
	}
	parSucc := 0.0
	for _, v := range parVals {
		parSucc += v
	}

	return []TradeoffRow{
		{
			Strategy: "adaptive-bisection",
			Queries:  adQ.Mean(),
			Rounds:   adR.Mean(),
			Success:  float64(adSucc) / float64(trials),
		},
		{
			Strategy: fmt.Sprintf("parallel-mn(m=%d)", mPar),
			Queries:  float64(mPar),
			Rounds:   1,
			Success:  parSucc / float64(trials),
		},
		{
			Strategy: "individual-testing",
			Queries:  float64(n),
			Rounds:   1,
			Success:  1,
		},
	}, nil
}

// gtDecoder is the common shape of the threshold decoders.
type gtDecoder interface {
	Name() string
	Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error)
}

// ThresholdGT sweeps the threshold-oracle regime (§VI outlook): exact
// recovery rate of the threshold decoders over m, with pools sized by
// threshgt.RecommendedGamma. One series per applicable decoder.
func ThresholdGT(n, k, T int, ms []int, cfg Config) ([]Series, error) {
	gamma := threshgt.RecommendedGamma(n, k, T)
	des := pooling.RandomRegular{Gamma: gamma}
	decoders := []gtDecoder{threshgt.Scored{}}
	if T <= 1 {
		decoders = append(decoders, threshgt.COMP{}, threshgt.DD{})
	}

	out := make([]Series, 0, len(decoders))
	for di, dec := range decoders {
		s := Series{Label: fmt.Sprintf("%s(T=%d,gamma=%d)", dec.Name(), T, gamma)}
		for mi, m := range ms {
			pointSeed := rng.DeriveSeed(cfg.Seed, uint64(di)<<48|uint64(mi))
			vals, err := forEachTrial(cfg.trials(), cfg.workers(), func(t int) (float64, error) {
				seed := rng.DeriveSeed(pointSeed, uint64(t))
				e := Engine()
				s, err := e.Scheme(des, n, m, rng.DeriveSeed(seed, 1))
				if err != nil {
					return 0, err
				}
				sigma := bitvec.Random(n, k, rng.NewRandSeeded(rng.DeriveSeed(seed, 2)))
				res := query.Execute(s.G, sigma, query.Options{
					Oracle: query.Threshold{T: int64(T)}, Seed: rng.DeriveSeed(seed, 3),
				})
				r, err := e.Decode(context.Background(), engine.Job{Scheme: s, Y: res.Y, K: k, Dec: dec})
				if err != nil {
					return 0, err
				}
				if r.Estimate.Equal(sigma) {
					return 1, nil
				}
				return 0, nil
			})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, ratePoint(float64(m), vals))
		}
		out = append(out, s)
	}
	return out, nil
}

// EarlyStoppingRow summarizes the staged-execution experiment.
type EarlyStoppingRow struct {
	// Budget is the full query budget m.
	Budget int
	// MeanUsed is the mean number of queries actually consumed before
	// the incremental decoder's estimate became consistent.
	MeanUsed float64
	// Success is the rate at which the stopped estimate equalled σ.
	Success float64
}

// EarlyStopping runs the partially-parallel pipeline with the incremental
// MN decoder: results arrive in rounds of L, and the run stops at the
// first round whose estimate is consistent with everything answered
// (after a warm-up of a quarter of the budget). The saving quantifies how
// much measurement the consistency check can claw back from a w.h.p.
// budget.
func EarlyStopping(n, k, L int, cfg Config) (EarlyStoppingRow, error) {
	m := int(thresholds.MNFiniteSize(n, k))*3/2 + 1
	vals, err := forEachTrial(cfg.trials(), cfg.workers(), func(t int) (float64, error) {
		seed := rng.DeriveSeed(cfg.Seed, uint64(t))
		g, err := cfg.design().Build(n, m, pooling.BuildOptions{Seed: rng.DeriveSeed(seed, 1)})
		if err != nil {
			return 0, err
		}
		sigma := bitvec.Random(n, k, rng.NewRandSeeded(rng.DeriveSeed(seed, 2)))
		res := query.Execute(g, sigma, query.Options{Seed: rng.DeriveSeed(seed, 3)})
		inc := mn.NewIncremental(g)
		used := m
		correct := false
		for start := 0; start < m; start += L {
			end := start + L
			if end > m {
				end = m
			}
			qs := make([]int, 0, L)
			rs := make([]int64, 0, L)
			for j := start; j < end; j++ {
				qs = append(qs, j)
				rs = append(rs, res.Y[j])
			}
			inc.AddBatch(qs, rs)
			if end < m/4 {
				continue
			}
			est := inc.Estimate(k)
			if inc.ConsistentSoFar(est, res.Y) {
				used = end
				correct = est.Equal(sigma)
				break
			}
		}
		if used == m {
			correct = mn.Reconstruct(g, res.Y, k, mn.Options{}).Estimate.Equal(sigma)
		}
		// Pack (used, correct) into one float: integer part queries,
		// fractional flag.
		v := float64(used)
		if correct {
			v += 0.5
		}
		return v, nil
	})
	if err != nil {
		return EarlyStoppingRow{}, err
	}
	row := EarlyStoppingRow{Budget: m}
	for _, v := range vals {
		used := math.Floor(v)
		row.MeanUsed += used
		if v-used > 0.25 {
			row.Success++
		}
	}
	row.MeanUsed /= float64(len(vals))
	row.Success /= float64(len(vals))
	return row, nil
}
