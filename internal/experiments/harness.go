// Package experiments regenerates the paper's empirical evaluation (§V):
// every figure is a function returning plot-ready series, parallelized
// over independent simulation trials.
//
// Reproducibility: trial t of a sweep draws every random object from
// streams derived from (Config.Seed, point, t), so results are identical
// across runs and worker counts. The paper uses 100 trials per point;
// Config.Trials scales that down for quick runs.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/decoder"
	"pooleddata/internal/engine"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
	"pooleddata/internal/stats"
)

// The sweeps run through a shared reconstruction cluster — the same
// sharded scheme-cache + decode-pipeline code path cmd/pooledd serves —
// so the experiments exercise the production path rather than a
// parallel one, including the spec-hash routing between shards. Trials
// draw fresh per-trial seeds, so the caches mostly provide the
// build-dedup/bounded-memory behavior here; the decode pipelines supply
// the worker pools.
var (
	engOnce sync.Once
	eng     *engine.Cluster
)

// Engine returns the package-wide reconstruction cluster, starting it
// on first use. It lives for the process. Two shards keep the sharded
// routing on the test path without oversubscribing trial workers.
func Engine() *engine.Cluster {
	engOnce.Do(func() {
		eng = engine.NewCluster(engine.ClusterConfig{
			Shards: 2,
			Shard:  engine.Config{CacheCapacity: 8},
		})
	})
	return eng
}

// Config controls a sweep.
type Config struct {
	// Trials per data point; 0 means the paper's 100.
	Trials int
	// Workers bounds the parallel trial executors; 0 means GOMAXPROCS.
	Workers int
	// Seed is the master seed; sweeps are deterministic given it.
	Seed uint64
	// Decoder used by the sweep; nil means the MN-Algorithm.
	Decoder decoder.Decoder
	// Design used by the sweep; nil means the paper's random regular
	// design.
	Design pooling.Design
}

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 100
	}
	return c.Trials
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) decoder() decoder.Decoder {
	if c.Decoder == nil {
		return decoder.MN{}
	}
	return c.Decoder
}

func (c Config) design() pooling.Design {
	if c.Design == nil {
		return pooling.RandomRegular{}
	}
	return c.Design
}

// TrialOutcome is the result of one simulated reconstruction.
type TrialOutcome struct {
	// Success is exact recovery: estimate == σ.
	Success bool
	// Overlap is the fraction of σ's one-entries present in the estimate
	// (the metric of Fig. 4).
	Overlap float64
}

// RunTrial simulates one instance end to end: fetch the design from the
// engine's scheme cache, draw σ, execute the queries, decode through the
// engine pipeline, compare.
func RunTrial(n, k, m int, seed uint64, des pooling.Design, dec decoder.Decoder) (TrialOutcome, error) {
	e := Engine()
	s, err := e.Scheme(des, n, m, rng.DeriveSeed(seed, 1))
	if err != nil {
		return TrialOutcome{}, fmt.Errorf("experiments: build design: %w", err)
	}
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(rng.DeriveSeed(seed, 2)))
	res := query.Execute(s.G, sigma, query.Options{Seed: rng.DeriveSeed(seed, 3)})
	r, err := e.Decode(context.Background(), engine.Job{Scheme: s, Y: res.Y, K: k, Dec: dec})
	if err != nil {
		return TrialOutcome{}, fmt.Errorf("experiments: decode: %w", err)
	}
	return TrialOutcome{
		Success: r.Estimate.Equal(sigma),
		Overlap: bitvec.OverlapFraction(sigma, r.Estimate),
	}, nil
}

// Point is one data point of a series.
type Point struct {
	X        float64 // sweep coordinate (m, or n)
	Mean     float64 // mean of the measured quantity over trials
	Std      float64 // sample standard deviation
	Lo, Hi   float64 // 95% interval (Wilson for rates, ±1.96·stderr else)
	N        int     // number of trials
	Theory   float64 // the matching theoretical curve value, if any
	HasTheor bool
}

// Series is a labelled curve, one per θ in the paper's figures.
type Series struct {
	Label  string
	Points []Point
}

// forEachTrial runs fn for trials 0..trials-1 on a bounded worker pool and
// returns the outcomes in trial order (deterministic aggregation).
func forEachTrial(trials, workers int, fn func(t int) (float64, error)) ([]float64, error) {
	out := make([]float64, trials)
	errs := make([]error, trials)
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		for t := 0; t < trials; t++ {
			out[t], errs[t] = fn(t)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range next {
					out[t], errs[t] = fn(t)
				}
			}()
		}
		for t := 0; t < trials; t++ {
			next <- t
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ratePoint aggregates 0/1 outcomes into a success-rate point with a
// Wilson interval.
func ratePoint(x float64, vals []float64) Point {
	succ := 0
	for _, v := range vals {
		if v >= 1 {
			succ++
		}
	}
	lo, hi := stats.Wilson(succ, len(vals), 1.96)
	mean := 0.0
	if len(vals) > 0 {
		mean = float64(succ) / float64(len(vals))
	}
	return Point{X: x, Mean: mean, Lo: lo, Hi: hi, N: len(vals)}
}

// meanPoint aggregates real-valued outcomes into a mean ± 1.96·stderr
// point.
func meanPoint(x float64, vals []float64) Point {
	var s stats.Summary
	for _, v := range vals {
		s.Add(v)
	}
	return Point{
		X: x, Mean: s.Mean(), Std: s.Std(),
		Lo: s.Mean() - 1.96*s.StdErr(), Hi: s.Mean() + 1.96*s.StdErr(),
		N: s.N(),
	}
}
