package experiments

import (
	"strings"
	"testing"
)

func TestAdaptiveVsParallelShape(t *testing.T) {
	rows, err := AdaptiveVsParallel(2000, 8, Config{Trials: 5, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 strategies, got %d", len(rows))
	}
	ad, par, ind := rows[0], rows[1], rows[2]
	if ad.Success != 1 {
		t.Fatalf("adaptive bisection must always succeed, got %.2f", ad.Success)
	}
	if !(ad.Queries < par.Queries && par.Queries < ind.Queries) {
		t.Fatalf("query ordering broken: %v / %v / %v", ad.Queries, par.Queries, ind.Queries)
	}
	if ad.Rounds <= 1 || par.Rounds != 1 || ind.Rounds != 1 {
		t.Fatalf("round structure wrong: %v / %v / %v", ad.Rounds, par.Rounds, ind.Rounds)
	}
	if par.Success < 0.6 {
		t.Fatalf("parallel MN success %.2f at its own budget", par.Success)
	}
	if !strings.Contains(par.Strategy, "parallel-mn") {
		t.Fatalf("strategy label %q", par.Strategy)
	}
}

func TestThresholdGTTransition(t *testing.T) {
	n, k := 300, 5
	series, err := ThresholdGT(n, k, 1, []int{30, 250}, Config{Trials: 8, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	// T=1 yields three decoders: scored, comp, dd.
	if len(series) != 3 {
		t.Fatalf("want 3 series at T=1, got %d", len(series))
	}
	for _, s := range series {
		lo, hi := s.Points[0].Mean, s.Points[1].Mean
		if hi < lo {
			t.Fatalf("%s: success decreased with m (%.2f -> %.2f)", s.Label, lo, hi)
		}
		if hi < 0.7 {
			t.Fatalf("%s: success %.2f at generous m", s.Label, hi)
		}
	}
}

func TestThresholdGTGeneralT(t *testing.T) {
	series, err := ThresholdGT(300, 6, 3, []int{600}, Config{Trials: 6, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("want 1 series at T=3, got %d", len(series))
	}
	if series[0].Points[0].Mean < 0.5 {
		t.Fatalf("threshold-mn success %.2f at T=3 with generous m", series[0].Points[0].Mean)
	}
	if !strings.Contains(series[0].Label, "T=3") {
		t.Fatalf("label %q", series[0].Label)
	}
}

func TestDenseRegimeBPBeatsMN(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full sweep in -short mode")
	}
	// k = n/4: the MN threshold constant diverges; BP should decode at
	// a budget where MN cannot.
	n, k := 200, 50
	m := 160
	series, err := DenseRegime(n, k, []int{m}, Config{Trials: 8, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	var mnRate, bpRate float64
	for _, s := range series {
		switch s.Label {
		case "dense-mn":
			mnRate = s.Points[0].Mean
		case "dense-bp":
			bpRate = s.Points[0].Mean
		}
	}
	if bpRate < mnRate {
		t.Fatalf("dense regime: BP (%.2f) should not trail MN (%.2f)", bpRate, mnRate)
	}
	if series[0].Points[0].Theory <= 0 {
		t.Fatal("counting bound annotation missing")
	}
}

func TestEarlyStoppingSavesQueries(t *testing.T) {
	row, err := EarlyStopping(400, 6, 20, Config{Trials: 8, Seed: 59})
	if err != nil {
		t.Fatal(err)
	}
	if row.MeanUsed >= float64(row.Budget) {
		t.Fatalf("early stopping saved nothing: used %.1f of %d", row.MeanUsed, row.Budget)
	}
	if row.Success < 0.8 {
		t.Fatalf("early-stopped estimates only %.2f correct", row.Success)
	}
	if row.MeanUsed < float64(row.Budget)/4 {
		t.Fatalf("warm-up floor violated: %.1f", row.MeanUsed)
	}
}
