package experiments

import (
	"fmt"

	"pooleddata/internal/decoder"
	"pooleddata/internal/rng"
	"pooleddata/internal/thresholds"
)

// DenseRegime probes the linear regime k = κ·n that the paper's related
// work (Alaoui et al. 2019, Scarlett–Cevher 2017) covers and the paper's
// own Theorem 1 deliberately does not: as θ → 1 the MN constant
// (1+√θ)/(1−√θ) diverges, while message passing still decodes near the
// counting bound. The sweep returns one exact-recovery series per decoder
// over m, with the exact (non-asymptotic) parallel counting bound
// attached as the Theory value.
func DenseRegime(n, k int, ms []int, cfg Config) ([]Series, error) {
	decoders := []decoder.Decoder{
		decoder.MN{},
		decoder.BP{Iterations: 60},
		decoder.Refined{},
	}
	bound := thresholds.CountingBoundPara(n, k)
	out := make([]Series, 0, len(decoders))
	for di, dec := range decoders {
		s := Series{Label: fmt.Sprintf("dense-%s", dec.Name())}
		for mi, m := range ms {
			pointSeed := rng.DeriveSeed(cfg.Seed, uint64(di)<<52|uint64(mi))
			vals, err := forEachTrial(cfg.trials(), cfg.workers(), func(t int) (float64, error) {
				o, err := RunTrial(n, k, m, rng.DeriveSeed(pointSeed, uint64(t)), cfg.design(), dec)
				if o.Success {
					return 1, err
				}
				return 0, err
			})
			if err != nil {
				return nil, err
			}
			p := ratePoint(float64(m), vals)
			p.Theory = bound
			p.HasTheor = true
			s.Points = append(s.Points, p)
		}
		out = append(out, s)
	}
	return out, nil
}
