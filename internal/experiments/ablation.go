package experiments

import (
	"context"
	"fmt"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/decoder"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
	"pooleddata/internal/thresholds"
)

// This file contains the ablation studies DESIGN.md commits to: the design
// choices of the paper (with-replacement regular design, greedy top-k
// decoding, fully parallel execution) each swapped out in isolation.

// CompareDesigns sweeps the three pooling designs over the same m grid and
// returns one overlap series per design. It isolates the effect of the
// paper's with-replacement design against Bernoulli and constant-column
// alternatives.
func CompareDesigns(n, k int, ms []int, cfg Config) ([]Series, error) {
	designs := []pooling.Design{
		pooling.RandomRegular{},
		pooling.Bernoulli{},
		pooling.ConstantColumn{},
	}
	out := make([]Series, 0, len(designs))
	for di, des := range designs {
		s := Series{Label: des.Name()}
		for mi, m := range ms {
			pointSeed := rng.DeriveSeed(cfg.Seed, uint64(di)<<40|uint64(mi))
			vals, err := forEachTrial(cfg.trials(), cfg.workers(), func(t int) (float64, error) {
				o, err := RunTrial(n, k, m, rng.DeriveSeed(pointSeed, uint64(t)), des, cfg.decoder())
				return o.Overlap, err
			})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, meanPoint(float64(m), vals))
		}
		out = append(out, s)
	}
	return out, nil
}

// CompareDecoders sweeps the decoder zoo over the same m grid on the
// paper's design and returns one success-rate series per decoder — the
// "who wins" comparison against the baselines of §I.B.
func CompareDecoders(n, k int, ms []int, cfg Config, decoders ...decoder.Decoder) ([]Series, error) {
	if len(decoders) == 0 {
		decoders = []decoder.Decoder{
			decoder.MN{},
			decoder.Greedy{},
			decoder.BP{},
			decoder.Refined{},
			decoder.LP{},
		}
	}
	out := make([]Series, 0, len(decoders))
	for di, dec := range decoders {
		s := Series{Label: dec.Name()}
		for mi, m := range ms {
			pointSeed := rng.DeriveSeed(cfg.Seed, uint64(di)<<40|uint64(mi))
			vals, err := forEachTrial(cfg.trials(), cfg.workers(), func(t int) (float64, error) {
				o, err := RunTrial(n, k, m, rng.DeriveSeed(pointSeed, uint64(t)), cfg.design(), dec)
				if o.Success {
					return 1, err
				}
				return 0, err
			})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, ratePoint(float64(m), vals))
		}
		out = append(out, s)
	}
	return out, nil
}

// PartialParallelPoint is one row of the L-unit trade-off study (§VI open
// problem): with only L processing units, the m queries take ⌈m/L⌉ rounds.
type PartialParallelPoint struct {
	Units    int
	Rounds   int
	Makespan time.Duration
	// Speedup is sequential makespan / this makespan.
	Speedup float64
	// Efficiency is Speedup / Units.
	Efficiency float64
}

// PartialParallel simulates executing the m queries of one instance on
// L ∈ units processing units under the given per-query latency and
// reports the scheduling trade-off. The reconstruction itself is
// unaffected — only the measurement makespan changes — which is exactly
// the paper's observation that the design is "completely parallel".
func PartialParallel(n, k, m int, units []int, lat query.LatencyModel, cfg Config) ([]PartialParallelPoint, error) {
	g, err := cfg.design().Build(n, m, pooling.BuildOptions{Seed: rng.DeriveSeed(cfg.Seed, 1)})
	if err != nil {
		return nil, err
	}
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(rng.DeriveSeed(cfg.Seed, 2)))
	seq := query.Execute(g, sigma, query.Options{Units: 1, Latency: lat, Seed: cfg.Seed})
	out := make([]PartialParallelPoint, 0, len(units))
	for _, L := range units {
		res := query.Execute(g, sigma, query.Options{Units: L, Latency: lat, Seed: cfg.Seed})
		sp := 0.0
		if res.Makespan > 0 {
			sp = float64(seq.Makespan) / float64(res.Makespan)
		}
		eff := 0.0
		effUnits := L
		if effUnits <= 0 || effUnits > m {
			effUnits = m
		}
		if effUnits > 0 {
			eff = sp / float64(effUnits)
		}
		out = append(out, PartialParallelPoint{
			Units: L, Rounds: res.Rounds, Makespan: res.Makespan,
			Speedup: sp, Efficiency: eff,
		})
	}
	return out, nil
}

// NoiseRobustness sweeps the Gaussian noise model's σ at a fixed
// operating point and reports the mean overlap — the extension
// experiment for the measurement-error regime. Each trial runs the
// exact service code path: a noise.Model carried by the job drives the
// batched per-signal noise streams on the measurement side and the
// robust-decoder policy on the decode side (unless cfg.Decoder pins a
// decoder explicitly).
func NoiseRobustness(n, k, m int, sigmas []float64, cfg Config) (Series, error) {
	s := Series{Label: fmt.Sprintf("noise(n=%d,k=%d,m=%d)", n, k, m)}
	for si, sg := range sigmas {
		pointSeed := rng.DeriveSeed(cfg.Seed, uint64(si))
		vals, err := forEachTrial(cfg.trials(), cfg.workers(), func(t int) (float64, error) {
			seed := rng.DeriveSeed(pointSeed, uint64(t))
			e := Engine()
			sch, err := e.Scheme(cfg.design(), n, m, rng.DeriveSeed(seed, 1))
			if err != nil {
				return 0, err
			}
			sigma := bitvec.Random(n, k, rng.NewRandSeeded(rng.DeriveSeed(seed, 2)))
			model := noise.Model{Kind: noise.Gaussian, Sigma: sg, Seed: rng.DeriveSeed(seed, 3)}
			ys := e.MeasureBatch(sch, []*bitvec.Vector{sigma}, model)
			r, err := e.Decode(context.Background(), engine.Job{Scheme: sch, Y: ys[0], K: k, Noise: model, Dec: cfg.Decoder})
			if err != nil {
				return 0, err
			}
			return bitvec.OverlapFraction(sigma, r.Estimate), nil
		})
		if err != nil {
			return Series{}, err
		}
		s.Points = append(s.Points, meanPoint(sg, vals))
	}
	return s, nil
}

// FiniteSizeCheck compares, for a range of n at fixed θ, the measured
// required m (mean over trials) against both the raw and the
// finite-size-corrected Theorem 1 thresholds (§V remark). Returned series:
// measured, asymptotic theory, corrected theory.
func FiniteSizeCheck(ns []int, theta float64, cfg Config) ([]Series, error) {
	measured := Series{Label: "measured"}
	raw := Series{Label: "m_MN"}
	corrected := Series{Label: "m_MN-corrected"}
	for ni, n := range ns {
		k := thresholds.KFromTheta(n, theta)
		pointSeed := rng.DeriveSeed(cfg.Seed, uint64(ni))
		vals, err := forEachTrial(cfg.trials(), cfg.workers(), func(t int) (float64, error) {
			m, err := RequiredM(n, k, rng.DeriveSeed(pointSeed, uint64(t)), cfg)
			return float64(m), err
		})
		if err != nil {
			return nil, err
		}
		measured.Points = append(measured.Points, meanPoint(float64(n), vals))
		raw.Points = append(raw.Points, Point{X: float64(n), Mean: thresholds.MN(n, k), N: 1})
		corrected.Points = append(corrected.Points, Point{X: float64(n), Mean: thresholds.MNFiniteSize(n, k), N: 1})
	}
	return []Series{measured, raw, corrected}, nil
}
