package experiments

import (
	"fmt"
	"io"
)

// WriteTSV emits the series as gnuplot-ready tab-separated values: a
// commented header, then one block per series separated by blank lines
// (gnuplot's "index" convention, matching the paper's plotting scripts).
func WriteTSV(w io.Writer, series []Series) error {
	for si, s := range series {
		if si > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# %s\n", s.Label); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, "# x\tmean\tstd\tlo\thi\tn\ttheory"); err != nil {
			return err
		}
		for _, p := range s.Points {
			theory := ""
			if p.HasTheor {
				theory = fmt.Sprintf("%.6g", p.Theory)
			}
			if _, err := fmt.Fprintf(w, "%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%d\t%s\n",
				p.X, p.Mean, p.Std, p.Lo, p.Hi, p.N, theory); err != nil {
				return err
			}
		}
	}
	return nil
}
