package experiments

import (
	"fmt"
	"math"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/decoder"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
	"pooleddata/internal/stats"
	"pooleddata/internal/thresholds"
)

// DefaultThetas are the sparsity exponents of Figures 2–4.
var DefaultThetas = []float64{0.1, 0.2, 0.3, 0.4}

// MGrid returns an evenly spaced query-count grid [step, 2·step, …, max],
// matching the x-axes of Figs. 3 and 4 (e.g. step 50/100 up to 1000/3000).
func MGrid(max, points int) []int {
	if points < 1 {
		points = 1
	}
	grid := make([]int, 0, points)
	for i := 1; i <= points; i++ {
		m := int(math.Round(float64(max) * float64(i) / float64(points)))
		if m < 1 {
			m = 1
		}
		if len(grid) > 0 && grid[len(grid)-1] == m {
			continue
		}
		grid = append(grid, m)
	}
	return grid
}

// Fig3 reproduces the success-rate phase transition: for each θ, the
// fraction of exact reconstructions over Config.Trials independent runs,
// swept over the query counts ms. The Theory field of each point carries
// the Theorem 1 transition m_MN(n,θ) (the dashed verticals of the figure).
func Fig3(n int, thetas []float64, ms []int, cfg Config) ([]Series, error) {
	return sweepM(n, thetas, ms, cfg, func(o TrialOutcome) float64 {
		if o.Success {
			return 1
		}
		return 0
	}, ratePoint)
}

// Fig4 reproduces the overlap curves: the mean fraction of correctly
// classified one-entries over the same grid as Fig3.
func Fig4(n int, thetas []float64, ms []int, cfg Config) ([]Series, error) {
	return sweepM(n, thetas, ms, cfg, func(o TrialOutcome) float64 {
		return o.Overlap
	}, meanPoint)
}

// sweepM is the shared m-sweep of Figs. 3 and 4.
func sweepM(n int, thetas []float64, ms []int, cfg Config,
	metric func(TrialOutcome) float64,
	aggregate func(float64, []float64) Point) ([]Series, error) {

	des, dec := cfg.design(), cfg.decoder()
	series := make([]Series, 0, len(thetas))
	for ti, theta := range thetas {
		k := thresholds.KFromTheta(n, theta)
		mTheory := thresholds.MN(n, k)
		s := Series{Label: fmt.Sprintf("theta=%.1f", theta)}
		for mi, m := range ms {
			pointSeed := rng.DeriveSeed(cfg.Seed, uint64(ti)<<32|uint64(mi))
			vals, err := forEachTrial(cfg.trials(), cfg.workers(), func(t int) (float64, error) {
				o, err := RunTrial(n, k, m, rng.DeriveSeed(pointSeed, uint64(t)), des, dec)
				return metric(o), err
			})
			if err != nil {
				return nil, err
			}
			p := aggregate(float64(m), vals)
			p.Theory = mTheory
			p.HasTheor = true
			s.Points = append(s.Points, p)
		}
		series = append(series, s)
	}
	return series, nil
}

// Fig2 reproduces the required-query scaling: for each n in ns and each θ,
// the mean over trials of the per-instance minimal m for which the decoder
// exactly reconstructs σ. Each point's Theory value is the finite-size
// corrected Theorem 1 threshold (the dotted curves).
func Fig2(ns []int, thetas []float64, cfg Config) ([]Series, error) {
	series := make([]Series, 0, len(thetas))
	for ti, theta := range thetas {
		s := Series{Label: fmt.Sprintf("theta=%.1f", theta)}
		for ni, n := range ns {
			k := thresholds.KFromTheta(n, theta)
			theory := thresholds.MN(n, k)
			pointSeed := rng.DeriveSeed(cfg.Seed, uint64(ti)<<32|uint64(ni))
			vals, err := forEachTrial(cfg.trials(), cfg.workers(), func(t int) (float64, error) {
				m, err := RequiredM(n, k, rng.DeriveSeed(pointSeed, uint64(t)), cfg)
				return float64(m), err
			})
			if err != nil {
				return nil, err
			}
			p := meanPoint(float64(n), vals)
			p.Theory = theory
			p.HasTheor = true
			s.Points = append(s.Points, p)
		}
		series = append(series, s)
	}
	return series, nil
}

// RequiredM finds, for a single trial seed, the minimal query count m at
// which reconstruction succeeds: exponential bracketing from a fraction of
// the theoretical threshold followed by bisection. Success at a candidate
// m is decided on a fresh design/signal drawn deterministically from
// (seed, m); the transition is statistically sharp, which is what the
// figure measures.
func RequiredM(n, k int, seed uint64, cfg Config) (int, error) {
	des, dec := cfg.design(), cfg.decoder()
	var trialErr error
	succeeds := func(m int) bool {
		o, err := RunTrial(n, k, m, rng.DeriveSeed(seed, uint64(m)), des, dec)
		if err != nil {
			trialErr = err
			return true // abort quickly; error reported below
		}
		return o.Success
	}
	theory := thresholds.MN(n, k)
	start := int(theory / 4)
	if start < 1 {
		start = 1
	}
	cap := 64 * n
	bracket, ok := stats.ExponentialBracket(start, cap, succeeds)
	if trialErr != nil {
		return 0, trialErr
	}
	if !ok {
		return cap, fmt.Errorf("experiments: no success up to m=%d for n=%d k=%d", cap, n, k)
	}
	lo := bracket/2 + 1
	if bracket == start {
		lo = 1
	}
	m := stats.MinimalTrue(lo, bracket, succeeds)
	if trialErr != nil {
		return 0, trialErr
	}
	return m, nil
}

// HeadlineResult carries the §VI claim check: "on average we correctly
// identify 99% of the one-entries when conducting only 220 queries for
// n = 1000 and θ = 0.3".
type HeadlineResult struct {
	N, K, M     int
	MeanOverlap float64
	Trials      int
}

// Headline measures the paper's headline operating point.
func Headline(cfg Config) (HeadlineResult, error) {
	const n, m = 1000, 220
	k := thresholds.KFromTheta(n, 0.3) // k = 8
	vals, err := forEachTrial(cfg.trials(), cfg.workers(), func(t int) (float64, error) {
		o, err := RunTrial(n, k, m, rng.DeriveSeed(cfg.Seed, uint64(t)), cfg.design(), cfg.decoder())
		return o.Overlap, err
	})
	if err != nil {
		return HeadlineResult{}, err
	}
	var s stats.Summary
	for _, v := range vals {
		s.Add(v)
	}
	return HeadlineResult{N: n, K: k, M: m, MeanOverlap: s.Mean(), Trials: s.N()}, nil
}

// InfoTheoretic measures Theorem 2 directly: the fraction of instances on
// which the weight-k signal consistent with (G, y) is *unique*, swept over
// m. Uses the exhaustive decoder's impostor counter, so n must stay small.
// Each point's Theory value is m_para = 2k·ln(n/k)/ln k.
func InfoTheoretic(n, k int, ms []int, cfg Config) (Series, error) {
	des := cfg.design()
	theory := thresholds.BPDPara(n, k)
	s := Series{Label: fmt.Sprintf("unique(n=%d,k=%d)", n, k)}
	ex := decoder.Exhaustive{}
	for mi, m := range ms {
		pointSeed := rng.DeriveSeed(cfg.Seed, uint64(mi))
		vals, err := forEachTrial(cfg.trials(), cfg.workers(), func(t int) (float64, error) {
			seed := rng.DeriveSeed(pointSeed, uint64(t))
			s, err := Engine().Scheme(des, n, m, rng.DeriveSeed(seed, 1))
			if err != nil {
				return 0, err
			}
			g := s.G
			sigma := bitvec.Random(n, k, rng.NewRandSeeded(rng.DeriveSeed(seed, 2)))
			res := query.Execute(g, sigma, query.Options{Seed: rng.DeriveSeed(seed, 3)})
			_, count, err := ex.CountConsistent(g, res.Y, k, 2)
			if err != nil {
				return 0, err
			}
			if count == 1 {
				return 1, nil
			}
			return 0, nil
		})
		if err != nil {
			return Series{}, err
		}
		p := ratePoint(float64(m), vals)
		p.Theory = theory
		p.HasTheor = true
		s.Points = append(s.Points, p)
	}
	return s, nil
}
