package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"pooleddata/internal/decoder"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/thresholds"
)

// quickCfg keeps the statistical tests fast but meaningful.
var quickCfg = Config{Trials: 12, Seed: 2022}

func TestRunTrialDeterministic(t *testing.T) {
	a, err := RunTrial(200, 6, 150, 7, pooling.RandomRegular{}, decoder.MN{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrial(200, 6, 150, 7, pooling.RandomRegular{}, decoder.MN{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed gave different outcomes: %+v vs %+v", a, b)
	}
}

func TestRunTrialSucceedsAboveThreshold(t *testing.T) {
	n, k := 400, 7
	m := int(2 * thresholds.MN(n, k))
	o, err := RunTrial(n, k, m, 3, pooling.RandomRegular{}, decoder.MN{})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Success || o.Overlap != 1 {
		t.Fatalf("trial failed above threshold: %+v", o)
	}
}

func TestMGrid(t *testing.T) {
	g := MGrid(1000, 10)
	if len(g) != 10 || g[0] != 100 || g[9] != 1000 {
		t.Fatalf("MGrid = %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("MGrid not increasing: %v", g)
		}
	}
	// Dedup of tiny grids.
	g = MGrid(3, 10)
	for i := 1; i < len(g); i++ {
		if g[i] == g[i-1] {
			t.Fatalf("MGrid has duplicates: %v", g)
		}
	}
}

func TestFig3ShapeAndTransition(t *testing.T) {
	// n=500, θ=0.3: success ≈ 0 far below threshold, ≈ 1 far above.
	n := 500
	k := thresholds.KFromTheta(n, 0.3)
	mThr := thresholds.MN(n, k)
	ms := []int{int(mThr / 4), int(2.4 * mThr)}
	series, err := Fig3(n, []float64{0.3}, ms, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Points) != 2 {
		t.Fatalf("series shape wrong: %+v", series)
	}
	lowP, highP := series[0].Points[0], series[0].Points[1]
	if lowP.Mean > 0.4 {
		t.Fatalf("success %.2f far below threshold should be near 0", lowP.Mean)
	}
	if highP.Mean < 0.8 {
		t.Fatalf("success %.2f far above threshold should be near 1", highP.Mean)
	}
	if !highP.HasTheor || math.Abs(highP.Theory-mThr) > 1e-9 {
		t.Fatal("theory annotation missing or wrong")
	}
	if lowP.Lo < 0 || highP.Hi > 1 {
		t.Fatal("Wilson interval out of [0,1]")
	}
}

func TestFig4OverlapMonotoneAcrossRegimes(t *testing.T) {
	n := 500
	k := thresholds.KFromTheta(n, 0.3)
	mThr := thresholds.MN(n, k)
	ms := []int{int(mThr / 6), int(mThr / 2), int(2 * mThr)}
	series, err := Fig4(n, []float64{0.3}, ms, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := series[0].Points
	if !(pts[0].Mean < pts[2].Mean) {
		t.Fatalf("overlap should grow with m: %v", pts)
	}
	if pts[2].Mean < 0.99 {
		t.Fatalf("overlap %.3f at 2× threshold should be ≈ 1", pts[2].Mean)
	}
	// Overlap is a fraction.
	for _, p := range pts {
		if p.Mean < 0 || p.Mean > 1 {
			t.Fatalf("overlap %v out of range", p.Mean)
		}
	}
}

func TestFig2RequiredMTracksTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full sweep in -short mode")
	}
	cfg := Config{Trials: 6, Seed: 5}
	ns := []int{300, 1000}
	series, err := Fig2(ns, []float64{0.3}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := series[0].Points
	if len(pts) != 2 {
		t.Fatalf("points: %+v", pts)
	}
	// Required m grows with n and stays within a small factor of theory
	// (the paper notes theory is optimistic for small n).
	if pts[1].Mean <= pts[0].Mean {
		t.Fatalf("required m should grow with n: %v then %v", pts[0].Mean, pts[1].Mean)
	}
	for _, p := range pts {
		ratio := p.Mean / p.Theory
		if ratio < 0.5 || ratio > 3.5 {
			t.Fatalf("required m %.0f vs theory %.0f: ratio %.2f out of band", p.Mean, p.Theory, ratio)
		}
	}
}

func TestRequiredMDeterministic(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 11}
	a, err := RequiredM(300, 5, 42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RequiredM(300, 5, 42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("RequiredM not deterministic: %d vs %d", a, b)
	}
	if a < 10 || a > 10000 {
		t.Fatalf("RequiredM = %d implausible", a)
	}
}

func TestHeadlineClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full sweep in -short mode")
	}
	// §VI: ≈99% of one-entries found at n=1000, θ=0.3, m=220.
	res, err := Headline(Config{Trials: 30, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1000 || res.K != 8 || res.M != 220 {
		t.Fatalf("operating point wrong: %+v", res)
	}
	if res.MeanOverlap < 0.95 {
		t.Fatalf("mean overlap %.3f at the headline point, paper reports ≈0.99", res.MeanOverlap)
	}
}

func TestInfoTheoreticUniquenessTransition(t *testing.T) {
	n, k := 40, 4
	ms := []int{4, 60}
	s, err := InfoTheoretic(n, k, ms, Config{Trials: 10, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if s.Points[0].Mean >= s.Points[1].Mean {
		t.Fatalf("uniqueness rate should increase with m: %+v", s.Points)
	}
	if s.Points[1].Mean < 0.9 {
		t.Fatalf("uniqueness %.2f at high m", s.Points[1].Mean)
	}
	if s.Points[0].Theory <= 0 {
		t.Fatal("theory threshold missing")
	}
}

func TestCompareDesignsAllDecode(t *testing.T) {
	n, k := 300, 6
	m := int(1.6 * thresholds.MN(n, k))
	series, err := CompareDesigns(n, k, []int{m}, Config{Trials: 6, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("want 3 design series, got %d", len(series))
	}
	for _, s := range series {
		if s.Points[0].Mean < 0.8 {
			t.Fatalf("design %s overlap %.2f too low at 1.6× threshold", s.Label, s.Points[0].Mean)
		}
	}
}

func TestCompareDecodersShape(t *testing.T) {
	n, k := 200, 5
	m := int(1.8 * thresholds.MN(n, k))
	series, err := CompareDecoders(n, k, []int{m}, Config{Trials: 5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("want 5 decoder series, got %d", len(series))
	}
	for _, s := range series {
		if s.Label == "mn" || s.Label == "mn-refined" {
			if s.Points[0].Mean < 0.8 {
				t.Fatalf("%s success %.2f too low well above threshold", s.Label, s.Points[0].Mean)
			}
		}
	}
}

func TestPartialParallelTradeoff(t *testing.T) {
	pts, err := PartialParallel(300, 6, 64, []int{1, 4, 16, 0}, query.ConstantLatency{D: time.Second}, Config{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points: %+v", pts)
	}
	if pts[0].Rounds != 64 || pts[0].Speedup != 1 {
		t.Fatalf("L=1 should be sequential: %+v", pts[0])
	}
	if pts[1].Rounds != 16 || math.Abs(pts[1].Speedup-4) > 1e-9 {
		t.Fatalf("L=4 wrong: %+v", pts[1])
	}
	if pts[3].Rounds != 1 {
		t.Fatalf("fully parallel should be one round: %+v", pts[3])
	}
	// Efficiency is perfect for constant latencies with L | m.
	if math.Abs(pts[1].Efficiency-1) > 1e-9 {
		t.Fatalf("L=4 efficiency %v", pts[1].Efficiency)
	}
}

func TestNoiseRobustnessDegradesGracefully(t *testing.T) {
	n, k := 300, 6
	m := int(1.5 * thresholds.MN(n, k))
	s, err := NoiseRobustness(n, k, m, []float64{0, 2}, Config{Trials: 8, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if s.Points[0].Mean < 0.95 {
		t.Fatalf("noiseless overlap %.2f", s.Points[0].Mean)
	}
	if s.Points[1].Mean > s.Points[0].Mean {
		t.Fatal("overlap should not improve with noise")
	}
	if s.Points[1].Mean < 0.5 {
		t.Fatalf("moderate noise should not destroy the decoder: %.2f", s.Points[1].Mean)
	}
}

func TestFiniteSizeCheckSeries(t *testing.T) {
	series, err := FiniteSizeCheck([]int{200, 600}, 0.3, Config{Trials: 4, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("want 3 series, got %d", len(series))
	}
	// Corrected theory must dominate the raw asymptotic curve.
	for i := range series[1].Points {
		if series[2].Points[i].Mean <= series[1].Points[i].Mean {
			t.Fatal("corrected threshold should exceed the asymptotic one")
		}
	}
}

func TestWriteTSV(t *testing.T) {
	series := []Series{
		{Label: "a", Points: []Point{{X: 1, Mean: 0.5, N: 10, Theory: 42, HasTheor: true}}},
		{Label: "b", Points: []Point{{X: 2, Mean: 0.75, N: 10}}},
	}
	var sb strings.Builder
	if err := WriteTSV(&sb, series); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# a", "# b", "42", "0.75"} {
		if !strings.Contains(out, want) {
			t.Fatalf("TSV output missing %q:\n%s", want, out)
		}
	}
	// gnuplot index separation: blank line between blocks.
	if !strings.Contains(out, "\n\n") {
		t.Fatal("TSV blocks not separated by a blank line")
	}
}

func TestForEachTrialOrderIndependence(t *testing.T) {
	fn := func(tr int) (float64, error) { return float64(tr * tr), nil }
	a, err := forEachTrial(50, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := forEachTrial(50, 8, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallel trial order differs from sequential")
		}
	}
}
