package engine

import (
	"context"
	"errors"
	"sync"
	"testing"

	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
)

func TestClusterAddRemoveShard(t *testing.T) {
	c := NewCluster(ClusterConfig{Shards: 2, Shard: Config{Workers: 1}})
	defer c.Close()
	if got := c.MemberIDs(); len(got) != 2 || got[0] != "local-0" || got[1] != "local-1" {
		t.Fatalf("initial members = %v", got)
	}

	extra := New(Config{Workers: 1})
	defer extra.Close()
	if err := c.AddShard("local-2", extra); err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 3 || !c.HasMember("local-2") {
		t.Fatalf("after add: %d shards, members %v", c.Shards(), c.MemberIDs())
	}
	if err := c.AddShard("local-2", extra); !errors.Is(err, ErrDuplicateShard) {
		t.Fatalf("duplicate add: err = %v, want ErrDuplicateShard", err)
	}

	removed, err := c.RemoveShard("local-2")
	if err != nil {
		t.Fatal(err)
	}
	if removed != Shard(extra) {
		t.Fatal("RemoveShard returned a different shard")
	}
	if c.HasMember("local-2") {
		t.Fatal("removed member still listed")
	}
	if _, err := c.RemoveShard("local-2"); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("double remove: err = %v, want ErrUnknownShard", err)
	}
	if _, err := c.RemoveShard("local-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RemoveShard("local-1"); !errors.Is(err, ErrLastShard) {
		t.Fatalf("removing last shard: err = %v, want ErrLastShard", err)
	}
	adds, removes := c.MembershipChanges()
	if adds != 1 || removes != 2 {
		t.Fatalf("membership changes = %d adds / %d removes, want 1/2", adds, removes)
	}
}

// TestClusterReroutesAfterRemove: a scheme owned by a removed shard
// re-resolves to a surviving member at submit time — stale pointers held
// by queued jobs keep working across membership changes.
func TestClusterReroutesAfterRemove(t *testing.T) {
	c := NewCluster(ClusterConfig{Shards: 3, Shard: Config{Workers: 1}})
	defer c.Close()
	const n, k, m = 200, 4, 150

	s, err := c.Scheme(nil, n, m, 7)
	if err != nil {
		t.Fatal(err)
	}
	ownerID := c.OwnerID(s.RouteKey())
	sigma := bitvecRandom(t, n, k, 31)
	y := query.Execute(s.G, sigma, query.Options{}).Y
	want, err := c.Decode(context.Background(), Job{Scheme: s, Y: y, K: k})
	if err != nil {
		t.Fatal(err)
	}

	removed, err := c.RemoveShard(ownerID)
	if err != nil {
		t.Fatal(err)
	}
	defer removed.Close()
	if newOwner := c.OwnerID(s.RouteKey()); newOwner == ownerID {
		t.Fatal("key still owned by removed member")
	}

	// The same stale *Scheme decodes bit-identically on the new owner.
	got, err := c.Decode(context.Background(), Job{Scheme: s, Y: y, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Estimate.Equal(want.Estimate) {
		t.Fatal("decode after membership change is not bit-identical")
	}
}

// TestClusterAddShardMovesOnlyItsArcs: after a join, the only specs
// whose owner changed are those now owned by the new member.
func TestClusterAddShardMovesOnlyItsArcs(t *testing.T) {
	c := NewCluster(ClusterConfig{Shards: 3, Shard: Config{Workers: 1}})
	defer c.Close()
	specs := make([]Spec, 200)
	before := make([]string, len(specs))
	for i := range specs {
		specs[i] = SpecFor(pooling.RandomRegular{}, 100+i, 50+i, uint64(i))
		before[i] = c.OwnerID(specs[i].Key())
	}
	joined := New(Config{Workers: 1})
	defer joined.Close()
	if err := c.AddShard("local-9", joined); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range specs {
		after := c.OwnerID(specs[i].Key())
		if after == before[i] {
			continue
		}
		moved++
		if after != "local-9" {
			t.Fatalf("spec %d moved %s -> %s, not to the joined member", i, before[i], after)
		}
	}
	if moved == 0 {
		t.Fatal("join moved no keys at all")
	}
}

// unhealthyShard wraps a local engine and reports unhealthy — the state
// of a dead-but-not-yet-evicted remote.
type unhealthyShard struct {
	*Engine
	mu      sync.Mutex
	healthy bool
}

func (u *unhealthyShard) Healthy() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.healthy
}

func (u *unhealthyShard) setHealthy(ok bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.healthy = ok
}

// TestClusterSkipsUnhealthyOwner: keys whose ring owner is unhealthy
// route to the next healthy member instead of black-holing, and return
// home when it recovers.
func TestClusterSkipsUnhealthyOwner(t *testing.T) {
	flaky := &unhealthyShard{Engine: New(Config{Workers: 1}), healthy: true}
	stable := New(Config{Workers: 1})
	c := NewClusterOf(flaky, stable)
	defer c.Close()

	// Find a spec the flaky member owns.
	var spec Spec
	found := false
	for seed := uint64(1); seed < 128; seed++ {
		spec = SpecFor(pooling.RandomRegular{}, 100, 50, seed)
		if c.ShardOf(spec) == 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no spec routed to shard 0")
	}

	flaky.setHealthy(false)
	if got := c.ShardOf(spec); got != 1 {
		t.Fatalf("unhealthy owner: ShardOf = %d, want failover to 1", got)
	}
	flaky.setHealthy(true)
	if got := c.ShardOf(spec); got != 0 {
		t.Fatalf("recovered owner: ShardOf = %d, want 0", got)
	}
}
