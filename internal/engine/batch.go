package engine

import (
	"context"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/query"
)

// MeasureBatch evaluates every signal against the scheme's design in a
// single pass over the pooling matrix, amortizing the Γm edge traversal
// across the batch (the one-design/many-signals regime of a screening
// campaign). Row b of the result is the exact count vector of signal b.
func (e *Engine) MeasureBatch(s *Scheme, signals []*bitvec.Vector) [][]int64 {
	ys := query.ExecuteBatch(s.G, signals, e.Workers())
	e.stats.signalsMeasured.Add(uint64(len(signals)))
	return ys
}

// DecodeBatch pipelines one decode job per count vector through the
// worker pool and waits for all of them. Results are in input order; the
// first decode error (or ctx error) is returned after every submitted job
// has settled, alongside the partial results (failed slots are zero).
func (e *Engine) DecodeBatch(ctx context.Context, s *Scheme, ys [][]int64, k int, job Job) ([]Result, error) {
	futs := make([]*Future, len(ys))
	results := make([]Result, len(ys))
	var firstErr error
	for b, y := range ys {
		j := job
		j.Scheme, j.Y, j.K = s, y, k
		fut, err := e.Submit(ctx, j)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		futs[b] = fut
	}
	for b, fut := range futs {
		if fut == nil {
			continue
		}
		res, err := fut.Wait(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		results[b] = res
	}
	return results, firstErr
}
