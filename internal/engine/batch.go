package engine

import (
	"context"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/noise"
	"pooleddata/internal/query"
)

// MeasureBatch evaluates every signal against the scheme's design in a
// single pass over the pooling matrix, amortizing the Γm edge traversal
// across the batch (the one-design/many-signals regime of a screening
// campaign). nm declares the measurement oracle: the zero model returns
// exact counts; a Gaussian or threshold model perturbs each signal's
// counts with an independent, reproducible per-signal stream rooted at
// the model's seed, so row b equals Execute(g, sigma_b, Options{Oracle:
// nm.Oracle(), Seed: nm.SignalSeed(b)}).Y.
func (e *Engine) MeasureBatch(s *Scheme, signals []*bitvec.Vector, nm noise.Model) [][]int64 {
	nm = nm.Canon()
	var ys [][]int64
	if nm.IsExact() {
		ys = query.ExecuteBatch(s.G, signals, e.Workers())
	} else {
		ys = query.ExecuteBatchNoisy(s.G, signals, e.Workers(), nm, nm.SignalSeeds(len(signals)))
	}
	e.stats.signalsMeasured.Add(uint64(len(signals)))
	return ys
}

// DecodeBatch pipelines one decode job per count vector through the
// worker pool and waits for all of them. The job template's Noise and
// Dec fields apply to every job, so a noisy batch selects its robust
// decoder once per vector server-side. Results are in input order; the
// first decode error (or ctx error) is returned after every submitted
// job has settled, alongside the partial results (failed slots are
// zero).
func (e *Engine) DecodeBatch(ctx context.Context, s *Scheme, ys [][]int64, k int, job Job) ([]Result, error) {
	return decodeBatchOn(e, ctx, s, ys, k, job)
}
