package engine

import (
	"fmt"
	"strconv"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real spec keys so the balance measured here is the
		// balance production routing sees.
		keys[i] = fmt.Sprintf("random-regular{Gamma:0}|%d|%d|%d", 1000+i, 500+i, i)
	}
	return keys
}

func ringMembers(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = "10.0.0." + strconv.Itoa(i+1) + ":19300"
	}
	return ids
}

// TestRingBalance pins the load-spread property: over 10k spec keys and
// 128 vnodes per member, no member owns more than 2x the lightest
// member's share.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(10000)
	for _, members := range []int{2, 4, 8} {
		ids := ringMembers(members)
		r := NewRing(ids, DefaultVnodes)
		load := make([]int, members)
		for _, k := range keys {
			load[r.Lookup(k)]++
		}
		min, max := load[0], load[0]
		for _, l := range load[1:] {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		if min == 0 {
			t.Fatalf("%d members: a member owns zero of 10k keys: %v", members, load)
		}
		if ratio := float64(max) / float64(min); ratio > 2.0 {
			t.Fatalf("%d members: max/min load ratio %.2f > 2.0 (loads %v)", members, ratio, load)
		}
	}
}

// TestRingMinimalMovement pins the consistent-hashing guarantee: a
// single join or leave only moves keys to/from the changed member, and
// only about K/N of them.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(10000)
	ids := ringMembers(5)
	before := NewRing(ids, DefaultVnodes)

	// Join: every key that changes owner must move TO the new member.
	joined := NewRing(append(append([]string(nil), ids...), "10.0.0.99:19300"), DefaultVnodes)
	moved := 0
	for _, k := range keys {
		oldID, newID := before.LookupID(k), joined.LookupID(k)
		if oldID == newID {
			continue
		}
		moved++
		if newID != "10.0.0.99:19300" {
			t.Fatalf("join: key %q moved %s -> %s, not to the new member", k, oldID, newID)
		}
	}
	// Expected share is 1/6 ≈ 1667 keys; allow 2x slack for vnode
	// placement variance, and require the new member got real load.
	if moved == 0 || moved > 2*len(keys)/6 {
		t.Fatalf("join moved %d of %d keys, want ~%d (at most %d)", moved, len(keys), len(keys)/6, 2*len(keys)/6)
	}

	// Leave: every key that changes owner must move FROM the removed
	// member, and exactly the removed member's keys move.
	removed := ids[2]
	left := NewRing(append(append([]string(nil), ids[:2]...), ids[3:]...), DefaultVnodes)
	movedOut := 0
	for _, k := range keys {
		oldID, newID := before.LookupID(k), left.LookupID(k)
		if oldID == removed {
			movedOut++
			if newID == removed {
				t.Fatalf("leave: key %q still owned by removed member", k)
			}
			continue
		}
		if oldID != newID {
			t.Fatalf("leave: key %q moved %s -> %s though neither is the removed member", k, oldID, newID)
		}
	}
	if movedOut == 0 || movedOut > 2*len(keys)/5 {
		t.Fatalf("leave moved %d of %d keys, want ~%d (at most %d)", movedOut, len(keys), len(keys)/5, 2*len(keys)/5)
	}
}

// TestRingDeterminism: the ring layout is a pure function of the
// membership set — join order must not matter.
func TestRingDeterminism(t *testing.T) {
	ids := ringMembers(4)
	r1 := NewRing(ids, DefaultVnodes)
	rev := []string{ids[3], ids[1], ids[0], ids[2]}
	r2 := NewRing(rev, DefaultVnodes)
	for _, k := range ringKeys(1000) {
		if r1.LookupID(k) != r2.LookupID(k) {
			t.Fatalf("key %q owner depends on membership order: %s vs %s", k, r1.LookupID(k), r2.LookupID(k))
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, DefaultVnodes)
	if got := empty.Lookup("anything"); got != -1 {
		t.Fatalf("empty ring Lookup = %d, want -1", got)
	}
	if got := empty.LookupID("anything"); got != "" {
		t.Fatalf("empty ring LookupID = %q, want empty", got)
	}
	single := NewRing([]string{"only"}, DefaultVnodes)
	for _, k := range ringKeys(100) {
		if single.LookupID(k) != "only" {
			t.Fatal("single-member ring routed a key elsewhere")
		}
	}
}
