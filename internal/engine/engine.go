// Package engine is the reconstruction engine behind the pooledd service
// and the experiment sweeps: it amortizes design construction across
// requests and pipelines many decode jobs through a bounded worker pool.
//
// The paper's premise (Gebhard et al., IPDPS 2022) is that the pooled
// measurement round is the expensive step while reconstruction is cheap.
// That only holds operationally if the reconstruction side never rebuilds
// the Γ = n/2 random-regular design per request: a screening lab or
// feature-selection pipeline runs the one-design/many-signals regime, so
// the engine owns
//
//   - a scheme cache keyed by (design, n, m, seed) with LRU eviction and
//     build deduplication: concurrent requests for the same design trigger
//     exactly one pooling build and share the immutable graph (plus its
//     lazily-built query-side multiplicity matrix);
//   - a decode pipeline: Submit(job) → Future over a bounded worker pool,
//     with per-job decoder selection, context cancellation, and per-job
//     stats (queue wait, decode time, residual, consistency) aggregated
//     into engine-level counters;
//   - a batched measurement path (MeasureBatch) that evaluates many
//     signals against one design in a single pass over the pooling matrix.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pooleddata/internal/graph"
	"pooleddata/internal/pooling"
	"pooleddata/metrics/trace"
)

// Config sizes an Engine.
type Config struct {
	// CacheCapacity is the maximum number of cached schemes; 0 means 8.
	CacheCapacity int
	// Workers is the number of decode workers; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the decode job queue; 0 means 4·Workers.
	QueueDepth int
	// BuildParallelism bounds goroutines per design build; 0 means
	// GOMAXPROCS.
	BuildParallelism int
	// Traces, when set, makes the engine the trace owner for jobs that
	// arrive without a builder (Job.Trace == nil): it opens a span tree
	// per job, records the shard-queue and decode spans, and offers the
	// finished trace to the store's tail sampler. Jobs that already
	// carry a builder (the pooledd ingress and campaign paths) only get
	// spans appended — their creator finishes them. Nil records nothing.
	Traces *trace.Store
}

func (c Config) cacheCapacity() int {
	if c.CacheCapacity <= 0 {
		return 8
	}
	return c.CacheCapacity
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 4 * c.workers()
	}
	return c.QueueDepth
}

// Stats is a snapshot of the engine-level counters. The json tags are
// the wire names cmd/pooledd serves on /v1/stats.
type Stats struct {
	// Scheme cache.
	SchemesBuilt  uint64 `json:"schemes_built"`  // builds executed (cache misses that ran pooling.Build)
	CacheHits     uint64 `json:"cache_hits"`     // requests served from a completed cache entry
	BuildsDeduped uint64 `json:"builds_deduped"` // requests that joined an in-flight build
	Evictions     uint64 `json:"evictions"`      // schemes evicted by the LRU policy
	BuildFailures uint64 `json:"build_failures"` // builds that returned an error

	// Decode pipeline.
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"` // decoded successfully
	JobsFailed    uint64 `json:"jobs_failed"`    // decoder returned an error
	JobsCanceled  uint64 `json:"jobs_canceled"`  // context canceled before a worker picked the job up
	JobsRejected  uint64 `json:"jobs_rejected"`  // refused by admission control (saturated queue)
	Consistent    uint64 `json:"consistent"`     // completed jobs whose estimate reproduced y exactly

	// Batched measurement.
	SignalsMeasured uint64 `json:"signals_measured"` // signals evaluated through MeasureBatch

	// Cumulative time spent by completed jobs (nanoseconds on the wire).
	TotalQueueWait  time.Duration `json:"total_queue_wait_ns"`
	TotalDecodeTime time.Duration `json:"total_decode_time_ns"`

	// DecodeLatency are per-decoder latency histograms over every job that
	// reached its decoder (completed or failed), keyed by decoder name.
	DecodeLatency map[string]LatencyHistogram `json:"decode_latency,omitempty"`

	// QueueLatency and SettleLatency are the remaining pipeline stage
	// timers, keyed by decoder name like DecodeLatency: time between
	// enqueue and a worker picking the job up, and time spent completing
	// the future plus running the OnDone callback. Together with
	// DecodeLatency they account for a job's whole life inside the
	// engine.
	QueueLatency  map[string]LatencyHistogram `json:"queue_latency,omitempty"`
	SettleLatency map[string]LatencyHistogram `json:"settle_latency,omitempty"`

	// NoiseQueueLatency is the queue-wait breakdown keyed by canonical
	// noise-model key, the per-model counterpart of QueueLatency.
	NoiseQueueLatency map[string]LatencyHistogram `json:"noise_queue_latency,omitempty"`

	// JobsByNoise counts jobs that reached their decoder, keyed by the
	// canonical noise-model key ("exact", "gaussian(sigma=0.5)",
	// "threshold(T=2)") — the per-model breakdown /v1/stats serves.
	JobsByNoise map[string]uint64 `json:"jobs_by_noise,omitempty"`
	// NoiseLatency are decode-latency histograms keyed the same way.
	NoiseLatency map[string]LatencyHistogram `json:"noise_latency,omitempty"`

	// SchemeLoad is the per-scheme hot-key table, hottest first: decode
	// load keyed by routing key, bounded to the top keys. It crosses the
	// federation hop inside /shard/v1/stats, so a frontend's aggregate
	// covers work its remote workers executed.
	SchemeLoad []SchemeLoad `json:"scheme_load,omitempty"`
}

// add accumulates src into s (cluster aggregation). Histograms merge
// bucket-wise; every histogram shares the same bucket edges.
func (s *Stats) add(src Stats) {
	s.SchemesBuilt += src.SchemesBuilt
	s.CacheHits += src.CacheHits
	s.BuildsDeduped += src.BuildsDeduped
	s.Evictions += src.Evictions
	s.BuildFailures += src.BuildFailures
	s.JobsSubmitted += src.JobsSubmitted
	s.JobsCompleted += src.JobsCompleted
	s.JobsFailed += src.JobsFailed
	s.JobsCanceled += src.JobsCanceled
	s.JobsRejected += src.JobsRejected
	s.Consistent += src.Consistent
	s.SignalsMeasured += src.SignalsMeasured
	s.TotalQueueWait += src.TotalQueueWait
	s.TotalDecodeTime += src.TotalDecodeTime
	mergeHistMap(&s.DecodeLatency, src.DecodeLatency)
	mergeHistMap(&s.QueueLatency, src.QueueLatency)
	mergeHistMap(&s.SettleLatency, src.SettleLatency)
	mergeHistMap(&s.NoiseQueueLatency, src.NoiseQueueLatency)
	for key, n := range src.JobsByNoise {
		if s.JobsByNoise == nil {
			s.JobsByNoise = make(map[string]uint64)
		}
		s.JobsByNoise[key] += n
	}
	mergeHistMap(&s.NoiseLatency, src.NoiseLatency)
	s.SchemeLoad = mergeSchemeLoad(s.SchemeLoad, src.SchemeLoad, defaultLoadKeys)
}

// mergeHistMap accumulates src into *dst, allocating it on first use.
func mergeHistMap(dst *map[string]LatencyHistogram, src map[string]LatencyHistogram) {
	for key, h := range src {
		if *dst == nil {
			*dst = make(map[string]LatencyHistogram)
		}
		m := (*dst)[key]
		m.merge(h)
		(*dst)[key] = m
	}
}

// counters is the mutable, atomically-updated backing of Stats.
type counters struct {
	schemesBuilt, cacheHits, buildsDeduped, evictions, buildFailures atomic.Uint64
	jobsSubmitted, jobsCompleted, jobsFailed, jobsCanceled           atomic.Uint64
	jobsRejected, consistent, signalsMeasured                        atomic.Uint64
	queueWaitNS, decodeNS                                            atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		SchemesBuilt:    c.schemesBuilt.Load(),
		CacheHits:       c.cacheHits.Load(),
		BuildsDeduped:   c.buildsDeduped.Load(),
		Evictions:       c.evictions.Load(),
		BuildFailures:   c.buildFailures.Load(),
		JobsSubmitted:   c.jobsSubmitted.Load(),
		JobsCompleted:   c.jobsCompleted.Load(),
		JobsFailed:      c.jobsFailed.Load(),
		JobsCanceled:    c.jobsCanceled.Load(),
		JobsRejected:    c.jobsRejected.Load(),
		Consistent:      c.consistent.Load(),
		SignalsMeasured: c.signalsMeasured.Load(),
		TotalQueueWait:  time.Duration(c.queueWaitNS.Load()),
		TotalDecodeTime: time.Duration(c.decodeNS.Load()),
	}
}

// Engine is a reconstruction service core: scheme cache plus decode
// pipeline. Create one with New and release its workers with Close. Safe
// for concurrent use.
type Engine struct {
	cfg            Config
	cache          *cache
	stats          counters
	hist           histogramSet
	noiseHist      histogramSet
	queueHist      histogramSet
	settleHist     histogramSet
	noiseQueueHist histogramSet
	load           *loadTable

	jobs chan *task
	wg   sync.WaitGroup

	mu     sync.RWMutex // guards closed vs. in-flight Submit sends
	closed bool
}

// New starts an Engine with cfg.Workers decode workers.
func New(cfg Config) *Engine {
	e := &Engine{
		cfg:  cfg,
		jobs: make(chan *task, cfg.queueDepth()),
	}
	// Noise-model keys embed caller-supplied parameters (σ, T); bound the
	// per-model breakdowns so a sigma sweep cannot grow them without
	// limit.
	e.noiseHist.limit = 64
	e.noiseQueueHist.limit = 64
	e.load = newLoadTable(defaultLoadKeys)
	e.cache = newCache(cfg.cacheCapacity(), &e.stats)
	for w := 0; w < cfg.workers(); w++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Close stops accepting jobs, drains the queue, and waits for the workers
// to exit. Queued jobs still complete.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.jobs)
	e.mu.Unlock()
	e.wg.Wait()
}

// Stats returns a snapshot of the engine counters, including the
// per-decoder and per-noise-model latency histograms.
func (e *Engine) Stats() Stats {
	st := e.stats.snapshot()
	st.DecodeLatency = e.hist.snapshot()
	st.NoiseLatency = e.noiseHist.snapshot()
	st.QueueLatency = e.queueHist.snapshot()
	st.SettleLatency = e.settleHist.snapshot()
	st.NoiseQueueLatency = e.noiseQueueHist.snapshot()
	st.SchemeLoad = e.load.snapshot(time.Now())
	if len(st.NoiseLatency) > 0 {
		st.JobsByNoise = make(map[string]uint64, len(st.NoiseLatency))
		for key, h := range st.NoiseLatency {
			st.JobsByNoise[key] = h.Count
		}
	}
	return st
}

// QueueDepth reports the number of decode jobs waiting for a worker.
func (e *Engine) QueueDepth() int { return len(e.jobs) }

// QueueCapacity reports the decode queue bound.
func (e *Engine) QueueCapacity() int { return cap(e.jobs) }

// Saturated reports whether the decode queue is full right now — the
// admission-control signal for batch submissions (single jobs use
// TrySubmit, which checks and enqueues atomically).
func (e *Engine) Saturated() bool { return len(e.jobs) == cap(e.jobs) }

// NoteRejected records n admission-control rejections that happened
// outside TrySubmit (a batch or campaign turned away up front).
func (e *Engine) NoteRejected(n int) { e.stats.jobsRejected.Add(uint64(n)) }

// Workers reports the decode worker-pool size.
func (e *Engine) Workers() int { return e.cfg.workers() }

// Healthy is always true for a local engine shard (the Shard interface
// form of "in this process, reachable by definition").
func (e *Engine) Healthy() bool { return true }

// Addr is empty for local shards.
func (e *Engine) Addr() string { return "" }

// SetHome assigns the cluster shard index stamped on every scheme this
// engine creates, so cluster routing (Scheme.Home) finds its way back.
// Must be called before the engine hands out schemes; NewClusterOf does
// it at assembly.
func (e *Engine) SetHome(i int) { e.cache.home.Store(int64(i)) }

// Engine is the in-process Shard implementation.
var _ Shard = (*Engine)(nil)
var _ HomeSetter = (*Engine)(nil)

// ValidateJob reports whether job is well-formed (scheme present, count
// length matching the design, weight in range, valid noise model) — the
// same check the cluster and pipeline run, exported for alternative
// Shard implementations.
func ValidateJob(job Job) error { return validateJob(job) }

// CachedSchemes reports the number of cached (or in-flight) schemes.
func (e *Engine) CachedSchemes() int { return e.cache.len() }

// Scheme returns the cached scheme for (des, n, m, seed), building it at
// most once no matter how many goroutines ask concurrently. The returned
// scheme is shared: callers on a cache hit receive the identical pointer.
func (e *Engine) Scheme(des pooling.Design, n, m int, seed uint64) (*Scheme, error) {
	if des == nil {
		des = pooling.RandomRegular{}
	}
	spec := SpecFor(des, n, m, seed)
	return e.cache.get(spec, func() (*graph.Bipartite, error) {
		return des.Build(n, m, pooling.BuildOptions{Seed: seed, Parallelism: e.cfg.BuildParallelism})
	})
}

// SchemeFromGraph wraps a prebuilt design (e.g. one uploaded as a labio
// CSV file) as an engine scheme without caching it. The scheme's routing
// key is the graph's content hash, so the same upload routes to the same
// cluster shard every time.
func (e *Engine) SchemeFromGraph(g *graph.Bipartite) *Scheme {
	return &Scheme{G: g, home: int(e.cache.home.Load()), key: GraphKey(g)}
}

// InstallScheme inserts a prebuilt design into the scheme cache under
// spec, replacing any existing entry — the warm-start path for labio
// design files loaded at boot. The installed scheme is an ordinary cache
// entry afterwards: hits, LRU order, and eviction all apply.
func (e *Engine) InstallScheme(spec Spec, g *graph.Bipartite) *Scheme {
	return e.cache.put(spec, g)
}

func validateJob(job Job) error {
	if job.Scheme == nil || job.Scheme.G == nil {
		return fmt.Errorf("engine: job has no scheme")
	}
	if len(job.Y) != job.Scheme.G.M() {
		return fmt.Errorf("engine: %d counts for %d queries", len(job.Y), job.Scheme.G.M())
	}
	if job.K < 0 || job.K > job.Scheme.G.N() {
		return fmt.Errorf("engine: weight k=%d out of [0,%d]", job.K, job.Scheme.G.N())
	}
	if err := job.Noise.Validate(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}
