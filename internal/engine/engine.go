// Package engine is the reconstruction engine behind the pooledd service
// and the experiment sweeps: it amortizes design construction across
// requests and pipelines many decode jobs through a bounded worker pool.
//
// The paper's premise (Gebhard et al., IPDPS 2022) is that the pooled
// measurement round is the expensive step while reconstruction is cheap.
// That only holds operationally if the reconstruction side never rebuilds
// the Γ = n/2 random-regular design per request: a screening lab or
// feature-selection pipeline runs the one-design/many-signals regime, so
// the engine owns
//
//   - a scheme cache keyed by (design, n, m, seed) with LRU eviction and
//     build deduplication: concurrent requests for the same design trigger
//     exactly one pooling build and share the immutable graph (plus its
//     lazily-built query-side multiplicity matrix);
//   - a decode pipeline: Submit(job) → Future over a bounded worker pool,
//     with per-job decoder selection, context cancellation, and per-job
//     stats (queue wait, decode time, residual, consistency) aggregated
//     into engine-level counters;
//   - a batched measurement path (MeasureBatch) that evaluates many
//     signals against one design in a single pass over the pooling matrix.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pooleddata/internal/graph"
	"pooleddata/internal/pooling"
)

// Config sizes an Engine.
type Config struct {
	// CacheCapacity is the maximum number of cached schemes; 0 means 8.
	CacheCapacity int
	// Workers is the number of decode workers; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the decode job queue; 0 means 4·Workers.
	QueueDepth int
	// BuildParallelism bounds goroutines per design build; 0 means
	// GOMAXPROCS.
	BuildParallelism int
}

func (c Config) cacheCapacity() int {
	if c.CacheCapacity <= 0 {
		return 8
	}
	return c.CacheCapacity
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 4 * c.workers()
	}
	return c.QueueDepth
}

// Stats is a snapshot of the engine-level counters. The json tags are
// the wire names cmd/pooledd serves on /v1/stats.
type Stats struct {
	// Scheme cache.
	SchemesBuilt  uint64 `json:"schemes_built"`  // builds executed (cache misses that ran pooling.Build)
	CacheHits     uint64 `json:"cache_hits"`     // requests served from a completed cache entry
	BuildsDeduped uint64 `json:"builds_deduped"` // requests that joined an in-flight build
	Evictions     uint64 `json:"evictions"`      // schemes evicted by the LRU policy
	BuildFailures uint64 `json:"build_failures"` // builds that returned an error

	// Decode pipeline.
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"` // decoded successfully
	JobsFailed    uint64 `json:"jobs_failed"`    // decoder returned an error
	JobsCanceled  uint64 `json:"jobs_canceled"`  // context canceled before a worker picked the job up
	Consistent    uint64 `json:"consistent"`     // completed jobs whose estimate reproduced y exactly

	// Batched measurement.
	SignalsMeasured uint64 `json:"signals_measured"` // signals evaluated through MeasureBatch

	// Cumulative time spent by completed jobs (nanoseconds on the wire).
	TotalQueueWait  time.Duration `json:"total_queue_wait_ns"`
	TotalDecodeTime time.Duration `json:"total_decode_time_ns"`
}

// counters is the mutable, atomically-updated backing of Stats.
type counters struct {
	schemesBuilt, cacheHits, buildsDeduped, evictions, buildFailures atomic.Uint64
	jobsSubmitted, jobsCompleted, jobsFailed, jobsCanceled           atomic.Uint64
	consistent, signalsMeasured                                      atomic.Uint64
	queueWaitNS, decodeNS                                            atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		SchemesBuilt:    c.schemesBuilt.Load(),
		CacheHits:       c.cacheHits.Load(),
		BuildsDeduped:   c.buildsDeduped.Load(),
		Evictions:       c.evictions.Load(),
		BuildFailures:   c.buildFailures.Load(),
		JobsSubmitted:   c.jobsSubmitted.Load(),
		JobsCompleted:   c.jobsCompleted.Load(),
		JobsFailed:      c.jobsFailed.Load(),
		JobsCanceled:    c.jobsCanceled.Load(),
		Consistent:      c.consistent.Load(),
		SignalsMeasured: c.signalsMeasured.Load(),
		TotalQueueWait:  time.Duration(c.queueWaitNS.Load()),
		TotalDecodeTime: time.Duration(c.decodeNS.Load()),
	}
}

// Engine is a reconstruction service core: scheme cache plus decode
// pipeline. Create one with New and release its workers with Close. Safe
// for concurrent use.
type Engine struct {
	cfg   Config
	cache *cache
	stats counters

	jobs chan *task
	wg   sync.WaitGroup

	mu     sync.RWMutex // guards closed vs. in-flight Submit sends
	closed bool
}

// New starts an Engine with cfg.Workers decode workers.
func New(cfg Config) *Engine {
	e := &Engine{
		cfg:  cfg,
		jobs: make(chan *task, cfg.queueDepth()),
	}
	e.cache = newCache(cfg.cacheCapacity(), &e.stats)
	for w := 0; w < cfg.workers(); w++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Close stops accepting jobs, drains the queue, and waits for the workers
// to exit. Queued jobs still complete.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.jobs)
	e.mu.Unlock()
	e.wg.Wait()
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats { return e.stats.snapshot() }

// Scheme returns the cached scheme for (des, n, m, seed), building it at
// most once no matter how many goroutines ask concurrently. The returned
// scheme is shared: callers on a cache hit receive the identical pointer.
func (e *Engine) Scheme(des pooling.Design, n, m int, seed uint64) (*Scheme, error) {
	if des == nil {
		des = pooling.RandomRegular{}
	}
	spec := SpecFor(des, n, m, seed)
	return e.cache.get(spec, func() (*graph.Bipartite, error) {
		return des.Build(n, m, pooling.BuildOptions{Seed: seed, Parallelism: e.cfg.BuildParallelism})
	})
}

// SchemeFromGraph wraps a prebuilt design (e.g. one uploaded as a labio
// CSV file) as an engine scheme without caching it.
func (e *Engine) SchemeFromGraph(g *graph.Bipartite) *Scheme {
	return &Scheme{G: g}
}

// workerCount reports the configured worker-pool size.
func (e *Engine) workerCount() int { return e.cfg.workers() }

func validateJob(job Job) error {
	if job.Scheme == nil || job.Scheme.G == nil {
		return fmt.Errorf("engine: job has no scheme")
	}
	if len(job.Y) != job.Scheme.G.M() {
		return fmt.Errorf("engine: %d counts for %d queries", len(job.Y), job.Scheme.G.M())
	}
	if job.K < 0 || job.K > job.Scheme.G.N() {
		return fmt.Errorf("engine: weight k=%d out of [0,%d]", job.K, job.Scheme.G.N())
	}
	return nil
}
