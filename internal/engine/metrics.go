package engine

import (
	"strconv"
	"time"

	"pooleddata/metrics"
)

// RegisterClusterMetrics exports the cluster's counters, stage timers,
// and per-shard gauges on reg as scrape-time collectors. The existing
// Stats snapshot stays the single source of truth — /metrics and
// /v1/stats read the same numbers — so nothing is double-accounted.
// Nil-safe: a nil registry registers nothing.
func RegisterClusterMetrics(reg *metrics.Registry, c *Cluster) {
	if reg == nil || c == nil {
		return
	}
	reg.OnGather(func(e *metrics.Exporter) {
		cs := c.Stats()
		t := cs.Total

		e.Counter("pooled_engine_schemes_built_total", "Design builds executed (cache misses).", float64(t.SchemesBuilt))
		e.Counter("pooled_engine_scheme_cache_hits_total", "Scheme requests served from a completed cache entry.", float64(t.CacheHits))
		e.Counter("pooled_engine_scheme_builds_deduped_total", "Scheme requests that joined an in-flight build.", float64(t.BuildsDeduped))
		e.Counter("pooled_engine_scheme_evictions_total", "Schemes evicted by the LRU policy.", float64(t.Evictions))
		e.Counter("pooled_engine_scheme_build_failures_total", "Design builds that returned an error.", float64(t.BuildFailures))

		const jobsHelp = "Decode jobs by outcome: submitted, completed, failed, canceled, rejected."
		e.Counter("pooled_engine_jobs_total", jobsHelp, float64(t.JobsSubmitted), "outcome", "submitted")
		e.Counter("pooled_engine_jobs_total", jobsHelp, float64(t.JobsCompleted), "outcome", "completed")
		e.Counter("pooled_engine_jobs_total", jobsHelp, float64(t.JobsFailed), "outcome", "failed")
		e.Counter("pooled_engine_jobs_total", jobsHelp, float64(t.JobsCanceled), "outcome", "canceled")
		e.Counter("pooled_engine_jobs_total", jobsHelp, float64(t.JobsRejected), "outcome", "rejected")
		e.Counter("pooled_engine_jobs_consistent_total", "Completed jobs whose estimate reproduced y within the noise slack.", float64(t.Consistent))
		e.Counter("pooled_engine_signals_measured_total", "Signals evaluated through MeasureBatch.", float64(t.SignalsMeasured))

		e.Gauge("pooled_ring_members", "Members currently placed on the consistent-hash ring.", float64(len(cs.Members)))
		const ringHelp = "Ring membership changes since boot, by operation."
		e.Counter("pooled_ring_changes_total", ringHelp, float64(cs.MembershipAdds), "op", "add")
		e.Counter("pooled_ring_changes_total", ringHelp, float64(cs.MembershipRemoves), "op", "remove")

		exportLatencyMap(e, "pooled_engine_queue_wait_seconds", "Time between enqueue and a worker picking the job up, by decoder.", "decoder", t.QueueLatency)
		exportLatencyMap(e, "pooled_engine_decode_seconds", "Time inside the decoder, by decoder.", "decoder", t.DecodeLatency)
		exportLatencyMap(e, "pooled_engine_settle_seconds", "Time completing the future and running OnDone, by decoder.", "decoder", t.SettleLatency)
		exportLatencyMap(e, "pooled_engine_noise_decode_seconds", "Time inside the decoder, by canonical noise-model key.", "noise", t.NoiseLatency)
		exportLatencyMap(e, "pooled_engine_noise_queue_wait_seconds", "Queue wait by canonical noise-model key.", "noise", t.NoiseQueueLatency)

		// The per-scheme hot-key table. Keys are already bounded at the
		// source (top-K per shard, top-K after the merge), so the label
		// cardinality is capped no matter how many designs pass through.
		for _, row := range t.SchemeLoad {
			e.Counter("pooled_scheme_load_jobs_total", "Decode jobs per scheme routing key (bounded top-K table).", float64(row.Jobs), "scheme", row.Key)
			e.Counter("pooled_scheme_load_decode_seconds_total", "Cumulative decode time per scheme routing key.", time.Duration(row.DecodeNS).Seconds(), "scheme", row.Key)
			e.Gauge("pooled_scheme_load_rate", "Exponentially-decayed decode job rate per scheme routing key (jobs/s).", row.RatePerSec, "scheme", row.Key)
		}

		for _, sh := range cs.Shards {
			idx := strconv.Itoa(sh.Shard)
			e.Gauge("pooled_shard_queue_depth", "Decode jobs waiting for a worker, per shard.", float64(sh.QueueDepth), "shard", idx)
			e.Gauge("pooled_shard_queue_capacity", "Decode queue bound, per shard.", float64(sh.QueueCapacity), "shard", idx)
			e.Gauge("pooled_shard_workers", "Decode worker-pool size, per shard.", float64(sh.Workers), "shard", idx)
			e.Gauge("pooled_shard_cached_schemes", "Cached (or in-flight) schemes, per shard.", float64(sh.CachedSchemes), "shard", idx)
			healthy := 0.0
			if sh.Healthy {
				healthy = 1
			}
			e.Gauge("pooled_shard_healthy", "1 when the shard can take work (local shards are always 1; remote shards report probe state).", healthy, "shard", idx, "addr", sh.Addr)
		}
	})
}

// exportLatencyMap renders a map of bounded-bucket latency histograms
// (nanosecond buckets) as one Prometheus histogram family in seconds.
// The map keys are already bounded at the source (histogramSet limits,
// LatencySet limits), and the exporter's own series cap backstops them.
func exportLatencyMap(e *metrics.Exporter, name, help, label string, m map[string]LatencyHistogram) {
	for key, h := range m {
		ExportLatency(e, name, help, h, label, key)
	}
}

// ExportLatency renders one LatencyHistogram as a Prometheus histogram
// sample, converting nanosecond bucket edges and totals to seconds. lv
// are alternating label name/value pairs, as in Exporter calls.
func ExportLatency(e *metrics.Exporter, name, help string, h LatencyHistogram, lv ...string) {
	upper := make([]float64, len(h.BucketUpperNS))
	for i, ns := range h.BucketUpperNS {
		upper[i] = time.Duration(ns).Seconds()
	}
	e.Histogram(name, help, upper, h.Counts, time.Duration(h.TotalNS).Seconds(), h.Count, lv...)
}
