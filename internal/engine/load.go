package engine

import (
	"math"
	"sort"
	"sync"
	"time"
)

// SchemeLoad is one row of the per-scheme hot-key table: how much decode
// work one design (identified by its routing key) has pulled through a
// shard. It is the raw input for load-aware placement — an operator (or
// the rebalancing controller) reads it off /v1/stats to see which
// designs are hot and which worker owns them.
type SchemeLoad struct {
	// Key is the scheme's routing key (canonical spec key for parametric
	// designs, content hash for ad-hoc uploads).
	Key string `json:"key"`
	// Jobs counts decode jobs that reached a decoder for this scheme.
	Jobs uint64 `json:"jobs"`
	// RatePerSec is an exponentially-decayed job rate (τ = 30s): the
	// "hot right now" signal, as opposed to the lifetime Jobs count.
	RatePerSec float64 `json:"rate_per_sec"`
	// DecodeNS is the cumulative time spent inside decoders for this
	// scheme — the gravity signal (a scheme with few slow jobs can
	// outweigh one with many cheap jobs).
	DecodeNS int64 `json:"decode_ns"`
}

// loadTau is the decay constant of the EWMA job rate.
const loadTau = 30 * time.Second

// defaultLoadKeys bounds the table; schemes beyond the bound evict the
// coldest entry (fewest jobs), so the table tracks the top-K hot keys
// with O(K) memory no matter how many designs pass through.
const defaultLoadKeys = 64

// loadEntry is the mutable per-key accumulator.
type loadEntry struct {
	jobs     uint64
	decodeNS int64
	rate     float64 // decayed events/sec
	last     time.Time
}

// decayTo folds elapsed time into the rate without adding an event.
func (le *loadEntry) decayTo(now time.Time) float64 {
	dt := now.Sub(le.last).Seconds()
	if dt <= 0 {
		return le.rate
	}
	return le.rate * math.Exp(-dt/loadTau.Seconds())
}

// loadTable is a bounded top-K accumulator of per-scheme decode load.
// One short mutex per recorded job; the decode itself dwarfs it.
type loadTable struct {
	mu      sync.Mutex
	limit   int
	entries map[string]*loadEntry
}

func newLoadTable(limit int) *loadTable {
	if limit <= 0 {
		limit = defaultLoadKeys
	}
	return &loadTable{limit: limit, entries: make(map[string]*loadEntry, limit)}
}

// record accounts one decode job for key. Unknown keys enter the table,
// evicting the fewest-jobs entry when it is full — a space-saving-style
// policy that keeps persistent hot keys resident while one-off designs
// churn through the cold slots.
func (lt *loadTable) record(key string, decodeNS int64, now time.Time) {
	if lt == nil || key == "" {
		return
	}
	lt.mu.Lock()
	defer lt.mu.Unlock()
	le := lt.entries[key]
	if le == nil {
		if len(lt.entries) >= lt.limit {
			var coldKey string
			var cold *loadEntry
			for k, e := range lt.entries {
				if cold == nil || e.jobs < cold.jobs {
					coldKey, cold = k, e
				}
			}
			delete(lt.entries, coldKey)
		}
		le = &loadEntry{last: now}
		lt.entries[key] = le
	}
	le.rate = le.decayTo(now) + 1/loadTau.Seconds()
	le.last = now
	le.jobs++
	le.decodeNS += decodeNS
}

// snapshot returns the table sorted hottest-first (by jobs, then
// cumulative decode time), with rates decayed to now.
func (lt *loadTable) snapshot(now time.Time) []SchemeLoad {
	if lt == nil {
		return nil
	}
	lt.mu.Lock()
	out := make([]SchemeLoad, 0, len(lt.entries))
	for key, le := range lt.entries {
		out = append(out, SchemeLoad{
			Key:        key,
			Jobs:       le.jobs,
			RatePerSec: le.decayTo(now),
			DecodeNS:   le.decodeNS,
		})
	}
	lt.mu.Unlock()
	sortSchemeLoad(out)
	return out
}

func sortSchemeLoad(rows []SchemeLoad) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Jobs != rows[j].Jobs {
			return rows[i].Jobs > rows[j].Jobs
		}
		if rows[i].DecodeNS != rows[j].DecodeNS {
			return rows[i].DecodeNS > rows[j].DecodeNS
		}
		return rows[i].Key < rows[j].Key
	})
}

// mergeSchemeLoad folds src rows into dst (cluster aggregation across
// shards: same key sums, rates add — each shard measured its own share
// of the stream), keeping the result sorted and bounded.
func mergeSchemeLoad(dst []SchemeLoad, src []SchemeLoad, limit int) []SchemeLoad {
	if len(src) == 0 {
		return dst
	}
	if limit <= 0 {
		limit = defaultLoadKeys
	}
	byKey := make(map[string]int, len(dst)+len(src))
	for i, row := range dst {
		byKey[row.Key] = i
	}
	for _, row := range src {
		if i, ok := byKey[row.Key]; ok {
			dst[i].Jobs += row.Jobs
			dst[i].RatePerSec += row.RatePerSec
			dst[i].DecodeNS += row.DecodeNS
		} else {
			byKey[row.Key] = len(dst)
			dst = append(dst, row)
		}
	}
	sortSchemeLoad(dst)
	if len(dst) > limit {
		dst = dst[:limit]
	}
	return dst
}
