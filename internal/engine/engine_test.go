package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/decoder"
	"pooleddata/internal/graph"
	"pooleddata/internal/noise"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
)

func testInstance(t *testing.T, n, k, m int) (*graph.Bipartite, *bitvec.Vector, []int64) {
	t.Helper()
	g, err := pooling.RandomRegular{}.Build(n, m, pooling.BuildOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(12))
	y := query.Execute(g, sigma, query.Options{Seed: 13}).Y
	return g, sigma, y
}

func TestSchemeCacheHitIsPointerIdentical(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	a, err := e.Scheme(pooling.RandomRegular{}, 300, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Scheme(pooling.RandomRegular{}, 300, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("cache hit returned a different *Scheme: %p vs %p", a, b)
	}
	if a.QueryMatrix() != b.QueryMatrix() {
		t.Fatal("query matrix not shared across cache hits")
	}
	st := e.Stats()
	if st.SchemesBuilt != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 1 build and 1 hit", st)
	}
	// Different seed, parameters, or design must miss.
	c, err := e.Scheme(pooling.RandomRegular{}, 300, 120, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different seed returned the cached scheme")
	}
	d, err := e.Scheme(pooling.RandomRegular{Gamma: 10}, 300, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Fatal("different design parameters returned the cached scheme")
	}
}

func TestCacheDeduplicatesConcurrentBuilds(t *testing.T) {
	c := newCache(4, &counters{})
	spec := Spec{Design: "stub", N: 10, M: 2, Seed: 1}
	g, err := pooling.Fixed{Queries: [][]int{{0, 1}, {2, 3}}}.Build(10, 2, pooling.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 16
	var builds int
	gate := make(chan struct{})
	var mu sync.Mutex
	build := func() (*graph.Bipartite, error) {
		<-gate
		mu.Lock()
		builds++
		mu.Unlock()
		return g, nil
	}

	var wg sync.WaitGroup
	got := make([]*Scheme, waiters)
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := c.get(spec, build)
			if err != nil {
				t.Error(err)
				return
			}
			got[w] = s
		}(w)
	}
	time.Sleep(10 * time.Millisecond) // let the waiters pile onto the in-flight build
	close(gate)
	wg.Wait()

	if builds != 1 {
		t.Fatalf("build ran %d times, want exactly 1", builds)
	}
	for w := 1; w < waiters; w++ {
		if got[w] != got[0] {
			t.Fatalf("waiter %d got a different scheme", w)
		}
	}
}

func TestCacheBuildErrorIsNotCached(t *testing.T) {
	c := newCache(4, &counters{})
	spec := Spec{Design: "err", N: 1, M: 1, Seed: 1}
	boom := errors.New("boom")
	if _, err := c.get(spec, func() (*graph.Bipartite, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	g, err := pooling.Fixed{Queries: [][]int{{0}}}.Build(1, 1, pooling.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.get(spec, func() (*graph.Bipartite, error) { return g, nil })
	if err != nil || s == nil {
		t.Fatalf("retry after failed build: scheme=%v err=%v", s, err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	e := New(Config{CacheCapacity: 2})
	defer e.Close()
	a, _ := e.Scheme(pooling.RandomRegular{}, 100, 40, 1)
	e.Scheme(pooling.RandomRegular{}, 100, 40, 2)
	// Touch seed 1 so seed 2 is the LRU victim.
	e.Scheme(pooling.RandomRegular{}, 100, 40, 1)
	e.Scheme(pooling.RandomRegular{}, 100, 40, 3)
	if got := e.cache.len(); got != 2 {
		t.Fatalf("cache holds %d schemes, want 2", got)
	}
	st := e.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// Seed 1 must still be cached (pointer identity), seed 2 rebuilt.
	a2, _ := e.Scheme(pooling.RandomRegular{}, 100, 40, 1)
	if a2 != a {
		t.Fatal("recently-used scheme was evicted")
	}
	e.Scheme(pooling.RandomRegular{}, 100, 40, 2)
	if st := e.Stats(); st.SchemesBuilt != 4 {
		t.Fatalf("schemes built = %d, want 4 (seed 2 rebuilt after eviction)", st.SchemesBuilt)
	}
}

func TestPipelineDecodeMatchesSerial(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Close()
	g, sigma, y := testInstance(t, 400, 6, 300)
	s := e.SchemeFromGraph(g)

	for _, dec := range []decoder.Decoder{decoder.MN{}, decoder.Greedy{}, decoder.Refined{}} {
		res, err := e.Decode(context.Background(), Job{Scheme: s, Y: y, K: 6, Dec: dec})
		if err != nil {
			t.Fatalf("%s: %v", dec.Name(), err)
		}
		want, err := dec.Decode(g, y, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Estimate.Equal(want) {
			t.Fatalf("%s: pipeline estimate differs from serial decode", dec.Name())
		}
		if res.Stats.Consistent != (decoder.Residual(g, want, y) == 0) {
			t.Fatalf("%s: consistency flag disagrees with decoder.Residual", dec.Name())
		}
	}
	// The default decoder recovers the planted signal at this m.
	res, err := e.Decode(context.Background(), Job{Scheme: s, Y: y, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Estimate.Equal(sigma) {
		t.Fatal("MN failed to recover the planted signal above threshold")
	}
	if !res.Stats.Consistent || res.Stats.Residual != 0 {
		t.Fatalf("exact recovery reported residual=%d consistent=%v", res.Stats.Residual, res.Stats.Consistent)
	}
	st := e.Stats()
	if st.JobsCompleted != 4 || st.JobsSubmitted != 4 {
		t.Fatalf("stats = %+v, want 4 submitted and completed", st)
	}
	if st.TotalDecodeTime <= 0 {
		t.Fatal("decode time not aggregated")
	}
}

// blockingDecoder parks until released; used to wedge the worker pool.
type blockingDecoder struct {
	release <-chan struct{}
}

func (blockingDecoder) Name() string { return "blocking" }

func (d blockingDecoder) Decode(g *graph.Bipartite, y []int64, k int) (*bitvec.Vector, error) {
	<-d.release
	return bitvec.New(g.N()), nil
}

func TestSubmitCancellation(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 1})
	defer e.Close()
	g, _, y := testInstance(t, 60, 3, 40)
	s := e.SchemeFromGraph(g)
	release := make(chan struct{})

	// Wedge the only worker.
	wedge, err := e.Submit(context.Background(), Job{Scheme: s, Y: y, K: 3, Dec: blockingDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has picked the wedge up so the queue is empty.
	deadline := time.Now().Add(time.Second)
	for e.Stats().JobsSubmitted == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Queued job whose context dies before a worker reaches it.
	ctx, cancel := context.WithCancel(context.Background())
	queued, err := e.Submit(ctx, Job{Scheme: s, Y: y, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	// Fill the queue is done (depth 1, occupied by `queued`): a further
	// Submit with a dead context must abandon the enqueue wait.
	dead, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	if _, err := e.Submit(dead, Job{Scheme: s, Y: y, K: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("submit with dead context on a full queue: err = %v, want context.Canceled", err)
	}

	close(release)
	if _, err := wedge.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := queued.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled job completed with err = %v, want context.Canceled", err)
	}
	if st := e.Stats(); st.JobsCanceled != 1 {
		t.Fatalf("jobs canceled = %d, want 1", st.JobsCanceled)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e := New(Config{Workers: 1})
	g, _, y := testInstance(t, 60, 3, 40)
	s := e.SchemeFromGraph(g)
	e.Close()
	if _, err := e.Submit(context.Background(), Job{Scheme: s, Y: y, K: 3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: err = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

func TestSubmitValidation(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	g, _, y := testInstance(t, 60, 3, 40)
	s := e.SchemeFromGraph(g)
	if _, err := e.Submit(context.Background(), Job{Scheme: s, Y: y[:10], K: 3}); err == nil {
		t.Fatal("short count vector accepted")
	}
	if _, err := e.Submit(context.Background(), Job{Scheme: s, Y: y, K: 61}); err == nil {
		t.Fatal("out-of-range k accepted")
	}
	if _, err := e.Submit(context.Background(), Job{Y: y, K: 3}); err == nil {
		t.Fatal("nil scheme accepted")
	}
}

func TestMeasureBatchAndDecodeBatch(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	s, err := e.Scheme(pooling.RandomRegular{}, 500, 380, 21)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 9
	k := 7
	signals := make([]*bitvec.Vector, batch)
	for b := range signals {
		signals[b] = bitvec.Random(500, k, rng.NewRandSeeded(uint64(100+b)))
	}
	ys := e.MeasureBatch(s, signals, noise.Model{})
	for b, sig := range signals {
		want := query.Execute(s.G, sig, query.Options{}).Y
		for j := range want {
			if ys[b][j] != want[j] {
				t.Fatalf("batch measurement of signal %d differs from Execute at query %d", b, j)
			}
		}
	}
	results, err := e.DecodeBatch(context.Background(), s, ys, k, Job{})
	if err != nil {
		t.Fatal(err)
	}
	for b, res := range results {
		if !res.Estimate.Equal(signals[b]) {
			t.Fatalf("batched decode %d failed to recover its signal", b)
		}
	}
	if st := e.Stats(); st.SignalsMeasured != batch {
		t.Fatalf("signals measured = %d, want %d", st.SignalsMeasured, batch)
	}
}

func TestDecoderByName(t *testing.T) {
	for _, name := range []string{"", "mn", "mn-refined", "refined", "bp", "greedy", "greedy-omp", "lp", "lp-relaxation", "cs", "exhaustive"} {
		if _, err := DecoderByName(name); err != nil {
			t.Errorf("DecoderByName(%q): %v", name, err)
		}
	}
	if _, err := DecoderByName("nope"); err == nil {
		t.Error("unknown decoder accepted")
	}
}
