package engine

import (
	"fmt"

	"pooleddata/internal/pooling"
)

// DesignParams are the optional per-design knobs of a wire-format scheme
// request. The zero value selects each design's paper default.
type DesignParams struct {
	// Gamma is the RandomRegular query size; 0 means ⌈n/2⌉.
	Gamma int
	// P is the Bernoulli inclusion probability; 0 means 1/2.
	P float64
	// D is the ConstantColumn per-entry degree; 0 means round(γ·m).
	D int
}

// DesignByName maps a wire-format design name to its implementation.
func DesignByName(name string, params DesignParams) (pooling.Design, error) {
	switch name {
	case "", "random-regular", "regular":
		return pooling.RandomRegular{Gamma: params.Gamma}, nil
	case "bernoulli":
		return pooling.Bernoulli{P: params.P}, nil
	case "constant-column", "column":
		return pooling.ConstantColumn{D: params.D}, nil
	}
	return nil, fmt.Errorf("engine: unknown design %q", name)
}
