package engine

import (
	"context"
	"fmt"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/decoder"
	"pooleddata/internal/noise"
	"pooleddata/metrics/trace"
)

// Job is one decode request: invert the scheme's design on the measured
// counts Y, looking for a weight-K signal.
type Job struct {
	// Scheme is the design to invert (from Engine.Scheme or
	// SchemeFromGraph).
	Scheme *Scheme
	// Y are the measured counts, one per query.
	Y []int64
	// K is the signal's Hamming weight.
	K int
	// Noise declares how Y was measured; the zero value means exact
	// additive counts. A non-exact model drives server-side decoder
	// selection (when Dec is nil), widens the consistency check by the
	// model's residual slack, and breaks the job out in the per-model
	// engine counters.
	Noise noise.Model
	// Dec selects the reconstruction algorithm explicitly, overriding the
	// noise policy; nil means noise.SelectDecoder for noisy jobs and the
	// paper's MN-Algorithm for exact ones.
	Dec decoder.Decoder
	// Tag is an opaque caller token echoed back in Result.Tag on every
	// settle path (completed, failed, canceled). It lets a fan-out caller
	// share one OnDone callback across a batch and route each settlement
	// by tag instead of allocating a closure per job — the campaign
	// subsystem stamps the job's batch index here and builds its event
	// log straight from the callback payload, no extra lookup or lock.
	Tag int
	// OnDone, if set, is invoked exactly once when the job settles —
	// completed, failed, or canceled — after its Future completes. It runs
	// on the worker goroutine, so it must be cheap and must not block; the
	// campaign subsystem uses it for progress accounting.
	OnDone func(Result, error)
	// TraceID is the request-scoped trace identifier, echoed back in
	// Result.TraceID on every settle path. The pipeline treats it as
	// opaque; pooledd stamps the ingress Trace-ID here and the remote
	// shard client carries it over the wire, so one job's timeline is
	// reconstructable across frontend and worker logs.
	TraceID string
	// Trace is the job's span builder. The pipeline appends its
	// shard-queue and decode spans to it; the remote shard client
	// appends the wire-stage spans. Whoever created the builder (the
	// pooledd ingress handler, the campaign store, or — when
	// Config.Traces is set and the job arrives bare — the engine
	// itself) finishes it and offers it for tail sampling. Nil is fine:
	// every span call on a nil builder is a no-op.
	Trace *trace.Builder
}

func (j Job) dec() decoder.Decoder {
	if j.Dec != nil {
		return j.Dec
	}
	if nm := j.Noise.Canon(); nm.Kind != noise.Exact && j.Scheme != nil && j.Scheme.G != nil {
		return noise.SelectDecoder(nm, noise.SchemeParams{N: j.Scheme.G.N(), M: j.Scheme.G.M(), K: j.K})
	}
	return decoder.MN{}
}

// JobStats are the per-job measurements the pipeline records.
type JobStats struct {
	// QueueWait is the time between Submit and a worker picking the job
	// up.
	QueueWait time.Duration
	// DecodeTime is the time spent inside the decoder.
	DecodeTime time.Duration
	// Residual is the L1 misfit Σ_j |y_j − ŷ_j| of the estimate, with
	// predictions mapped through the job's noise model (thresholded for
	// threshold jobs) before comparison.
	Residual int64
	// Consistent reports whether the estimate reproduces Y within the
	// noise model's residual slack (exactly, for exact jobs).
	Consistent bool
}

// Result is the outcome of a completed job.
type Result struct {
	// Tag echoes Job.Tag — present on every settle path, including
	// cancellations and failures.
	Tag int
	// TraceID echoes Job.TraceID — present on every settle path.
	TraceID string
	// Support is the recovered one-entry index set, ascending.
	Support []int
	// Estimate is the recovered signal as a bit vector.
	Estimate *bitvec.Vector
	// Decoder is the name of the decoder that ran the job — for jobs
	// without an explicit decoder, the one the noise policy selected.
	Decoder string
	// Stats are the per-job pipeline measurements.
	Stats JobStats
}

// Future is the handle returned by Submit. Wait blocks until the job
// completes or the passed context is done.
type Future struct {
	done chan struct{}
	res  Result
	err  error
}

func (f *Future) complete(res Result, err error) {
	f.res, f.err = res, err
	close(f.done)
}

// Done returns a channel closed when the job has completed.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait returns the job's result, blocking until it completes or ctx is
// done. A context error abandons the wait, not the job: the worker still
// finishes it and the engine counters still see it.
func (f *Future) Wait(ctx context.Context) (Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// NewFuture returns an unresolved Future for job plus the single-use
// settle function that completes it — the adapter remote shard clients
// use to fan RPC completions back into the local Future/OnDone surface.
// settle stamps the job's Tag on the result, completes the future, and
// then fires the job's OnDone callback, in the same order as the worker
// pipeline's settle path, so fan-out callers cannot tell a remote
// settlement from a local one.
func NewFuture(job Job) (fut *Future, settle func(Result, error)) {
	t := &task{job: job, fut: &Future{done: make(chan struct{})}}
	return t.fut, t.settle
}

// task is a queued job plus its bookkeeping.
type task struct {
	job      Job
	ctx      context.Context
	fut      *Future
	enqueued time.Time
	// ownTrace marks a builder the engine created itself (bare job,
	// Config.Traces set) — the engine must finish and offer it.
	ownTrace bool
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = fmt.Errorf("engine: closed")

// ErrSaturated is returned by TrySubmit when the decode queue is full —
// the admission-control signal a front-end turns into 429 + Retry-After.
var ErrSaturated = fmt.Errorf("engine: decode queue saturated")

// submitMode selects how submit treats a full queue.
type submitMode int

const (
	// submitBlock waits for queue space (backpressure).
	submitBlock submitMode = iota
	// submitTry returns ErrSaturated and counts the rejection — the
	// admission-control path.
	submitTry
	// submitOffer returns ErrSaturated without counting it: the caller is
	// a cooperative scheduler that was already admitted and will retry.
	submitOffer
)

// Submit validates and enqueues a decode job, returning a Future. It
// blocks while the queue is full; ctx cancels both the enqueue wait and —
// if still queued when it fires — the job itself.
func (e *Engine) Submit(ctx context.Context, job Job) (*Future, error) {
	return e.submit(ctx, job, submitBlock)
}

// TrySubmit is Submit without the enqueue wait: a full queue returns
// ErrSaturated immediately and counts toward Stats.JobsRejected.
func (e *Engine) TrySubmit(ctx context.Context, job Job) (*Future, error) {
	return e.submit(ctx, job, submitTry)
}

// Offer is TrySubmit for cooperative schedulers (the campaign
// dispatcher): a full queue returns ErrSaturated immediately but does
// not count toward Stats.JobsRejected — the job was already admitted
// and the caller keeps it queued on its side to retry, so counting it
// as a rejection would double-book every backpressure stall.
func (e *Engine) Offer(ctx context.Context, job Job) (*Future, error) {
	return e.submit(ctx, job, submitOffer)
}

func (e *Engine) submit(ctx context.Context, job Job, mode submitMode) (*Future, error) {
	if err := validateJob(job); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	fut := &Future{done: make(chan struct{})}
	t := &task{job: job, ctx: ctx, fut: fut, enqueued: time.Now()}
	if e.traces() != nil && t.job.Trace == nil {
		if t.job.TraceID == "" {
			t.job.TraceID = trace.NewID()
		}
		t.job.Trace = trace.NewBuilder(t.job.TraceID, "decode_job", trace.TierFrontend)
		t.ownTrace = true
	}

	// The read lock is held across the (possibly blocking) send so Close
	// can never close the channel under a sender; workers drain the queue
	// without touching the lock, so blocked senders always make progress.
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	if mode != submitBlock {
		select {
		case e.jobs <- t:
			e.stats.jobsSubmitted.Add(1)
			return fut, nil
		default:
			if mode == submitTry {
				e.stats.jobsRejected.Add(1)
			}
			return nil, ErrSaturated
		}
	}
	select {
	case e.jobs <- t:
		e.stats.jobsSubmitted.Add(1)
		return fut, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Decode is Submit followed by Wait: it runs one job through the pipeline
// and returns its result.
func (e *Engine) Decode(ctx context.Context, job Job) (Result, error) {
	fut, err := e.Submit(ctx, job)
	if err != nil {
		return Result{}, err
	}
	return fut.Wait(ctx)
}

// worker drains the job queue until Close.
func (e *Engine) worker() {
	defer e.wg.Done()
	for t := range e.jobs {
		e.run(t)
	}
}

// run executes one task, completes its future, and fires the job's
// completion callback (in that order, so a callback that unblocks a
// waiter never races the future's result).
func (e *Engine) run(t *task) {
	wait := time.Since(t.enqueued)
	tb := t.job.Trace
	tb.SetScheme(t.job.Scheme.RouteKey())
	if err := t.ctx.Err(); err != nil {
		e.stats.jobsCanceled.Add(1)
		tb.Span("shard_queue", trace.TierFrontend, 0, t.enqueued, wait)
		t.settle(Result{Stats: JobStats{QueueWait: wait}}, err)
		e.finishOwnedTrace(t, err)
		return
	}
	dec := t.job.dec()
	nm := t.job.Noise.Canon()
	e.queueHist.get(dec.Name()).observe(wait)
	e.noiseQueueHist.get(nm.Key()).observe(wait)
	tb.Span("shard_queue", trace.TierFrontend, 0, t.enqueued, wait)
	start := time.Now()
	est, err := dec.Decode(t.job.Scheme.G, t.job.Y, t.job.K)
	elapsed := time.Since(start)
	e.hist.get(dec.Name()).observe(elapsed)
	e.noiseHist.get(nm.Key()).observe(elapsed)
	e.load.record(t.job.Scheme.RouteKey(), elapsed.Nanoseconds(), time.Now())
	tb.Span("decode", trace.TierFrontend, 0, start, elapsed)
	if err != nil {
		e.stats.jobsFailed.Add(1)
		settleStart := time.Now()
		t.settle(Result{Decoder: dec.Name(), Stats: JobStats{QueueWait: wait, DecodeTime: elapsed}}, err)
		e.settleHist.get(dec.Name()).observe(time.Since(settleStart))
		e.finishOwnedTrace(t, err)
		return
	}
	res := Result{
		Support:  est.Support(),
		Estimate: est,
		Decoder:  dec.Name(),
		Stats:    JobStats{QueueWait: wait, DecodeTime: elapsed},
	}
	res.Stats.Residual = e.residual(t.job.Scheme, est, t.job.Y, nm)
	res.Stats.Consistent = res.Stats.Residual <= nm.ResidualSlack(len(t.job.Y))

	e.stats.jobsCompleted.Add(1)
	if res.Stats.Consistent {
		e.stats.consistent.Add(1)
	}
	e.stats.queueWaitNS.Add(int64(wait))
	e.stats.decodeNS.Add(int64(elapsed))
	settleStart := time.Now()
	t.settle(res, nil)
	// The settle timer covers future completion plus the OnDone callback —
	// the stage where campaign accounting and fan-out bookkeeping run.
	e.settleHist.get(dec.Name()).observe(time.Since(settleStart))
	e.finishOwnedTrace(t, nil)
}

// finishOwnedTrace seals and tail-samples a builder the engine itself
// opened in submit; builders created by a caller are the caller's to
// finish.
func (e *Engine) finishOwnedTrace(t *task, err error) {
	if !t.ownTrace {
		return
	}
	if err != nil {
		t.job.Trace.SetError(err.Error())
	}
	e.traces().Offer(t.job.Trace.Finish())
}

// traces returns the engine's trace store (nil when tracing is off).
func (e *Engine) traces() *trace.Store { return e.cfg.Traces }

// settle completes the task's future and then fires OnDone. The job's
// tag and trace ID are stamped on every path so OnDone handlers can
// route the settlement without per-job closures and logs can correlate
// it with its ingress request.
func (t *task) settle(res Result, err error) {
	res.Tag = t.job.Tag
	res.TraceID = t.job.TraceID
	t.fut.complete(res, err)
	if t.job.OnDone != nil {
		t.job.OnDone(res, err)
	}
}

// residual computes the L1 misfit of est against y by scattering the
// estimate's k support entries' edges into a predicted-response vector —
// O(k·deg) work against the graph's entry CSR, where a query-side SpMV
// (as decoder.Residual and earlier revisions do) walks every incidence
// of the design for each job. The integer sums are identical either way.
// Predicted counts pass through the noise model first, so threshold jobs
// compare binarized responses rather than raw counts.
func (e *Engine) residual(s *Scheme, est *bitvec.Vector, y []int64, nm noise.Model) int64 {
	pred := make([]int64, len(y))
	est.ForEachSet(func(i int) {
		qs, mu := s.G.EntryQueries(i)
		for p, j := range qs {
			pred[j] += int64(mu[p])
		}
	})
	var r int64
	for j := range y {
		d := y[j] - nm.TransformExpected(pred[j])
		if d < 0 {
			d = -d
		}
		r += d
	}
	return r
}

// DecoderByName maps a wire-format decoder name to its implementation.
// Accepted names are the decoder Name() strings plus common aliases.
func DecoderByName(name string) (decoder.Decoder, error) {
	switch name {
	case "", "mn":
		return decoder.MN{}, nil
	case "mn-refined", "refined":
		return decoder.Refined{}, nil
	case "bp":
		return decoder.BP{}, nil
	case "greedy-omp", "greedy":
		return decoder.Greedy{}, nil
	case "lp-relaxation", "lp", "cs":
		return decoder.LP{}, nil
	case "exhaustive":
		return decoder.Exhaustive{}, nil
	}
	return nil, fmt.Errorf("engine: unknown decoder %q", name)
}
