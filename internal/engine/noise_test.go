package engine

import (
	"context"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/noise"
	"pooleddata/internal/pooling"
	"pooleddata/internal/rng"
	"pooleddata/internal/threshgt"
)

func TestNoisyJobSelectsRobustDecoder(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	n, k, m := 300, 5, 260
	s, err := e.Scheme(nil, n, m, 9)
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(12))
	nm := noise.Model{Kind: noise.Gaussian, Sigma: 0.5, Seed: 21}
	ys := e.MeasureBatch(s, []*bitvec.Vector{sigma}, nm)

	res, err := e.Decode(context.Background(), Job{Scheme: s, Y: ys[0], K: k, Noise: nm})
	if err != nil {
		t.Fatal(err)
	}
	// The policy, not the caller, picked the decoder for the model.
	if want := noise.SelectDecoder(nm, noise.SchemeParams{N: n, M: m, K: k}).Name(); res.Decoder != want {
		t.Fatalf("decoder %q, want policy's %q", res.Decoder, want)
	}
	if !res.Estimate.Equal(sigma) {
		t.Fatalf("noisy decode missed the signal (overlap %.2f)", bitvec.OverlapFraction(sigma, res.Estimate))
	}
	// The noisy counts misfit any estimate, but the residual slack keeps a
	// correct recovery "consistent".
	if res.Stats.Residual == 0 {
		t.Fatal("residual 0 under gaussian noise is implausible")
	}
	if !res.Stats.Consistent {
		t.Fatalf("correct estimate not consistent within slack (residual %d, slack %d)",
			res.Stats.Residual, nm.ResidualSlack(m))
	}

	// Per-model counters broke the job out under its canonical key.
	st := e.Stats()
	if got := st.JobsByNoise[nm.Key()]; got != 1 {
		t.Fatalf("JobsByNoise[%q] = %d, want 1 (have %v)", nm.Key(), got, st.JobsByNoise)
	}
	if h := st.NoiseLatency[nm.Key()]; h.Count != 1 {
		t.Fatalf("NoiseLatency[%q].Count = %d, want 1", nm.Key(), h.Count)
	}

	// An exact job lands under "exact", separately.
	yExact := e.MeasureBatch(s, []*bitvec.Vector{sigma}, noise.Model{})
	if _, err := e.Decode(context.Background(), Job{Scheme: s, Y: yExact[0], K: k}); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if got := st.JobsByNoise["exact"]; got != 1 {
		t.Fatalf("JobsByNoise[exact] = %d, want 1 (have %v)", got, st.JobsByNoise)
	}
}

func TestExplicitDecoderOverridesNoisePolicy(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	s, err := e.Scheme(nil, 120, 90, 4)
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.Random(120, 3, rng.NewRandSeeded(5))
	nm := noise.Model{Kind: noise.Gaussian, Sigma: 0.5, Seed: 6}
	ys := e.MeasureBatch(s, []*bitvec.Vector{sigma}, nm)
	dec, err := DecoderByName("mn")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Decode(context.Background(), Job{Scheme: s, Y: ys[0], K: 3, Noise: nm, Dec: dec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decoder != "mn" {
		t.Fatalf("explicit decoder overridden: got %q", res.Decoder)
	}
}

func TestNoiseModelValidationAtSubmit(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	s, err := e.Scheme(nil, 50, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := Job{Scheme: s, Y: make([]int64, 30), K: 1, Noise: noise.Model{Kind: "poisson"}}
	if _, err := e.Submit(context.Background(), bad); err == nil {
		t.Fatal("invalid noise model accepted")
	}
}

func TestMeasureBatchNoisyReproducible(t *testing.T) {
	e := New(Config{Workers: 3})
	defer e.Close()
	s, err := e.Scheme(nil, 200, 150, 8)
	if err != nil {
		t.Fatal(err)
	}
	signals := make([]*bitvec.Vector, 4)
	for b := range signals {
		signals[b] = bitvec.Random(200, 4, rng.NewRandSeeded(uint64(60+b)))
	}
	nm := noise.Model{Kind: noise.Gaussian, Sigma: 2, Seed: 31}
	a := e.MeasureBatch(s, signals, nm)
	b := e.MeasureBatch(s, signals, nm)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("seeded noise not reproducible at (%d,%d)", i, j)
			}
		}
	}
	if st := e.Stats(); st.SignalsMeasured != 8 {
		t.Fatalf("signals measured %d, want 8", st.SignalsMeasured)
	}
}

// TestThresholdNoiseAcrossCluster drives threshold-T jobs through a
// multi-shard cluster: the noise model must survive the FNV spec-hash
// routing to the owning shard, select the threshold-GT decoder there,
// and be counted in that shard's per-model stats.
func TestThresholdNoiseAcrossCluster(t *testing.T) {
	const shards = 4
	c := NewCluster(ClusterConfig{Shards: shards, Shard: Config{CacheCapacity: 4, Workers: 1}})
	defer c.Close()

	n, k, T := 400, 8, 2
	m := 500
	des := pooling.RandomRegular{Gamma: threshgt.RecommendedGamma(n, k, T)}
	nm := noise.Model{Kind: noise.Threshold, T: int64(T)}

	// Find seeds whose specs land on two different shards, so the model
	// demonstrably crosses the routing boundary.
	homes := map[int]uint64{}
	for seed := uint64(0); len(homes) < 2 && seed < 64; seed++ {
		h := c.ShardOf(SpecFor(des, n, m, seed))
		if _, ok := homes[h]; !ok {
			homes[h] = seed
		}
	}
	if len(homes) < 2 {
		t.Fatal("could not find specs on two shards")
	}

	for home, seed := range homes {
		s, err := c.Scheme(des, n, m, seed)
		if err != nil {
			t.Fatal(err)
		}
		if s.Home() != home {
			t.Fatalf("scheme home %d, want %d", s.Home(), home)
		}
		sigma := bitvec.Random(n, k, rng.NewRandSeeded(seed^0x5555))
		ys := c.MeasureBatch(s, []*bitvec.Vector{sigma}, nm)
		for j, v := range ys[0] {
			if v != 0 && v != 1 {
				t.Fatalf("threshold response %d at query %d not binary", v, j)
			}
		}
		res, err := c.Decode(context.Background(), Job{Scheme: s, Y: ys[0], K: k, Noise: nm})
		if err != nil {
			t.Fatal(err)
		}
		if res.Decoder != (threshgt.Scored{}).Name() {
			t.Fatalf("shard %d selected %q, want threshold-GT decoder", home, res.Decoder)
		}
		if ov := bitvec.OverlapFraction(sigma, res.Estimate); ov < 0.7 {
			t.Fatalf("shard %d threshold decode overlap %.2f", home, ov)
		}
		// The job was counted on the owning shard under the model key.
		if got := c.Shard(home).Stats().JobsByNoise[nm.Key()]; got != 1 {
			t.Fatalf("shard %d JobsByNoise[%q] = %d, want 1", home, nm.Key(), got)
		}
	}

	// The fleet aggregate merges the per-shard noise maps.
	if got := c.Stats().Total.JobsByNoise[nm.Key()]; got != uint64(len(homes)) {
		t.Fatalf("aggregate JobsByNoise[%q] = %d, want %d", nm.Key(), got, len(homes))
	}
}

func TestNoiseHistogramKeyLimit(t *testing.T) {
	// Noise-model keys embed caller-supplied parameters, so the per-model
	// breakdown must not grow without bound under a sigma sweep: past the
	// limit, new keys collapse into the overflow bucket.
	var s histogramSet
	s.limit = 2
	s.get("gaussian(sigma=0.1)").observe(time.Millisecond)
	s.get("gaussian(sigma=0.2)").observe(time.Millisecond)
	s.get("gaussian(sigma=0.3)").observe(time.Millisecond)
	s.get("gaussian(sigma=0.4)").observe(time.Millisecond)
	snap := s.snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d keys, want 2 + overflow", len(snap))
	}
	if got := snap[overflowKey].Count; got != 2 {
		t.Fatalf("overflow bucket count %d, want 2", got)
	}
	// Established keys keep resolving to their own histogram.
	s.get("gaussian(sigma=0.1)").observe(time.Millisecond)
	if got := s.snapshot()["gaussian(sigma=0.1)"].Count; got != 2 {
		t.Fatalf("existing key count %d, want 2", got)
	}
}
