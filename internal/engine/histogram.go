package engine

import (
	"sync"
	"sync/atomic"
	"time"
)

// latencyBounds are the upper edges of the decode-latency buckets, in
// roughly 1-2.5-5 steps from 100µs to 10s. A fixed array keeps each
// histogram a handful of cache lines and makes snapshots mergeable
// across shards (every histogram shares the same edges); one implicit
// overflow bucket catches everything beyond the last edge.
var latencyBounds = [...]time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// histogram is a bounded-bucket latency histogram. Observations are
// lock-free; snapshots may tear between buckets, which is fine for
// monitoring counters.
type histogram struct {
	counts  [len(latencyBounds) + 1]atomic.Uint64
	totalNS atomic.Int64
	n       atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	b := len(latencyBounds) // overflow bucket
	for i, ub := range latencyBounds {
		if d <= ub {
			b = i
			break
		}
	}
	h.counts[b].Add(1)
	h.totalNS.Add(int64(d))
	h.n.Add(1)
}

// LatencyHistogram is the wire snapshot of a histogram: bucket upper
// edges in nanoseconds plus one trailing overflow bucket, so
// len(Counts) == len(BucketUpperNS)+1.
type LatencyHistogram struct {
	Count         uint64   `json:"count"`
	TotalNS       int64    `json:"total_ns"`
	BucketUpperNS []int64  `json:"bucket_upper_ns"`
	Counts        []uint64 `json:"counts"`
}

func (h *histogram) snapshot() LatencyHistogram {
	s := LatencyHistogram{
		Count:         h.n.Load(),
		TotalNS:       h.totalNS.Load(),
		BucketUpperNS: make([]int64, len(latencyBounds)),
		Counts:        make([]uint64, len(h.counts)),
	}
	for i, ub := range latencyBounds {
		s.BucketUpperNS[i] = int64(ub)
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// merge adds src into dst (same bucket edges by construction).
func (dst *LatencyHistogram) merge(src LatencyHistogram) {
	if dst.BucketUpperNS == nil {
		dst.BucketUpperNS = append([]int64(nil), src.BucketUpperNS...)
		dst.Counts = make([]uint64, len(src.Counts))
	}
	dst.Count += src.Count
	dst.TotalNS += src.TotalNS
	for i := range src.Counts {
		dst.Counts[i] += src.Counts[i]
	}
}

// histogramSet keys histograms by name (decoder names, noise-model
// keys). The read path (one map lookup per completed job) dominates, so
// it uses an RWMutex with a write lock only on the first job of each
// key. limit bounds the number of distinct keys when the key space is
// caller-controlled (noise-model keys embed user-supplied parameters, so
// a sigma sweep must not grow the map — and every /v1/stats payload —
// without bound); past the limit, new keys collapse into overflowKey.
// 0 means unlimited (the decoder-name set is fixed and small).
type histogramSet struct {
	mu    sync.RWMutex
	m     map[string]*histogram
	limit int
}

// overflowKey buckets observations whose key would exceed the set's
// limit.
const overflowKey = "other"

func (s *histogramSet) get(name string) *histogram {
	s.mu.RLock()
	h := s.m[name]
	s.mu.RUnlock()
	if h != nil {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*histogram)
	}
	if h = s.m[name]; h != nil {
		return h
	}
	if s.limit > 0 && len(s.m) >= s.limit {
		if h = s.m[overflowKey]; h == nil {
			h = &histogram{}
			s.m[overflowKey] = h
		}
		return h
	}
	h = &histogram{}
	s.m[name] = h
	return h
}

// LatencySet is the exported form of histogramSet: a bounded, named
// collection of latency histograms sharing the engine's bucket edges,
// for subsystems outside the engine that serve the same histogram shape
// (the campaign store's per-tenant decode latencies). Past limit
// distinct keys, observations collapse into the "other" key; limit 0
// means unbounded. Safe for concurrent use.
type LatencySet struct{ set histogramSet }

// NewLatencySet creates a LatencySet retaining at most limit keys.
func NewLatencySet(limit int) *LatencySet {
	return &LatencySet{set: histogramSet{limit: limit}}
}

// Observe records one latency under key.
func (s *LatencySet) Observe(key string, d time.Duration) { s.set.get(key).observe(d) }

// Snapshot returns the current histograms keyed by name (nil when
// nothing has been observed).
func (s *LatencySet) Snapshot() map[string]LatencyHistogram { return s.set.snapshot() }

func (s *histogramSet) snapshot() map[string]LatencyHistogram {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.m) == 0 {
		return nil
	}
	out := make(map[string]LatencyHistogram, len(s.m))
	for name, h := range s.m {
		out[name] = h.snapshot()
	}
	return out
}
