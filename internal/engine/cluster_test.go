package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
)

func bitvecRandom(t testing.TB, n, k int, seed uint64) *bitvec.Vector {
	t.Helper()
	return bitvec.Random(n, k, rng.NewRandSeeded(seed))
}

// findSeedsOnDistinctShards returns two seeds whose (default design,
// n, m) specs hash to different shards of c.
func findSeedsOnDistinctShards(t testing.TB, c *Cluster, n, m int) (uint64, uint64) {
	t.Helper()
	first := uint64(1)
	fs := c.ShardOf(SpecFor(pooling.RandomRegular{}, n, m, first))
	for seed := first + 1; seed < first+64; seed++ {
		if c.ShardOf(SpecFor(pooling.RandomRegular{}, n, m, seed)) != fs {
			return first, seed
		}
	}
	t.Fatal("no seed pair landed on distinct shards")
	return 0, 0
}

func TestClusterRoutesSpecsToOwningShard(t *testing.T) {
	c := NewCluster(ClusterConfig{Shards: 4, Shard: Config{Workers: 1}})
	defer c.Close()

	built := 0
	for seed := uint64(1); seed <= 8; seed++ {
		spec := SpecFor(pooling.RandomRegular{}, 120, 60, seed)
		want := c.ShardOf(spec)
		s, err := c.Scheme(pooling.RandomRegular{}, 120, 60, seed)
		if err != nil {
			t.Fatal(err)
		}
		if s.Home() != want {
			t.Fatalf("seed %d: scheme home %d, ShardOf says %d", seed, s.Home(), want)
		}
		built++
		// Repeat request: identical pointer from the owning shard's cache.
		again, err := c.Scheme(pooling.RandomRegular{}, 120, 60, seed)
		if err != nil {
			t.Fatal(err)
		}
		if again != s {
			t.Fatalf("seed %d: cache hit returned a different pointer", seed)
		}
	}

	cs := c.Stats()
	if cs.Total.SchemesBuilt != uint64(built) || cs.Total.CacheHits != uint64(built) {
		t.Fatalf("total stats = %+v, want %d builds and hits", cs.Total, built)
	}
	var sumBuilt, sumCached uint64
	for i, sh := range cs.Shards {
		if sh.Shard != i {
			t.Fatalf("shard %d labeled %d", i, sh.Shard)
		}
		sumBuilt += sh.SchemesBuilt
		sumCached += uint64(sh.CachedSchemes)
	}
	if sumBuilt != uint64(built) || sumCached != uint64(built) {
		t.Fatalf("per-shard sums: built %d cached %d, want %d", sumBuilt, sumCached, built)
	}
}

func TestClusterNoCrossShardEviction(t *testing.T) {
	// Per-shard capacity 1: if both designs lived on one shard they would
	// evict each other on every alternation. On distinct shards the
	// pointers survive the whole interleaving.
	c := NewCluster(ClusterConfig{Shards: 2, Shard: Config{CacheCapacity: 1, Workers: 1}})
	defer c.Close()
	const n, m = 150, 70
	seedA, seedB := findSeedsOnDistinctShards(t, c, n, m)

	a0, err := c.Scheme(nil, n, m, seedA)
	if err != nil {
		t.Fatal(err)
	}
	b0, err := c.Scheme(nil, n, m, seedB)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a, _ := c.Scheme(nil, n, m, seedA)
		b, _ := c.Scheme(nil, n, m, seedB)
		if a != a0 || b != b0 {
			t.Fatalf("iteration %d: scheme identity lost (cross-shard eviction)", i)
		}
	}
	if ev := c.Stats().Total.Evictions; ev != 0 {
		t.Fatalf("evictions = %d, want 0", ev)
	}
}

func TestClusterSubmitRoutesToOwner(t *testing.T) {
	c := NewCluster(ClusterConfig{Shards: 3, Shard: Config{Workers: 1}})
	defer c.Close()
	const n, k, m = 200, 4, 150
	s, err := c.Scheme(nil, n, m, 5)
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvecRandom(t, n, k, 31)
	y := query.Execute(s.G, sigma, query.Options{}).Y

	res, err := c.Decode(context.Background(), Job{Scheme: s, Y: y, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Estimate.Equal(sigma) {
		t.Fatal("cluster decode failed to recover the signal")
	}
	// Exactly the owning shard moved its counters.
	cs := c.Stats()
	for i, sh := range cs.Shards {
		want := uint64(0)
		if i == s.Home() {
			want = 1
		}
		if sh.JobsCompleted != want {
			t.Fatalf("shard %d completed %d jobs, want %d", i, sh.JobsCompleted, want)
		}
	}
	if _, err := c.Submit(context.Background(), Job{}); err == nil {
		t.Fatal("nil-scheme job accepted by cluster")
	}
}

func TestClusterSchemeFromGraphContentHashPlacement(t *testing.T) {
	c := NewCluster(ClusterConfig{Shards: 4, Shard: Config{Workers: 1}})
	defer c.Close()

	// Re-uploading the same design always lands on the same shard: the
	// content hash, not the upload order, decides placement.
	g, err := pooling.RandomRegular{}.Build(50, 20, pooling.BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := c.SchemeFromGraph(g)
	if first.RouteKey() != GraphKey(g) {
		t.Fatalf("ad-hoc scheme route key %q, want content hash %q", first.RouteKey(), GraphKey(g))
	}
	for i := 0; i < 4; i++ {
		if home := c.SchemeFromGraph(g).Home(); home != first.Home() {
			t.Fatalf("re-upload %d landed on shard %d, first upload on %d", i, home, first.Home())
		}
	}

	// An identical rebuild (same bytes, different *graph.Bipartite) hashes
	// the same; a different design hashes differently.
	g2, err := pooling.RandomRegular{}.Build(50, 20, pooling.BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if GraphKey(g2) != GraphKey(g) {
		t.Fatal("identical graphs produced different content hashes")
	}
	other, err := pooling.RandomRegular{}.Build(50, 20, pooling.BuildOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if GraphKey(other) == GraphKey(g) {
		t.Fatal("distinct graphs produced the same content hash")
	}

	// Across many distinct uploads, placement spreads over the fleet.
	seen := map[int]int{}
	for seed := uint64(1); seed <= 32; seed++ {
		gi, err := pooling.RandomRegular{}.Build(50, 20, pooling.BuildOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		seen[c.SchemeFromGraph(gi).Home()]++
	}
	if len(seen) < 2 {
		t.Fatalf("32 distinct uploads all landed on one shard: %v", seen)
	}
}

func TestClusterInstallScheme(t *testing.T) {
	c := NewCluster(ClusterConfig{Shards: 2, Shard: Config{Workers: 1}})
	defer c.Close()
	const n, k, m = 120, 3, 90
	g, err := pooling.RandomRegular{}.Build(n, m, pooling.BuildOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Design: "file:standing.csv", N: n, M: m}
	s := c.InstallScheme(spec, g)
	if s.Home() != c.ShardOf(spec) {
		t.Fatalf("installed scheme home %d, ShardOf says %d", s.Home(), c.ShardOf(spec))
	}
	if got := c.Shard(s.Home()).CachedSchemes(); got != 1 {
		t.Fatalf("owning shard caches %d schemes, want 1", got)
	}
	sigma := bitvecRandom(t, n, k, 17)
	y := query.Execute(g, sigma, query.Options{}).Y
	res, err := c.Decode(context.Background(), Job{Scheme: s, Y: y, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Estimate.Equal(sigma) {
		t.Fatal("decode on installed scheme failed")
	}
	if st := c.Stats().Total; st.SchemesBuilt != 0 {
		t.Fatalf("install counted as a build: %+v", st)
	}
}

func TestTrySubmitSaturated(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 1})
	defer e.Close()
	g, _, y := testInstance(t, 60, 3, 40)
	s := e.SchemeFromGraph(g)
	release := make(chan struct{})

	// Wedge the worker, wait for pickup, then fill the queue.
	wedge, err := e.Submit(context.Background(), Job{Scheme: s, Y: y, K: 3, Dec: blockingDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for e.QueueDepth() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	queued, err := e.Submit(context.Background(), Job{Scheme: s, Y: y, K: 3, Dec: blockingDecoder{release}})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Saturated() {
		t.Fatal("queue not saturated after filling it")
	}

	if _, err := e.TrySubmit(context.Background(), Job{Scheme: s, Y: y, K: 3}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("TrySubmit on a full queue: err = %v, want ErrSaturated", err)
	}
	e.NoteRejected(3)
	if st := e.Stats(); st.JobsRejected != 4 {
		t.Fatalf("jobs rejected = %d, want 4", st.JobsRejected)
	}

	close(release)
	if _, err := wedge.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := queued.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// With the pool free again TrySubmit admits.
	fut, err := e.TrySubmit(context.Background(), Job{Scheme: s, Y: y, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyHistograms(t *testing.T) {
	c := NewCluster(ClusterConfig{Shards: 2, Shard: Config{Workers: 1}})
	defer c.Close()
	const n, k, m = 150, 3, 110
	seedA, seedB := findSeedsOnDistinctShards(t, c, n, m)
	for _, seed := range []uint64{seedA, seedB} {
		s, err := c.Scheme(nil, n, m, seed)
		if err != nil {
			t.Fatal(err)
		}
		sigma := bitvecRandom(t, n, k, seed+100)
		y := query.Execute(s.G, sigma, query.Options{}).Y
		if _, err := c.Decode(context.Background(), Job{Scheme: s, Y: y, K: k}); err != nil {
			t.Fatal(err)
		}
	}

	total := c.Stats().Total
	h, ok := total.DecodeLatency["mn"]
	if !ok {
		t.Fatalf("no merged histogram for mn: %v", total.DecodeLatency)
	}
	if h.Count != 2 {
		t.Fatalf("histogram count = %d, want 2 (one decode per shard)", h.Count)
	}
	if len(h.Counts) != len(h.BucketUpperNS)+1 {
		t.Fatalf("histogram shape: %d counts for %d bounds", len(h.Counts), len(h.BucketUpperNS))
	}
	var sum uint64
	for _, cnt := range h.Counts {
		sum += cnt
	}
	if sum != h.Count || h.TotalNS <= 0 {
		t.Fatalf("histogram sum %d total %dns, want sum=%d and total>0", sum, h.TotalNS, h.Count)
	}
	// The raw samples are bounded: only bucket counters are retained.
	for _, sh := range c.Stats().Shards {
		for name, hist := range sh.DecodeLatency {
			if len(hist.Counts) != len(latencyBounds)+1 {
				t.Fatalf("shard %d decoder %s: %d buckets", sh.Shard, name, len(hist.Counts))
			}
		}
	}
}
