package engine

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"

	"pooleddata/internal/graph"
	"pooleddata/internal/pooling"
	"pooleddata/internal/sparse"
)

// Spec identifies a pooling scheme for caching: two requests with equal
// specs receive the same immutable scheme. Design strings include the
// design's parameters, so RandomRegular{Gamma: 7} and the default never
// collide.
type Spec struct {
	Design string
	N, M   int
	Seed   uint64
}

// SpecFor derives the cache key of a design instance. The design value's
// fields are folded into the key, so differently-parameterized designs of
// the same family cache separately.
func SpecFor(des pooling.Design, n, m int, seed uint64) Spec {
	return Spec{Design: fmt.Sprintf("%s%+v", des.Name(), des), N: n, M: m, Seed: seed}
}

// Key is the canonical routing/identity string of a spec — the value
// hashed onto the consistent-hash ring, stable across processes and
// restarts.
func (sp Spec) Key() string {
	return fmt.Sprintf("%s|%d|%d|%d", sp.Design, sp.N, sp.M, sp.Seed)
}

// GraphKey is the content-addressed routing key of an ad-hoc design: an
// FNV-1a digest over the graph's full query-side incidence (dimensions,
// entries, multiplicities). Re-uploading byte-identical pool definitions
// yields the same key, so ad-hoc schemes land on the same shard across
// uploads and membership changes.
func GraphKey(g *graph.Bipartite) string {
	h := fnv.New64a()
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		h.Write(buf[:binary.PutUvarint(buf[:], v)])
	}
	put(uint64(g.N()))
	put(uint64(g.M()))
	for j := 0; j < g.M(); j++ {
		ent, mul := g.QueryEntries(j)
		put(uint64(len(ent)))
		for p := range ent {
			put(uint64(ent[p]))
			put(uint64(mul[p]))
		}
	}
	return "adhoc|" + strconv.FormatUint(h.Sum64(), 16)
}

// Scheme is a cached pooling design: the immutable bipartite graph plus
// the lazily-built query-side multiplicity matrix shared by every job
// that verifies residuals against this design. Safe for concurrent use.
type Scheme struct {
	// Spec is the cache key; zero for ad-hoc schemes wrapped from a graph.
	Spec Spec
	// G is the pooling graph. Immutable after construction.
	G *graph.Bipartite

	// home is the index of the engine shard owning this scheme inside a
	// Cluster (0 for standalone engines). Set at construction, before the
	// scheme is published. It records where the scheme was created; ring
	// routing re-resolves the owner by key at submit time, so a stale
	// home after a membership change only affects fair-queue grouping,
	// never correctness.
	home int

	// key is the consistent-hash routing key: the spec key for parametric
	// schemes, a content hash for ad-hoc graphs. Empty for schemes from a
	// standalone Engine; Cluster.Owner falls back to home for those. Set
	// before the scheme is published, so routing never races.
	key string

	qmatOnce sync.Once
	qmat     *sparse.CSR

	extOnce sync.Once
	ext     any
}

// Home reports the cluster shard index this scheme was created on (0
// when the scheme came from a standalone Engine). With ring routing this
// is a creation-time snapshot used for fair-queue grouping and stats;
// ownership is re-resolved from RouteKey on every submit.
func (s *Scheme) Home() int { return s.home }

// RouteKey is the consistent-hash key the cluster routes this scheme by:
// the canonical spec key for parametric schemes, a content hash for
// ad-hoc uploads, or "" for schemes created outside a cluster (those
// fall back to their home index).
func (s *Scheme) RouteKey() string { return s.key }

// SetRouteKey overrides the routing key. Only valid before the scheme
// is published to other goroutines. The worker-install path uses it:
// the frontend already owns fleet placement and ships the canonical key
// as the install id, so adopting that id keys the worker's routing and
// per-scheme load accounting under the same name the frontend resolves
// owners by — the content-hash default would diverge for parametric
// schemes, which cross the wire as design CSVs.
func (s *Scheme) SetRouteKey(key string) {
	if key != "" {
		s.key = key
	}
}

// NewSchemeAt wraps a prebuilt graph as a scheme owned by cluster shard
// home — the constructor alternative Shard implementations (the remote
// shard client) use so the schemes they hand out route back to them
// inside a Cluster. spec may be zero for ad-hoc designs; non-zero specs
// stamp the spec routing key, ad-hoc schemes get their content hash.
func NewSchemeAt(spec Spec, g *graph.Bipartite, home int) *Scheme {
	key := ""
	if spec != (Spec{}) {
		key = spec.Key()
	} else if g != nil {
		key = GraphKey(g)
	}
	return &Scheme{Spec: spec, G: g, home: home, key: key}
}

// Ext returns the caller-side wrapper attached to this scheme, creating
// it with make on first use. Front-ends (the public pooled.Engine) use it
// to keep cache hits pointer-identical across their own wrapper types;
// the wrapper's lifetime is tied to the cached scheme's.
func (s *Scheme) Ext(make func() any) any {
	s.extOnce.Do(func() { s.ext = make() })
	return s.ext
}

// QueryMatrix returns the m×n query-side multiplicity matrix of the
// design, building it on first use and sharing it afterwards.
func (s *Scheme) QueryMatrix() *sparse.CSR {
	s.qmatOnce.Do(func() { s.qmat = sparse.QueryMultiplicity(s.G) })
	return s.qmat
}

// cacheEntry is one cache slot. ready is closed when the build finished
// (successfully or not); goroutines that find an entry before that joined
// an in-flight build and wait instead of building again.
type cacheEntry struct {
	spec   Spec
	ready  chan struct{}
	scheme *Scheme
	err    error
}

func (en *cacheEntry) done() bool {
	select {
	case <-en.ready:
		return true
	default:
		return false
	}
}

// cache is an LRU scheme cache with build deduplication.
type cache struct {
	mu sync.Mutex
	// home is the shard index stamped on every scheme this cache
	// creates. Atomic: membership changes re-stamp it from the cluster
	// mutation path while builds read it concurrently.
	home    atomic.Int64
	cap     int
	bys     map[Spec]*list.Element
	lru     *list.List // front = most recently used; values are *cacheEntry
	metrics *counters
}

func newCache(capacity int, metrics *counters) *cache {
	return &cache{cap: capacity, bys: make(map[Spec]*list.Element), lru: list.New(), metrics: metrics}
}

// get returns the scheme for spec, running build at most once per miss.
// Concurrent callers for the same spec share a single build; failed
// builds are not cached, so a later call retries.
func (c *cache) get(spec Spec, build func() (*graph.Bipartite, error)) (*Scheme, error) {
	c.mu.Lock()
	if el, ok := c.bys[spec]; ok {
		ent := el.Value.(*cacheEntry)
		c.lru.MoveToFront(el)
		if ent.done() {
			c.metrics.cacheHits.Add(1)
		} else {
			c.metrics.buildsDeduped.Add(1)
		}
		c.mu.Unlock()
		<-ent.ready
		return ent.scheme, ent.err
	}
	ent := &cacheEntry{spec: spec, ready: make(chan struct{})}
	el := c.lru.PushFront(ent)
	c.bys[spec] = el
	c.evictLocked()
	c.mu.Unlock()

	g, err := build()
	c.mu.Lock()
	if err != nil {
		ent.err = err
		c.metrics.buildFailures.Add(1)
		// Drop the failed entry (it may already have been evicted).
		if cur, ok := c.bys[spec]; ok && cur == el {
			delete(c.bys, spec)
			c.lru.Remove(el)
		}
	} else {
		ent.scheme = &Scheme{Spec: spec, G: g, home: int(c.home.Load()), key: spec.Key()}
		c.metrics.schemesBuilt.Add(1)
	}
	c.mu.Unlock()
	close(ent.ready)
	return ent.scheme, ent.err
}

// put installs a prebuilt graph under spec as a completed entry,
// replacing any existing entry for that spec (in-flight builds keep
// serving their waiters; the map simply points at the new entry). This
// is the warm-start path, so no build counters move.
func (c *cache) put(spec Spec, g *graph.Bipartite) *Scheme {
	ent := &cacheEntry{spec: spec, ready: make(chan struct{}), scheme: &Scheme{Spec: spec, G: g, home: int(c.home.Load()), key: spec.Key()}}
	close(ent.ready)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.bys[spec]; ok {
		c.lru.Remove(el)
		delete(c.bys, spec)
	}
	c.bys[spec] = c.lru.PushFront(ent)
	c.evictLocked()
	return ent.scheme
}

// evictLocked trims the cache to capacity, oldest first, skipping entries
// whose build is still in flight (their waiters hold the entry anyway, so
// evicting them would only duplicate work).
func (c *cache) evictLocked() {
	for len(c.bys) > c.cap {
		victim := (*list.Element)(nil)
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			if el.Value.(*cacheEntry).done() {
				victim = el
				break
			}
		}
		if victim == nil {
			return // everything beyond capacity is still building
		}
		ent := victim.Value.(*cacheEntry)
		delete(c.bys, ent.spec)
		c.lru.Remove(victim)
		c.metrics.evictions.Add(1)
	}
}

// len reports the number of cached (or in-flight) schemes.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bys)
}
