package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync/atomic"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/noise"
	"pooleddata/internal/pooling"
)

// Shard is one shard of the reconstruction fleet: the surface campaign
// dispatch, the pooledd front-end, and the cluster router need from a
// scheme-cache-plus-decode-pipeline, whether it runs in this process or
// on another machine. *Engine implements it in-process; internal/remote
// implements it over HTTP against a `pooledd -worker`, so a Cluster
// composes local and remote shards transparently — Job.Tag/OnDone
// fan-out, noise-model decoder selection, and ErrSaturated backpressure
// all work unchanged across the boundary.
type Shard interface {
	// Scheme returns the shard's cached scheme for the design instance,
	// building it at most once per spec.
	Scheme(des pooling.Design, n, m int, seed uint64) (*Scheme, error)
	// SchemeFromGraph wraps a prebuilt ad-hoc design (an uploaded labio
	// CSV) as a scheme owned by this shard.
	SchemeFromGraph(g *graph.Bipartite) *Scheme
	// InstallScheme installs a prebuilt design under spec — the
	// warm-start path for design files loaded at boot.
	InstallScheme(spec Spec, g *graph.Bipartite) *Scheme

	// Submit enqueues a decode job, blocking while the queue is full.
	// TrySubmit and Offer are its admission-controlled forms: a full
	// queue returns ErrSaturated immediately, with (TrySubmit) and
	// without (Offer) the rejection accounting.
	Submit(ctx context.Context, job Job) (*Future, error)
	TrySubmit(ctx context.Context, job Job) (*Future, error)
	Offer(ctx context.Context, job Job) (*Future, error)

	// MeasureBatch evaluates the signals against the scheme under the
	// noise model (zero model: exact counts).
	MeasureBatch(s *Scheme, signals []*bitvec.Vector, nm noise.Model) [][]int64

	// Saturated reports whether the decode queue is full right now — the
	// batch admission-control signal. NoteRejected records rejections a
	// caller decided on that signal.
	Saturated() bool
	NoteRejected(n int)

	// Live gauges for stats and admission heuristics.
	QueueDepth() int
	QueueCapacity() int
	Workers() int
	CachedSchemes() int

	// Healthy reports whether the shard can take work — always true for
	// local shards; remote shards report their probe state. Addr is the
	// shard's remote address, empty for local shards.
	Healthy() bool
	Addr() string

	Stats() Stats
	Close()
}

// HomeSetter is implemented by shards that stamp an owning-shard index
// on the schemes they create (both *Engine and the remote client do).
// NewClusterOf calls it with each shard's position so Scheme.Home
// routing works for any Shard implementation.
type HomeSetter interface{ SetHome(i int) }

// ClusterConfig sizes a Cluster of local engine shards.
type ClusterConfig struct {
	// Shards is the number of engine shards; 0 means 1.
	Shards int
	// Shard sizes each shard: its scheme cache, worker pool, and decode
	// queue are all private to the shard. A zero Shard.Workers splits
	// GOMAXPROCS evenly across the shards (at least one worker each)
	// rather than giving every shard a full GOMAXPROCS pool.
	Shard Config
}

func (c ClusterConfig) shards() int {
	if c.Shards <= 0 {
		return 1
	}
	return c.Shards
}

// Cluster shards the reconstruction engine: N independent Shards, each
// with its own scheme cache and decode worker pool. Schemes are routed
// to the owning shard by an FNV-1a hash of the canonical spec key
// (design, n, m, seed), so one tenant's design can never evict another
// tenant's cached scheme or starve its decode queue — the partitioned
// form of the paper's one-design/many-signals regime (fix the design,
// parallelize the per-signal work; shard by design so tenants compose).
//
// A Cluster exposes the same operational surface as a single Engine
// (Scheme, Submit, Decode, DecodeBatch, MeasureBatch, Stats, Close);
// jobs carry their scheme, and the scheme remembers its owning shard.
// Shards may live in this process (NewCluster) or on other machines
// behind the Shard interface (NewClusterOf with remote shard clients).
type Cluster struct {
	shards []Shard
	next   atomic.Uint64 // round-robin placement of ad-hoc schemes
}

// NewCluster starts cfg.Shards local engine shards.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Shard.Workers <= 0 {
		w := runtime.GOMAXPROCS(0) / cfg.shards()
		if w < 1 {
			w = 1
		}
		cfg.Shard.Workers = w
	}
	shards := make([]Shard, cfg.shards())
	for i := range shards {
		shards[i] = New(cfg.Shard)
	}
	return NewClusterOf(shards...)
}

// NewClusterOf assembles a cluster over preconstructed shards — local
// engines, remote shard clients, or a mix. Each shard is told its index
// (via HomeSetter) before first use, so the schemes it creates route
// back to it.
func NewClusterOf(shards ...Shard) *Cluster {
	if len(shards) == 0 {
		panic("engine: NewClusterOf with no shards")
	}
	for i, sh := range shards {
		if hs, ok := sh.(HomeSetter); ok {
			hs.SetHome(i)
		}
	}
	return &Cluster{shards: shards}
}

// Close closes every shard, draining their queues.
func (c *Cluster) Close() {
	for _, e := range c.shards {
		e.Close()
	}
}

// Shards reports the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard returns shard i (stats, tests, warm-start logging).
func (c *Cluster) Shard(i int) Shard { return c.shards[i] }

// ShardOf reports the index of the shard owning spec: an FNV-1a hash of
// the canonical spec key modulo the shard count.
func (c *Cluster) ShardOf(spec Spec) int { return shardIndex(spec, len(c.shards)) }

func shardIndex(spec Spec, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d", spec.Design, spec.N, spec.M, spec.Seed)
	return int(h.Sum64() % uint64(n))
}

// Owner returns the shard that owns s. Schemes from outside the cluster
// (a standalone Engine, a zero wrapper) fall back to shard 0.
func (c *Cluster) Owner(s *Scheme) Shard {
	i := s.home
	if i < 0 || i >= len(c.shards) {
		i = 0
	}
	return c.shards[i]
}

// Scheme routes the (design, n, m, seed) request to the owning shard's
// cache. The sharing guarantees of Engine.Scheme hold per shard: repeat
// requests return the identical pointer, concurrent builds dedupe.
func (c *Cluster) Scheme(des pooling.Design, n, m int, seed uint64) (*Scheme, error) {
	if des == nil {
		des = pooling.RandomRegular{}
	}
	return c.shards[c.ShardOf(SpecFor(des, n, m, seed))].Scheme(des, n, m, seed)
}

// SchemeFromGraph wraps a prebuilt design as an uncached scheme and
// assigns it a shard round-robin, spreading ad-hoc uploads over the
// fleet.
func (c *Cluster) SchemeFromGraph(g *graph.Bipartite) *Scheme {
	i := int((c.next.Add(1) - 1) % uint64(len(c.shards)))
	return c.shards[i].SchemeFromGraph(g)
}

// InstallScheme warm-starts the owning shard's cache with a prebuilt
// design under spec (the -designs boot path of pooledd).
func (c *Cluster) InstallScheme(spec Spec, g *graph.Bipartite) *Scheme {
	return c.shards[c.ShardOf(spec)].InstallScheme(spec, g)
}

// Submit enqueues the job on its scheme's owning shard.
func (c *Cluster) Submit(ctx context.Context, job Job) (*Future, error) {
	if err := validateJob(job); err != nil {
		return nil, err
	}
	return c.Owner(job.Scheme).Submit(ctx, job)
}

// TrySubmit is Submit with admission control: a saturated shard queue
// returns ErrSaturated instead of blocking.
func (c *Cluster) TrySubmit(ctx context.Context, job Job) (*Future, error) {
	if err := validateJob(job); err != nil {
		return nil, err
	}
	return c.Owner(job.Scheme).TrySubmit(ctx, job)
}

// Offer is TrySubmit without the rejection accounting — the retry path
// of a cooperative scheduler whose jobs were already admitted (the
// campaign dispatcher).
func (c *Cluster) Offer(ctx context.Context, job Job) (*Future, error) {
	if err := validateJob(job); err != nil {
		return nil, err
	}
	return c.Owner(job.Scheme).Offer(ctx, job)
}

// Decode runs one job through its owning shard's pipeline.
func (c *Cluster) Decode(ctx context.Context, job Job) (Result, error) {
	if err := validateJob(job); err != nil {
		return Result{}, err
	}
	fut, err := c.Owner(job.Scheme).Submit(ctx, job)
	if err != nil {
		return Result{}, err
	}
	return fut.Wait(ctx)
}

// DecodeBatch pipelines one decode job per count vector through the
// scheme's owning shard and waits for all of them. The job template's
// Noise and Dec fields apply to every job. Results are in input order;
// the first decode error (or ctx error) is returned after every
// submitted job has settled, alongside the partial results.
func (c *Cluster) DecodeBatch(ctx context.Context, s *Scheme, ys [][]int64, k int, job Job) ([]Result, error) {
	return decodeBatchOn(c.Owner(s), ctx, s, ys, k, job)
}

// decodeBatchOn is the shared submit-all-then-wait-all batch loop of
// Engine.DecodeBatch and Cluster.DecodeBatch.
func decodeBatchOn(sh Shard, ctx context.Context, s *Scheme, ys [][]int64, k int, job Job) ([]Result, error) {
	futs := make([]*Future, len(ys))
	results := make([]Result, len(ys))
	var firstErr error
	for b, y := range ys {
		j := job
		j.Scheme, j.Y, j.K = s, y, k
		fut, err := sh.Submit(ctx, j)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		futs[b] = fut
	}
	for b, fut := range futs {
		if fut == nil {
			continue
		}
		res, err := fut.Wait(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		results[b] = res
	}
	return results, firstErr
}

// MeasureBatch evaluates the signals on the scheme's owning shard under
// the given noise model (zero model: exact counts).
func (c *Cluster) MeasureBatch(s *Scheme, signals []*bitvec.Vector, nm noise.Model) [][]int64 {
	return c.Owner(s).MeasureBatch(s, signals, nm)
}

// ShardStats is one shard's counters plus its live queue gauges.
type ShardStats struct {
	Stats
	Shard         int `json:"shard"`
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	Workers       int `json:"workers"`
	CachedSchemes int `json:"cached_schemes"`
	// Healthy is always true for local shards; remote shards report
	// their probe state. Addr is empty for local shards.
	Healthy bool   `json:"healthy"`
	Addr    string `json:"addr,omitempty"`
}

// ClusterStats aggregates the fleet: Total sums every shard's counters
// (histograms merge bucket-wise), Shards carries the per-shard
// breakdown.
type ClusterStats struct {
	Total  Stats        `json:"total"`
	Shards []ShardStats `json:"shards"`
}

// Stats snapshots every shard and the fleet-wide aggregate.
func (c *Cluster) Stats() ClusterStats {
	cs := ClusterStats{Shards: make([]ShardStats, len(c.shards))}
	for i, e := range c.shards {
		st := e.Stats()
		cs.Shards[i] = ShardStats{
			Stats:         st,
			Shard:         i,
			QueueDepth:    e.QueueDepth(),
			QueueCapacity: e.QueueCapacity(),
			Workers:       e.Workers(),
			CachedSchemes: e.CachedSchemes(),
			Healthy:       e.Healthy(),
			Addr:          e.Addr(),
		}
		cs.Total.add(st)
	}
	return cs
}
