package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/graph"
	"pooleddata/internal/noise"
	"pooleddata/internal/pooling"
)

// Shard is one shard of the reconstruction fleet: the surface campaign
// dispatch, the pooledd front-end, and the cluster router need from a
// scheme-cache-plus-decode-pipeline, whether it runs in this process or
// on another machine. *Engine implements it in-process; internal/remote
// implements it over HTTP against a `pooledd -worker`, so a Cluster
// composes local and remote shards transparently — Job.Tag/OnDone
// fan-out, noise-model decoder selection, and ErrSaturated backpressure
// all work unchanged across the boundary.
type Shard interface {
	// Scheme returns the shard's cached scheme for the design instance,
	// building it at most once per spec.
	Scheme(des pooling.Design, n, m int, seed uint64) (*Scheme, error)
	// SchemeFromGraph wraps a prebuilt ad-hoc design (an uploaded labio
	// CSV) as a scheme owned by this shard.
	SchemeFromGraph(g *graph.Bipartite) *Scheme
	// InstallScheme installs a prebuilt design under spec — the
	// warm-start path for design files loaded at boot.
	InstallScheme(spec Spec, g *graph.Bipartite) *Scheme

	// Submit enqueues a decode job, blocking while the queue is full.
	// TrySubmit and Offer are its admission-controlled forms: a full
	// queue returns ErrSaturated immediately, with (TrySubmit) and
	// without (Offer) the rejection accounting.
	Submit(ctx context.Context, job Job) (*Future, error)
	TrySubmit(ctx context.Context, job Job) (*Future, error)
	Offer(ctx context.Context, job Job) (*Future, error)

	// MeasureBatch evaluates the signals against the scheme under the
	// noise model (zero model: exact counts).
	MeasureBatch(s *Scheme, signals []*bitvec.Vector, nm noise.Model) [][]int64

	// Saturated reports whether the decode queue is full right now — the
	// batch admission-control signal. NoteRejected records rejections a
	// caller decided on that signal.
	Saturated() bool
	NoteRejected(n int)

	// Live gauges for stats and admission heuristics.
	QueueDepth() int
	QueueCapacity() int
	Workers() int
	CachedSchemes() int

	// Healthy reports whether the shard can take work — always true for
	// local shards; remote shards report their probe state. Addr is the
	// shard's remote address, empty for local shards.
	Healthy() bool
	Addr() string

	Stats() Stats
	Close()
}

// HomeSetter is implemented by shards that stamp an owning-shard index
// on the schemes they create (both *Engine and the remote client do).
// The cluster calls it with each shard's position on every membership
// change so Scheme.Home (fair-queue grouping, stats) tracks the current
// view for newly created schemes.
type HomeSetter interface{ SetHome(i int) }

// ErrShardUnavailable marks a job settlement caused by the owning shard
// being unreachable rather than by the job itself — the remote client's
// ErrWorkerUnavailable wraps it. The campaign dispatcher matches it with
// errors.Is to re-dispatch the orphaned job to a surviving shard instead
// of failing the campaign.
var ErrShardUnavailable = errors.New("engine: shard unavailable")

// ErrLastShard is returned by RemoveShard when removal would leave the
// cluster with no members.
var ErrLastShard = errors.New("engine: cannot remove the last shard")

// ErrUnknownShard is returned by RemoveShard for an ID not in the
// current membership.
var ErrUnknownShard = errors.New("engine: unknown shard")

// ErrDuplicateShard is returned by AddShard for an ID already in the
// current membership.
var ErrDuplicateShard = errors.New("engine: duplicate shard id")

// ClusterConfig sizes a Cluster of local engine shards.
type ClusterConfig struct {
	// Shards is the number of engine shards; 0 means 1.
	Shards int
	// Shard sizes each shard: its scheme cache, worker pool, and decode
	// queue are all private to the shard. A zero Shard.Workers splits
	// GOMAXPROCS evenly across the shards (at least one worker each)
	// rather than giving every shard a full GOMAXPROCS pool.
	Shard Config
}

func (c ClusterConfig) shards() int {
	if c.Shards <= 0 {
		return 1
	}
	return c.Shards
}

// member is one ring participant: a stable ID plus its shard.
type member struct {
	id string
	sh Shard
}

// view is an immutable membership snapshot: the member list, the ID
// index, and the consistent-hash ring over the member IDs. The cluster
// publishes a new view on every membership change; readers load the
// current one with a single atomic pointer load and never take a lock.
type view struct {
	members []member
	byID    map[string]int
	ring    *Ring
}

func newView(members []member) *view {
	ids := make([]string, len(members))
	byID := make(map[string]int, len(members))
	for i, m := range members {
		ids[i] = m.id
		byID[m.id] = i
	}
	return &view{members: members, byID: byID, ring: NewRing(ids, DefaultVnodes)}
}

// Cluster shards the reconstruction engine: N independent Shards, each
// with its own scheme cache and decode worker pool. Schemes are routed
// to their owning shard by a consistent-hash ring (DefaultVnodes virtual
// nodes per member) over the scheme's routing key — the canonical spec
// key for parametric designs, a content hash for ad-hoc uploads — so one
// tenant's design can never evict another tenant's cached scheme or
// starve its decode queue, and growing or shrinking the fleet moves only
// ~K/N of the keyspace instead of reshuffling everything (the partitioned
// form of the paper's one-design/many-signals regime: fix the design,
// parallelize the per-signal work; shard by design so tenants compose).
//
// Membership is mutable at runtime: AddShard and RemoveShard build a new
// immutable view (member list + ring) and swap it in via atomic pointer,
// so the decode hot path stays lock-free — Owner is one atomic load plus
// one binary search. Ownership is re-resolved from the scheme's routing
// key on every submit, so jobs queued against a since-removed shard
// automatically route to the key's new owner; unhealthy-but-not-yet-
// evicted members are skipped by walking the ring to the next healthy
// member.
//
// A Cluster exposes the same operational surface as a single Engine
// (Scheme, Submit, Decode, DecodeBatch, MeasureBatch, Stats, Close);
// shards may live in this process (NewCluster) or on other machines
// behind the Shard interface (NewClusterOf with remote shard clients).
type Cluster struct {
	cur atomic.Pointer[view]
	mu  sync.Mutex // serializes membership changes

	adds, removes atomic.Uint64 // lifetime membership-change counters
}

// NewCluster starts cfg.Shards local engine shards.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Shard.Workers <= 0 {
		w := runtime.GOMAXPROCS(0) / cfg.shards()
		if w < 1 {
			w = 1
		}
		cfg.Shard.Workers = w
	}
	shards := make([]Shard, cfg.shards())
	for i := range shards {
		shards[i] = New(cfg.Shard)
	}
	return NewClusterOf(shards...)
}

// NewClusterOf assembles a cluster over preconstructed shards — local
// engines, remote shard clients, or a mix. Each member's ring ID is its
// remote address, or "local-<i>" for in-process shards; duplicate IDs
// panic (two clients for one worker address is a wiring bug). Each shard
// is told its index (via HomeSetter) before first use.
func NewClusterOf(shards ...Shard) *Cluster {
	if len(shards) == 0 {
		panic("engine: NewClusterOf with no shards")
	}
	members := make([]member, len(shards))
	seen := make(map[string]bool, len(shards))
	for i, sh := range shards {
		id := sh.Addr()
		if id == "" {
			id = "local-" + strconv.Itoa(i)
		}
		if seen[id] {
			panic("engine: duplicate shard id " + id)
		}
		seen[id] = true
		members[i] = member{id: id, sh: sh}
	}
	c := &Cluster{}
	c.install(newView(members))
	return c
}

// install publishes v and re-stamps every member's home index to its
// position in the new view. Caller holds c.mu (or is the constructor).
func (c *Cluster) install(v *view) {
	for i, m := range v.members {
		if hs, ok := m.sh.(HomeSetter); ok {
			hs.SetHome(i)
		}
	}
	c.cur.Store(v)
}

// AddShard joins sh to the ring under the stable ID id (its remote
// address, conventionally) and publishes the new membership view. Keys
// whose arcs the new member takes over re-route on their next submit;
// everything else stays put (the consistent-hashing guarantee).
func (c *Cluster) AddShard(id string, sh Shard) error {
	if id == "" {
		id = sh.Addr()
	}
	if id == "" {
		return fmt.Errorf("engine: AddShard needs a non-empty id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.cur.Load()
	if _, dup := v.byID[id]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateShard, id)
	}
	members := make([]member, len(v.members), len(v.members)+1)
	copy(members, v.members)
	members = append(members, member{id: id, sh: sh})
	c.install(newView(members))
	c.adds.Add(1)
	return nil
}

// RemoveShard drops the member with ID id from the ring and publishes
// the new view, returning the removed shard so the caller can drain or
// keep probing it — the cluster does not Close it. Removing the last
// member is refused (ErrLastShard): a cluster with no shards cannot
// route anything.
func (c *Cluster) RemoveShard(id string) (Shard, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.cur.Load()
	i, ok := v.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownShard, id)
	}
	if len(v.members) == 1 {
		return nil, ErrLastShard
	}
	members := make([]member, 0, len(v.members)-1)
	members = append(members, v.members[:i]...)
	members = append(members, v.members[i+1:]...)
	removed := v.members[i].sh
	c.install(newView(members))
	c.removes.Add(1)
	return removed, nil
}

// Close closes every shard in the current view, draining their queues.
// Shards removed earlier are the remover's to close.
func (c *Cluster) Close() {
	for _, m := range c.cur.Load().members {
		m.sh.Close()
	}
}

// Shards reports the current member count.
func (c *Cluster) Shards() int { return len(c.cur.Load().members) }

// Shard returns member i of the current view (stats, tests, warm-start
// logging).
func (c *Cluster) Shard(i int) Shard { return c.cur.Load().members[i].sh }

// MemberIDs returns the ring IDs of the current membership, in member
// order.
func (c *Cluster) MemberIDs() []string { return c.cur.Load().ring.Members() }

// HasMember reports whether id is in the current membership.
func (c *Cluster) HasMember(id string) bool {
	_, ok := c.cur.Load().byID[id]
	return ok
}

// MembershipChanges reports the lifetime add/remove counts — the backing
// of the pooled_ring_changes_total metric.
func (c *Cluster) MembershipChanges() (adds, removes uint64) {
	return c.adds.Load(), c.removes.Load()
}

// ShardOf reports the index (in the current view) of the shard owning
// spec: a consistent-hash ring lookup of the canonical spec key, skipping
// unhealthy members.
func (c *Cluster) ShardOf(spec Spec) int {
	v := c.cur.Load()
	return v.lookup(spec.Key())
}

// OwnerID reports the ring ID of the member owning key — what the
// front-end uses to decide which scheme-cache entries to migrate after a
// membership change.
func (c *Cluster) OwnerID(key string) string {
	v := c.cur.Load()
	i := v.lookup(key)
	if i < 0 {
		return ""
	}
	return v.members[i].id
}

// lookup resolves key to a member index, preferring the ring owner but
// walking clockwise past unhealthy members (a dead-but-not-yet-evicted
// worker must not black-hole its arcs). If no member is healthy the ring
// owner is returned and the submit path's fail-fast error handling takes
// over.
func (v *view) lookup(key string) int {
	i := v.ring.Lookup(key)
	if i < 0 || v.members[i].sh.Healthy() {
		return i
	}
	return v.ring.lookupFrom(key, func(m int) bool { return v.members[m].sh.Healthy() }, i)
}

// lookupFrom walks the ring clockwise from key's position until a member
// passes ok, falling back to fallback when none does.
func (r *Ring) lookupFrom(key string, ok func(member int) bool, fallback int) int {
	if len(r.hashes) == 0 {
		return fallback
	}
	h := ringHash(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	tried := make(map[int]bool, len(r.ids))
	for off := 0; off < len(r.hashes); off++ {
		m := r.owner[(start+off)%len(r.hashes)]
		if tried[m] {
			continue
		}
		if ok(m) {
			return m
		}
		tried[m] = true
		if len(tried) == len(r.ids) {
			break
		}
	}
	return fallback
}

// Owner returns the shard that owns s right now: a ring lookup of the
// scheme's routing key against the current membership view. Schemes from
// outside the cluster (a standalone Engine, a zero wrapper) have no key
// and fall back to their creation-time home index, clamped to the view.
func (c *Cluster) Owner(s *Scheme) Shard {
	v := c.cur.Load()
	if key := s.RouteKey(); key != "" {
		if i := v.lookup(key); i >= 0 {
			return v.members[i].sh
		}
	}
	i := s.home
	if i < 0 || i >= len(v.members) {
		i = 0
	}
	return v.members[i].sh
}

// Scheme routes the (design, n, m, seed) request to the owning shard's
// cache. The sharing guarantees of Engine.Scheme hold per shard: repeat
// requests return the identical pointer, concurrent builds dedupe.
func (c *Cluster) Scheme(des pooling.Design, n, m int, seed uint64) (*Scheme, error) {
	if des == nil {
		des = pooling.RandomRegular{}
	}
	v := c.cur.Load()
	return v.members[v.lookup(SpecFor(des, n, m, seed).Key())].sh.Scheme(des, n, m, seed)
}

// SchemeFromGraph wraps a prebuilt design as an uncached scheme placed
// by the ring on the graph's content hash, so re-uploading the same
// design lands on the same shard regardless of upload order or
// intervening membership changes.
func (c *Cluster) SchemeFromGraph(g *graph.Bipartite) *Scheme {
	v := c.cur.Load()
	return v.members[v.lookup(GraphKey(g))].sh.SchemeFromGraph(g)
}

// InstallScheme warm-starts the owning shard's cache with a prebuilt
// design under spec (the -designs boot path of pooledd).
func (c *Cluster) InstallScheme(spec Spec, g *graph.Bipartite) *Scheme {
	v := c.cur.Load()
	return v.members[v.lookup(spec.Key())].sh.InstallScheme(spec, g)
}

// Submit enqueues the job on its scheme's owning shard.
func (c *Cluster) Submit(ctx context.Context, job Job) (*Future, error) {
	if err := validateJob(job); err != nil {
		return nil, err
	}
	return c.Owner(job.Scheme).Submit(ctx, job)
}

// TrySubmit is Submit with admission control: a saturated shard queue
// returns ErrSaturated instead of blocking.
func (c *Cluster) TrySubmit(ctx context.Context, job Job) (*Future, error) {
	if err := validateJob(job); err != nil {
		return nil, err
	}
	return c.Owner(job.Scheme).TrySubmit(ctx, job)
}

// Offer is TrySubmit without the rejection accounting — the retry path
// of a cooperative scheduler whose jobs were already admitted (the
// campaign dispatcher). Ownership is re-resolved here on every call, so
// a job requeued while its shard died re-routes to the key's new owner.
func (c *Cluster) Offer(ctx context.Context, job Job) (*Future, error) {
	if err := validateJob(job); err != nil {
		return nil, err
	}
	return c.Owner(job.Scheme).Offer(ctx, job)
}

// Decode runs one job through its owning shard's pipeline.
func (c *Cluster) Decode(ctx context.Context, job Job) (Result, error) {
	if err := validateJob(job); err != nil {
		return Result{}, err
	}
	fut, err := c.Owner(job.Scheme).Submit(ctx, job)
	if err != nil {
		return Result{}, err
	}
	return fut.Wait(ctx)
}

// DecodeBatch pipelines one decode job per count vector through the
// scheme's owning shard and waits for all of them. The job template's
// Noise and Dec fields apply to every job. Results are in input order;
// the first decode error (or ctx error) is returned after every
// submitted job has settled, alongside the partial results.
func (c *Cluster) DecodeBatch(ctx context.Context, s *Scheme, ys [][]int64, k int, job Job) ([]Result, error) {
	return decodeBatchOn(c.Owner(s), ctx, s, ys, k, job)
}

// decodeBatchOn is the shared submit-all-then-wait-all batch loop of
// Engine.DecodeBatch and Cluster.DecodeBatch.
func decodeBatchOn(sh Shard, ctx context.Context, s *Scheme, ys [][]int64, k int, job Job) ([]Result, error) {
	futs := make([]*Future, len(ys))
	results := make([]Result, len(ys))
	var firstErr error
	for b, y := range ys {
		j := job
		j.Scheme, j.Y, j.K = s, y, k
		fut, err := sh.Submit(ctx, j)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		futs[b] = fut
	}
	for b, fut := range futs {
		if fut == nil {
			continue
		}
		res, err := fut.Wait(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		results[b] = res
	}
	return results, firstErr
}

// MeasureBatch evaluates the signals on the scheme's owning shard under
// the given noise model (zero model: exact counts).
func (c *Cluster) MeasureBatch(s *Scheme, signals []*bitvec.Vector, nm noise.Model) [][]int64 {
	return c.Owner(s).MeasureBatch(s, signals, nm)
}

// ShardStats is one shard's counters plus its live queue gauges.
type ShardStats struct {
	Stats
	Shard         int `json:"shard"`
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	Workers       int `json:"workers"`
	CachedSchemes int `json:"cached_schemes"`
	// Healthy is always true for local shards; remote shards report
	// their probe state. Addr is empty for local shards. ID is the
	// member's consistent-hash ring ID.
	Healthy bool   `json:"healthy"`
	Addr    string `json:"addr,omitempty"`
	ID      string `json:"id,omitempty"`
}

// ClusterStats aggregates the fleet: Total sums every shard's counters
// (histograms merge bucket-wise), Shards carries the per-shard
// breakdown. Members lists the current ring membership; MembershipAdds
// and MembershipRemoves count lifetime ring changes.
type ClusterStats struct {
	Total             Stats        `json:"total"`
	Shards            []ShardStats `json:"shards"`
	Members           []string     `json:"members,omitempty"`
	MembershipAdds    uint64       `json:"membership_adds"`
	MembershipRemoves uint64       `json:"membership_removes"`
}

// Stats snapshots every shard and the fleet-wide aggregate.
func (c *Cluster) Stats() ClusterStats {
	v := c.cur.Load()
	cs := ClusterStats{
		Shards:  make([]ShardStats, len(v.members)),
		Members: v.ring.Members(),
	}
	cs.MembershipAdds, cs.MembershipRemoves = c.adds.Load(), c.removes.Load()
	for i, m := range v.members {
		e := m.sh
		st := e.Stats()
		cs.Shards[i] = ShardStats{
			Stats:         st,
			Shard:         i,
			QueueDepth:    e.QueueDepth(),
			QueueCapacity: e.QueueCapacity(),
			Workers:       e.Workers(),
			CachedSchemes: e.CachedSchemes(),
			Healthy:       e.Healthy(),
			Addr:          e.Addr(),
			ID:            m.id,
		}
		cs.Total.add(st)
	}
	return cs
}
