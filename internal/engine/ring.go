package engine

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the number of virtual nodes each member contributes
// to a consistent-hash ring. 128 points per member keeps the max/min
// shard load ratio under ~1.5 for realistic fleet sizes while the whole
// ring for a 64-member fleet still fits in two cache lines per lookup
// (one binary search over 8K sorted uint64s).
const DefaultVnodes = 128

// Ring is an immutable consistent-hash ring over member IDs. Each member
// contributes vnodes points placed by FNV-1a; a key is owned by the
// member of the first point clockwise from the key's hash. Because the
// ring is immutable it can be swapped atomically under readers: Cluster
// publishes a new Ring on every membership change and the decode hot
// path reads the current one with a single atomic load.
//
// The critical property (pinned by TestRingMinimalMovement) is minimal
// movement: adding or removing one member only changes ownership of the
// keys in that member's arcs — roughly K/N of the keyspace — and every
// moved key moves to or from the changed member.
type Ring struct {
	hashes []uint64 // sorted vnode positions
	owner  []int    // owner[i] = member index of hashes[i]
	ids    []string // member IDs, in membership order
}

// NewRing builds a ring over ids with the given number of virtual nodes
// per member (vnodes <= 0 means DefaultVnodes). IDs must be distinct;
// an empty id list yields an empty ring whose Lookup returns -1.
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		hashes: make([]uint64, 0, len(ids)*vnodes),
		owner:  make([]int, 0, len(ids)*vnodes),
		ids:    append([]string(nil), ids...),
	}
	type point struct {
		h     uint64
		owner int
	}
	pts := make([]point, 0, len(ids)*vnodes)
	for m, id := range ids {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, point{h: ringHash(id + "#" + strconv.Itoa(v)), owner: m})
		}
	}
	// Ties between coincident vnode hashes break by member ID so the
	// ring layout is a pure function of the membership set, independent
	// of join order.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return ids[pts[i].owner] < ids[pts[j].owner]
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owner = append(r.owner, p.owner)
	}
	return r
}

// ringHash is the ring's point/key hash: FNV-1a over the raw bytes,
// finalized with the splitmix64 mixer. Raw FNV of near-identical strings
// (spec keys differing in one digit, "id#0".."id#127" vnode labels)
// clusters in the low bits; the finalizer spreads the points uniformly
// around the ring, which is what the balance guarantee rests on.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al.), a bijective
// avalanche over uint64.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Lookup returns the member index owning key: the owner of the first
// vnode at or clockwise of the key's hash, wrapping at the top of the
// ring. An empty ring returns -1.
func (r *Ring) Lookup(key string) int {
	if len(r.hashes) == 0 {
		return -1
	}
	h := ringHash(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap past the highest point
	}
	return r.owner[i]
}

// LookupID is Lookup returning the owning member's ID ("" on an empty
// ring).
func (r *Ring) LookupID(key string) string {
	i := r.Lookup(key)
	if i < 0 {
		return ""
	}
	return r.ids[i]
}

// Members returns the member IDs in membership order.
func (r *Ring) Members() []string { return append([]string(nil), r.ids...) }

// Size reports the member count.
func (r *Ring) Size() int { return len(r.ids) }
