package remote

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
)

// newWorker starts an in-process worker: a local engine cluster behind
// the shard API on a real loopback listener.
func newWorker(t testing.TB, shards, workers, queue int, opts ServerOptions) (*engine.Cluster, *httptest.Server) {
	t.Helper()
	c := engine.NewCluster(engine.ClusterConfig{
		Shards: shards,
		Shard:  engine.Config{CacheCapacity: 8, Workers: workers, QueueDepth: queue},
	})
	t.Cleanup(c.Close)
	ts := httptest.NewServer(NewServer(c, opts).Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

// fastOptions are client options tuned for tests: quick probes and
// short retry backoffs so failure paths resolve in milliseconds.
func fastOptions(addr string) Options {
	return Options{
		Addr:           addr,
		ProbeInterval:  25 * time.Millisecond,
		RetryBackoff:   5 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
	}
}

func newShard(t testing.TB, ts *httptest.Server, opt func(*Options)) *Shard {
	t.Helper()
	o := fastOptions(ts.Listener.Addr().String())
	if opt != nil {
		opt(&o)
	}
	sh := New(o)
	t.Cleanup(sh.Close)
	return sh
}

func eventually(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRemoteDecodeMatchesLocal is the federation contract: the same
// (design, n, m, seed) and counts decode bit-identically whether the
// shard is a local engine or a worker across the wire, for exact and
// noisy jobs (including the server-side noise-policy decoder pick).
func TestRemoteDecodeMatchesLocal(t *testing.T) {
	const n, m, k = 400, 160, 6
	const seed = 7

	local := engine.New(engine.Config{})
	defer local.Close()
	ls, err := local.Scheme(nil, n, m, seed)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newWorker(t, 2, 2, 0, ServerOptions{})
	sh := newShard(t, ts, nil)
	cluster := engine.NewClusterOf(sh)
	rs, err := cluster.Scheme(nil, n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Home() != 0 {
		t.Fatalf("remote scheme home = %d, want 0", rs.Home())
	}

	sigma := bitvec.Random(n, k, rng.NewRandSeeded(21))
	y := query.Execute(ls.G, sigma, query.Options{}).Y

	want, err := local.Decode(context.Background(), engine.Job{Scheme: ls, Y: y, K: k})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cluster.Decode(context.Background(), engine.Job{Scheme: rs, Y: y, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Support, want.Support) {
		t.Fatalf("remote support %v != local %v", got.Support, want.Support)
	}
	if got.Decoder != want.Decoder {
		t.Fatalf("remote decoder %q != local %q", got.Decoder, want.Decoder)
	}
	if got.Stats.Residual != want.Stats.Residual || got.Stats.Consistent != want.Stats.Consistent {
		t.Fatalf("remote stats (res=%d cons=%v) != local (res=%d cons=%v)",
			got.Stats.Residual, got.Stats.Consistent, want.Stats.Residual, want.Stats.Consistent)
	}

	// Noisy path: the model travels in colon form and the worker's noise
	// policy must make the same pick the local one does.
	nm := noise.Model{Kind: noise.Gaussian, Sigma: 1.5, Seed: 5}
	yn := local.MeasureBatch(ls, []*bitvec.Vector{sigma}, nm)[0]
	wantN, err := local.Decode(context.Background(), engine.Job{Scheme: ls, Y: yn, K: k, Noise: nm})
	if err != nil {
		t.Fatal(err)
	}
	gotN, err := cluster.Decode(context.Background(), engine.Job{Scheme: rs, Y: yn, K: k, Noise: nm})
	if err != nil {
		t.Fatal(err)
	}
	if gotN.Decoder != wantN.Decoder {
		t.Fatalf("noisy decoder %q != local %q", gotN.Decoder, wantN.Decoder)
	}
	if !reflect.DeepEqual(gotN.Support, wantN.Support) {
		t.Fatalf("noisy remote support %v != local %v", gotN.Support, wantN.Support)
	}
}

// TestRemoteMeasureBatchMatchesEngine checks the frontend-side
// measurement path of a remote shard against the engine's.
func TestRemoteMeasureBatchMatchesEngine(t *testing.T) {
	const n, m, k, batch = 300, 120, 5, 4
	local := engine.New(engine.Config{})
	defer local.Close()
	ls, err := local.Scheme(nil, n, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newWorker(t, 1, 1, 0, ServerOptions{})
	sh := newShard(t, ts, nil)
	cluster := engine.NewClusterOf(sh)
	rs, err := cluster.Scheme(nil, n, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	signals := make([]*bitvec.Vector, batch)
	for b := range signals {
		signals[b] = bitvec.Random(n, k, rng.NewRandSeeded(uint64(40+b)))
	}
	nm := noise.Model{Kind: noise.Gaussian, Sigma: 0.8, Seed: 9}
	want := local.MeasureBatch(ls, signals, nm)
	got := cluster.MeasureBatch(rs, signals, nm)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("remote MeasureBatch differs from engine MeasureBatch")
	}
}

// TestRemoteReinstallAfterEviction drives the 404 recovery path: a
// worker whose scheme registry holds one entry keeps evicting, and the
// client re-installs transparently on the next decode.
func TestRemoteReinstallAfterEviction(t *testing.T) {
	const n, m, k = 300, 120, 5
	_, ts := newWorker(t, 1, 1, 0, ServerOptions{MaxSchemes: 1})
	sh := newShard(t, ts, nil)
	cluster := engine.NewClusterOf(sh)

	sa, err := cluster.Scheme(nil, n, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := cluster.Scheme(nil, n, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	decode := func(s *engine.Scheme, seed uint64) {
		t.Helper()
		sigma := bitvec.Random(n, k, rng.NewRandSeeded(seed))
		y := query.Execute(s.G, sigma, query.Options{}).Y
		res, err := cluster.Decode(context.Background(), engine.Job{Scheme: s, Y: y, K: k})
		if err != nil {
			t.Fatalf("decode after eviction: %v", err)
		}
		if !reflect.DeepEqual(res.Support, sigma.Support()) {
			t.Fatalf("support %v, want %v", res.Support, sigma.Support())
		}
	}
	decode(sa, 31)
	decode(sb, 32) // evicts sa on the worker
	decode(sa, 33) // 404 → re-install → success
	decode(sb, 34)
}

// fakeWorker is a scripted worker for failure-path tests: health and
// installs succeed, decode behavior is pluggable.
func fakeWorker(t *testing.T, decode http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /shard/v1/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, healthResponse{OK: true, Shards: 1, QueueCapacity: 4, Workers: 1})
	})
	mux.HandleFunc("PUT /shard/v1/schemes/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /shard/v1/decode", decode)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestWorker429MirrorsSaturation: a worker answering 429 makes the job
// fail with an error wrapping engine.ErrSaturated after bounded
// retries, and raises the client's Saturated signal.
func TestWorker429MirrorsSaturation(t *testing.T) {
	ts := fakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "decode queue saturated")
	})
	sh := newShard(t, ts, func(o *Options) { o.Retries = 1 })
	cluster := engine.NewClusterOf(sh)
	s, err := cluster.Scheme(nil, 200, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]int64, 80)
	fut, err := cluster.Offer(context.Background(), engine.Job{Scheme: s, Y: y, K: 0})
	if err != nil {
		t.Fatalf("offer: %v", err)
	}
	_, err = fut.Wait(context.Background())
	if !errors.Is(err, engine.ErrSaturated) {
		t.Fatalf("err = %v, want wrapping engine.ErrSaturated", err)
	}
	if !sh.Saturated() {
		t.Fatal("shard not marked saturated after worker 429")
	}
	if sh.Healthy() != true {
		t.Fatal("a saturated worker is alive, not unhealthy")
	}
}

// TestClientQueueBackpressure: with one sender stuck in a slow request
// and a one-slot client queue, Offer returns ErrSaturated — the same
// cooperative backpressure a full local shard queue produces.
func TestClientQueueBackpressure(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	ts := fakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		writeJSON(w, http.StatusOK, decodeResponse{Support: []int{}})
	})
	defer close(release)
	sh := newShard(t, ts, func(o *Options) { o.Senders = 1; o.QueueDepth = 1 })
	cluster := engine.NewClusterOf(sh)
	s, err := cluster.Scheme(nil, 200, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	job := engine.Job{Scheme: s, Y: make([]int64, 80), K: 0}

	fut1, err := cluster.Offer(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // sender is now blocked inside the request
	fut2, err := cluster.Offer(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Offer(context.Background(), job); !errors.Is(err, engine.ErrSaturated) {
		t.Fatalf("third offer err = %v, want ErrSaturated", err)
	}
	if !sh.Saturated() {
		t.Fatal("full client queue must report Saturated")
	}
	release <- struct{}{}
	release <- struct{}{}
	for _, fut := range []*engine.Future{fut1, fut2} {
		if _, err := fut.Wait(context.Background()); err != nil {
			t.Fatalf("wait: %v", err)
		}
	}
}

// TestRemoteCancellation: canceling the job context settles queued jobs
// as canceled without waiting on the worker.
func TestRemoteCancellation(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	ts := fakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		writeJSON(w, http.StatusOK, decodeResponse{Support: []int{}})
	})
	defer close(release)
	sh := newShard(t, ts, func(o *Options) { o.Senders = 1; o.QueueDepth = 4 })
	cluster := engine.NewClusterOf(sh)
	s, err := cluster.Scheme(nil, 200, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	job := engine.Job{Scheme: s, Y: make([]int64, 80), K: 0}
	futBlocked, err := cluster.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	futQueued, err := cluster.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := futQueued.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued job err = %v, want context.Canceled", err)
	}
	release <- struct{}{}
	// The in-flight job's request context died with the cancel; either
	// outcome (canceled or a late success) must settle the future.
	if _, err := futBlocked.Wait(context.Background()); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("in-flight job err = %v", err)
	}
}

// TestRemoteHammer drives two in-process workers through the full
// campaign stack — tenants, weights, noise models, stats polling —
// under -race.
func TestRemoteHammer(t *testing.T) {
	const n, m, k, batch = 300, 240, 5, 12
	w0, ts0 := newWorker(t, 2, 2, 64, ServerOptions{})
	w1, ts1 := newWorker(t, 2, 2, 64, ServerOptions{})
	_ = w0
	_ = w1
	sh0 := newShard(t, ts0, nil)
	sh1 := newShard(t, ts1, nil)
	cluster := engine.NewClusterOf(sh0, sh1)
	store := campaign.NewStore(cluster, campaign.Config{
		TenantWeights: map[string]int{"heavy": 3},
	})
	defer store.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // stats pollers race against dispatch
		defer wg.Done()
		for !stop.Load() {
			cluster.Stats()
			store.Tenants()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	tenants := []string{"heavy", "light"}
	var cwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			seed := uint64(10 + c)
			s, err := cluster.Scheme(nil, n, m, seed)
			if err != nil {
				t.Error(err)
				return
			}
			signals := make([]*bitvec.Vector, batch)
			for b := range signals {
				signals[b] = bitvec.Random(n, k, rng.NewRandSeeded(seed*100+uint64(b)))
			}
			nm := noise.Model{}
			if c%2 == 1 {
				nm = noise.Model{Kind: noise.Gaussian, Sigma: 0.5, Seed: seed}
			}
			ys := cluster.MeasureBatch(s, signals, nm)
			cp, err := store.Create(campaign.Request{
				Scheme: s, Batch: ys, K: k, Tenant: tenants[c%2], Noise: nm,
			})
			if err != nil {
				t.Errorf("create campaign %d: %v", c, err)
				return
			}
			deadline := time.Now().Add(30 * time.Second)
			for {
				p := cp.Wait(context.Background(), 50*time.Millisecond)
				if p.Terminal() && p.Settled() == p.Total {
					if p.Failed != 0 || p.Canceled != 0 {
						t.Errorf("campaign %d: %+v", c, p)
					}
					return
				}
				if time.Now().After(deadline) {
					t.Errorf("campaign %d did not finish: %+v", c, cp.Progress())
					return
				}
			}
		}(c)
	}
	cwg.Wait()
	stop.Store(true)
	wg.Wait()

	// Decodes must have landed on the workers, not locally. Stats are
	// cached briefly client-side, so poll past the TTL.
	eventually(t, 5*time.Second, func() bool {
		return sh0.Stats().JobsCompleted+sh1.Stats().JobsCompleted >= 4*batch
	}, "workers did not report the campaigns' decode jobs")
}

// TestSpecIDEscaping: spec ids embed design parameter strings; they
// must survive the URL path round-trip.
func TestSpecIDEscaping(t *testing.T) {
	_, ts := newWorker(t, 1, 1, 0, ServerOptions{})
	sh := newShard(t, ts, nil)
	cluster := engine.NewClusterOf(sh)
	s, err := cluster.Scheme(pooling.RandomRegular{Gamma: 9}, 200, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.Random(200, 4, rng.NewRandSeeded(2))
	y := query.Execute(s.G, sigma, query.Options{}).Y
	if _, err := cluster.Decode(context.Background(), engine.Job{Scheme: s, Y: y, K: 4}); err != nil {
		t.Fatalf("decode with parameterized design: %v", err)
	}
}

// TestWorkerStatsRoundTrip: the worker's engine counters surface
// through the client's Stats, with client-side deltas folded in.
func TestWorkerStatsRoundTrip(t *testing.T) {
	const n, m, k = 300, 120, 5
	_, ts := newWorker(t, 1, 1, 0, ServerOptions{})
	sh := newShard(t, ts, nil)
	cluster := engine.NewClusterOf(sh)
	s, err := cluster.Scheme(nil, n, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(8))
	y := query.Execute(s.G, sigma, query.Options{}).Y
	if _, err := cluster.Decode(context.Background(), engine.Job{Scheme: s, Y: y, K: k}); err != nil {
		t.Fatal(err)
	}
	st := sh.Stats()
	if st.JobsCompleted != 1 || st.JobsSubmitted != 1 {
		t.Fatalf("stats = %+v, want 1 submitted/completed", st)
	}
	if len(st.DecodeLatency) == 0 {
		t.Fatal("per-decoder latency histograms did not cross the wire")
	}
	var buf []byte
	if buf, err = json.Marshal(cluster.Stats()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf) {
		t.Fatal("cluster stats not valid JSON")
	}
}
