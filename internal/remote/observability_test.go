package remote

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/rng"
	"pooleddata/metrics"
)

// syncBuffer is a concurrency-safe log sink for captured slog output.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

// sampleValue finds a gathered sample by family name and label values.
func sampleValue(fams []metrics.Family, name string, values ...string) (float64, bool) {
	for _, fam := range fams {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Samples {
			if len(s.Values) != len(values) {
				continue
			}
			match := true
			for i := range values {
				if s.Values[i] != values[i] {
					match = false
					break
				}
			}
			if match {
				return s.Value, true
			}
		}
	}
	return 0, false
}

// TestHealthTransitionsEmitMetricAndLog: flipping a worker down and back
// up produces exactly one transition counter increment per flip, moves
// the healthy gauge, and logs each flip with the worker address — the
// observable trail of a probe-state change, not just failed jobs.
func TestHealthTransitionsEmitMetricAndLog(t *testing.T) {
	var broken atomic.Bool
	wc := engine.NewCluster(engine.ClusterConfig{
		Shards: 1, Shard: engine.Config{CacheCapacity: 4, Workers: 1},
	})
	t.Cleanup(wc.Close)
	inner := NewServer(wc, ServerOptions{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			writeError(w, http.StatusServiceUnavailable, "down for maintenance")
			return
		}
		inner.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	reg := metrics.NewRegistry()
	logs := &syncBuffer{}
	sh := newShard(t, ts, func(o *Options) {
		o.ProbeInterval = 15 * time.Millisecond
		o.Retries = 1
		o.Metrics = reg
		o.Logger = slog.New(slog.NewTextHandler(logs, nil))
	})
	addr := ts.Listener.Addr().String()

	if v, ok := sampleValue(reg.Gather(), "pooled_remote_worker_healthy", addr); !ok || v != 1 {
		t.Fatalf("healthy gauge = %v (present %v), want 1", v, ok)
	}

	broken.Store(true)
	eventually(t, 5*time.Second, func() bool { return !sh.Healthy() }, "probe never marked the worker unhealthy")
	broken.Store(false)
	eventually(t, 5*time.Second, func() bool { return sh.Healthy() }, "probe never recovered the worker")

	fams := reg.Gather()
	down, _ := sampleValue(fams, "pooled_remote_worker_health_transitions_total", addr, "unhealthy")
	up, _ := sampleValue(fams, "pooled_remote_worker_health_transitions_total", addr, "healthy")
	if down < 1 || up < 1 {
		t.Fatalf("transition counters down=%v up=%v, want both >= 1", down, up)
	}
	if v, _ := sampleValue(fams, "pooled_remote_worker_healthy", addr); v != 1 {
		t.Fatalf("healthy gauge after recovery = %v, want 1", v)
	}
	out := logs.String()
	if !strings.Contains(out, "worker health transition") {
		t.Fatalf("no health-transition log emitted:\n%s", out)
	}
	if !strings.Contains(out, "to=unhealthy") || !strings.Contains(out, "to=healthy") {
		t.Fatalf("transition logs missing direction:\n%s", out)
	}
	if !strings.Contains(out, addr) {
		t.Fatalf("transition logs missing worker addr %s:\n%s", addr, out)
	}

	// Flips are edge-triggered: repeated healthy probes must not keep
	// incrementing the counter.
	time.Sleep(80 * time.Millisecond)
	again, _ := sampleValue(reg.Gather(), "pooled_remote_worker_health_transitions_total", addr, "healthy")
	if again != up {
		t.Fatalf("healthy transitions moved %v -> %v with no flip", up, again)
	}
}

// TestRemoteStageTimers: a successful decode against a live worker
// populates every request stage, with total >= each component stage and
// the components consistent with total within generous slack.
func TestRemoteStageTimers(t *testing.T) {
	wc := engine.NewCluster(engine.ClusterConfig{
		Shards: 1, Shard: engine.Config{CacheCapacity: 4, Workers: 1},
	})
	t.Cleanup(wc.Close)
	ts := httptest.NewServer(NewServer(wc, ServerOptions{}).Handler())
	t.Cleanup(ts.Close)

	reg := metrics.NewRegistry()
	sh := newShard(t, ts, func(o *Options) { o.Metrics = reg })
	cluster := engine.NewClusterOf(sh)
	s, err := cluster.Scheme(nil, 200, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	y := cluster.MeasureBatch(s, []*bitvec.Vector{bitvec.Random(200, 4, rng.NewRandSeeded(3))}, noise.Model{})[0]
	const jobs = 8
	for i := 0; i < jobs; i++ {
		if _, err := cluster.Decode(context.Background(), engine.Job{Scheme: s, Y: y, K: 4}); err != nil {
			t.Fatal(err)
		}
	}

	addr := ts.Listener.Addr().String()
	sums := make(map[string]float64)
	counts := make(map[string]uint64)
	for _, fam := range reg.Gather() {
		if fam.Name != "pooled_remote_request_seconds" {
			continue
		}
		for _, smp := range fam.Samples {
			if smp.Values[0] == addr {
				sums[smp.Values[1]] = smp.Sum
				counts[smp.Values[1]] = smp.Count
			}
		}
	}
	stages := []string{"serialize", "network", "worker_queue", "worker_decode", "total"}
	for _, st := range stages {
		if counts[st] != jobs {
			t.Fatalf("stage %q observed %d times, want %d (stages: %v)", st, counts[st], jobs, counts)
		}
	}
	total := sums["total"]
	components := sums["serialize"] + sums["network"] + sums["worker_queue"] + sums["worker_decode"]
	if total <= 0 {
		t.Fatalf("total stage sum %v, want > 0", total)
	}
	// The components cover the round trip minus the worker's parse and
	// serialize overhead, so their sum must stay at or below total (plus
	// float slack) and account for a meaningful share of it.
	if components > total*1.05+0.005 {
		t.Fatalf("stage components %.6fs exceed total %.6fs", components, total)
	}
	if components < total*0.1 {
		t.Fatalf("stage components %.6fs unexpectedly tiny against total %.6fs", components, total)
	}
}

// TestWorkerSaturationCounter: a worker that answers 429 feeds the
// saturation mirror counter.
func TestWorkerSaturationCounter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == decodePath:
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "saturated")
		case r.Method == http.MethodPut:
			w.WriteHeader(http.StatusNoContent)
		default:
			writeJSON(w, http.StatusOK, healthResponse{OK: true, Shards: 1})
		}
	}))
	t.Cleanup(ts.Close)

	reg := metrics.NewRegistry()
	sh := newShard(t, ts, func(o *Options) { o.Metrics = reg })
	cluster := engine.NewClusterOf(sh)
	s, err := cluster.Scheme(nil, 100, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]int64, 40)
	if _, err := cluster.Decode(context.Background(), engine.Job{Scheme: s, Y: y, K: 2}); err == nil {
		t.Fatal("decode against an always-429 worker succeeded")
	}
	addr := ts.Listener.Addr().String()
	if v, ok := sampleValue(reg.Gather(), "pooled_remote_saturated_total", addr); !ok || v < 1 {
		t.Fatalf("saturated counter = %v (present %v), want >= 1", v, ok)
	}
}
