package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"pooleddata/internal/engine"
	"pooleddata/internal/labio"
	"pooleddata/internal/noise"
	"pooleddata/metrics"
)

// ServerOptions sizes a worker-side shard server.
type ServerOptions struct {
	// MaxSchemes bounds the installed-scheme registry; beyond it the
	// oldest entries are dropped and later decodes against them return
	// 404 (the client re-installs). 0 means 64.
	MaxSchemes int
	// MaxBody bounds request bodies (design uploads). 0 means 256 MiB.
	MaxBody int64
	// Logger receives structured per-decode logs carrying the trace id
	// propagated from the frontend. Nil means slog.Default().
	Logger *slog.Logger
	// Metrics, when set, receives the server's request counters
	// (installs, decode requests by status) and an installed-schemes
	// gauge. Nil records nothing.
	Metrics *metrics.Registry
}

func (o ServerOptions) maxSchemes() int {
	if o.MaxSchemes <= 0 {
		return 64
	}
	return o.MaxSchemes
}

func (o ServerOptions) maxBody() int64 {
	if o.MaxBody <= 0 {
		return 256 << 20
	}
	return o.MaxBody
}

func (o ServerOptions) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.Default()
}

// Server is the worker side of the shard protocol: it serves decode
// jobs against designs installed by its frontends, over a local engine
// cluster. `pooledd -worker` is exactly this handler behind an
// http.Server.
type Server struct {
	cluster *engine.Cluster
	opts    ServerOptions
	log     *slog.Logger

	mInstalls *metrics.Counter
	mDecodes  *metrics.CounterVec

	mu      sync.Mutex
	schemes map[string]*engine.Scheme
	order   []string // installation order, oldest first
}

// NewServer builds a shard server over the cluster. The caller owns the
// cluster's lifecycle (Close).
func NewServer(cluster *engine.Cluster, opts ServerOptions) *Server {
	s := &Server{
		cluster: cluster,
		opts:    opts,
		log:     opts.logger(),
		schemes: make(map[string]*engine.Scheme),
	}
	reg := opts.Metrics
	s.mInstalls = reg.Counter("pooled_worker_scheme_installs_total",
		"Designs installed through PUT /shard/v1/schemes.").With()
	s.mDecodes = reg.Counter("pooled_worker_decode_requests_total",
		"Shard decode requests by HTTP status.", "status")
	reg.OnGather(func(e *metrics.Exporter) {
		e.Gauge("pooled_worker_installed_schemes", "Schemes resident in the worker's install registry.", float64(s.SchemeCount()))
	})
	return s
}

// Handler returns the shard API handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /shard/v1/schemes/{id}", s.handleInstall)
	mux.HandleFunc("POST /shard/v1/decode", s.handleDecode)
	mux.HandleFunc("POST /shard/v1/decode-batch", s.handleDecodeBatch)
	mux.HandleFunc("GET /shard/v1/health", s.handleHealth)
	mux.HandleFunc("GET /shard/v1/stats", s.handleStats)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "unknown route %s %s", r.Method, r.URL.Path)
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.opts.maxBody())
		}
		mux.ServeHTTP(w, r)
	})
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// handleInstall registers the uploaded design under the caller-chosen
// id, replacing any previous entry — installs are idempotent, so a
// frontend re-ensuring after a worker restart or registry eviction
// needs no coordination. The scheme lands on one of the worker's local
// shards round-robin, like any ad-hoc upload.
func (s *Server) handleInstall(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, "empty scheme id")
		return
	}
	g, err := labio.ReadDesign(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse design csv: %v", err)
		return
	}
	es := s.cluster.SchemeFromGraph(g)
	// Route and account under the install id — the canonical key the
	// frontend placed this scheme by (spec key, or the same content hash
	// for ad-hoc uploads) — so the fleet-merged load table's keys match
	// the ring the frontend resolves owners on.
	es.SetRouteKey(id)
	s.mu.Lock()
	if _, ok := s.schemes[id]; !ok {
		s.order = append(s.order, id)
	}
	s.schemes[id] = es
	for len(s.schemes) > s.opts.maxSchemes() {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.schemes, oldest)
	}
	s.mu.Unlock()
	s.mInstalls.Inc()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) lookup(id string) (*engine.Scheme, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	es, ok := s.schemes[id]
	return es, ok
}

// SchemeCount reports the number of installed schemes (tests, gauges).
func (s *Server) SchemeCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.schemes)
}

// handleDecode runs one job through the worker's cluster. Admission is
// TrySubmit: a saturated local queue answers 429 so the frontend's
// dispatcher sees the same ErrSaturated backpressure a local shard
// produces. An unknown scheme answers 404 so the client re-installs —
// the recovery path after a worker restart or registry eviction.
func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := http.StatusOK
	// The handle-time header lets the client split its round trip into
	// network vs. worker time from one clock: everything after this
	// point (parse, queue, decode, serialize) is worker time.
	fail := func(code int, format string, args ...any) {
		status = code
		writeError(w, code, format, args...)
	}
	defer func() { s.mDecodes.With(strconv.Itoa(status)).Inc() }()

	var req decodeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(http.StatusBadRequest, "parse request: %v", err)
		return
	}
	es, ok := s.lookup(req.Scheme)
	if !ok {
		fail(http.StatusNotFound, "unknown scheme %q", req.Scheme)
		return
	}
	nm, err := noise.Parse(req.Noise)
	if err != nil {
		fail(http.StatusBadRequest, "bad noise: %v", err)
		return
	}
	job := engine.Job{Scheme: es, Y: req.Y, K: req.K, Noise: nm, TraceID: req.Trace}
	if req.Decoder != "" {
		dec, err := engine.DecoderByName(req.Decoder)
		if err != nil {
			fail(http.StatusBadRequest, "%v", err)
			return
		}
		job.Dec = dec
	}
	fut, err := s.cluster.TrySubmit(r.Context(), job)
	switch {
	case errors.Is(err, engine.ErrSaturated):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(es)))
		fail(http.StatusTooManyRequests, "decode queue saturated")
		return
	case errors.Is(err, engine.ErrClosed):
		fail(http.StatusServiceUnavailable, "engine closed")
		return
	case err != nil:
		fail(http.StatusBadRequest, "%v", err)
		return
	}
	res, err := fut.Wait(r.Context())
	if err != nil {
		s.log.Warn("decode failed", "trace_id", req.Trace, "scheme", req.Scheme, "err", err)
		fail(http.StatusUnprocessableEntity, "decode: %v", err)
		return
	}
	s.log.Info("decode",
		"trace_id", req.Trace, "scheme", req.Scheme, "decoder", res.Decoder,
		"k", req.K, "consistent", res.Stats.Consistent,
		"queue_ns", int64(res.Stats.QueueWait), "decode_ns", int64(res.Stats.DecodeTime))
	w.Header().Set(handleTimeHeader, strconv.FormatInt(int64(time.Since(start)), 10))
	writeJSON(w, http.StatusOK, decodeResponse{
		Support:    res.Support,
		Decoder:    res.Decoder,
		Residual:   res.Stats.Residual,
		Consistent: res.Stats.Consistent,
		QueueNS:    int64(res.Stats.QueueWait),
		DecodeNS:   int64(res.Stats.DecodeTime),
		Trace:      req.Trace,
	})
}

// handleDecodeBatch runs a coalesced batch of jobs through the worker's
// cluster in one request: all jobs are admitted up front (TrySubmit, so
// the worker's local shards decode them concurrently), then awaited in
// order. Outcomes are per-job — one job's unknown scheme or saturated
// queue does not fail its batch-mates — with the same status semantics
// as the JSON endpoint, carried as status bytes in the binary response
// frame. Content-Type must name the batch framing (else 415, which
// clients treat as "fall back to per-job JSON"), and the response is
// binary unless the client's Accept excludes it.
func (s *Server) handleDecodeBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type")); err != nil || mt != batchMediaType {
		writeError(w, http.StatusUnsupportedMediaType, "decode-batch wants Content-Type %s", batchMediaType)
		return
	}
	if acc := r.Header.Get("Accept"); acc != "" && !strings.Contains(acc, batchMediaType) && !strings.Contains(acc, "*/*") {
		writeError(w, http.StatusNotAcceptable, "decode-batch answers %s", batchMediaType)
		return
	}
	// Read with the declared length preallocated (MaxBytesReader already
	// bounds it), so a large coalesced frame doesn't pay ReadAll's
	// doubling-growth copies.
	var body []byte
	if n := r.ContentLength; n >= 0 && n <= s.opts.maxBody() {
		body = make([]byte, n)
		if _, err := io.ReadFull(r.Body, body); err != nil {
			writeError(w, http.StatusBadRequest, "read request: %v", err)
			return
		}
	} else {
		var err error
		if body, err = io.ReadAll(r.Body); err != nil {
			writeError(w, http.StatusBadRequest, "read request: %v", err)
			return
		}
	}
	fr := &frameReader{data: body}
	count, err := fr.header(batchRequestMagic)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse batch frame: %v", err)
		return
	}

	// Parse and admit in one pass: job 1 is decoding while job N still
	// parses. A malformed tail answers 400 for the whole frame; jobs
	// already admitted decode into discarded futures, which is harmless —
	// decodes are deterministic and the client re-runs per job.
	jobs := make([]batchJob, count)
	results := make([]batchResult, count)
	futs := make([]*engine.Future, count)
	saturated := false
	for i := range jobs {
		if jobs[i], err = fr.job(i); err != nil {
			writeError(w, http.StatusBadRequest, "parse batch frame: %v", err)
			return
		}
		bj := &jobs[i]
		res := &results[i]
		es, ok := s.lookup(bj.Scheme)
		if !ok {
			res.Status, res.Err = batchNotFound, fmt.Sprintf("unknown scheme %q", bj.Scheme)
			continue
		}
		nm, err := noise.Parse(bj.Noise)
		if err != nil {
			res.Status, res.Err = batchBadRequest, fmt.Sprintf("bad noise: %v", err)
			continue
		}
		job := engine.Job{Scheme: es, Y: bj.Y, K: bj.K, Noise: nm, TraceID: bj.Trace}
		if bj.Decoder != "" {
			dec, err := engine.DecoderByName(bj.Decoder)
			if err != nil {
				res.Status, res.Err = batchBadRequest, err.Error()
				continue
			}
			job.Dec = dec
		}
		fut, err := s.cluster.TrySubmit(r.Context(), job)
		switch {
		case errors.Is(err, engine.ErrSaturated):
			res.Status, res.Err = batchSaturated, "decode queue saturated"
			if !saturated {
				saturated = true
				w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(es)))
			}
		case errors.Is(err, engine.ErrClosed):
			res.Status, res.Err = batchUnavailable, "engine closed"
		case err != nil:
			res.Status, res.Err = batchBadRequest, err.Error()
		default:
			futs[i] = fut
		}
	}
	if fr.remaining() != 0 {
		writeError(w, http.StatusBadRequest, "parse batch frame: %d trailing bytes", fr.remaining())
		return
	}
	for i, fut := range futs {
		if fut == nil {
			continue
		}
		bj, out := &jobs[i], &results[i]
		res, err := fut.Wait(r.Context())
		if err != nil {
			s.log.Warn("decode failed", "trace_id", bj.Trace, "scheme", bj.Scheme, "err", err)
			out.Status, out.Err = batchDecodeErr, fmt.Sprintf("decode: %v", err)
			continue
		}
		out.Status = batchOK
		out.Decoder = res.Decoder
		out.Residual = res.Stats.Residual
		out.Consistent = res.Stats.Consistent
		out.QueueNS = int64(res.Stats.QueueWait)
		out.DecodeNS = int64(res.Stats.DecodeTime)
		out.Support = res.Support
		s.log.Info("decode",
			"trace_id", bj.Trace, "scheme", bj.Scheme, "decoder", res.Decoder,
			"k", bj.K, "consistent", res.Stats.Consistent,
			"queue_ns", int64(res.Stats.QueueWait), "decode_ns", int64(res.Stats.DecodeTime))
	}
	for i := range results {
		s.mDecodes.With(batchStatusCode(results[i].Status)).Inc()
	}
	w.Header().Set("Content-Type", batchMediaType)
	w.Header().Set(handleTimeHeader, strconv.FormatInt(int64(time.Since(start)), 10))
	w.WriteHeader(http.StatusOK)
	w.Write(appendBatchResponse(nil, results))
}

// batchStatusCode maps a per-job frame status to the HTTP status the
// JSON endpoint would have answered, so the decode-request counter keeps
// one label set across both protocols.
func batchStatusCode(st byte) string {
	switch st {
	case batchOK:
		return "200"
	case batchNotFound:
		return "404"
	case batchSaturated:
		return "429"
	case batchDecodeErr:
		return "422"
	case batchBadRequest:
		return "400"
	default:
		return "503"
	}
}

// retryAfterSeconds estimates how long the scheme's owning shard needs
// to drain its backlog — the same backlog-derived Retry-After the
// pooledd frontend serves, so shard-API clients are not told to retry
// a tens-of-seconds queue after one second.
func (s *Server) retryAfterSeconds(es *engine.Scheme) int {
	sh := s.cluster.Owner(es)
	st := sh.Stats()
	if st.JobsCompleted == 0 {
		return 1
	}
	avg := st.TotalDecodeTime / time.Duration(st.JobsCompleted)
	workers := sh.Workers()
	if workers < 1 {
		workers = 1
	}
	secs := int(avg * time.Duration(sh.QueueDepth()) / time.Duration(workers) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := healthResponse{OK: true, Shards: s.cluster.Shards()}
	for i := 0; i < s.cluster.Shards(); i++ {
		sh := s.cluster.Shard(i)
		h.QueueDepth += sh.QueueDepth()
		h.QueueCapacity += sh.QueueCapacity()
		h.Workers += sh.Workers()
		h.CachedSchemes += sh.CachedSchemes()
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.Stats().Total)
}
