// Package remote federates the reconstruction engine across machines:
// it implements engine.Shard over HTTP, so an engine.Cluster can mix
// in-process shards with shards served by `pooledd -worker` processes
// on other hosts. The shard boundary was already the RPC boundary —
// schemes route to their owning shard by spec hash, jobs carry their
// scheme, and admission control speaks ErrSaturated — so the wire
// protocol is a direct transcription of that surface:
//
//	PUT  /shard/v1/schemes/{id}  labio design CSV body → 204
//	                             (idempotent install; the frontend owns
//	                             the graph and ships it, so worker and
//	                             frontend are bit-identical by
//	                             construction — no rebuild drift)
//	POST /shard/v1/decode        {"scheme":id,"y":[...],"k":16,
//	                             "noise":"gaussian:0.5:7","decoder":""}
//	                             → 200 result | 404 unknown scheme
//	                             (client re-installs and retries)
//	                             | 429 saturated (ErrSaturated mirrored
//	                             back into the dispatcher's backpressure)
//	                             | 422 decode error
//	GET  /shard/v1/health        liveness + queue gauges (probe target)
//	GET  /shard/v1/stats         engine.Stats JSON (fleet aggregation)
//
// The client (Shard) is structured like a miniature engine: a bounded
// client-side job queue plus a pool of sender goroutines over one
// shared, connection-reusing http.Client. A full client queue returns
// ErrSaturated — the same cooperative backpressure a full local queue
// produces — and every request carries a deadline. Failures are
// bounded-retry-then-fail: a dead worker marks the shard unhealthy
// (a background probe flips it back), and its jobs settle with an
// error wrapping ErrWorkerUnavailable, so campaigns terminate with
// per-job errors instead of wedging.
package remote

// Shard API paths, versioned separately from the public /v1 API.
const (
	schemePathPrefix = "/shard/v1/schemes/"
	decodePath       = "/shard/v1/decode"
	healthPath       = "/shard/v1/health"
	statsPath        = "/shard/v1/stats"
)

// decodeRequest is the wire form of one decode job. Noise travels in
// the compact colon form ("gaussian:0.5:7") shared with the CSV decode
// path; Decoder is an engine.DecoderByName name, empty for the noise
// policy's server-side pick.
type decodeRequest struct {
	Scheme  string  `json:"scheme"`
	K       int     `json:"k"`
	Decoder string  `json:"decoder,omitempty"`
	Noise   string  `json:"noise,omitempty"`
	Y       []int64 `json:"y"`
	// Trace carries the frontend's per-job trace id across the
	// federation hop, so worker logs correlate with frontend logs.
	Trace string `json:"trace,omitempty"`
}

// decodeResponse mirrors engine.Result on the wire.
type decodeResponse struct {
	Support    []int  `json:"support"`
	Decoder    string `json:"decoder,omitempty"`
	Residual   int64  `json:"residual"`
	Consistent bool   `json:"consistent"`
	QueueNS    int64  `json:"queue_ns"`
	DecodeNS   int64  `json:"decode_ns"`
	Trace      string `json:"trace,omitempty"`
}

// handleTimeHeader carries the worker's server-side handling time
// (nanoseconds, queue wait through response serialization) on decode
// responses, so the client can split a request's round trip into
// network time vs. worker time without clock synchronization.
const handleTimeHeader = "Pooled-Handle-Ns"

// healthResponse is the probe payload: liveness plus the gauges the
// frontend surfaces per shard in /v1/stats.
type healthResponse struct {
	OK            bool `json:"ok"`
	Shards        int  `json:"shards"`
	QueueDepth    int  `json:"queue_depth"`
	QueueCapacity int  `json:"queue_capacity"`
	Workers       int  `json:"workers"`
	CachedSchemes int  `json:"cached_schemes"`
}

// errorBody is the JSON error envelope, same shape as pooledd's.
type errorBody struct {
	Error string `json:"error"`
}
