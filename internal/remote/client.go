package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/engine"
	"pooleddata/internal/graph"
	"pooleddata/internal/labio"
	"pooleddata/internal/noise"
	"pooleddata/internal/pooling"
	"pooleddata/internal/query"
	"pooleddata/metrics"
	"pooleddata/metrics/trace"
)

// ErrWorkerUnavailable marks jobs that failed because their worker was
// unreachable (or kept failing past the retry budget). It wraps
// engine.ErrShardUnavailable, so the campaign dispatcher can recognize
// the orphaned job and re-dispatch it to a surviving shard without
// importing this package; callers matching ErrWorkerUnavailable itself
// keep working unchanged.
var ErrWorkerUnavailable = fmt.Errorf("remote: worker unavailable: %w", engine.ErrShardUnavailable)

// saturationWindow is how long a worker 429 keeps the client-side
// Saturated signal raised, so admission checks fail fast instead of
// re-probing a queue known to be full.
const saturationWindow = 250 * time.Millisecond

// statsTTL bounds how often Stats() refetches from the worker.
const statsTTL = 500 * time.Millisecond

// Options configures a remote shard client.
type Options struct {
	// Addr is the worker's host:port (or full http:// base URL).
	Addr string
	// QueueDepth bounds jobs buffered client-side awaiting a sender; a
	// full queue returns ErrSaturated (the dispatcher's backpressure
	// signal). 0 means 32.
	QueueDepth int
	// Senders is the number of concurrent request goroutines (sharing
	// one connection-reusing http.Client). 0 means 4.
	Senders int
	// RequestTimeout is the per-request deadline of decode and install
	// calls. 0 means 60s.
	RequestTimeout time.Duration
	// ProbeInterval is the health-probe period. 0 means 2s.
	ProbeInterval time.Duration
	// Retries is how many times a failed request is retried before the
	// job settles with an error. 0 means 2; negative means none.
	Retries int
	// CoalesceWindow is how long a sender waits after picking up a job
	// to gather queue-mates into one binary batched request — the window
	// that turns a campaign's fan-out into a handful of frames instead
	// of hundreds of per-job round trips. 0 means 1ms; negative disables
	// coalescing (every job rides its own JSON request).
	CoalesceWindow time.Duration
	// MaxBatch bounds the jobs coalesced into one batched request.
	// 0 means 64; the frame format itself caps batches at 1024.
	MaxBatch int
	// RetryBackoff is the base delay between retries (grows linearly
	// with the attempt). 0 means 50ms.
	RetryBackoff time.Duration
	// MaxSchemes bounds the client-side scheme cache; evicted schemes
	// are re-ensured on demand. 0 means 128.
	MaxSchemes int
	// BuildParallelism bounds goroutines per local design build.
	BuildParallelism int
	// EvictAfter is how many consecutive probe failures fire OnEvict.
	// 0 means 3; negative disables eviction (probes still flip Healthy).
	EvictAfter int
	// OnEvict fires (from the probe goroutine) when EvictAfter
	// consecutive probes have failed — the frontend's hook to pull this
	// worker out of the ring. The client keeps probing afterwards.
	OnEvict func()
	// OnRejoin fires (from the probe goroutine) when a probe succeeds
	// after an eviction — the hook to re-admit the worker to the ring.
	OnRejoin func()
	// Metrics, when set, receives the client's transport metrics:
	// per-stage request timers (serialize/network/worker-queue/
	// worker-decode), retries, mirrored 429s, and probe-state
	// transitions, all labeled by worker addr. Nil records nothing.
	Metrics *metrics.Registry
	// Logger receives structured transport logs (health transitions,
	// exhausted retry budgets). Nil means slog.Default().
	Logger *slog.Logger
}

func (o Options) queueDepth() int {
	if o.QueueDepth <= 0 {
		return 32
	}
	return o.QueueDepth
}

func (o Options) senders() int {
	if o.Senders <= 0 {
		return 4
	}
	return o.Senders
}

func (o Options) requestTimeout() time.Duration {
	if o.RequestTimeout <= 0 {
		return 60 * time.Second
	}
	return o.RequestTimeout
}

func (o Options) probeInterval() time.Duration {
	if o.ProbeInterval <= 0 {
		return 2 * time.Second
	}
	return o.ProbeInterval
}

func (o Options) evictAfter() int {
	if o.EvictAfter == 0 {
		return 3
	}
	if o.EvictAfter < 0 {
		return 0
	}
	return o.EvictAfter
}

func (o Options) retries() int {
	if o.Retries == 0 {
		return 2
	}
	if o.Retries < 0 {
		return 0
	}
	return o.Retries
}

func (o Options) coalesceWindow() time.Duration {
	if o.CoalesceWindow == 0 {
		return time.Millisecond
	}
	if o.CoalesceWindow < 0 {
		return 0
	}
	return o.CoalesceWindow
}

func (o Options) maxBatch() int {
	if o.MaxBatch <= 0 {
		return 64
	}
	if o.MaxBatch > maxBatchJobs {
		return maxBatchJobs
	}
	return o.MaxBatch
}

func (o Options) retryBackoff() time.Duration {
	if o.RetryBackoff <= 0 {
		return 50 * time.Millisecond
	}
	return o.RetryBackoff
}

func (o Options) maxSchemes() int {
	if o.MaxSchemes <= 0 {
		return 128
	}
	return o.MaxSchemes
}

func (o Options) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.Default()
}

// schemeState is the client-side record of one scheme: the local graph
// (the frontend is the source of truth) plus whether the worker
// currently has it installed.
type schemeState struct {
	spec   engine.Spec
	id     string
	ready  chan struct{} // build finished (spec schemes built via Scheme)
	scheme *engine.Scheme
	err    error

	mu      sync.Mutex // serializes installs per scheme
	ensured bool
}

func (st *schemeState) unensure() {
	st.mu.Lock()
	st.ensured = false
	st.mu.Unlock()
}

// task is one queued decode awaiting a sender.
type task struct {
	job      engine.Job
	ctx      context.Context
	fut      *engine.Future
	settle   func(engine.Result, error)
	enqueued time.Time
}

// Shard is the client side of the shard protocol: an engine.Shard whose
// decode pipeline lives in a `pooledd -worker` process. It is shaped
// like a miniature engine — a bounded job queue drained by sender
// goroutines — so admission control, backpressure, and Close semantics
// match the local shard it stands in for. Safe for concurrent use.
type Shard struct {
	opts Options
	base string
	hc   *http.Client
	// home is the cluster index stamped on this client's schemes.
	// Atomic: membership changes re-stamp it while scheme builds read
	// it concurrently.
	home atomic.Int64

	jobs chan *task
	wg   sync.WaitGroup

	mu     sync.RWMutex // guards closed vs. in-flight submit sends
	closed bool

	healthy        atomic.Bool
	saturatedUntil atomic.Int64 // unix nanos
	gauges         atomic.Pointer[healthResponse]

	statsMu   sync.Mutex
	statsAt   time.Time
	statsLast engine.Stats

	// Client-side counters merged into Stats(): outcomes the worker
	// never saw (local rejections, transport failures, cancellations).
	jobsRejected    atomic.Uint64
	jobsFailed      atomic.Uint64
	jobsCanceled    atomic.Uint64
	signalsMeasured atomic.Uint64

	smu      sync.Mutex
	bySpec   map[engine.Spec]*schemeState
	byScheme map[*engine.Scheme]*schemeState
	order    []*schemeState
	instance int64
	adhocSeq atomic.Uint64

	stop      chan struct{}
	probeDone chan struct{}

	// batchUnsupported latches true the first time the worker proves it
	// does not speak the binary batch protocol (404/415 from the batch
	// route, or a 200 whose body is not a batch frame); all later jobs
	// skip straight to the per-job JSON path.
	batchUnsupported atomic.Bool

	// bufPool recycles request-body buffers — JSON bodies and binary
	// frames alike — so steady-state decodes stop allocating per job.
	bufPool sync.Pool

	// Transport observability: per-stage request timers and transport
	// counters, no-ops when Options.Metrics is nil.
	log          *slog.Logger
	mStage       *metrics.HistogramVec
	mRetries     *metrics.Counter
	mSaturated   *metrics.Counter
	mTransitions *metrics.CounterVec
	mHealthy     *metrics.Gauge
	mBatchJobs   *metrics.Histogram
}

var _ engine.Shard = (*Shard)(nil)
var _ engine.HomeSetter = (*Shard)(nil)

// New starts a shard client against a worker address. The client
// assumes the worker is reachable until the first probe says otherwise;
// release its senders and probe with Close.
func New(opts Options) *Shard {
	base := opts.Addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	s := &Shard{
		opts: opts,
		base: strings.TrimRight(base, "/"),
		hc: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: opts.senders() + 2,
			IdleConnTimeout:     90 * time.Second,
		}},
		jobs:      make(chan *task, opts.queueDepth()),
		bufPool:   sync.Pool{New: func() any { return new(bytes.Buffer) }},
		bySpec:    make(map[engine.Spec]*schemeState),
		byScheme:  make(map[*engine.Scheme]*schemeState),
		instance:  time.Now().UnixNano(),
		stop:      make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	s.log = opts.logger().With("worker", opts.Addr)
	reg := opts.Metrics
	s.mStage = reg.Histogram("pooled_remote_request_seconds",
		"Remote decode time by stage: serialize, network, worker_queue, worker_decode, total.",
		nil, "addr", "stage")
	s.mRetries = reg.Counter("pooled_remote_retries_total",
		"Decode attempts retried after a transport or worker failure.", "addr").With(opts.Addr)
	s.mSaturated = reg.Counter("pooled_remote_saturated_total",
		"Worker 429 responses mirrored into client-side backpressure.", "addr").With(opts.Addr)
	s.mTransitions = reg.Counter("pooled_remote_worker_health_transitions_total",
		"Probe-state flips, labeled by the state transitioned to.", "addr", "to")
	s.mHealthy = reg.Gauge("pooled_remote_worker_healthy",
		"1 while the worker's probe state is healthy.", "addr").With(opts.Addr)
	s.mBatchJobs = reg.Histogram("pooled_remote_batch_jobs",
		"Jobs coalesced into each binary batched decode request.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}, "addr").With(opts.Addr)
	s.healthy.Store(true)
	s.mHealthy.Set(1)
	for i := 0; i < opts.senders(); i++ {
		s.wg.Add(1)
		go s.sender()
	}
	go s.probeLoop()
	return s
}

// SetHome assigns the cluster index stamped on this client's schemes
// (cluster assembly and every membership change re-stamp it).
func (s *Shard) SetHome(i int) { s.home.Store(int64(i)) }

// Addr reports the worker address this shard fronts.
func (s *Shard) Addr() string { return s.opts.Addr }

// Healthy reports the probe state: false after a dead-worker failure or
// failed probe, true again once a probe succeeds.
func (s *Shard) Healthy() bool { return s.healthy.Load() }

// setHealthy records a probe-state observation; an actual flip emits a
// structured log and a worker_health_transitions_total increment with
// the worker addr, so a dead (or recovered) worker is visible in logs
// and dashboards, not just in job errors. cause names what flipped it.
func (s *Shard) setHealthy(h bool, cause string) {
	if !s.healthy.CompareAndSwap(!h, h) {
		return // no transition
	}
	to, v := "healthy", 1.0
	if !h {
		to, v = "unhealthy", 0.0
	}
	s.mTransitions.With(s.opts.Addr, to).Inc()
	s.mHealthy.Set(v)
	s.log.Info("worker health transition", "to", to, "cause", cause)
}

// Close stops accepting jobs, lets the senders drain the queue (jobs
// still settle — against the worker if it is up, with errors if not),
// and stops the health probe.
func (s *Shard) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	<-s.probeDone
	// Nothing probes this worker anymore, so its healthy gauge would
	// otherwise export the last observed value forever — misleading for a
	// drained worker. Zero it after the probe and senders have made their
	// final writes.
	s.mHealthy.Set(0)
	s.hc.CloseIdleConnections()
}

// specID is the worker-side registry key of a spec scheme: stable
// across frontends and restarts, so re-ensures are idempotent.
func specID(spec engine.Spec) string {
	return fmt.Sprintf("%s|%d|%d|%d", spec.Design, spec.N, spec.M, spec.Seed)
}

func (s *Shard) adhocID() string {
	return fmt.Sprintf("adhoc-%d-%d", s.instance, s.adhocSeq.Add(1))
}

// Scheme builds the design locally (the frontend serves design CSVs and
// validates jobs against the graph) and lazily ships it to the worker
// before the first decode. Builds dedupe per spec like the engine
// cache; repeat calls return the identical pointer.
func (s *Shard) Scheme(des pooling.Design, n, m int, seed uint64) (*engine.Scheme, error) {
	if des == nil {
		des = pooling.RandomRegular{}
	}
	spec := engine.SpecFor(des, n, m, seed)
	s.smu.Lock()
	if st, ok := s.bySpec[spec]; ok {
		s.smu.Unlock()
		<-st.ready
		return st.scheme, st.err
	}
	st := &schemeState{spec: spec, id: specID(spec), ready: make(chan struct{})}
	s.bySpec[spec] = st
	s.smu.Unlock()

	g, err := des.Build(n, m, pooling.BuildOptions{Seed: seed, Parallelism: s.opts.BuildParallelism})
	s.smu.Lock()
	if err != nil {
		st.err = err
		if cur, ok := s.bySpec[spec]; ok && cur == st {
			delete(s.bySpec, spec)
		}
	} else {
		st.scheme = engine.NewSchemeAt(spec, g, int(s.home.Load()))
		s.byScheme[st.scheme] = st
		s.order = append(s.order, st)
		s.evictLocked()
	}
	s.smu.Unlock()
	close(st.ready)
	return st.scheme, st.err
}

// SchemeFromGraph wraps an ad-hoc design; the graph ships to the worker
// before its first decode under its content-hash id (the scheme's ring
// routing key), so re-uploads and re-ensures after failover are
// idempotent on the worker's registry.
func (s *Shard) SchemeFromGraph(g *graph.Bipartite) *engine.Scheme {
	sc := engine.NewSchemeAt(engine.Spec{}, g, int(s.home.Load()))
	id := sc.RouteKey()
	if id == "" {
		id = s.adhocID()
	}
	st := &schemeState{id: id, ready: closedChan(), scheme: sc}
	s.smu.Lock()
	s.byScheme[sc] = st
	s.order = append(s.order, st)
	s.evictLocked()
	s.smu.Unlock()
	return sc
}

// InstallScheme registers a prebuilt design under spec (warm start);
// the worker receives it lazily before the first decode.
func (s *Shard) InstallScheme(spec engine.Spec, g *graph.Bipartite) *engine.Scheme {
	sc := engine.NewSchemeAt(spec, g, int(s.home.Load()))
	st := &schemeState{spec: spec, id: specID(spec), ready: closedChan(), scheme: sc}
	s.smu.Lock()
	s.bySpec[spec] = st
	s.byScheme[sc] = st
	s.order = append(s.order, st)
	s.evictLocked()
	s.smu.Unlock()
	return sc
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// evictLocked trims the client scheme cache; evicted schemes still work
// if a caller kept one (stateFor rebuilds their record on demand, and
// the worker is re-ensured idempotently).
func (s *Shard) evictLocked() {
	for len(s.order) > s.opts.maxSchemes() {
		victim := s.order[0]
		s.order = s.order[1:]
		if cur, ok := s.bySpec[victim.spec]; ok && cur == victim {
			delete(s.bySpec, victim.spec)
		}
		if victim.scheme != nil {
			delete(s.byScheme, victim.scheme)
		}
	}
}

// stateFor returns (rebuilding if evicted) the record of a scheme a job
// carries. Schemes created by other shards or standalone engines get a
// fresh record keyed by their spec (or a new ad-hoc id), so any scheme
// with a graph can decode remotely.
func (s *Shard) stateFor(sc *engine.Scheme) *schemeState {
	s.smu.Lock()
	defer s.smu.Unlock()
	if st, ok := s.byScheme[sc]; ok {
		return st
	}
	id := sc.RouteKey() // spec key or ad-hoc content hash
	if sc.Spec != (engine.Spec{}) {
		id = specID(sc.Spec)
	} else if id == "" {
		id = s.adhocID()
	}
	st := &schemeState{spec: sc.Spec, id: id, ready: closedChan(), scheme: sc}
	s.byScheme[sc] = st
	if sc.Spec != (engine.Spec{}) {
		s.bySpec[sc.Spec] = st
	}
	s.order = append(s.order, st)
	s.evictLocked()
	return st
}

// MeasureBatch runs on the frontend — measurement is simulation-side
// work against the locally-held graph, not something to ship counts
// back and forth for.
func (s *Shard) MeasureBatch(sc *engine.Scheme, signals []*bitvec.Vector, nm noise.Model) [][]int64 {
	nm = nm.Canon()
	var ys [][]int64
	if nm.IsExact() {
		ys = query.ExecuteBatch(sc.G, signals, runtime.GOMAXPROCS(0))
	} else {
		ys = query.ExecuteBatchNoisy(sc.G, signals, runtime.GOMAXPROCS(0), nm, nm.SignalSeeds(len(signals)))
	}
	s.signalsMeasured.Add(uint64(len(signals)))
	return ys
}

type submitMode int

const (
	modeBlock submitMode = iota
	modeTry
	modeOffer
)

// Submit enqueues the job client-side, blocking while the queue is
// full; a sender ships it to the worker and settles the Future.
func (s *Shard) Submit(ctx context.Context, job engine.Job) (*engine.Future, error) {
	return s.submit(ctx, job, modeBlock)
}

// TrySubmit is Submit with admission control: a full client queue (or a
// worker that just answered 429) returns ErrSaturated and counts the
// rejection.
func (s *Shard) TrySubmit(ctx context.Context, job engine.Job) (*engine.Future, error) {
	return s.submit(ctx, job, modeTry)
}

// Offer is TrySubmit without the rejection accounting — the campaign
// dispatcher's cooperative-backpressure path.
func (s *Shard) Offer(ctx context.Context, job engine.Job) (*engine.Future, error) {
	return s.submit(ctx, job, modeOffer)
}

func (s *Shard) submit(ctx context.Context, job engine.Job, mode submitMode) (*engine.Future, error) {
	if err := engine.ValidateJob(job); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// A dead worker fails jobs promptly instead of queueing toward a
	// timeout: the dispatcher settles them and campaigns terminate.
	if !s.healthy.Load() {
		return nil, s.unavailableErr(nil)
	}
	if mode != modeBlock && s.saturatedNow() {
		if mode == modeTry {
			s.jobsRejected.Add(1)
		}
		return nil, engine.ErrSaturated
	}
	fut, settle := engine.NewFuture(job)
	t := &task{job: job, ctx: ctx, fut: fut, settle: settle, enqueued: time.Now()}

	// Same locking discipline as engine.submit: the read lock spans the
	// send so Close never closes the channel under a sender.
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, engine.ErrClosed
	}
	if mode != modeBlock {
		select {
		case s.jobs <- t:
			return fut, nil
		default:
			if mode == modeTry {
				s.jobsRejected.Add(1)
			}
			return nil, engine.ErrSaturated
		}
	}
	select {
	case s.jobs <- t:
		return fut, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Saturated reports client-queue fullness, a recent worker 429, or an
// unhealthy worker — the batch admission signal the frontend turns into
// 429 + Retry-After.
func (s *Shard) Saturated() bool {
	return len(s.jobs) == cap(s.jobs) || s.saturatedNow() || !s.healthy.Load()
}

// NoteRejected records admission rejections decided by a caller.
func (s *Shard) NoteRejected(n int) { s.jobsRejected.Add(uint64(n)) }

func (s *Shard) saturatedNow() bool {
	return s.saturatedUntil.Load() > time.Now().UnixNano()
}

func (s *Shard) markSaturated() {
	s.saturatedUntil.Store(time.Now().Add(saturationWindow).UnixNano())
}

// QueueDepth combines jobs waiting client-side with the worker's last
// reported queue depth.
func (s *Shard) QueueDepth() int { return len(s.jobs) + s.lastGauges().QueueDepth }

// QueueCapacity combines the client queue bound with the worker's.
func (s *Shard) QueueCapacity() int { return cap(s.jobs) + s.lastGauges().QueueCapacity }

// Workers reports the worker's decode pool size (0 before the first
// probe).
func (s *Shard) Workers() int { return s.lastGauges().Workers }

// CachedSchemes reports the worker's resident scheme count.
func (s *Shard) CachedSchemes() int { return s.lastGauges().CachedSchemes }

func (s *Shard) lastGauges() healthResponse {
	if h := s.gauges.Load(); h != nil {
		return *h
	}
	return healthResponse{}
}

// Stats fetches the worker's counters (cached briefly) and folds in the
// client-side outcomes the worker never saw: local admission
// rejections, transport-failed jobs, cancellations, and locally
// measured signals.
func (s *Shard) Stats() engine.Stats {
	s.statsMu.Lock()
	if time.Since(s.statsAt) > statsTTL && s.healthy.Load() {
		if st, err := s.fetchStats(); err == nil {
			s.statsLast = st
			s.statsAt = time.Now()
		}
	}
	st := s.statsLast
	s.statsMu.Unlock()
	st.JobsRejected += s.jobsRejected.Load()
	st.JobsFailed += s.jobsFailed.Load()
	st.JobsCanceled += s.jobsCanceled.Load()
	st.SignalsMeasured += s.signalsMeasured.Load()
	return st
}

func (s *Shard) fetchStats() (engine.Stats, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+statsPath, nil)
	if err != nil {
		return engine.Stats{}, err
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return engine.Stats{}, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return engine.Stats{}, fmt.Errorf("remote: stats status %d", resp.StatusCode)
	}
	var st engine.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return engine.Stats{}, err
	}
	return st, nil
}

func (s *Shard) unavailableErr(cause error) error {
	if cause != nil {
		return fmt.Errorf("%w: %s: %v", ErrWorkerUnavailable, s.opts.Addr, cause)
	}
	return fmt.Errorf("%w: %s", ErrWorkerUnavailable, s.opts.Addr)
}

// sender drains the client queue until Close. With coalescing enabled,
// a sender that picks up a job lingers briefly for queue-mates and
// ships the group as one binary batched request; lone jobs keep riding
// the per-job JSON path.
func (s *Shard) sender() {
	defer s.wg.Done()
	for t := range s.jobs {
		if s.opts.coalesceWindow() <= 0 || s.batchUnsupported.Load() {
			s.process(t)
			continue
		}
		batch := s.gather(t)
		if len(batch) == 1 {
			s.process(batch[0])
			continue
		}
		s.processBatch(batch)
	}
}

// gather collects queue-mates behind first for up to the coalescing
// window (or until the batch bound) — the knob that turns a campaign's
// burst of submits into a handful of frames. A multi-job batch ships
// the moment the queue runs dry: the window only buys time for a mate
// when the pickup was a singleton, so batch-heavy workloads never pay
// the window as idle latency.
func (s *Shard) gather(first *task) []*task {
	batch := []*task{first}
	limit := s.opts.maxBatch()
	window := s.opts.coalesceWindow()
	// Straggler grace: once the batch has mates, a dry queue only stays
	// open this long per arrival — enough to bridge a dispatcher's
	// back-to-back submits, short enough that a formed batch never
	// idles a full window.
	grace := window / 8
	if grace < 50*time.Microsecond {
		grace = 50 * time.Microsecond
	}
	deadline := time.NewTimer(window)
	defer deadline.Stop()
	for len(batch) < limit {
		select {
		case t, ok := <-s.jobs:
			if !ok {
				return batch
			}
			batch = append(batch, t)
			continue
		default:
		}
		wait := deadline.C
		var straggler *time.Timer
		if len(batch) > 1 {
			straggler = time.NewTimer(grace)
			wait = straggler.C
		}
		select {
		case t, ok := <-s.jobs:
			if straggler != nil {
				straggler.Stop()
			}
			if !ok {
				return batch
			}
			batch = append(batch, t)
		case <-wait:
			if straggler != nil {
				straggler.Stop()
			}
			return batch
		}
	}
	return batch
}

// getBuf leases a request-body buffer from the pool.
func (s *Shard) getBuf() *bytes.Buffer {
	b := s.bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func (s *Shard) putBuf(b *bytes.Buffer) { s.bufPool.Put(b) }

// fallback reroutes batch members through the per-job JSON path, which
// owns retry, health, and settlement semantics. Decodes are
// deterministic and idempotent on the worker, so re-running a job whose
// batched fate is unknown is safe.
func (s *Shard) fallback(tasks []*task) {
	for _, t := range tasks {
		s.process(t)
	}
}

// noteBatchUnsupported latches the per-job path for this client's
// lifetime and logs the downgrade once.
func (s *Shard) noteBatchUnsupported(status int) {
	if s.batchUnsupported.CompareAndSwap(false, true) {
		s.log.Info("worker lacks the binary batch endpoint; using per-job requests", "status", status)
	}
}

// processBatch ships a coalesced batch over the binary protocol. Any
// batch-level abnormality — a worker without the endpoint, a transport
// failure, an unparseable reply — falls back to the per-job JSON path,
// and per-job non-OK statuses degrade the same way; only statuses the
// JSON path treats as terminal settle here.
func (s *Shard) processBatch(batch []*task) {
	live := batch[:0]
	for _, t := range batch {
		if err := t.ctx.Err(); err != nil {
			s.jobsCanceled.Add(1)
			t.settle(engine.Result{Stats: engine.JobStats{QueueWait: time.Since(t.enqueued)}}, err)
			continue
		}
		live = append(live, t)
	}
	switch len(live) {
	case 0:
		return
	case 1:
		s.process(live[0])
		return
	}

	// Install every distinct scheme once; a failure routes the whole
	// batch to the per-job path, which owns install retries. Batch-mates
	// with live contexts still want the result, so the install (like the
	// batched request below) is not tied to any one job's context.
	states := make([]*schemeState, len(live))
	ensured := make(map[*schemeState]bool, 1)
	for i, t := range live {
		st := s.stateFor(t.job.Scheme)
		states[i] = st
		if ensured[st] {
			continue
		}
		if err := s.ensure(context.Background(), st); err != nil {
			s.fallback(live)
			return
		}
		ensured[st] = true
	}

	clientWait := make([]time.Duration, len(live))
	for i, t := range live {
		clientWait[i] = time.Since(t.enqueued)
	}

	buf := s.getBuf()
	defer s.putBuf(buf)
	serializeStart := time.Now()
	jobs := make([]batchJob, len(live))
	for i, t := range live {
		jobs[i] = batchJob{
			Scheme: states[i].id,
			Noise:  t.job.Noise.Canon().String(),
			Trace:  t.job.TraceID,
			K:      t.job.K,
			Y:      t.job.Y,
		}
		if t.job.Dec != nil {
			jobs[i].Decoder = t.job.Dec.Name()
		}
	}
	buf.Write(appendBatchRequest(buf.AvailableBuffer(), jobs))
	serialize := time.Since(serializeStart)
	s.mBatchJobs.Observe(float64(len(live)))

	reqStart := time.Now()
	rep, err := s.postBatch(buf.Bytes())
	if err != nil {
		s.fallback(live)
		return
	}
	switch rep.status {
	case http.StatusOK:
		// Handled below.
	case http.StatusNotFound, http.StatusMethodNotAllowed,
		http.StatusUnsupportedMediaType, http.StatusNotAcceptable:
		s.noteBatchUnsupported(rep.status)
		s.fallback(live)
		return
	case http.StatusTooManyRequests:
		s.markSaturated()
		s.mSaturated.Inc()
		s.fallback(live)
		return
	default:
		s.fallback(live)
		return
	}
	if !rep.isBatch {
		// A 200 whose body is not a batch frame is a foreign endpoint
		// answering generically — same as not having the endpoint.
		s.noteBatchUnsupported(rep.status)
		s.fallback(live)
		return
	}
	if len(rep.results) != len(live) {
		s.fallback(live)
		return
	}

	s.setHealthy(true, "batched decode succeeded")
	// Stage accounting is per job even on the coalesced path, so every
	// stage's observation count equals the job count no matter how jobs
	// were packed into frames. The marshal cost is shared evenly; a
	// job's network stage is the round trip minus its own worker time —
	// the same "time not accounted for by the worker" the per-job JSON
	// path computes from the handle-time header.
	serShare := serialize / time.Duration(len(live))

	for i := range rep.results {
		r := &rep.results[i]
		t := live[i]
		switch r.Status {
		case batchOK:
			network := rep.roundTrip - time.Duration(r.QueueNS+r.DecodeNS)
			if network < 0 {
				network = 0
			}
			s.mStage.With(s.opts.Addr, "serialize").ObserveDuration(serShare)
			s.mStage.With(s.opts.Addr, "network").ObserveDuration(network)
			s.mStage.With(s.opts.Addr, "worker_queue").ObserveDuration(time.Duration(r.QueueNS))
			s.mStage.With(s.opts.Addr, "worker_decode").ObserveDuration(time.Duration(r.DecodeNS))
			s.mStage.With(s.opts.Addr, "total").ObserveDuration(serShare + rep.roundTrip)
			t.job.Trace.Span("shard_queue", trace.TierFrontend, 0, t.enqueued, clientWait[i])
			addWireSpans(t.job.Trace, serializeStart, serShare, reqStart, rep.roundTrip, network, r.QueueNS, r.DecodeNS)
			t.settle(engine.Result{
				Support: r.Support,
				Decoder: r.Decoder,
				Stats: engine.JobStats{
					QueueWait:  clientWait[i] + time.Duration(r.QueueNS),
					DecodeTime: time.Duration(r.DecodeNS),
					Residual:   r.Residual,
					Consistent: r.Consistent,
				},
			}, nil)
		case batchNotFound:
			// The worker lost the scheme between ensure and decode; the
			// per-job path re-installs and retries.
			states[i].unensure()
			s.process(t)
		case batchSaturated:
			s.markSaturated()
			s.mSaturated.Inc()
			s.process(t)
		case batchDecodeErr, batchBadRequest:
			// Deterministic failures are terminal, matching the JSON
			// path's 422/400 handling.
			s.jobsFailed.Add(1)
			t.settle(engine.Result{Stats: engine.JobStats{QueueWait: clientWait[i]}},
				fmt.Errorf("remote: worker %s: %s", s.opts.Addr, r.Err))
		default: // batchUnavailable: transient, retry per job
			s.process(t)
		}
	}
}

// batchReply is one batched round trip's outcome.
type batchReply struct {
	status    int
	isBatch   bool
	results   []batchResult
	roundTrip time.Duration
	handleNS  int64
}

// postBatch runs one batched decode request. err is transport-level (or
// an unparseable 200 batch body); HTTP-level failures come back in
// status, and a 200 with a non-batch body comes back with isBatch
// false.
func (s *Shard) postBatch(payload []byte) (batchReply, error) {
	// Batch-mates' contexts are independent; the request deadline alone
	// bounds the round trip so one job's cancellation can't fail the
	// rest.
	rctx, cancel := context.WithTimeout(context.Background(), s.opts.requestTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, s.base+decodeBatchPath, bytes.NewReader(payload))
	if err != nil {
		return batchReply{}, err
	}
	req.Header.Set("Content-Type", batchMediaType)
	req.Header.Set("Accept", batchMediaType)
	start := time.Now()
	resp, err := s.hc.Do(req)
	if err != nil {
		return batchReply{}, err
	}
	defer drainClose(resp.Body)
	rep := batchReply{status: resp.StatusCode}
	rep.handleNS, _ = strconv.ParseInt(resp.Header.Get(handleTimeHeader), 10, 64)
	if resp.StatusCode != http.StatusOK {
		return rep, nil
	}
	mt, _, _ := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if mt != batchMediaType {
		return rep, nil
	}
	body, rerr := io.ReadAll(resp.Body)
	rep.roundTrip = time.Since(start)
	if rerr != nil {
		return batchReply{}, rerr
	}
	if rep.results, err = parseBatchResponse(body); err != nil {
		return batchReply{}, err
	}
	rep.isBatch = true
	return rep, nil
}

// process ships one job to the worker with bounded
// retry-then-fail-the-job semantics.
func (s *Shard) process(t *task) {
	clientWait := time.Since(t.enqueued)
	stats := engine.JobStats{QueueWait: clientWait}
	if err := t.ctx.Err(); err != nil {
		s.jobsCanceled.Add(1)
		t.settle(engine.Result{Stats: stats}, err)
		return
	}
	st := s.stateFor(t.job.Scheme)
	req := decodeRequest{
		Scheme: st.id, K: t.job.K, Y: t.job.Y,
		Noise: t.job.Noise.Canon().String(), Trace: t.job.TraceID,
	}
	if t.job.Dec != nil {
		req.Decoder = t.job.Dec.Name()
	}
	buf := s.getBuf()
	defer s.putBuf(buf)
	serializeStart := time.Now()
	err := json.NewEncoder(buf).Encode(req)
	payload := buf.Bytes()
	serialize := time.Since(serializeStart)
	if err != nil {
		s.jobsFailed.Add(1)
		t.settle(engine.Result{Stats: stats}, fmt.Errorf("remote: marshal job: %w", err))
		return
	}
	s.mStage.With(s.opts.Addr, "serialize").ObserveDuration(serialize)

	attempts := s.opts.retries() + 1
	var lastErr error
	alive, saturated := false, false
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			s.mRetries.Inc()
			if !s.sleepBackoff(t.ctx, attempt) {
				s.jobsCanceled.Add(1)
				t.settle(engine.Result{Stats: stats}, t.ctx.Err())
				return
			}
		}
		if err := s.ensure(t.ctx, st); err != nil {
			if t.ctx.Err() != nil {
				s.jobsCanceled.Add(1)
				t.settle(engine.Result{Stats: stats}, t.ctx.Err())
				return
			}
			lastErr, alive, saturated = err, false, false
			continue
		}
		reqStart := time.Now()
		rep, err := s.postDecode(t.ctx, payload)
		if err != nil {
			if t.ctx.Err() != nil {
				s.jobsCanceled.Add(1)
				t.settle(engine.Result{Stats: stats}, t.ctx.Err())
				return
			}
			lastErr, alive, saturated = err, false, false
			continue
		}
		alive = true
		s.setHealthy(true, "decode request succeeded")
		out := rep.out
		switch rep.status {
		case http.StatusOK:
			network := s.observeStages(serialize, rep, out)
			t.job.Trace.Span("shard_queue", trace.TierFrontend, 0, t.enqueued, clientWait)
			addWireSpans(t.job.Trace, serializeStart, serialize, reqStart, rep.roundTrip, network, out.QueueNS, out.DecodeNS)
			t.settle(engine.Result{
				Support: out.Support,
				Decoder: out.Decoder,
				Stats: engine.JobStats{
					QueueWait:  clientWait + time.Duration(out.QueueNS),
					DecodeTime: time.Duration(out.DecodeNS),
					Residual:   out.Residual,
					Consistent: out.Consistent,
				},
			}, nil)
			return
		case http.StatusNotFound:
			// Worker restarted or evicted the scheme: re-install and retry.
			st.unensure()
			lastErr, saturated = fmt.Errorf("remote: worker %s: %s", s.opts.Addr, rep.errMsg), false
		case http.StatusTooManyRequests:
			s.markSaturated()
			s.mSaturated.Inc()
			lastErr = fmt.Errorf("remote: worker %s: %w", s.opts.Addr, engine.ErrSaturated)
			saturated = true
		case http.StatusUnprocessableEntity, http.StatusBadRequest:
			// A decode (or validation) failure is terminal: retrying cannot
			// change a deterministic answer.
			s.jobsFailed.Add(1)
			t.settle(engine.Result{Stats: stats}, fmt.Errorf("remote: worker %s: %s", s.opts.Addr, rep.errMsg))
			return
		default:
			lastErr, saturated = fmt.Errorf("remote: worker %s: status %d: %s", s.opts.Addr, rep.status, rep.errMsg), false
		}
	}

	s.jobsFailed.Add(1)
	if saturated {
		// The worker is alive but full past the retry budget; the error
		// keeps ErrSaturated visible to errors.Is.
		t.settle(engine.Result{Stats: stats}, fmt.Errorf("remote: worker %s: %w after %d attempts", s.opts.Addr, engine.ErrSaturated, attempts))
		return
	}
	if !alive {
		s.setHealthy(false, "retry budget exhausted: "+errString(lastErr))
		s.log.Warn("decode retry budget exhausted", "trace_id", t.job.TraceID, "attempts", attempts, "err", lastErr)
	}
	t.settle(engine.Result{Stats: stats}, s.unavailableErr(lastErr))
}

func errString(err error) string {
	if err == nil {
		return "unknown"
	}
	return err.Error()
}

// observeStages splits one successful decode round trip into the
// per-stage timers: serialize (local marshal), network (round trip
// minus the worker's reported handling time), worker_queue and
// worker_decode (from the response body), plus the whole-request total.
// The split needs no clock sync — the handle time rides a response
// header measured on the worker's clock alone. It returns the network
// stage so the caller can reuse it for the trace spans.
func (s *Shard) observeStages(serialize time.Duration, rep decodeReply, out decodeResponse) time.Duration {
	network := rep.roundTrip - time.Duration(rep.handleNS)
	if rep.handleNS <= 0 || network < 0 {
		network = rep.roundTrip
	}
	s.mStage.With(s.opts.Addr, "network").ObserveDuration(network)
	s.mStage.With(s.opts.Addr, "worker_queue").ObserveDuration(time.Duration(out.QueueNS))
	s.mStage.With(s.opts.Addr, "worker_decode").ObserveDuration(time.Duration(out.DecodeNS))
	s.mStage.With(s.opts.Addr, "total").ObserveDuration(serialize + rep.roundTrip)
	return network
}

// addWireSpans appends one job's wire-stage span subtree to its trace:
// a "wire" parent covering marshal + round trip, with serialize and
// network children measured on this side of the hop, and worker_queue /
// worker_decode children synthesized from the durations the worker
// reported back (QueueNS/DecodeNS on the wire, the Pooled-Handle-Ns
// accounting family). The worker spans are laid at the tail of the
// request window, so the tree nests sensibly without any cross-machine
// clock sync. Nil-safe via the builder.
func addWireSpans(tb *trace.Builder, serializeStart time.Time, serialize time.Duration, reqStart time.Time, roundTrip, network time.Duration, queueNS, decodeNS int64) {
	if tb == nil {
		return
	}
	wireDur := reqStart.Add(roundTrip).Sub(serializeStart)
	wire := tb.Span("wire", trace.TierFrontend, 0, serializeStart, wireDur)
	tb.Span("serialize", trace.TierFrontend, wire, serializeStart, serialize)
	tb.Span("network", trace.TierFrontend, wire, reqStart, network)
	workerDur := time.Duration(queueNS + decodeNS)
	workerStart := reqStart.Add(roundTrip - workerDur)
	if workerStart.Before(reqStart) {
		workerStart = reqStart
	}
	tb.Span("worker_queue", trace.TierWorker, wire, workerStart, time.Duration(queueNS))
	tb.Span("worker_decode", trace.TierWorker, wire, workerStart.Add(time.Duration(queueNS)), time.Duration(decodeNS))
}

func (s *Shard) sleepBackoff(ctx context.Context, attempt int) bool {
	timer := time.NewTimer(s.opts.retryBackoff() * time.Duration(attempt))
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// ensure ships the scheme's design CSV to the worker if this client
// hasn't (or a 404 told it the worker lost it). Serialized per scheme;
// idempotent on the worker.
func (s *Shard) ensure(ctx context.Context, st *schemeState) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.ensured {
		return nil
	}
	var buf bytes.Buffer
	if err := labio.WriteDesign(&buf, st.scheme.G); err != nil {
		return fmt.Errorf("remote: serialize design: %w", err)
	}
	rctx, cancel := context.WithTimeout(ctx, s.opts.requestTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPut, s.base+schemePathPrefix+url.PathEscape(st.id), &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := s.hc.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote: install scheme on %s: status %d", s.opts.Addr, resp.StatusCode)
	}
	st.ensured = true
	return nil
}

// decodeReply is one decode round trip's outcome: HTTP status, parsed
// body (200 only), error message (non-200), plus the client-measured
// round-trip time and the worker-reported handle time for the
// network/worker stage split.
type decodeReply struct {
	status    int
	out       decodeResponse
	errMsg    string
	roundTrip time.Duration
	handleNS  int64
}

// postDecode runs one decode request. err is transport-level only;
// HTTP-level failures come back in the reply's (status, errMsg).
func (s *Shard) postDecode(ctx context.Context, payload []byte) (decodeReply, error) {
	rctx, cancel := context.WithTimeout(ctx, s.opts.requestTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, s.base+decodePath, bytes.NewReader(payload))
	if err != nil {
		return decodeReply{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := s.hc.Do(req)
	if err != nil {
		return decodeReply{}, err
	}
	defer drainClose(resp.Body)
	rep := decodeReply{status: resp.StatusCode, roundTrip: time.Since(start)}
	rep.handleNS, _ = strconv.ParseInt(resp.Header.Get(handleTimeHeader), 10, 64)
	if resp.StatusCode == http.StatusOK {
		if derr := json.NewDecoder(resp.Body).Decode(&rep.out); derr != nil {
			return decodeReply{}, fmt.Errorf("remote: parse response: %w", derr)
		}
		// The body read is part of the round trip the stage split divides.
		rep.roundTrip = time.Since(start)
		return rep, nil
	}
	var eb errorBody
	if derr := json.NewDecoder(resp.Body).Decode(&eb); derr != nil || eb.Error == "" {
		eb.Error = http.StatusText(resp.StatusCode)
	}
	rep.errMsg = eb.Error
	return rep, nil
}

func (s *Shard) probeLoop() {
	defer close(s.probeDone)
	interval := s.opts.probeInterval()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	// Eviction state lives entirely in this goroutine: OnEvict/OnRejoin
	// fire from here and nowhere else, so the frontend's hooks need no
	// synchronization of their own.
	failures, evicted := 0, false
	step := func() {
		if s.probe() {
			failures = 0
			if evicted {
				evicted = false
				s.log.Info("worker rejoining after eviction")
				if s.opts.OnRejoin != nil {
					s.opts.OnRejoin()
				}
			}
			return
		}
		failures++
		if n := s.opts.evictAfter(); !evicted && n > 0 && failures >= n {
			evicted = true
			s.log.Warn("worker evicted after consecutive probe failures", "failures", failures)
			if s.opts.OnEvict != nil {
				s.opts.OnEvict()
			}
		}
	}
	step()
	for {
		select {
		case <-tick.C:
			step()
		case <-s.stop:
			return
		}
	}
}

func (s *Shard) probe() bool {
	// A fixed timeout rather than the (possibly very short) probe
	// interval: probes run sequentially in the loop, so a slow one just
	// delays the next tick instead of overlapping it — and a tight
	// interval must not misread a slow-but-alive worker as dead.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+healthPath, nil)
	if err != nil {
		s.setHealthy(false, "probe request: "+err.Error())
		return false
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		s.setHealthy(false, "probe: "+err.Error())
		return false
	}
	defer drainClose(resp.Body)
	var h healthResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&h) != nil || !h.OK {
		s.setHealthy(false, fmt.Sprintf("probe status %d", resp.StatusCode))
		return false
	}
	s.gauges.Store(&h)
	s.setHealthy(true, "probe ok")
	return true
}

// drainClose discards the rest of a response body and closes it, so the
// underlying connection is reusable.
func drainClose(rc io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(rc, 64<<10))
	rc.Close()
}
