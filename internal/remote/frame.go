package remote

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary batch framing: POST /shard/v1/decode-batch carries a coalesced
// batch of decode jobs in one length-prefixed binary frame, and the
// response carries one status-tagged result per job. The format is
// versioned by a leading magic+version triplet and uses unsigned varints
// for every length and small integer, with y-vectors as raw
// little-endian int64s — the frame layout, negotiation, and
// compatibility rules are specified in docs/shard-protocol.md.
//
// Every parse validates claimed lengths against the bytes actually
// remaining before allocating, so truncated, oversized, or garbage
// frames fail with a clean error and bounded allocation — never a panic
// or an attacker-sized make().

const (
	// decodeBatchPath is the batched sibling of decodePath. Workers that
	// predate it answer 404 from their catch-all route, which the client
	// treats as "speak JSON per job to this worker".
	decodeBatchPath = "/shard/v1/decode-batch"

	// batchMediaType names the framing in Content-Type/Accept; the frame
	// itself carries the version byte.
	batchMediaType = "application/x-pooled-batch"

	// frameVersion is the current frame layout version.
	frameVersion = 1
)

// Frame magics: requests and responses are distinguishable on sight.
var (
	batchRequestMagic  = [2]byte{'p', 'b'}
	batchResponseMagic = [2]byte{'p', 'r'}
)

// Parser allocation bounds. A frame that claims more than these is
// rejected before any allocation happens.
const (
	maxBatchJobs   = 1024
	maxFrameString = 4096
	maxFrameY      = 1 << 24
	maxSupportLen  = 1 << 24
)

// batchJob is one decode job inside a request frame — the binary twin of
// decodeRequest.
type batchJob struct {
	Scheme  string
	Noise   string
	Decoder string
	Trace   string
	K       int
	Y       []int64
}

// Per-job response statuses. The mapping to the JSON endpoint's HTTP
// statuses is one-to-one, so the client's per-status handling is shared.
const (
	batchOK          byte = 0 // result payload follows
	batchNotFound    byte = 1 // unknown scheme: re-install and retry
	batchSaturated   byte = 2 // queue full: ErrSaturated backpressure
	batchDecodeErr   byte = 3 // decode failed: terminal
	batchBadRequest  byte = 4 // malformed job: terminal
	batchUnavailable byte = 5 // transient worker-side failure: retry
)

// batchResult is one job's outcome inside a response frame.
type batchResult struct {
	Status     byte
	Err        string // non-OK statuses
	Decoder    string
	Residual   int64
	Consistent bool
	QueueNS    int64
	DecodeNS   int64
	Support    []int
}

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendBatchRequest encodes jobs into buf (appending) and returns the
// extended slice.
func appendBatchRequest(buf []byte, jobs []batchJob) []byte {
	buf = append(buf, batchRequestMagic[0], batchRequestMagic[1], frameVersion)
	buf = appendUvarint(buf, uint64(len(jobs)))
	for i := range jobs {
		j := &jobs[i]
		buf = appendString(buf, j.Scheme)
		buf = appendString(buf, j.Noise)
		buf = appendString(buf, j.Decoder)
		buf = appendString(buf, j.Trace)
		buf = appendUvarint(buf, uint64(j.K))
		buf = appendUvarint(buf, uint64(len(j.Y)))
		for _, v := range j.Y {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	}
	return buf
}

// appendBatchResponse encodes results into buf and returns the extended
// slice. OK supports are delta-encoded: the support is sorted ascending,
// so gaps are small and varint-dense.
func appendBatchResponse(buf []byte, results []batchResult) []byte {
	buf = append(buf, batchResponseMagic[0], batchResponseMagic[1], frameVersion)
	buf = appendUvarint(buf, uint64(len(results)))
	for i := range results {
		r := &results[i]
		buf = append(buf, r.Status)
		if r.Status != batchOK {
			buf = appendString(buf, r.Err)
			continue
		}
		buf = appendString(buf, r.Decoder)
		buf = binary.AppendVarint(buf, r.Residual)
		if r.Consistent {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = appendUvarint(buf, uint64(r.QueueNS))
		buf = appendUvarint(buf, uint64(r.DecodeNS))
		buf = appendUvarint(buf, uint64(len(r.Support)))
		prev := 0
		for _, s := range r.Support {
			buf = appendUvarint(buf, uint64(s-prev))
			prev = s
		}
	}
	return buf
}

// frameReader walks a received frame with bounds-checked reads.
type frameReader struct {
	data []byte
	pos  int
}

func (fr *frameReader) remaining() int { return len(fr.data) - fr.pos }

func (fr *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(fr.data[fr.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("remote: frame truncated or varint overflow at byte %d", fr.pos)
	}
	fr.pos += n
	return v, nil
}

func (fr *frameReader) varint() (int64, error) {
	v, n := binary.Varint(fr.data[fr.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("remote: frame truncated or varint overflow at byte %d", fr.pos)
	}
	fr.pos += n
	return v, nil
}

func (fr *frameReader) byte() (byte, error) {
	if fr.remaining() < 1 {
		return 0, fmt.Errorf("remote: frame truncated at byte %d", fr.pos)
	}
	b := fr.data[fr.pos]
	fr.pos++
	return b, nil
}

func (fr *frameReader) str() (string, error) {
	n, err := fr.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxFrameString {
		return "", fmt.Errorf("remote: frame string of %d bytes exceeds limit %d", n, maxFrameString)
	}
	if int(n) > fr.remaining() {
		return "", fmt.Errorf("remote: frame string of %d bytes exceeds remaining %d", n, fr.remaining())
	}
	s := string(fr.data[fr.pos : fr.pos+int(n)])
	fr.pos += int(n)
	return s, nil
}

func (fr *frameReader) header(magic [2]byte) (int, error) {
	if fr.remaining() < 3 {
		return 0, fmt.Errorf("remote: frame shorter than its header")
	}
	if fr.data[fr.pos] != magic[0] || fr.data[fr.pos+1] != magic[1] {
		return 0, fmt.Errorf("remote: bad frame magic %q", fr.data[fr.pos:fr.pos+2])
	}
	version := int(fr.data[fr.pos+2])
	fr.pos += 3
	if version != frameVersion {
		return 0, fmt.Errorf("remote: unsupported frame version %d (have %d)", version, frameVersion)
	}
	count, err := fr.uvarint()
	if err != nil {
		return 0, err
	}
	if count > maxBatchJobs {
		return 0, fmt.Errorf("remote: frame claims %d jobs, limit %d", count, maxBatchJobs)
	}
	return int(count), nil
}

// job decodes one request-frame job at the cursor. Allocation is
// bounded by the frame's actual size: the y-length is validated against
// the bytes remaining before the slice is made.
func (fr *frameReader) job(i int) (batchJob, error) {
	var j batchJob
	var err error
	if j.Scheme, err = fr.str(); err != nil {
		return j, err
	}
	if j.Noise, err = fr.str(); err != nil {
		return j, err
	}
	if j.Decoder, err = fr.str(); err != nil {
		return j, err
	}
	if j.Trace, err = fr.str(); err != nil {
		return j, err
	}
	k, err := fr.uvarint()
	if err != nil {
		return j, err
	}
	if k > math.MaxInt32 {
		return j, fmt.Errorf("remote: frame job %d claims k=%d", i, k)
	}
	j.K = int(k)
	ylen, err := fr.uvarint()
	if err != nil {
		return j, err
	}
	if ylen > maxFrameY || int(ylen)*8 > fr.remaining() {
		return j, fmt.Errorf("remote: frame job %d claims y of %d values, %d bytes remain", i, ylen, fr.remaining())
	}
	j.Y = make([]int64, ylen)
	for p := range j.Y {
		j.Y[p] = int64(binary.LittleEndian.Uint64(fr.data[fr.pos:]))
		fr.pos += 8
	}
	return j, nil
}

// parseBatchRequest decodes a whole request frame at once (the
// streaming consumer is the server, which submits each job as it
// parses).
func parseBatchRequest(data []byte) ([]batchJob, error) {
	fr := &frameReader{data: data}
	count, err := fr.header(batchRequestMagic)
	if err != nil {
		return nil, err
	}
	jobs := make([]batchJob, count)
	for i := range jobs {
		if jobs[i], err = fr.job(i); err != nil {
			return nil, err
		}
	}
	if fr.remaining() != 0 {
		return nil, fmt.Errorf("remote: %d trailing bytes after request frame", fr.remaining())
	}
	return jobs, nil
}

// parseBatchResponse decodes a response frame under the same bounds.
func parseBatchResponse(data []byte) ([]batchResult, error) {
	fr := &frameReader{data: data}
	count, err := fr.header(batchResponseMagic)
	if err != nil {
		return nil, err
	}
	results := make([]batchResult, count)
	for i := range results {
		r := &results[i]
		if r.Status, err = fr.byte(); err != nil {
			return nil, err
		}
		if r.Status > batchUnavailable {
			return nil, fmt.Errorf("remote: frame result %d has unknown status %d", i, r.Status)
		}
		if r.Status != batchOK {
			if r.Err, err = fr.str(); err != nil {
				return nil, err
			}
			continue
		}
		if r.Decoder, err = fr.str(); err != nil {
			return nil, err
		}
		if r.Residual, err = fr.varint(); err != nil {
			return nil, err
		}
		c, err := fr.byte()
		if err != nil {
			return nil, err
		}
		if c > 1 {
			return nil, fmt.Errorf("remote: frame result %d has bool byte %d", i, c)
		}
		r.Consistent = c == 1
		q, err := fr.uvarint()
		if err != nil {
			return nil, err
		}
		d, err := fr.uvarint()
		if err != nil {
			return nil, err
		}
		if q > math.MaxInt64 || d > math.MaxInt64 {
			return nil, fmt.Errorf("remote: frame result %d has out-of-range timings", i)
		}
		r.QueueNS, r.DecodeNS = int64(q), int64(d)
		slen, err := fr.uvarint()
		if err != nil {
			return nil, err
		}
		// Each support gap costs at least one byte on the wire.
		if slen > maxSupportLen || int(slen) > fr.remaining() {
			return nil, fmt.Errorf("remote: frame result %d claims support of %d, %d bytes remain", i, slen, fr.remaining())
		}
		if slen > 0 {
			r.Support = make([]int, slen)
			prev := uint64(0)
			for p := range r.Support {
				gap, err := fr.uvarint()
				if err != nil {
					return nil, err
				}
				prev += gap
				if prev > math.MaxInt32 {
					return nil, fmt.Errorf("remote: frame result %d support overflows", i)
				}
				r.Support[p] = int(prev)
			}
		}
	}
	if fr.remaining() != 0 {
		return nil, fmt.Errorf("remote: %d trailing bytes after response frame", fr.remaining())
	}
	return results, nil
}
