package remote

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/query"
	"pooleddata/internal/rng"
	"pooleddata/metrics"
)

func TestBatchFrameRoundTrip(t *testing.T) {
	jobs := []batchJob{
		{Scheme: "random-regular|400|160|7", Noise: "exact", Decoder: "mn", Trace: "t-1", K: 6,
			Y: []int64{0, 3, -1, 1 << 40, -(1 << 40)}},
		{Scheme: "adhoc-1-2", Noise: "gaussian:1.5:5", Trace: "", K: 0, Y: []int64{}},
	}
	parsed, err := parseBatchRequest(appendBatchRequest(nil, jobs))
	if err != nil {
		t.Fatalf("parse request: %v", err)
	}
	if !reflect.DeepEqual(parsed, jobs) {
		t.Fatalf("request round trip:\n got %+v\nwant %+v", parsed, jobs)
	}

	results := []batchResult{
		{Status: batchOK, Decoder: "mn-refined", Residual: -12, Consistent: true,
			QueueNS: 12345, DecodeNS: 67890, Support: []int{0, 2, 2, 17, 399}},
		{Status: batchSaturated, Err: "decode queue saturated"},
		{Status: batchOK, Decoder: "mn", Residual: 0, Consistent: false,
			QueueNS: 0, DecodeNS: 1},
		{Status: batchDecodeErr, Err: "k out of range"},
	}
	got, err := parseBatchResponse(appendBatchResponse(nil, results))
	if err != nil {
		t.Fatalf("parse response: %v", err)
	}
	if !reflect.DeepEqual(got, results) {
		t.Fatalf("response round trip:\n got %+v\nwant %+v", got, results)
	}
}

// TestBatchFrameRejectsHostileLengths: claimed sizes beyond what the
// frame can hold must fail cleanly before any allocation matches them.
func TestBatchFrameRejectsHostileLengths(t *testing.T) {
	huge := appendUvarint([]byte{'p', 'b', frameVersion}, 1)
	huge = appendString(huge, "s")
	huge = appendString(huge, "exact")
	huge = appendString(huge, "")
	huge = appendString(huge, "")
	huge = appendUvarint(huge, 1)
	huge = appendUvarint(huge, 1<<40) // y claims a terabyte
	if _, err := parseBatchRequest(huge); err == nil {
		t.Fatal("request with absurd y length parsed")
	}

	manyJobs := appendUvarint([]byte{'p', 'b', frameVersion}, maxBatchJobs+1)
	if _, err := parseBatchRequest(manyJobs); err == nil {
		t.Fatal("request with over-limit job count parsed")
	}

	resp := appendUvarint([]byte{'p', 'r', frameVersion}, 1)
	resp = append(resp, batchOK)
	resp = appendString(resp, "mn")
	resp = append(resp, 0) // residual varint 0
	resp = append(resp, 1) // consistent
	resp = appendUvarint(resp, 0)
	resp = appendUvarint(resp, 0)
	resp = appendUvarint(resp, 1<<40) // support claims 2^40 entries
	if _, err := parseBatchResponse(resp); err == nil {
		t.Fatal("response with absurd support length parsed")
	}

	if _, err := parseBatchRequest([]byte{'p', 'b', frameVersion + 1, 0}); err == nil {
		t.Fatal("future frame version parsed")
	}
	valid := appendBatchRequest(nil, []batchJob{{Scheme: "s", Noise: "exact", Y: []int64{1}}})
	if _, err := parseBatchRequest(append(valid, 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestBatchedDecodeMatchesLocal is the wire-format contract of the
// coalesced path: a burst of exact and noisy jobs shipped as binary
// batch frames settles bit-identically to the same jobs on a local
// engine, while the request count proves coalescing actually happened.
func TestBatchedDecodeMatchesLocal(t *testing.T) {
	const n, m, k, batch = 400, 160, 6, 24
	nm := noise.Model{Kind: noise.Gaussian, Sigma: 1.2, Seed: 9}

	local := engine.New(engine.Config{})
	defer local.Close()
	ls, err := local.Scheme(nil, n, m, 7)
	if err != nil {
		t.Fatal(err)
	}

	wc := engine.NewCluster(engine.ClusterConfig{
		Shards: 1, Shard: engine.Config{CacheCapacity: 8, Workers: 2, QueueDepth: 64},
	})
	t.Cleanup(wc.Close)
	var batchPosts, jsonPosts atomic.Int64
	inner := NewServer(wc, ServerOptions{}).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case decodeBatchPath:
			batchPosts.Add(1)
		case decodePath:
			jsonPosts.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	reg := metrics.NewRegistry()
	sh := newShard(t, ts, func(o *Options) {
		o.Senders = 1
		o.QueueDepth = batch
		// A long window so the whole burst below coalesces deterministically.
		o.CoalesceWindow = 100 * time.Millisecond
		o.Metrics = reg
	})
	cluster := engine.NewClusterOf(sh)
	rs, err := cluster.Scheme(nil, n, m, 7)
	if err != nil {
		t.Fatal(err)
	}

	sigmas := make([]*bitvec.Vector, batch)
	ys := make([][]int64, batch)
	models := make([]noise.Model, batch)
	for b := range sigmas {
		sigmas[b] = bitvec.Random(n, k, rng.NewRandSeeded(uint64(50+b)))
		if b%2 == 0 {
			ys[b] = query.Execute(ls.G, sigmas[b], query.Options{}).Y
		} else {
			models[b] = nm
			ys[b] = local.MeasureBatch(ls, sigmas[b:b+1], nm)[0]
		}
	}

	futs := make([]*engine.Future, batch)
	for b := range futs {
		fut, err := cluster.Submit(context.Background(), engine.Job{Scheme: rs, Y: ys[b], K: k, Noise: models[b]})
		if err != nil {
			t.Fatalf("submit %d: %v", b, err)
		}
		futs[b] = fut
	}
	for b, fut := range futs {
		got, err := fut.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", b, err)
		}
		want, err := local.Decode(context.Background(), engine.Job{Scheme: ls, Y: ys[b], K: k, Noise: models[b]})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Support, want.Support) {
			t.Fatalf("job %d support %v != local %v", b, got.Support, want.Support)
		}
		if got.Decoder != want.Decoder {
			t.Fatalf("job %d decoder %q != local %q", b, got.Decoder, want.Decoder)
		}
		if got.Stats.Residual != want.Stats.Residual || got.Stats.Consistent != want.Stats.Consistent {
			t.Fatalf("job %d stats (res=%d cons=%v) != local (res=%d cons=%v)",
				b, got.Stats.Residual, got.Stats.Consistent, want.Stats.Residual, want.Stats.Consistent)
		}
	}

	if bp := batchPosts.Load(); bp < 1 || bp >= batch {
		t.Fatalf("batch posts = %d for %d jobs, want coalescing (1..%d)", bp, batch, batch-1)
	}
	addr := ts.Listener.Addr().String()
	var observed uint64
	for _, fam := range reg.Gather() {
		if fam.Name != "pooled_remote_batch_jobs" {
			continue
		}
		for _, smp := range fam.Samples {
			if smp.Values[0] == addr {
				observed = smp.Count
			}
		}
	}
	if observed != uint64(batchPosts.Load()) {
		t.Fatalf("batch-size histogram observed %d requests, wire saw %d", observed, batchPosts.Load())
	}
}

// TestBatchFallbackWhenWorkerLacksEndpoint: against a worker that 404s
// the batch route, a coalesced batch downgrades once, settles every job
// over the per-job JSON path, and latches the downgrade for later jobs.
func TestBatchFallbackWhenWorkerLacksEndpoint(t *testing.T) {
	var jsonPosts atomic.Int64
	ts := fakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
		jsonPosts.Add(1)
		writeJSON(w, http.StatusOK, decodeResponse{Support: []int{1, 2}, Decoder: "mn"})
	})
	sh := newShard(t, ts, func(o *Options) {
		o.Senders = 1
		o.QueueDepth = 8
		o.CoalesceWindow = 100 * time.Millisecond
	})
	cluster := engine.NewClusterOf(sh)
	s, err := cluster.Scheme(nil, 200, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 4
	futs := make([]*engine.Future, jobs)
	for i := range futs {
		fut, err := cluster.Submit(context.Background(), engine.Job{Scheme: s, Y: make([]int64, 80), K: 2})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = fut
	}
	for i, fut := range futs {
		if _, err := fut.Wait(context.Background()); err != nil {
			t.Fatalf("job %d after fallback: %v", i, err)
		}
	}
	if got := jsonPosts.Load(); got != jobs {
		t.Fatalf("JSON decode posts = %d, want %d (one per job after downgrade)", got, jobs)
	}
	if !sh.batchUnsupported.Load() {
		t.Fatal("client did not latch the batch downgrade")
	}
}

// FuzzBatchFrame throws arbitrary bytes at both frame parsers: they
// must never panic, never allocate beyond the input's own size class,
// and anything they accept must re-encode and re-parse to the same
// value.
func FuzzBatchFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{'p', 'b', frameVersion, 0})
	f.Add([]byte{'p', 'r', frameVersion, 0})
	f.Add(appendBatchRequest(nil, []batchJob{
		{Scheme: "random-regular|400|160|7", Noise: "gaussian:1.5:5", Decoder: "mn", Trace: "t", K: 6, Y: []int64{1, -2, 3}},
	}))
	f.Add(appendBatchResponse(nil, []batchResult{
		{Status: batchOK, Decoder: "mn-refined", Residual: -7, Consistent: true, QueueNS: 5, DecodeNS: 9, Support: []int{2, 5, 9}},
		{Status: batchSaturated, Err: "full"},
	}))
	valid := appendBatchRequest(nil, []batchJob{{Scheme: "s", Noise: "exact", Y: []int64{42}}})
	f.Add(valid[:len(valid)/2])
	f.Add(append(valid[:len(valid):len(valid)], 0xFF))
	f.Add([]byte{'p', 'b', frameVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, data []byte) {
		if jobs, err := parseBatchRequest(data); err == nil {
			again, err := parseBatchRequest(appendBatchRequest(nil, jobs))
			if err != nil {
				t.Fatalf("re-encoded request failed to parse: %v", err)
			}
			if !reflect.DeepEqual(again, jobs) {
				t.Fatalf("request not stable under re-encode:\n got %+v\nwant %+v", again, jobs)
			}
		}
		if results, err := parseBatchResponse(data); err == nil {
			again, err := parseBatchResponse(appendBatchResponse(nil, results))
			if err != nil {
				t.Fatalf("re-encoded response failed to parse: %v", err)
			}
			if !reflect.DeepEqual(again, results) {
				t.Fatalf("response not stable under re-encode:\n got %+v\nwant %+v", again, results)
			}
		}
	})
}
