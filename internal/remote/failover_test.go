package remote

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/campaign"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/pooling"
	"pooleddata/internal/rng"
)

// TestWorkerDeathZeroFailedJobs is the elastic-fleet failover
// contract: killing a worker mid-campaign loses no jobs. The campaign
// dispatcher intercepts worker-unavailable settlements, re-dispatches
// the orphans through the ring (which skips the unhealthy member), and
// every job completes on the survivor with the bit-identical support a
// healthy fleet would have produced.
func TestWorkerDeathZeroFailedJobs(t *testing.T) {
	const n, m, k, batch = 300, 240, 5, 48
	_, ts0 := newWorker(t, 1, 2, 64, ServerOptions{})
	_, ts1 := newWorker(t, 1, 2, 64, ServerOptions{})
	sh0 := newShard(t, ts0, func(o *Options) { o.Retries = 1 })
	sh1 := newShard(t, ts1, func(o *Options) { o.Retries = 1 })
	cluster := engine.NewClusterOf(sh0, sh1)
	store := campaign.NewStore(cluster, campaign.Config{})
	defer store.Close()

	// Pick a seed whose scheme lives on shard 1 — the worker we kill.
	seed := seedOwnedBy(cluster, n, m, 1)
	s, err := cluster.Scheme(nil, n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	if got := cluster.ShardOf(engine.SpecFor(pooling.RandomRegular{}, n, m, seed)); got != 1 {
		t.Fatalf("scheme owner = %d, want 1", got)
	}
	signals := make([]*bitvec.Vector, batch)
	for b := range signals {
		signals[b] = bitvec.Random(n, k, rng.NewRandSeeded(seed*100+uint64(b)))
	}
	ys := cluster.MeasureBatch(s, signals, noise.Model{})

	// Reference run: the same batch decoded on an isolated in-process
	// cluster. Decodes are deterministic, so the failover run must
	// reproduce these supports bit for bit.
	ref := engine.NewCluster(engine.ClusterConfig{
		Shards: 1, Shard: engine.Config{CacheCapacity: 4, Workers: 2},
	})
	t.Cleanup(ref.Close)
	rs, err := ref.Scheme(nil, n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int, batch)
	for i, y := range ys {
		res, err := ref.Decode(context.Background(), engine.Job{Scheme: rs, Y: y, K: k})
		if err != nil {
			t.Fatalf("reference decode %d: %v", i, err)
		}
		want[i] = res.Support
	}

	cp, err := store.Create(campaign.Request{Scheme: s, Batch: ys, K: k})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the worker once at least one job settled (mid-campaign).
	deadline := time.Now().Add(30 * time.Second)
	for cp.Progress().Settled() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no job settled before kill")
		}
		time.Sleep(time.Millisecond)
	}
	ts1.Close()

	var p campaign.Progress
	for {
		p = cp.Wait(context.Background(), 100*time.Millisecond)
		if p.Terminal() && p.Settled() == p.Total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign wedged after worker death: %+v", cp.Progress())
		}
	}
	if p.Failed != 0 || p.Canceled != 0 {
		t.Fatalf("worker death lost jobs: completed=%d failed=%d canceled=%d", p.Completed, p.Failed, p.Canceled)
	}
	if p.Completed != p.Total {
		t.Fatalf("completed = %d, want %d", p.Completed, p.Total)
	}
	for _, jr := range p.Results {
		if jr.Error != "" {
			t.Fatalf("job %d settled with error %q despite re-dispatch", jr.Index, jr.Error)
		}
		if !equalInts(jr.Support, want[jr.Index]) {
			t.Fatalf("job %d support diverged after failover: got %v, want %v", jr.Index, jr.Support, want[jr.Index])
		}
	}
	eventually(t, 5*time.Second, func() bool { return !sh1.Healthy() },
		"dead worker never marked unhealthy")
	if sh0.Healthy() != true {
		t.Fatal("surviving worker must stay healthy")
	}

	// The cluster keeps serving, and ownership of the dead member's arcs
	// has moved: an offer keyed to the dead shard's scheme reroutes to
	// the survivor instead of failing.
	fut, err := cluster.Offer(context.Background(), engine.Job{Scheme: s, Y: ys[0], K: k})
	if err != nil {
		t.Fatalf("offer after failover: %v", err)
	}
	res, err := fut.Wait(context.Background())
	if err != nil {
		t.Fatalf("rerouted decode: %v", err)
	}
	if !equalInts(res.Support, want[0]) {
		t.Fatalf("rerouted decode diverged: got %v, want %v", res.Support, want[0])
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seedOwnedBy finds a seed whose default-design spec hashes to the
// given shard, using exactly the spec key the cluster routes on.
func seedOwnedBy(c *engine.Cluster, n, m, shard int) uint64 {
	for seed := uint64(1); ; seed++ {
		if c.ShardOf(engine.SpecFor(pooling.RandomRegular{}, n, m, seed)) == shard {
			return seed
		}
	}
}

// TestHealthProbeRecovers: a worker that starts failing flips the shard
// unhealthy; when it comes back, the probe flips it healthy again and
// decodes resume.
func TestHealthProbeRecovers(t *testing.T) {
	var broken atomic.Bool
	wc := engine.NewCluster(engine.ClusterConfig{
		Shards: 1, Shard: engine.Config{CacheCapacity: 4, Workers: 1},
	})
	t.Cleanup(wc.Close)
	inner := NewServer(wc, ServerOptions{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			writeError(w, http.StatusServiceUnavailable, "down for maintenance")
			return
		}
		inner.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	sh := newShard(t, ts, func(o *Options) { o.ProbeInterval = 15 * time.Millisecond; o.Retries = 1 })
	cluster := engine.NewClusterOf(sh)
	s, err := cluster.Scheme(nil, 200, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	y := cluster.MeasureBatch(s, []*bitvec.Vector{bitvec.Random(200, 4, rng.NewRandSeeded(3))}, noise.Model{})[0]
	if _, err := cluster.Decode(context.Background(), engine.Job{Scheme: s, Y: y, K: 4}); err != nil {
		t.Fatal(err)
	}

	broken.Store(true)
	eventually(t, 5*time.Second, func() bool { return !sh.Healthy() }, "probe never marked the worker unhealthy")
	if _, err := cluster.Offer(context.Background(), engine.Job{Scheme: s, Y: y, K: 4}); !errors.Is(err, ErrWorkerUnavailable) {
		t.Fatalf("offer while down err = %v, want ErrWorkerUnavailable", err)
	}

	broken.Store(false)
	eventually(t, 5*time.Second, func() bool { return sh.Healthy() }, "probe never recovered the worker")
	if _, err := cluster.Decode(context.Background(), engine.Job{Scheme: s, Y: y, K: 4}); err != nil {
		t.Fatalf("decode after recovery: %v", err)
	}
}
