package remote

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"testing"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/rng"
)

// BenchmarkRemoteShardDecode prices the federation hop: one decode
// through a worker over httptest loopback (JSON + HTTP + the client
// queue) against the same decode on a local shard, plus the coalesced
// variant — a burst of 32 jobs shipped as binary batch frames — whose
// per-job cost is the wire overhead after amortization. Allocations are
// reported so the pooled serialize buffers stay visible in allocs/op.
func BenchmarkRemoteShardDecode(b *testing.B) {
	const n, m, k = 2000, 800, 10
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(5))

	run := func(b *testing.B, cluster *engine.Cluster) {
		b.Helper()
		b.ReportAllocs()
		s, err := cluster.Scheme(nil, n, m, 3)
		if err != nil {
			b.Fatal(err)
		}
		y := cluster.MeasureBatch(s, []*bitvec.Vector{sigma}, noise.Model{})[0]
		// Warm up once so the one-time scheme install (design CSV write +
		// parse) stays out of the steady-state measurement.
		if _, err := cluster.Decode(context.Background(), engine.Job{Scheme: s, Y: y, K: k}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.Decode(context.Background(), engine.Job{Scheme: s, Y: y, K: k}); err != nil {
				b.Fatal(err)
			}
		}
	}

	// One iteration = one burst of concurrent submits settled; compare
	// local-batchN with remote-batchN for the coalesced-parity number.
	runBurst := func(b *testing.B, cluster *engine.Cluster, burst int) {
		b.Helper()
		b.ReportAllocs()
		s, err := cluster.Scheme(nil, n, m, 3)
		if err != nil {
			b.Fatal(err)
		}
		y := cluster.MeasureBatch(s, []*bitvec.Vector{sigma}, noise.Model{})[0]
		if _, err := cluster.Decode(context.Background(), engine.Job{Scheme: s, Y: y, K: k}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			futs := make([]*engine.Future, burst)
			for j := range futs {
				fut, err := cluster.Submit(context.Background(), engine.Job{Scheme: s, Y: y, K: k})
				if err != nil {
					b.Fatal(err)
				}
				futs[j] = fut
			}
			for _, fut := range futs {
				if _, err := fut.Wait(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	b.Run("local", func(b *testing.B) {
		cluster := engine.NewCluster(engine.ClusterConfig{Shards: 1, Shard: engine.Config{Workers: 2}})
		defer cluster.Close()
		run(b, cluster)
	})
	// The worker's per-decode log line writes to the terminal; the local
	// cluster logs nothing, so silence it to compare decode + wire alone.
	quiet := ServerOptions{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}

	b.Run("remote", func(b *testing.B) {
		_, ts := newWorker(b, 1, 2, 0, quiet)
		sh := New(fastOptions(ts.Listener.Addr().String()))
		defer sh.Close()
		run(b, engine.NewClusterOf(sh))
	})
	for _, burst := range []int{32, 64} {
		burst := burst
		b.Run(fmt.Sprintf("local-batch%d", burst), func(b *testing.B) {
			cluster := engine.NewCluster(engine.ClusterConfig{
				Shards: 1, Shard: engine.Config{Workers: 2, QueueDepth: burst * 2},
			})
			defer cluster.Close()
			runBurst(b, cluster, burst)
		})
		b.Run(fmt.Sprintf("remote-batch%d", burst), func(b *testing.B) {
			_, ts := newWorker(b, 1, 2, burst*2, quiet)
			o := fastOptions(ts.Listener.Addr().String())
			o.QueueDepth = burst * 2
			o.MaxBatch = burst
			// One sender, so the whole burst coalesces into one frame.
			o.Senders = 1
			sh := New(o)
			defer sh.Close()
			runBurst(b, engine.NewClusterOf(sh), burst)
		})
	}
}
