package remote

import (
	"context"
	"testing"

	"pooleddata/internal/bitvec"
	"pooleddata/internal/engine"
	"pooleddata/internal/noise"
	"pooleddata/internal/rng"
)

// BenchmarkRemoteShardDecode prices the federation hop: one decode
// through a worker over httptest loopback (JSON + HTTP + the client
// queue) against the same decode on a local shard. The delta is the
// per-job wire overhead a deployment amortizes by batching campaigns.
func BenchmarkRemoteShardDecode(b *testing.B) {
	const n, m, k = 2000, 800, 10
	sigma := bitvec.Random(n, k, rng.NewRandSeeded(5))

	run := func(b *testing.B, cluster *engine.Cluster) {
		b.Helper()
		s, err := cluster.Scheme(nil, n, m, 3)
		if err != nil {
			b.Fatal(err)
		}
		y := cluster.MeasureBatch(s, []*bitvec.Vector{sigma}, noise.Model{})[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.Decode(context.Background(), engine.Job{Scheme: s, Y: y, K: k}); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("local", func(b *testing.B) {
		cluster := engine.NewCluster(engine.ClusterConfig{Shards: 1, Shard: engine.Config{Workers: 2}})
		defer cluster.Close()
		run(b, cluster)
	})
	b.Run("remote", func(b *testing.B) {
		_, ts := newWorker(b, 1, 2, 0, ServerOptions{})
		sh := New(fastOptions(ts.Listener.Addr().String()))
		defer sh.Close()
		run(b, engine.NewClusterOf(sh))
	})
}
